package cloudbench_test

// One benchmark per table and figure of the paper, plus the ablations
// DESIGN.md calls out. Each benchmark executes the corresponding
// experiment end to end on the simulated testbed and reports the headline
// numbers through b.ReportMetric: simulated throughput (simops/s), mean
// latency (ms), and — where relevant — the ratio the paper's finding
// hinges on. Wall-clock ns/op measures the simulator itself.
//
// Replication factors are reduced to {1,6} here so the full suite runs in
// minutes; `go run ./cmd/replbench -experiment all` sweeps 1–6.

import (
	"math/rand"
	"testing"

	"cloudbench/internal/consistency"
	"cloudbench/internal/core"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/trace"
	"cloudbench/internal/ycsb"
)

func benchOptions() core.Options {
	if testing.Short() {
		// CI's bench smoke (-benchtime=1x -short) only proves every
		// benchmark still runs; smoke scale keeps the whole suite under a
		// minute.
		return core.SmokeOptions()
	}
	o := core.QuickOptions()
	o.ReplicationFactors = []int{1, 6}
	return o
}

// BenchmarkTable1Workloads drives each Table 1 workload mix through the
// generator layer, verifying the published ratios and measuring generator
// throughput.
func BenchmarkTable1Workloads(b *testing.B) {
	if err := core.VerifyTable1(); err != nil {
		b.Fatal(err)
	}
	for _, spec := range ycsb.StressWorkloads(10_000) {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			w := ycsb.NewWorkload(spec)
			r := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := w.NextOp(r)
				if op.Type == ycsb.OpInsert {
					w.Ack(op)
				}
			}
		})
	}
}

// BenchmarkFig1Micro regenerates the micro benchmark for replication: one
// sub-benchmark per (database, replication factor), reporting the four
// atomic-operation latencies in microseconds of simulated time.
func BenchmarkFig1Micro(b *testing.B) {
	o := benchOptions()
	for _, db := range []string{"HBase", "Cassandra"} {
		for _, rf := range o.ReplicationFactors {
			db, rf := db, rf
			b.Run(benchName(db, "rf", rf), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					opts := o
					opts.ReplicationFactors = []int{rf}
					opts.Seed = int64(i + 1)
					res, err := core.RunFig1Round(opts, db, rf)
					if err != nil {
						b.Fatal(err)
					}
					for _, m := range res {
						b.ReportMetric(float64(m.Mean.Microseconds()), m.Op+"-µs")
					}
				}
			})
		}
	}
}

// BenchmarkFig2Stress regenerates the stress benchmark for replication:
// one sub-benchmark per (database, replication factor), reporting each
// Table 1 workload's peak runtime throughput in simulated ops/s.
func BenchmarkFig2Stress(b *testing.B) {
	o := benchOptions()
	for _, db := range []string{"HBase", "Cassandra"} {
		for _, rf := range o.ReplicationFactors {
			db, rf := db, rf
			b.Run(benchName(db, "rf", rf), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					opts := o
					opts.Seed = int64(i + 1)
					res, err := core.RunFig2Round(opts, db, rf)
					if err != nil {
						b.Fatal(err)
					}
					for _, m := range res {
						b.ReportMetric(m.Throughput, m.Workload+"-simops/s")
					}
				}
			})
		}
	}
}

// BenchmarkFig3Consistency regenerates the stress benchmark for
// consistency: one sub-benchmark per consistency level, reporting each
// workload's runtime throughput at the capacity target.
func BenchmarkFig3Consistency(b *testing.B) {
	o := benchOptions()
	o.Fig3TargetFractions = []float64{1.0}
	for _, lv := range core.Levels() {
		lv := lv
		b.Run(lv.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := o
				opts.Seed = int64(i + 1)
				res, err := core.RunFig3Level(opts, lv)
				if err != nil {
					b.Fatal(err)
				}
				for _, m := range res {
					if m.Target == 0 {
						b.ReportMetric(m.Runtime, m.Workload+"-simops/s")
					}
				}
			}
		})
	}
}

// BenchmarkAblationReadRepair quantifies A1: Cassandra micro read latency
// at RF 6 with read repair on versus off.
func BenchmarkAblationReadRepair(b *testing.B) {
	o := benchOptions()
	for _, mode := range []struct {
		name   string
		chance float64
	}{{"on", o.ReadRepairChance}, {"off", 0}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := o
				opts.ReadRepairChance = mode.chance
				opts.Seed = int64(i + 1)
				res, err := core.RunFig1Round(opts, "Cassandra", 6)
				if err != nil {
					b.Fatal(err)
				}
				for _, m := range res {
					if m.Op == "read" {
						b.ReportMetric(float64(m.Mean.Microseconds()), "read-µs")
					}
				}
			}
		})
	}
}

// BenchmarkAblationHBaseSyncRepl quantifies A2: HBase micro update latency
// at RF 6 with in-memory versus synchronous replication.
func BenchmarkAblationHBaseSyncRepl(b *testing.B) {
	o := benchOptions()
	for _, mode := range []struct {
		name string
		mem  bool
	}{{"in-memory", true}, {"synchronous", false}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := o
				opts.MemReplication = mode.mem
				opts.Seed = int64(i + 1)
				res, err := core.RunFig1Round(opts, "HBase", 6)
				if err != nil {
					b.Fatal(err)
				}
				for _, m := range res {
					if m.Op == "update" {
						b.ReportMetric(float64(m.Mean.Microseconds()), "update-µs")
					}
				}
			}
		})
	}
}

// BenchmarkAblationClientThreads quantifies A3: intended latency at a
// fixed offered load versus client thread count.
func BenchmarkAblationClientThreads(b *testing.B) {
	o := benchOptions()
	for _, threads := range []int{2, 8, 32} {
		threads := threads
		b.Run(benchName("threads", "", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := o
				opts.Seed = int64(i + 1)
				fig, err := core.AblationClientThreads(opts, []int{threads}, 3000)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(fig.Series[0].Y[0], "intended-µs")
			}
		})
	}
}

// BenchmarkConsistencyAudit runs the full consistency-audit grid at smoke
// scale, reporting the headline stale-read percentage of the deepest
// CL=ONE cell next to the simulator's wall-clock cost.
func BenchmarkConsistencyAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := core.SmokeOptions()
		o.Seed = int64(i + 1)
		res, err := core.RunConsistencyAudit(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range res {
			if m.DB == "Cassandra" && m.Level == "ONE" && m.Workload == "read-update" && !m.Fault && m.RF == 3 {
				b.ReportMetric(100*m.Consistency.StaleFraction(), "stale-%")
			}
		}
	}
}

// BenchmarkSpectrum runs the three-backend replication-spectrum grid at
// smoke scale, reporting the async object store's headline visibility
// cost on the read-update anchor cell (async/read-one, RF 3, fastest
// anti-entropy interval): the stale-read percentage and the p99 time to
// all-replica visibility.
func BenchmarkSpectrum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := core.SmokeOptions()
		o.Seed = int64(i + 1)
		res, err := core.RunSpectrum(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range res {
			if m.DB == "ObjStore" && m.Level == "async/read-one" && m.Workload == "read-update" &&
				!m.Fault && m.RF == 3 && m.ReplInterval == o.SpectrumReplIntervals[0] {
				b.ReportMetric(100*m.Consistency.StaleFraction(), "stale-%")
				b.ReportMetric(float64(m.Consistency.TVisAllP99.Microseconds())/1000, "tvis-p99-ms")
			}
		}
	}
}

// BenchmarkGeo runs the multi-DC geo-replication grid at smoke scale,
// reporting the SLA cell's headline trade: the fixed EACH_QUORUM client's
// write p99 over the 80 ms WAN versus the adaptive client's write p99 and
// staleness under the same 40 ms deadline.
func BenchmarkGeo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := core.SmokeOptions()
		o.Seed = int64(i + 1)
		res, err := core.RunGeo(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range res {
			switch m.Mode {
			case "sla-fixed":
				b.ReportMetric(float64(m.WriteP99.Microseconds())/1000, "fixed-p99-ms")
			case "sla-adaptive":
				b.ReportMetric(float64(m.WriteP99.Microseconds())/1000, "adaptive-p99-ms")
				b.ReportMetric(100*m.Consistency.StaleFraction(), "adaptive-stale-%")
			}
		}
	}
}

// BenchmarkOracleHooks measures the per-event cost of the consistency
// oracle's write/read hooks, and — on the nil receiver, which is how the
// databases run in every performance experiment — proves the disabled
// hooks cost zero allocations (allocs/op must be 0 for the nil case).
func BenchmarkOracleHooks(b *testing.B) {
	for _, mode := range []struct {
		name   string
		oracle *consistency.Oracle
	}{{"nil", nil}, {"attached", consistency.New()}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			o := mode.oracle
			o.BeginMeasure(0)
			key := kv.Key("user42")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ver := kv.Version(i + 1)
				at := sim.Time(i)
				o.WriteBegin(key, ver, 3, at)
				o.ReplicaApply(key, ver, 0, consistency.ApplyWrite, at)
				o.WriteAck(key, ver, at)
				o.ReadObserved(-1, key, ver, at)
			}
		})
	}
}

// TestDetachedOracleHooksZeroAlloc pins down the invariant the hookguard
// analyzer and the nil-gated call sites exist for: with the oracle
// detached (nil, as in every performance experiment), the full
// write/read hook sequence behind its `!= nil` guard must not allocate
// and must not evaluate its arguments' allocating subexpressions.
func TestDetachedOracleHooksZeroAlloc(t *testing.T) {
	var oracle *consistency.Oracle // detached
	key := kv.Key("user42")
	ver := kv.Version(7)
	allocs := testing.AllocsPerRun(1000, func() {
		// The exact call-site shape the databases use (and hookguard
		// enforces): gate once, then fire the lifecycle hooks.
		if oracle != nil {
			at := sim.Time(1)
			oracle.WriteBegin(key, ver, 3, at)
			oracle.ReplicaApply(key, ver, 0, consistency.ApplyWrite, at)
			oracle.WriteAck(key, ver, at)
			oracle.ReadObserved(-1, key, ver, at)
			oracle.BeginMeasure(at)
		}
	})
	if allocs != 0 {
		t.Fatalf("detached-oracle hook path allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestAttachedOracleRegisterDetach exercises attach → observe → detach:
// an attached oracle sees the traffic, and re-detaching restores the
// zero-cost path.
func TestAttachedOracleRegisterDetach(t *testing.T) {
	oracle := consistency.New()
	cid := oracle.RegisterClient()
	key := kv.Key("user1")
	at := sim.Time(1)
	oracle.BeginMeasure(0)
	oracle.WriteBegin(key, 1, 1, at)
	oracle.ReplicaApply(key, 1, 0, consistency.ApplyWrite, at)
	oracle.WriteAck(key, 1, at)
	oracle.ReadObserved(cid, key, 1, at+1)
	rep := oracle.Report()
	if rep.Reads == 0 {
		t.Fatalf("attached oracle recorded no reads: %+v", rep)
	}
	oracle = nil // detach
	allocs := testing.AllocsPerRun(100, func() {
		if oracle != nil {
			oracle.ReadObserved(cid, key, 1, at)
		}
	})
	if allocs != 0 {
		t.Fatalf("post-detach hook path allocated %.1f allocs/op, want 0", allocs)
	}
}

// benchTracerHooks drives the exact nil-gated tracer call-site shape the
// YCSB runner and database read paths use — root span open/close around
// a queue-wait and a storage phase — once per iteration inside a sim
// process.
func benchTracerHooks(b *testing.B, tr *trace.Tracer) {
	k := sim.NewKernel(11)
	k.Spawn("driver", func(p *sim.Proc) {
		tr.BeginMeasure(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var t0 sim.Time
			if tr != nil {
				tr.StartOp(p, trace.ClassRead)
				t0 = p.Now()
			}
			if tr != nil {
				tr.Interval(p, trace.PhaseCoordQueue, 1, t0, t0)
				tr.Phase(p, trace.PhaseStorage, 1, t0)
				tr.EndOp(p)
			}
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTracerDisabled measures the tracing hooks on the YCSB read
// path with tracing off — how every performance experiment runs. The
// nil-gated sites must cost one predicted branch each: allocs/op must be
// 0 (pinned by TestDisabledTracerHooksZeroAlloc in internal/trace and by
// the hotpath analyzer on the runner).
func BenchmarkTracerDisabled(b *testing.B) {
	benchTracerHooks(b, nil)
}

// BenchmarkTracerEnabled measures the same call sites with a tracer
// attached: the per-op cost of a root span plus two phase spans, all
// aggregation in fixed-bucket histograms. The delta against
// BenchmarkTracerDisabled is the price of turning tracing on.
func BenchmarkTracerEnabled(b *testing.B) {
	benchTracerHooks(b, trace.New())
}

// BenchmarkSweepParallel measures the wall-clock of the same Fig. 2 sweep
// executed sequentially (workers-1) and fanned out across the sweep
// scheduler (workers-4). The results are bit-identical either way (see
// TestParallelSweepDeterminism); on a 4-core runner the 4-worker run should
// be ≥3× faster since the sweep's 4 cells are independent simulations.
func BenchmarkSweepParallel(b *testing.B) {
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(benchName("workers", "", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions()
				o.Parallelism = workers
				o.StressRecords = 1_500
				o.StressOps = 2_500
				o.Seed = int64(i + 1)
				if _, err := core.RunFig2(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardScale measures single-cell scaling on the sharded kernel:
// the 64-node saturating shardscale cell (see DESIGN §10) split into 1, 2,
// 4, and 8 segments, each on its own member kernel. Total nodes, threads,
// and ops are fixed, so wall-clock ns/op across the sub-benchmarks is the
// engine's per-core scaling curve — `make bench-shard` records it in
// BENCH_shard.json.
func BenchmarkShardScale(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		// "shards=N", not benchName's "shards-N": benchjson strips a
		// trailing -N as the GOMAXPROCS suffix, which on a 1-core host
		// (no suffix appended) would collapse the four curves into one.
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := core.DefaultShardScaleOptions()
				o.Shards = shards
				if testing.Short() {
					o.TotalNodes = 16
					o.TotalThreads = 64
					o.TotalOps = 2_000
					o.RecordsPerSegment = 400
				}
				o.Seed = int64(i + 1)
				res, err := core.RunShardScale(o)
				if err != nil {
					b.Fatal(err)
				}
				if res.Errors != 0 {
					b.Fatalf("%d errors", res.Errors)
				}
			}
		})
	}
}

// BenchmarkMegaScale measures deployment-scale scaling on the sharded
// kernel: the 512-node, RF-3, million-session megascale Cassandra
// deployment (DESIGN §14) split into 1, 2, 4, and 8 segments, each on its
// own member kernel with WAN-chain delivery floors between them. Total
// nodes, sessions, and ops are fixed, so wall-clock ns/op across the
// sub-benchmarks is the engine's scaling curve at deployment scale —
// `make bench-scale` records it (together with GOMAXPROCS and CPU count,
// which the curve is meaningless without) in BENCH_scale.json. -short
// swaps in the smoke cell so CI can prove the path cheaply.
func BenchmarkMegaScale(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := core.DefaultMegaScaleOptions()
				if testing.Short() {
					o = core.MegaSmokeOptions()
				}
				o.Shards = shards
				o.Seed = int64(i + 1)
				res, err := core.RunMegaScale(o)
				if err != nil {
					b.Fatal(err)
				}
				if res.Errors != 0 {
					b.Fatalf("%d errors", res.Errors)
				}
				b.ReportMetric(float64(res.Sessions), "sessions")
				b.ReportMetric(res.Throughput, "simops/s")
				b.ReportMetric(float64(res.Windows), "windows")
			}
		})
	}
}

// BenchmarkKernelSleep measures the kernel's Sleep/dispatch hot path in
// isolation — the per-event cost under every simulated client thread and
// server stage. allocs/op must stay ~0: the event free list and the
// per-process wake closure are what keep Sleep-heavy workloads (millions
// of events per sweep cell) off the allocator.
func BenchmarkKernelSleep(b *testing.B) {
	k := sim.NewKernel(1)
	stop := false
	for i := 0; i < 16; i++ {
		k.Spawn("sleeper", func(p *sim.Proc) {
			for !stop {
				p.Sleep(25)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.RunUntil(sim.Time((i + 1) * 1_000)); err != nil {
			b.Fatal(err)
		}
	}
	stop = true
	b.StopTimer()
	_ = k.RunUntil(sim.Time((b.N + 2) * 1_000))
}

// BenchmarkSimKernel measures the raw event throughput of the simulation
// kernel itself — the substrate cost under everything above.
func BenchmarkSimKernel(b *testing.B) {
	k := sim.NewKernel(1)
	r := sim.NewResource(k, "r", 4)
	stop := false
	for i := 0; i < 16; i++ {
		k.Spawn("worker", func(p *sim.Proc) {
			for !stop {
				r.Use(p, 100)
				p.Sleep(50)
			}
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.RunUntil(sim.Time((i + 1) * 10_000)); err != nil {
			b.Fatal(err)
		}
	}
	stop = true
	b.StopTimer()
	_ = k.RunUntil(sim.Time((b.N + 2) * 10_000))
}

// BenchmarkEndToEndOps measures full-stack simulated operations per
// wall-clock second for each database at RF 3 — the simulator's headline
// cost metric.
func BenchmarkEndToEndOps(b *testing.B) {
	for _, db := range []string{"HBase", "Cassandra"} {
		db := db
		b.Run(db, func(b *testing.B) {
			o := benchOptions()
			o.MicroOps = int64(b.N)
			if o.MicroOps < 1000 {
				o.MicroOps = 1000
			}
			res, err := core.RunFig1Round(o, db, 3)
			if err != nil {
				b.Fatal(err)
			}
			var tput float64
			for _, m := range res {
				if m.Op == "read" {
					tput = m.Throughput
				}
			}
			b.ReportMetric(tput, "simops/s")
		})
	}
}

func benchName(a, sep string, n int) string {
	if sep == "" {
		return a + "-" + itoa(n)
	}
	return a + "/" + sep + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
