module cloudbench

go 1.22

// Zero dependencies by policy. The simlint engine (internal/lint) mirrors
// the golang.org/x/tools/go/analysis driver API and a pointer-analysis
// shape compatible with x/tools/go/ssa + go/pointer, so the analyzers can
// be rehosted on x/tools if it is ever vendored. If that happens, pin it
// here at an exact version (no indirect float) and upgrade only
// deliberately, re-running `make lint-report` to confirm the 60s CI
// budget still holds; until then the self-contained loader in
// internal/lint/load.go is the single source of type information.
