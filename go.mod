module cloudbench

go 1.22
