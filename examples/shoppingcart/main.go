// Shopping cart: the paper's "read & update" scenario (Table 1, online
// shopping cart) on the Cassandra-like store. Customers review their cart
// and change their choices — a read-modify-write cycle — while the app
// needs read-your-writes. The example contrasts QUORUM (R+W overlap, safe)
// with ONE/ONE (fast but can read a stale cart).
//
//	go run ./examples/shoppingcart
package main

import (
	"fmt"
	"time"

	"cloudbench/internal/cassandra"
	"cloudbench/internal/cluster"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
)

const (
	customers = 40
	rounds    = 25
)

func main() {
	k := sim.NewKernel(7)
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 9
	rack := cluster.New(k, ccfg)
	servers, clientNode := rack.Nodes[:8], rack.Nodes[8]

	db := cassandra.New(k, cassandra.DefaultConfig(), servers)

	type outcome struct {
		name       string
		latency    stats.Histogram
		staleReads int
		ops        int
	}
	results := make([]*outcome, 0, 2)

	for _, mode := range []struct {
		name        string
		read, write kv.ConsistencyLevel
	}{
		{"QUORUM/QUORUM", kv.Quorum, kv.Quorum},
		{"ONE/ONE", kv.One, kv.One},
	} {
		mode := mode
		out := &outcome{name: mode.name}
		results = append(results, out)
		done := make([]*sim.Future[struct{}], customers)
		for c := 0; c < customers; c++ {
			c := c
			cl := db.NewClient(clientNode).WithConsistency(mode.read, mode.write)
			done[c] = sim.NewFuture[struct{}](k)
			k.Spawn(fmt.Sprintf("customer-%s-%d", mode.name, c), func(p *sim.Proc) {
				defer done[c].Set(struct{}{})
				cart := kv.Key(fmt.Sprintf("cart-%s-%04d", mode.name, c))
				items := 0
				for r := 0; r < rounds; r++ {
					start := p.Now()
					// Review the cart…
					rec, err := cl.Read(p, cart, nil)
					switch {
					case err == kv.ErrNotFound && items > 0:
						out.staleReads++ // cart exists but this replica lags
					case err == nil:
						if got := int(rec["items"].Data[0]); got < items {
							out.staleReads++ // older version of the cart
						}
					}
					// …then change a choice.
					items++
					if err := cl.Update(p, cart, kv.Record{
						"items": kv.ByteValue([]byte{byte(items)}),
						"note":  kv.SizedValue(120),
					}); err != nil {
						items--
					}
					out.latency.Record(p.Now().Sub(start))
					out.ops++
					p.Sleep(time.Duration(1+p.Rand().Intn(8)) * time.Millisecond)
				}
			})
		}
		k.Spawn("waiter-"+mode.name, func(p *sim.Proc) {
			for _, d := range done {
				d.Await(p)
			}
		})
	}

	if err := k.Run(); err != nil {
		fmt.Println("simulation error:", err)
		return
	}

	t := stats.NewTable("Shopping cart — read & update, 40 customers × 25 reviews",
		"consistency", "ops", "mean", "p99", "stale-reads")
	for _, out := range results {
		s := out.latency.Summarize()
		t.AddRow(out.name, out.ops, s.Mean.Round(time.Microsecond).String(),
			s.P99.Round(time.Microsecond).String(), out.staleReads)
	}
	fmt.Print(t)
	fmt.Println("\nQUORUM reads always see the customer's own writes (R+W > N);")
	fmt.Println("ONE/ONE is faster per op but may show a stale cart right after a change.")
}
