// Feed reader: the paper's "read latest" scenario (Table 1, feeds
// reading) — users read the newest posts while writers keep publishing.
// The example runs the read-latest workload against both databases and,
// for Cassandra, at all three of the paper's consistency levels, printing
// a miniature of Fig. 3's read-latest panel.
//
//	go run ./examples/feedreader
package main

import (
	"fmt"
	"time"

	"cloudbench/internal/cassandra"
	"cloudbench/internal/cluster"
	"cloudbench/internal/hbase"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

func main() {
	table := stats.NewTable("Feed reading — read latest (80/20), 64 threads, 6 servers",
		"system", "ops/sec", "mean", "p95", "stale/missing")

	spec := ycsb.ReadLatest(2000)

	// Cassandra at each consistency level.
	for _, mode := range []struct {
		name        string
		read, write kv.ConsistencyLevel
	}{
		{"Cassandra ONE", kv.One, kv.One},
		{"Cassandra QUORUM", kv.Quorum, kv.Quorum},
		{"Cassandra writeALL", kv.One, kv.All},
	} {
		res := runFeed(mode.name, func(k *sim.Kernel, servers []*cluster.Node, client *cluster.Node) ycsb.ClientFactory {
			cfg := cassandra.DefaultConfig()
			cfg.ReadCL, cfg.WriteCL = mode.read, mode.write
			db := cassandra.New(k, cfg, servers)
			return func() kv.Client { return db.NewClient(client) }
		}, spec)
		addRow(table, mode.name, res)
	}

	// HBase for comparison (always strongly consistent).
	res := runFeed("HBase", func(k *sim.Kernel, servers []*cluster.Node, client *cluster.Node) ycsb.ClientFactory {
		db := hbase.New(k, hbase.DefaultConfig(), servers, client, spec.SplitPoints(12))
		return func() kv.Client { return db.NewClient(client) }
	}, spec)
	addRow(table, "HBase (strong)", res)

	fmt.Print(table)
	fmt.Println("\n\"stale/missing\" counts reads of a just-published post that a lagging")
	fmt.Println("replica could not serve yet — zero under strong consistency.")
}

func runFeed(name string, build func(*sim.Kernel, []*cluster.Node, *cluster.Node) ycsb.ClientFactory, spec ycsb.Spec) ycsb.Result {
	k := sim.NewKernel(99)
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 7
	rack := cluster.New(k, ccfg)
	servers, clientNode := rack.Nodes[:6], rack.Nodes[6]
	factory := build(k, servers, clientNode)

	var res ycsb.Result
	k.Spawn("driver", func(p *sim.Proc) {
		w := ycsb.NewWorkload(spec)
		ycsb.Load(p, factory, w, 16, 0, spec.RecordCount)
		p.Sleep(500 * time.Millisecond)
		run := ycsb.NewWorkload(ycsb.ReadLatest(w.Inserted()))
		res = ycsb.Run(p, factory, run, ycsb.RunConfig{
			Threads: 64, Ops: 6000, WarmupFraction: 0.1,
		})
	})
	if err := k.Run(); err != nil {
		fmt.Printf("%s: simulation error: %v\n", name, err)
	}
	return res
}

func addRow(t *stats.Table, name string, res ycsb.Result) {
	s := res.Overall.Summarize()
	t.AddRow(name, fmt.Sprintf("%.0f", res.Throughput),
		s.Mean.Round(time.Microsecond).String(),
		s.P95.Round(time.Microsecond).String(),
		res.NotFound)
}
