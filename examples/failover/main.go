// Failover: replication's other job. The paper motivates replication with
// availability ("redirecting operations against failed data blocks to
// their replicas"); this example kills a Cassandra node mid-workload and
// shows how each consistency level rides through the failure, how hinted
// handoff catches the node up after recovery, and how the single-owner
// HBase design goes unavailable for the failed server's regions instead.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"time"

	"cloudbench/internal/cassandra"
	"cloudbench/internal/cluster"
	"cloudbench/internal/hbase"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

const (
	failAt    = 2 * time.Second
	recoverAt = 6 * time.Second
	endAt     = 12 * time.Second
)

func main() {
	spec := ycsb.ReadUpdate(1500)

	table := stats.NewTable(
		"Failover — one of 6 servers down from t=2s to t=6s (read & update workload)",
		"system", "ok-ops", "errors", "error-window", "hints-replayed")

	for _, mode := range []struct {
		name        string
		read, write kv.ConsistencyLevel
	}{
		{"Cassandra ONE", kv.One, kv.One},
		{"Cassandra QUORUM", kv.Quorum, kv.Quorum},
		{"Cassandra ALL", kv.All, kv.All},
	} {
		k := sim.NewKernel(5)
		ccfg := cluster.DefaultConfig()
		ccfg.Nodes = 7
		rack := cluster.New(k, ccfg)
		servers, clientNode := rack.Nodes[:6], rack.Nodes[6]
		cfg := cassandra.DefaultConfig()
		cfg.ReadCL, cfg.WriteCL = mode.read, mode.write
		db := cassandra.New(k, cfg, servers)

		ok, errs, firstErr, lastErr := runVictim(k, clientNode, servers[2],
			func() kv.Client { return db.NewClient(clientNode) }, spec)
		window := "none"
		if errs > 0 {
			window = fmt.Sprintf("%v..%v", firstErr.Round(time.Millisecond), lastErr.Round(time.Millisecond))
		}
		table.AddRow(mode.name, ok, errs, window, db.HintsReplayed)
	}

	// HBase: the failed server's regions are simply unavailable.
	{
		k := sim.NewKernel(5)
		ccfg := cluster.DefaultConfig()
		ccfg.Nodes = 7
		rack := cluster.New(k, ccfg)
		servers, clientNode := rack.Nodes[:6], rack.Nodes[6]
		db := hbase.New(k, hbase.DefaultConfig(), servers, clientNode, spec.SplitPoints(12))
		ok, errs, firstErr, lastErr := runVictim(k, clientNode, servers[2],
			func() kv.Client { return db.NewClient(clientNode) }, spec)
		window := "none"
		if errs > 0 {
			window = fmt.Sprintf("%v..%v", firstErr.Round(time.Millisecond), lastErr.Round(time.Millisecond))
		}
		table.AddRow("HBase (single owner)", ok, errs, window, "n/a")
	}

	fmt.Print(table)
	fmt.Println("\nCassandra at ONE/QUORUM keeps serving through the failure and hinted")
	fmt.Println("handoff repairs the returning node; at ALL every write touching the dead")
	fmt.Println("replica fails. HBase requests for the failed server's regions error until")
	fmt.Println("it returns (region reassignment is out of scope for this example).")
}

// runVictim loads the table, starts a light workload, fails victim at
// failAt, recovers it at recoverAt, and stops at endAt.
func runVictim(k *sim.Kernel, clientNode, victim *cluster.Node, factory ycsb.ClientFactory, spec ycsb.Spec) (ok, errs int64, firstErr, lastErr time.Duration) {
	firstErr, lastErr = -1, -1
	k.Spawn("driver", func(p *sim.Proc) {
		w := ycsb.NewWorkload(spec)
		ycsb.Load(p, factory, w, 8, 0, spec.RecordCount)
		start := p.Now()
		k.After(failAt, func() { victim.Fail() })
		k.After(recoverAt, func() { victim.Recover() })

		workers := make([]*sim.Proc, 0, 16)
		for t := 0; t < 16; t++ {
			cl := factory()
			workers = append(workers, k.Spawn("worker", func(q *sim.Proc) {
				rng := q.Rand()
				for q.Now().Sub(start) < endAt {
					op := w.NextOp(rng)
					var err error
					if op.Type == ycsb.OpRead {
						_, err = cl.Read(q, op.Key, nil)
					} else {
						err = cl.Update(q, op.Key, op.Record)
					}
					if err != nil && err != kv.ErrNotFound {
						errs++
						at := q.Now().Sub(start)
						if firstErr < 0 {
							firstErr = at
						}
						lastErr = at
					} else {
						ok++
					}
					q.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
				}
			}))
		}
		for _, wk := range workers {
			wk.Done().Await(p)
		}
		p.Sleep(30 * time.Second) // let hint replay finish
	})
	if err := k.Run(); err != nil {
		fmt.Println("simulation error:", err)
	}
	return ok, errs, firstErr, lastErr
}
