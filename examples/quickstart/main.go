// Quickstart: build a simulated rack, start an HBase-like and a
// Cassandra-like database on it, and run basic operations through the
// shared kv.Client API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"cloudbench/internal/cassandra"
	"cloudbench/internal/cluster"
	"cloudbench/internal/hbase"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

func main() {
	// One kernel = one deterministic virtual world.
	k := sim.NewKernel(42)

	// A rack of 6 machines: 5 database servers + 1 client.
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 6
	rack := cluster.New(k, ccfg)
	servers, clientNode := rack.Nodes[:5], rack.Nodes[5]

	// HBase at replication factor 3, regions pre-split at "user5…".
	hb := hbase.New(k, hbase.DefaultConfig(), servers, clientNode, []kv.Key{"user5"})

	// Cassandra at replication factor 3, QUORUM/QUORUM.
	ca := cassandra.New(k, cassandra.DefaultConfig(), servers)

	k.Spawn("demo", func(p *sim.Proc) {
		for _, db := range []struct {
			name string
			cl   kv.Client
		}{
			{"HBase", hb.NewClient(clientNode)},
			{"Cassandra", ca.NewClient(clientNode).WithConsistency(kv.Quorum, kv.Quorum)},
		} {
			fmt.Printf("== %s ==\n", db.name)

			// Insert a few user profiles.
			for i := 0; i < 5; i++ {
				key := kv.Key(fmt.Sprintf("user%d", i))
				rec := kv.Record{
					"name":  kv.ByteValue([]byte(fmt.Sprintf("user number %d", i))),
					"score": kv.ByteValue([]byte{byte(10 * i)}),
				}
				start := p.Now()
				if err := db.cl.Insert(p, key, rec); err != nil {
					fmt.Println("insert failed:", err)
					continue
				}
				fmt.Printf("  insert %s in %v\n", key, p.Now().Sub(start).Round(time.Microsecond))
			}

			// Read one back.
			start := p.Now()
			rec, err := db.cl.Read(p, "user3", nil)
			if err != nil {
				fmt.Println("read failed:", err)
				continue
			}
			fmt.Printf("  read user3 -> name=%q in %v\n",
				rec["name"].Data, p.Now().Sub(start).Round(time.Microsecond))

			// Partial update, then verify the merge.
			if err := db.cl.Update(p, "user3", kv.Record{"score": kv.ByteValue([]byte{99})}); err != nil {
				fmt.Println("update failed:", err)
				continue
			}
			rec, _ = db.cl.Read(p, "user3", nil)
			fmt.Printf("  after update: score=%d name=%q (older field preserved)\n",
				rec["score"].Data[0], rec["name"].Data)

			// Range scan.
			rows, err := db.cl.Scan(p, "user1", 3, nil)
			if err != nil {
				fmt.Println("scan failed:", err)
				continue
			}
			fmt.Print("  scan from user1: ")
			for _, r := range rows {
				fmt.Printf("%s ", r.Key)
			}
			fmt.Println()

			// Delete.
			db.cl.Delete(p, "user0")
			if _, err := db.cl.Read(p, "user0", nil); err == kv.ErrNotFound {
				fmt.Println("  user0 deleted")
			}
		}
		fmt.Printf("\nsimulated time elapsed: %v\n", p.Now())
	})

	if err := k.Run(); err != nil {
		fmt.Println("simulation error:", err)
	}
}
