# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; staticcheck and govulncheck additionally run there with
# pinned versions and are invoked here only if already on PATH.

GO ?= go

.PHONY: all build test race bench lint vet trace

all: build lint test

build:
	$(GO) build ./...

# -short runs every mechanism end to end at smoke scale.
test:
	$(GO) test -short -timeout 10m ./...

race:
	$(GO) test -race -short -timeout 30m ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' -short -timeout 15m ./...

vet:
	$(GO) vet ./...

# simlint enforces the determinism, hot-path, and hook invariants
# (DESIGN.md "Static invariants"). Zero non-suppressed findings required.
lint: vet
	$(GO) run ./cmd/simlint ./...
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "staticcheck not installed; CI runs it pinned"

# Per-phase latency decomposition at smoke scale: tracebreak.csv holds the
# phase-share grid, trace.json one span-retaining cell in Chrome
# trace-event format (load into chrome://tracing or Perfetto).
trace:
	$(GO) run ./cmd/replbench -experiment tracebreak -short -o tracebreak.csv -trace-out trace.json
