# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; staticcheck and govulncheck additionally run there with
# pinned versions and are invoked here only if already on PATH.

GO ?= go

.PHONY: all build test race race-shard bench bench-kernel bench-shard bench-scale bench-spectrum bench-geo lint lint-report vet trace

all: build lint test

build:
	$(GO) build ./...

# -short runs every mechanism end to end at smoke scale.
test:
	$(GO) test -short -timeout 10m ./...

race:
	$(GO) test -race -short -timeout 30m ./...

# Same suite on 4-shard kernel groups: every deployment runs through the
# conservative window engine, so the cross-shard synchronization is
# race-clean under real concurrency, not just deterministic.
race-shard:
	CLOUDBENCH_SHARDS=4 $(GO) test -race -short -timeout 30m ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' -short -timeout 15m ./...

# Kernel hot-path benchmarks (scheduler, spawn churn, queue cycle) at
# stable iteration counts, archived as a JSON artifact (see DESIGN.md §9).
bench-kernel:
	$(GO) test -bench='KernelSleep|KernelScheduleWheel|SpawnChurn|QueueRing' \
		-benchmem -benchtime=20x -run='^$$' ./internal/sim . \
		| $(GO) run ./cmd/benchjson -o BENCH_kernel.json
	@cat BENCH_kernel.json

# Single-cell scaling on the sharded kernel: the 64-node saturating
# shardscale cell at 1/2/4/8 shards, archived as a JSON artifact beside
# BENCH_kernel.json. Wall-clock scaling needs host cores — on a 1-core
# runner the curve records engine overhead at ~1x instead (DESIGN.md §10).
bench-shard:
	$(GO) test -bench=ShardScale -benchmem -benchtime=3x -run='^$$' -timeout 30m . \
		| $(GO) run ./cmd/benchjson -o BENCH_shard.json
	@cat BENCH_shard.json

# Deployment-scale scaling curve: the 512-node, million-session megascale
# deployment at 1/2/4/8 shards, archived with the host's GOMAXPROCS and
# CPU count (benchjson records both — the curve is uninterpretable
# without them). Expect minutes of wall clock; needs ≥8 host cores to
# show the 8-shard speedup. SCALE_ARGS adds e.g. -short for the CI smoke.
SCALE_ARGS ?=
bench-scale:
	$(GO) test -bench='^BenchmarkMegaScale$$' -benchmem -benchtime=1x -run='^$$' $(SCALE_ARGS) -timeout 60m . \
		| $(GO) run ./cmd/benchjson -o BENCH_scale.json
	@cat BENCH_scale.json

# Replication-spectrum headline artifact: the three-backend grid at smoke
# scale with the async object store's stale-% and t-visibility p99 as
# reported metrics, archived beside the kernel numbers (DESIGN.md §11).
bench-spectrum:
	$(GO) test -bench=Spectrum -benchmem -benchtime=1x -run='^$$' -short -timeout 15m . \
		| $(GO) run ./cmd/benchjson -o BENCH_spectrum.json
	@cat BENCH_spectrum.json

# Geo headline artifact: the SLA cell's fixed-EACH_QUORUM versus adaptive
# write p99 (and the adaptive client's staleness cost) over the 80ms WAN
# at smoke scale, archived beside the other numbers (DESIGN.md §13).
bench-geo:
	$(GO) test -bench='^BenchmarkGeo$$' -benchmem -benchtime=1x -run='^$$' -short -timeout 15m . \
		| $(GO) run ./cmd/benchjson -o BENCH_geo.json
	@cat BENCH_geo.json

vet:
	$(GO) vet ./...

# simlint enforces the determinism, hot-path, isolation, and hook
# invariants (DESIGN.md "Static invariants", §12). Zero non-suppressed
# findings required. LINT_ANALYZERS selects a comma-separated subset
# (e.g. `make lint LINT_ANALYZERS=shardsafe,blockfree`); unknown names
# fail rather than silently skipping enforcement.
LINT_ANALYZERS ?=
lint: vet
	$(GO) run ./cmd/simlint $(if $(LINT_ANALYZERS),-analyzers $(LINT_ANALYZERS)) ./...
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "staticcheck not installed; CI runs it pinned"

# The full suite plus the //simlint:ignore inventory and the wall-clock
# budget the CI job enforces: one process, one SSA/points-to build shared
# by all seven analyzers, under 60s even on a cold build cache.
lint-report:
	$(GO) run ./cmd/simlint -ignores -budget 60s ./...

# Per-phase latency decomposition at smoke scale: tracebreak.csv holds the
# phase-share grid, trace.json one span-retaining cell in Chrome
# trace-event format (load into chrome://tracing or Perfetto).
trace:
	$(GO) run ./cmd/replbench -experiment tracebreak -short -o tracebreak.csv -trace-out trace.json
