package ycsb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

func TestUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform{Lo: 5, Hi: 9}
	for i := 0; i < 1000; i++ {
		v := u.Next(rng)
		if v < 5 || v > 9 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestZipfianSkewAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipfian(1000)
	counts := map[int64]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := z.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 should be by far the most popular (~ 1/zetan ≈ 13%).
	if counts[0] < draws/20 {
		t.Fatalf("item 0 drawn %d times of %d; zipfian not skewed", counts[0], draws)
	}
	if counts[0] < counts[500]*10 {
		t.Fatalf("head %d vs mid %d: insufficient skew", counts[0], counts[500])
	}
}

func TestZipfianIncrementalNMatchesStatic(t *testing.T) {
	// Growing n incrementally must agree with a freshly built generator.
	rngA := rand.New(rand.NewSource(3))
	rngB := rand.New(rand.NewSource(3))
	grown := NewZipfian(100)
	grown.NextN(rngA, 500) // extends zeta incrementally
	fresh := NewZipfian(500)
	if math.Abs(grown.zetan-fresh.zetan) > 1e-9 {
		t.Fatalf("zetan drift: %v vs %v", grown.zetan, fresh.zetan)
	}
	_ = rngB
}

func TestScrambledZipfianSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewScrambledZipfian(10000)
	counts := map[int64]int{}
	for i := 0; i < 50000; i++ {
		v := s.Next(rng)
		if v < 0 || v >= 10000 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// The hottest item should NOT be item 0 (that is the whole point of
	// scrambling) — find the mode.
	mode, best := int64(-1), 0
	for v, c := range counts {
		if c > best {
			mode, best = v, c
		}
	}
	if mode == 0 {
		t.Fatal("scrambled zipfian left the hot key at 0")
	}
	if best < 1000 {
		t.Fatalf("mode only drawn %d times; skew lost in scrambling", best)
	}
}

func TestLatestFavorsRecent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewAcknowledgedCounter(1000)
	for i := 0; i < 500; i++ {
		c.Ack(c.Next(nil))
	}
	l := NewLatest(c)
	last := c.LastAcked()
	recent := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		v := l.Next(rng)
		if v < 0 || v > last {
			t.Fatalf("out of range: %d (last %d)", v, last)
		}
		if last-v < 100 {
			recent++
		}
	}
	// The newest 100 of ~1500 items (6.7%) should get far more than 6.7%.
	if float64(recent)/draws < 0.3 {
		t.Fatalf("recent fraction = %.3f; latest not skewed to new items", float64(recent)/draws)
	}
}

func TestHotSpotFractions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h := HotSpot{Lo: 0, Hi: 999, HotFraction: 0.2, HotOpn: 0.8}
	hot := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if h.Next(rng) < 200 {
			hot++
		}
	}
	frac := float64(hot) / draws
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("hot fraction = %.3f, want ~0.80", frac)
	}
}

func TestDiscreteProportions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var d Discrete
	d.Add(0.95, 1)
	d.Add(0.05, 2)
	d.Add(0, 3) // zero weight never drawn
	counts := map[int64]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[d.Next(rng)]++
	}
	if counts[3] != 0 {
		t.Fatal("zero-weight value drawn")
	}
	frac := float64(counts[1]) / draws
	if frac < 0.93 || frac > 0.97 {
		t.Fatalf("proportion = %.3f, want ~0.95", frac)
	}
}

func TestCounterSequential(t *testing.T) {
	c := NewCounter(10)
	if c.Next(nil) != 10 || c.Next(nil) != 11 || c.Last() != 11 {
		t.Fatal("counter broken")
	}
}

func TestKeyForBijective(t *testing.T) {
	s := Spec{KeyPad: 6}
	f := func(a, b uint32) bool {
		x, y := int64(a%1000000), int64(b%1000000)
		if x == y {
			return true
		}
		return s.KeyFor(x) != s.KeyFor(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyForFixedWidthSortable(t *testing.T) {
	s := Spec{KeyPad: 8}
	k1 := s.KeyFor(123)
	if len(k1) != len("user")+8 {
		t.Fatalf("key %q has wrong width", k1)
	}
}

func TestSplitPointsOrdered(t *testing.T) {
	s := Spec{KeyPad: 8}
	pts := s.SplitPoints(16)
	if len(pts) != 15 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1] >= pts[i] {
			t.Fatalf("splits not increasing: %v", pts)
		}
	}
}

func TestWorkloadOpMix(t *testing.T) {
	w := NewWorkload(ReadMostly(10000))
	rng := rand.New(rand.NewSource(8))
	counts := map[OpType]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[w.NextOp(rng).Type]++
	}
	readFrac := float64(counts[OpRead]) / draws
	if readFrac < 0.93 || readFrac > 0.97 {
		t.Fatalf("read fraction = %.3f, want ~0.95", readFrac)
	}
	if counts[OpScan] != 0 || counts[OpInsert] != 0 {
		t.Fatalf("unexpected ops: %v", counts)
	}
}

func TestWorkloadInsertAdvancesCounterOnAck(t *testing.T) {
	w := NewWorkload(ReadLatest(1000))
	rng := rand.New(rand.NewSource(9))
	before := w.Inserted()
	var inserts int64
	var pendingOp Op
	for i := 0; i < 1000; i++ {
		op := w.NextOp(rng)
		if op.Type != OpInsert {
			continue
		}
		inserts++
		if inserts == 1 {
			pendingOp = op // hold the first insert unacknowledged
			continue
		}
		w.Ack(op)
	}
	if inserts < 100 {
		t.Fatalf("inserts = %d, want ~20%%", inserts)
	}
	// The unacknowledged first insert gates the contiguous limit.
	if w.Inserted() != before {
		t.Fatalf("Inserted = %d, want gated at %d", w.Inserted(), before)
	}
	w.Ack(pendingOp)
	if w.Inserted() != before+inserts {
		t.Fatalf("Inserted = %d after ack, want %d", w.Inserted(), before+inserts)
	}
}

func TestAcknowledgedCounterWindow(t *testing.T) {
	c := NewAcknowledgedCounter(0)
	a, b, d := c.Next(nil), c.Next(nil), c.Next(nil)
	c.Ack(b)
	c.Ack(d)
	if c.LastAcked() != -1 {
		t.Fatalf("limit = %d, want -1 (gap at 0)", c.LastAcked())
	}
	c.Ack(a)
	if c.LastAcked() != 2 {
		t.Fatalf("limit = %d, want 2 after gap closes", c.LastAcked())
	}
	c.Ack(a) // double-ack is a no-op
	if c.LastAcked() != 2 {
		t.Fatal("double ack moved the limit")
	}
}

func TestWorkloadScanLengths(t *testing.T) {
	w := NewWorkload(ScanShortRanges(1000))
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 2000; i++ {
		op := w.NextOp(rng)
		if op.Type != OpScan {
			continue
		}
		if op.ScanLen < 1 || op.ScanLen > w.Spec.MaxScanLength {
			t.Fatalf("scan length %d out of [1,%d]", op.ScanLen, w.Spec.MaxScanLength)
		}
	}
}

func TestWorkloadUpdateWritesOneField(t *testing.T) {
	w := NewWorkload(ReadUpdate(1000))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		op := w.NextOp(rng)
		if op.Type == OpUpdate && len(op.Record) != 1 {
			t.Fatalf("update wrote %d fields, want 1", len(op.Record))
		}
	}
}

func TestTable1PresetRatios(t *testing.T) {
	cases := []struct {
		spec  Spec
		read  float64
		other float64
	}{
		{ReadMostly(1), 0.95, 0.05},
		{ReadLatest(1), 0.80, 0.20},
		{ReadUpdate(1), 0.50, 0.50},
		{ReadModifyWrite(1), 0.50, 0.50},
		{ScanShortRanges(1), 0, 1.0},
	}
	for _, c := range cases {
		total := c.spec.ReadProportion + c.spec.UpdateProportion +
			c.spec.InsertProportion + c.spec.ScanProportion + c.spec.RMWProportion
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("%s proportions sum to %v", c.spec.Name, total)
		}
		if c.spec.ReadProportion != c.read {
			t.Errorf("%s read = %v, want %v", c.spec.Name, c.spec.ReadProportion, c.read)
		}
	}
	if ReadMostly(1).RequestDistribution != DistZipfian ||
		ReadLatest(1).RequestDistribution != DistLatest {
		t.Error("Table 1 distributions wrong")
	}
}

// fakeClient is an in-memory kv.Client with a fixed service latency, for
// exercising the runner without a database.
type fakeClient struct {
	store   map[kv.Key]kv.Record
	latency time.Duration
	fail    bool
}

func newFake(latency time.Duration) *fakeClient {
	return &fakeClient{store: map[kv.Key]kv.Record{}, latency: latency}
}

func (f *fakeClient) Read(p *sim.Proc, key kv.Key, fields []string) (kv.Record, error) {
	p.Sleep(f.latency)
	if f.fail {
		return nil, kv.ErrUnavailable
	}
	r, ok := f.store[key]
	if !ok {
		return nil, kv.ErrNotFound
	}
	return r, nil
}

func (f *fakeClient) Insert(p *sim.Proc, key kv.Key, rec kv.Record) error {
	p.Sleep(f.latency)
	if f.fail {
		return kv.ErrUnavailable
	}
	f.store[key] = rec
	return nil
}

func (f *fakeClient) Update(p *sim.Proc, key kv.Key, rec kv.Record) error {
	return f.Insert(p, key, rec)
}

func (f *fakeClient) Delete(p *sim.Proc, key kv.Key) error {
	p.Sleep(f.latency)
	delete(f.store, key)
	return nil
}

func (f *fakeClient) Scan(p *sim.Proc, start kv.Key, limit int, fields []string) ([]kv.KV, error) {
	p.Sleep(f.latency)
	return nil, nil
}

func TestLoadInsertsAllRecords(t *testing.T) {
	k := sim.NewKernel(1)
	fake := newFake(time.Millisecond)
	w := NewWorkload(ReadMostly(500))
	k.Spawn("driver", func(p *sim.Proc) {
		errs := Load(p, func() kv.Client { return fake }, w, 8, 0, 500)
		if errs != 0 {
			t.Errorf("errors = %d", errs)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fake.store) != 500 {
		t.Fatalf("store = %d records", len(fake.store))
	}
}

func TestRunUnthrottledClosedLoop(t *testing.T) {
	k := sim.NewKernel(2)
	fake := newFake(time.Millisecond)
	w := NewWorkload(ReadMostly(100))
	var res Result
	k.Spawn("driver", func(p *sim.Proc) {
		Load(p, func() kv.Client { return fake }, w, 4, 0, 100)
		res = Run(p, func() kv.Client { return fake }, w, RunConfig{
			Threads: 4, Ops: 1000,
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if res.MeasuredOps != 1000 {
		t.Fatalf("measured = %d", res.MeasuredOps)
	}
	// 4 threads, 1ms service (update path has same latency): ~4000 ops/s.
	if res.Throughput < 3000 || res.Throughput > 5000 {
		t.Fatalf("throughput = %.0f, want ~4000", res.Throughput)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
}

func TestRunThrottledHitsTarget(t *testing.T) {
	k := sim.NewKernel(3)
	fake := newFake(time.Millisecond)
	w := NewWorkload(ReadMostly(100))
	var res Result
	k.Spawn("driver", func(p *sim.Proc) {
		Load(p, func() kv.Client { return fake }, w, 4, 0, 100)
		res = Run(p, func() kv.Client { return fake }, w, RunConfig{
			Threads: 8, Ops: 2000, TargetThroughput: 500,
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Throughput < 450 || res.Throughput > 550 {
		t.Fatalf("throughput = %.0f, want ~500", res.Throughput)
	}
}

func TestRunWarmupExcluded(t *testing.T) {
	k := sim.NewKernel(4)
	fake := newFake(time.Millisecond)
	w := NewWorkload(ReadMostly(100))
	var res Result
	k.Spawn("driver", func(p *sim.Proc) {
		Load(p, func() kv.Client { return fake }, w, 4, 0, 100)
		res = Run(p, func() kv.Client { return fake }, w, RunConfig{
			Threads: 4, Ops: 1000, WarmupFraction: 0.2,
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if res.MeasuredOps < 750 || res.MeasuredOps > 810 {
		t.Fatalf("measured = %d, want ~800", res.MeasuredOps)
	}
}

func TestRunCountsErrors(t *testing.T) {
	k := sim.NewKernel(5)
	fake := newFake(time.Millisecond)
	w := NewWorkload(ReadUpdate(100))
	var res Result
	k.Spawn("driver", func(p *sim.Proc) {
		Load(p, func() kv.Client { return fake }, w, 2, 0, 100)
		fake.fail = true
		res = Run(p, func() kv.Client { return fake }, w, RunConfig{Threads: 2, Ops: 200})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("expected errors")
	}
}

func TestRunRecordsPerOpHistograms(t *testing.T) {
	k := sim.NewKernel(6)
	fake := newFake(time.Millisecond)
	w := NewWorkload(ReadUpdate(100))
	var res Result
	k.Spawn("driver", func(p *sim.Proc) {
		Load(p, func() kv.Client { return fake }, w, 2, 0, 100)
		res = Run(p, func() kv.Client { return fake }, w, RunConfig{Threads: 2, Ops: 500})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if res.PerOp[OpRead].Count() == 0 || res.PerOp[OpUpdate].Count() == 0 {
		t.Fatal("per-op histograms empty")
	}
	if res.PerOp[OpRead].Count()+res.PerOp[OpUpdate].Count() != res.Overall.Count() {
		t.Fatal("per-op counts do not sum to overall")
	}
	// RMW latency should be ~2× single-op latency in the RMW workload.
	w2 := NewWorkload(ReadModifyWrite(100))
	var res2 Result
	k2 := sim.NewKernel(7)
	k2.Spawn("driver", func(p *sim.Proc) {
		Load(p, func() kv.Client { return fake }, w2, 2, 0, 100)
		res2 = Run(p, func() kv.Client { return fake }, w2, RunConfig{Threads: 1, Ops: 300})
	})
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	rmw := res2.PerOp[OpReadModifyWrite].Mean()
	read := res2.PerOp[OpRead].Mean()
	if rmw < read*3/2 {
		t.Fatalf("rmw mean %v not ~2x read mean %v", rmw, read)
	}
}
