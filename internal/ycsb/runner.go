package ycsb

import (
	"time"

	"cloudbench/internal/consistency"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/trace"
)

// RunConfig controls one benchmark run phase.
type RunConfig struct {
	// Threads is the number of closed-loop client threads. The paper's
	// §3.1 warns it must be large enough not to bottleneck the client.
	Threads int
	// Ops is the number of operations to execute.
	Ops int64
	// TargetThroughput is the aggregate offered load in ops/second; 0
	// runs unthrottled (each thread issues as fast as responses return).
	TargetThroughput float64
	// WarmupFraction of Ops is executed before measurement starts, to
	// absorb the cold-start effects §6 complains about.
	WarmupFraction float64
	// Oracle, when non-nil, is the consistency oracle already attached to
	// the database under test. The runner aligns the oracle's measurement
	// window with its own (BeginMeasure when warmup ends) and snapshots
	// the report into Result.Consistency.
	Oracle *consistency.Oracle
	// Tracer, when non-nil, is the request tracer already attached to the
	// database under test. The runner opens a root span per operation and
	// aligns the tracer's measurement window with its own.
	//
	//simlint:hook
	Tracer *trace.Tracer
	// Events fire mid-run by operation progress: each Fn runs exactly
	// once, in simulation context, when the completed-operation count
	// reaches AfterOps. Entries must be in ascending AfterOps order.
	// Scheduling faults by progress rather than wall time keeps them
	// inside the run phase at every profile scale, since closed-loop run
	// duration varies with throughput.
	Events []RunEvent
}

// RunEvent is one progress-triggered callback; see RunConfig.Events.
type RunEvent struct {
	AfterOps int64
	Fn       func()
}

// Result is the outcome of a run phase.
type Result struct {
	Workload string
	Threads  int
	Target   float64

	// MeasuredOps and Elapsed cover the post-warmup window.
	MeasuredOps int64
	Elapsed     time.Duration
	// Throughput is the runtime throughput in ops/second.
	Throughput float64

	Overall *stats.Histogram
	// Intended measures latency from each operation's *scheduled* start
	// under throttling (YCSB's coordinated-omission-corrected "intended"
	// latency): when too few client threads carry the offered load, the
	// backlog shows up here even though Overall stays flat — the §3.1
	// client-thread effect.
	Intended *stats.Histogram
	PerOp    map[OpType]*stats.Histogram
	Errors   int64
	// NotFound counts reads of keys that were not visible — stale reads
	// under weak consistency land here when the key is brand new.
	NotFound int64
	// Consistency is the oracle's report over the measurement window,
	// when RunConfig.Oracle was set.
	Consistency *consistency.Report
}

// Summary returns the overall latency summary.
func (r *Result) Summary() stats.Summary { return r.Overall.Summarize() }

// MeanLatency returns the overall mean latency.
func (r *Result) MeanLatency() time.Duration { return r.Overall.Mean() }

// ClientFactory builds one database client per thread; threads must not
// share clients so coordinator round-robin and caches behave per
// connection.
type ClientFactory func() kv.Client

// Load inserts records [from, to) with the given number of threads,
// blocking the driver process until the load completes. It returns the
// number of failed inserts.
func Load(driver *sim.Proc, newClient ClientFactory, w *Workload, threads int, from, to int64) int64 {
	if threads < 1 {
		threads = 1
	}
	k := driver.Kernel()
	var errs int64
	next := from
	procs := make([]*sim.Proc, 0, threads)
	for t := 0; t < threads; t++ {
		cl := newClient()
		procs = append(procs, k.Spawn("ycsb-load", func(p *sim.Proc) {
			for {
				if next >= to {
					return
				}
				n := next
				next++
				op := w.LoadOp(p.Rand(), n)
				if err := cl.Insert(p, op.Key, op.Record); err != nil {
					errs++
				}
			}
		}))
	}
	for _, p := range procs {
		p.Done().Await(driver)
	}
	return errs
}

// Run executes one transaction phase, blocking the driver process, and
// returns its Result.
func Run(driver *sim.Proc, newClient ClientFactory, w *Workload, cfg RunConfig) Result {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	k := driver.Kernel()
	res := Result{
		Workload: w.Spec.Name,
		Threads:  cfg.Threads,
		Target:   cfg.TargetThroughput,
		Overall:  &stats.Histogram{},
		Intended: &stats.Histogram{},
		PerOp:    make(map[OpType]*stats.Histogram),
	}
	for _, t := range []OpType{OpRead, OpUpdate, OpInsert, OpScan, OpReadModifyWrite} {
		res.PerOp[t] = &stats.Histogram{}
	}

	warmupOps := int64(cfg.WarmupFraction * float64(cfg.Ops))
	var issued, completed int64
	var measureStart sim.Time
	measuring := warmupOps == 0
	start := k.Now()
	if measuring {
		measureStart = start
		if cfg.Oracle != nil {
			cfg.Oracle.BeginMeasure(start)
		}
		if cfg.Tracer != nil {
			cfg.Tracer.BeginMeasure(start)
		}
	}

	var interval time.Duration
	if cfg.TargetThroughput > 0 {
		interval = time.Duration(float64(cfg.Threads) / cfg.TargetThroughput * float64(time.Second))
	}
	nextEvent := 0

	procs := make([]*sim.Proc, 0, cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		t := t
		cl := newClient()
		procs = append(procs, k.Spawn("ycsb-thread", func(p *sim.Proc) {
			// Stagger thread start so paced threads do not fire in
			// lockstep.
			next := start
			if interval > 0 {
				next = start.Add(interval * time.Duration(t) / time.Duration(cfg.Threads))
				if next.Sub(p.Now()) > 0 {
					p.Sleep(next.Sub(p.Now()))
				}
			}
			for {
				if issued >= cfg.Ops {
					return
				}
				issued++
				intendedStart := p.Now()
				if interval > 0 {
					intendedStart = next
					if wait := next.Sub(p.Now()); wait > 0 {
						p.Sleep(wait)
					}
					next = next.Add(interval)
				}
				op := w.NextOp(p.Rand())
				opStart := p.Now()
				if cfg.Tracer != nil {
					cfg.Tracer.StartOp(p, classOf(op.Type))
				}
				err := execute(p, cl, op)
				if cfg.Tracer != nil {
					cfg.Tracer.EndOp(p)
				}
				end := p.Now()
				w.Ack(op)
				lat := end.Sub(opStart)
				completed++
				for nextEvent < len(cfg.Events) && completed >= cfg.Events[nextEvent].AfterOps {
					if fn := cfg.Events[nextEvent].Fn; fn != nil {
						fn()
					}
					nextEvent++
				}
				if !measuring && completed >= warmupOps {
					measuring = true
					measureStart = p.Now()
					if cfg.Oracle != nil {
						cfg.Oracle.BeginMeasure(measureStart)
					}
					if cfg.Tracer != nil {
						cfg.Tracer.BeginMeasure(measureStart)
					}
				} else if measuring {
					res.MeasuredOps++
					res.Overall.Record(lat)
					res.Intended.Record(end.Sub(intendedStart))
					res.PerOp[op.Type].Record(lat)
					if err == kv.ErrNotFound {
						res.NotFound++
					} else if err != nil {
						res.Errors++
					}
				}
			}
		}))
	}
	for _, p := range procs {
		p.Done().Await(driver)
	}
	res.Elapsed = k.Now().Sub(measureStart)
	if res.Elapsed > 0 {
		res.Throughput = float64(res.MeasuredOps) / res.Elapsed.Seconds()
	}
	if cfg.Oracle != nil {
		rep := cfg.Oracle.Report()
		res.Consistency = &rep
	}
	return res
}

// SessionConfig controls a session-churn phase: instead of Threads
// long-lived closed-loop threads, the driver spawns Sessions short-lived
// client processes over the run — at most Live alive at any instant —
// each executing OpsPerSession operations against a pooled client and
// exiting. This is the megascale shape: the paper-scale "a million
// clients" is a churn of arrivals, not a million concurrent threads, and
// process arrival/departure is exactly what stresses the kernel's proc
// pooling and the shard engine's window loop.
type SessionConfig struct {
	// Sessions is the total number of client processes spawned over the
	// phase.
	Sessions int64
	// Live bounds concurrent sessions; new arrivals wait for a free
	// client slot. Defaults to 1.
	Live int
	// OpsPerSession is each session's operation count. Defaults to 1.
	OpsPerSession int64
	// WarmupFraction of the total operations runs before measurement
	// starts, as in RunConfig.
	WarmupFraction float64
}

// RunSessions executes a session-churn phase, blocking the driver process,
// and returns its Result. Clients are built once per live slot and handed
// from session to session through a queue, so the phase allocates O(Live)
// clients no matter how many sessions churn through.
func RunSessions(driver *sim.Proc, newClient ClientFactory, w *Workload, cfg SessionConfig) Result {
	if cfg.Live < 1 {
		cfg.Live = 1
	}
	if cfg.OpsPerSession < 1 {
		cfg.OpsPerSession = 1
	}
	k := driver.Kernel()
	res := Result{
		Workload: w.Spec.Name,
		Threads:  cfg.Live,
		Overall:  &stats.Histogram{},
		Intended: &stats.Histogram{},
		PerOp:    make(map[OpType]*stats.Histogram),
	}
	for _, t := range []OpType{OpRead, OpUpdate, OpInsert, OpScan, OpReadModifyWrite} {
		res.PerOp[t] = &stats.Histogram{}
	}

	totalOps := cfg.Sessions * cfg.OpsPerSession
	warmupOps := int64(cfg.WarmupFraction * float64(totalOps))
	var completed int64
	measuring := warmupOps == 0
	measureStart := k.Now()

	free := sim.NewQueue[kv.Client](k)
	for i := 0; i < cfg.Live; i++ {
		free.Push(newClient())
	}
	for s := int64(0); s < cfg.Sessions; s++ {
		cl := free.Pop(driver) // admission control: wait for a slot
		k.Go("ycsb-session", func(p *sim.Proc) {
			for op := int64(0); op < cfg.OpsPerSession; op++ {
				o := w.NextOp(p.Rand())
				opStart := p.Now()
				err := execute(p, cl, o)
				lat := p.Now().Sub(opStart)
				w.Ack(o)
				completed++
				if !measuring && completed >= warmupOps {
					measuring = true
					measureStart = p.Now()
				} else if measuring {
					res.MeasuredOps++
					res.Overall.Record(lat)
					res.Intended.Record(lat)
					res.PerOp[o.Type].Record(lat)
					if err == kv.ErrNotFound {
						res.NotFound++
					} else if err != nil {
						res.Errors++
					}
				}
			}
			free.Push(cl)
		})
	}
	// Drain: every slot back in the queue means every session exited.
	for i := 0; i < cfg.Live; i++ {
		free.Pop(driver)
	}
	res.Elapsed = k.Now().Sub(measureStart)
	if res.Elapsed > 0 {
		res.Throughput = float64(res.MeasuredOps) / res.Elapsed.Seconds()
	}
	return res
}

// execute performs one operation against the client. ErrNotFound on reads
// is reported to the caller but is not a client error (it is how stale or
// racing reads manifest). It runs once per YCSB operation — millions of
// times per sweep cell — hence the hotpath marker.
//
// classOf maps an operation type to its trace class.
func classOf(t OpType) trace.OpClass {
	switch t {
	case OpRead:
		return trace.ClassRead
	case OpUpdate:
		return trace.ClassUpdate
	case OpInsert:
		return trace.ClassInsert
	case OpScan:
		return trace.ClassScan
	case OpReadModifyWrite:
		return trace.ClassReadModifyWrite
	default:
		return trace.ClassBackground
	}
}

//simlint:hotpath
func execute(p *sim.Proc, cl kv.Client, op Op) error {
	switch op.Type {
	case OpRead:
		_, err := cl.Read(p, op.Key, op.Fields)
		return err
	case OpUpdate:
		return cl.Update(p, op.Key, op.Record)
	case OpInsert:
		return cl.Insert(p, op.Key, op.Record)
	case OpScan:
		_, err := cl.Scan(p, op.Key, op.ScanLen, nil)
		return err
	case OpReadModifyWrite:
		if _, err := cl.Read(p, op.Key, nil); err != nil && err != kv.ErrNotFound {
			return err
		}
		return cl.Update(p, op.Key, op.Record)
	default:
		return nil
	}
}
