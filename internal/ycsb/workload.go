package ycsb

import (
	"fmt"
	"math/rand"

	"cloudbench/internal/kv"
)

// OpType enumerates the YCSB core operations.
type OpType int

// Operation kinds.
const (
	OpRead OpType = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// String names the operation.
func (o OpType) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "RMW"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// Distribution selects the request key distribution.
type Distribution string

// Supported request distributions.
const (
	DistUniform Distribution = "uniform"
	DistZipfian Distribution = "zipfian"
	DistLatest  Distribution = "latest"
	DistHotSpot Distribution = "hotspot"
)

// Spec is a workload definition, mirroring a YCSB workload properties
// file.
type Spec struct {
	Name    string
	Usage   string // the paper's "typical usage" column
	Comment string

	RecordCount int64
	FieldCount  int
	FieldLength int // bytes per field (modeled)

	ReadProportion   float64
	UpdateProportion float64
	InsertProportion float64
	ScanProportion   float64
	RMWProportion    float64

	RequestDistribution Distribution
	MaxScanLength       int
	ReadAllFields       bool
	WriteAllFields      bool

	// KeyPad is the zero-padded width of key numbers; the key space is
	// [0, 10^KeyPad).
	KeyPad int
}

// keyMultiplier is coprime with every power of ten, so n*keyMultiplier mod
// 10^KeyPad is a bijection: ordered key names get hash-scattered placement
// (the role of YCSB's hashed key names) while staying fixed-width sortable.
const keyMultiplier = 2654435761

// keySpace returns the size of the key-number space.
func (s *Spec) keySpace() int64 {
	n := int64(1)
	for i := 0; i < s.KeyPad; i++ {
		n *= 10
	}
	return n
}

// KeyFor maps a logical key number to its row key.
func (s *Spec) KeyFor(n int64) kv.Key {
	scattered := (n % s.keySpace()) * keyMultiplier % s.keySpace()
	return kv.Key(fmt.Sprintf("user%0*d", s.KeyPad, scattered))
}

// SplitPoints returns n-1 keys that divide the key space into n equal
// key ranges; used to pre-split HBase regions. These are data-placement
// splits within one simulated cluster — not to be confused with the
// execution shards of sim.ShardGroup, which partition the event loop
// itself (see DESIGN.md §10).
func (s *Spec) SplitPoints(n int) []kv.Key {
	var out []kv.Key
	space := s.keySpace()
	for i := 1; i < n; i++ {
		out = append(out, kv.Key(fmt.Sprintf("user%0*d", s.KeyPad, space/int64(n)*int64(i))))
	}
	return out
}

// RecordBytes returns the modeled size of one full record.
func (s *Spec) RecordBytes() int { return s.FieldCount * s.FieldLength }

// Op is one generated operation.
type Op struct {
	Type    OpType
	Key     kv.Key
	Keynum  int64     // logical key number; inserts acknowledge it
	Record  kv.Record // for writes
	Fields  []string  // for reads; nil = all
	ScanLen int
}

// Workload turns a Spec into an operation stream. One Workload is shared
// by all client threads of a run (the simulation kernel serializes
// access).
type Workload struct {
	Spec       Spec
	keyChooser Generator
	opChooser  Discrete
	scanLen    Uniform
	inserted   *AcknowledgedCounter
	fieldNames []string
}

// NewWorkload prepares generators for the spec. The insert counter starts
// at RecordCount: the load phase inserts [0, RecordCount) and the run
// phase appends beyond it.
func NewWorkload(spec Spec) *Workload {
	w := &Workload{Spec: spec, inserted: NewAcknowledgedCounter(spec.RecordCount)}
	switch spec.RequestDistribution {
	case DistUniform:
		w.keyChooser = Uniform{Lo: 0, Hi: spec.RecordCount - 1}
	case DistLatest:
		w.keyChooser = NewLatest(w.inserted)
	case DistHotSpot:
		w.keyChooser = HotSpot{Lo: 0, Hi: spec.RecordCount - 1, HotFraction: 0.2, HotOpn: 0.8}
	default: // zipfian
		w.keyChooser = NewScrambledZipfian(spec.RecordCount)
	}
	w.opChooser.Add(spec.ReadProportion, int64(OpRead))
	w.opChooser.Add(spec.UpdateProportion, int64(OpUpdate))
	w.opChooser.Add(spec.InsertProportion, int64(OpInsert))
	w.opChooser.Add(spec.ScanProportion, int64(OpScan))
	w.opChooser.Add(spec.RMWProportion, int64(OpReadModifyWrite))
	maxScan := spec.MaxScanLength
	if maxScan < 1 {
		maxScan = 1
	}
	w.scanLen = Uniform{Lo: 1, Hi: int64(maxScan)}
	for i := 0; i < spec.FieldCount; i++ {
		w.fieldNames = append(w.fieldNames, fmt.Sprintf("field%d", i))
	}
	return w
}

// Inserted returns the count of records assumed present: the load base
// plus every acknowledged run-phase insert.
func (w *Workload) Inserted() int64 { return w.inserted.LastAcked() + 1 }

// Ack records that op (an insert) completed, unblocking the latest
// distribution up to it. Non-insert ops are ignored.
func (w *Workload) Ack(op Op) {
	if op.Type == OpInsert {
		w.inserted.Ack(op.Keynum)
	}
}

// nextKeynum picks an existing key number, clamped to what has been
// inserted so far.
func (w *Workload) nextKeynum(rng *rand.Rand) int64 {
	n := w.keyChooser.Next(rng)
	limit := w.Inserted()
	if limit < 1 {
		limit = 1
	}
	if n >= limit {
		n %= limit
	}
	if n < 0 {
		n = 0
	}
	return n
}

// buildValues creates a record of all fields (inserts) or one random field
// (updates with WriteAllFields=false).
func (w *Workload) buildValues(rng *rand.Rand, all bool) kv.Record {
	rec := make(kv.Record)
	if all {
		for _, f := range w.fieldNames {
			rec[f] = kv.SizedValue(w.Spec.FieldLength)
		}
		return rec
	}
	f := w.fieldNames[rng.Intn(len(w.fieldNames))]
	rec[f] = kv.SizedValue(w.Spec.FieldLength)
	return rec
}

// LoadOp returns the insert for load-phase record n.
func (w *Workload) LoadOp(rng *rand.Rand, n int64) Op {
	return Op{
		Type:   OpInsert,
		Key:    w.Spec.KeyFor(n),
		Record: w.buildValues(rng, true),
	}
}

// NextOp generates the next transaction-phase operation.
func (w *Workload) NextOp(rng *rand.Rand) Op {
	t := OpType(w.opChooser.Next(rng))
	switch t {
	case OpInsert:
		n := w.inserted.Next(nil)
		return Op{Type: OpInsert, Key: w.Spec.KeyFor(n), Keynum: n, Record: w.buildValues(rng, true)}
	case OpUpdate:
		return Op{
			Type:   OpUpdate,
			Key:    w.Spec.KeyFor(w.nextKeynum(rng)),
			Record: w.buildValues(rng, w.Spec.WriteAllFields),
		}
	case OpScan:
		return Op{
			Type:    OpScan,
			Key:     w.Spec.KeyFor(w.nextKeynum(rng)),
			ScanLen: int(w.scanLen.Next(rng)),
		}
	case OpReadModifyWrite:
		return Op{
			Type:   OpReadModifyWrite,
			Key:    w.Spec.KeyFor(w.nextKeynum(rng)),
			Record: w.buildValues(rng, w.Spec.WriteAllFields),
		}
	default:
		var fields []string
		if !w.Spec.ReadAllFields {
			fields = []string{w.fieldNames[rng.Intn(len(w.fieldNames))]}
		}
		return Op{Type: OpRead, Key: w.Spec.KeyFor(w.nextKeynum(rng)), Fields: fields}
	}
}
