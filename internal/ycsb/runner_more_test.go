package ycsb

import (
	"testing"
	"time"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

func TestIntendedLatencyEqualsActualWhenUnthrottled(t *testing.T) {
	k := sim.NewKernel(1)
	fake := newFake(time.Millisecond)
	w := NewWorkload(ReadMostly(100))
	var res Result
	k.Spawn("driver", func(p *sim.Proc) {
		Load(p, func() kv.Client { return fake }, w, 2, 0, 100)
		res = Run(p, func() kv.Client { return fake }, w, RunConfig{Threads: 2, Ops: 400})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	a, i := res.Overall.Mean(), res.Intended.Mean()
	if a != i {
		t.Fatalf("unthrottled intended %v != actual %v", i, a)
	}
}

func TestIntendedLatencyExposesClientBacklog(t *testing.T) {
	// 1 thread asked to deliver 2000 ops/s of 1ms work can only do
	// 1000/s: the intended latency must blow up while the actual stays
	// at the 1ms service time — YCSB's coordinated-omission story and
	// the paper's §3.1 warning.
	k := sim.NewKernel(2)
	fake := newFake(time.Millisecond)
	w := NewWorkload(ReadMostly(100))
	var res Result
	k.Spawn("driver", func(p *sim.Proc) {
		Load(p, func() kv.Client { return fake }, w, 2, 0, 100)
		res = Run(p, func() kv.Client { return fake }, w, RunConfig{
			Threads: 1, Ops: 500, TargetThroughput: 2000,
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Overall.Mean() > 2*time.Millisecond {
		t.Fatalf("actual latency %v should stay near service time", res.Overall.Mean())
	}
	if res.Intended.Mean() < 10*time.Millisecond {
		t.Fatalf("intended latency %v should show the growing backlog", res.Intended.Mean())
	}
}

func TestRunThrottledStaggersThreads(t *testing.T) {
	// With heavy throttling the paced threads must not fire in lockstep:
	// the stagger spreads intended start times across the interval.
	k := sim.NewKernel(3)
	fake := newFake(10 * time.Microsecond)
	w := NewWorkload(ReadMostly(100))
	var res Result
	k.Spawn("driver", func(p *sim.Proc) {
		Load(p, func() kv.Client { return fake }, w, 2, 0, 100)
		res = Run(p, func() kv.Client { return fake }, w, RunConfig{
			Threads: 10, Ops: 500, TargetThroughput: 1000,
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Throughput < 900 || res.Throughput > 1100 {
		t.Fatalf("throughput = %.0f, want ~1000", res.Throughput)
	}
}

func TestReadLatestNeverReadsUnackedInserts(t *testing.T) {
	// With the acknowledged counter, a strongly consistent (fake, map
	// backed) store must never report NotFound for latest-distribution
	// reads: every readable key number has a completed insert.
	k := sim.NewKernel(4)
	fake := newFake(200 * time.Microsecond)
	w := NewWorkload(ReadLatest(200))
	var res Result
	k.Spawn("driver", func(p *sim.Proc) {
		Load(p, func() kv.Client { return fake }, w, 4, 0, 200)
		res = Run(p, func() kv.Client { return fake }, w, RunConfig{Threads: 8, Ops: 2000})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if res.NotFound != 0 {
		t.Fatalf("NotFound = %d on a strongly consistent store", res.NotFound)
	}
	if res.PerOp[OpInsert].Count() == 0 {
		t.Fatal("no inserts ran")
	}
}
