// Package ycsb reimplements the core of the Yahoo! Cloud Serving Benchmark
// for the simulated cluster: the key-choice distributions (uniform,
// zipfian, scrambled zipfian, latest, hotspot, exponential), the operation
// mixer, and a closed-loop multi-threaded runner with target-throughput
// pacing — the same architecture as YCSB's CoreWorkload and client
// threads, §3 of the paper.
package ycsb

import (
	"math"
	"math/rand"
)

// Generator produces a stream of int64 values under some distribution.
type Generator interface {
	// Next draws the next value using rng.
	Next(rng *rand.Rand) int64
}

// Uniform generates integers uniformly in [Lo, Hi].
type Uniform struct {
	Lo, Hi int64
}

// Next implements Generator.
func (u Uniform) Next(rng *rand.Rand) int64 {
	return u.Lo + rng.Int63n(u.Hi-u.Lo+1)
}

// zipfConstant is YCSB's default skew.
const zipfConstant = 0.99

// Zipfian generates integers in [0, items) with a Zipfian distribution:
// item 0 most popular. It is a port of YCSB's ZipfianGenerator (Gray et
// al.'s algorithm), including incremental extension of the item count used
// by the latest distribution.
type Zipfian struct {
	items         int64
	theta         float64
	zeta2theta    float64
	alpha         float64
	zetan         float64
	countForZeta  int64
	eta           float64
	allowDecrease bool
}

// NewZipfian returns a zipfian generator over [0, items) with the default
// YCSB constant 0.99.
func NewZipfian(items int64) *Zipfian {
	z := &Zipfian{items: items, theta: zipfConstant}
	z.alpha = 1 / (1 - z.theta)
	z.zeta2theta = zetaStatic(2, z.theta)
	z.zetan = zetaStatic(items, z.theta)
	z.countForZeta = items
	z.eta = z.computeEta()
	return z
}

func (z *Zipfian) computeEta() float64 {
	return (1 - math.Pow(2/float64(z.items), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
}

// zetaStatic computes the zeta partial sum Σ 1/i^theta for i in [1, n].
func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// NextN draws from a zipfian over [0, n), extending the cached zeta sum
// incrementally when n grows (the latest distribution relies on this).
func (z *Zipfian) NextN(rng *rand.Rand, n int64) int64 {
	if n < 1 {
		return 0
	}
	if n > z.countForZeta {
		for i := z.countForZeta + 1; i <= n; i++ {
			z.zetan += 1 / math.Pow(float64(i), z.theta)
		}
		z.countForZeta = n
		z.items = n
		z.eta = z.computeEta()
	} else if n < z.countForZeta {
		// Recompute from scratch (rare; YCSB warns about the cost).
		z.zetan = zetaStatic(n, z.theta)
		z.countForZeta = n
		z.items = n
		z.eta = z.computeEta()
	}
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Next implements Generator.
func (z *Zipfian) Next(rng *rand.Rand) int64 { return z.NextN(rng, z.items) }

// fnvScramble hashes v for the scrambled-zipfian spread.
func fnvScramble(v int64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= uint64(v >> (8 * i) & 0xff)
		h *= 1099511628211
	}
	return h
}

// ScrambledZipfian spreads a zipfian's popular items uniformly over the
// keyspace, so hot keys do not cluster on one node (YCSB's default request
// distribution and the fix for the paper's "local trap").
type ScrambledZipfian struct {
	items int64
	z     *Zipfian
}

// NewScrambledZipfian returns a scrambled zipfian over [0, items).
func NewScrambledZipfian(items int64) *ScrambledZipfian {
	return &ScrambledZipfian{items: items, z: NewZipfian(items)}
}

// Next implements Generator.
func (s *ScrambledZipfian) Next(rng *rand.Rand) int64 {
	return int64(fnvScramble(s.z.Next(rng)) % uint64(s.items))
}

// Counter hands out consecutive integers, tracking the newest; it drives
// insert key numbering and the latest distribution.
type Counter struct{ next int64 }

// NewCounter starts counting at start.
func NewCounter(start int64) *Counter { return &Counter{next: start} }

// Next implements Generator (rng unused).
func (c *Counter) Next(*rand.Rand) int64 {
	v := c.next
	c.next++
	return v
}

// Last returns the most recently issued value.
func (c *Counter) Last() int64 { return c.next - 1 }

// AcknowledgedCounter issues consecutive integers like Counter but
// separately tracks which have been acknowledged (operation completed),
// exposing the highest value below which everything is acknowledged. The
// latest distribution reads against that limit so clients never target a
// key whose insert is still in flight — YCSB's
// AcknowledgedCounterGenerator.
type AcknowledgedCounter struct {
	Counter
	limit   int64 // everything < limit is acknowledged
	pending map[int64]bool
}

// NewAcknowledgedCounter starts issuing at start with everything below
// start considered acknowledged.
func NewAcknowledgedCounter(start int64) *AcknowledgedCounter {
	return &AcknowledgedCounter{
		Counter: Counter{next: start},
		limit:   start,
		pending: make(map[int64]bool),
	}
}

// Ack marks v complete and advances the acknowledged limit across any
// contiguous run it unblocks.
func (c *AcknowledgedCounter) Ack(v int64) {
	if v < c.limit {
		return
	}
	c.pending[v] = true
	for c.pending[c.limit] {
		delete(c.pending, c.limit)
		c.limit++
	}
}

// LastAcked returns the newest item number that is safe to read: all items
// up to and including it are acknowledged.
func (c *AcknowledgedCounter) LastAcked() int64 { return c.limit - 1 }

// Latest generates recently-inserted item numbers: a zipfian over the
// distance from the newest acknowledged item (YCSB's
// SkewedLatestGenerator over an AcknowledgedCounterGenerator). The typical
// use is the "read latest" feed-reading workload of Table 1.
type Latest struct {
	counter *AcknowledgedCounter
	z       *Zipfian
}

// NewLatest returns a latest generator following counter.
func NewLatest(counter *AcknowledgedCounter) *Latest {
	n := counter.LastAcked() + 1
	if n < 1 {
		n = 1
	}
	return &Latest{counter: counter, z: NewZipfian(n)}
}

// Next implements Generator.
func (l *Latest) Next(rng *rand.Rand) int64 {
	last := l.counter.LastAcked()
	if last < 0 {
		return 0
	}
	return last - l.z.NextN(rng, last+1)
}

// HotSpot draws from a hot set with the given probability, else uniformly
// from the remainder.
type HotSpot struct {
	Lo, Hi      int64
	HotFraction float64 // fraction of the keyspace that is hot
	HotOpn      float64 // fraction of operations hitting the hot set
}

// Next implements Generator.
func (h HotSpot) Next(rng *rand.Rand) int64 {
	span := h.Hi - h.Lo + 1
	hot := int64(float64(span) * h.HotFraction)
	if hot < 1 {
		hot = 1
	}
	if rng.Float64() < h.HotOpn {
		return h.Lo + rng.Int63n(hot)
	}
	if span == hot {
		return h.Lo + rng.Int63n(span)
	}
	return h.Lo + hot + rng.Int63n(span-hot)
}

// Exponential draws values with an exponential distribution, used by YCSB
// for think-time style parameters.
type Exponential struct {
	// Gamma is the rate; mean is 1/Gamma.
	Gamma float64
}

// Next implements Generator.
func (e Exponential) Next(rng *rand.Rand) int64 {
	return int64(-math.Log(1-rng.Float64()) / e.Gamma)
}

// Discrete picks among weighted alternatives — the operation chooser.
type Discrete struct {
	values  []int64
	weights []float64
	total   float64
}

// Add registers value with the given weight.
func (d *Discrete) Add(weight float64, value int64) {
	if weight <= 0 {
		return
	}
	d.values = append(d.values, value)
	d.weights = append(d.weights, weight)
	d.total += weight
}

// Next implements Generator.
func (d *Discrete) Next(rng *rand.Rand) int64 {
	u := rng.Float64() * d.total
	for i, w := range d.weights {
		if u < w {
			return d.values[i]
		}
		u -= w
	}
	return d.values[len(d.values)-1]
}
