package ycsb

// Table 1 of the paper: the five stress workloads with their typical
// usages, operation mixes, and request distributions. Record count and
// sizing are filled in by the caller (the paper uses 100 M × 1 KB records
// for stress tests; experiments scale this down, see DESIGN.md).

// StressDefaults applies the paper's stress-test record shape: 1 KB
// records of ten 100-byte fields.
func StressDefaults(s Spec, records int64) Spec {
	s.RecordCount = records
	s.FieldCount = 10
	s.FieldLength = 100
	s.ReadAllFields = true
	s.WriteAllFields = false
	s.MaxScanLength = 100
	s.KeyPad = 10
	return s
}

// MicroDefaults applies the paper's micro-test record shape: tiny records
// so latency variance from payload size vanishes.
func MicroDefaults(s Spec, records int64) Spec {
	s.RecordCount = records
	s.FieldCount = 1
	s.FieldLength = 1
	s.ReadAllFields = true
	s.WriteAllFields = true
	s.MaxScanLength = 50
	s.KeyPad = 10
	return s
}

// ReadMostly is Table 1 row 1: online tagging, read/update 95/5, zipfian.
func ReadMostly(records int64) Spec {
	return StressDefaults(Spec{
		Name:                "read-mostly",
		Usage:               "Online tagging",
		Comment:             "Read/update ratio: 95/5",
		ReadProportion:      0.95,
		UpdateProportion:    0.05,
		RequestDistribution: DistZipfian,
	}, records)
}

// ReadLatest is Table 1 row 2: feeds reading, read/insert 80/20, latest.
func ReadLatest(records int64) Spec {
	return StressDefaults(Spec{
		Name:                "read-latest",
		Usage:               "Feeds reading",
		Comment:             "Read/insert ratio: 80/20",
		ReadProportion:      0.80,
		InsertProportion:    0.20,
		RequestDistribution: DistLatest,
	}, records)
}

// ReadUpdate is Table 1 row 3: online shopping cart, read/update 50/50,
// zipfian.
func ReadUpdate(records int64) Spec {
	return StressDefaults(Spec{
		Name:                "read-update",
		Usage:               "Online shopping cart",
		Comment:             "Read/update ratio: 50/50",
		ReadProportion:      0.50,
		UpdateProportion:    0.50,
		RequestDistribution: DistZipfian,
	}, records)
}

// ReadModifyWrite is Table 1 row 4: user profile, read/RMW 50/50, zipfian.
func ReadModifyWrite(records int64) Spec {
	return StressDefaults(Spec{
		Name:                "read-modify-write",
		Usage:               "User profile",
		Comment:             "Read/read-modify-write ratio: 50/50",
		ReadProportion:      0.50,
		RMWProportion:       0.50,
		RequestDistribution: DistZipfian,
	}, records)
}

// ScanShortRanges is Table 1 row 5: topic retrieving, scan/insert 95/5,
// zipfian.
func ScanShortRanges(records int64) Spec {
	return StressDefaults(Spec{
		Name:                "scan-short-ranges",
		Usage:               "Topic retrieving",
		Comment:             "Scan/insert ratio: 95/5",
		ScanProportion:      0.95,
		InsertProportion:    0.05,
		RequestDistribution: DistZipfian,
	}, records)
}

// StressWorkloads returns the five Table 1 workloads in paper order.
func StressWorkloads(records int64) []Spec {
	return []Spec{
		ReadLatest(records),
		ScanShortRanges(records),
		ReadMostly(records),
		ReadModifyWrite(records),
		ReadUpdate(records),
	}
}

// Micro workloads: the atomic single-operation tests of §4.1.

// MicroRead is a 100% read workload on tiny records.
func MicroRead(records int64) Spec {
	return MicroDefaults(Spec{
		Name:                "micro-read",
		ReadProportion:      1,
		RequestDistribution: DistUniform,
	}, records)
}

// MicroUpdate is a 100% update workload on tiny records.
func MicroUpdate(records int64) Spec {
	return MicroDefaults(Spec{
		Name:                "micro-update",
		UpdateProportion:    1,
		RequestDistribution: DistUniform,
	}, records)
}

// MicroInsert is a 100% insert workload on tiny records.
func MicroInsert(records int64) Spec {
	return MicroDefaults(Spec{
		Name:                "micro-insert",
		InsertProportion:    1,
		RequestDistribution: DistUniform,
	}, records)
}

// MicroScan is a 100% scan workload on tiny records.
func MicroScan(records int64) Spec {
	return MicroDefaults(Spec{
		Name:                "micro-scan",
		ScanProportion:      1,
		RequestDistribution: DistUniform,
	}, records)
}

// YCSB core workload analogues (A–E), provided for completeness and used
// by the examples.

// WorkloadA is update heavy: read/update 50/50, zipfian.
func WorkloadA(records int64) Spec {
	s := ReadUpdate(records)
	s.Name = "ycsb-a"
	s.Usage = "Session store"
	return s
}

// WorkloadB is read mostly: read/update 95/5, zipfian.
func WorkloadB(records int64) Spec {
	s := ReadMostly(records)
	s.Name = "ycsb-b"
	s.Usage = "Photo tagging"
	return s
}

// WorkloadC is read only, zipfian.
func WorkloadC(records int64) Spec {
	return StressDefaults(Spec{
		Name:                "ycsb-c",
		Usage:               "User profile cache",
		ReadProportion:      1,
		RequestDistribution: DistZipfian,
	}, records)
}

// WorkloadD is read latest: read/insert 95/5.
func WorkloadD(records int64) Spec {
	s := ReadLatest(records)
	s.Name = "ycsb-d"
	s.Usage = "User status updates"
	s.ReadProportion = 0.95
	s.InsertProportion = 0.05
	return s
}

// WorkloadE is short ranges: scan/insert 95/5.
func WorkloadE(records int64) Spec {
	s := ScanShortRanges(records)
	s.Name = "ycsb-e"
	s.Usage = "Threaded conversations"
	return s
}
