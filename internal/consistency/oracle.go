// Package consistency implements a client-centric consistency measurement
// subsystem: an omniscient staleness oracle for the simulated databases.
//
// The paper explains its latency results (Fig. 1 read growth, Fig. 3
// consistency spreads) by claiming stale replicas and read-repair storms,
// but — like the original — it only ever measures latency and throughput.
// Because the cluster here is a deterministic simulation, we can do what
// real-world YCSB cannot: subscribe to every write's full lifecycle
// (coordinator accept, per-replica apply, read-repair propagation, hinted
// handoff replay) and to every read observation, and compute the
// client-centric metrics of Rahman et al. (arXiv:1211.4290) and PBS-style
// visibility directly:
//
//   - stale-read fraction: a read is stale when it fails to return the
//     newest write acknowledged to a client before the read began,
//   - version lag (k-staleness): how many acknowledged writes the
//     returned version is behind,
//   - t-visibility: the time from a write's coordinator accept until a
//     quorum of replicas / every replica has applied it, and
//   - monotonic-read violations: a client observing an older version of a
//     key than one it already observed.
//
// The oracle is ground truth, not a participant: hooks are plain method
// calls gated on a nil check at every call site, so a database running
// without an oracle (the default, used by the paper's Fig. 1–3
// experiments) pays no allocations and no measurable cost.
package consistency

import (
	"time"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
)

// ApplySource distinguishes how a version reached a replica.
type ApplySource int

// Apply sources, in write-lifecycle order.
const (
	// ApplyWrite is the coordinator's initial fan-out (or the region
	// server's own apply, for HBase).
	ApplyWrite ApplySource = iota
	// ApplyRepair is a blocking or background read-repair write.
	ApplyRepair
	// ApplyHint is a hinted-handoff replay after a replica recovered.
	ApplyHint
	applySources
)

// AckSemantics tells the oracle what a write acknowledgement promises
// about replica visibility, which controls how a client re-observing an
// older version is classified.
type AckSemantics int

const (
	// AckSync (the default) is for databases whose ack means the write
	// reached its consistency-level replica set synchronously (HBase,
	// Cassandra): a client observing an older version than it already saw
	// is always a monotonic-read violation.
	AckSync AckSemantics = iota
	// AckAsync is for ack-before-replicate databases (objstore): the ack
	// only promises one durable copy, and replication to the rest of the
	// replica set is explicitly asynchronous. A client re-observing an
	// older version while the newer write's replication is still in
	// flight is the documented behavior, not a violation; it is counted
	// separately as an async regression. Once the newer write has reached
	// every replica, going backwards again is a genuine violation under
	// either semantics.
	AckAsync
)

// maxWritesPerKey bounds the per-key write history. When a hot key
// exceeds it, the oldest quarter is dropped; version-lag counts only look
// at writes newer than the returned version, so pruning fully-visible old
// writes cannot change any metric in practice.
const maxWritesPerKey = 256

// write is one tracked write of one key.
type write struct {
	ver      kv.Version
	begin    sim.Time // coordinator accept (version assignment)
	ack      sim.Time // coordinator acknowledged success to the client
	acked    bool
	measured bool // begun inside the measurement window
	replicas int  // replica-set size at issue time
	applied  map[int]sim.Time
	qDone    bool
	aDone    bool
	allAt    sim.Time // when the last replica applied (valid once aDone)
}

// keyState is the tracked history of one key, writes in ascending version
// order (coordinators issue versions monotonically).
type keyState struct {
	writes []*write
}

// find returns the tracked write with exactly version ver, or nil.
// It scans from the newest entry: lifecycle events almost always concern
// the most recent writes.
func (ks *keyState) find(ver kv.Version) *write {
	for i := len(ks.writes) - 1; i >= 0; i-- {
		w := ks.writes[i]
		if w.ver == ver {
			return w
		}
		if w.ver < ver {
			return nil
		}
	}
	return nil
}

// Oracle is the omniscient observer. It is not safe for concurrent use
// from host goroutines; like everything else it lives inside one
// single-threaded simulation.
//
// All hook methods are nil-safe no-ops, but call sites on database hot
// paths must still gate on a nil check so argument evaluation (e.g.
// computing a row's version) is skipped too. The //simlint:hook marker
// below makes simlint's hookguard analyzer enforce that: a method call
// through a *Oracle that is not dominated by a nil check fails the build.
//
//simlint:hook
type Oracle struct {
	measuring    bool
	measureStart sim.Time
	ackSem       AckSemantics

	keys     map[kv.Key]*keyState
	lastSeen []map[kv.Key]kv.Version // per registered client

	reads, stale    int64
	lagSum, lagMax  int64
	monotonic       int64
	asyncRegress    int64
	writesBegun     int64
	writesAcked     int64
	applies         [applySources]int64
	prunedWrites    int64
	tvisQ, tvisA    *stats.Histogram
	visibleMeasured int64 // measured writes that reached every replica
}

// New returns an empty oracle. Metrics only accumulate after
// BeginMeasure; writes and read observations before it still feed the
// ground-truth state (warmup writes are real writes).
func New() *Oracle {
	return &Oracle{
		keys:  make(map[kv.Key]*keyState),
		tvisQ: &stats.Histogram{},
		tvisA: &stats.Histogram{},
	}
}

// RegisterClient allocates a client identity for per-client monotonic-read
// tracking. On a nil oracle it returns -1, which every hook ignores.
func (o *Oracle) RegisterClient() int {
	if o == nil {
		return -1
	}
	o.lastSeen = append(o.lastSeen, make(map[kv.Key]kv.Version))
	return len(o.lastSeen) - 1
}

// SetAckSemantics declares what this database's write acks promise about
// replica visibility (default AckSync). Call before attaching the oracle;
// it reclassifies monotonic-read regressions only, never staleness —
// stale-read fractions stay comparable across backends regardless of ack
// semantics.
func (o *Oracle) SetAckSemantics(s AckSemantics) {
	if o == nil {
		return
	}
	o.ackSem = s
}

// BeginMeasure marks the start of the measurement window (the workload
// runner calls it when warmup ends). Only reads starting and writes begun
// at or after t count toward the report; earlier events still update the
// oracle's ground truth. The first call wins.
func (o *Oracle) BeginMeasure(t sim.Time) {
	if o == nil || o.measuring {
		return
	}
	o.measuring = true
	o.measureStart = t
}

// WriteBegin records that a coordinator accepted a write of key at
// version ver, destined for a replica set of the given size, at time t.
func (o *Oracle) WriteBegin(key kv.Key, ver kv.Version, replicas int, t sim.Time) {
	if o == nil {
		return
	}
	ks := o.keys[key]
	if ks == nil {
		ks = &keyState{}
		o.keys[key] = ks
	}
	if n := len(ks.writes); n >= maxWritesPerKey {
		drop := n / 4
		o.prunedWrites += int64(drop)
		ks.writes = append(ks.writes[:0], ks.writes[drop:]...)
	}
	if replicas < 1 {
		replicas = 1
	}
	ks.writes = append(ks.writes, &write{
		ver:      ver,
		begin:    t,
		replicas: replicas,
		applied:  make(map[int]sim.Time, replicas),
		measured: o.measuring && t >= o.measureStart,
	})
	o.writesBegun++
}

// WriteAck records that the coordinator acknowledged the write of key at
// version ver to its client at time t. Unacknowledged writes (timeouts,
// unavailability) never become staleness ground truth: the client was not
// promised them.
func (o *Oracle) WriteAck(key kv.Key, ver kv.Version, t sim.Time) {
	if o == nil {
		return
	}
	ks := o.keys[key]
	if ks == nil {
		return
	}
	if w := ks.find(ver); w != nil && !w.acked {
		w.acked = true
		w.ack = t
		o.writesAcked++
	}
}

// ReplicaApply records that the replica with the given node id applied
// version ver of key at time t, via src. The first apply per replica
// advances the write's visibility; repeats (repair re-writes) only bump
// the per-source counters.
func (o *Oracle) ReplicaApply(key kv.Key, ver kv.Version, replica int, src ApplySource, t sim.Time) {
	if o == nil {
		return
	}
	if src >= 0 && src < applySources {
		o.applies[src]++
	}
	ks := o.keys[key]
	if ks == nil {
		return
	}
	w := ks.find(ver)
	if w == nil {
		return
	}
	if _, seen := w.applied[replica]; seen {
		return
	}
	w.applied[replica] = t
	n := len(w.applied)
	if !w.qDone && n >= w.replicas/2+1 {
		w.qDone = true
		if w.measured {
			o.tvisQ.Record(t.Sub(w.begin))
		}
	}
	if !w.aDone && n >= w.replicas {
		w.aDone = true
		w.allAt = t
		if w.measured {
			o.tvisA.Record(t.Sub(w.begin))
			o.visibleMeasured++
		}
	}
}

// ReadObserved records that the registered client observed version ver of
// key (0 = key not found) from a read that started at time start. The
// database reports the version of the row it actually returned, after any
// reconciliation, so this is exactly what the client saw.
func (o *Oracle) ReadObserved(client int, key kv.Key, ver kv.Version, start sim.Time) {
	if o == nil {
		return
	}
	var lag int64
	if ks := o.keys[key]; ks != nil {
		// Writes newer than the returned version form a suffix of the
		// ascending history; count those acknowledged before the read
		// began. In steady state the suffix is a handful of entries.
		for i := len(ks.writes) - 1; i >= 0; i-- {
			w := ks.writes[i]
			if w.ver <= ver {
				break
			}
			if w.acked && w.ack <= start {
				lag++
			}
		}
	}
	counted := o.measuring && start >= o.measureStart
	if counted {
		o.reads++
		if lag > 0 {
			o.stale++
			o.lagSum += lag
			if lag > o.lagMax {
				o.lagMax = lag
			}
		}
	}
	if client >= 0 && client < len(o.lastSeen) {
		m := o.lastSeen[client]
		if prev, ok := m[key]; ok && ver < prev {
			if counted {
				if o.ackSem == AckAsync && o.replicationInFlight(key, prev, start) {
					// Under ack-before-replicate semantics the newer
					// version this client saw earlier was still
					// propagating when this read began; regressing to an
					// older replica is the advertised behavior, not a
					// monotonicity bug in the database.
					o.asyncRegress++
				} else {
					o.monotonic++
				}
			}
		}
		if ver > m[key] {
			m[key] = ver
		}
	}
}

// replicationInFlight reports whether the write of key at version ver had
// not yet reached every replica when a read starting at start was issued.
// An untracked (pruned) write is treated as fully replicated: pruning only
// drops old, long-visible history, and the conservative answer keeps
// genuine violations counted.
func (o *Oracle) replicationInFlight(key kv.Key, ver kv.Version, start sim.Time) bool {
	ks := o.keys[key]
	if ks == nil {
		return false
	}
	w := ks.find(ver)
	if w == nil {
		return false
	}
	return !w.aDone || w.allAt > start
}

// Report is a snapshot of the oracle's metrics over the measurement
// window.
type Report struct {
	// Reads and StaleReads cover read observations inside the window; a
	// read is stale when at least one write of its key was acknowledged
	// before the read began yet is newer than the returned version.
	Reads, StaleReads int64
	// MeanLag and MaxLag are the version lag (k-staleness) over stale
	// reads: how many acknowledged writes the returned version trailed.
	MeanLag float64
	MaxLag  int64
	// MonotonicViolations counts window reads that observed an older
	// version of a key than the same client had already observed. Under
	// AckAsync semantics, regressions explained by still-in-flight
	// asynchronous replication are excluded and reported as
	// AsyncRegressions instead.
	MonotonicViolations int64
	// AsyncRegressions counts window reads that went backwards while the
	// newer version's replication was still in flight — the expected
	// visibility cost of ack-before-replicate, only accumulated under
	// AckAsync semantics.
	AsyncRegressions int64

	// Write lifecycle totals (whole run, including warmup).
	WritesBegun, WritesAcked int64
	// WriteApplies / RepairApplies / HintApplies count replica apply
	// events by source: initial fan-out, read repair, hint replay.
	WriteApplies, RepairApplies, HintApplies int64

	// T-visibility (PBS-style) over writes begun inside the window:
	// time from coordinator accept until a quorum of replicas (Q) or all
	// replicas (All) applied the write.
	TVisQuorumP50, TVisQuorumP99 time.Duration
	TVisAllP50, TVisAllP99       time.Duration
	// FullyVisible counts window writes that reached every replica.
	FullyVisible int64

	// PrunedWrites counts per-key history entries dropped by the history
	// cap (diagnostic; nonzero values mean extremely hot keys).
	PrunedWrites int64
}

// StaleFraction returns StaleReads/Reads, or 0 with no reads.
func (r Report) StaleFraction() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.StaleReads) / float64(r.Reads)
}

// Report snapshots the current metrics. On a nil oracle it returns the
// zero report.
func (o *Oracle) Report() Report {
	if o == nil {
		return Report{}
	}
	r := Report{
		Reads:               o.reads,
		StaleReads:          o.stale,
		MaxLag:              o.lagMax,
		MonotonicViolations: o.monotonic,
		AsyncRegressions:    o.asyncRegress,
		WritesBegun:         o.writesBegun,
		WritesAcked:         o.writesAcked,
		WriteApplies:        o.applies[ApplyWrite],
		RepairApplies:       o.applies[ApplyRepair],
		HintApplies:         o.applies[ApplyHint],
		FullyVisible:        o.visibleMeasured,
		PrunedWrites:        o.prunedWrites,
	}
	if o.stale > 0 {
		r.MeanLag = float64(o.lagSum) / float64(o.stale)
	}
	if o.tvisQ.Count() > 0 {
		r.TVisQuorumP50 = o.tvisQ.Percentile(50)
		r.TVisQuorumP99 = o.tvisQ.Percentile(99)
	}
	if o.tvisA.Count() > 0 {
		r.TVisAllP50 = o.tvisA.Percentile(50)
		r.TVisAllP99 = o.tvisA.Percentile(99)
	}
	return r
}
