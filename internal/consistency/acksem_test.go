package consistency

import (
	"testing"

	"cloudbench/internal/sim"
)

// asyncSchedule drives a crafted ack-before-replicate delivery order
// against an oracle: v1 fully replicated, then v2 acked after a single
// replica while its asynchronous replication to replicas 1 and 2 is still
// in flight. The client observes v2 (from the fresh replica) and then
// regresses to v1 (from a replica the async job has not reached yet).
func asyncSchedule(o *Oracle) (client int) {
	o.BeginMeasure(0)
	client = o.RegisterClient()

	// v1: written and fully replicated across all three replicas.
	o.WriteBegin(k1, 1, 3, sim.Time(0))
	for rep := 0; rep < 3; rep++ {
		o.ReplicaApply(k1, 1, rep, ApplyWrite, sim.Time(10+sim.Time(rep)))
	}
	o.WriteAck(k1, 1, sim.Time(20))

	// v2: acked after the W=1 local apply; replication still in flight.
	o.WriteBegin(k1, 2, 3, sim.Time(100))
	o.ReplicaApply(k1, 2, 0, ApplyWrite, sim.Time(110))
	o.WriteAck(k1, 2, sim.Time(120))

	// The client sees v2, then regresses to v1 from a lagging replica.
	o.ReadObserved(client, k1, 2, sim.Time(200))
	o.ReadObserved(client, k1, 1, sim.Time(300))
	return client
}

// TestAsyncAckRegressionNotViolation: under AckAsync the regression during
// in-flight replication is classified as an async regression, not a
// monotonic-read violation — while staleness accounting is untouched.
func TestAsyncAckRegressionNotViolation(t *testing.T) {
	o := New()
	o.SetAckSemantics(AckAsync)
	client := asyncSchedule(o)

	r := o.Report()
	if r.MonotonicViolations != 0 {
		t.Fatalf("monotonic violations = %d, want 0 under AckAsync", r.MonotonicViolations)
	}
	if r.AsyncRegressions != 1 {
		t.Fatalf("async regressions = %d, want 1", r.AsyncRegressions)
	}
	// The regressed read is still stale: v2 was acked before it began.
	if r.StaleReads != 1 {
		t.Fatalf("stale reads = %d, want 1 (classification must not change staleness)", r.StaleReads)
	}

	// After v2 reaches every replica, regressing again is a genuine
	// violation even under async semantics.
	o.ReplicaApply(k1, 2, 1, ApplyWrite, sim.Time(400))
	o.ReplicaApply(k1, 2, 2, ApplyWrite, sim.Time(410))
	o.ReadObserved(client, k1, 1, sim.Time(500))
	r = o.Report()
	if r.MonotonicViolations != 1 || r.AsyncRegressions != 1 {
		t.Fatalf("after full replication: mono=%d async=%d, want 1/1",
			r.MonotonicViolations, r.AsyncRegressions)
	}
}

// TestSyncAckKeepsViolation: the same schedule under the default AckSync
// semantics counts the regression as a monotonic-read violation, exactly
// as before the semantics became a parameter.
func TestSyncAckKeepsViolation(t *testing.T) {
	o := New()
	asyncSchedule(o)
	r := o.Report()
	if r.MonotonicViolations != 1 || r.AsyncRegressions != 0 {
		t.Fatalf("mono=%d async=%d, want 1/0 under AckSync", r.MonotonicViolations, r.AsyncRegressions)
	}
}

// TestAsyncRegressionBoundary: a read that starts exactly when the last
// replica applies is not excused — the write was fully visible by then.
func TestAsyncRegressionBoundary(t *testing.T) {
	o := New()
	o.SetAckSemantics(AckAsync)
	o.BeginMeasure(0)
	client := o.RegisterClient()
	o.WriteBegin(k1, 1, 2, sim.Time(0))
	o.ReplicaApply(k1, 1, 0, ApplyWrite, sim.Time(5))
	o.ReplicaApply(k1, 1, 1, ApplyWrite, sim.Time(6))
	o.WriteAck(k1, 1, sim.Time(10))
	o.WriteBegin(k1, 2, 2, sim.Time(20))
	o.ReplicaApply(k1, 2, 0, ApplyWrite, sim.Time(25))
	o.WriteAck(k1, 2, sim.Time(30))
	o.ReadObserved(client, k1, 2, sim.Time(40))
	o.ReplicaApply(k1, 2, 1, ApplyWrite, sim.Time(50))
	// Starts at the apply instant: fully replicated, so a violation.
	o.ReadObserved(client, k1, 1, sim.Time(50))
	if r := o.Report(); r.MonotonicViolations != 1 || r.AsyncRegressions != 0 {
		t.Fatalf("mono=%d async=%d, want 1/0 at the visibility boundary",
			r.MonotonicViolations, r.AsyncRegressions)
	}
}
