package consistency

import (
	"testing"
	"time"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

const k1 = kv.Key("user1")

// TestStaleReadAccounting covers the core definition: a read is stale only
// against writes acknowledged before the read began.
func TestStaleReadAccounting(t *testing.T) {
	o := New()
	o.BeginMeasure(0)
	o.WriteBegin(k1, 10, 3, sim.Time(0))
	o.WriteAck(k1, 10, sim.Time(100))

	// Read started before the ack: the client was not yet promised v10.
	o.ReadObserved(-1, k1, 0, sim.Time(50))
	// Read started after the ack but observing nothing: stale.
	o.ReadObserved(-1, k1, 0, sim.Time(200))
	// Read observing the acked version: fresh.
	o.ReadObserved(-1, k1, 10, sim.Time(300))

	r := o.Report()
	if r.Reads != 3 || r.StaleReads != 1 {
		t.Fatalf("reads=%d stale=%d, want 3/1", r.Reads, r.StaleReads)
	}
	if r.MeanLag != 1 || r.MaxLag != 1 {
		t.Fatalf("lag mean=%v max=%d, want 1/1", r.MeanLag, r.MaxLag)
	}
	if r.WritesBegun != 1 || r.WritesAcked != 1 {
		t.Fatalf("writes begun=%d acked=%d", r.WritesBegun, r.WritesAcked)
	}
}

// TestUnackedWritesAreNotGroundTruth: a write that never acked (timeout,
// unavailable) must not make any read stale.
func TestUnackedWritesAreNotGroundTruth(t *testing.T) {
	o := New()
	o.BeginMeasure(0)
	o.WriteBegin(k1, 10, 3, sim.Time(0))
	o.ReadObserved(-1, k1, 0, sim.Time(1000))
	if r := o.Report(); r.StaleReads != 0 {
		t.Fatalf("stale=%d against an unacked write", r.StaleReads)
	}
}

// TestVersionLag: k-staleness counts every acked missed write, not just
// the newest.
func TestVersionLag(t *testing.T) {
	o := New()
	o.BeginMeasure(0)
	for i, ver := range []kv.Version{10, 20, 30} {
		at := sim.Time(i * 100)
		o.WriteBegin(k1, ver, 3, at)
		o.WriteAck(k1, ver, at.Add(10))
	}
	o.ReadObserved(-1, k1, 10, sim.Time(1000)) // missed v20 and v30
	r := o.Report()
	if r.StaleReads != 1 || r.MeanLag != 2 || r.MaxLag != 2 {
		t.Fatalf("stale=%d lag mean=%v max=%d, want 1/2/2", r.StaleReads, r.MeanLag, r.MaxLag)
	}
}

// TestTVisibility: quorum visibility at the ⌈(n+1)/2⌉-th replica apply,
// full visibility at the last.
func TestTVisibility(t *testing.T) {
	o := New()
	o.BeginMeasure(0)
	o.WriteBegin(k1, 10, 3, sim.Time(0))
	o.ReplicaApply(k1, 10, 7, ApplyWrite, sim.Time(10))
	o.ReplicaApply(k1, 10, 8, ApplyWrite, sim.Time(20)) // quorum (2 of 3)
	o.ReplicaApply(k1, 10, 9, ApplyHint, sim.Time(30))  // all
	r := o.Report()
	if r.TVisQuorumP50 != 20*time.Nanosecond || r.TVisAllP50 != 30*time.Nanosecond {
		t.Fatalf("tvis q=%v all=%v, want 20ns/30ns", r.TVisQuorumP50, r.TVisAllP50)
	}
	if r.FullyVisible != 1 {
		t.Fatalf("fully visible = %d", r.FullyVisible)
	}
	if r.WriteApplies != 2 || r.HintApplies != 1 {
		t.Fatalf("applies write=%d hint=%d", r.WriteApplies, r.HintApplies)
	}
}

// TestRepeatApplyIdempotent: a repair re-writing an already-applied
// version bumps the source counter but not visibility.
func TestRepeatApplyIdempotent(t *testing.T) {
	o := New()
	o.BeginMeasure(0)
	o.WriteBegin(k1, 10, 2, sim.Time(0))
	o.ReplicaApply(k1, 10, 1, ApplyWrite, sim.Time(10))
	o.ReplicaApply(k1, 10, 1, ApplyRepair, sim.Time(500)) // same replica again
	r := o.Report()
	if r.WriteApplies != 1 || r.RepairApplies != 1 {
		t.Fatalf("applies=%d/%d", r.WriteApplies, r.RepairApplies)
	}
	// Quorum of 2 replicas needs both; the repeat must not count as the
	// second replica.
	if r.TVisQuorumP50 != 0 || r.FullyVisible != 0 {
		t.Fatalf("repeat apply advanced visibility: %+v", r)
	}
}

// TestMonotonicViolations are tracked per registered client.
func TestMonotonicViolations(t *testing.T) {
	o := New()
	o.BeginMeasure(0)
	a, b := o.RegisterClient(), o.RegisterClient()
	o.WriteBegin(k1, 10, 1, sim.Time(0))
	o.WriteBegin(k1, 20, 1, sim.Time(1))
	o.ReadObserved(a, k1, 20, sim.Time(100))
	o.ReadObserved(a, k1, 10, sim.Time(200)) // regression for a
	o.ReadObserved(a, k1, 10, sim.Time(300)) // still behind the max seen
	o.ReadObserved(b, k1, 10, sim.Time(400)) // b never saw v20: fine
	if r := o.Report(); r.MonotonicViolations != 2 {
		t.Fatalf("monotonic violations = %d, want 2", r.MonotonicViolations)
	}
}

// TestMeasurementWindowGating: pre-window events feed ground truth but do
// not count; a pre-window ack still makes a post-window read stale.
func TestMeasurementWindowGating(t *testing.T) {
	o := New()
	o.WriteBegin(k1, 10, 1, sim.Time(0))
	o.WriteAck(k1, 10, sim.Time(10))
	o.ReadObserved(-1, k1, 0, sim.Time(20)) // pre-window: not counted
	o.BeginMeasure(sim.Time(1000))
	o.ReadObserved(-1, k1, 0, sim.Time(500))  // started pre-window
	o.ReadObserved(-1, k1, 0, sim.Time(2000)) // counted, stale vs warmup write
	r := o.Report()
	if r.Reads != 1 || r.StaleReads != 1 {
		t.Fatalf("reads=%d stale=%d, want 1/1", r.Reads, r.StaleReads)
	}
	// The first BeginMeasure wins; a later call must not move the window.
	o.BeginMeasure(sim.Time(5000))
	o.ReadObserved(-1, k1, 10, sim.Time(3000))
	if r := o.Report(); r.Reads != 2 {
		t.Fatalf("reads=%d after second BeginMeasure, want 2", r.Reads)
	}
}

// TestHotKeyHistoryPruned: the per-key history stays bounded and the
// report flags the pruning.
func TestHotKeyHistoryPruned(t *testing.T) {
	o := New()
	o.BeginMeasure(0)
	for i := 0; i < maxWritesPerKey+10; i++ {
		ver := kv.Version(i + 1)
		o.WriteBegin(k1, ver, 1, sim.Time(i))
		o.WriteAck(k1, ver, sim.Time(i))
	}
	if r := o.Report(); r.PrunedWrites == 0 {
		t.Fatal("pruning never triggered")
	}
	if n := len(o.keys[k1].writes); n > maxWritesPerKey {
		t.Fatalf("history length %d exceeds cap %d", n, maxWritesPerKey)
	}
	// Metrics on the surviving suffix still work.
	o.ReadObserved(-1, k1, kv.Version(maxWritesPerKey+9), sim.Time(10000))
	if r := o.Report(); r.StaleReads != 1 || r.MaxLag != 1 {
		t.Fatalf("stale=%d lag=%d after pruning", r.StaleReads, r.MaxLag)
	}
}

// TestNilOracleSafe: every hook is a no-op on a nil receiver — the
// databases call them through nil-gated sites, but the methods themselves
// must also be safe (and allocation-free) for un-gated callers.
func TestNilOracleSafe(t *testing.T) {
	var o *Oracle
	if id := o.RegisterClient(); id != -1 {
		t.Fatalf("nil RegisterClient = %d", id)
	}
	allocs := testing.AllocsPerRun(100, func() {
		o.BeginMeasure(0)
		o.WriteBegin(k1, 1, 3, 0)
		o.WriteAck(k1, 1, 0)
		o.ReplicaApply(k1, 1, 0, ApplyWrite, 0)
		o.ReadObserved(-1, k1, 1, 0)
	})
	if allocs != 0 {
		t.Fatalf("nil oracle hooks allocate %.1f/op", allocs)
	}
	if r := o.Report(); r != (Report{}) {
		t.Fatalf("nil report = %+v", r)
	}
}

// TestUnknownVersionEventsIgnored: acks and applies for versions the
// oracle never saw begin (e.g. hint replay of a pre-attach write) are
// dropped without corrupting state.
func TestUnknownVersionEventsIgnored(t *testing.T) {
	o := New()
	o.BeginMeasure(0)
	o.WriteAck(k1, 99, sim.Time(10))
	o.ReplicaApply(k1, 99, 1, ApplyHint, sim.Time(20))
	o.ReadObserved(-1, kv.Key("never-written"), 0, sim.Time(30))
	r := o.Report()
	if r.WritesAcked != 0 || r.StaleReads != 0 || r.Reads != 1 {
		t.Fatalf("unexpected report %+v", r)
	}
	if r.HintApplies != 1 {
		t.Fatalf("per-source counter should still tick: %+v", r)
	}
}
