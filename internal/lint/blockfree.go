package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Blockfree proves that simulated process bodies never block the host OS
// thread. The kernel multiplexes thousands of simulated processes onto a
// small worker pool; a process body that hits a real blocking primitive —
// time.Sleep, a bare channel operation, a sync.Mutex, OS or network I/O —
// stalls a worker the scheduler believes is runnable. In the best case
// that serializes the simulation; in the worst (every worker blocked on
// state only a parked process can advance) it deadlocks the DES outright,
// and a future wall-clock-slaved servebench mode would do exactly that on
// the first stray time.Sleep. Virtual waiting must go through the
// kernel's own park points (Proc.Sleep, Future.Await, queue waits), which
// live in the sim package and are exempt.
//
// The check is interprocedural: the bodies handed to Kernel.Spawn/Go,
// Kernel.After, Shard.Send, and Future.OnDone are roots, and the analyzer
// follows static calls, interface calls (via the concrete types in the
// analyzed packages), and function values (via the points-to engine)
// through any number of helper frames. Calls that resolve outside the
// analyzed packages are trusted unless they are themselves a known
// blocking primitive — the engine's soundness boundary (DESIGN.md §12).
var Blockfree = &Analyzer{
	Name:      "blockfree",
	Doc:       "process bodies handed to the kernel must not block the OS thread; virtual waits go through sim park points",
	AppliesTo: simReachable,
	Run:       runBlockfree,
}

func runBlockfree(pass *Pass) error {
	s := pass.Prog.SSA()
	bf := &blockChecker{ssa: s, summaries: make(map[*SSAFunc]*blockFact)}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := funcObj(pass.TypesInfo, call)
			argIdx, rootKind := simProcessRootArg(obj)
			if argIdx < 0 || argIdx >= len(call.Args) {
				return true
			}
			arg := ast.Unparen(call.Args[argIdx])
			for _, root := range bf.rootFuncs(pass, arg) {
				if root.Pkg != nil && root.Pkg.Types.Name() == "sim" {
					continue // the kernel's own machinery is the trust anchor
				}
				if fact := bf.blockingOf(root); fact != nil {
					pass.Reportf(arg.Pos(), "%s body may block the OS thread: %s (%s); wait in virtual time through sim park points instead",
						rootKind, fact.op, fact.chainText())
				}
			}
			return true
		})
	}
	return nil
}

// simProcessRootArg reports which argument of a sim-kernel call is a
// process body (function) the simulator will execute, and a display name
// for the root kind; index -1 means fn is not a process-spawning API.
// Matching is by package name so golden-test stubs exercise the analyzer.
func simProcessRootArg(fn *types.Func) (int, string) {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "sim" {
		return -1, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return -1, ""
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return -1, ""
	}
	switch named.Obj().Name() + "." + fn.Name() {
	case "Kernel.Spawn", "Kernel.Go":
		return 1, "process"
	case "Kernel.After":
		return 1, "event callback"
	case "Shard.Send":
		return 2, "cross-shard delivery"
	case "Future.OnDone":
		return 0, "completion callback"
	}
	return -1, ""
}

// blockFact describes one way a function can block: the primitive, where,
// and the call chain from the summarized function down to it.
type blockFact struct {
	op    string
	pos   token.Pos
	chain []string // callee names from the summarized function inward
}

func (f *blockFact) chainText() string {
	if len(f.chain) == 0 {
		return "directly in the body"
	}
	return "via " + funcChain(f.chain)
}

type blockChecker struct {
	ssa       *SSA
	summaries map[*SSAFunc]*blockFact
}

// rootFuncs resolves a process-body argument expression to the lowered
// functions it can denote: a literal, a named function, a method value,
// or — through the points-to engine — a variable holding closures.
func (b *blockChecker) rootFuncs(pass *Pass, arg ast.Expr) []*SSAFunc {
	switch arg := arg.(type) {
	case *ast.FuncLit:
		if fn := b.ssa.LitOf(arg); fn != nil {
			return []*SSAFunc{fn}
		}
	case *ast.Ident:
		switch obj := pass.TypesInfo.ObjectOf(arg).(type) {
		case *types.Func:
			if fn := b.ssa.FuncOf(obj); fn != nil {
				return []*SSAFunc{fn}
			}
		case *types.Var:
			return b.ssa.pt.funcsIn(b.ssa.VarNode(obj))
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[arg]; ok && sel.Kind() == types.MethodVal {
			if m, ok := sel.Obj().(*types.Func); ok {
				if fn := b.ssa.FuncOf(m); fn != nil {
					return []*SSAFunc{fn}
				}
			}
		}
	}
	return nil
}

// blockingOf returns how fn (or anything it can reach) blocks the OS
// thread, or nil. Summaries are memoized; in-progress frames (recursion)
// are optimistically treated as non-blocking.
func (b *blockChecker) blockingOf(fn *SSAFunc) *blockFact {
	if fact, ok := b.summaries[fn]; ok {
		return fact
	}
	b.summaries[fn] = nil // cycle cut: optimistic while in progress
	fact := b.ownBlocking(fn)
	if fact == nil {
		for _, c := range fn.Calls {
			for _, callee := range b.ssa.Callees(c) {
				if callee.Pkg != nil && callee.Pkg.Types.Name() == "sim" {
					continue // park points and kernel internals are trusted
				}
				if sub := b.blockingOf(callee); sub != nil {
					fact = &blockFact{
						op:    sub.op,
						pos:   sub.pos,
						chain: append([]string{callee.Name}, sub.chain...),
					}
					break
				}
			}
			if fact != nil {
				break
			}
		}
	}
	b.summaries[fn] = fact
	return fact
}

// ownBlocking scans fn's own body (excluding nested literals, which are
// separate functions) for blocking primitives.
func (b *blockChecker) ownBlocking(fn *SSAFunc) *blockFact {
	if fn.Body == nil || fn.Pkg == nil || fn.Pkg.Info == nil {
		return nil
	}
	info := fn.Pkg.Info
	var fact *blockFact
	found := func(op string, pos token.Pos) {
		if fact == nil {
			fact = &blockFact{op: op, pos: pos}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if fact != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested literal is its own function; it blocks where it is
			// invoked, which the call-graph recursion covers.
			return false
		case *ast.SendStmt:
			found("bare channel send", n.Pos())
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found("bare channel receive", n.Pos())
			}
		case *ast.SelectStmt:
			found("select over host channels", n.Pos())
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found("range over a host channel", n.Pos())
				}
			}
		case *ast.CallExpr:
			if op := blockingCallee(info, n); op != "" {
				found(op, n.Pos())
			}
		}
		return true
	})
	return fact
}

// blockingCallee names the blocking primitive a call resolves to, or "".
func blockingCallee(info *types.Info, call *ast.CallExpr) string {
	obj := funcObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		recv := ""
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				recv = named.Obj().Name()
			}
		}
		switch recv + "." + obj.Name() {
		case "Mutex.Lock", "RWMutex.Lock", "RWMutex.RLock", "WaitGroup.Wait", "Cond.Wait", "Once.Do":
			return "sync." + recv + "." + obj.Name()
		}
	case "os", "net", "os/exec", "syscall":
		return obj.Pkg().Path() + "." + obj.Name() + " (OS I/O)"
	}
	return ""
}
