// Package linttest is an analysistest-style golden harness for simlint
// analyzers: it loads a testdata package, runs one analyzer, and checks
// the diagnostics against `// want "regexp"` comments. Suppressions are
// exercised too — lines carrying //simlint:ignore must produce no
// diagnostic and therefore no want comment.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cloudbench/internal/lint"
)

// Run analyzes the package in dir (a directory containing one Go package,
// conventionally testdata/src/<analyzer>) with a and compares diagnostics
// against the want comments in its sources.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	prog, err := lint.Load(dir, ".")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.Analyze(prog, []*lint.Analyzer{a}, lint.AnalyzeOptions{IgnoreScope: true})
	if err != nil {
		t.Fatalf("analyzing %s: %v", dir, err)
	}

	wants := collectWants(t, prog)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		rest := wants[key][:0]
		for _, w := range wants[key] {
			if !matched && w.MatchString(d.Message) {
				matched = true
				continue
			}
			rest = append(rest, w)
		}
		wants[key] = rest
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s: %s", key, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			t.Errorf("missing diagnostic at %s: want match for %q", key, w.String())
		}
	}
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// collectWants parses `// want "re" "re"...` comments, keyed by file:line.
func collectWants(t *testing.T, prog *lint.Program) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, pkg := range prog.Targets() {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, q := range splitQuoted(m[1]) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
						}
						wants[key] = append(wants[key], re)
					}
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts the double- or back-quoted strings from s.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			return out
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return out
		}
		out = append(out, s[:end+2])
		s = s[end+2:]
	}
}
