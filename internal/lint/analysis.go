// Package lint implements simlint, a static-analysis suite that enforces
// the simulator's determinism, hot-path, and hook invariants.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite can be rehosted on the real framework —
// and run under `go vet -vettool` — the moment the x/tools dependency is
// available. This build environment is offline with an empty module cache,
// so the driver here is self-contained: packages are enumerated with
// `go list -deps -json` and type-checked from source with go/types (see
// load.go), which is exactly what x/tools' source importer does.
//
// Four analyzers ship today:
//
//   - detwalk:   nondeterminism sources in sim-reachable packages (wall
//     clock, global math/rand, order-dependent map iteration, multi-case
//     select),
//   - hookguard: calls through nullable hook/callback fields must be
//     dominated by a nil check,
//   - hotpath:   functions marked //simlint:hotpath may not allocate via
//     defer, closures, fmt, string concatenation, or interface boxing,
//   - seedflow:  every rand.New must be traceable to a seed parameter or
//     Options.Seed-style field.
//
// False positives are suppressed in place with
//
//	//simlint:ignore <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory. See
// DESIGN.md "Static invariants" for the invariant taxonomy.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one named analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //simlint:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// AppliesTo, when non-nil, restricts the analyzer to packages whose
	// import path it accepts. The scope check lives in the driver so
	// golden tests (whose testdata packages have synthetic import paths)
	// can exercise an analyzer unconditionally.
	AppliesTo func(importPath string) bool
	// Run performs the analysis over one package.
	Run func(*Pass) error
}

// A Pass is the interface between the driver and one Analyzer.Run call on
// one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// HookTypes holds the qualified names ("pkg/path.TypeName") of types
	// whose declaration carries //simlint:hook; method calls through a
	// pointer to such a type require a dominating nil check.
	HookTypes map[string]bool
	// Prog is the whole loaded program; interprocedural analyzers reach
	// the shared SSA/points-to engine through Prog.SSA().
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding, with its position resolved so the
// driver can sort and suppression-filter without the FileSet.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// funcObj resolves the called function or method of call, or nil for
// builtins, type conversions, and calls through function values.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether obj is the named package-level function (or
// method) path.name.
func isPkgFunc(obj *types.Func, path, name string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}
