package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Detwalk flags nondeterminism sources in sim-reachable packages. Every
// figure in the paper reproduction depends on a run being bit-identical
// given its seed, at every -parallel setting; the simulation must therefore
// never observe the host: no wall clock, no global math/rand (only RNGs
// threaded from the kernel's splitmix64-seeded streams), no map iteration
// whose order can leak into scheduling or output, and no multi-case select
// (the runtime picks among ready cases pseudorandomly).
var Detwalk = &Analyzer{
	Name:      "detwalk",
	Doc:       "flag wall-clock time, global math/rand, order-dependent map iteration, and multi-case select in sim-reachable packages",
	AppliesTo: simReachable,
	Run:       runDetwalk,
}

// simReachablePkgs is the set of packages whose code executes inside (or
// aggregates results of) deterministic simulations.
var simReachablePkgs = map[string]bool{
	"cloudbench/internal/sim":         true,
	"cloudbench/internal/cluster":     true,
	"cloudbench/internal/cassandra":   true,
	"cloudbench/internal/hbase":       true,
	"cloudbench/internal/storage":     true,
	"cloudbench/internal/hdfs":        true,
	"cloudbench/internal/ycsb":        true,
	"cloudbench/internal/core":        true,
	"cloudbench/internal/kv":          true,
	"cloudbench/internal/consistency": true,
	"cloudbench/internal/stats":       true,
	"cloudbench/internal/trace":       true,
}

func simReachable(importPath string) bool { return simReachablePkgs[importPath] }

// wallClockFuncs are the package time functions that observe or wait on the
// host clock. time.Duration arithmetic and constants stay legal: kernel
// durations are virtual but share the type.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Tick": true,
	"Sleep": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// randConstructors are the math/rand functions that build a generator from
// an explicit source; everything else on the package is the shared global
// generator (or reseeds it) and is banned in sim-reachable code.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runDetwalk(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkDetCall(pass, n)
				case *ast.SelectStmt:
					if len(n.Body.List) >= 2 {
						pass.Reportf(n.Pos(), "select with %d cases: the runtime picks among ready cases pseudorandomly; simulation code must block through the kernel", len(n.Body.List))
					}
				case *ast.RangeStmt:
					if isMapType(pass, n.X) {
						checkMapRange(pass, n, fn)
					}
				}
				return true
			})
		}
	}
	return nil
}

func checkDetCall(pass *Pass, call *ast.CallExpr) {
	obj := funcObj(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if wallClockFuncs[obj.Name()] {
			pass.Reportf(call.Pos(), "time.%s observes the host clock; simulation code must use virtual time (sim.Kernel.Now / Proc.Now / Proc.Sleep)", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		// Methods on *rand.Rand (receiver != nil) are fine — those are
		// explicitly threaded generators; only package-level functions
		// hit the shared global state.
		if obj.Type().(*types.Signature).Recv() == nil && !randConstructors[obj.Name()] {
			pass.Reportf(call.Pos(), "global rand.%s is seeded per-process and shared; thread a *rand.Rand from the kernel (sim.Kernel.Rand / Proc.Rand) instead", obj.Name())
		}
	}
}

func isMapType(pass *Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange vets one `range` over a map. Iteration order is
// randomized, so the body may only do order-insensitive work:
//
//   - integer counters (n++, n += v, bitwise-assign),
//   - writes into another map (per-key, order independent),
//   - delete on a map,
//   - appends into slices that are deterministically sorted later in the
//     enclosing function,
//   - nested loops/ifs composed of the same.
//
// Anything else — early returns, float accumulation, calls with side
// effects — can leak iteration order into scheduling or output and is
// flagged; iterate a sorted key slice instead, or suppress with
// //simlint:ignore detwalk <reason> if the order provably cannot escape.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, enclosing *ast.FuncDecl) {
	var appendTargets []types.Object
	reason := mapRangeBodyVerdict(pass, rng.Body.List, &appendTargets)
	if reason == "" {
		for _, obj := range appendTargets {
			if !sortedAfter(pass, enclosing, rng, obj) {
				reason = "appends to " + obj.Name() + " without a deterministic sort afterwards"
				break
			}
		}
	}
	if reason != "" {
		pass.Reportf(rng.Pos(), "map iteration order is randomized and this body %s; iterate a sorted key slice or make the body order-insensitive", reason)
	}
}

// mapRangeBodyVerdict returns "" when every statement is order-insensitive,
// or a description of the first offending statement.
func mapRangeBodyVerdict(pass *Pass, stmts []ast.Stmt, appendTargets *[]types.Object) string {
	for _, stmt := range stmts {
		if r := mapRangeStmtVerdict(pass, stmt, appendTargets); r != "" {
			return r
		}
	}
	return ""
}

func mapRangeStmtVerdict(pass *Pass, stmt ast.Stmt, appendTargets *[]types.Object) string {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		if isIntegerExpr(pass, s.X) {
			return ""
		}
		return "modifies non-integer state"
	case *ast.AssignStmt:
		return mapRangeAssignVerdict(pass, s, appendTargets)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && funcObj(pass.TypesInfo, call) == nil {
				return ""
			}
		}
		return "calls a function whose effects may depend on iteration order"
	case *ast.IfStmt:
		if hasCall(pass, s.Cond) {
			return "calls a function in a branch condition"
		}
		if isMinMaxUpdate(s) {
			return "" // if v > max { max = v }: order-insensitive
		}
		if r := mapRangeBodyVerdict(pass, s.Body.List, appendTargets); r != "" {
			return r
		}
		if s.Else != nil {
			return mapRangeStmtVerdict(pass, s.Else, appendTargets)
		}
		return ""
	case *ast.BlockStmt:
		return mapRangeBodyVerdict(pass, s.List, appendTargets)
	case *ast.RangeStmt:
		return mapRangeBodyVerdict(pass, s.Body.List, appendTargets)
	case *ast.ForStmt:
		return mapRangeBodyVerdict(pass, s.Body.List, appendTargets)
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return ""
		}
		return "exits the loop early (which element is last depends on order)"
	case *ast.ReturnStmt:
		// An existential check (`return true` / `return 0, false`) yields
		// the same value whichever element triggers it; returning
		// anything derived from the element leaks iteration order.
		for _, res := range s.Results {
			if tv, ok := pass.TypesInfo.Types[res]; !ok || tv.Value == nil {
				return "returns from inside the iteration"
			}
		}
		return ""
	case *ast.DeclStmt:
		return ""
	default:
		return "has order-dependent statements"
	}
}

func mapRangeAssignVerdict(pass *Pass, s *ast.AssignStmt, appendTargets *[]types.Object) string {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.AND_NOT_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN, token.MUL_ASSIGN:
		if len(s.Lhs) == 1 && isIntegerExpr(pass, s.Lhs[0]) {
			return ""
		}
		// Float accumulation is the classic silent killer: x += v sums in
		// iteration order and float addition is not associative, so the
		// bits of the total differ run to run.
		return "accumulates non-integer values (order changes the result bits)"
	case token.ASSIGN, token.DEFINE:
		for i, lhs := range s.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapType(pass, ix.X) {
				continue // per-key write into another map
			}
			// s = append(s, ...): provisionally fine, must be sorted
			// later in the enclosing function.
			if i < len(s.Rhs) {
				if call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && funcObj(pass.TypesInfo, call) == nil {
						if target, ok := ast.Unparen(lhs).(*ast.Ident); ok {
							if obj := pass.TypesInfo.ObjectOf(target); obj != nil {
								*appendTargets = append(*appendTargets, obj)
								continue
							}
						}
					}
				}
			}
			return "assigns last-iterated values to shared state"
		}
		return ""
	default:
		return "has order-dependent assignments"
	}
}

func isIntegerExpr(pass *Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func hasCall(pass *Pass, x ast.Expr) bool {
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && funcObj(pass.TypesInfo, call) == nil {
				switch id.Name {
				case "len", "cap", "min", "max": // pure builtins
					return true
				}
			}
			found = true
		}
		return !found
	})
	return found
}

// isMinMaxUpdate matches the running-extremum idiom
// `if v > best { best = v }` (any comparison direction): whichever element
// wins, the final extremum is the same.
func isMinMaxUpdate(s *ast.IfStmt) bool {
	if s.Init != nil || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	cmp, ok := ast.Unparen(s.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cmp.Op {
	case token.GTR, token.LSS, token.GEQ, token.LEQ:
	default:
		return false
	}
	assign, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	lhs, rhs := types.ExprString(assign.Lhs[0]), types.ExprString(assign.Rhs[0])
	x, y := types.ExprString(cmp.X), types.ExprString(cmp.Y)
	return (lhs == x && rhs == y) || (lhs == y && rhs == x)
}

// sortedAfter reports whether the enclosing function deterministically
// sorts obj (a slice fed by a map-range append) after the range statement:
// any sort.* / slices.Sort* call mentioning obj counts.
func sortedAfter(pass *Pass, enclosing *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fobj := funcObj(pass.TypesInfo, call)
		if fobj == nil || fobj.Pkg() == nil {
			return true
		}
		pkg, name := fobj.Pkg().Path(), fobj.Name()
		// Local helpers wrapping sort (sortKeys, sortReplicas, ...) count
		// as long as their name says so.
		isSort := (pkg == "sort" && name != "Search") ||
			(pkg == "slices" && strings.HasPrefix(name, "Sort")) ||
			strings.Contains(strings.ToLower(name), "sort")
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}
