package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotpath enforces the allocation-free discipline on functions marked
// //simlint:hotpath (the kernel event loop, free list, timers, and the
// per-operation YCSB path). These paths run millions of times per sweep
// cell; PR 1 took BenchmarkKernelSleep from 2560 allocs/op to 0, and this
// analyzer is what keeps it there. Inside a marked function the analyzer
// flags:
//
//   - defer (runtime bookkeeping per call),
//   - function literals (closure allocation — reuse a stored closure like
//     Proc.wake instead),
//   - calls into fmt or log (formatting allocates; use static strings),
//   - string concatenation (every + allocates),
//   - interface boxing of non-pointer values (conversions and call
//     arguments; pointers share the interface word and stay free).
//
// Since PR 8 the check is also interprocedural: a hotpath function may
// only call callees that are themselves allocation-free (checked
// recursively through the call graph, resolving interface calls through
// the module's concrete types), other //simlint:hotpath functions (each
// enforced at its own declaration), or functions and interface methods
// annotated //simlint:coldpath — the explicit escape hatch for sanctioned
// boundaries like the kv.Client verbs, whose implementations model I/O
// and allocate by design. Calls through plain function values are not
// chased (the kernel dispatch loop invokes every scheduled closure; see
// DESIGN.md §12), and callees outside the analyzed packages are trusted.
var Hotpath = &Analyzer{
	Name:      "hotpath",
	Doc:       "functions marked //simlint:hotpath may not allocate, directly or via any callee not marked //simlint:coldpath",
	AppliesTo: func(importPath string) bool { return strings.HasPrefix(importPath, "cloudbench") },
	Run:       runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasFuncDirective(fn, dirHotpath) {
				continue
			}
			checkHotpathBody(pass, fn)
			checkHotpathCallees(pass, fn)
		}
	}
	return nil
}

// checkHotpathCallees walks the call graph out of a hotpath function and
// reports, at the first-hop call site, any reachable callee that
// allocates. Coldpath-annotated callees (and interface methods), hotpath
// callees, dynamic function values, and external callees bound the walk.
func checkHotpathCallees(pass *Pass, decl *ast.FuncDecl) {
	s := pass.Prog.SSA()
	obj, _ := pass.TypesInfo.Defs[decl.Name].(*types.Func)
	root := s.FuncOf(obj)
	if root == nil {
		return
	}
	visited := make(map[*SSAFunc]bool)
	for _, c := range root.Calls {
		if c.Iface != nil && s.ColdIface(c.Iface) {
			continue
		}
		if c.Value != 0 {
			continue // dynamic function values are not chased
		}
		for _, callee := range s.Callees(c) {
			if fact := allocatingCallee(s, callee, visited, 0); fact != "" {
				pass.Reportf(c.Pos, "call in hot path %s reaches an allocating callee: %s; mark the boundary //simlint:coldpath or make the callee allocation-free",
					decl.Name.Name, fact)
			}
		}
	}
}

// allocatingCallee returns a chain description when fn (or any function it
// can reach under the same rules) has an allocation fact in its own body,
// or "" when the subtree is clean.
func allocatingCallee(s *SSA, fn *SSAFunc, visited map[*SSAFunc]bool, depth int) string {
	if fn.Hotpath || fn.Coldpath || visited[fn] || depth > 40 {
		return ""
	}
	visited[fn] = true
	if fact := ownAllocFact(fn); fact != "" {
		return fn.Name + " " + fact
	}
	for _, c := range fn.Calls {
		if c.Iface != nil && s.ColdIface(c.Iface) {
			continue
		}
		if c.Value != 0 {
			continue
		}
		for _, callee := range s.Callees(c) {
			if sub := allocatingCallee(s, callee, visited, depth+1); sub != "" {
				return fn.Name + " → " + sub
			}
		}
	}
	return ""
}

// ownAllocFact scans fn's own body (excluding nested literals) for the
// same allocation classes the intraprocedural check enforces, returning a
// short description of the first one.
func ownAllocFact(fn *SSAFunc) string {
	if fn.Body == nil || fn.Pkg == nil || fn.Pkg.Info == nil {
		return ""
	}
	info := fn.Pkg.Info
	fact := ""
	found := func(f string) {
		if fact == "" {
			fact = f
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if fact != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			found("allocates a closure")
			return false
		case *ast.DeferStmt:
			found("defers")
		case *ast.CallExpr:
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				if types.IsInterface(tv.Type) && len(n.Args) == 1 && boxesInfo(info, n.Args[0]) {
					found("boxes a value into an interface")
				}
				return true
			}
			if obj := funcObj(info, n); obj != nil && obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "fmt", "log":
					found("formats via " + obj.Pkg().Name() + "." + obj.Name())
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringInfo(info, n.X) {
				found("concatenates strings")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringInfo(info, n.Lhs[0]) {
				found("concatenates strings")
			}
		}
		return true
	})
	return fact
}

func checkHotpathBody(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot path %s: per-call runtime bookkeeping; restructure with explicit cleanup", name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocated in hot path %s: hoist it to a struct field built once (see Proc.wake)", name)
			return false // the literal's body runs elsewhere
		case *ast.CallExpr:
			checkHotpathCall(pass, n, name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pass, n.X) {
				pass.Reportf(n.Pos(), "string concatenation in hot path %s allocates; use a static string or precomputed label", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "string concatenation in hot path %s allocates; use a static string or precomputed label", name)
			}
		}
		return true
	})
}

func checkHotpathCall(pass *Pass, call *ast.CallExpr, name string) {
	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface in hot path %s boxes a non-pointer value (allocates)", name)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			// panic is the only builtin that boxes, and a panicking hot
			// path is already off the performance cliff.
			return
		}
	}
	obj := funcObj(pass.TypesInfo, call)
	if obj != nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "fmt", "log":
			pass.Reportf(call.Pos(), "%s.%s in hot path %s: formatting allocates; keep formatting on cold paths", obj.Pkg().Name(), obj.Name(), name)
			return
		}
	}
	// Passing a non-pointer concrete value to an interface parameter
	// boxes it at the call site.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && boxes(pass, arg) {
			pass.Reportf(arg.Pos(), "argument boxes a non-pointer value into an interface in hot path %s (allocates)", name)
		}
	}
}

func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// boxes reports whether storing arg in an interface allocates: true for
// concrete non-pointer-shaped values, false for values already in an
// interface, pointers, channels, maps, funcs, and nil.
func boxes(pass *Pass, arg ast.Expr) bool {
	return boxesInfo(pass.TypesInfo, arg)
}

func boxesInfo(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(arg)]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return tv.Type.Underlying().(*types.Basic).Kind() != types.UnsafePointer
	}
	return true
}

func isStringExpr(pass *Pass, x ast.Expr) bool {
	return isStringInfo(pass.TypesInfo, x)
}

func isStringInfo(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
