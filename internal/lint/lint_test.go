package lint_test

import (
	"path/filepath"
	"testing"

	"cloudbench/internal/lint"
	"cloudbench/internal/lint/linttest"
)

func golden(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestBlockfreeGolden(t *testing.T) { linttest.Run(t, lint.Blockfree, golden("blockfree")) }
func TestDetwalkGolden(t *testing.T)   { linttest.Run(t, lint.Detwalk, golden("detwalk")) }
func TestHookguardGolden(t *testing.T) { linttest.Run(t, lint.Hookguard, golden("hookguard")) }
func TestHotpathGolden(t *testing.T)   { linttest.Run(t, lint.Hotpath, golden("hotpath")) }
func TestSeedflowGolden(t *testing.T)  { linttest.Run(t, lint.Seedflow, golden("seedflow")) }
func TestShardsafeGolden(t *testing.T) { linttest.Run(t, lint.Shardsafe, golden("shardsafe")) }

// TestMalformedDirective checks that an ignore directive without a reason
// is itself reported rather than silently swallowing diagnostics.
func TestMalformedDirective(t *testing.T) {
	prog, err := lint.Load(golden("malformed"), ".")
	if err != nil {
		t.Fatalf("loading: %v", err)
	}
	diags, err := lint.Analyze(prog, lint.All(), lint.AnalyzeOptions{IgnoreScope: true})
	if err != nil {
		t.Fatalf("analyzing: %v", err)
	}
	var sawMalformed, sawSuppressedAnyway bool
	for _, d := range diags {
		if d.Analyzer == "simlint" {
			sawMalformed = true
		}
		if d.Analyzer == "detwalk" {
			sawSuppressedAnyway = true
		}
	}
	if !sawMalformed {
		t.Errorf("reason-less //simlint:ignore not reported as malformed; got %v", diags)
	}
	if !sawSuppressedAnyway {
		t.Errorf("malformed ignore suppressed the diagnostic it was attached to; got %v", diags)
	}
}
