package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Seedflow enforces the randomness provenance invariant: every RNG must be
// derived from the experiment seed. A rand.New whose source traces to a
// wall clock, a constant, or nothing at all silently breaks same-seed
// reproducibility — the exact failure mode the -seed flag and the parallel
// sweep's bit-identity guarantee exist to prevent. The analyzer flags any
// rand.New (math/rand and math/rand/v2) whose source argument is not
// traceable, through local assignments, to an identifier, field, or
// function whose name mentions "seed" (Options.Seed, a seed parameter,
// procSeed, splitmix64).
//
// The sim kernel's small-state Source is part of the same invariant: a
// *sim.Source value (or a sim.NewSource(...) call) is accepted as valid
// provenance for rand.New, because every sim.NewSource and Source.Reseed
// call site is itself checked for a seed-traceable argument.
var Seedflow = &Analyzer{
	Name:      "seedflow",
	Doc:       "rand.New sources must be traceable to a seed parameter or Options.Seed-style field",
	AppliesTo: func(importPath string) bool { return strings.HasPrefix(importPath, "cloudbench") },
	Run:       runSeedflow,
}

func runSeedflow(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			assigns := collectAssignments(pass, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := funcObj(pass.TypesInfo, call)
				switch {
				case isPkgFunc(obj, "math/rand", "New") || isPkgFunc(obj, "math/rand/v2", "New"):
					if len(call.Args) == 1 && !seedTraceable(pass, call.Args[0], assigns, make(map[types.Object]bool)) {
						pass.Reportf(call.Pos(), "rand.New source is not derived from a seed; thread Options.Seed or a seed parameter through the constructor")
					}
				case isSimSourceFunc(obj, "NewSource"):
					if len(call.Args) == 1 && !seedTraceable(pass, call.Args[0], assigns, make(map[types.Object]bool)) {
						pass.Reportf(call.Pos(), "sim.NewSource seed is not derived from the experiment seed; thread Options.Seed or a seed parameter through the constructor")
					}
				case isSimSourceFunc(obj, "Reseed"):
					if len(call.Args) == 1 && !seedTraceable(pass, call.Args[0], assigns, make(map[types.Object]bool)) {
						pass.Reportf(call.Pos(), "Source.Reseed seed is not derived from the experiment seed; derive it from the kernel seed (procSeed) or Options.Seed")
					}
				}
				return true
			})
		}
	}
	return nil
}

// isSimSourceFunc reports whether obj is the sim kernel's Source
// constructor or reseed method. Matching is by package name rather than
// import path so the golden-test stub package exercises the same code.
func isSimSourceFunc(fn *types.Func, name string) bool {
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Name() == "sim"
}

// isSimSourceType reports whether t is (a pointer to) the sim kernel's
// Source type, which carries seed provenance by construction.
func isSimSourceType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Source" && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}

// collectAssignments maps each local variable to the expressions assigned
// to it anywhere in fn, so provenance can be traced through intermediates
// (src := splitmix64(seed); rand.New(rand.NewSource(src))).
func collectAssignments(pass *Pass, fn *ast.FuncDecl) map[types.Object][]ast.Expr {
	assigns := make(map[types.Object][]ast.Expr)
	record := func(lhs ast.Expr, rhs []ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			assigns[obj] = append(assigns[obj], rhs...)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i:i+1])
				}
			} else {
				for _, lhs := range n.Lhs {
					record(lhs, n.Rhs)
				}
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				record(name, n.Values)
			}
		}
		return true
	})
	return assigns
}

// seedTraceable reports whether any leaf of e mentions seed provenance: an
// identifier/field/function whose name contains "seed" (or a splitmix
// mixer), possibly through local variables.
func seedTraceable(pass *Pass, e ast.Expr, assigns map[types.Object][]ast.Expr, visiting map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// A sim.NewSource(...) result is seed-derived by construction:
			// the constructor's own argument is checked at its call site.
			if isSimSourceFunc(funcObj(pass.TypesInfo, n), "NewSource") {
				found = true
				return false
			}
		case *ast.Ident:
			if seedName(n.Name) || isSimSourceType(pass.TypesInfo.TypeOf(n)) {
				found = true
				return false
			}
			obj := pass.TypesInfo.ObjectOf(n)
			if obj == nil || visiting[obj] {
				return true
			}
			if rhs, ok := assigns[obj]; ok {
				visiting[obj] = true
				for _, r := range rhs {
					if seedTraceable(pass, r, assigns, visiting) {
						found = true
						return false
					}
				}
			}
		case *ast.SelectorExpr:
			if seedName(n.Sel.Name) || isSimSourceType(pass.TypesInfo.TypeOf(n)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func seedName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "seed") || strings.Contains(lower, "splitmix")
}
