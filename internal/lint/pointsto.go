package lint

// Andersen-style points-to analysis over the SSA-lite form (ssa.go).
//
// The model is the classic inclusion-based one, specialized the way
// x/tools' pointer package specializes it for Go:
//
//   - Every abstract memory cell is a node: variables, allocation sites,
//     struct fields, temporaries. An allocation-site node doubles as the
//     cell holding the allocated value, so *p for p ∈ {obj} reads obj's
//     cell directly.
//   - A cell of pointer-shaped type (pointer, slice, map, chan, func,
//     interface) holds a points-to set of object nodes. A cell of struct
//     type holds no set of its own; its state lives in per-field child
//     nodes keyed (parent, field name). Slices/maps/chans collapse their
//     elements into $elem/$key pseudo-fields of the backing object.
//   - Constraints are the usual four: address-of (pts(n) ∋ obj), copy
//     (pts(dst) ⊇ pts(src)), and field load/store, which are "complex"
//     constraints re-fired as the base cell's points-to set grows.
//   - Struct assignment expands field-wise (copyValue); assignment into an
//     interface-typed cell from a struct-shaped source materializes a box
//     object, which is how shardsafe v2 sees through interface laundering.
//
// The solver is a monotone worklist over these constraints; per-constraint
// done-sets make re-solving after new call edges (ssa.go's dynamic-callee
// fixpoint) incremental. The analysis is flow- and context-insensitive:
// one cell per variable regardless of program point or call chain. That
// over-approximates — a set can contain objects no execution stores there
// — which is the right direction for the invariants built on it (aliasing
// that *may* exist must be reported); the caveats are documented in
// DESIGN.md §12.

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// NodeID names one cell in the points-to graph; 0 is "no node".
type NodeID int32

// nodeID is the internal spelling used throughout the lowering.
type nodeID = NodeID

// Pseudo-field names for collapsed container state. The empty name is
// "the object's own cell" (the target of a plain pointer dereference).
const (
	fieldDeref = ""
	fieldElem  = "$elem"
	fieldKey   = "$key"
)

type nodeKind uint8

const (
	nkTemp  nodeKind = iota
	nkVar            // a source variable (also an object when its address is taken)
	nkAlloc          // an allocation site: new/make/composite literal/append growth
	nkField          // a field cell of a parent node
	nkFunc           // a function object
	nkBox            // an interface box holding a struct copy
)

func (k nodeKind) String() string {
	switch k {
	case nkVar:
		return "var"
	case nkAlloc:
		return "alloc"
	case nkField:
		return "field"
	case nkFunc:
		return "func"
	case nkBox:
		return "box"
	}
	return "temp"
}

type ptNode struct {
	kind   nodeKind
	typ    types.Type
	pos    token.Pos
	obj    *types.Var // nkVar
	fn     *SSAFunc   // nkFunc
	parent nodeID     // nkField
	field  string     // nkField

	pts     map[nodeID]bool
	copyTo  []nodeID
	complex []*ptConstraint
}

type ptConstraintKind uint8

const (
	ckLoad ptConstraintKind = iota
	ckStore
	ckFieldAddr
)

// ptConstraint is one complex constraint attached to a base cell: as
// objects join pts(base), the constraint applies once per object.
type ptConstraint struct {
	kind  ptConstraintKind
	other nodeID // load: destination; store: source; fieldAddr: destination
	field string
	typ   types.Type
	done  map[nodeID]bool
}

// ptGraph is the constraint graph plus its worklist solver.
type ptGraph struct {
	ssa   *SSA
	nodes []ptNode // nodes[0] unused; NodeID indexes directly

	vars   map[*types.Var]nodeID
	fields map[fieldKeyT]nodeID
	edges  map[[2]nodeID]bool

	work   []nodeID
	inWork map[nodeID]bool
}

type fieldKeyT struct {
	parent nodeID
	name   string
}

func newPTGraph(s *SSA) *ptGraph {
	return &ptGraph{
		ssa:    s,
		nodes:  make([]ptNode, 1),
		vars:   make(map[*types.Var]nodeID),
		fields: make(map[fieldKeyT]nodeID),
		edges:  make(map[[2]nodeID]bool),
		inWork: make(map[nodeID]bool),
	}
}

func (g *ptGraph) newNode(n ptNode) nodeID {
	g.nodes = append(g.nodes, n)
	return nodeID(len(g.nodes) - 1)
}

func (g *ptGraph) node(id nodeID) *ptNode { return &g.nodes[id] }

// varNode returns the cell for a source variable (parameters, results,
// locals, globals), created on first use.
func (g *ptGraph) varNode(v *types.Var) nodeID {
	if v == nil {
		return 0
	}
	if id, ok := g.vars[v]; ok {
		return id
	}
	id := g.newNode(ptNode{kind: nkVar, typ: v.Type(), pos: v.Pos(), obj: v})
	g.vars[v] = id
	return id
}

// fieldNode returns the child cell for parent's named field.
func (g *ptGraph) fieldNode(parent nodeID, name string, typ types.Type) nodeID {
	if parent == 0 {
		return 0
	}
	k := fieldKeyT{parent, name}
	if id, ok := g.fields[k]; ok {
		return id
	}
	id := g.newNode(ptNode{kind: nkField, typ: typ, pos: g.node(parent).pos, parent: parent, field: name})
	g.fields[k] = id
	return id
}

func (g *ptGraph) allocNode(typ types.Type, pos token.Pos) nodeID {
	return g.newNode(ptNode{kind: nkAlloc, typ: typ, pos: pos})
}

func (g *ptGraph) tempNode(typ types.Type, pos token.Pos) nodeID {
	return g.newNode(ptNode{kind: nkTemp, typ: typ, pos: pos})
}

func (g *ptGraph) funcNode(fn *SSAFunc) nodeID {
	var typ types.Type
	if fn.Sig != nil {
		typ = fn.Sig
	}
	return g.newNode(ptNode{kind: nkFunc, typ: typ, pos: fn.Pos, fn: fn})
}

func (g *ptGraph) push(id nodeID) {
	if id == 0 || g.inWork[id] {
		return
	}
	g.inWork[id] = true
	g.work = append(g.work, id)
}

// addAddr records pts(dst) ∋ obj.
func (g *ptGraph) addAddr(dst, obj nodeID) {
	if dst == 0 || obj == 0 {
		return
	}
	n := g.node(dst)
	if n.pts == nil {
		n.pts = make(map[nodeID]bool)
	}
	if !n.pts[obj] {
		n.pts[obj] = true
		g.push(dst)
	}
}

// addCopy records pts(dst) ⊇ pts(src) and propagates the current set.
func (g *ptGraph) addCopy(dst, src nodeID) {
	if dst == 0 || src == 0 || dst == src {
		return
	}
	e := [2]nodeID{src, dst}
	if g.edges[e] {
		return
	}
	g.edges[e] = true
	sn := g.node(src)
	sn.copyTo = append(sn.copyTo, dst)
	if g.unionInto(dst, src) {
		g.push(dst)
	}
}

func (g *ptGraph) unionInto(dst, src nodeID) bool {
	sp := g.node(src).pts
	if len(sp) == 0 {
		return false
	}
	dn := g.node(dst)
	if dn.pts == nil {
		dn.pts = make(map[nodeID]bool)
	}
	changed := false
	for o := range sp {
		if !dn.pts[o] {
			dn.pts[o] = true
			changed = true
		}
	}
	return changed
}

// copyValue assigns src's value to dst at static type typ: a plain copy
// edge for pointer-shaped values, a field-wise expansion for structs and
// arrays, and interface boxing when a struct-shaped value meets an
// interface-typed destination.
func (g *ptGraph) copyValue(dst, src nodeID, typ types.Type) {
	if dst == 0 || src == 0 || dst == src {
		return
	}
	if typ == nil {
		typ = g.node(src).typ
	}
	if typ == nil {
		typ = g.node(dst).typ
	}
	if typ == nil {
		g.addCopy(dst, src)
		return
	}
	switch u := typ.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !carriesPointers(f.Type()) {
				continue
			}
			g.copyValue(g.fieldNode(dst, f.Name(), f.Type()), g.fieldNode(src, f.Name(), f.Type()), f.Type())
		}
	case *types.Array:
		if carriesPointers(u.Elem()) {
			g.copyValue(g.fieldNode(dst, fieldElem, u.Elem()), g.fieldNode(src, fieldElem, u.Elem()), u.Elem())
		}
	case *types.Interface:
		st := g.node(src).typ
		if st != nil && !types.IsInterface(st.Underlying()) {
			switch st.Underlying().(type) {
			case *types.Struct, *types.Array:
				// Boxing copies the value into a fresh heap object; the
				// interface cell points at the box.
				box := g.newNode(ptNode{kind: nkBox, typ: st, pos: g.node(src).pos})
				g.copyValue(box, src, st)
				g.addAddr(dst, box)
				return
			case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
				// A pointer-shaped value shares the interface word — no
				// allocation — but the interface erases its static type.
				// Record a typed marker alongside the copy edge so
				// reachability walks can still expand the concrete type
				// even when the source cell's set is empty (e.g. a
				// parameter of an entry-point function).
				marker := g.newNode(ptNode{kind: nkBox, typ: st, pos: g.node(src).pos})
				g.addCopy(marker, src)
				g.addAddr(dst, marker)
				// The direct copy below keeps the pointee objects flowing
				// too, so loads after a type assertion stay precise.
			}
		}
		g.addCopy(dst, src)
	case *types.Basic:
		// Scalars and strings carry no pointers the analyses track.
	default:
		g.addCopy(dst, src)
	}
}

// carriesPointers reports whether a value of type t can hold anything the
// points-to analysis tracks (pruning scalar fields keeps the graph small).
func carriesPointers(t types.Type) bool {
	return carriesPointersDepth(t, 0)
}

func carriesPointersDepth(t types.Type, depth int) bool {
	if t == nil || depth > 12 {
		return true // unknown: assume yes
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesPointersDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return carriesPointersDepth(u.Elem(), depth+1)
	}
	return true
}

// load returns a fresh cell receiving base.field (or *base when field is
// fieldDeref) at static type typ.
func (g *ptGraph) load(base nodeID, field string, typ types.Type, pos token.Pos) nodeID {
	dst := g.tempNode(typ, pos)
	if base == 0 {
		return dst
	}
	g.addConstraint(base, &ptConstraint{kind: ckLoad, other: dst, field: field, typ: typ})
	return dst
}

// store records base.field = src (or *base = src when field is fieldDeref).
func (g *ptGraph) store(base nodeID, field string, src nodeID, typ types.Type) {
	if base == 0 || src == 0 {
		return
	}
	g.addConstraint(base, &ptConstraint{kind: ckStore, other: src, field: field, typ: typ})
}

// addFieldAddr records pts(dst) ∋ obj.field for every obj in pts(base) —
// the lowering of &p.f and &s[i].
func (g *ptGraph) addFieldAddr(dst, base nodeID, field string, typ types.Type) {
	if base == 0 || dst == 0 {
		return
	}
	g.addConstraint(base, &ptConstraint{kind: ckFieldAddr, other: dst, field: field, typ: typ})
}

func (g *ptGraph) addConstraint(base nodeID, c *ptConstraint) {
	c.done = make(map[nodeID]bool)
	n := g.node(base)
	n.complex = append(n.complex, c)
	if len(n.pts) > 0 {
		g.push(base)
	}
}

// ensureObjFor gives cell n at least one object of type typ to stand for
// its storage (used for variadic parameter slices built by the runtime).
func (g *ptGraph) ensureObjFor(n nodeID, typ types.Type) {
	if n == 0 {
		return
	}
	if len(g.node(n).pts) == 0 {
		g.addAddr(n, g.allocNode(typ, g.node(n).pos))
	}
}

// seedExternal marks a call result that came from outside the analyzed
// packages. The engine does not model external bodies; empty sets are
// instead completed at query time by the virtual-object expansion
// (reachability walks), so no objects are materialized here.
func (g *ptGraph) seedExternal(nodeID, types.Type, token.Pos) {}

// funcsIn returns the lowered functions a cell may point to, for dynamic
// call resolution.
func (g *ptGraph) funcsIn(n nodeID) []*SSAFunc {
	if n == 0 {
		return nil
	}
	var out []*SSAFunc
	for o := range g.node(n).pts {
		if fn := g.node(o).fn; fn != nil {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// solve runs the worklist to a fixed point. It may be called repeatedly;
// per-constraint done-sets and the edge index make re-solving after new
// call links incremental.
func (g *ptGraph) solve() {
	for id := nodeID(1); int(id) < len(g.nodes); id++ {
		if len(g.node(id).pts) > 0 && (len(g.node(id).complex) > 0 || len(g.node(id).copyTo) > 0) {
			g.push(id)
		}
	}
	for len(g.work) > 0 {
		id := g.work[len(g.work)-1]
		g.work = g.work[:len(g.work)-1]
		g.inWork[id] = false

		// Snapshot: applying constraints can append nodes (reallocating
		// the backing array) and grow this node's own sets.
		n := g.node(id)
		objs := make([]nodeID, 0, len(n.pts))
		for o := range n.pts {
			objs = append(objs, o)
		}
		cons := n.complex
		for _, c := range cons {
			for _, o := range objs {
				if c.done[o] {
					continue
				}
				c.done[o] = true
				g.applyConstraint(c, o)
			}
		}
		copies := g.node(id).copyTo
		for _, dst := range copies {
			if g.unionInto(dst, id) {
				g.push(dst)
			}
		}
		// New objects may have joined while constraints ran; requeue.
		if len(g.node(id).pts) > len(objs) {
			g.push(id)
		}
	}
}

func (g *ptGraph) applyConstraint(c *ptConstraint, obj nodeID) {
	target := obj
	if c.field != fieldDeref {
		target = g.fieldNode(obj, c.field, c.typ)
	}
	switch c.kind {
	case ckLoad:
		g.copyValue(c.other, target, c.typ)
	case ckStore:
		g.copyValue(target, c.other, c.typ)
	case ckFieldAddr:
		g.addAddr(c.other, target)
	}
}

// --- public query API (engine golden tests, analyzer layers) ---

// VarNode returns the cell for a source variable, or 0 when obj is not a
// variable the engine has seen.
func (s *SSA) VarNode(obj types.Object) NodeID {
	v, ok := obj.(*types.Var)
	if !ok {
		return 0
	}
	if id, ok := s.pt.vars[v]; ok {
		return id
	}
	return 0
}

// FieldOf returns the cell for parent's named field ($elem/$key address
// container state), or 0.
func (s *SSA) FieldOf(parent NodeID, name string) NodeID {
	if parent == 0 {
		return 0
	}
	if id, ok := s.pt.fields[fieldKeyT{parent, name}]; ok {
		return id
	}
	return 0
}

// PointsTo returns the objects a cell may point to, sorted by position.
func (s *SSA) PointsTo(n NodeID) []NodeID {
	if n == 0 {
		return nil
	}
	out := make([]nodeID, 0, len(s.pt.node(n).pts))
	for o := range s.pt.node(n).pts {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return s.pt.node(out[i]).pos < s.pt.node(out[j]).pos })
	return out
}

// NodeType returns the static type recorded for a cell (may be nil).
func (s *SSA) NodeType(n NodeID) types.Type {
	if n == 0 {
		return nil
	}
	return s.pt.node(n).typ
}

// NodePos returns the source position recorded for a cell.
func (s *SSA) NodePos(n NodeID) token.Pos {
	if n == 0 {
		return token.NoPos
	}
	return s.pt.node(n).pos
}

// DescribeNode renders a cell for diagnostics and engine tests.
func (s *SSA) DescribeNode(n NodeID) string {
	if n == 0 {
		return "<none>"
	}
	pn := s.pt.node(n)
	switch pn.kind {
	case nkVar:
		return fmt.Sprintf("var %s", pn.obj.Name())
	case nkField:
		return fmt.Sprintf("%s.%s", s.DescribeNode(pn.parent), pn.field)
	case nkFunc:
		return "func " + pn.fn.Name
	case nkAlloc:
		if pn.typ != nil {
			return "alloc " + pn.typ.String()
		}
		return "alloc"
	case nkBox:
		if pn.typ != nil {
			return "box " + pn.typ.String()
		}
		return "box"
	}
	return "temp"
}

// PointsToAnyVar reports whether cell n's points-to set contains the cell
// of variable v (i.e. n may alias &v).
func (s *SSA) PointsToAnyVar(n NodeID, v types.Object) bool {
	vn := s.VarNode(v)
	if vn == 0 || n == 0 {
		return false
	}
	return s.pt.node(n).pts[vn]
}

// --- reachability (shardsafe v2) ---

// reachStep is one frontier entry of the object-graph walk: either a real
// graph cell (id != 0) or a virtual cell standing in for storage the
// engine has no objects for (typ set, id == 0).
type reachStep struct {
	id   nodeID
	typ  types.Type
	path string
}

// ReachableBanned walks everything reachable from root — points-to
// targets, struct fields, container elements, closure captures — and
// returns the display name of the first sending-side kernel object
// (*sim.Proc/Kernel/Shard/ShardGroup) it can reach, with the access path,
// or ok=false.
//
// Cells the solver has no objects for (external call results, fields of
// opaque values) are expanded *virtually* from their static types, one
// virtual cell per type, so an empty points-to set never hides a banned
// edge: the walk is at least as strong as the purely type-based v1 check.
//
// Within sim-declared structs, only fields whose types mention neither a
// sim-declared named type nor a func type are traversed: kernel handles
// like Future deliberately carry a back-pointer to their kernel, and
// holding the handle is the sanctioned API — the walk follows the
// payload (Future.val) but not the plumbing (Future.k, waiters, timers).
func (s *SSA) ReachableBanned(root NodeID, rootName string) (name, path string, ok bool) {
	if root == 0 {
		return "", "", false
	}
	g := s.pt
	visited := map[nodeID]bool{}
	virtVisited := map[string]bool{}
	queue := []reachStep{{id: root, typ: g.node(root).typ, path: rootName}}
	const maxSteps = 100000
	for steps := 0; len(queue) > 0 && steps < maxSteps; steps++ {
		st := queue[0]
		queue = queue[1:]

		t := st.typ
		if st.id != 0 {
			if visited[st.id] {
				continue
			}
			visited[st.id] = true
			if nt := g.node(st.id).typ; nt != nil {
				t = nt
			}
		} else {
			key := t.String()
			if virtVisited[key] {
				continue
			}
			virtVisited[key] = true
		}
		if st.id == root && t != nil {
			// The root variable's own type is v1's territory; v2 reports
			// only what the heap walk discovers beyond it.
		} else if bn := bannedShardType(t); bn != "" {
			return bn, st.path, true
		}

		// Closure captures: a reachable function object drags in its free
		// variables (capture is by reference).
		if st.id != 0 {
			if fn := g.node(st.id).fn; fn != nil {
				for _, fv := range fn.FreeVars {
					queue = append(queue, reachStep{
						id:   g.varNode(fv),
						typ:  fv.Type(),
						path: st.path + " captures " + fv.Name(),
					})
				}
				continue
			}
			// Points-to targets.
			expanded := false
			for o := range g.node(st.id).pts {
				expanded = true
				queue = append(queue, reachStep{id: o, typ: g.node(o).typ, path: st.path})
			}
			if !expanded {
				// Virtual expansion for cells the solver left empty.
				for _, vs := range virtualTargets(t, st.path) {
					queue = append(queue, vs)
				}
			}
		} else {
			for _, vs := range virtualTargets(t, st.path) {
				queue = append(queue, vs)
			}
		}

		// Structure: fields and container elements.
		if t == nil {
			continue
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			simOwned := declaredInSimPkg(baseNamed(t))
			for i := 0; i < u.NumFields(); i++ {
				f := u.Field(i)
				if !carriesPointers(f.Type()) {
					continue
				}
				if simOwned && typeMentionsSimOrFunc(f.Type()) {
					// Sanctioned kernel plumbing; see doc comment.
					continue
				}
				fpath := st.path + "." + f.Name()
				if st.id != 0 {
					queue = append(queue, reachStep{id: g.fieldNode(st.id, f.Name(), f.Type()), typ: f.Type(), path: fpath})
				}
				queue = append(queue, reachStep{typ: f.Type(), path: fpath})
			}
		case *types.Array, *types.Slice:
			et := elemTypeOf(t)
			if st.id != 0 {
				queue = append(queue, reachStep{id: g.fieldNode(st.id, fieldElem, et), typ: et, path: st.path + "[i]"})
			} else if carriesPointers(et) {
				queue = append(queue, reachStep{typ: et, path: st.path + "[i]"})
			}
		case *types.Map:
			if st.id != 0 {
				queue = append(queue,
					reachStep{id: g.fieldNode(st.id, fieldKey, u.Key()), typ: u.Key(), path: st.path + "[key]"},
					reachStep{id: g.fieldNode(st.id, fieldElem, u.Elem()), typ: u.Elem(), path: st.path + "[val]"})
			}
		case *types.Chan:
			if st.id != 0 {
				queue = append(queue, reachStep{id: g.fieldNode(st.id, fieldElem, u.Elem()), typ: u.Elem(), path: st.path + "<-"})
			}
		}
	}
	return "", "", false
}

// virtualTargets expands a cell with no known objects from its static
// type: the walk continues into the pointee/element types as virtual
// cells. Interfaces and funcs dead-end (no concrete type to expand).
func virtualTargets(t types.Type, path string) []reachStep {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return []reachStep{{typ: u.Elem(), path: path}}
	case *types.Slice:
		if carriesPointers(u.Elem()) {
			return []reachStep{{typ: u.Elem(), path: path + "[i]"}}
		}
	case *types.Map:
		var out []reachStep
		if carriesPointers(u.Key()) {
			out = append(out, reachStep{typ: u.Key(), path: path + "[key]"})
		}
		if carriesPointers(u.Elem()) {
			out = append(out, reachStep{typ: u.Elem(), path: path + "[val]"})
		}
		return out
	case *types.Chan:
		if carriesPointers(u.Elem()) {
			return []reachStep{{typ: u.Elem(), path: path + "<-"}}
		}
	}
	return nil
}

// baseNamed unwraps pointers to reach a named type, or nil.
func baseNamed(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n
	}
	return nil
}

// typeMentionsSimOrFunc reports whether t's structure involves a
// sim-declared named type or a function type — the signal that a field of
// a kernel handle is plumbing (back-pointers, parked waiters, stored
// callbacks) rather than payload.
func typeMentionsSimOrFunc(t types.Type) bool {
	return typeMentions(t, 0, make(map[types.Type]bool))
}

func typeMentions(t types.Type, depth int, seen map[types.Type]bool) bool {
	if t == nil || depth > 12 || seen[t] {
		return false
	}
	seen[t] = true
	if declaredInSimPkg(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Signature:
		return true
	case *types.Pointer:
		return typeMentions(u.Elem(), depth+1, seen)
	case *types.Slice:
		return typeMentions(u.Elem(), depth+1, seen)
	case *types.Array:
		return typeMentions(u.Elem(), depth+1, seen)
	case *types.Chan:
		return typeMentions(u.Elem(), depth+1, seen)
	case *types.Map:
		return typeMentions(u.Key(), depth+1, seen) || typeMentions(u.Elem(), depth+1, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeMentions(u.Field(i).Type(), depth+1, seen) {
				return true
			}
		}
	}
	return false
}
