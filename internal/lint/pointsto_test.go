package lint_test

import (
	"go/types"
	"testing"

	"cloudbench/internal/lint"
)

// findVar locates the unique variable named name among the target
// packages' definitions (the pointsto testdata keeps names globally
// unique for exactly this purpose).
func findVar(t *testing.T, prog *lint.Program, name string) *types.Var {
	t.Helper()
	var found *types.Var
	for _, pkg := range prog.Targets() {
		for _, obj := range pkg.Info.Defs {
			v, ok := obj.(*types.Var)
			if !ok || v.Name() != name {
				continue
			}
			if found != nil {
				t.Fatalf("variable %q defined more than once in testdata", name)
			}
			found = v
		}
	}
	if found == nil {
		t.Fatalf("variable %q not found in testdata", name)
	}
	return found
}

// TestPointsToCore exercises the Andersen solver directly through the
// public query API, one subtest per precision property the analyzer
// layers depend on.
func TestPointsToCore(t *testing.T) {
	prog, err := lint.Load(golden("pointsto"), ".")
	if err != nil {
		t.Fatalf("loading: %v", err)
	}
	s := prog.SSA()

	mayAlias := func(ptr, target string) bool {
		t.Helper()
		return s.PointsToAnyVar(s.VarNode(findVar(t, prog, ptr)), findVar(t, prog, target))
	}
	mustAlias := func(ptr, target string) {
		t.Helper()
		if !mayAlias(ptr, target) {
			t.Errorf("%s should point to %s; points-to set: %v", ptr, target, describe(s, prog, t, ptr))
		}
	}
	mustNotAlias := func(ptr, target string) {
		t.Helper()
		if mayAlias(ptr, target) {
			t.Errorf("%s must not point to %s (precision loss); points-to set: %v", ptr, target, describe(s, prog, t, ptr))
		}
	}

	t.Run("field sensitivity", func(t *testing.T) {
		mustAlias("fsA", "fsX")
		mustAlias("fsB", "fsY")
		mustNotAlias("fsA", "fsY")
		mustNotAlias("fsB", "fsX")
	})
	t.Run("interface boxing", func(t *testing.T) {
		mustAlias("ibQ", "ibX")
		mustNotAlias("ibQ", "fsX")
	})
	t.Run("slice append aliasing", func(t *testing.T) {
		mustAlias("saE", "saX")
		mustNotAlias("saE", "mvX")
	})
	t.Run("map value escape", func(t *testing.T) {
		mustAlias("mvV", "mvX")
		mustNotAlias("mvV", "saX")
	})
}

func describe(s *lint.SSA, prog *lint.Program, t *testing.T, name string) []string {
	t.Helper()
	var out []string
	for _, o := range s.PointsTo(s.VarNode(findVar(t, prog, name))) {
		out = append(out, s.DescribeNode(o))
	}
	return out
}
