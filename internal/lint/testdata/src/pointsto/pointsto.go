// Package pointsto is engine-test input for the Andersen points-to core.
// Variable names are globally unique so the engine test can locate each
// one through types.Info.Defs without scope bookkeeping.
package pointsto

type pair struct {
	a *int
	b *int
}

// fieldSensitivity: distinct fields of one struct must keep distinct
// points-to sets (a field-insensitive solver conflates them).
func fieldSensitivity() {
	var fsX, fsY int
	fsP := pair{a: &fsX, b: &fsY}
	fsA := fsP.a
	fsB := fsP.b
	_, _ = fsA, fsB
}

// interfaceBoxing: a pointer survives the round trip through an
// interface box and a type assertion.
func interfaceBoxing() {
	var ibX int
	var ibI any = &ibX
	ibQ := ibI.(*int)
	_ = ibQ
}

// sliceAppendAliasing: an element appended to a slice is visible through
// a later index expression (append aliases the element cells).
func sliceAppendAliasing() {
	var saX int
	saS := []*int{}
	saS = append(saS, &saX)
	saE := saS[0]
	_ = saE
}

// mapValueEscape: a value stored under one key is reachable through map
// lookups (the engine models one $elem cell per map object).
func mapValueEscape() {
	var mvX int
	mvM := map[string]*int{}
	mvM["k"] = &mvX
	mvV := mvM["k"]
	_ = mvV
}
