// Package detwalk is golden-test input for the detwalk analyzer: each
// `want` comment is a diagnostic the analyzer must produce, and every
// undecorated line must produce none.
package detwalk

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now() // want `time\.Now observes the host clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep observes the host clock`
	return time.Since(start) // want `time\.Since observes the host clock`
}

func durationsAreFine(d time.Duration) time.Duration {
	return d + 5*time.Millisecond // type and constants only: ok
}

func globalRand(r *rand.Rand) int {
	n := rand.Intn(10) // want `global rand\.Intn`
	return n + r.Intn(10) // threaded *rand.Rand method: ok
}

func seededConstructor(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors are fine here
}

func mapAppendSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // append then sort: ok
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapCounters(m map[string]int) int {
	total := 0
	for _, v := range m { // integer accumulation: ok
		total += v
	}
	return total
}

func mapMax(m map[string]int) int {
	best := 0
	for _, v := range m { // running extremum: ok
		if v > best {
			best = v
		}
	}
	return best
}

func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { // per-key writes into another map: ok
		out[k] = v * 2
	}
	return out
}

func mapExistential(m map[string]int) bool {
	for _, v := range m { // constant-result early return: ok
		if v < 0 {
			return true
		}
	}
	return false
}

func mapFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order is randomized`
		sum += v
	}
	return sum
}

func mapUnsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is randomized`
		keys = append(keys, k)
	}
	return keys
}

func mapEarlyReturn(m map[string]int) string {
	for k, v := range m { // want `map iteration order is randomized`
		if v > 0 {
			return k
		}
	}
	return ""
}

func suppressedWallClock() int64 {
	//simlint:ignore detwalk host timestamp feeds a log line, never the simulation
	return time.Now().UnixNano()
}

func multiCaseSelect(a, b chan int) int {
	select { // want `select with 2 cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
