// Package shardsafe is golden-test input for the shardsafe analyzer.
package shardsafe

import (
	"cloudbench/internal/lint/testdata/src/shardsafe/sim"
)

type segment struct {
	shard *sim.Shard
	name  string
}

func okPlainData(s *sim.Shard, key string, n int) {
	log := []string{}
	s.Send(1, 10, func(ds *sim.Shard) { // ok: captures only plain data
		_ = key
		_ = n
		_ = log
	})
}

func okDestinationState(s *sim.Shard) {
	s.Send(1, 10, func(ds *sim.Shard) { // ok: destination reached through the delivered shard
		ds.Kernel().Go("worker", func(p *sim.Proc) {})
		ds.Send(0, 10, func(*sim.Shard) {})
	})
}

type record struct {
	key string
	n   int
}

func okPlainStruct(s *sim.Shard, r *record) {
	s.Send(1, 10, func(ds *sim.Shard) {
		_ = r.key // ok: nothing kernel-shaped is reachable from r
	})
}

func okStoredClosure(s *sim.Shard, key string) {
	relay := func(ds *sim.Shard) { _ = key }
	s.Send(1, 10, relay) // ok: stored closure carries only plain data
}

func badShardCapture(s *sim.Shard) {
	s.Send(1, 10, func(ds *sim.Shard) {
		_ = s.ID() // want `captures \*sim\.Shard "s" from the sending shard`
	})
}

func badProcCapture(s *sim.Shard, p *sim.Proc) {
	s.Send(1, 10, func(*sim.Shard) {
		_ = p // want `captures \*sim\.Proc "p" from the sending shard`
	})
}

func badKernelCapture(s *sim.Shard) {
	k := s.Kernel()
	s.Send(1, 10, func(*sim.Shard) {
		_ = k // want `captures \*sim\.Kernel "k" from the sending shard`
	})
}

func badGroupCapture(s *sim.Shard, g *sim.ShardGroup) {
	s.Send(1, 10, func(*sim.Shard) {
		g.Shard(0) // want `captures \*sim\.ShardGroup "g" from the sending shard`
	})
}

// badStructLaunder touches only the plain field, but the captured struct
// still carries the shard one dereference away: the points-to layer walks
// every reachable field, not just the ones the closure mentions.
func badStructLaunder(s *sim.Shard, seg *segment) {
	s.Send(1, 10, func(ds *sim.Shard) {
		_ = seg.name // want `reaches a \*sim\.Shard from the sending shard through captured "seg" \(seg\.shard\)`
	})
}

// badInterfaceBox launders the shard through an interface: no banned type
// appears in the closure, but the box the solver tracked does.
func badInterfaceBox(s *sim.Shard) {
	var x any = s
	s.Send(1, 10, func(ds *sim.Shard) {
		_ = x // want `reaches a \*sim\.Shard from the sending shard through captured "x" \(x\)`
	})
}

// badSliceShare shares sending-side shards through a slice element.
func badSliceShare(s *sim.Shard) {
	peers := []*sim.Shard{s}
	s.Send(1, 10, func(ds *sim.Shard) {
		_ = len(peers) // want `reaches a \*sim\.Shard from the sending shard through captured "peers" \(peers\[i\]\)`
	})
}

// badMapValue escapes a shard through a map value.
func badMapValue(s *sim.Shard) {
	m := map[string]*sim.Shard{"self": s}
	s.Send(1, 10, func(ds *sim.Shard) {
		_ = m // want `reaches a \*sim\.Shard from the sending shard through captured "m" \(m\[val\]\)`
	})
}

// badStoredClosure passes a pre-built closure variable as the payload;
// the syntactic layer never sees its captures, the points-to layer does.
func badStoredClosure(s *sim.Shard) {
	relay := func(ds *sim.Shard) { _ = s.ID() }
	s.Send(1, 10, relay) // want `reaches a \*sim\.Shard from the sending shard \(relay captures s\)`
}

func badSmuggledShardField(s *sim.Shard, seg *segment) {
	s.Send(1, 10, func(*sim.Shard) {
		_ = seg.shard // want `reaches a \*sim\.Shard through a captured value`
	})
}

func badMethodValue(s, other *sim.Shard) {
	s.Send(1, 10, other.Handle) // want `method bound to a \*sim\.Shard on the sending side`
}

func suppressedCapture(s *sim.Shard) {
	s.Send(1, 10, func(*sim.Shard) {
		//simlint:ignore shardsafe single-threaded bring-up harness, shards never run concurrently here
		_ = s.ID()
	})
}
