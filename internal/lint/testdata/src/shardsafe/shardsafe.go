// Package shardsafe is golden-test input for the shardsafe analyzer.
package shardsafe

import (
	"cloudbench/internal/lint/testdata/src/shardsafe/sim"
)

type segment struct {
	shard *sim.Shard
	name  string
}

func okPlainData(s *sim.Shard, key string, n int) {
	log := []string{}
	s.Send(1, 10, func(ds *sim.Shard) { // ok: captures only plain data
		_ = key
		_ = n
		_ = log
	})
}

func okDestinationState(s *sim.Shard) {
	s.Send(1, 10, func(ds *sim.Shard) { // ok: destination reached through the delivered shard
		ds.Kernel().Go("worker", func(p *sim.Proc) {})
		ds.Send(0, 10, func(*sim.Shard) {})
	})
}

func okNonBannedFields(s *sim.Shard, seg *segment) {
	s.Send(1, 10, func(ds *sim.Shard) {
		_ = seg.name // ok: captured struct, but the field is plain data
	})
}

func badShardCapture(s *sim.Shard) {
	s.Send(1, 10, func(ds *sim.Shard) {
		_ = s.ID() // want `captures \*sim\.Shard "s" from the sending shard`
	})
}

func badProcCapture(s *sim.Shard, p *sim.Proc) {
	s.Send(1, 10, func(*sim.Shard) {
		_ = p // want `captures \*sim\.Proc "p" from the sending shard`
	})
}

func badKernelCapture(s *sim.Shard) {
	k := s.Kernel()
	s.Send(1, 10, func(*sim.Shard) {
		_ = k // want `captures \*sim\.Kernel "k" from the sending shard`
	})
}

func badGroupCapture(s *sim.Shard, g *sim.ShardGroup) {
	s.Send(1, 10, func(*sim.Shard) {
		g.Shard(0) // want `captures \*sim\.ShardGroup "g" from the sending shard`
	})
}

func badSmuggledShardField(s *sim.Shard, seg *segment) {
	s.Send(1, 10, func(*sim.Shard) {
		_ = seg.shard // want `reaches a \*sim\.Shard through a captured value`
	})
}

func badMethodValue(s, other *sim.Shard) {
	s.Send(1, 10, other.Handle) // want `method bound to a \*sim\.Shard on the sending side`
}

func suppressedCapture(s *sim.Shard) {
	s.Send(1, 10, func(*sim.Shard) {
		//simlint:ignore shardsafe single-threaded bring-up harness, shards never run concurrently here
		_ = s.ID()
	})
}
