// Package sim is a minimal stub of the real sim kernel's sharding types
// for shardsafe golden tests. The analyzer matches Shard.Send and the
// banned capture types by package name, so the stub exercises the same
// recognition paths as the real package without the testdata module
// depending on the kernel.
package sim

// Duration mirrors sim.Duration.
type Duration int64

// Kernel mirrors the member-kernel handle a delivery can reach through the
// destination shard.
type Kernel struct{}

// Go mirrors detached process spawning.
func (k *Kernel) Go(name string, fn func(*Proc)) {}

// Proc mirrors a simulated process handle.
type Proc struct{ k *Kernel }

// Kernel returns the process's kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// ShardGroup mirrors the group coordinator.
type ShardGroup struct{ shards []*Shard }

// Shard returns the i'th member.
func (g *ShardGroup) Shard(i int) *Shard { return g.shards[i] }

// Shard mirrors one member of a group.
type Shard struct {
	g  *ShardGroup
	id int
	k  *Kernel
}

// ID returns the shard's index.
func (s *Shard) ID() int { return s.id }

// Kernel returns the shard's member kernel.
func (s *Shard) Kernel() *Kernel { return s.k }

// Group returns the owning group.
func (s *Shard) Group() *ShardGroup { return s.g }

// Send mirrors the cross-shard delivery API the analyzer guards.
func (s *Shard) Send(dst int, delay Duration, fn func(*Shard)) {}

// Handle is a method whose value has the delivery signature, for the
// method-value test case.
func (s *Shard) Handle(ds *Shard) {}
