// Package malformed is golden-test input for directive validation: an
// ignore without a reason must be reported and must not suppress.
package malformed

import "time"

func missingReason() int64 {
	//simlint:ignore detwalk
	return time.Now().UnixNano()
}
