// Package sim is a minimal stub of the real sim kernel's process-spawning
// surface for blockfree golden tests. The analyzer recognizes the spawn
// APIs and the trusted park points by package name, so this stub exercises
// the same recognition paths without the testdata module depending on the
// kernel.
package sim

// Duration mirrors sim.Duration.
type Duration int64

// Kernel mirrors the process-spawning surface.
type Kernel struct{}

// Spawn mirrors structured process spawning.
func (k *Kernel) Spawn(name string, fn func(*Proc)) {}

// Go mirrors detached process spawning.
func (k *Kernel) Go(name string, fn func(*Proc)) {}

// After mirrors deferred event scheduling.
func (k *Kernel) After(d Duration, fn func()) {}

// Proc mirrors a simulated process handle; Sleep is a virtual-time park
// point and therefore trusted.
type Proc struct{}

// Sleep parks the process in virtual time.
func (p *Proc) Sleep(d Duration) {}

// Shard mirrors one member of a sharded kernel group.
type Shard struct{}

// Send mirrors cross-shard delivery; the fn argument is a root.
func (s *Shard) Send(dst int, delay Duration, fn func(*Shard)) {}

// Future mirrors an async completion handle.
type Future struct{}

// OnDone mirrors completion-callback registration; fn is a root.
func (f *Future) OnDone(fn func()) {}

// Await parks the calling process until completion (trusted park point).
func (f *Future) Await(p *Proc) {}
