// Package blockfree is golden-test input for the blockfree analyzer.
package blockfree

import (
	"os"
	"sync"
	"time"

	"cloudbench/internal/lint/testdata/src/blockfree/sim"
)

func okParkPoints(k *sim.Kernel, fut *sim.Future) {
	k.Spawn("server", func(p *sim.Proc) { // ok: virtual waits through sim park points
		p.Sleep(10)
		fut.Await(p)
	})
}

func okCleanHelper(k *sim.Kernel, keys []string) {
	k.Go("loader", func(p *sim.Proc) { // ok: the helper does pure computation
		_ = countKeys(keys)
	})
}

func countKeys(keys []string) int {
	n := 0
	for range keys {
		n++
	}
	return n
}

func badSleep(k *sim.Kernel) {
	k.Spawn("server", func(p *sim.Proc) { // want `process body may block the OS thread: time\.Sleep \(directly in the body\)`
		time.Sleep(time.Millisecond)
	})
}

// badTwoFramesDeep blocks two helper frames below the process body: the
// syntactic layer sees nothing, the call-graph walk does.
func badTwoFramesDeep(k *sim.Kernel, ch chan int) {
	k.Spawn("drain", func(p *sim.Proc) { // want `process body may block the OS thread: bare channel receive \(via blockfree\.drainOuter → blockfree\.drainInner\)`
		drainOuter(ch)
	})
}

func drainOuter(ch chan int) { drainInner(ch) }

func drainInner(ch chan int) { <-ch }

func badMutex(k *sim.Kernel, mu *sync.Mutex) {
	k.Go("locker", func(p *sim.Proc) { // want `process body may block the OS thread: sync\.Mutex\.Lock \(directly in the body\)`
		mu.Lock()
	})
}

func badEventCallback(k *sim.Kernel, ch chan int) {
	k.After(5, func() { // want `event callback body may block the OS thread: bare channel send \(directly in the body\)`
		ch <- 1
	})
}

func badDelivery(s *sim.Shard, ch chan int) {
	s.Send(1, 10, func(ds *sim.Shard) { // want `cross-shard delivery body may block the OS thread: select over host channels \(directly in the body\)`
		select {
		case <-ch:
		default:
		}
	})
}

func badCompletion(fut *sim.Future, ch chan int) {
	fut.OnDone(func() { // want `completion callback body may block the OS thread: bare channel receive \(directly in the body\)`
		<-ch
	})
}

func badRangeChan(k *sim.Kernel, ch chan int) {
	k.Go("ranger", func(p *sim.Proc) { // want `process body may block the OS thread: range over a host channel \(directly in the body\)`
		for v := range ch {
			_ = v
		}
	})
}

func badOSIO(k *sim.Kernel) {
	k.Go("io", func(p *sim.Proc) { // want `process body may block the OS thread: os\.ReadFile \(OS I/O\) \(directly in the body\)`
		_, _ = os.ReadFile("/etc/hosts")
	})
}

// badNamedFunc hands the kernel a named function rather than a literal.
func badNamedFunc(k *sim.Kernel) {
	k.Spawn("worker", napWorker) // want `process body may block the OS thread: time\.Sleep \(directly in the body\)`
}

func napWorker(p *sim.Proc) { time.Sleep(time.Second) }

// badStoredBody stores the body in a variable first; the points-to engine
// resolves which closures the variable can hold.
func badStoredBody(k *sim.Kernel, ch chan int) {
	body := func(p *sim.Proc) { <-ch }
	k.Go("stored", body) // want `process body may block the OS thread: bare channel receive \(directly in the body\)`
}

func suppressedWallClockBridge(k *sim.Kernel) {
	//simlint:ignore blockfree wall-clock bridge prototype, runs outside the DES workers
	k.Spawn("bridge", func(p *sim.Proc) {
		time.Sleep(time.Millisecond)
	})
}
