// Package hookguard is golden-test input for the hookguard analyzer.
package hookguard

// Oracle mimics the consistency oracle: method calls through a *Oracle
// must be dominated by a nil check.
//
//simlint:hook
type Oracle struct{ n int }

func (o *Oracle) Observe(v int) {
	if o == nil {
		return
	}
	o.n += v
}

// Sink is a nullable callback field; calling Fn needs a nil check.
type Sink struct {
	Fn   func(int)
	Name string
}

type DB struct {
	oracle *Oracle
	sink   Sink
}

func (db *DB) guarded(v int) {
	if db.oracle != nil {
		db.oracle.Observe(v)
	}
	if db.sink.Fn != nil {
		db.sink.Fn(v)
	}
}

func (db *DB) guardedConjunct(v int) {
	if db.oracle != nil && v > 0 {
		db.oracle.Observe(v)
	}
}

func (db *DB) earlyExit(v int) {
	if db.oracle == nil {
		return
	}
	db.oracle.Observe(v) // dominated by the early return: ok
}

func (db *DB) unguarded(v int) {
	db.oracle.Observe(v) // want `nullable hook db\.oracle`
	db.sink.Fn(v)        // want `nullable hook db\.sink\.Fn`
}

func (db *DB) aliased(v int) {
	f := db.sink.Fn
	f(v) // want `nullable hook f`
	if f != nil {
		f(v) // guarded alias: ok
	}
}

func (db *DB) shortCircuit(v int) {
	_ = db.sink.Fn != nil && logged(db.sink.Fn, v)
}

func logged(f func(int), v int) bool { f(v); return true }

func (db *DB) nestedReport(v int, report bool) {
	// The object-store apply path: the alias guard wraps a nested
	// condition deciding whether this apply is oracle-visible.
	if o := db.oracle; o != nil {
		if report {
			o.Observe(v)
		}
	}
}

func (db *DB) nestedReportUnguarded(v int, report bool) {
	if report {
		db.oracle.Observe(v) // want `nullable hook db\.oracle`
	}
}

func (db *DB) suppressed(v int) {
	//simlint:ignore hookguard sink is installed unconditionally by the only constructor
	db.sink.Fn(v)
}

// Tracer mimics the request tracer: span-emitting call sites capture a
// start timestamp in one nil-gated block and emit the span in another, so
// each block needs its own guard.
//
//simlint:hook
type Tracer struct{ spans int }

func (t *Tracer) StartOp(at int) {
	if t == nil {
		return
	}
	t.spans++
}

func (t *Tracer) Phase(start int) {
	if t == nil {
		return
	}
	t.spans++
}

func (t *Tracer) Mute(at int) {
	if t == nil {
		return
	}
	t.spans++
}

func (t *Tracer) Interval(start int) {
	if t == nil {
		return
	}
	t.spans++
}

type Server struct {
	tracer *Tracer
}

func work() int { return 0 }

func (s *Server) spanEmit(now int) {
	var t0 int
	if s.tracer != nil {
		s.tracer.StartOp(now)
		t0 = now
	}
	_ = work()
	if s.tracer != nil {
		s.tracer.Phase(t0) // separately guarded emit: ok
	}
}

func (s *Server) spanEmitUnguarded(now int) {
	var t0 int
	if s.tracer != nil {
		t0 = now
	}
	s.tracer.Phase(t0) // want `nullable hook s\.tracer`
}

func (s *Server) bracketedInterval(now int) {
	// The async-replication delivery path: tracing is muted around the
	// replica apply, then the whole delivery is logged as one interval.
	// Each bracket carries its own guard.
	if tr := s.tracer; tr != nil {
		tr.Mute(now)
	}
	_ = work()
	if tr := s.tracer; tr != nil {
		tr.Interval(now)
	}
}

func (s *Server) bracketedIntervalUnguarded(now int) {
	if tr := s.tracer; tr != nil {
		tr.Mute(now)
	}
	_ = work()
	s.tracer.Interval(now) // want `nullable hook s\.tracer`
}

func (s *Server) dcHopEmit(now int) {
	// The multi-DC forward leg: the WAN hop and the intra-DC relay each
	// capture a start and emit a span, and every bracket carries its own
	// nil gate.
	var t0 int
	if s.tracer != nil {
		t0 = now
	}
	_ = work() // WAN leg
	if s.tracer != nil {
		s.tracer.Phase(t0)
	}
	var r0 int
	if s.tracer != nil {
		r0 = now
	}
	_ = work() // relay leg
	if s.tracer != nil {
		s.tracer.Phase(r0)
	}
}

func (s *Server) dcHopEmitUnguarded(now int) {
	var t0 int
	if s.tracer != nil {
		t0 = now
	}
	_ = work()
	if s.tracer != nil {
		s.tracer.Phase(t0)
	}
	_ = work()
	s.tracer.Phase(t0) // want `nullable hook s\.tracer`
}

func (s *Server) deferredEmit(now int) {
	if tr := s.tracer; tr != nil {
		t0 := now
		defer func() { tr.Phase(t0) }() // guard in scope at creation: ok
	}
	_ = work()
}
