// Package seedflow is golden-test input for the seedflow analyzer.
package seedflow

import (
	"math/rand"
	"time"

	"cloudbench/internal/lint/testdata/src/seedflow/sim"
)

type Options struct{ Seed int64 }

func splitmix64(x int64) int64 {
	u := uint64(x) + 0x9e3779b97f4a7c15
	u = (u ^ (u >> 30)) * 0xbf58476d1ce4e5b9
	return int64(u ^ (u >> 27))
}

func fromOptions(o Options) *rand.Rand {
	return rand.New(rand.NewSource(o.Seed)) // ok: Options.Seed
}

func fromParam(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(i))) // ok: seed parameter
}

func throughLocals(o Options) *rand.Rand {
	mixed := splitmix64(o.Seed)
	src := rand.NewSource(mixed)
	return rand.New(src) // ok: traced through mixed and src
}

func fromWallClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.New source is not derived from a seed`
}

func fromConstant() *rand.Rand {
	return rand.New(rand.NewSource(12345)) // want `rand\.New source is not derived from a seed`
}

func throughUntraceableLocal() *rand.Rand {
	n := time.Now().UnixNano()
	src := rand.NewSource(n)
	return rand.New(src) // want `rand\.New source is not derived from a seed`
}

func suppressed() *rand.Rand {
	//simlint:ignore seedflow demo stream, reproducibility deliberately not required
	return rand.New(rand.NewSource(777))
}

func fromSimSource(o Options) *rand.Rand {
	src := sim.NewSource(uint64(o.Seed))
	return rand.New(src) // ok: sim.NewSource result carries seed provenance
}

type procLike struct{ src *sim.Source }

func fromSimSourceField(p *procLike) *rand.Rand {
	return rand.New(p.src) // ok: *sim.Source is seed-derived by construction
}

func simSourceFromConstant() *sim.Source {
	return sim.NewSource(42) // want `sim\.NewSource seed is not derived from the experiment seed`
}

func simSourceFromWallClock() *sim.Source {
	return sim.NewSource(uint64(time.Now().UnixNano())) // want `sim\.NewSource seed is not derived from the experiment seed`
}

// wanLinkStream mirrors the cluster's per-WAN-link jitter streams: each
// directed DC pair owns a source whose seed is mixed from the kernel seed
// and the link endpoints, so provenance traces back to the experiment seed.
func wanLinkStream(kernelSeed uint64, src, dst int) *sim.Source {
	linkSeed := kernelSeed ^ (uint64(src)<<32 | uint64(dst)<<1)
	return sim.NewSource(linkSeed) // ok: mixed from the kernel seed
}

// wanLinkStreamFromEndpoints derives the stream only from the link's
// endpoints — reproducible per link but detached from the experiment
// seed, so every run would draw identical jitter regardless of -seed.
func wanLinkStreamFromEndpoints(src, dst int) *sim.Source {
	return sim.NewSource(uint64(src)<<32 | uint64(dst)) // want `sim\.NewSource seed is not derived from the experiment seed`
}

func reseedFromConstant(p *procLike) {
	p.src.Reseed(1234) // want `Source\.Reseed seed is not derived from the experiment seed`
}

func reseedFromDerived(p *procLike, seed uint64, id int64) {
	p.src.Reseed(seed + uint64(id)*0x9e3779b97f4a7c15) // ok: seed parameter
}
