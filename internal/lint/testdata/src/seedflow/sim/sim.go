// Package sim is a minimal stub of the real sim kernel's Source type for
// seedflow golden tests. The analyzer matches it by package name, so the
// stub exercises the same recognition paths as the real package without
// the testdata module depending on the kernel.
package sim

// Source mirrors cloudbench/internal/sim.Source's shape.
type Source struct{ s [4]uint64 }

// NewSource mirrors the real seed-derived constructor.
func NewSource(seed uint64) *Source {
	src := &Source{}
	src.Reseed(seed)
	return src
}

// Reseed mirrors the real reset-to-stream method.
func (s *Source) Reseed(seed uint64) { s.s[0] = seed ^ 0x9e3779b97f4a7c15 }

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 { s.s[0] += 0x9e3779b97f4a7c15; return s.s[0] }

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *Source) Seed(seed int64) { s.Reseed(uint64(seed)) }
