// Package hotpath is golden-test input for the hotpath analyzer.
package hotpath

import "fmt"

type ring struct {
	buf   []int
	label string
	flush func()
}

func sink(any)       {}
func take(p *ring)   {}
func useIface(x any) {}

//simlint:hotpath
func (r *ring) push(v int) {
	r.buf = append(r.buf, v) // plain append: ok
}

//simlint:hotpath
func (r *ring) deferred() {
	defer fmt.Println("done") // want `defer in hot path` `fmt\.Println in hot path`
	r.buf = r.buf[:0]
}

//simlint:hotpath
func (r *ring) closes(v int) {
	r.flush = func() { r.push(v) } // want `closure allocated in hot path`
}

//simlint:hotpath
func (r *ring) concat(s string) {
	r.label = r.label + s // want `string concatenation in hot path`
	r.label += "!"        // want `string concatenation in hot path`
}

//simlint:hotpath
func (r *ring) boxes(v int, p *ring) {
	useIface(v)   // want `boxes a non-pointer value`
	useIface(p)   // pointers share the interface word: ok
	useIface(nil) // nil: ok
	_ = any(v)    // want `conversion to interface`
	take(p)       // concrete parameter: ok
}

// Unmarked functions may do all of this freely.
func coldPath(r *ring) string {
	defer fmt.Println("cold")
	return fmt.Sprintf("%v", r.buf)
}

//simlint:hotpath
func (r *ring) suppressedColdError(err error) {
	//simlint:ignore hotpath the error branch is cold by construction
	fmt.Println(err)
}

// --- interprocedural cases (PR 8): the hot function's own body is clean,
// but a callee somewhere down the call graph allocates. ---

func cleanHelper(r *ring, v int) { r.buf = append(r.buf, v) }

func chainOuter(r *ring) { chainInner(r) }

func chainInner(r *ring) { r.label = fmt.Sprintf("%d", len(r.buf)) }

//simlint:coldpath
func sanctionedFormat(r *ring) string { return fmt.Sprintf("%v", r.buf) }

//simlint:hotpath
func (r *ring) callsClean(v int) {
	cleanHelper(r, v) // alloc-free callee: ok
}

//simlint:hotpath
func (r *ring) callsChain() {
	chainOuter(r) // want `call in hot path callsChain reaches an allocating callee: hotpath\.chainOuter → hotpath\.chainInner formats via fmt\.Sprintf`
}

//simlint:hotpath
func (r *ring) callsColdpath() {
	_ = sanctionedFormat(r) // coldpath-annotated boundary: ok
}

// store is an interface verb whose implementations allocate by design;
// the get method is annotated as a sanctioned boundary, put is not.
type store interface {
	//simlint:coldpath
	get(key string) string
	put(key string)
}

type mapStore struct{ m map[string]string }

func (s *mapStore) get(key string) string { return s.m["pfx"+key] }

func (s *mapStore) put(key string) { s.m[key] = "v" + key }

//simlint:hotpath
func (r *ring) callsIface(s store) {
	_ = s.get("k") // coldpath interface method: ok
	s.put("k")     // want `call in hot path callsIface reaches an allocating callee: \(hotpath\.mapStore\)\.put concatenates strings`
}
