// Package hotpath is golden-test input for the hotpath analyzer.
package hotpath

import "fmt"

type ring struct {
	buf   []int
	label string
	flush func()
}

func sink(any)        {}
func take(p *ring)    {}
func useIface(x any)  {}

//simlint:hotpath
func (r *ring) push(v int) {
	r.buf = append(r.buf, v) // plain append: ok
}

//simlint:hotpath
func (r *ring) deferred() {
	defer fmt.Println("done") // want `defer in hot path` `fmt\.Println in hot path`
	r.buf = r.buf[:0]
}

//simlint:hotpath
func (r *ring) closes(v int) {
	r.flush = func() { r.push(v) } // want `closure allocated in hot path`
}

//simlint:hotpath
func (r *ring) concat(s string) {
	r.label = r.label + s // want `string concatenation in hot path`
	r.label += "!"        // want `string concatenation in hot path`
}

//simlint:hotpath
func (r *ring) boxes(v int, p *ring) {
	useIface(v)      // want `boxes a non-pointer value`
	useIface(p)      // pointers share the interface word: ok
	useIface(nil)    // nil: ok
	_ = any(v)       // want `conversion to interface`
	take(p)          // concrete parameter: ok
}

// Unmarked functions may do all of this freely.
func coldPath(r *ring) string {
	defer fmt.Println("cold")
	return fmt.Sprintf("%v", r.buf)
}

//simlint:hotpath
func (r *ring) suppressedColdError(err error) {
	//simlint:ignore hotpath the error branch is cold by construction
	fmt.Println(err)
}
