package lint

import (
	"go/ast"
	"go/types"
)

// Shardsafe enforces the sharded kernel's isolation contract: shards share
// no mutable state during a window, so a cross-shard delivery closure
// (the fn argument of sim.Shard.Send) must carry plain data and reach
// state only through the destination shard it is handed. Capturing the
// *sending* side's kernel objects — a *sim.Proc, *sim.Kernel, *sim.Shard,
// or *sim.ShardGroup visible at the send site — would let the closure
// touch another shard's state while windows execute concurrently: a data
// race the conservative synchronization cannot see and a determinism leak
// even when it happens not to crash. The analyzer flags delivery closures
// whose free variables have those types (directly or as fields reached
// through a captured struct) and method values bound to them.
var Shardsafe = &Analyzer{
	Name:      "shardsafe",
	Doc:       "cross-shard delivery closures must not capture the sending shard's kernel objects",
	AppliesTo: simReachable,
	Run:       runShardsafe,
}

func runShardsafe(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isShardSend(funcObj(pass.TypesInfo, call)) || len(call.Args) != 3 {
				return true
			}
			switch arg := ast.Unparen(call.Args[2]).(type) {
			case *ast.FuncLit:
				checkDeliveryCaptures(pass, arg)
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[arg]; ok && sel.Kind() == types.MethodVal {
					if name := bannedShardType(sel.Recv()); name != "" {
						pass.Reportf(arg.Pos(), "cross-shard delivery fn is a method bound to a %s on the sending side; deliver plain data and reach state through the *sim.Shard the closure receives", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkDeliveryCaptures reports free variables of lit (identifiers
// declared outside the literal) whose types are sending-side kernel
// objects, and banned-typed fields reached through any captured struct.
func checkDeliveryCaptures(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj, ok := pass.TypesInfo.ObjectOf(n).(*types.Var)
			if !ok || obj.IsField() || !declaredOutside(lit, obj) {
				return true
			}
			if name := bannedShardType(obj.Type()); name != "" {
				pass.Reportf(n.Pos(), "cross-shard delivery fn captures %s %q from the sending shard; pass plain data (ids, keys, values) and reach state through the *sim.Shard it receives", name, n.Name)
			}
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			if name := bannedShardType(pass.TypesInfo.TypeOf(n)); name != "" && capturedRoot(pass, lit, n.X) {
				pass.Reportf(n.Pos(), "cross-shard delivery fn reaches a %s through a captured value; pass plain data and reach state through the *sim.Shard it receives", name)
			}
		}
		return true
	})
}

// capturedRoot reports whether the base expression bottoms out in an
// identifier declared outside lit — i.e. the field chain starts at a
// captured variable rather than at the delivered shard parameter or a
// call result.
func capturedRoot(pass *Pass, lit *ast.FuncLit, e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj, ok := pass.TypesInfo.ObjectOf(x).(*types.Var)
			return ok && !obj.IsField() && declaredOutside(lit, obj)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return false
		}
	}
}

func declaredOutside(lit *ast.FuncLit, obj types.Object) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}

// isShardSend reports whether fn is the sim kernel's cross-shard delivery
// method (*Shard).Send. Matching is by package name rather than import
// path so the golden-test stub package exercises the same code.
func isShardSend(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Send" || fn.Pkg() == nil || fn.Pkg().Name() != "sim" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return bannedShardType(sig.Recv().Type()) == "*sim.Shard"
}

// bannedShardType returns the display name of t when it is (a pointer to)
// one of the sim kernel objects a delivery closure must not capture, and
// "" otherwise.
func bannedShardType(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "sim" {
		return ""
	}
	switch obj.Name() {
	case "Proc", "Kernel", "Shard", "ShardGroup":
		return "*sim." + obj.Name()
	}
	return ""
}
