package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shardsafe enforces the sharded kernel's isolation contract: shards share
// no mutable state during a window, so a cross-shard delivery closure
// (the fn argument of sim.Shard.Send) must carry plain data and reach
// state only through the destination shard it is handed. Capturing the
// *sending* side's kernel objects — a *sim.Proc, *sim.Kernel, *sim.Shard,
// or *sim.ShardGroup visible at the send site — would let the closure
// touch another shard's state while windows execute concurrently: a data
// race the conservative synchronization cannot see and a determinism leak
// even when it happens not to crash.
//
// The analyzer has two layers. The syntactic layer (PR 3) flags delivery
// closures whose free variables have those types (directly or as fields
// reached through a captured struct) and method values bound to them.
// The points-to layer (PR 8) closes the laundering holes the syntax
// cannot see: it walks everything *reachable* from each captured value —
// struct fields whether or not the closure touches them, slice/map/chan
// elements, interface boxes, and the captures of any closure the payload
// carries — and flags the capture if a sending-side kernel object is
// anywhere in that heap. Cells the points-to solution leaves empty are
// expanded from their static types, so opaque values cannot hide an
// edge. Kernel handles that legitimately cross shards (a *sim.Future
// reply handle) stay legal: inside sim-declared structs only payload
// fields are walked, not the kernel plumbing (see SSA.ReachableBanned).
var Shardsafe = &Analyzer{
	Name:      "shardsafe",
	Doc:       "cross-shard delivery closures must not capture or reach the sending shard's kernel objects",
	AppliesTo: simReachable,
	Run:       runShardsafe,
}

func runShardsafe(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isShardSend(funcObj(pass.TypesInfo, call)) || len(call.Args) != 3 {
				return true
			}
			switch arg := ast.Unparen(call.Args[2]).(type) {
			case *ast.FuncLit:
				flagged := checkDeliveryCaptures(pass, arg)
				checkDeliveryReachability(pass, arg, flagged)
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[arg]; ok && sel.Kind() == types.MethodVal {
					if name := bannedShardType(sel.Recv()); name != "" {
						pass.Reportf(arg.Pos(), "cross-shard delivery fn is a method bound to a %s on the sending side; deliver plain data and reach state through the *sim.Shard the closure receives", name)
					}
				}
			case *ast.Ident:
				// A variable holding the payload closure: walk whatever
				// closures it may hold through the points-to engine (a
				// stored closure's captures escape the syntactic check).
				if obj, ok := pass.TypesInfo.ObjectOf(arg).(*types.Var); ok {
					s := pass.Prog.SSA()
					if name, path, found := s.ReachableBanned(s.VarNode(obj), obj.Name()); found {
						pass.Reportf(arg.Pos(), "cross-shard delivery fn reaches a %s from the sending shard (%s); deliver plain data and reach state through the *sim.Shard it receives", name, path)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkDeliveryCaptures reports free variables of lit (identifiers
// declared outside the literal) whose types are sending-side kernel
// objects, and banned-typed fields reached through any captured struct.
// It returns the capture roots it reported, so the points-to layer does
// not re-report the same variables.
func checkDeliveryCaptures(pass *Pass, lit *ast.FuncLit) map[*types.Var]bool {
	flagged := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj, ok := pass.TypesInfo.ObjectOf(n).(*types.Var)
			if !ok || obj.IsField() || !declaredOutside(lit, obj) {
				return true
			}
			if name := bannedShardType(obj.Type()); name != "" {
				flagged[obj] = true
				pass.Reportf(n.Pos(), "cross-shard delivery fn captures %s %q from the sending shard; pass plain data (ids, keys, values) and reach state through the *sim.Shard it receives", name, n.Name)
			}
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			if name := bannedShardType(pass.TypesInfo.TypeOf(n)); name != "" {
				if root, ok := capturedRoot(pass, lit, n.X); ok {
					flagged[root] = true
					pass.Reportf(n.Pos(), "cross-shard delivery fn reaches a %s through a captured value; pass plain data and reach state through the *sim.Shard it receives", name)
				}
			}
		}
		return true
	})
	return flagged
}

// checkDeliveryReachability runs the points-to layer over lit's free
// variables, skipping roots the syntactic layer already reported.
func checkDeliveryReachability(pass *Pass, lit *ast.FuncLit, flagged map[*types.Var]bool) {
	s := pass.Prog.SSA()
	fn := s.LitOf(lit)
	if fn == nil {
		return
	}
	for _, fv := range fn.FreeVars {
		if flagged[fv] {
			continue
		}
		if bannedShardType(fv.Type()) != "" {
			continue // the capture itself is banned: syntactic layer territory
		}
		name, path, found := s.ReachableBanned(s.VarNode(fv), fv.Name())
		if !found {
			continue
		}
		pass.Reportf(firstUseIn(pass, lit, fv), "cross-shard delivery fn reaches a %s from the sending shard through captured %q (%s); deliver plain data and reach state through the *sim.Shard it receives",
			name, fv.Name(), path)
	}
}

// firstUseIn locates the first reference to v inside lit, so the
// diagnostic lands on the offending capture rather than on the literal.
func firstUseIn(pass *Pass, lit *ast.FuncLit, v *types.Var) token.Pos {
	pos := lit.Pos()
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if pos != lit.Pos() {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == v {
			pos = id.Pos()
			return false
		}
		return true
	})
	return pos
}

// capturedRoot returns the captured variable a field chain bottoms out in
// — i.e. the chain starts at an identifier declared outside lit rather
// than at the delivered shard parameter or a call result.
func capturedRoot(pass *Pass, lit *ast.FuncLit, e ast.Expr) (*types.Var, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj, ok := pass.TypesInfo.ObjectOf(x).(*types.Var)
			if ok && !obj.IsField() && declaredOutside(lit, obj) {
				return obj, true
			}
			return nil, false
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

func declaredOutside(lit *ast.FuncLit, obj types.Object) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}

// isShardSend reports whether fn is the sim kernel's cross-shard delivery
// method (*Shard).Send. Matching is by package name rather than import
// path so the golden-test stub package exercises the same code.
func isShardSend(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Send" || fn.Pkg() == nil || fn.Pkg().Name() != "sim" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return bannedShardType(sig.Recv().Type()) == "*sim.Shard"
}

// bannedShardType returns the display name of t when it is (a pointer to)
// one of the sim kernel objects a delivery closure must not capture, and
// "" otherwise.
func bannedShardType(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "sim" {
		return ""
	}
	switch obj.Name() {
	case "Proc", "Kernel", "Shard", "ShardGroup":
		return "*sim." + obj.Name()
	}
	return ""
}
