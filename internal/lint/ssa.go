package lint

// SSA-lite lowering for the interprocedural analyzers.
//
// The intended host for this layer is golang.org/x/tools/go/ssa, but this
// build environment is offline with an empty module cache (see load.go), so
// the engine is self-contained: every function in the analysis targets is
// lowered from its type-checked AST into a register-transfer form with one
// virtual register per source variable. Because the only consumer is a
// flow-insensitive Andersen-style points-to analysis (pointsto.go), the
// lowering deliberately omits phi nodes and basic blocks: merging all
// assignments to a variable into one register is exactly the approximation
// a flow-insensitive analysis makes anyway, and it keeps the builder small
// enough to audit. The lint.Pass API is unchanged — analyzers reach the
// engine through Pass.Prog.SSA(), and the build is cached on the Program so
// the whole analyzer suite shares one engine instance per process.
//
// What the lowering produces, per function (declared or literal):
//
//   - points-to constraints (address-of, copy, field load, field store)
//     over a node graph where every variable, allocation site, and field
//     is a node (see pointsto.go),
//   - a call table recording each call site with its static callee,
//     interface method, or dynamic callee value node,
//   - free-variable lists for function literals (captures are by
//     reference in Go, so a literal's body simply reuses the outer
//     variable's node — context-insensitivity gives capture for free).
//
// Call-graph resolution (SSA.Callees) is hybrid: static calls resolve
// directly; interface calls resolve through class-hierarchy analysis over
// the concrete types declared in the targets; calls through function
// values resolve through the points-to solution, which the solver reaches
// by iterating constraint generation and dynamic-call linking to a fixed
// point. Soundness caveats are documented in DESIGN.md §12.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SSA is the interprocedural engine: the lowered form of every target
// package, plus the solved points-to graph.
type SSA struct {
	prog  *Program
	fset  *token.FileSet
	Funcs []*SSAFunc

	byObj map[*types.Func]*SSAFunc
	byLit map[*ast.FuncLit]*SSAFunc

	pt *ptGraph

	// namedTypes are the named (non-alias) types declared in target
	// packages, the universe for class-hierarchy interface resolution.
	namedTypes []*types.Named

	// results[fn][i] is the node receiving the i'th return value of fn.
	results map[*types.Func][]nodeID

	// methodImpls caches CHA resolution keyed by interface method.
	methodImpls map[*types.Func][]*SSAFunc

	// coldIface marks interface method declarations annotated
	// //simlint:coldpath — sanctioned allocation boundaries for hotpath.
	coldIface map[*types.Func]bool
}

// SSAFunc is one lowered function: a declared function or method (Obj set)
// or a function literal (Lit set).
type SSAFunc struct {
	Name string // qualified display name
	Obj  *types.Func
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	Pkg  *Package
	Pos  token.Pos
	Sig  *types.Signature

	// Calls lists every call site in the body, in source order.
	Calls []*SSACall

	// FreeVars lists, for literals, the variables referenced by the body
	// but declared outside it.
	FreeVars []*types.Var

	// Parent is the enclosing function for literals.
	Parent *SSAFunc

	// Hotpath/Coldpath record the function's //simlint: doc directives
	// for the interprocedural hotpath analyzer.
	Hotpath  bool
	Coldpath bool

	node    nodeID // the function-object node (what a value of this func points to)
	results []nodeID
}

// String returns the function's qualified display name.
func (f *SSAFunc) String() string { return f.Name }

// SSACall is one call site. Exactly one of Static, Iface, or Value
// describes the callee: a statically known function (possibly external to
// the targets), an interface method, or a dynamic function value.
type SSACall struct {
	Fn   *SSAFunc
	Pos  token.Pos
	Expr *ast.CallExpr

	Static *types.Func
	Iface  *types.Func
	Value  nodeID

	recv    nodeID
	args    []nodeID
	results []nodeID

	// dynLinked records which dynamic callees already have param/result
	// edges, so the iterate-to-fixpoint loop adds each link once.
	dynLinked map[*SSAFunc]bool
}

// SSA returns the program's interprocedural engine, building and solving
// it on first use. The result is cached: every analyzer in one driver run
// shares the same lowered form and points-to solution.
func (p *Program) SSA() *SSA {
	if p.ssa == nil {
		p.ssa = buildSSA(p)
	}
	return p.ssa
}

func buildSSA(prog *Program) *SSA {
	s := &SSA{
		prog:        prog,
		fset:        prog.Fset,
		byObj:       make(map[*types.Func]*SSAFunc),
		byLit:       make(map[*ast.FuncLit]*SSAFunc),
		results:     make(map[*types.Func][]nodeID),
		methodImpls: make(map[*types.Func][]*SSAFunc),
		coldIface:   make(map[*types.Func]bool),
	}
	s.pt = newPTGraph(s)

	// Pass 1: shells for every declared function and named type, so call
	// linking never depends on lowering order.
	for _, pkg := range prog.Targets() {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					s.namedTypes = append(s.namedTypes, named)
				}
			}
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch decl := decl.(type) {
				case *ast.GenDecl:
					s.collectColdIface(pkg, decl)
				case *ast.FuncDecl:
					fd := decl
					if fd.Body == nil {
						continue
					}
					obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
					if obj == nil {
						continue
					}
					fn := &SSAFunc{
						Name:     funcDisplayName(obj),
						Obj:      obj,
						Body:     fd.Body,
						Pkg:      pkg,
						Pos:      fd.Pos(),
						Sig:      obj.Type().(*types.Signature),
						Hotpath:  hasFuncDirective(fd, dirHotpath),
						Coldpath: hasFuncDirective(fd, dirColdpath),
					}
					fn.node = s.pt.funcNode(fn)
					s.byObj[obj] = fn
					s.Funcs = append(s.Funcs, fn)
				}
			}
		}
	}

	// Pass 2: lower every body. Literals get shells as they are
	// encountered (they cannot be referenced before their own lowering
	// position except through a value, which flows through nodes).
	for _, fn := range s.Funcs[:len(s.Funcs):len(s.Funcs)] {
		lw := &lowerer{ssa: s, fn: fn, pkg: fn.Pkg}
		lw.block(fn.Body)
	}

	// Pass 3: package-level variable initializers, lowered as synthetic
	// per-package init bodies.
	for _, pkg := range prog.Targets() {
		initFn := &SSAFunc{
			Name: pkg.ImportPath + ".init#lint",
			Pkg:  pkg,
			Sig:  types.NewSignatureType(nil, nil, nil, nil, nil, false),
		}
		initFn.node = s.pt.funcNode(initFn)
		s.Funcs = append(s.Funcs, initFn)
		lw := &lowerer{ssa: s, fn: initFn, pkg: pkg}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						lw.valueSpec(vs)
					}
				}
			}
		}
	}

	// Pass 4: interface call edges via CHA (purely static), then solve
	// points-to, linking dynamic callees discovered by the solution until
	// no new edges appear.
	for _, fn := range s.Funcs {
		for _, c := range fn.Calls {
			if c.Iface != nil {
				for _, impl := range s.implsOf(c.Iface) {
					s.linkCall(c, impl)
				}
			}
		}
	}
	s.pt.solve()
	for {
		added := false
		for _, fn := range s.Funcs {
			for _, c := range fn.Calls {
				if c.Value == 0 {
					continue
				}
				for _, callee := range s.pt.funcsIn(c.Value) {
					if c.dynLinked[callee] {
						continue
					}
					s.linkCall(c, callee)
					added = true
				}
			}
		}
		if !added {
			return s
		}
		s.pt.solve()
	}
}

// collectColdIface records //simlint:coldpath directives on interface
// method declarations: a hotpath function may call such a method even when
// an implementation allocates, because the annotation declares the verb an
// intentional cold boundary (e.g. kv.Client operations that model I/O).
func (s *SSA) collectColdIface(pkg *Package, gd *ast.GenDecl) {
	if gd.Tok != token.TYPE {
		return
	}
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		it, ok := ts.Type.(*ast.InterfaceType)
		if !ok || it.Methods == nil {
			continue
		}
		for _, m := range it.Methods.List {
			if len(m.Names) == 0 {
				continue // embedded interface
			}
			if !docHasDirective(m.Doc, dirColdpath) && !docHasDirective(m.Comment, dirColdpath) {
				continue
			}
			for _, name := range m.Names {
				if obj, ok := pkg.Info.Defs[name].(*types.Func); ok {
					s.coldIface[obj.Origin()] = true
				}
			}
		}
	}
}

// ColdIface reports whether an interface method declaration carries
// //simlint:coldpath.
func (s *SSA) ColdIface(m *types.Func) bool {
	return m != nil && s.coldIface[m.Origin()]
}

// FuncOf returns the lowered form of a declared function or method, or nil
// when obj is external to the targets or body-less.
func (s *SSA) FuncOf(obj *types.Func) *SSAFunc {
	if obj == nil {
		return nil
	}
	return s.byObj[obj.Origin()]
}

// LitOf returns the lowered form of a function literal in a target package.
func (s *SSA) LitOf(lit *ast.FuncLit) *SSAFunc { return s.byLit[lit] }

// Callees resolves a call site to the target functions it may invoke:
// the static callee, the CHA implementations of an interface method, or
// the points-to set of a dynamic callee value. External callees resolve to
// nothing — the engine's soundness boundary (DESIGN.md §12).
func (s *SSA) Callees(c *SSACall) []*SSAFunc {
	switch {
	case c.Static != nil:
		if fn := s.FuncOf(c.Static); fn != nil {
			return []*SSAFunc{fn}
		}
		return nil
	case c.Iface != nil:
		return s.implsOf(c.Iface)
	case c.Value != 0:
		return s.pt.funcsIn(c.Value)
	}
	return nil
}

// implsOf resolves an interface method to the concrete target methods that
// may satisfy it: every named type in the targets whose method set (value
// or pointer) implements the method's interface contributes its
// like-named method.
func (s *SSA) implsOf(m *types.Func) []*SSAFunc {
	m = m.Origin()
	if impls, ok := s.methodImpls[m]; ok {
		return impls
	}
	recv := m.Type().(*types.Signature).Recv()
	if recv == nil {
		s.methodImpls[m] = nil
		return nil
	}
	it, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		s.methodImpls[m] = nil
		return nil
	}
	var impls []*SSAFunc
	for _, named := range s.namedTypes {
		if types.IsInterface(named.Underlying()) {
			continue
		}
		var impl types.Type
		switch {
		case types.Implements(named, it):
			impl = named
		case types.Implements(types.NewPointer(named), it):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		if cm, ok := obj.(*types.Func); ok {
			if fn := s.FuncOf(cm); fn != nil {
				impls = append(impls, fn)
			}
		}
	}
	s.methodImpls[m] = impls
	return impls
}

// linkCall adds the param/result constraint edges for callee being invoked
// at c. Links are idempotent per (call, callee) pair.
func (s *SSA) linkCall(c *SSACall, callee *SSAFunc) {
	if c.dynLinked == nil {
		c.dynLinked = make(map[*SSAFunc]bool)
	}
	if c.dynLinked[callee] {
		return
	}
	c.dynLinked[callee] = true
	sig := callee.Sig
	if recv := sig.Recv(); recv != nil && c.recv != 0 {
		s.pt.copyValue(s.pt.varNode(recv), c.recv, recv.Type())
	}
	params := sig.Params()
	for i, arg := range c.args {
		if arg == 0 {
			continue
		}
		var pv *types.Var
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pv = params.At(params.Len() - 1)
			if c.Expr == nil || !c.Expr.Ellipsis.IsValid() {
				// Individual variadic args land in the parameter slice's
				// element.
				pn := s.pt.varNode(pv)
				s.pt.ensureObjFor(pn, pv.Type())
				s.pt.store(pn, fieldElem, arg, elemTypeOf(pv.Type()))
				continue
			}
		case i < params.Len():
			pv = params.At(i)
		default:
			continue
		}
		s.pt.copyValue(s.pt.varNode(pv), arg, pv.Type())
	}
	for i, res := range s.resultNodes(callee) {
		if i < len(c.results) && c.results[i] != 0 {
			s.pt.copyValue(c.results[i], res, sig.Results().At(i).Type())
		}
	}
}

// resultNodes returns (creating on demand) the nodes that accumulate
// callee's return values.
func (s *SSA) resultNodes(fn *SSAFunc) []nodeID {
	if fn.results == nil {
		n := fn.Sig.Results().Len()
		fn.results = make([]nodeID, n)
		for i := 0; i < n; i++ {
			fn.results[i] = s.pt.tempNode(fn.Sig.Results().At(i).Type(), fn.Pos)
		}
	}
	return fn.results
}

func funcDisplayName(obj *types.Func) string {
	if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("(%s.%s).%s", named.Obj().Pkg().Name(), named.Obj().Name(), obj.Name())
		}
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// lowerer lowers one function body to constraints and call records.
type lowerer struct {
	ssa *SSA
	fn  *SSAFunc
	pkg *Package
}

func (l *lowerer) info() *types.Info { return l.pkg.Info }
func (l *lowerer) pt() *ptGraph      { return l.ssa.pt }

func (l *lowerer) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, st := range b.List {
		l.stmt(st)
	}
}

func (l *lowerer) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		l.assign(st)
	case *ast.ExprStmt:
		l.value(st.X)
	case *ast.ReturnStmt:
		res := l.ssa.resultNodes(l.fn)
		if len(st.Results) == 1 && len(res) > 1 {
			// return f() forwarding multiple results.
			if call, ok := ast.Unparen(st.Results[0]).(*ast.CallExpr); ok {
				for i, rn := range l.call(call, len(res)) {
					if i < len(res) {
						l.pt().copyValue(res[i], rn, l.fn.Sig.Results().At(i).Type())
					}
				}
				return
			}
		}
		for i, e := range st.Results {
			if i < len(res) {
				l.pt().copyValue(res[i], l.value(e), l.fn.Sig.Results().At(i).Type())
			}
		}
	case *ast.IfStmt:
		if st.Init != nil {
			l.stmt(st.Init)
		}
		l.value(st.Cond)
		l.block(st.Body)
		if st.Else != nil {
			l.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			l.stmt(st.Init)
		}
		if st.Cond != nil {
			l.value(st.Cond)
		}
		l.block(st.Body)
		if st.Post != nil {
			l.stmt(st.Post)
		}
	case *ast.RangeStmt:
		l.rangeStmt(st)
	case *ast.BlockStmt:
		l.block(st)
	case *ast.SwitchStmt:
		if st.Init != nil {
			l.stmt(st.Init)
		}
		if st.Tag != nil {
			l.value(st.Tag)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				l.value(e)
			}
			for _, bs := range cc.Body {
				l.stmt(bs)
			}
		}
	case *ast.TypeSwitchStmt:
		l.typeSwitch(st)
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				l.stmt(cc.Comm)
			}
			for _, bs := range cc.Body {
				l.stmt(bs)
			}
		}
	case *ast.SendStmt:
		ch := l.value(st.Chan)
		l.pt().store(ch, fieldElem, l.value(st.Value), typeOf(l.info(), st.Value))
	case *ast.GoStmt:
		l.call(st.Call, 0)
	case *ast.DeferStmt:
		l.call(st.Call, 0)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					l.valueSpec(vs)
				}
			}
		}
	case *ast.LabeledStmt:
		l.stmt(st.Stmt)
	case *ast.IncDecStmt:
		l.value(st.X)
	}
}

func (l *lowerer) valueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			rns := l.call(call, len(vs.Names))
			for i, name := range vs.Names {
				if i < len(rns) {
					l.assignToIdent(name, rns[i])
				}
			}
			return
		}
	}
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			l.assignToIdent(name, l.value(vs.Values[i]))
		}
	}
}

func (l *lowerer) typeSwitch(st *ast.TypeSwitchStmt) {
	if st.Init != nil {
		l.stmt(st.Init)
	}
	var src nodeID
	var declared *ast.Ident
	switch a := st.Assign.(type) {
	case *ast.AssignStmt: // v := x.(type)
		if ta, ok := ast.Unparen(a.Rhs[0]).(*ast.TypeAssertExpr); ok {
			src = l.value(ta.X)
		}
		declared, _ = a.Lhs[0].(*ast.Ident)
	case *ast.ExprStmt: // x.(type)
		if ta, ok := ast.Unparen(a.X).(*ast.TypeAssertExpr); ok {
			src = l.value(ta.X)
		}
	}
	for _, c := range st.Body.List {
		cc := c.(*ast.CaseClause)
		if declared != nil && src != 0 {
			// Each clause declares its own narrowed variable (Implicits);
			// an unfiltered copy over-approximates the narrowing.
			if obj, ok := l.info().Implicits[cc].(*types.Var); ok {
				l.pt().copyValue(l.pt().varNode(obj), src, obj.Type())
			}
		}
		for _, bs := range cc.Body {
			l.stmt(bs)
		}
	}
}

func (l *lowerer) rangeStmt(st *ast.RangeStmt) {
	x := l.value(st.X)
	t := typeOf(l.info(), st.X)
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Map, *types.Chan, *types.Pointer:
			if st.Value != nil {
				l.assignFrom(st.Value, l.pt().load(x, fieldElem, elemTypeOf(t), st.Pos()))
			}
			if st.Key != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					l.assignFrom(st.Key, l.pt().load(x, fieldKey, keyTypeOf(t), st.Pos()))
				}
			}
			if st.Value == nil && st.Key != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					l.assignFrom(st.Key, l.pt().load(x, fieldElem, elemTypeOf(t), st.Pos()))
				}
			}
		case *types.Signature: // range-over-func iterators: approximate by calling
		}
	}
	l.block(st.Body)
}

// assign lowers one assignment statement, including := and op-assigns.
func (l *lowerer) assign(st *ast.AssignStmt) {
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		// x op= y moves no pointers (strings/ints); evaluate for calls.
		for _, e := range st.Rhs {
			l.value(e)
		}
		return
	}
	if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
		switch rhs := ast.Unparen(st.Rhs[0]).(type) {
		case *ast.CallExpr:
			rns := l.call(rhs, len(st.Lhs))
			for i, lhs := range st.Lhs {
				if i < len(rns) {
					l.assignFrom(lhs, rns[i])
				}
			}
		case *ast.TypeAssertExpr:
			l.assignFrom(st.Lhs[0], l.value(rhs))
		case *ast.IndexExpr: // v, ok := m[k]
			l.assignFrom(st.Lhs[0], l.value(rhs))
		case *ast.UnaryExpr: // v, ok := <-ch
			l.assignFrom(st.Lhs[0], l.value(rhs))
		}
		return
	}
	for i, lhs := range st.Lhs {
		if i < len(st.Rhs) {
			l.assignFrom(lhs, l.value(st.Rhs[i]))
		}
	}
}

// assignFrom stores the value in src into the location named by lhs.
func (l *lowerer) assignFrom(lhs ast.Expr, src nodeID) {
	if src == 0 {
		// Still evaluate the destination for side effects (index exprs).
		l.lvalueEval(lhs)
		return
	}
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		l.assignToIdent(lhs, src)
	case *ast.SelectorExpr:
		base, owner, name, direct := l.fieldBase(lhs)
		if name == "" {
			return
		}
		if direct {
			l.pt().copyValue(l.pt().fieldNode(base, name, owner), src, owner)
		} else {
			l.pt().store(base, name, src, owner)
		}
	case *ast.StarExpr:
		p := l.value(lhs.X)
		l.pt().store(p, fieldDeref, src, elemTypeOf(typeOf(l.info(), lhs.X)))
	case *ast.IndexExpr:
		x := l.value(lhs.X)
		l.value(lhs.Index)
		l.pt().store(x, fieldElem, src, elemTypeOf(typeOf(l.info(), lhs.X)))
	}
}

func (l *lowerer) lvalueEval(lhs ast.Expr) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		l.value(lhs.X)
		l.value(lhs.Index)
	case *ast.SelectorExpr:
		l.value(lhs.X)
	case *ast.StarExpr:
		l.value(lhs.X)
	}
}

func (l *lowerer) assignToIdent(id *ast.Ident, src nodeID) {
	if id.Name == "_" {
		return
	}
	obj, _ := l.info().ObjectOf(id).(*types.Var)
	if obj == nil {
		return
	}
	l.pt().copyValue(l.pt().varNode(obj), src, obj.Type())
}

// value lowers an expression and returns the node holding its value
// (0 when the value carries no pointers worth tracking).
func (l *lowerer) value(e ast.Expr) nodeID {
	if e == nil {
		return 0
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return l.value(e.X)
	case *ast.Ident:
		switch obj := l.info().ObjectOf(e).(type) {
		case *types.Var:
			return l.pt().varNode(obj)
		case *types.Func:
			// A function referenced as a value.
			if fn := l.ssa.FuncOf(obj); fn != nil {
				t := l.pt().tempNode(obj.Type(), e.Pos())
				l.pt().addAddr(t, fn.node)
				return t
			}
		}
		return 0
	case *ast.SelectorExpr:
		return l.selector(e)
	case *ast.CallExpr:
		rns := l.call(e, 1)
		if len(rns) > 0 {
			return rns[0]
		}
		return 0
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			return l.addressOf(e.X)
		case token.ARROW:
			ch := l.value(e.X)
			return l.pt().load(ch, fieldElem, elemTypeOf(typeOf(l.info(), e.X)), e.Pos())
		default:
			l.value(e.X)
			return 0
		}
	case *ast.StarExpr:
		p := l.value(e.X)
		return l.pt().load(p, fieldDeref, typeOf(l.info(), e), e.Pos())
	case *ast.IndexExpr:
		// Generic instantiation of a function value parses as IndexExpr.
		if tv, ok := l.info().Types[e.X]; ok && tv.IsType() {
			return 0
		}
		if _, isSig := typeOf(l.info(), e.X).(*types.Signature); isSig {
			return l.value(e.X)
		}
		x := l.value(e.X)
		l.value(e.Index)
		return l.pt().load(x, fieldElem, typeOf(l.info(), e), e.Pos())
	case *ast.IndexListExpr:
		return l.value(e.X)
	case *ast.SliceExpr:
		l.value(e.Low)
		l.value(e.High)
		l.value(e.Max)
		return l.value(e.X) // a slice shares its operand's backing array
	case *ast.TypeAssertExpr:
		// Over-approximate the narrowing with an unfiltered copy.
		t := l.pt().tempNode(typeOf(l.info(), e), e.Pos())
		l.pt().copyValue(t, l.value(e.X), typeOf(l.info(), e))
		return t
	case *ast.CompositeLit:
		return l.compositeLit(e)
	case *ast.FuncLit:
		fn := l.litShell(e)
		t := l.pt().tempNode(typeOf(l.info(), e), e.Pos())
		l.pt().addAddr(t, fn.node)
		return t
	case *ast.BinaryExpr:
		l.value(e.X)
		l.value(e.Y)
		return 0
	case *ast.KeyValueExpr:
		l.value(e.Key)
		return l.value(e.Value)
	default:
		return 0
	}
}

// litShell creates (once) and lowers the SSAFunc for a literal.
func (l *lowerer) litShell(lit *ast.FuncLit) *SSAFunc {
	if fn := l.ssa.byLit[lit]; fn != nil {
		return fn
	}
	sig, _ := typeOf(l.info(), lit).(*types.Signature)
	if sig == nil {
		sig = types.NewSignatureType(nil, nil, nil, nil, nil, false)
	}
	fn := &SSAFunc{
		Name:   l.fn.Name + fmt.Sprintf("$%d", len(l.ssa.byLit)+1),
		Lit:    lit,
		Body:   lit.Body,
		Pkg:    l.pkg,
		Pos:    lit.Pos(),
		Sig:    sig,
		Parent: l.fn,
	}
	fn.node = l.pt().funcNode(fn)
	fn.FreeVars = freeVarsOf(l.info(), lit)
	l.ssa.byLit[lit] = fn
	l.ssa.Funcs = append(l.ssa.Funcs, fn)
	lw := &lowerer{ssa: l.ssa, fn: fn, pkg: l.pkg}
	lw.block(lit.Body)
	return fn
}

// freeVarsOf collects the variables referenced inside lit but declared
// outside it (Go closures capture by reference, so these share the outer
// nodes).
func freeVarsOf(info *types.Info, lit *ast.FuncLit) []*types.Var {
	seen := make(map[*types.Var]bool)
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

// addressOf lowers &x.
func (l *lowerer) addressOf(x ast.Expr) nodeID {
	x = ast.Unparen(x)
	t := l.pt().tempNode(types.NewPointer(typeOf(l.info(), x)), x.Pos())
	switch x := x.(type) {
	case *ast.Ident:
		if obj, ok := l.info().ObjectOf(x).(*types.Var); ok {
			l.pt().addAddr(t, l.pt().varNode(obj))
		}
	case *ast.CompositeLit:
		l.pt().addAddr(t, l.compositeLit(x))
	case *ast.SelectorExpr:
		base, owner, name, direct := l.fieldBase(x)
		if name == "" {
			return t
		}
		if direct {
			l.pt().addAddr(t, l.pt().fieldNode(base, name, owner))
		} else {
			// &p.f: the field of every object p may point at.
			l.pt().addFieldAddr(t, base, name, owner)
		}
	case *ast.IndexExpr:
		base := l.value(x.X)
		l.value(x.Index)
		l.pt().addFieldAddr(t, base, fieldElem, elemTypeOf(typeOf(l.info(), x.X)))
	case *ast.StarExpr:
		// &*p == p.
		return l.value(x.X)
	}
	return t
}

// compositeLit allocates the object for a composite literal and wires its
// element flows. Struct and array literals are values: the object node
// itself is returned as the value cell. Slice and map literals are
// reference-shaped: the returned cell points at the backing object.
func (l *lowerer) compositeLit(e *ast.CompositeLit) nodeID {
	t := typeOf(l.info(), e)
	obj := l.pt().allocNode(t, e.Pos())
	out := obj
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		out = l.pt().tempNode(t, e.Pos())
		l.pt().addAddr(out, obj)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				name, _ := kv.Key.(*ast.Ident)
				if name == nil {
					continue
				}
				ft := fieldTypeByName(u, name.Name)
				l.pt().copyValue(l.pt().fieldNode(obj, name.Name, ft), l.value(kv.Value), ft)
			} else if i < u.NumFields() {
				f := u.Field(i)
				l.pt().copyValue(l.pt().fieldNode(obj, f.Name(), f.Type()), l.value(el), f.Type())
			}
		}
	case *types.Slice, *types.Array:
		et := elemTypeOf(t)
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			l.pt().copyValue(l.pt().fieldNode(obj, fieldElem, et), l.value(v), et)
		}
	case *types.Map:
		for _, el := range e.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			l.pt().copyValue(l.pt().fieldNode(obj, fieldKey, keyTypeOf(t)), l.value(kv.Key), keyTypeOf(t))
			l.pt().copyValue(l.pt().fieldNode(obj, fieldElem, elemTypeOf(t)), l.value(kv.Value), elemTypeOf(t))
		}
	}
	return out
}

// selector lowers a non-call selector: package member, field read, or
// method value.
func (l *lowerer) selector(e *ast.SelectorExpr) nodeID {
	// Qualified package identifier (pkg.Var / pkg.Func).
	if id, ok := e.X.(*ast.Ident); ok {
		if _, isPkg := l.info().ObjectOf(id).(*types.PkgName); isPkg {
			switch obj := l.info().ObjectOf(e.Sel).(type) {
			case *types.Var:
				return l.pt().varNode(obj)
			case *types.Func:
				if fn := l.ssa.FuncOf(obj); fn != nil {
					t := l.pt().tempNode(obj.Type(), e.Pos())
					l.pt().addAddr(t, fn.node)
					return t
				}
			}
			return 0
		}
	}
	sel, ok := l.info().Selections[e]
	if !ok {
		return 0
	}
	switch sel.Kind() {
	case types.FieldVal:
		base, owner, name, direct := l.fieldBase(e)
		if name == "" {
			return 0
		}
		if direct {
			return l.pt().fieldNode(base, name, owner)
		}
		return l.pt().load(base, name, owner, e.Pos())
	case types.MethodVal, types.MethodExpr:
		m, _ := sel.Obj().(*types.Func)
		if fn := l.ssa.FuncOf(m); fn != nil {
			// Bind the receiver eagerly (the method value may be invoked
			// anywhere); the bound value points to the method's function
			// object.
			if recv := fn.Sig.Recv(); recv != nil && sel.Kind() == types.MethodVal {
				l.pt().copyValue(l.pt().varNode(recv), l.value(e.X), recv.Type())
			}
			t := l.pt().tempNode(typeOf(l.info(), e), e.Pos())
			l.pt().addAddr(t, fn.node)
			return t
		}
		l.value(e.X)
		return 0
	}
	return 0
}

// fieldBase resolves the base node and final field for a selector
// expression denoting a field, walking any embedded-field path. direct
// reports that base is the struct value itself (read its field node);
// otherwise base is a pointer and the access is a load/store through it.
func (l *lowerer) fieldBase(e *ast.SelectorExpr) (base nodeID, ftype types.Type, name string, direct bool) {
	sel, ok := l.info().Selections[e]
	if !ok || sel.Kind() != types.FieldVal {
		return 0, nil, "", false
	}
	base = l.value(e.X)
	if base == 0 {
		return 0, nil, "", false
	}
	t := sel.Recv()
	direct = true
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
		direct = false
	}
	idx := sel.Index()
	// Walk the embedded path: every hop but the last loads/creates the
	// intermediate field node.
	for step, i := range idx {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return 0, nil, "", false
		}
		f := st.Field(i)
		if step == len(idx)-1 {
			return base, f.Type(), f.Name(), direct
		}
		if direct {
			base = l.pt().fieldNode(base, f.Name(), f.Type())
		} else {
			base = l.pt().load(base, f.Name(), f.Type(), e.Pos())
		}
		t = f.Type()
		direct = true
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			direct = false
		}
	}
	return 0, nil, "", false
}

// call lowers a call expression (or conversion, or builtin) and returns
// nodes for nresults results.
func (l *lowerer) call(e *ast.CallExpr, nresults int) []nodeID {
	info := l.info()
	// Type conversion.
	if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
		if len(e.Args) != 1 {
			return nil
		}
		src := l.value(e.Args[0])
		dst := tv.Type
		t := l.pt().tempNode(dst, e.Pos())
		if src != 0 {
			// copyValue handles interface boxing from the node types.
			l.pt().copyValue(t, src, dst)
		}
		return []nodeID{t}
	}
	// Builtins.
	if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			return l.builtin(id.Name, e)
		}
	}

	c := &SSACall{Fn: l.fn, Pos: e.Pos(), Expr: e}
	fun := ast.Unparen(e.Fun)
	switch fn := fun.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fn].(*types.Func); ok {
			c.Static = obj.Origin()
		} else {
			c.Value = l.value(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok && sel.Kind() == types.MethodVal {
			m := sel.Obj().(*types.Func)
			c.recv = l.value(fn.X)
			if types.IsInterface(sel.Recv().Underlying()) {
				c.Iface = m.Origin()
			} else {
				c.Static = m.Origin()
			}
		} else if obj, ok := info.Uses[fn.Sel].(*types.Func); ok {
			c.Static = obj.Origin() // qualified pkg.Func
		} else {
			c.Value = l.value(fn)
		}
	default:
		c.Value = l.value(fun)
	}

	for _, arg := range e.Args {
		c.args = append(c.args, l.value(arg))
	}

	// Result nodes. For external static callees the results are fresh
	// opaque objects of the declared result types — the engine does not
	// look inside the standard library.
	var resTypes []types.Type
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		if tuple, ok := tv.Type.(*types.Tuple); ok {
			for i := 0; i < tuple.Len(); i++ {
				resTypes = append(resTypes, tuple.At(i).Type())
			}
		} else if _, isVoid := tv.Type.(*types.Tuple); !isVoid && tv.Type != types.Typ[types.Invalid] {
			if b, ok := tv.Type.(*types.Basic); !ok || b.Kind() != types.Invalid {
				resTypes = append(resTypes, tv.Type)
			}
		}
	}
	external := c.Static != nil && l.ssa.FuncOf(c.Static) == nil && c.Iface == nil
	for i, rt := range resTypes {
		rn := l.pt().tempNode(rt, e.Pos())
		if external {
			l.pt().seedExternal(rn, rt, e.Pos())
		}
		c.results = append(c.results, rn)
		_ = i
	}

	l.fn.Calls = append(l.fn.Calls, c)
	if c.Static != nil {
		if callee := l.ssa.FuncOf(c.Static); callee != nil {
			l.ssa.linkCall(c, callee)
		}
	}
	if nresults > len(c.results) {
		nresults = len(c.results)
	}
	return c.results[:nresults]
}

func (l *lowerer) builtin(name string, e *ast.CallExpr) []nodeID {
	switch name {
	case "append":
		if len(e.Args) == 0 {
			return nil
		}
		st := typeOf(l.info(), e.Args[0])
		base := l.value(e.Args[0])
		out := l.pt().tempNode(st, e.Pos())
		obj := l.pt().allocNode(st, e.Pos())
		l.pt().addAddr(out, obj)
		if base != 0 {
			// The result may share the operand's backing array.
			l.pt().copyValue(out, base, st)
		}
		et := elemTypeOf(st)
		for i, arg := range e.Args[1:] {
			v := l.value(arg)
			if v == 0 {
				continue
			}
			if e.Ellipsis.IsValid() && i == len(e.Args[1:])-1 {
				// append(a, b...): elements of b flow into the result.
				l.pt().copyValue(out, v, st)
				continue
			}
			l.pt().store(out, fieldElem, v, et)
		}
		return []nodeID{out}
	case "copy":
		if len(e.Args) == 2 {
			dst, src := l.value(e.Args[0]), l.value(e.Args[1])
			et := elemTypeOf(typeOf(l.info(), e.Args[0]))
			v := l.pt().load(src, fieldElem, et, e.Pos())
			l.pt().store(dst, fieldElem, v, et)
		}
		return nil
	case "new":
		t := l.pt().tempNode(typeOf(l.info(), e), e.Pos())
		if tv, ok := l.info().Types[e.Args[0]]; ok && tv.Type != nil {
			l.pt().addAddr(t, l.pt().allocNode(tv.Type, e.Pos()))
		}
		return []nodeID{t}
	case "make":
		t := typeOf(l.info(), e)
		for _, a := range e.Args[1:] {
			l.value(a)
		}
		out := l.pt().tempNode(t, e.Pos())
		l.pt().addAddr(out, l.pt().allocNode(t, e.Pos()))
		return []nodeID{out}
	case "min", "max":
		var out nodeID
		for _, a := range e.Args {
			if v := l.value(a); v != 0 && out == 0 {
				out = v
			}
		}
		return []nodeID{out}
	default: // len, cap, delete, panic, print, println, clear, close, real, imag, complex
		for _, a := range e.Args {
			l.value(a)
		}
		return nil
	}
}

// --- small type helpers ---

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func elemTypeOf(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Map:
		return u.Elem()
	case *types.Chan:
		return u.Elem()
	case *types.Pointer:
		return u.Elem()
	}
	return nil
}

func keyTypeOf(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if m, ok := t.Underlying().(*types.Map); ok {
		return m.Key()
	}
	return nil
}

func fieldTypeByName(st *types.Struct, name string) types.Type {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i).Type()
		}
	}
	return nil
}

// declaredInSimPkg reports whether t's named type is declared in a package
// named "sim" (the kernel or a golden-test stub of it).
func declaredInSimPkg(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}

// funcChain formats a call chain for diagnostics: a → b → c.
func funcChain(frames []string) string {
	return strings.Join(frames, " → ")
}
