package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// A Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Standard   bool // part of the standard library
	DepOnly    bool // loaded only as a dependency, never analyzed
	Files      []*ast.File
	Types      *types.Package
	// Info is populated for analysis targets only (DepOnly packages are
	// type-checked without recording use/type maps).
	Info *types.Info
}

// A Program is the load result: every package reachable from the requested
// patterns, in dependency order (dependencies before dependents).
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	// ssa caches the interprocedural engine (built on first SSA() call)
	// so every analyzer in one driver run shares one lowering and one
	// points-to solution.
	ssa *SSA
}

// Targets returns the packages that matched the load patterns (everything
// except pure dependencies), in load order.
func (p *Program) Targets() []*Package {
	var out []*Package
	for _, pkg := range p.Packages {
		if !pkg.DepOnly && !pkg.Standard {
			out = append(out, pkg)
		}
	}
	return out
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// Load enumerates the packages matching patterns with `go list -deps -json`
// and type-checks them from source. dir is the working directory for the go
// command ("" means the current directory); patterns are anything go list
// accepts (./..., import paths, a single directory).
//
// CGO_ENABLED=0 is forced so every standard-library package resolves to its
// pure-Go file set and the whole dependency closure type-checks without a C
// toolchain — the same trick x/tools' source importer relies on.
func Load(dir string, patterns ...string) (*Program, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Standard,DepOnly,GoFiles", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	prog := &Program{Fset: token.NewFileSet()}
	imported := map[string]*types.Package{"unsafe": types.Unsafe}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p := imported[path]; p != nil {
			return p, nil
		}
		return nil, fmt.Errorf("package %q not loaded", path)
	})
	sizes := types.SizesFor("gc", runtime.GOARCH)

	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.ImportPath == "unsafe" {
			continue
		}
		pkg := &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Standard:   lp.Standard,
			DepOnly:    lp.DepOnly,
		}
		target := !lp.DepOnly && !lp.Standard
		mode := parser.SkipObjectResolution
		if target {
			// Comments carry the //simlint: directives.
			mode |= parser.ParseComments
		}
		for _, f := range lp.GoFiles {
			af, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, f), nil, mode)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", filepath.Join(lp.Dir, f), err)
			}
			pkg.Files = append(pkg.Files, af)
		}
		var typeErrs []error
		conf := &types.Config{
			Importer: imp,
			Sizes:    sizes,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		if target {
			pkg.Info = &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Uses:       make(map[*ast.Ident]types.Object),
				Defs:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
				// Implicits carries type-switch case variables, which the
				// SSA-lite lowering needs to track narrowing assignments.
				Implicits: make(map[ast.Node]types.Object),
			}
		}
		tpkg, _ := conf.Check(lp.ImportPath, prog.Fset, pkg.Files, pkg.Info)
		// Dependencies (in particular deep runtime internals) may trip
		// go/types where the real compiler is lenient; tolerate errors
		// there and insist only that analysis targets check cleanly.
		if target && len(typeErrs) > 0 {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, typeErrs[0])
		}
		pkg.Types = tpkg
		imported[lp.ImportPath] = tpkg
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
