package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// AnalyzeOptions configures one driver run.
type AnalyzeOptions struct {
	// IgnoreScope runs every analyzer on every target package regardless
	// of Analyzer.AppliesTo. Golden tests use it so testdata packages
	// (whose import paths are synthetic) still exercise scoped analyzers.
	IgnoreScope bool
}

// An IgnoreEntry describes one //simlint:ignore directive found in the
// analyzed packages, for the CI-visible `simlint -ignores` report.
type IgnoreEntry struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	// Checked reports that the named analyzer ran in this driver
	// invocation, making Stale meaningful.
	Checked bool
	// Stale reports that the named analyzer ran and produced no
	// diagnostic on the directive's line or the line below — the
	// suppression no longer suppresses anything.
	Stale bool
}

// An IgnoreReport is the full directive inventory of one driver run.
type IgnoreReport struct {
	Entries []IgnoreEntry
}

// Analyze runs the analyzers over prog's target packages and returns the
// surviving diagnostics: suppressed findings are dropped, malformed
// directives are themselves reported, and the result is sorted by position.
func Analyze(prog *Program, analyzers []*Analyzer, opts AnalyzeOptions) ([]Diagnostic, error) {
	diags, _, err := AnalyzeReport(prog, analyzers, opts)
	return diags, err
}

// AnalyzeReport is Analyze plus the ignore-directive inventory (with
// staleness computed against the pre-suppression diagnostics). When the
// analyzer list includes Ignoreaudit, stale directives are also reported
// as diagnostics, so a suppression cannot outlive the finding it hides.
func AnalyzeReport(prog *Program, analyzers []*Analyzer, opts AnalyzeOptions) ([]Diagnostic, *IgnoreReport, error) {
	targets := prog.Targets()

	ran := make(map[string]bool)
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	// Hook-type directives are declarations about a package's API, so
	// they must be visible to every package that calls through the hook,
	// not just the declaring one: collect them program-wide up front.
	hookTypes := make(map[string]bool)
	var directives []directive
	for _, pkg := range targets {
		for _, name := range hookTypesOf(pkg) {
			hookTypes[name] = true
		}
		for _, f := range pkg.Files {
			directives = append(directives, fileDirectives(prog.Fset, f)...)
		}
	}

	var diags []Diagnostic
	for _, pkg := range targets {
		for _, a := range analyzers {
			if a.Run == nil {
				continue // driver-implemented (Ignoreaudit)
			}
			if !opts.IgnoreScope && a.AppliesTo != nil && !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				HookTypes: hookTypes,
				Prog:      prog,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, err
			}
		}
	}

	// Raw (pre-suppression) diagnostic index, for stale-ignore detection:
	// file -> line -> analyzer names that fired there.
	raw := make(map[string]map[int]map[string]bool)
	for _, dg := range diags {
		byLine := raw[dg.Pos.Filename]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			raw[dg.Pos.Filename] = byLine
		}
		if byLine[dg.Pos.Line] == nil {
			byLine[dg.Pos.Line] = make(map[string]bool)
		}
		byLine[dg.Pos.Line][dg.Analyzer] = true
	}

	// Suppression index: file -> line -> ignore directives. An ignore
	// suppresses diagnostics on its own line (trailing comment) and on
	// the line immediately below (standalone comment above the code).
	ignores := make(map[string]map[int][]directive)
	report := &IgnoreReport{}
	for _, d := range directives {
		switch d.kind {
		case dirIgnore:
			byLine := ignores[d.pos.Filename]
			if byLine == nil {
				byLine = make(map[int][]directive)
				ignores[d.pos.Filename] = byLine
			}
			byLine[d.pos.Line] = append(byLine[d.pos.Line], d)

			entry := IgnoreEntry{Pos: d.pos, Analyzer: d.analyzer, Reason: d.reason}
			// A directive naming ignoreaudit itself opts a line out of the
			// audit; auditing it would recurse.
			if ran[d.analyzer] && d.analyzer != Ignoreaudit.Name {
				entry.Checked = true
				fired := false
				for _, line := range [2]int{d.pos.Line, d.pos.Line + 1} {
					if raw[d.pos.Filename][line][d.analyzer] {
						fired = true
						break
					}
				}
				entry.Stale = !fired
			}
			report.Entries = append(report.Entries, entry)
		case dirMalformed:
			diags = append(diags, Diagnostic{
				Analyzer: "simlint",
				Pos:      d.pos,
				Message:  d.problem,
			})
		}
	}
	sort.Slice(report.Entries, func(i, j int) bool {
		a, b := report.Entries[i], report.Entries[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})

	if ran[Ignoreaudit.Name] {
		for _, e := range report.Entries {
			if e.Checked && e.Stale {
				diags = append(diags, Diagnostic{
					Analyzer: Ignoreaudit.Name,
					Pos:      e.Pos,
					Message: fmt.Sprintf("stale //simlint:ignore %s (%s): the analyzer no longer fires on this line; delete the directive",
						e.Analyzer, e.Reason),
				})
			}
		}
	}

	kept := diags[:0]
	for _, dg := range diags {
		if !suppressed(ignores, dg) {
			kept = append(kept, dg)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, report, nil
}

func suppressed(ignores map[string]map[int][]directive, dg Diagnostic) bool {
	byLine := ignores[dg.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{dg.Pos.Line, dg.Pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.analyzer == dg.Analyzer {
				return true
			}
		}
	}
	return false
}

// Ignoreaudit fails the build on //simlint:ignore directives whose named
// analyzer no longer fires on the suppressed line, so stale suppressions
// cannot linger and silently swallow future findings. It is implemented
// inside the driver (Run is nil): it needs the raw pre-suppression
// diagnostics of the whole run, which no per-package pass can see.
var Ignoreaudit = &Analyzer{
	Name: "ignoreaudit",
	Doc:  "//simlint:ignore directives must still suppress a live diagnostic (stale-ignore detection)",
}

// All returns the full simlint analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detwalk, Hookguard, Hotpath, Seedflow, Shardsafe, Blockfree, Ignoreaudit}
}

// Select returns the analyzers whose names appear in names (the
// LINT_ANALYZERS / -analyzers filter), erroring on unknown names so a typo
// cannot silently disable enforcement.
func Select(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run simlint -list)", n)
		}
		out = append(out, a)
	}
	return out, nil
}
