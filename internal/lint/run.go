package lint

import (
	"sort"
)

// AnalyzeOptions configures one driver run.
type AnalyzeOptions struct {
	// IgnoreScope runs every analyzer on every target package regardless
	// of Analyzer.AppliesTo. Golden tests use it so testdata packages
	// (whose import paths are synthetic) still exercise scoped analyzers.
	IgnoreScope bool
}

// Analyze runs the analyzers over prog's target packages and returns the
// surviving diagnostics: suppressed findings are dropped, malformed
// directives are themselves reported, and the result is sorted by position.
func Analyze(prog *Program, analyzers []*Analyzer, opts AnalyzeOptions) ([]Diagnostic, error) {
	targets := prog.Targets()

	// Hook-type directives are declarations about a package's API, so
	// they must be visible to every package that calls through the hook,
	// not just the declaring one: collect them program-wide up front.
	hookTypes := make(map[string]bool)
	var directives []directive
	for _, pkg := range targets {
		for _, name := range hookTypesOf(pkg) {
			hookTypes[name] = true
		}
		for _, f := range pkg.Files {
			directives = append(directives, fileDirectives(prog.Fset, f)...)
		}
	}

	var diags []Diagnostic
	for _, pkg := range targets {
		for _, a := range analyzers {
			if !opts.IgnoreScope && a.AppliesTo != nil && !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				HookTypes: hookTypes,
				diags:     &diags,
			}
			//simlint:ignore hookguard every registered analyzer declares Run; a nil is a programming error best surfaced as a panic
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}

	// Suppression index: file -> line -> ignore directives. An ignore
	// suppresses diagnostics on its own line (trailing comment) and on
	// the line immediately below (standalone comment above the code).
	ignores := make(map[string]map[int][]directive)
	for _, d := range directives {
		switch d.kind {
		case dirIgnore:
			byLine := ignores[d.pos.Filename]
			if byLine == nil {
				byLine = make(map[int][]directive)
				ignores[d.pos.Filename] = byLine
			}
			byLine[d.pos.Line] = append(byLine[d.pos.Line], d)
		case dirMalformed:
			diags = append(diags, Diagnostic{
				Analyzer: "simlint",
				Pos:      d.pos,
				Message:  d.problem,
			})
		}
	}

	kept := diags[:0]
	for _, dg := range diags {
		if !suppressed(ignores, dg) {
			kept = append(kept, dg)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

func suppressed(ignores map[string]map[int][]directive, dg Diagnostic) bool {
	byLine := ignores[dg.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{dg.Pos.Line, dg.Pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.analyzer == dg.Analyzer {
				return true
			}
		}
	}
	return false
}

// All returns the full simlint analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detwalk, Hookguard, Hotpath, Seedflow, Shardsafe}
}
