package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hookguard enforces the hook-call invariant: any call through a nullable
// hook — a struct field of function type (ycsb.RunEvent.Fn, metrics
// sinks), or a method on a pointer to a type marked //simlint:hook (the
// consistency oracle) — must be dominated by a nil check on that exact
// expression. The oracle's methods happen to be nil-safe, but the nil gate
// at the call site is what keeps a detached oracle at zero allocations and
// zero argument evaluation on database hot paths; a forgotten guard is a
// silent perf regression today and a panic the day the hook stops being
// nil-safe.
var Hookguard = &Analyzer{
	Name:      "hookguard",
	Doc:       "calls through nullable hook/callback fields must be dominated by a nil check",
	AppliesTo: func(importPath string) bool { return strings.HasPrefix(importPath, "cloudbench") },
	Run:       runHookguard,
}

func runHookguard(pass *Pass) error {
	w := &hookWalker{pass: pass, hookVars: make(map[types.Object]bool)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				w.stmts(fn.Body.List, guardSet{})
			}
		}
	}
	return nil
}

// guardSet holds canonical renderings (types.ExprString) of expressions
// proven non-nil on the current path.
type guardSet map[string]bool

func (g guardSet) extend(names []string) guardSet {
	if len(names) == 0 {
		return g
	}
	out := make(guardSet, len(g)+len(names))
	for k := range g {
		out[k] = true
	}
	for _, n := range names {
		out[n] = true
	}
	return out
}

type hookWalker struct {
	pass *Pass
	// hookVars are local variables bound from a nullable hook field
	// (f := ev.Fn); calling them needs the same guard as the field.
	hookVars map[types.Object]bool
}

// nullableHookExpr returns the expression that must be nil-checked before
// the call, or nil when the call is not through a hook.
func (w *hookWalker) nullableHookExpr(call *ast.CallExpr) ast.Expr {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj := w.pass.TypesInfo.ObjectOf(fun.Sel)
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
				return fun // ev.Fn(...)
			}
		}
		if _, ok := obj.(*types.Func); ok && w.isHookPointer(fun.X) {
			return fun.X // db.oracle.WriteBegin(...)
		}
	case *ast.Ident:
		if w.hookVars[w.pass.TypesInfo.ObjectOf(fun)] {
			return fun // f := ev.Fn; f(...)
		}
	}
	return nil
}

// isHookPointer reports whether x's static type is a pointer to a type
// marked //simlint:hook.
func (w *hookWalker) isHookPointer(x ast.Expr) bool {
	tv, ok := w.pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := tv.Type.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return w.pass.HookTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

func (w *hookWalker) checkCall(call *ast.CallExpr, g guardSet) {
	if hook := w.nullableHookExpr(call); hook != nil {
		name := types.ExprString(hook)
		if !g[name] {
			w.pass.Reportf(call.Pos(), "call through nullable hook %s is not dominated by a nil check (guard with `if %s != nil`)", name, name)
		}
	}
}

// stmts walks a statement list sequentially, threading guard facts (an
// early-exit `if x == nil { return }` guards every later statement).
func (w *hookWalker) stmts(list []ast.Stmt, g guardSet) {
	for _, s := range list {
		g = w.stmt(s, g)
	}
}

// stmt walks one statement under guard set g and returns the guard set
// holding for the statements after it.
func (w *hookWalker) stmt(s ast.Stmt, g guardSet) guardSet {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, g)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, g)
		}
		for _, e := range s.Lhs {
			w.expr(e, g)
		}
		// Track f := ev.Fn aliases so the guard requirement follows the
		// value into the local.
		for i, lhs := range s.Lhs {
			if i >= len(s.Rhs) {
				break
			}
			sel, ok := ast.Unparen(s.Rhs[i]).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if v, ok := w.pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var); ok && v.IsField() {
				if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if obj := w.pass.TypesInfo.ObjectOf(id); obj != nil {
							w.hookVars[obj] = true
						}
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			g = w.stmt(s.Init, g)
		}
		w.expr(s.Cond, g)
		w.stmts(s.Body.List, g.extend(nilGuards(s.Cond, token.NEQ)))
		if s.Else != nil {
			w.stmt(s.Else, g.extend(nilGuards(s.Cond, token.EQL)))
		}
		// if x == nil { return } dominates everything after the if with
		// x != nil (and symmetrically for the else branch).
		var after []string
		if terminates(s.Body.List) {
			after = append(after, nilGuards(s.Cond, token.EQL)...)
		}
		if eb, ok := s.Else.(*ast.BlockStmt); ok && terminates(eb.List) {
			after = append(after, nilGuards(s.Cond, token.NEQ)...)
		}
		return g.extend(after)
	case *ast.BlockStmt:
		w.stmts(s.List, g)
	case *ast.ForStmt:
		inner := g
		if s.Init != nil {
			inner = w.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			w.expr(s.Cond, inner)
			inner = inner.extend(nilGuards(s.Cond, token.NEQ))
		}
		w.stmts(s.Body.List, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.expr(s.X, g)
		w.stmts(s.Body.List, g)
	case *ast.SwitchStmt:
		if s.Init != nil {
			g = w.stmt(s.Init, g)
		}
		if s.Tag != nil {
			w.expr(s.Tag, g)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			cg := g
			for _, e := range cc.List {
				w.expr(e, g)
			}
			// In a tagless switch, a single-expression case behaves like
			// an if condition: `case x != nil:` guards its body.
			if s.Tag == nil && len(cc.List) == 1 {
				cg = g.extend(nilGuards(cc.List[0], token.NEQ))
			}
			w.stmts(cc.Body, cg)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			g = w.stmt(s.Init, g)
		}
		w.stmt(s.Assign, g)
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, g)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.stmt(cc.Comm, g)
			}
			w.stmts(cc.Body, g)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, g)
		}
	case *ast.DeferStmt:
		w.expr(s.Call, g)
	case *ast.GoStmt:
		w.expr(s.Call, g)
	case *ast.SendStmt:
		w.expr(s.Chan, g)
		w.expr(s.Value, g)
	case *ast.IncDecStmt:
		w.expr(s.X, g)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, g)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, g)
					}
				}
			}
		}
	}
	return g
}

// expr walks an expression, checking hook calls and propagating
// short-circuit guards (`ev.Fn != nil && ev.Fn()`).
func (w *hookWalker) expr(e ast.Expr, g guardSet) {
	switch e := e.(type) {
	case nil:
	case *ast.BinaryExpr:
		w.expr(e.X, g)
		switch e.Op {
		case token.LAND:
			w.expr(e.Y, g.extend(nilGuards(e.X, token.NEQ)))
		case token.LOR:
			w.expr(e.Y, g.extend(nilGuards(e.X, token.EQL)))
		default:
			w.expr(e.Y, g)
		}
	case *ast.CallExpr:
		w.checkCall(e, g)
		w.expr(e.Fun, g)
		for _, a := range e.Args {
			w.expr(a, g)
		}
	case *ast.FuncLit:
		// Closures are treated as running where they are written; the
		// guards in scope at creation are assumed to still hold.
		w.stmts(e.Body.List, g)
	case *ast.ParenExpr:
		w.expr(e.X, g)
	case *ast.SelectorExpr:
		w.expr(e.X, g)
	case *ast.UnaryExpr:
		w.expr(e.X, g)
	case *ast.StarExpr:
		w.expr(e.X, g)
	case *ast.IndexExpr:
		w.expr(e.X, g)
		w.expr(e.Index, g)
	case *ast.IndexListExpr:
		w.expr(e.X, g)
		for _, i := range e.Indices {
			w.expr(i, g)
		}
	case *ast.SliceExpr:
		w.expr(e.X, g)
		w.expr(e.Low, g)
		w.expr(e.High, g)
		w.expr(e.Max, g)
	case *ast.TypeAssertExpr:
		w.expr(e.X, g)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, g)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key, g)
		w.expr(e.Value, g)
	}
}

// nilGuards extracts the expressions a condition proves non-nil when it
// evaluates to true (op == token.NEQ: conjuncts `x != nil`) or to false
// (op == token.EQL: disjuncts `x == nil`).
func nilGuards(cond ast.Expr, op token.Token) []string {
	cond = ast.Unparen(cond)
	if be, ok := cond.(*ast.BinaryExpr); ok {
		split := token.LAND
		if op == token.EQL {
			split = token.LOR
		}
		if be.Op == split {
			return append(nilGuards(be.X, op), nilGuards(be.Y, op)...)
		}
		if be.Op == op {
			if isNilIdent(be.Y) {
				return []string{types.ExprString(ast.Unparen(be.X))}
			}
			if isNilIdent(be.X) {
				return []string{types.ExprString(ast.Unparen(be.Y))}
			}
		}
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block's last statement unconditionally
// leaves the enclosing scope (return, break, continue, goto, or panic).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
