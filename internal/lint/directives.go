package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directiveKind enumerates the //simlint: comment directives.
type directiveKind int

const (
	// dirIgnore suppresses one analyzer's diagnostics on the directive's
	// line (trailing comment) or the line below (standalone comment):
	// //simlint:ignore <analyzer> <reason>.
	dirIgnore directiveKind = iota
	// dirHotpath marks the function declaration it documents as an
	// allocation-free hot path: //simlint:hotpath.
	dirHotpath
	// dirColdpath marks a function or interface-method declaration as a
	// sanctioned allocation boundary: hotpath-marked callers may call it
	// even though it (or its implementations) allocate. //simlint:coldpath.
	dirColdpath
	// dirHook marks the type declaration it documents as a nullable hook
	// whose method calls require a nil check: //simlint:hook.
	dirHook
	// dirMalformed is an unparseable //simlint: comment; the driver
	// reports it so a typo cannot silently disable enforcement.
	dirMalformed
)

// A directive is one parsed //simlint: comment.
type directive struct {
	kind     directiveKind
	analyzer string // dirIgnore: which analyzer is suppressed
	reason   string // dirIgnore: mandatory justification
	problem  string // dirMalformed: what is wrong
	pos      token.Position
}

// parseDirective parses one comment's text, returning ok=false for
// comments that are not simlint directives at all.
func parseDirective(c *ast.Comment, pos token.Position) (directive, bool) {
	text, isDir := strings.CutPrefix(c.Text, "//simlint:")
	if !isDir {
		return directive{}, false
	}
	d := directive{pos: pos}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		d.kind, d.problem = dirMalformed, "empty simlint directive"
		return d, true
	}
	switch fields[0] {
	case "hotpath":
		d.kind = dirHotpath
	case "coldpath":
		d.kind = dirColdpath
	case "hook":
		d.kind = dirHook
	case "ignore":
		if len(fields) < 3 {
			d.kind, d.problem = dirMalformed, "ignore needs an analyzer name and a reason: //simlint:ignore <analyzer> <reason>"
			return d, true
		}
		d.kind = dirIgnore
		d.analyzer = fields[1]
		d.reason = strings.Join(fields[2:], " ")
	default:
		d.kind, d.problem = dirMalformed, "unknown simlint directive "+fields[0]
	}
	return d, true
}

// fileDirectives extracts every simlint directive in file, keyed by line.
func fileDirectives(fset *token.FileSet, file *ast.File) []directive {
	var out []directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if d, ok := parseDirective(c, fset.Position(c.Pos())); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// hasFuncDirective reports whether fn's doc comment carries the directive
// kind (how //simlint:hotpath is attached to a function).
func hasFuncDirective(fn *ast.FuncDecl, kind directiveKind) bool {
	return docHasDirective(fn.Doc, kind)
}

func docHasDirective(doc *ast.CommentGroup, kind directiveKind) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if d, ok := parseDirective(c, token.Position{}); ok && d.kind == kind {
			return true
		}
	}
	return false
}

// hookTypesOf collects the qualified names of types declared with a
// //simlint:hook directive (on the type spec or its enclosing GenDecl) in
// pkg.
func hookTypesOf(pkg *Package) []string {
	var out []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			declMarked := docHasDirective(gd.Doc, dirHook)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if declMarked || docHasDirective(ts.Doc, dirHook) || docHasDirective(ts.Comment, dirHook) {
					out = append(out, pkg.ImportPath+"."+ts.Name.Name)
				}
			}
		}
	}
	return out
}
