package hbase

import (
	"fmt"
	"testing"
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

func TestScanLimitRespectedAtRegionEdge(t *testing.T) {
	k := sim.NewKernel(1)
	_, cl := testDB(k, 4, 3)
	k.Spawn("client", func(p *sim.Proc) {
		for i := 1248; i < 1252; i++ {
			cl.Insert(p, key(i), kv.Record{"a": kv.SizedValue(1)})
		}
		rows, err := cl.Scan(p, key(1248), 2, nil)
		if err != nil || len(rows) != 2 {
			t.Fatalf("rows=%d err=%v", len(rows), err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScanPastLastRegionTerminates(t *testing.T) {
	k := sim.NewKernel(1)
	_, cl := testDB(k, 4, 3)
	k.Spawn("client", func(p *sim.Proc) {
		cl.Insert(p, key(9998), kv.Record{"a": kv.SizedValue(1)})
		rows, err := cl.Scan(p, key(9990), 50, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0].Key != key(9998) {
			t.Fatalf("rows = %+v", rows)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScanProjectsFields(t *testing.T) {
	k := sim.NewKernel(1)
	_, cl := testDB(k, 4, 3)
	k.Spawn("client", func(p *sim.Proc) {
		cl.Insert(p, key(1), kv.Record{"a": kv.SizedValue(1), "b": kv.SizedValue(2)})
		rows, err := cl.Scan(p, key(1), 1, []string{"b"})
		if err != nil || len(rows) != 1 {
			t.Fatalf("rows=%v err=%v", rows, err)
		}
		if len(rows[0].Record) != 1 || rows[0].Record["b"].Bytes() != 2 {
			t.Fatalf("projection = %v", rows[0].Record)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadProjectsFields(t *testing.T) {
	k := sim.NewKernel(1)
	_, cl := testDB(k, 4, 3)
	k.Spawn("client", func(p *sim.Proc) {
		cl.Insert(p, key(1), kv.Record{"a": kv.SizedValue(1), "b": kv.SizedValue(2)})
		rec, err := cl.Read(p, key(1), []string{"a"})
		if err != nil || len(rec) != 1 || rec["a"].Bytes() != 1 {
			t.Fatalf("rec=%v err=%v", rec, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHigherRFWritesMoreHDFSBytes(t *testing.T) {
	flushBytes := func(rf int) int64 {
		k := sim.NewKernel(2)
		db, cl := testDB(k, 6, rf)
		k.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				cl.Insert(p, key(i), kv.Record{"f": kv.SizedValue(500)})
			}
			db.FlushAll()
			p.Sleep(10 * time.Second)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, s := range db.Servers() {
			total += s.Node.Disk.BytesWri
		}
		return total
	}
	b1, b3 := flushBytes(1), flushBytes(3)
	// Flush traffic should scale roughly with RF (plus the same WAL).
	if b3 < b1*3/2 {
		t.Fatalf("rf3 wrote %d bytes vs rf1 %d; replication not amplifying flushes", b3, b1)
	}
}

func TestWaitQuiesceReturns(t *testing.T) {
	k := sim.NewKernel(3)
	db, cl := testDB(k, 4, 3)
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			cl.Insert(p, key(i), kv.Record{"f": kv.SizedValue(200)})
		}
		db.FlushAll()
		db.WaitQuiesce(p, 30*time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEnginesExposed(t *testing.T) {
	k := sim.NewKernel(4)
	db, _ := testDB(k, 4, 3)
	if len(db.Engines()) != len(db.Regions()) {
		t.Fatal("engines/regions mismatch")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		k := sim.NewKernel(77)
		_, cl := testDB(k, 4, 3)
		var log string
		k.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < 40; i++ {
				cl.Insert(p, key(i*7), kv.Record{"f": kv.SizedValue(i + 1)})
				log += fmt.Sprintf("%v;", p.Now())
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	if a, b := run(), run(); a != b {
		t.Fatal("hbase runs diverge with same seed")
	}
}

func TestMasterFailureBlocksNewLookupsOnly(t *testing.T) {
	k := sim.NewKernel(5)
	// Master on its own node (not the client machine) so failing it does
	// not take the client down with it.
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 6
	c := cluster.New(k, ccfg)
	var splits []kv.Key
	for i := 1; i < 8; i++ {
		splits = append(splits, key(i*1250))
	}
	db := New(k, DefaultConfig(), c.Nodes[:4], c.Nodes[4], splits)
	cl := db.NewClient(c.Nodes[5])
	k.Spawn("client", func(p *sim.Proc) {
		// Warm META for key(1)'s region.
		cl.Insert(p, key(1), kv.Record{"f": kv.SizedValue(1)})
		db.master.Fail()
		// Cached region: still reachable (master off the data path)…
		if _, err := cl.Read(p, key(1), nil); err != nil {
			t.Errorf("cached-region read failed: %v", err)
		}
		// …but a region never seen needs META and fails.
		if _, err := cl.Read(p, key(9000), nil); err != kv.ErrUnavailable {
			t.Errorf("uncached-region read err = %v, want unavailable", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
