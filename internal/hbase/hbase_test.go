package hbase

import (
	"fmt"
	"testing"
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

// testDB builds a small deployment: servers on nodes 0..n-2, master and
// client on the last node, 8 regions split over the user keyspace.
func testDB(k *sim.Kernel, servers, rf int) (*DB, *Client) {
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = servers + 1
	c := cluster.New(k, ccfg)
	cfg := DefaultConfig()
	cfg.Replication = rf
	var splits []kv.Key
	for i := 1; i < 8; i++ {
		splits = append(splits, kv.Key(fmt.Sprintf("user%08d", i*1250)))
	}
	db := New(k, cfg, c.Nodes[:servers], c.Nodes[servers], splits)
	return db, db.NewClient(c.Nodes[servers])
}

func key(i int) kv.Key { return kv.Key(fmt.Sprintf("user%08d", i)) }

func TestRegionRouting(t *testing.T) {
	k := sim.NewKernel(1)
	db, _ := testDB(k, 4, 3)
	if len(db.Regions()) != 8 {
		t.Fatalf("regions = %d", len(db.Regions()))
	}
	for _, i := range []int{0, 1249, 1250, 9999} {
		r := db.regionFor(key(i))
		if key(i) < r.StartKey || (r.EndKey != "" && key(i) >= r.EndKey) {
			t.Fatalf("key %v routed to region [%v,%v)", key(i), r.StartKey, r.EndKey)
		}
	}
	// Regions spread across servers.
	seen := map[*RegionServer]bool{}
	for _, r := range db.Regions() {
		seen[r.Server] = true
	}
	if len(seen) != 4 {
		t.Fatalf("servers hosting regions = %d", len(seen))
	}
}

func TestInsertReadRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	_, cl := testDB(k, 4, 3)
	k.Spawn("client", func(p *sim.Proc) {
		rec := kv.Record{"field0": kv.SizedValue(100)}
		if err := cl.Insert(p, key(42), rec); err != nil {
			t.Error(err)
		}
		got, err := cl.Read(p, key(42), nil)
		if err != nil {
			t.Error(err)
		}
		if got["field0"].Bytes() != 100 {
			t.Errorf("got %v", got)
		}
		if _, err := cl.Read(p, key(777), nil); err != kv.ErrNotFound {
			t.Errorf("missing key err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateMergesFields(t *testing.T) {
	k := sim.NewKernel(1)
	_, cl := testDB(k, 4, 3)
	k.Spawn("client", func(p *sim.Proc) {
		cl.Insert(p, key(1), kv.Record{"a": kv.SizedValue(1), "b": kv.SizedValue(2)})
		cl.Update(p, key(1), kv.Record{"a": kv.SizedValue(9)})
		got, err := cl.Read(p, key(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got["a"].Bytes() != 9 || got["b"].Bytes() != 2 {
			t.Errorf("got %v", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteHidesKey(t *testing.T) {
	k := sim.NewKernel(1)
	_, cl := testDB(k, 4, 3)
	k.Spawn("client", func(p *sim.Proc) {
		cl.Insert(p, key(5), kv.Record{"a": kv.SizedValue(1)})
		if err := cl.Delete(p, key(5)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Read(p, key(5), nil); err != kv.ErrNotFound {
			t.Errorf("err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScanCrossesRegionBoundaries(t *testing.T) {
	k := sim.NewKernel(1)
	_, cl := testDB(k, 4, 3)
	k.Spawn("client", func(p *sim.Proc) {
		// Regions split at 1250; insert around the boundary.
		for i := 1245; i < 1255; i++ {
			cl.Insert(p, key(i), kv.Record{"a": kv.SizedValue(10)})
		}
		rows, err := cl.Scan(p, key(1245), 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 10 {
			t.Fatalf("scan rows = %d", len(rows))
		}
		for i, r := range rows {
			if r.Key != key(1245+i) {
				t.Fatalf("row %d key = %v", i, r.Key)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStrongConsistencyReadAfterWrite(t *testing.T) {
	k := sim.NewKernel(3)
	_, cl := testDB(k, 4, 3)
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			rec := kv.Record{"v": kv.SizedValue(i + 1)}
			if err := cl.Insert(p, key(i), rec); err != nil {
				t.Fatal(err)
			}
			got, err := cl.Read(p, key(i), nil)
			if err != nil || got["v"].Bytes() != i+1 {
				t.Fatalf("read-after-write violated at %d: %v %v", i, got, err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// measureWrite returns the mean write latency at the given replication
// factor and write path.
func measureWrite(t *testing.T, rf int, memRepl bool) time.Duration {
	t.Helper()
	k := sim.NewKernel(11)
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 9
	c := cluster.New(k, ccfg)
	cfg := DefaultConfig()
	cfg.Replication = rf
	cfg.MemReplication = memRepl
	var splits []kv.Key
	for i := 1; i < 8; i++ {
		splits = append(splits, key(i*1250))
	}
	db := New(k, cfg, c.Nodes[:8], c.Nodes[8], splits)
	cl := db.NewClient(c.Nodes[8])
	var total time.Duration
	const ops = 200
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			start := p.Now()
			if err := cl.Insert(p, key(i*37%10000), kv.Record{"f": kv.SizedValue(1000)}); err != nil {
				t.Fatal(err)
			}
			total += p.Now().Sub(start)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return total / ops
}

func TestWriteLatencyFlatInRFWithMemReplication(t *testing.T) {
	l1 := measureWrite(t, 1, true)
	l6 := measureWrite(t, 6, true)
	// Paper finding F2: no significant change. Allow up to 2×.
	if l6 > 2*l1 {
		t.Fatalf("write latency rf6=%v vs rf1=%v: should be nearly flat", l6, l1)
	}
}

func TestSyncReplicationSlowerThanMemReplication(t *testing.T) {
	mem := measureWrite(t, 3, true)
	sync := measureWrite(t, 3, false)
	if sync <= mem {
		t.Fatalf("sync=%v should exceed mem=%v", sync, mem)
	}
}

func TestReadLatencyFlatInRF(t *testing.T) {
	measure := func(rf int) time.Duration {
		k := sim.NewKernel(5)
		db, cl := testDB(k, 6, rf)
		_ = db
		var total time.Duration
		const ops = 100
		k.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < ops; i++ {
				cl.Insert(p, key(i), kv.Record{"f": kv.SizedValue(1000)})
			}
			for i := 0; i < ops; i++ {
				start := p.Now()
				if _, err := cl.Read(p, key(i), nil); err != nil {
					t.Fatal(err)
				}
				total += p.Now().Sub(start)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return total / ops
	}
	l1, l6 := measure(1), measure(6)
	ratio := float64(l6) / float64(l1)
	if ratio > 1.5 || ratio < 0.5 {
		t.Fatalf("read latency rf6=%v vs rf1=%v: should be flat", l6, l1)
	}
}

func TestMetaLookupCachedAfterFirstOp(t *testing.T) {
	k := sim.NewKernel(1)
	db, cl := testDB(k, 4, 3)
	k.Spawn("client", func(p *sim.Proc) {
		cl.Insert(p, key(1), kv.Record{"a": kv.SizedValue(1)})
		before := db.master.CPU.Served()
		cl.Insert(p, key(2), kv.Record{"a": kv.SizedValue(1)}) // same region
		if db.master.CPU.Served() != before {
			t.Error("second op paid a META lookup")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestServerDownUnavailable(t *testing.T) {
	k := sim.NewKernel(1)
	db, cl := testDB(k, 4, 3)
	k.Spawn("client", func(p *sim.Proc) {
		r := db.regionFor(key(1))
		r.Server.Node.Fail()
		if err := cl.Insert(p, key(1), kv.Record{"a": kv.SizedValue(1)}); err != kv.ErrUnavailable {
			t.Errorf("err = %v", err)
		}
		if _, err := cl.Read(p, key(1), nil); err != kv.ErrUnavailable {
			t.Errorf("err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushAllPersistsToHDFS(t *testing.T) {
	k := sim.NewKernel(1)
	db, cl := testDB(k, 4, 3)
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			cl.Insert(p, key(i), kv.Record{"f": kv.SizedValue(500)})
		}
		db.FlushAll()
		p.Sleep(5 * time.Second)
		if db.FS().BlocksWritten == 0 {
			t.Error("no HDFS blocks written by flush")
		}
		// Data still readable from store files.
		if _, err := cl.Read(p, key(10), nil); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClientsNoInterference(t *testing.T) {
	k := sim.NewKernel(9)
	db, _ := testDB(k, 4, 3)
	clientNode := db.master
	errs := 0
	for c := 0; c < 8; c++ {
		c := c
		cl := db.NewClient(clientNode)
		k.Spawn(fmt.Sprintf("client%d", c), func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				kk := key(c*1000 + i)
				if err := cl.Insert(p, kk, kv.Record{"f": kv.SizedValue(100)}); err != nil {
					errs++
				}
				if _, err := cl.Read(p, kk, nil); err != nil {
					errs++
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if errs != 0 {
		t.Fatalf("errors = %d", errs)
	}
}
