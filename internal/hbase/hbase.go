// Package hbase implements an HBase-like cloud serving database on the
// simulated cluster: an HMaster assigning key-range regions to region
// servers, strong consistency (every read and write is served by the one
// region server owning the key), a write path of WAL append plus in-memory
// replication to peer memstores, and store files persisted on the
// simulated HDFS where the replication-factor knob lives.
//
// The design follows §2 of the paper: "HBase doesn't write updates to disk
// instantly, instead, it saves updates in a write-ahead-log (WAL) stored in
// hard drive and then does in-memory data replication across different
// nodes [...] In-memory files are flushed into HDFS when the size of them
// reaches the upper limit. HBase uses HDFS to configure the replication
// factor and save replicas."
package hbase

import (
	"fmt"
	"sort"
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/consistency"
	"cloudbench/internal/hdfs"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/storage"
	"cloudbench/internal/trace"
)

// Config parameterizes the database.
type Config struct {
	// Replication is the HDFS replication factor, the paper's knob.
	Replication int
	// RegionsPerServer pre-splits the table so load spreads evenly.
	RegionsPerServer int
	// Engine configures each region's memstore and store files.
	Engine storage.Config
	// HDFS configures the underlying filesystem (Replication overrides
	// its factor).
	HDFS hdfs.Config
	// MemReplication selects the paper-described write path: WAL append
	// plus in-memory replication to Replication-1 peers. When false,
	// writes replicate synchronously to peer disks instead (ablation A2),
	// which the paper's expectations section assumed before measuring.
	MemReplication bool
	// RequestOverhead is the fixed per-request message overhead in bytes.
	RequestOverhead int
}

// DefaultConfig returns an HBase configuration matching the paper's
// recommended setup at replication factor 3.
func DefaultConfig() Config {
	return Config{
		Replication:      3,
		RegionsPerServer: 4,
		Engine:           storage.DefaultConfig(),
		HDFS:             hdfs.DefaultConfig(),
		MemReplication:   true,
		RequestOverhead:  64,
	}
}

// DB is one HBase deployment: a master, region servers on every server
// node, and an HDFS instance over the same nodes.
type DB struct {
	k       *sim.Kernel
	cfg     Config
	cluster *cluster.Cluster
	fs      *hdfs.FS

	master  *cluster.Node
	servers []*RegionServer
	regions []*Region // sorted by StartKey

	nextVersion kv.Version
	oracle      *consistency.Oracle
	tracer      *trace.Tracer

	// Metrics.
	Reads, Writes, ScansDone int64
	ReplicationSends         int64
}

// SetOracle attaches a consistency oracle. HBase is the strong-consistency
// control of the audit experiment: every key has exactly one serving
// region, so the oracle should report zero stale reads and zero monotonic
// violations. Hook call sites are nil-gated, so the default unobserved
// runs pay nothing.
func (db *DB) SetOracle(o *consistency.Oracle) { db.oracle = o }

// Oracle returns the attached consistency oracle, if any.
func (db *DB) Oracle() *consistency.Oracle { return db.oracle }

// SetTracer attaches a request tracer recording per-phase spans along the
// read, write, and flush paths, including WAL syncs and HDFS pipeline
// hops. Pass nil (the default) to run untraced; call sites are nil-gated.
func (db *DB) SetTracer(t *trace.Tracer) {
	db.tracer = t
	db.fs.SetTracer(t)
	for _, r := range db.regions {
		node := r.Server.Node
		if t == nil {
			r.engine.OnWALSync = nil
			continue
		}
		r.engine.OnWALSync = func(p *sim.Proc, start sim.Time) {
			t.Phase(p, trace.PhaseWAL, node.ID, start)
		}
	}
}

// Tracer returns the attached tracer, if any.
func (db *DB) Tracer() *trace.Tracer { return db.tracer }

// execServer charges region-server CPU for one request, splitting
// queueing (stop-the-world + CPU-slot wait) from service when traced.
func (db *DB) execServer(p *sim.Proc, n *cluster.Node, cost time.Duration) {
	if db.tracer == nil {
		n.Exec(p, cost)
		return
	}
	t0 := p.Now()
	wait := n.ExecTimed(p, cost)
	if wait > 0 {
		db.tracer.Interval(p, trace.PhaseCoordQueue, n.ID, t0, t0.Add(wait))
	}
	db.tracer.Phase(p, trace.PhaseCoord, n.ID, t0.Add(wait))
}

// RegionServer hosts a set of regions on one node.
type RegionServer struct {
	Node    *cluster.Node
	Regions []*Region
	db      *DB
	// memPeers are the nodes receiving in-memory replicas of this
	// server's writes.
	memPeers []*cluster.Node
}

// Region is one key range [StartKey, EndKey) with its own memstore and
// store files; EndKey "" means unbounded.
type Region struct {
	StartKey, EndKey kv.Key
	Server           *RegionServer
	engine           *storage.Engine
}

// hdfsIO adapts a region server's HDFS view to storage.TableIO: tables are
// HDFS files whose first replica is local to the server.
type hdfsIO struct {
	fs     *hdfs.FS
	node   *cluster.Node
	prefix string
}

func (h hdfsIO) name(id int64) string { return fmt.Sprintf("%s/sst-%d", h.prefix, id) }

func (h hdfsIO) WriteTable(p *sim.Proc, id int64, bytes int64) {
	h.fs.Create(p, h.name(id), bytes, h.node)
}

func (h hdfsIO) ReadTable(p *sim.Proc, id int64, bytes int64) {
	if f, err := h.fs.Open(h.name(id)); err == nil {
		_ = h.fs.ReadSequential(p, f, h.node)
	}
}

func (h hdfsIO) ReadBlock(p *sim.Proc, id int64, bytes int) {
	if f, err := h.fs.Open(h.name(id)); err == nil {
		_ = h.fs.ReadAt(p, f, bytes, h.node)
	}
}

func (h hdfsIO) DeleteTable(id int64) { h.fs.Delete(h.name(id)) }

// New builds a database over the given server nodes, with the master on
// masterNode (the paper co-locates it with the YCSB client machine).
// splits are the region split points; len(splits)+1 regions are created
// and assigned round-robin.
func New(k *sim.Kernel, cfg Config, serverNodes []*cluster.Node, masterNode *cluster.Node, splits []kv.Key) *DB {
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.Replication > len(serverNodes) {
		cfg.Replication = len(serverNodes)
	}
	fcfg := cfg.HDFS
	fcfg.Replication = cfg.Replication
	db := &DB{
		k:       k,
		cfg:     cfg,
		fs:      hdfs.New(k, fcfg, serverNodes),
		master:  masterNode,
		cluster: masterNode.Cluster(),
	}
	for _, n := range serverNodes {
		rs := &RegionServer{Node: n, db: db}
		db.servers = append(db.servers, rs)
	}
	// In-memory replication peers: the next Replication-1 servers in
	// ring order, mirroring the fixed pipeline HDFS would use.
	for i, rs := range db.servers {
		for j := 1; j < cfg.Replication; j++ {
			rs.memPeers = append(rs.memPeers, db.servers[(i+j)%len(db.servers)].Node)
		}
	}
	// Regions: splits define boundaries; assign round-robin.
	sorted := append([]kv.Key(nil), splits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	bounds := append([]kv.Key{""}, sorted...)
	for i, start := range bounds {
		end := kv.Key("")
		if i+1 < len(bounds) {
			end = bounds[i+1]
		}
		rs := db.servers[i%len(db.servers)]
		region := &Region{StartKey: start, EndKey: end, Server: rs}
		region.engine = storage.NewEngine(k, cfg.Engine,
			hdfsIO{fs: db.fs, node: rs.Node, prefix: fmt.Sprintf("/hbase/r%d", i)},
			storage.DiskLog{Disk: rs.Node.Disk},
			k.Seed()^int64(i+1))
		rs.Regions = append(rs.Regions, region)
		db.regions = append(db.regions, region)
	}
	return db
}

// FS exposes the underlying HDFS for inspection.
func (db *DB) FS() *hdfs.FS { return db.fs }

// Servers returns the region servers.
func (db *DB) Servers() []*RegionServer { return db.servers }

// Regions returns the regions in key order.
func (db *DB) Regions() []*Region { return db.regions }

// regionFor returns the region owning key.
func (db *DB) regionFor(key kv.Key) *Region {
	// regions are sorted by StartKey; find the last region whose start
	// is <= key.
	i := sort.Search(len(db.regions), func(i int) bool { return db.regions[i].StartKey > key })
	return db.regions[i-1]
}

// version issues the next write version.
func (db *DB) version() kv.Version {
	db.nextVersion++
	return kv.Version(db.k.Now()) + db.nextVersion
}

// write is the region-server write path executed by p at the server.
func (rs *RegionServer) write(p *sim.Proc, r *Region, key kv.Key, rec kv.Record, del bool) {
	db := rs.db
	cpu := db.cluster.Config.CPUOpCost
	db.execServer(p, rs.Node, cpu)
	ver := db.version()
	if db.oracle != nil {
		// One read-serving replica per key: the owning region. Peer
		// memstores (or peer WALs on the ablation path) are durability
		// copies that never serve reads, so they are not visibility
		// events.
		db.oracle.WriteBegin(key, ver, 1, p.Now())
	}

	if db.cfg.MemReplication {
		// Paper path: WAL locally, replicate the edit to peer memstores
		// in parallel, ack when all peers confirm (strong consistency).
		q := sim.NewQuorum(db.k, len(rs.memPeers), len(rs.memPeers))
		size := rec.Bytes() + len(key) + db.cfg.RequestOverhead
		for _, peer := range rs.memPeers {
			peer := peer
			db.ReplicationSends++
			db.k.Go("hbase-memrepl", func(q2 *sim.Proc) {
				var t0 sim.Time
				if db.tracer != nil {
					t0 = q2.Now()
				}
				if !rs.Node.SendTo(q2, peer, size) {
					q.Fail()
					return
				}
				// The pipeline receiver is the co-located DataNode — a
				// small-heap daemon whose GC pauses are negligible — so
				// the in-memory apply bypasses the region server's
				// stop-the-world windows.
				peer.ExecDaemon(q2, db.cluster.Config.MemOpCost)
				if !peer.SendTo(q2, rs.Node, db.cfg.RequestOverhead) {
					q.Fail()
					return
				}
				if db.tracer != nil {
					db.tracer.Phase(q2, trace.PhaseFanout, peer.ID, t0)
				}
				q.Succeed()
			})
		}
		if del {
			r.engine.ApplyDelete(p, key, ver)
		} else {
			r.engine.Apply(p, key, rec, ver)
		}
		if db.oracle != nil {
			db.oracle.ReplicaApply(key, ver, rs.Node.ID, consistency.ApplyWrite, p.Now())
		}
		q.Wait(p)
		if db.oracle != nil {
			db.oracle.WriteAck(key, ver, p.Now())
		}
		return
	}

	// Ablation path: synchronous replication to peer disks (what the
	// paper's expectations predicted): each peer WALs the edit before
	// acking.
	q := sim.NewQuorum(db.k, len(rs.memPeers), len(rs.memPeers))
	size := rec.Bytes() + len(key) + db.cfg.RequestOverhead
	for _, peer := range rs.memPeers {
		peer := peer
		db.ReplicationSends++
		db.k.Go("hbase-syncrepl", func(q2 *sim.Proc) {
			var t0 sim.Time
			if db.tracer != nil {
				t0 = q2.Now()
			}
			if !rs.Node.SendTo(q2, peer, size) {
				q.Fail()
				return
			}
			peer.Exec(q2, cpu)
			peer.Disk.Append(q2, size)
			if !peer.SendTo(q2, rs.Node, db.cfg.RequestOverhead) {
				q.Fail()
				return
			}
			if db.tracer != nil {
				db.tracer.Phase(q2, trace.PhaseFanout, peer.ID, t0)
			}
			q.Succeed()
		})
	}
	if del {
		r.engine.ApplyDelete(p, key, ver)
	} else {
		r.engine.Apply(p, key, rec, ver)
	}
	if db.oracle != nil {
		db.oracle.ReplicaApply(key, ver, rs.Node.ID, consistency.ApplyWrite, p.Now())
	}
	q.Wait(p)
	if db.oracle != nil {
		db.oracle.WriteAck(key, ver, p.Now())
	}
}

// Client is an HBase client bound to a client machine. It caches region
// locations after a META lookup at the master, like the real client.
type Client struct {
	db   *DB
	node *cluster.Node
	meta map[*Region]bool // regions already located
	oid  int              // oracle client identity
}

// NewClient returns a client issuing requests from node.
func (db *DB) NewClient(node *cluster.Node) *Client {
	oid := -1
	if db.oracle != nil {
		oid = db.oracle.RegisterClient()
	}
	return &Client{db: db, node: node, meta: make(map[*Region]bool), oid: oid}
}

var _ kv.Client = (*Client)(nil)

// locate resolves the region for key, paying one META round trip to the
// master the first time a region is seen.
func (c *Client) locate(p *sim.Proc, key kv.Key) (*Region, error) {
	r := c.db.regionFor(key)
	if !c.meta[r] {
		if !c.node.RoundTrip(p, c.db.master, c.db.cfg.RequestOverhead, c.db.cfg.RequestOverhead, func() {
			c.db.master.Exec(p, c.db.cluster.Config.MemOpCost)
		}) {
			return nil, kv.ErrUnavailable
		}
		c.meta[r] = true
	}
	if r.Server.Node.Down() {
		return nil, kv.ErrUnavailable
	}
	return r, nil
}

// Read implements kv.Client: strongly consistent read from the owning
// region server.
func (c *Client) Read(p *sim.Proc, key kv.Key, fields []string) (kv.Record, error) {
	r, err := c.locate(p, key)
	if err != nil {
		return nil, err
	}
	c.db.Reads++
	start := p.Now()
	if !c.node.SendTo(p, r.Server.Node, len(key)+c.db.cfg.RequestOverhead) {
		return nil, kv.ErrUnavailable
	}
	c.db.execServer(p, r.Server.Node, c.db.cluster.Config.CPUOpCost)
	var t0 sim.Time
	if c.db.tracer != nil {
		t0 = p.Now()
	}
	var rec kv.Record
	row := r.engine.Get(p, key)
	if c.db.tracer != nil {
		c.db.tracer.Phase(p, trace.PhaseStorage, r.Server.Node.ID, t0)
	}
	if row != nil && row.Live() {
		rec = row.Record().Project(fields)
	}
	if c.db.oracle != nil {
		var ver kv.Version
		if row != nil {
			ver = row.Version()
		}
		c.db.oracle.ReadObserved(c.oid, key, ver, start)
	}
	if !r.Server.Node.SendTo(p, c.node, rec.Bytes()+c.db.cfg.RequestOverhead) {
		return nil, kv.ErrUnavailable
	}
	if rec == nil {
		return nil, kv.ErrNotFound
	}
	return rec, nil
}

// Insert implements kv.Client.
func (c *Client) Insert(p *sim.Proc, key kv.Key, rec kv.Record) error {
	return c.put(p, key, rec, false)
}

// Update implements kv.Client.
func (c *Client) Update(p *sim.Proc, key kv.Key, rec kv.Record) error {
	return c.put(p, key, rec, false)
}

// Delete implements kv.Client.
func (c *Client) Delete(p *sim.Proc, key kv.Key) error {
	return c.put(p, key, nil, true)
}

func (c *Client) put(p *sim.Proc, key kv.Key, rec kv.Record, del bool) error {
	r, err := c.locate(p, key)
	if err != nil {
		return err
	}
	c.db.Writes++
	size := rec.Bytes() + len(key) + c.db.cfg.RequestOverhead
	ok := c.node.RoundTrip(p, r.Server.Node, size, c.db.cfg.RequestOverhead, func() {
		r.Server.write(p, r, key, rec, del)
	})
	if !ok {
		return kv.ErrUnavailable
	}
	return nil
}

// Scan implements kv.Client: a range scan that follows region boundaries,
// contacting each owning region server in turn.
func (c *Client) Scan(p *sim.Proc, start kv.Key, limit int, fields []string) ([]kv.KV, error) {
	c.db.ScansDone++
	var out []kv.KV
	key := start
	for len(out) < limit {
		r, err := c.locate(p, key)
		if err != nil {
			return out, err
		}
		if !c.node.SendTo(p, r.Server.Node, len(key)+c.db.cfg.RequestOverhead) {
			return out, kv.ErrUnavailable
		}
		c.db.execServer(p, r.Server.Node, c.db.cluster.Config.CPUOpCost)
		var t0 sim.Time
		if c.db.tracer != nil {
			t0 = p.Now()
		}
		rows := r.engine.Scan(p, key, limit-len(out))
		if n := len(rows); n > 0 && c.db.cluster.Config.ScanRowCost > 0 {
			r.Server.Node.Exec(p, time.Duration(n)*c.db.cluster.Config.ScanRowCost)
		}
		if c.db.tracer != nil {
			c.db.tracer.Phase(p, trace.PhaseStorage, r.Server.Node.ID, t0)
		}
		resp := c.db.cfg.RequestOverhead
		for _, row := range rows {
			resp += row.Row.Bytes()
		}
		if !r.Server.Node.SendTo(p, c.node, resp) {
			return out, kv.ErrUnavailable
		}
		for _, row := range rows {
			if r.EndKey != "" && row.Key >= r.EndKey {
				break
			}
			out = append(out, kv.KV{Key: row.Key, Record: row.Row.Record().Project(fields)})
			if len(out) == limit {
				return out, nil
			}
		}
		if r.EndKey == "" {
			break // last region exhausted
		}
		key = r.EndKey
	}
	return out, nil
}

// FlushAll forces every region's memstore to flush; used between the load
// and run phases of a benchmark, like a YCSB-driven major flush.
func (db *DB) FlushAll() {
	for _, r := range db.regions {
		r.engine.ForceFlush()
	}
}

// Engines returns the per-region engines, for metric collection.
func (db *DB) Engines() []*storage.Engine {
	es := make([]*storage.Engine, len(db.regions))
	for i, r := range db.regions {
		es[i] = r.engine
	}
	return es
}

// WaitQuiesce sleeps p until background flushes and compactions complete
// (best effort: bounded polling).
func (db *DB) WaitQuiesce(p *sim.Proc, max time.Duration) {
	deadline := p.Now().Add(max)
	for p.Now() < deadline {
		busy := false
		for _, r := range db.regions {
			if r.engine.Tables() > 2*db.cfg.Engine.CompactMinTables {
				busy = true
			}
		}
		if !busy {
			return
		}
		p.Sleep(100 * time.Millisecond)
	}
}
