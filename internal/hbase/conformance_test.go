package hbase

import (
	"testing"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

// TestClientConformance runs the shared kv.Client conformance suite on an
// HBase deployment — the strong-consistency control, where the contract
// holds trivially at any replication factor.
func TestClientConformance(t *testing.T) {
	k := sim.NewKernel(7)
	_, client := testDB(k, 4, 3)
	kv.RunConformance(t, kv.Harness{
		NewClient: func() kv.Client { return client },
		Drive: func(fn func(p *sim.Proc)) error {
			k.Spawn("conformance", fn)
			return k.Run()
		},
	})
}
