// Package stats provides the measurement side of the benchmark: log-bucketed
// latency histograms, percentile estimation, throughput accounting, and the
// table/series renderers used to print paper-style results.
package stats

import (
	"fmt"
	"math/bits"
	"time"
)

const (
	subBucketBits  = 5 // 32 linear sub-buckets per power-of-two octave
	subBuckets     = 1 << subBucketBits
	octaves        = 40 // covers up to ~2^39 µs-scale units; plenty for ns latencies
	histogramSlots = octaves * subBuckets
)

// Histogram is a log-linear latency histogram: values are bucketed into
// power-of-two octaves with 32 linear sub-buckets each, giving a worst-case
// quantization error of about 3%. The zero value is ready to use.
type Histogram struct {
	counts [histogramSlots]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// slotFor maps a non-negative value to its bucket index.
func slotFor(v int64) int {
	if v < 0 {
		v = 0
	}
	// Values below subBuckets land in the first octave linearly.
	if v < subBuckets {
		return int(v)
	}
	octave := bits.Len64(uint64(v)) - subBucketBits // ≥ 1
	sub := v >> (octave - 1) & (subBuckets - 1)
	slot := octave*subBuckets + int(sub)
	if slot >= histogramSlots {
		slot = histogramSlots - 1
	}
	return slot
}

// slotBounds returns the inclusive lower bound and width of a bucket.
func slotBounds(slot int) (lo, width int64) {
	if slot < subBuckets {
		return int64(slot), 1
	}
	octave := slot / subBuckets
	sub := int64(slot % subBuckets)
	return (int64(subBuckets) + sub) << (octave - 1), int64(1) << (octave - 1)
}

// Record adds one observation of d.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[slotFor(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the mean of recorded observations.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Min returns the smallest recorded observation.
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }

// Max returns the largest recorded observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Sum returns the sum of all recorded observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum) }

// Percentile returns the value at quantile p in [0,100]. The fractional
// rank is located by cumulative count and interpolated linearly within
// its bucket, so estimates move smoothly with p instead of snapping to
// bucket midpoints; results are clamped to the observed [min, max]. It
// returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	target := p / 100 * float64(h.count)
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(seen+c) >= target {
			lo, width := slotBounds(i)
			f := (target - float64(seen)) / float64(c)
			v := lo + int64(f*float64(width))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
		seen += c
	}
	return time.Duration(h.max)
}

// Merge adds all observations from o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Summary is a compact snapshot of a histogram.
type Summary struct {
	Count             int64
	Mean, Min, Max    time.Duration
	P50, P95, P99     time.Duration
	P999              time.Duration
	TotalObservedTime time.Duration
}

// Summarize computes a Summary from the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count:             h.count,
		Mean:              h.Mean(),
		Min:               h.Min(),
		Max:               h.Max(),
		P50:               h.Percentile(50),
		P95:               h.Percentile(95),
		P99:               h.Percentile(99),
		P999:              h.Percentile(99.9),
		TotalObservedTime: h.Sum(),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
}
