package stats

import (
	"math/rand"
	"testing"
	"time"
)

// randomHistogram fills a histogram with n draws from a seeded source so
// merge tests exercise many distinct buckets.
func randomHistogram(seed int64, n int) *Histogram {
	rng := rand.New(rand.NewSource(seed))
	var h Histogram
	for i := 0; i < n; i++ {
		h.Record(time.Duration(rng.Int63n(80_000_000)))
	}
	return &h
}

// TestHistogramMergeCommutativeAssociative checks that merge is exact at
// the bucket level: merge(A,B) == merge(B,A) and ((A,B),C) == (A,(B,C)),
// compared field-for-field including every bucket count.
func TestHistogramMergeCommutativeAssociative(t *testing.T) {
	a := randomHistogram(1, 5000)
	b := randomHistogram(2, 3000)
	c := randomHistogram(3, 1)

	ab := *a
	ab.Merge(b)
	ba := *b
	ba.Merge(a)
	if ab != ba {
		t.Fatal("merge(A,B) != merge(B,A)")
	}

	abC := ab
	abC.Merge(c)
	bc := *b
	bc.Merge(c)
	aBC := *a
	aBC.Merge(&bc)
	if abC != aBC {
		t.Fatal("merge(merge(A,B),C) != merge(A,merge(B,C))")
	}
	if abC.Count() != 8001 {
		t.Fatalf("merged count = %d", abC.Count())
	}
}

// TestHistogramPercentileInterpolates pins the satellite fix: quantiles
// inside a single wide bucket must move with p rather than all snapping
// to the bucket midpoint.
func TestHistogramPercentileInterpolates(t *testing.T) {
	var h Histogram
	lo := int64(1) << 20 // bucket width here is 2^15
	for k := int64(0); k < 32; k++ {
		h.Record(time.Duration(lo + k*1024))
	}
	p10, p50, p90 := h.Percentile(10), h.Percentile(50), h.Percentile(90)
	if !(p10 < p50 && p50 < p90) {
		t.Fatalf("percentiles do not increase through the bucket: p10=%v p50=%v p90=%v", p10, p50, p90)
	}
	if p10 < h.Min() || p90 > h.Max() {
		t.Fatalf("percentiles escape [min,max]: p10=%v p90=%v min=%v max=%v", p10, p90, h.Min(), h.Max())
	}
}

func TestBreakdownRecordAndTotal(t *testing.T) {
	b := NewBreakdown("alpha", "beta")
	b.Record(0, 2*time.Millisecond)
	b.Record(0, 4*time.Millisecond)
	b.Record(1, 10*time.Millisecond)
	if b.Lanes() != 2 || b.Label(1) != "beta" {
		t.Fatalf("lanes/labels wrong: %d %q", b.Lanes(), b.Label(1))
	}
	if got := b.Lane(0).Count(); got != 2 {
		t.Fatalf("lane 0 count = %d", got)
	}
	if b.Total() != 16*time.Millisecond {
		t.Fatalf("total = %v", b.Total())
	}
}

func TestBreakdownMergeExactAndOrderFree(t *testing.T) {
	mk := func(seed int64) *Breakdown {
		rng := rand.New(rand.NewSource(seed))
		b := NewBreakdown("x", "y", "z")
		for i := 0; i < 2000; i++ {
			b.Record(rng.Intn(3), time.Duration(rng.Int63n(10_000_000)))
		}
		return b
	}
	a, b := mk(11), mk(12)
	ab, ba := mk(11), mk(12)
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := ba.Merge(a); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ab.Lanes(); i++ {
		if *ab.Lane(i) != *ba.Lane(i) {
			t.Fatalf("lane %d differs between merge orders", i)
		}
	}
	if err := ab.Merge(NewBreakdown("x", "y")); err == nil {
		t.Fatal("lane-count mismatch not rejected")
	}
	if err := ab.Merge(NewBreakdown("x", "y", "w")); err == nil {
		t.Fatal("label mismatch not rejected")
	}
}
