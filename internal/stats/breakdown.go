package stats

import (
	"fmt"
	"time"
)

// Breakdown aggregates observations into a fixed set of labeled lanes —
// one log-linear Histogram per lane. It is the accumulator behind
// per-phase latency decomposition: lanes are addressed by dense index so
// the record path is pure array arithmetic, and two Breakdowns with the
// same label set merge exactly (bucket-wise, so merge order never changes
// a result).
type Breakdown struct {
	labels []string
	lanes  []Histogram
}

// NewBreakdown returns a Breakdown with one empty lane per label.
func NewBreakdown(labels ...string) *Breakdown {
	b := &Breakdown{labels: append([]string(nil), labels...)}
	b.lanes = make([]Histogram, len(b.labels))
	return b
}

// Lanes returns the number of lanes.
func (b *Breakdown) Lanes() int { return len(b.lanes) }

// Label returns the label of lane i.
func (b *Breakdown) Label(i int) string { return b.labels[i] }

// Record adds one observation of d to lane i.
func (b *Breakdown) Record(i int, d time.Duration) { b.lanes[i].Record(d) }

// Lane returns the histogram backing lane i.
func (b *Breakdown) Lane(i int) *Histogram { return &b.lanes[i] }

// Total returns the summed duration across all lanes.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for i := range b.lanes {
		t += b.lanes[i].Sum()
	}
	return t
}

// Merge adds all observations from o into b. The label sets must match
// exactly; merging is bucket-wise and therefore both associative and
// commutative.
func (b *Breakdown) Merge(o *Breakdown) error {
	if len(o.labels) != len(b.labels) {
		return fmt.Errorf("stats: merging breakdowns with %d vs %d lanes", len(b.labels), len(o.labels))
	}
	for i, l := range b.labels {
		if o.labels[i] != l {
			return fmt.Errorf("stats: lane %d label mismatch: %q vs %q", i, l, o.labels[i])
		}
	}
	for i := range b.lanes {
		b.lanes[i].Merge(&o.lanes[i])
	}
	return nil
}
