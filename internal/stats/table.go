package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table used to print paper-style
// results (one table or figure series per experiment).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (headers first).
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, r := range t.Rows {
		cells = cells[:0]
		for _, c := range r {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a named sequence of (x, y) points, one line in a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series sharing an x-axis, mirroring one panel of a
// paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure returns an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, registers, and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Get returns the named series, or nil.
func (f *Figure) Get(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Table renders the figure as a table with one row per x value and one
// column per series. Missing points render as empty cells.
func (f *Figure) Table() *Table {
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t := NewTable(fmt.Sprintf("%s (y: %s)", f.Title, f.YLabel), headers...)
	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = trimFloat(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}
