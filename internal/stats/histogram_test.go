package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram should be all zeros")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Record(5 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Percentile(50); !within(got, 5*time.Millisecond, 0.05) {
		t.Fatalf("p50 = %v, want ~5ms", got)
	}
	if h.Min() != 5*time.Millisecond || h.Max() != 5*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramPercentilesAgainstExactRanks(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	var vals []time.Duration
	for i := 0; i < 10000; i++ {
		v := time.Duration(rng.Intn(50_000_000)) // up to 50ms
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		exact := vals[int(p/100*float64(len(vals)))-0]
		got := h.Percentile(p)
		if !within(got, exact, 0.10) {
			t.Fatalf("p%.1f = %v, exact %v", p, got, exact)
		}
	}
}

func TestHistogramMeanExact(t *testing.T) {
	var h Histogram
	h.Record(1 * time.Millisecond)
	h.Record(3 * time.Millisecond)
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
		b.Record(time.Duration(i+100) * time.Microsecond)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Max() != b.Max() {
		t.Fatalf("max = %v, want %v", a.Max(), b.Max())
	}
	if a.Min() != 0 {
		t.Fatalf("min = %v", a.Min())
	}
}

func TestHistogramQuantizationErrorBounded(t *testing.T) {
	// Property: a recorded value's bucket midpoint is within ~3.2% (one
	// sub-bucket) of the value, for all values above the linear range.
	f := func(raw int64) bool {
		v := raw % (1 << 40)
		if v < 0 {
			v = -v
		}
		var h Histogram
		h.Record(time.Duration(v))
		got := h.Percentile(50)
		if v < 64 {
			return int64(got) == v // exact in the linear range
		}
		return within(got, time.Duration(v), 0.04)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("min/max = %v/%v, want 0/0", h.Min(), h.Max())
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	s := h.Summarize()
	if s.Count != 1 || !strings.Contains(s.String(), "n=1") {
		t.Fatalf("summary = %+v / %s", s, s.String())
	}
}

func within(got, want time.Duration, tol float64) bool {
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	base := float64(want)
	if base == 0 {
		return got == 0
	}
	return d/base <= tol
}

func TestTableRenderAlignsColumns(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("a", 1)
	tb.AddRow("longer", 2.5)
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "longer") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSVEscapes(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`x,y`, `he said "hi"`)
	var b strings.Builder
	tb.CSV(&b)
	if !strings.Contains(b.String(), `"x,y"`) || !strings.Contains(b.String(), `"he said ""hi"""`) {
		t.Fatalf("csv:\n%s", b.String())
	}
}

func TestFigureTableUnionOfXs(t *testing.T) {
	f := NewFigure("fig", "rf", "latency")
	a := f.AddSeries("hbase")
	b := f.AddSeries("cassandra")
	a.Add(1, 10)
	a.Add(2, 11)
	b.Add(2, 20)
	b.Add(3, 21)
	tbl := f.Table()
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	if f.Get("hbase") != a || f.Get("nope") != nil {
		t.Fatal("Get misbehaves")
	}
}
