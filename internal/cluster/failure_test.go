package cluster

import (
	"testing"
	"time"

	"cloudbench/internal/sim"
)

// TestFailRecoverSameInstantKeepsCallOrder: the failover experiments
// schedule Fail and Recover with Kernel.After; when both land on the same
// tick the kernel's FIFO order for simultaneous events must make the last
// registered call win, deterministically.
func TestFailRecoverSameInstantKeepsCallOrder(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(2))
	n := c.Nodes[1]
	k.After(time.Millisecond, n.Fail)
	k.After(time.Millisecond, n.Recover)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Down() {
		t.Fatal("fail-then-recover at the same instant left the node down")
	}

	k2 := sim.NewKernel(1)
	c2 := New(k2, testConfig(2))
	n2 := c2.Nodes[1]
	k2.After(time.Millisecond, n2.Recover)
	k2.After(time.Millisecond, n2.Fail)
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if !n2.Down() {
		t.Fatal("recover-then-fail at the same instant left the node up")
	}
}

// TestSendToDroppedWhenReceiverFailsMidFlight: liveness is checked at
// arrival time, so a message in flight toward a node that dies before it
// lands is lost (and not counted as received).
func TestSendToDroppedWhenReceiverFailsMidFlight(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(2))
	var ok bool
	k.Spawn("sender", func(p *sim.Proc) {
		ok = c.Nodes[0].SendTo(p, c.Nodes[1], 1000) // ~108µs in flight
	})
	k.After(50*time.Microsecond, c.Nodes[1].Fail)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("send delivered to a node that failed mid-flight")
	}
	if c.Nodes[1].BytesReceived != 0 {
		t.Fatalf("down node counted %d received bytes", c.Nodes[1].BytesReceived)
	}
}

// TestSendToSurvivesFailRecoverCycleInFlight: a fail/recover cycle that
// completes before the message lands does not lose it — only the node's
// state at arrival matters (storage is retained across the crash, and the
// sender's connection outlives the blip).
func TestSendToSurvivesFailRecoverCycleInFlight(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(2))
	var ok bool
	k.Spawn("sender", func(p *sim.Proc) {
		ok = c.Nodes[0].SendTo(p, c.Nodes[1], 1000)
	})
	k.After(30*time.Microsecond, c.Nodes[1].Fail)
	k.After(60*time.Microsecond, c.Nodes[1].Recover)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("send lost although the receiver was up at arrival")
	}
}

// TestDeliverDroppedAtSendWhenReceiverDown: a message addressed to a node
// that is already down is dropped immediately, even if the node recovers
// before the would-be arrival time.
func TestDeliverDroppedAtSendWhenReceiverDown(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(2))
	c.Nodes[1].Fail()
	ran := false
	c.Nodes[0].Deliver(c.Nodes[1], 1000, func() { ran = true })
	c.Nodes[1].Recover() // recovers well before the ~108µs arrival
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("delivery to a down node was not dropped at send time")
	}
}
