package cluster

import "time"

// ShardPlan maps a cluster topology onto kernel execution shards (see
// sim.ShardGroup). These are host-side execution partitions — which member
// kernel simulates which nodes — and are unrelated to the key-range splits
// ycsb.SplitPoints produces for pre-splitting HBase regions.
type ShardPlan struct {
	Shards    int
	Lookahead time.Duration // min one-way cross-shard network latency
	NodeShard []int         // NodeShard[i] is the execution shard of node i

	// PairLookahead[a][b] is the minimum one-way latency from any node on
	// shard a to any node on shard b — the delivery floor for that directed
	// pair, and the matrix sim.ShardGroup.SetPairLookahead consumes for
	// adaptive window widening. Diagonal entries are zero. On a geo
	// topology where shard boundaries align with DC boundaries the
	// off-diagonal entries are the per-DC-pair WAN floors, so far-apart
	// shards get windows far wider than the global minimum. Nil when
	// Shards == 1.
	PairLookahead [][]time.Duration
}

// PlanShards partitions a cfg.Nodes-node topology into the given number of
// contiguous execution shards and computes the conservative lookahead: the
// minimum one-way network latency between any two nodes that land on
// different shards. Any message between nodes on different shards takes at
// least that long, so it is the largest window width the conservative
// scheme can safely use.
//
// Node i goes to shard i*shards/nodes — the same contiguous split rule New
// uses for zones, so when the shard count divides the zone count evenly the
// shard boundaries align with zone boundaries and the lookahead widens from
// BaseRTT/2 to InterZoneRTT/2. With a GeoTopology whose DC blocks align
// with the shard split (e.g. equal DCs, one shard per DC), every
// cross-shard edge is a WAN edge and the lookahead widens to the minimum
// cross-DC one-way base latency — WAN jitter is additive and non-negative,
// so the base stays a true lower bound and the conservative window engine
// stays correct.
func PlanShards(cfg Config, shards int) ShardPlan {
	if cfg.Geo != nil {
		cfg.Zones = len(cfg.Geo.DCSizes)
	}
	if cfg.Zones < 1 {
		cfg.Zones = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > cfg.Nodes {
		shards = cfg.Nodes
	}
	p := ShardPlan{Shards: shards, NodeShard: make([]int, cfg.Nodes)}
	for i := 0; i < cfg.Nodes; i++ {
		p.NodeShard[i] = i * shards / cfg.Nodes
	}
	if shards == 1 {
		return p // no cross-shard edges; lookahead is unused
	}
	// Minimum one-way latency over all cross-shard node pairs, globally and
	// per shard pair. Quadratic in node count, but it runs once per
	// deployment on at most a few hundred nodes.
	p.PairLookahead = make([][]time.Duration, shards)
	for a := range p.PairLookahead {
		p.PairLookahead[a] = make([]time.Duration, shards)
	}
	min := time.Duration(0)
	for i := 0; i < cfg.Nodes; i++ {
		for j := i + 1; j < cfg.Nodes; j++ {
			a, b := p.NodeShard[i], p.NodeShard[j]
			if a == b {
				continue
			}
			oneWay := cfg.minOneWay(i, j)
			if min == 0 || oneWay < min {
				min = oneWay
			}
			// minOneWay is symmetric in (i, j), so the floor holds for
			// both directions of the shard pair.
			if cur := p.PairLookahead[a][b]; cur == 0 || oneWay < cur {
				p.PairLookahead[a][b] = oneWay
				p.PairLookahead[b][a] = oneWay
			}
		}
	}
	// A shard pair with no node pairs crossing it cannot occur with the
	// contiguous split (every shard is non-empty), but guard anyway: an
	// empty floor would mean "no constraint", which the group API reads as
	// "at least the global lookahead".
	for a := 0; a < shards; a++ {
		for b := 0; b < shards; b++ {
			if a != b && p.PairLookahead[a][b] == 0 {
				p.PairLookahead[a][b] = min
			}
		}
	}
	p.Lookahead = min
	return p
}
