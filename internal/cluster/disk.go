package cluster

import (
	"math"
	"time"

	"cloudbench/internal/sim"
)

// DiskConfig parameterizes a single spinning hard drive.
type DiskConfig struct {
	SeekTime       time.Duration // positioning cost for a random I/O
	ReadBandwidth  float64       // bytes/second, sequential
	WriteBandwidth float64       // bytes/second, sequential
	// AppendCoalesce is the window within which consecutive sequential
	// appends (WAL/commit-log writes) are coalesced into one device
	// operation, modeling group commit at the device level.
	AppendCoalesce time.Duration
	// AppendPositioning is the cost of re-positioning onto the log zone
	// after the coalesce window lapses. It is far below SeekTime: log
	// zones are contiguous and drives cache writes, so the penalty is a
	// short settle rather than a full random seek. Keeping it small also
	// keeps the WAL latency model monostable — a full seek here would
	// make batching self-reinforcing and the equilibrium depend on
	// history rather than load.
	AppendPositioning time.Duration
}

// DefaultDiskConfig models a 7.2k RPM SATA drive.
func DefaultDiskConfig() DiskConfig {
	return DiskConfig{
		SeekTime:          8 * time.Millisecond,
		ReadBandwidth:     120e6,
		WriteBandwidth:    110e6,
		AppendCoalesce:    time.Millisecond,
		AppendPositioning: 400 * time.Microsecond,
	}
}

// Disk is one drive: a capacity-1 FIFO resource plus a latency model that
// distinguishes random I/O (pays a seek) from sequential I/O (bandwidth
// only).
type Disk struct {
	cfg DiskConfig
	res *sim.Resource

	// appendHead tracks the end of the most recent sequential append so
	// back-to-back appends within the coalesce window skip the seek.
	lastAppendEnd sim.Time

	ReadOps, WriteOps   int64
	BytesRead, BytesWri int64
}

// NewDisk returns a disk with the given configuration.
func NewDisk(k *sim.Kernel, name string, cfg DiskConfig) *Disk {
	return &Disk{
		cfg: cfg,
		res: sim.NewResource(k, name, 1),
		// Far in the past so the very first append pays positioning.
		lastAppendEnd: sim.Time(math.MinInt64 / 2),
	}
}

// Utilization returns the drive's mean busy fraction.
func (d *Disk) Utilization() float64 { return d.res.Utilization() }

// BusyTime returns cumulative device-active time.
func (d *Disk) BusyTime() time.Duration { return d.res.BusyTime() }

// QueueLen returns the number of I/Os waiting for the drive.
func (d *Disk) QueueLen() int { return d.res.QueueLen() }

func (d *Disk) xfer(bytes int, bw float64) time.Duration {
	return time.Duration(float64(bytes) / bw * float64(time.Second))
}

// Read performs a read of the given size, blocking p for queueing plus
// service time. random selects whether a seek is paid.
func (d *Disk) Read(p *sim.Proc, bytes int, random bool) {
	t := d.xfer(bytes, d.cfg.ReadBandwidth)
	if random {
		t += d.cfg.SeekTime
	}
	d.res.Use(p, t)
	d.ReadOps++
	d.BytesRead += int64(bytes)
}

// Write performs a write of the given size, blocking p for queueing plus
// service time. random selects whether a seek is paid.
func (d *Disk) Write(p *sim.Proc, bytes int, random bool) {
	t := d.xfer(bytes, d.cfg.WriteBandwidth)
	if random {
		t += d.cfg.SeekTime
	}
	d.res.Use(p, t)
	d.WriteOps++
	d.BytesWri += int64(bytes)
}

// Append performs a sequential log append. The first append in a burst
// pays the positioning cost; appends arriving within AppendCoalesce of the
// previous append's completion ride the same head position, modeling a WAL
// on a dedicated region of the drive with group commit.
func (d *Disk) Append(p *sim.Proc, bytes int) {
	k := p.Kernel()
	t := d.xfer(bytes, d.cfg.WriteBandwidth)
	if k.Now() > d.lastAppendEnd.Add(d.cfg.AppendCoalesce) {
		// Head moved away (or first append): pay the log-zone settle.
		t += d.cfg.AppendPositioning
	}
	d.res.Use(p, t)
	d.lastAppendEnd = k.Now()
	d.WriteOps++
	d.BytesWri += int64(bytes)
}
