package cluster

import "time"

// EnergyConfig models per-node power draw: a constant idle floor plus
// activity-proportional draw for the CPU and the disk. It supports the
// energy-efficiency metric that BigDataBench layers over YCSB (related
// work, §5) and the paper's own complaint (§6) that long benchmark runs
// are energy-inefficient.
type EnergyConfig struct {
	IdleWatts     float64 // chassis + RAM + fans, always drawn
	CPUWatts      float64 // additional draw per fully busy CPU
	DiskWatts     float64 // additional draw while the disk is active
	NetworkJPerGB float64 // transmission energy per gigabyte sent
}

// DefaultEnergyConfig approximates a 2010-era dual-socket Xeon server.
func DefaultEnergyConfig() EnergyConfig {
	return EnergyConfig{
		IdleWatts:     150,
		CPUWatts:      120,
		DiskWatts:     8,
		NetworkJPerGB: 15,
	}
}

// EnergyReport summarizes a cluster's energy use over the simulation so
// far.
type EnergyReport struct {
	Elapsed      time.Duration
	IdleJoules   float64
	CPUJoules    float64
	DiskJoules   float64
	NetJoules    float64
	TotalJoules  float64
	MeanWatts    float64
	NodesCounted int
}

// Energy integrates each node's power draw from simulation start to now.
func (c *Cluster) Energy(cfg EnergyConfig) EnergyReport {
	now := c.K.Now()
	elapsed := time.Duration(now)
	rep := EnergyReport{Elapsed: elapsed, NodesCounted: len(c.Nodes)}
	secs := elapsed.Seconds()
	for _, n := range c.Nodes {
		rep.IdleJoules += cfg.IdleWatts * secs
		// CPU busy time is in slot-seconds; normalize by slot count so a
		// fully busy node draws exactly CPUWatts.
		slots := float64(n.CPU.Capacity())
		if slots > 0 {
			rep.CPUJoules += cfg.CPUWatts * n.CPU.BusyTime().Seconds() / slots
		}
		rep.DiskJoules += cfg.DiskWatts * n.Disk.BusyTime().Seconds()
		rep.NetJoules += cfg.NetworkJPerGB * float64(n.BytesSent) / 1e9
	}
	rep.TotalJoules = rep.IdleJoules + rep.CPUJoules + rep.DiskJoules + rep.NetJoules
	if secs > 0 {
		rep.MeanWatts = rep.TotalJoules / secs
	}
	return rep
}

// OpsPerJoule converts an operation count into the energy-efficiency
// metric (higher is better).
func (r EnergyReport) OpsPerJoule(ops int64) float64 {
	if r.TotalJoules == 0 {
		return 0
	}
	return float64(ops) / r.TotalJoules
}
