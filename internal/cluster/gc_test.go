package cluster

import (
	"testing"
	"time"

	"cloudbench/internal/sim"
)

func TestGCPausesDelayExec(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(1))
	n := c.Nodes[0]
	var waited time.Duration
	k.Spawn("op", func(p *sim.Proc) {
		n.PauseUntil(p.Now().Add(10 * time.Millisecond))
		if !n.Paused() {
			t.Error("node should report paused")
		}
		start := p.Now()
		n.Exec(p, time.Millisecond)
		waited = p.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if waited != 11*time.Millisecond {
		t.Fatalf("exec took %v, want pause 10ms + service 1ms", waited)
	}
}

func TestGCControllerStopsAndCounts(t *testing.T) {
	k := sim.NewKernel(2)
	c := New(k, testConfig(3))
	cfg := GCConfig{MeanInterval: 50 * time.Millisecond, MeanPause: 5 * time.Millisecond, MinPause: time.Millisecond}
	g := StartGC(k, cfg, c.Nodes)
	k.Spawn("driver", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		g.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err) // a deadlock here means the GC procs never exited
	}
	if g.Pauses == 0 || g.Stalled == 0 {
		t.Fatalf("pauses=%d stalled=%v, want activity", g.Pauses, g.Stalled)
	}
	// ~3 nodes × 2s / ~55ms ≈ 100 pauses; allow wide tolerance.
	if g.Pauses < 30 || g.Pauses > 300 {
		t.Fatalf("pauses = %d, outside plausible range", g.Pauses)
	}
}

func TestGCPauseExtendsNotShrinks(t *testing.T) {
	k := sim.NewKernel(3)
	c := New(k, testConfig(1))
	n := c.Nodes[0]
	n.PauseUntil(sim.Time(20 * time.Millisecond))
	n.PauseUntil(sim.Time(10 * time.Millisecond)) // shorter: ignored
	var end sim.Time
	k.Spawn("op", func(p *sim.Proc) {
		n.Exec(p, 0)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != sim.Time(20*time.Millisecond) {
		t.Fatalf("resumed at %v, want 20ms", end)
	}
}
