package cluster

import (
	"testing"
	"time"

	"cloudbench/internal/sim"
)

func testConfig(nodes int) Config {
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	return cfg
}

func TestNewBuildsNodes(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(4))
	if len(c.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	for i, n := range c.Nodes {
		if n.ID != i || n.CPU == nil || n.Disk == nil {
			t.Fatalf("node %d malformed: %+v", i, n)
		}
	}
}

func TestSendToAccruesNetworkDelay(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(2))
	var elapsed time.Duration
	k.Spawn("sender", func(p *sim.Proc) {
		start := p.Now()
		if !c.Nodes[0].SendTo(p, c.Nodes[1], 1000) {
			t.Error("send failed")
		}
		elapsed = p.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 1000 bytes at 125 MB/s = 8µs serialize + 100µs propagation.
	want := 8*time.Microsecond + 100*time.Microsecond
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
}

func TestSendToLoopbackIsFree(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(2))
	var elapsed time.Duration
	k.Spawn("sender", func(p *sim.Proc) {
		start := p.Now()
		c.Nodes[0].SendTo(p, c.Nodes[0], 1<<20)
		elapsed = p.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Fatalf("loopback took %v", elapsed)
	}
}

func TestNICSerializesConcurrentSends(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(2))
	size := 125_000 // 1ms of serialization at 1 Gbit/s
	var finishes []time.Duration
	for i := 0; i < 3; i++ {
		k.Spawn("sender", func(p *sim.Proc) {
			c.Nodes[0].SendTo(p, c.Nodes[1], size)
			finishes = append(finishes, time.Duration(p.Now()))
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Frames serialize back-to-back: arrivals at ~1.1ms, ~2.1ms, ~3.1ms.
	for i, f := range finishes {
		want := time.Duration(i+1)*time.Millisecond + 100*time.Microsecond
		if f != want {
			t.Fatalf("finish[%d] = %v, want %v", i, f, want)
		}
	}
}

func TestSendToDownNodeFails(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(2))
	c.Nodes[1].Fail()
	var ok bool
	k.Spawn("sender", func(p *sim.Proc) {
		ok = c.Nodes[0].SendTo(p, c.Nodes[1], 100)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("send to down node succeeded")
	}
	c.Nodes[1].Recover()
	if c.Nodes[1].Down() {
		t.Fatal("recover did not clear down")
	}
}

func TestDeliverRunsAtArrivalTime(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(2))
	var at sim.Time
	c.Nodes[0].Deliver(c.Nodes[1], 1000, func() { at = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(8*time.Microsecond + 100*time.Microsecond)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestDeliverDroppedWhenReceiverDies(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(2))
	ran := false
	c.Nodes[0].Deliver(c.Nodes[1], 1000, func() { ran = true })
	c.Nodes[1].Fail() // fails before the message lands
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("message delivered to node that failed in flight")
	}
}

func TestRoundTripRunsHandler(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(2))
	var handled bool
	var elapsed time.Duration
	k.Spawn("rpc", func(p *sim.Proc) {
		start := p.Now()
		ok := c.Nodes[0].RoundTrip(p, c.Nodes[1], 100, 100, func() {
			handled = true
			c.Nodes[1].Exec(p, time.Millisecond)
		})
		if !ok {
			t.Error("round trip failed")
		}
		elapsed = p.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !handled {
		t.Fatal("handler not run")
	}
	if elapsed < time.Millisecond+200*time.Microsecond {
		t.Fatalf("elapsed = %v, want >= 1.2ms", elapsed)
	}
}

func TestDiskSequentialVsRandom(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDisk(k, "d", DefaultDiskConfig())
	var seqT, randT time.Duration
	k.Spawn("io", func(p *sim.Proc) {
		start := p.Now()
		d.Read(p, 4096, false)
		seqT = p.Now().Sub(start)
		start = p.Now()
		d.Read(p, 4096, true)
		randT = p.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if randT-seqT != 8*time.Millisecond {
		t.Fatalf("random-seq = %v, want 8ms seek", randT-seqT)
	}
}

func TestDiskAppendCoalesces(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDisk(k, "d", DefaultDiskConfig())
	var first, second time.Duration
	k.Spawn("wal", func(p *sim.Proc) {
		start := p.Now()
		d.Append(p, 512)
		first = p.Now().Sub(start)
		start = p.Now()
		d.Append(p, 512) // immediately after: within coalesce window
		second = p.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if second >= first {
		t.Fatalf("second append (%v) not cheaper than first (%v)", second, first)
	}
}

func TestDiskQueueing(t *testing.T) {
	k := sim.NewKernel(1)
	d := NewDisk(k, "d", DefaultDiskConfig())
	var last time.Duration
	for i := 0; i < 4; i++ {
		k.Spawn("reader", func(p *sim.Proc) {
			d.Read(p, 1<<20, true) // 8ms seek + ~8.7ms transfer
			last = time.Duration(p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Four serialized I/Os of ~16.7ms each.
	if last < 60*time.Millisecond {
		t.Fatalf("last finish = %v, want >= 60ms (serialized)", last)
	}
	if d.ReadOps != 4 {
		t.Fatalf("readops = %d", d.ReadOps)
	}
}

func TestExecConsumesCPU(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := testConfig(1)
	cfg.CPUSlots = 1
	c := New(k, cfg)
	var finish []time.Duration
	for i := 0; i < 2; i++ {
		k.Spawn("op", func(p *sim.Proc) {
			c.Nodes[0].Exec(p, time.Millisecond)
			finish = append(finish, time.Duration(p.Now()))
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if finish[1] != 2*time.Millisecond {
		t.Fatalf("finish = %v, want serialized 1ms+1ms", finish)
	}
}
