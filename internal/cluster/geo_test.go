package cluster

import (
	"testing"
	"time"

	"cloudbench/internal/sim"
)

// geoConfig is a 2-DC topology: 3 nodes per DC, 80ms RTT between them.
func geoConfig(jitter time.Duration) Config {
	cfg := DefaultConfig()
	cfg.Nodes = 6
	cfg.Geo = &GeoTopology{
		DCSizes:   []int{3, 3},
		WANOneWay: WANChain(2, 80*time.Millisecond),
		WANJitter: jitter,
	}
	return cfg
}

func TestWANChainMatrix(t *testing.T) {
	rtt := 100 * time.Millisecond
	m := WANChain(3, rtt)
	for i := 0; i < 3; i++ {
		if m[i][i] != 0 {
			t.Fatalf("diagonal [%d][%d] = %v", i, i, m[i][i])
		}
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			hops := j - i
			if hops < 0 {
				hops = -hops
			}
			if got := m[i][j] + m[j][i]; got != time.Duration(hops)*rtt {
				t.Fatalf("pair (%d,%d) RTT = %v, want %v", i, j, got, time.Duration(hops)*rtt)
			}
		}
	}
	if m[0][1] <= m[1][0] {
		t.Fatalf("chain not asymmetric: %v vs %v", m[0][1], m[1][0])
	}
}

func TestGeoZoneAndRackAssignment(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.Nodes = 7
	cfg.Geo = &GeoTopology{
		DCSizes:      []int{4, 3},
		RacksPerDC:   2,
		InterRackRTT: time.Millisecond,
		WANOneWay:    WANChain(2, 80*time.Millisecond),
	}
	c := New(k, cfg)
	wantZone := []int{0, 0, 0, 0, 1, 1, 1}
	wantRack := []int{0, 0, 1, 1, 0, 0, 1}
	for i, n := range c.Nodes {
		if n.Zone != wantZone[i] || n.Rack != wantRack[i] {
			t.Fatalf("node %d: zone=%d rack=%d, want zone=%d rack=%d",
				i, n.Zone, n.Rack, wantZone[i], wantRack[i])
		}
	}
	if c.Zones() != 2 {
		t.Fatalf("Zones() = %d", c.Zones())
	}
}

// TestWANDelayJitterBoundedAndSeeded: jitter draws stay inside
// [base, base+WANJitter), and because every directed link owns a stream
// derived only from (kernel seed, src, dst), two clusters built from
// equal-seed kernels see identical per-message WAN delays.
func TestWANDelayJitterBoundedAndSeeded(t *testing.T) {
	jitter := 5 * time.Millisecond
	base := WANChain(2, 80*time.Millisecond)[0][1]
	sample := func(seed int64) []time.Duration {
		k := sim.NewKernel(seed)
		c := New(k, geoConfig(jitter))
		out := make([]time.Duration, 20)
		for i := range out {
			out[i] = c.wanDelay(0, 1)
		}
		return out
	}
	a := sample(7)
	b := sample(7)
	other := sample(8)
	varies := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across equal seeds: %v vs %v", i, a[i], b[i])
		}
		if a[i] < base || a[i] >= base+jitter {
			t.Fatalf("draw %d = %v outside [%v, %v)", i, a[i], base, base+jitter)
		}
		if a[i] != other[i] {
			varies = true
		}
	}
	if !varies {
		t.Fatal("jitter stream ignores the kernel seed")
	}
}

// TestWANDirectionsAsymmetric: the measured one-way latencies of the two
// directions of a DC pair differ per the WANOneWay matrix but sum to the
// configured round trip.
func TestWANDirectionsAsymmetric(t *testing.T) {
	k := sim.NewKernel(2)
	c := New(k, geoConfig(0))
	var fwd, rev time.Duration
	k.Spawn("probe", func(p *sim.Proc) {
		a, b := c.Nodes[0], c.Nodes[3]
		start := p.Now()
		a.SendTo(p, b, 100)
		fwd = p.Now().Sub(start)
		start = p.Now()
		b.SendTo(p, a, 100)
		rev = p.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fwd <= rev {
		t.Fatalf("fwd=%v rev=%v: directions not asymmetric", fwd, rev)
	}
	sum := fwd + rev
	if sum < 80*time.Millisecond || sum > 81*time.Millisecond {
		t.Fatalf("round trip %v, want ~80ms", sum)
	}
}

func TestPartitionDropsAtSendAndHeals(t *testing.T) {
	k := sim.NewKernel(3)
	c := New(k, geoConfig(0))
	var during, within, after bool
	k.Spawn("probe", func(p *sim.Proc) {
		c.PartitionZones(0, 1)
		during = c.Nodes[0].SendTo(p, c.Nodes[3], 100)
		within = c.Nodes[0].SendTo(p, c.Nodes[1], 100) // intra-DC unaffected
		c.HealZones(0, 1)
		after = c.Nodes[0].SendTo(p, c.Nodes[3], 100)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if during {
		t.Fatal("cross-DC send succeeded during partition")
	}
	if !within {
		t.Fatal("intra-DC send dropped by an unrelated partition")
	}
	if !after {
		t.Fatal("cross-DC send failed after heal")
	}
	if c.ZonesPartitioned(0, 1) {
		t.Fatal("ZonesPartitioned still true after heal")
	}
}

// TestPartitionDropsMidFlight: like a mid-flight node failure, a message
// already crossing the WAN when the partition cuts is lost — liveness of
// the link is checked again at arrival time.
func TestPartitionDropsMidFlight(t *testing.T) {
	k := sim.NewKernel(4)
	c := New(k, geoConfig(0))
	var ok bool
	k.Spawn("sender", func(p *sim.Proc) {
		ok = c.Nodes[0].SendTo(p, c.Nodes[3], 100) // ~48ms in flight
	})
	k.After(10*time.Millisecond, func() { c.PartitionZones(0, 1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("send delivered across a link partitioned mid-flight")
	}
	if c.Nodes[3].BytesReceived != 0 {
		t.Fatalf("partitioned node counted %d received bytes", c.Nodes[3].BytesReceived)
	}
}

// TestPartitionHealSameInstantKeepsCallOrder mirrors the fail/recover
// ordering contract: simultaneous PartitionZones and HealZones resolve in
// registration order, deterministically.
func TestPartitionHealSameInstantKeepsCallOrder(t *testing.T) {
	k := sim.NewKernel(5)
	c := New(k, geoConfig(0))
	k.After(time.Millisecond, func() { c.PartitionZones(0, 1) })
	k.After(time.Millisecond, func() { c.HealZones(0, 1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.ZonesPartitioned(0, 1) {
		t.Fatal("partition-then-heal at the same instant left the link cut")
	}

	k2 := sim.NewKernel(5)
	c2 := New(k2, geoConfig(0))
	k2.After(time.Millisecond, func() { c2.HealZones(0, 1) })
	k2.After(time.Millisecond, func() { c2.PartitionZones(0, 1) })
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if !c2.ZonesPartitioned(0, 1) {
		t.Fatal("heal-then-partition at the same instant left the link up")
	}
}

// TestPlanShardsGeoLookahead: with one shard per DC the every cross-shard
// edge is a WAN edge, so the conservative lookahead is the cheaper
// direction of the cross-DC base latency — jitter is additive and cannot
// shrink it.
func TestPlanShardsGeoLookahead(t *testing.T) {
	cfg := geoConfig(5 * time.Millisecond)
	plan := PlanShards(cfg, 2)
	for i := 0; i < cfg.Nodes; i++ {
		if want := cfg.zoneOf(i); plan.NodeShard[i] != want {
			t.Fatalf("node %d on shard %d, want DC-aligned shard %d", i, plan.NodeShard[i], want)
		}
	}
	want := WANChain(2, 80*time.Millisecond)[1][0] // cheaper direction: 32ms
	if plan.Lookahead != want {
		t.Fatalf("lookahead = %v, want %v", plan.Lookahead, want)
	}
}
