package cluster

import (
	"fmt"
	"time"

	"cloudbench/internal/sim"
)

// GeoTopology describes a multi-datacenter layout: the rack → DC hierarchy
// of ROADMAP's geo-replication item. Nodes are assigned to data centers in
// contiguous blocks (DCSizes), each DC is split into RacksPerDC contiguous
// racks, and traffic between DCs pays a per-direction WAN base latency plus
// bounded seeded jitter.
//
// The WAN model is deliberately a pure function of (topology, kernel seed):
// every directed DC pair owns its own jitter stream seeded from the kernel
// seed, so the i-th message on a link sees the same jitter whatever else is
// in flight, and WANOneWay stays a true lower bound — which is what lets
// PlanShards use the cross-DC minimum as the conservative shard lookahead.
type GeoTopology struct {
	// DCSizes is the number of nodes in each data center; nodes are
	// assigned in contiguous blocks by id and the sizes must sum to
	// Config.Nodes.
	DCSizes []int
	// RacksPerDC splits each DC into contiguous racks (≤ 1 means one
	// rack per DC). Same-rack traffic pays BaseRTT; cross-rack same-DC
	// traffic pays InterRackRTT when set.
	RacksPerDC   int
	InterRackRTT time.Duration
	// WANOneWay[src][dst] is the base one-way latency from DC src to DC
	// dst. The matrix may be asymmetric (routing rarely gives both
	// directions of a long-haul path the same delay); the diagonal is
	// ignored.
	WANOneWay [][]time.Duration
	// WANJitter bounds the additive per-message jitter on WAN legs: each
	// cross-DC message pays an extra delay drawn uniformly from
	// [0, WANJitter) off the link's seeded stream. Zero disables jitter.
	WANJitter time.Duration
}

// WANChain returns an asymmetric one-way latency matrix for dcs data
// centers on a chain, adjacent DCs rtt apart round trip (k hops apart pay
// k·rtt). Each round trip splits 60/40 between the directions — the
// low-index → high-index leg is the slower one — so the matrix exercises
// asymmetric routing while keeping pair RTTs exact.
func WANChain(dcs int, rtt time.Duration) [][]time.Duration {
	m := make([][]time.Duration, dcs)
	for i := range m {
		m[i] = make([]time.Duration, dcs)
		for j := range m[i] {
			if i == j {
				continue
			}
			hops := j - i
			if hops < 0 {
				hops = -hops
			}
			total := time.Duration(hops) * rtt
			if i < j {
				m[i][j] = total * 6 / 10
			} else {
				m[i][j] = total * 4 / 10
			}
		}
	}
	return m
}

// wanLinkSeed derives the jitter-stream seed for the directed WAN link
// src→dst from the kernel seed. Keeping the derivation explicit (and the
// argument name ending in "seed") is what lets the seedflow analyzer prove
// the link jitter's provenance back to the experiment seed.
func wanLinkSeed(kernelSeed int64, src, dst int) uint64 {
	s := uint64(kernelSeed) ^ 0x9e3779b97f4a7c15
	s ^= uint64(src+1) * 0xbf58476d1ce4e5b9
	s ^= uint64(dst+1) * 0x94d049bb133111eb
	return s
}

// geoState is the cluster-side WAN machinery: per-directed-link jitter
// streams and the zone partition matrix.
type geoState struct {
	jitter [][]*sim.Source // [src][dst], nil entries on the diagonal
	cut    [][]bool        // [a][b] true when the DC pair is partitioned
}

// newGeoState validates the topology against cfg and builds the link
// streams from the kernel seed.
func newGeoState(k *sim.Kernel, cfg Config) *geoState {
	g := cfg.Geo
	total := 0
	for _, n := range g.DCSizes {
		total += n
	}
	if total != cfg.Nodes {
		panic(fmt.Sprintf("cluster: GeoTopology DCSizes sum %d != Nodes %d", total, cfg.Nodes))
	}
	dcs := len(g.DCSizes)
	if len(g.WANOneWay) != dcs {
		panic(fmt.Sprintf("cluster: GeoTopology WANOneWay is %d×, want %d×%d", len(g.WANOneWay), dcs, dcs))
	}
	gs := &geoState{
		jitter: make([][]*sim.Source, dcs),
		cut:    make([][]bool, dcs),
	}
	for i := 0; i < dcs; i++ {
		gs.jitter[i] = make([]*sim.Source, dcs)
		gs.cut[i] = make([]bool, dcs)
		for j := 0; j < dcs; j++ {
			if i == j || g.WANJitter <= 0 {
				continue
			}
			gs.jitter[i][j] = sim.NewSource(wanLinkSeed(k.Seed(), i, j))
		}
	}
	return gs
}

// wanDelay returns the one-way propagation delay for a message crossing
// from DC src to DC dst: the link's base latency plus one jitter draw from
// the link's seeded stream.
func (c *Cluster) wanDelay(src, dst int) time.Duration {
	g := c.Config.Geo
	d := g.WANOneWay[src][dst]
	if s := c.geo.jitter[src][dst]; s != nil {
		d += time.Duration(s.Uint64() % uint64(g.WANJitter))
	}
	return d
}

// PartitionZones cuts the WAN link between zones a and b in both
// directions: messages between the two DCs are dropped (at send, and at
// receive for messages already in flight) until HealZones. Intra-DC
// traffic and other DC pairs are unaffected. No-op without a GeoTopology.
func (c *Cluster) PartitionZones(a, b int) { c.setZoneCut(a, b, true) }

// HealZones restores the WAN link between zones a and b.
func (c *Cluster) HealZones(a, b int) { c.setZoneCut(a, b, false) }

func (c *Cluster) setZoneCut(a, b int, cut bool) {
	if c.geo == nil || a == b {
		return
	}
	c.geo.cut[a][b] = cut
	c.geo.cut[b][a] = cut
}

// ZonesPartitioned reports whether the WAN link between zones a and b is
// currently cut.
func (c *Cluster) ZonesPartitioned(a, b int) bool {
	if c.geo == nil || a == b {
		return false
	}
	return c.geo.cut[a][b]
}

// zoneCut reports whether traffic between the two zones is dropped.
func (c *Cluster) zoneCut(a, b int) bool {
	return c.geo != nil && a != b && c.geo.cut[a][b]
}

// zoneOf returns the zone (data center) of node i under cfg's topology
// rules: contiguous DCSizes blocks with a GeoTopology, the contiguous
// equal split otherwise. New and PlanShards share it so execution-shard
// planning can never drift from the topology the cluster actually builds.
func (cfg *Config) zoneOf(i int) int {
	if g := cfg.Geo; g != nil {
		for z, size := range g.DCSizes {
			if i < size {
				return z
			}
			i -= size
		}
		return len(g.DCSizes) - 1
	}
	zones := cfg.Zones
	if zones < 1 {
		zones = 1
	}
	return i * zones / cfg.Nodes
}

// rackOf returns the rack index (within its DC) of node i: contiguous
// equal blocks inside the DC. 0 without a GeoTopology.
func (cfg *Config) rackOf(i int) int {
	g := cfg.Geo
	if g == nil || g.RacksPerDC <= 1 {
		return 0
	}
	for _, size := range g.DCSizes {
		if i < size {
			return i * g.RacksPerDC / size
		}
		i -= size
	}
	return 0
}

// minOneWay returns the minimum possible one-way latency between nodes i
// and j — the propagation floor with zero jitter and an idle NIC. For
// cross-DC pairs this takes the cheaper direction, since messages flow
// both ways across a shard boundary. PlanShards builds its conservative
// lookahead from it.
func (cfg *Config) minOneWay(i, j int) time.Duration {
	zi, zj := cfg.zoneOf(i), cfg.zoneOf(j)
	if g := cfg.Geo; g != nil {
		if zi != zj {
			d := g.WANOneWay[zi][zj]
			if r := g.WANOneWay[zj][zi]; r < d {
				d = r
			}
			return d
		}
		if cfg.rackOf(i) != cfg.rackOf(j) && g.InterRackRTT > 0 {
			return g.InterRackRTT / 2
		}
		return cfg.BaseRTT / 2
	}
	if zi != zj && cfg.InterZoneRTT > 0 {
		return cfg.InterZoneRTT / 2
	}
	return cfg.BaseRTT / 2
}
