package cluster

import (
	"math"
	"time"

	"cloudbench/internal/sim"
)

// GCConfig models JVM stop-the-world pauses, the dominant source of
// latency outliers in 2013-era Java databases (both HBase and Cassandra
// run on the JVM). During a pause the node's CPU admits no new work;
// requests and replica applies queue behind it, which is what creates
// replica lag, staleness windows at weak consistency levels, and the
// slow-replica tail that ALL-consistency writes must wait for.
type GCConfig struct {
	// MeanInterval is the average time between pauses on one node
	// (exponentially distributed).
	MeanInterval time.Duration
	// MeanPause is the average stop-the-world duration (log-normal-ish:
	// exponential with a floor).
	MeanPause time.Duration
	// MinPause floors each pause (young-gen collections).
	MinPause time.Duration
}

// DefaultGCConfig returns pause behaviour typical of a busy 2013 JVM with
// a large heap: a pause every few seconds, tens of milliseconds each.
func DefaultGCConfig() GCConfig {
	return GCConfig{
		MeanInterval: 3 * time.Second,
		MeanPause:    60 * time.Millisecond,
		MinPause:     5 * time.Millisecond,
	}
}

// GCController runs pause processes on a set of nodes and can stop them so
// the simulation drains.
type GCController struct {
	stopped bool
	Pauses  int64
	Stalled time.Duration
}

// Stop ends all pause processes after their current cycle.
func (g *GCController) Stop() { g.stopped = true }

// StartGC spawns a stop-the-world pause process on each node. Call Stop
// when the experiment's driver finishes so the kernel can drain.
func StartGC(k *sim.Kernel, cfg GCConfig, nodes []*Node) *GCController {
	g := &GCController{}
	for _, n := range nodes {
		n := n
		k.Spawn(n.Name+"/gc", func(p *sim.Proc) {
			for !g.stopped {
				gap := time.Duration(float64(cfg.MeanInterval) * expRand(p))
				p.Sleep(gap)
				if g.stopped {
					return
				}
				pause := cfg.MinPause + time.Duration(float64(cfg.MeanPause-cfg.MinPause)*expRand(p))
				// Stop the world: work arriving during the window waits
				// for it to end (in-flight CPU bursts finish, like
				// threads reaching a safepoint).
				n.PauseUntil(p.Now().Add(pause))
				p.Sleep(pause)
				g.Pauses++
				g.Stalled += pause
			}
		})
	}
	return g
}

// expRand draws a unit-mean exponential variate from the process stream.
func expRand(p *sim.Proc) float64 {
	u := p.Rand().Float64()
	if u >= 1 {
		u = 0.999999
	}
	return -math.Log(1 - u)
}
