package cluster

import (
	"testing"
	"time"

	"cloudbench/internal/sim"
)

func TestEnergyIdleBaseline(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(2))
	k.Spawn("idler", func(p *sim.Proc) { p.Sleep(10 * time.Second) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	rep := c.Energy(DefaultEnergyConfig())
	// 2 nodes × 150 W × 10 s = 3000 J idle, nothing else.
	if rep.IdleJoules != 3000 {
		t.Fatalf("idle = %v J", rep.IdleJoules)
	}
	if rep.CPUJoules != 0 || rep.DiskJoules != 0 {
		t.Fatalf("active energy without activity: cpu=%v disk=%v", rep.CPUJoules, rep.DiskJoules)
	}
	if rep.MeanWatts != 300 {
		t.Fatalf("mean watts = %v", rep.MeanWatts)
	}
}

func TestEnergyScalesWithActivity(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(1))
	n := c.Nodes[0]
	k.Spawn("worker", func(p *sim.Proc) {
		// Keep exactly one CPU slot busy half the time for 10s.
		for i := 0; i < 50; i++ {
			n.Exec(p, 100*time.Millisecond)
			p.Sleep(100 * time.Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	rep := c.Energy(DefaultEnergyConfig())
	// 1 slot busy 5 s of 10 s over 24 slots: 120 W × 5/24 ≈ 25 J.
	want := 120.0 * 5 / 24
	if rep.CPUJoules < want*0.9 || rep.CPUJoules > want*1.1 {
		t.Fatalf("cpu joules = %v, want ~%v", rep.CPUJoules, want)
	}
	if rep.TotalJoules <= rep.IdleJoules {
		t.Fatal("activity added no energy")
	}
	if rep.OpsPerJoule(1000) <= 0 {
		t.Fatal("ops/J not computed")
	}
}

func TestEnergyCountsDiskAndNetwork(t *testing.T) {
	k := sim.NewKernel(1)
	c := New(k, testConfig(2))
	k.Spawn("io", func(p *sim.Proc) {
		c.Nodes[0].Disk.Write(p, 100<<20, false) // ~1s of disk activity
		c.Nodes[0].SendTo(p, c.Nodes[1], 1<<30)  // 1 GB on the wire
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	rep := c.Energy(DefaultEnergyConfig())
	if rep.DiskJoules < 5 {
		t.Fatalf("disk joules = %v", rep.DiskJoules)
	}
	if rep.NetJoules < 14 || rep.NetJoules > 17 {
		t.Fatalf("net joules = %v, want ~15 (1 GB × 15 J/GB)", rep.NetJoules)
	}
}
