package cluster

import (
	"testing"
	"time"
)

func TestPlanShardsContiguous(t *testing.T) {
	cfg := DefaultConfig() // 16 nodes, single zone, BaseRTT 200µs
	p := PlanShards(cfg, 4)
	if p.Shards != 4 {
		t.Fatalf("shards = %d, want 4", p.Shards)
	}
	want := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3}
	for i, s := range p.NodeShard {
		if s != want[i] {
			t.Errorf("node %d on shard %d, want %d", i, s, want[i])
		}
	}
	if p.Lookahead != cfg.BaseRTT/2 {
		t.Errorf("single-zone lookahead = %v, want BaseRTT/2 = %v", p.Lookahead, cfg.BaseRTT/2)
	}
}

func TestPlanShardsZoneAligned(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Zones = 4
	cfg.InterZoneRTT = 10 * time.Millisecond
	// 4 shards over 4 zones: every cross-shard pair crosses a zone, so the
	// lookahead widens to the inter-zone one-way latency.
	p := PlanShards(cfg, 4)
	if p.Lookahead != cfg.InterZoneRTT/2 {
		t.Errorf("zone-aligned lookahead = %v, want InterZoneRTT/2 = %v",
			p.Lookahead, cfg.InterZoneRTT/2)
	}
	// 8 shards over 4 zones: shards split zones, so some cross-shard pairs
	// stay intra-zone and the lookahead falls back to BaseRTT/2.
	p = PlanShards(cfg, 8)
	if p.Lookahead != cfg.BaseRTT/2 {
		t.Errorf("zone-splitting lookahead = %v, want BaseRTT/2 = %v",
			p.Lookahead, cfg.BaseRTT/2)
	}
}

// TestPlanShardsPairLookahead: on a 3-DC WAN chain with one shard per DC,
// the per-pair floors must reflect per-pair distance — adjacent DCs get
// the one-hop floor, the end-to-end pair gets twice that — while the
// global Lookahead stays the overall minimum. This is the matrix adaptive
// window widening feeds on: the 0↔2 pair's windows can be twice as wide
// as the global lookahead alone would allow.
func TestPlanShardsPairLookahead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 9
	cfg.Geo = &GeoTopology{
		DCSizes:   []int{3, 3, 3},
		WANOneWay: WANChain(3, 80*time.Millisecond),
	}
	p := PlanShards(cfg, 3)
	oneHop := 32 * time.Millisecond // cheaper direction of an 80ms-RTT hop
	if p.Lookahead != oneHop {
		t.Fatalf("lookahead = %v, want %v", p.Lookahead, oneHop)
	}
	want := [][]time.Duration{
		{0, oneHop, 2 * oneHop},
		{oneHop, 0, oneHop},
		{2 * oneHop, oneHop, 0},
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if p.PairLookahead[a][b] != want[a][b] {
				t.Errorf("pair %d->%d floor = %v, want %v", a, b, p.PairLookahead[a][b], want[a][b])
			}
		}
	}
	if one := PlanShards(cfg, 1); one.PairLookahead != nil {
		t.Error("single-shard plan should have no pair matrix")
	}
	// Every pair floor must be at least the global lookahead, or
	// sim.ShardGroup.SetPairLookahead would reject the matrix.
	for a := range p.PairLookahead {
		for b := range p.PairLookahead[a] {
			if a != b && p.PairLookahead[a][b] < p.Lookahead {
				t.Errorf("pair %d->%d floor %v below global lookahead %v",
					a, b, p.PairLookahead[a][b], p.Lookahead)
			}
		}
	}
}

func TestPlanShardsDegenerate(t *testing.T) {
	cfg := DefaultConfig()
	p := PlanShards(cfg, 1)
	if p.Lookahead != 0 {
		t.Errorf("single-shard lookahead = %v, want 0", p.Lookahead)
	}
	for i, s := range p.NodeShard {
		if s != 0 {
			t.Errorf("node %d on shard %d, want 0", i, s)
		}
	}
	// More shards than nodes clamps to one node per shard.
	cfg.Nodes = 3
	p = PlanShards(cfg, 8)
	if p.Shards != 3 {
		t.Errorf("shards = %d, want clamp to 3", p.Shards)
	}
	if got := p.NodeShard; got[0] == got[1] || got[1] == got[2] {
		t.Errorf("clamped plan not one node per shard: %v", got)
	}
}
