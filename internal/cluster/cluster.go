// Package cluster models the hardware substrate of the paper's testbed: a
// single rack of server-class machines, each with a multi-core CPU, one
// hard drive, and a gigabit NIC, connected by a top-of-rack switch.
//
// Each node exposes three contended resources — CPU, disk, and NIC — built
// on the sim kernel's FIFO resources, so saturation and queueing delay
// emerge in virtual time exactly as they would from offered load on real
// hardware.
package cluster

import (
	"fmt"
	"time"

	"cloudbench/internal/sim"
)

// Config describes the hardware of every node in the (homogeneous) rack.
// The defaults mirror the paper's testbed: two 6-core/12-thread Xeon L5640
// processors, 32 GB RAM, one hard drive, gigabit ethernet, single rack.
type Config struct {
	Nodes int // machines in the rack

	// CPU
	CPUSlots  int           // concurrently executing requests per node (cores × threads)
	CPUOpCost time.Duration // base CPU service time per client-facing request
	// InternalOpCost is the CPU service time for node-to-node verbs
	// (replica mutation applies, internal forwards), which skip the
	// client-facing RPC/serialization stack.
	InternalOpCost time.Duration
	MemOpCost      time.Duration // cost of an in-memory data-structure operation
	// ScanRowCost is the CPU cost of materializing one row during a
	// range scan (iteration, deserialization, response assembly) — the
	// reason long scans are CPU-heavy on JVM stores even when the data
	// is cache-resident.
	ScanRowCost time.Duration

	// Network (intra-rack)
	LinkBandwidth float64       // bytes/second per NIC
	BaseRTT       time.Duration // round-trip time between two nodes in the rack

	// Geo topology (§6 future work: "build a geo-distributed testbed").
	// Zones splits the nodes into contiguous equal groups (data centers);
	// traffic between different zones pays InterZoneRTT instead of
	// BaseRTT. Zones ≤ 1 is the paper's single rack.
	Zones        int
	InterZoneRTT time.Duration

	// Geo, when non-nil, replaces the flat Zones/InterZoneRTT model with
	// the full rack → DC hierarchy: explicit per-DC node blocks, racks
	// inside each DC, and asymmetric per-direction WAN latency with
	// bounded seeded jitter. Zones and InterZoneRTT are ignored when set
	// (the zone count becomes len(Geo.DCSizes)).
	Geo *GeoTopology

	// Disk
	Disk DiskConfig
}

// DefaultConfig returns hardware parameters calibrated to the paper's
// testbed (Xeon L5640, 1 HDD, GbE, single rack).
func DefaultConfig() Config {
	return Config{
		Nodes:          16,
		CPUSlots:       24, // 2 sockets × 6 cores × 2 threads
		CPUOpCost:      20 * time.Microsecond,
		InternalOpCost: 5 * time.Microsecond,
		MemOpCost:      2 * time.Microsecond,
		ScanRowCost:    2 * time.Microsecond,
		LinkBandwidth:  125e6, // 1 Gbit/s
		BaseRTT:        200 * time.Microsecond,
		Disk:           DefaultDiskConfig(),
	}
}

// Cluster is a rack of nodes sharing a kernel.
type Cluster struct {
	K      *sim.Kernel
	Config Config
	Nodes  []*Node

	// geo carries the WAN jitter streams and partition state; nil
	// without a GeoTopology.
	geo *geoState
}

// New builds a cluster of cfg.Nodes nodes on kernel k.
func New(k *sim.Kernel, cfg Config) *Cluster {
	if cfg.Geo != nil {
		cfg.Zones = len(cfg.Geo.DCSizes)
	}
	if cfg.Zones < 1 {
		cfg.Zones = 1
	}
	c := &Cluster{K: k, Config: cfg}
	if cfg.Geo != nil {
		c.geo = newGeoState(k, cfg)
	}
	for i := 0; i < cfg.Nodes; i++ {
		n := newNode(c, i)
		n.Zone = cfg.zoneOf(i)
		n.Rack = cfg.rackOf(i)
		c.Nodes = append(c.Nodes, n)
	}
	return c
}

// Zones returns the number of zones (data centers) in the topology.
func (c *Cluster) Zones() int { return c.Config.Zones }

// ZoneNodes returns the nodes in the given zone.
func (c *Cluster) ZoneNodes(zone int) []*Node {
	var out []*Node
	for _, n := range c.Nodes {
		if n.Zone == zone {
			out = append(out, n)
		}
	}
	return out
}

// Node is one machine in the rack.
type Node struct {
	ID      int
	Zone    int // data center / region index, 0-based
	Rack    int // rack index within the zone, 0-based (GeoTopology only)
	Name    string
	CPU     *sim.Resource
	Disk    *Disk
	cluster *Cluster
	down    bool

	// nicFreeAt tracks when the NIC finishes serializing the last queued
	// frame; transmissions serialize FIFO without needing a process.
	nicFreeAt sim.Time

	// pausedUntil is the end of the current stop-the-world window (JVM
	// GC); work arriving before it waits. See cluster.StartGC.
	pausedUntil sim.Time

	// BytesSent and BytesReceived count NIC traffic for reporting.
	BytesSent     int64
	BytesReceived int64
}

func newNode(c *Cluster, id int) *Node {
	name := fmt.Sprintf("node%02d", id)
	return &Node{
		ID:      id,
		Name:    name,
		CPU:     sim.NewResource(c.K, name+"/cpu", c.Config.CPUSlots),
		Disk:    NewDisk(c.K, name+"/disk", c.Config.Disk),
		cluster: c,
	}
}

// Cluster returns the cluster the node belongs to.
func (n *Node) Cluster() *Cluster { return n.cluster }

// Down reports whether the node is failed.
func (n *Node) Down() bool { return n.down }

// Fail marks the node as failed: message delivery to it is dropped and
// server code should refuse work. Storage state is retained (a crashed
// node restarts with its disk).
func (n *Node) Fail() { n.down = true }

// Recover clears the failed state.
func (n *Node) Recover() { n.down = false }

// PauseUntil opens a stop-the-world window: Exec calls arriving before t
// wait for it to close.
func (n *Node) PauseUntil(t sim.Time) {
	if t > n.pausedUntil {
		n.pausedUntil = t
	}
}

// Paused reports whether the node is inside a stop-the-world window.
func (n *Node) Paused() bool { return n.cluster.K.Now() < n.pausedUntil }

// Exec consumes base CPU service time for one request on this node,
// first waiting out any stop-the-world window.
func (n *Node) Exec(p *sim.Proc, cost time.Duration) {
	if wait := n.pausedUntil.Sub(p.Now()); wait > 0 {
		p.Sleep(wait)
	}
	n.CPU.Use(p, cost)
}

// ExecTimed is Exec, additionally returning how long the request waited
// before service began — the stop-the-world window plus CPU-slot
// queueing. The tracing layer uses it to attribute coordinator queueing
// separately from coordinator service.
func (n *Node) ExecTimed(p *sim.Proc, cost time.Duration) time.Duration {
	var waited time.Duration
	if wait := n.pausedUntil.Sub(p.Now()); wait > 0 {
		p.Sleep(wait)
		waited = wait
	}
	return waited + n.CPU.UseTimed(p, cost)
}

// ExecDaemon consumes CPU like Exec but ignores stop-the-world windows:
// it models work done by a co-located auxiliary daemon with its own small
// heap (e.g. an HDFS DataNode next to a region server), whose pauses are
// negligible compared to the database JVM's.
func (n *Node) ExecDaemon(p *sim.Proc, cost time.Duration) {
	n.CPU.Use(p, cost)
}

// netDelay computes the one-way delivery delay for a message of size bytes
// from n to dst, including FIFO serialization on n's NIC and propagation
// (inter-zone links pay the wide-area round trip). It advances the NIC
// clock, so concurrent senders see queueing.
func (n *Node) netDelay(dst *Node, size int) time.Duration {
	k := n.cluster.K
	serialize := time.Duration(float64(size) / n.cluster.Config.LinkBandwidth * float64(time.Second))
	start := k.Now()
	if n.nicFreeAt > start {
		start = n.nicFreeAt
	}
	done := start.Add(serialize)
	n.nicFreeAt = done
	prop := n.cluster.Config.BaseRTT / 2
	if g := n.cluster.Config.Geo; g != nil {
		if dst.Zone != n.Zone {
			prop = n.cluster.wanDelay(n.Zone, dst.Zone)
		} else if dst.Rack != n.Rack && g.InterRackRTT > 0 {
			prop = g.InterRackRTT / 2
		}
	} else if dst.Zone != n.Zone && n.cluster.Config.InterZoneRTT > 0 {
		prop = n.cluster.Config.InterZoneRTT / 2
	}
	return done.Sub(k.Now()) + prop
}

// SendTo blocks the calling process for the time it takes a message of the
// given size to travel from n to dst (NIC serialization + propagation).
// It returns false without delay if either endpoint is down or the zones
// are partitioned, modeling a dropped message. Use it when the caller's
// process "carries" the request, e.g. an RPC leg.
func (n *Node) SendTo(p *sim.Proc, dst *Node, size int) bool {
	if n.down || dst.down || n.cluster.zoneCut(n.Zone, dst.Zone) {
		return false
	}
	if dst == n {
		return true // loopback is free
	}
	d := n.netDelay(dst, size)
	n.BytesSent += int64(size)
	p.Sleep(d)
	if dst.down || n.cluster.zoneCut(n.Zone, dst.Zone) {
		return false
	}
	dst.BytesReceived += int64(size)
	return true
}

// Deliver schedules fn to run (in kernel context) after the network delay
// for a message of the given size from n to dst. The caller does not
// block; fn is dropped if either endpoint is down — or the zones are
// partitioned — at send or receive time.
func (n *Node) Deliver(dst *Node, size int, fn func()) {
	if n.down || dst.down || n.cluster.zoneCut(n.Zone, dst.Zone) {
		return
	}
	var d time.Duration
	if dst != n {
		d = n.netDelay(dst, size)
		n.BytesSent += int64(size)
	}
	k := n.cluster.K
	k.After(d, func() {
		if dst.down || n.cluster.zoneCut(n.Zone, dst.Zone) {
			return
		}
		dst.BytesReceived += int64(size)
		fn()
	})
}

// RoundTrip models a full request/response exchange carried by p: request
// of reqSize to dst, handler work executed against dst's resources by the
// same process, then a response of respSize back. It returns false if
// either leg is dropped; handler is skipped in that case.
func (n *Node) RoundTrip(p *sim.Proc, dst *Node, reqSize, respSize int, handler func()) bool {
	if !n.SendTo(p, dst, reqSize) {
		return false
	}
	if handler != nil {
		handler()
	}
	return dst.SendTo(p, n, respSize)
}
