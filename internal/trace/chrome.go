package trace

import (
	"encoding/json"
	"io"
	"strconv"
)

// chromeEvent is one complete ("ph":"X") event in the Chrome trace-event
// JSON format, loadable in chrome://tracing or Perfetto. Timestamps and
// durations are microseconds of virtual time.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	Ts   float64    `json:"ts"`
	Dur  float64    `json:"dur"`
	Pid  int        `json:"pid"`
	Tid  int64      `json:"tid"`
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	Span   string `json:"span"`
	Parent string `json:"parent,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes spans as Chrome trace-event JSON. Root spans are
// named by op class under the "op" category; phase spans by phase name
// under "phase". pid is the cluster node plus one (0 = client/unknown)
// and tid the sim process id, so a trace viewer groups spans by node and
// lays concurrent processes out as separate tracks.
func WriteChrome(w io.Writer, spans []Span) error {
	f := chromeFile{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayUnit: "ms"}
	for _, s := range spans {
		ev := chromeEvent{
			Cat:  "phase",
			Name: s.Phase.String(),
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			Pid:  s.Node + 1,
			Tid:  s.Proc,
			Args: chromeArgs{Span: strconv.FormatUint(s.ID, 16)},
		}
		if s.Root {
			ev.Cat = "op"
			ev.Name = s.Class.String()
		} else if s.Parent != 0 {
			ev.Args.Parent = strconv.FormatUint(s.Parent, 16)
		}
		f.TraceEvents = append(f.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
