package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"cloudbench/internal/sim"
)

// TestNilTracerSafe checks every hook method is a no-op on a nil tracer —
// the contract the nil-gated call sites rely on.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	k := sim.NewKernel(1)
	k.Spawn("op", func(p *sim.Proc) {
		tr.BeginMeasure(0)
		tr.StartOp(p, ClassRead)
		tr.Mark(p, PhaseDigest, 0)
		tr.Phase(p, PhaseStorage, 0, p.Now())
		tr.Interval(p, PhaseFanout, 0, 0, p.Now())
		prev := tr.Mute(p)
		tr.Unmute(p, prev)
		tr.Detach(p)
		tr.EndOp(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// scenario drives a small fixed trace: one read op that sleeps 10ms total
// with a 4ms storage phase recorded by a spawned "replica" process, plus
// one detached background span.
func scenario(tr *Tracer) {
	k := sim.NewKernel(7)
	tr.BeginMeasure(0)
	k.Spawn("client", func(p *sim.Proc) {
		tr.StartOp(p, ClassRead)
		p.Sleep(2 * time.Millisecond)
		k.Spawn("replica", func(q *sim.Proc) {
			t0 := q.Now()
			q.Sleep(4 * time.Millisecond)
			tr.Phase(q, PhaseStorage, 3, t0)
		})
		p.Sleep(8 * time.Millisecond)
		tr.EndOp(p)
	})
	k.Spawn("daemon", func(p *sim.Proc) {
		tr.Detach(p)
		t0 := p.Now()
		p.Sleep(time.Millisecond)
		tr.Phase(p, PhaseHDFS, 5, t0)
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
}

func TestTracerAggregatesClassesAndShares(t *testing.T) {
	tr := New()
	scenario(tr)
	r := tr.Report()

	read := r.Class("read")
	if read == nil || read.Ops != 1 || read.Total != 10*time.Millisecond {
		t.Fatalf("read class = %+v", read)
	}
	st := read.Phase("storage")
	if st == nil || st.Count != 1 || st.Total != 4*time.Millisecond {
		t.Fatalf("storage phase = %+v", st)
	}
	if st.Share < 0.39 || st.Share > 0.41 {
		t.Fatalf("storage share = %v, want 0.4", st.Share)
	}
	bg := r.Class("background")
	if bg == nil || bg.Ops != 0 || bg.Phase("hdfs") == nil {
		t.Fatalf("background class = %+v", bg)
	}
	if bg.Phase("hdfs").Share != 0 {
		t.Fatal("background shares must be 0 (no root denominator)")
	}
	if r.Class("update") != nil || read.Phase("fanout") != nil {
		t.Fatal("classes/phases with no spans must be omitted")
	}
}

func TestMuteSuppressesInnerSpans(t *testing.T) {
	tr := New()
	k := sim.NewKernel(3)
	tr.BeginMeasure(0)
	k.Spawn("client", func(p *sim.Proc) {
		tr.StartOp(p, ClassRead)
		t0 := p.Now()
		prev := tr.Mute(p)
		// Inner work: both direct spans and spans from spawned children
		// must be swallowed while muted.
		tr.Phase(p, PhaseFanout, 1, t0)
		k.Spawn("repair-leg", func(q *sim.Proc) {
			u0 := q.Now()
			q.Sleep(time.Millisecond)
			tr.Phase(q, PhaseStorage, 2, u0)
		})
		p.Sleep(2 * time.Millisecond)
		tr.Unmute(p, prev)
		tr.Phase(p, PhaseReadRepair, 1, t0)
		tr.EndOp(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	read := tr.Report().Class("read")
	if read.Phase("fanout") != nil || read.Phase("storage") != nil {
		t.Fatalf("muted spans leaked: %+v", read.Phases)
	}
	rr := read.Phase("read-repair")
	if rr == nil || rr.Count != 1 || rr.Total != 2*time.Millisecond {
		t.Fatalf("composite repair span = %+v", rr)
	}
}

func TestMeasureWindowGatesWarmup(t *testing.T) {
	tr := New()
	k := sim.NewKernel(5)
	tr.BeginMeasure(sim.Time(5 * time.Millisecond))
	op := func(p *sim.Proc) {
		tr.StartOp(p, ClassUpdate)
		t0 := p.Now()
		p.Sleep(time.Millisecond)
		tr.Phase(p, PhaseWAL, 1, t0)
		tr.EndOp(p)
	}
	k.Spawn("client", func(p *sim.Proc) {
		op(p) // starts at t=0: warmup, excluded
		p.Sleep(10 * time.Millisecond)
		op(p) // inside the window
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	upd := tr.Report().Class("update")
	if upd == nil || upd.Ops != 1 || upd.Phase("wal").Count != 1 {
		t.Fatalf("warmup not excluded: %+v", upd)
	}
}

func TestSpanRetentionAndChromeExport(t *testing.T) {
	tr := New()
	tr.KeepSpans(16)
	scenario(tr)
	spans := tr.Spans()
	if len(spans) != 3 { // storage phase, hdfs phase, read root
		t.Fatalf("retained %d spans: %+v", len(spans), spans)
	}
	var root, storage Span
	for _, s := range spans {
		if s.Root {
			root = s
		}
		if !s.Root && s.Phase == PhaseStorage {
			storage = s
		}
	}
	if root.ID == 0 || storage.Parent != root.ID {
		t.Fatalf("parent linkage broken: root=%+v storage=%+v", root, storage)
	}
	if storage.Node != 3 || storage.Duration() != 4*time.Millisecond {
		t.Fatalf("storage span = %+v", storage)
	}

	var buf bytes.Buffer
	if err := WriteChrome(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded.TraceEvents) != 3 {
		t.Fatalf("chrome events = %d", len(decoded.TraceEvents))
	}
	names := map[string]bool{}
	for _, ev := range decoded.TraceEvents {
		names[ev["name"].(string)] = true
		if ev["ph"] != "X" {
			t.Fatalf("event phase = %v", ev["ph"])
		}
	}
	if !names["read"] || !names["storage"] || !names["hdfs"] {
		t.Fatalf("event names = %v", names)
	}

	small := New()
	small.KeepSpans(1)
	scenario(small)
	if len(small.Spans()) != 1 || small.Dropped() != 2 {
		t.Fatalf("retention bound: kept %d dropped %d", len(small.Spans()), small.Dropped())
	}
}

// TestDeterministicAcrossRetention checks the two determinism properties
// the tracebreak experiment depends on: identical runs produce identical
// span IDs, and enabling retention does not perturb aggregates (RNG
// consumption is independent of KeepSpans).
func TestDeterministicAcrossRetention(t *testing.T) {
	a, b := New(), New()
	a.KeepSpans(64)
	b.KeepSpans(64)
	scenario(a)
	scenario(b)
	if !reflect.DeepEqual(a.Spans(), b.Spans()) {
		t.Fatalf("span sequences differ:\n%+v\n%+v", a.Spans(), b.Spans())
	}
	plain := New()
	scenario(plain)
	if !reflect.DeepEqual(plain.Report(), a.Report()) {
		t.Fatal("retention changed aggregates")
	}
}

// TestDisabledTracerHooksZeroAlloc pins the disabled-path cost of the
// nil-gated hook pattern used on the YCSB and database request paths.
func TestDisabledTracerHooksZeroAlloc(t *testing.T) {
	var tr *Tracer
	k := sim.NewKernel(9)
	k.Spawn("driver", func(p *sim.Proc) {
		allocs := testing.AllocsPerRun(1000, func() {
			var t0 sim.Time
			if tr != nil {
				tr.StartOp(p, ClassRead)
				t0 = p.Now()
			}
			if tr != nil {
				tr.Phase(p, PhaseStorage, 1, t0)
				tr.EndOp(p)
			}
		})
		if allocs != 0 {
			t.Errorf("disabled tracer hook pattern allocates %.1f/op", allocs)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
