// Package trace implements deterministic, sim-clock request tracing with
// per-phase latency decomposition.
//
// Each YCSB operation opens a root span; the database request paths record
// child spans for every phase they pass through (coordinator queueing,
// replica fan-out, WAL sync, storage service, read repair, ...). Span
// attribution follows the kernel's causal spawn tree: a process spawned
// while handling a traced op inherits the op's trace context, so work done
// on remote replicas — or asynchronously after the op acked, like
// background read repair — is still billed to the op class that caused it.
// Work with no originating op (flushes, compactions, hint replay) records
// under a synthetic "background" class.
//
// Everything is deterministic in virtual time: timestamps come from the
// sim clock and span IDs are drawn from the recording process's seeded
// RNG, so traces are bit-identical across runs and -parallel settings.
//
// The Tracer is a nil-gated hook: a nil *Tracer is safe to call, and call
// sites additionally guard with `if tracer != nil` (enforced by the
// hookguard analyzer) so the disabled path costs one branch and zero
// allocations.
package trace

import (
	"time"

	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
)

// OpClass is the workload class a span is attributed to. The first five
// values mirror the YCSB operation types; ClassBackground collects work
// that no in-flight op caused (or that explicitly detached).
type OpClass uint8

const (
	ClassRead OpClass = iota
	ClassUpdate
	ClassInsert
	ClassScan
	ClassReadModifyWrite
	ClassBackground
	NumClasses int = iota
)

var classNames = [NumClasses]string{
	"read", "update", "insert", "scan", "rmw", "background",
}

func (c OpClass) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return "unknown"
}

// Phase identifies a request stage. The taxonomy covers both databases;
// a phase that a given system never enters (e.g. fanout on an HBase read)
// simply records zero spans, which is itself a finding.
type Phase uint8

const (
	// PhaseCoordQueue is time spent queued at the coordinating node
	// before service: CPU-slot contention plus stop-the-world pauses.
	PhaseCoordQueue Phase = iota
	// PhaseCoord is coordinator/region-server CPU service.
	PhaseCoord
	// PhaseFanout is replica RPC fan-out: request and response network
	// legs between the coordinator and its replicas or memstore peers.
	PhaseFanout
	// PhaseWAL is a synchronous write-ahead-log (commit log) append.
	PhaseWAL
	// PhaseStorage is storage-engine service on a replica: memtable or
	// SSTable reads and replica-side apply CPU.
	PhaseStorage
	// PhaseDigest marks a digest mismatch detected on a quorum-style
	// read (zero-duration; the count is the signal).
	PhaseDigest
	// PhaseReadRepair is read repair: the blocking repair a mismatched
	// read performs inline, plus the background repair of the remaining
	// replicas. Recorded as one composite span per repair.
	PhaseReadRepair
	// PhaseHintReplay is hinted-handoff replay toward a recovered node.
	PhaseHintReplay
	// PhaseHDFS is one HDFS write-pipeline hop (flush/compaction output
	// replication).
	PhaseHDFS
	// PhaseAsyncJob is one asynchronous replication job delivery: an
	// object server pushing an already-acked mutation to a peer replica
	// after the client ack (objstore's ack-then-replicate path, including
	// updater retries of spilled jobs). Recorded as one composite span
	// per delivery with its internal legs muted.
	PhaseAsyncJob
	// PhaseAntiEntropy is one anti-entropy partition sync: a periodic
	// replicator exchanging per-partition version digests with a peer and
	// pushing the versions the peer misses.
	PhaseAntiEntropy
	// PhaseWAN is one cross-datacenter network leg: a mutation forward,
	// ack, or read RPC crossing a WAN link. Splitting DC hops out of the
	// generic fanout phase is what lets tracebreak attribute cross-DC
	// latency mechanically; single-DC experiments record zero wan spans.
	PhaseWAN
	NumPhases int = iota
)

var phaseNames = [NumPhases]string{
	"coord-queue", "coord", "fanout", "wal", "storage",
	"digest", "read-repair", "hint-replay", "hdfs",
	"async-job", "anti-entropy", "wan",
}

func (ph Phase) String() string {
	if int(ph) < NumPhases {
		return phaseNames[ph]
	}
	return "unknown"
}

// PhaseNames returns the phase labels in Phase order.
func PhaseNames() []string {
	return append([]string(nil), phaseNames[:]...)
}

// Span is one recorded trace interval. Root spans cover a whole op;
// child spans cover one phase and point at their root via Parent.
type Span struct {
	ID     uint64
	Parent uint64 // 0 for roots and background spans
	Class  OpClass
	Phase  Phase // meaningful for non-root spans only
	Root   bool
	Node   int   // cluster node id, -1 when client-side/unknown
	Proc   int64 // sim process id that recorded the span
	Start  sim.Time
	End    sim.Time

	measured bool
}

// Duration returns the span's length in virtual time.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// spanCtx is the per-process trace context carried opaquely by sim.Proc
// and inherited across Spawn. root is nil for background-attributed work;
// muted suppresses phase recording so composite phases (read repair, hint
// replay) are billed once by their driver instead of double-counted
// through their internal RPC and storage sub-phases.
type spanCtx struct {
	root  *Span
	muted bool
}

// classAgg accumulates one op class: the root-latency histogram plus a
// per-phase Breakdown.
type classAgg struct {
	root   stats.Histogram
	phases *stats.Breakdown
}

// Tracer aggregates spans per (class, phase) and optionally retains raw
// spans for export. All methods are nil-safe.
//
//simlint:hook
type Tracer struct {
	measuring    bool
	measureStart sim.Time
	classes      [NumClasses]classAgg
	keep         int
	spans        []Span
	dropped      int64
}

// New returns an empty tracer.
func New() *Tracer {
	t := &Tracer{}
	for i := range t.classes {
		t.classes[i].phases = stats.NewBreakdown(phaseNames[:]...)
	}
	return t
}

// KeepSpans enables raw span retention, keeping up to n spans in record
// order (further spans are counted as dropped). Retention does not change
// RNG consumption, so aggregates are identical with retention on or off.
func (t *Tracer) KeepSpans(n int) {
	t.keep = n
	t.spans = make([]Span, 0, n)
}

// BeginMeasure starts the measurement window: only ops whose root span
// starts at or after 'at' — and background spans starting then — are
// aggregated. Mirrors the consistency oracle's warmup handling.
func (t *Tracer) BeginMeasure(at sim.Time) {
	if t == nil {
		return
	}
	t.measuring = true
	t.measureStart = at
}

// StartOp opens a root span for an op of the given class on p. The span
// ID comes from p's seeded RNG, so ID sequences are deterministic.
func (t *Tracer) StartOp(p *sim.Proc, class OpClass) {
	if t == nil {
		return
	}
	now := p.Now()
	s := &Span{
		ID:    p.Rand().Uint64(),
		Class: class,
		Root:  true,
		Node:  -1,
		Proc:  p.ID(),
		Start: now,
	}
	s.measured = t.measuring && now >= t.measureStart
	p.SetTraceCtx(&spanCtx{root: s})
}

// EndOp closes p's root span, records its latency, and clears the
// context.
func (t *Tracer) EndOp(p *sim.Proc) {
	if t == nil {
		return
	}
	sc, _ := p.TraceCtx().(*spanCtx)
	p.SetTraceCtx(nil)
	if sc == nil || sc.root == nil {
		return
	}
	s := sc.root
	s.End = p.Now()
	if !s.measured {
		return
	}
	t.classes[s.Class].root.Record(s.End.Sub(s.Start))
	t.retain(*s)
}

// Interval records one phase span covering [start, end] on node, billed
// to the op class p's context is attributed to (background if detached).
// Muted contexts record nothing.
func (t *Tracer) Interval(p *sim.Proc, ph Phase, node int, start, end sim.Time) {
	if t == nil {
		return
	}
	class := ClassBackground
	measured := t.measuring && start >= t.measureStart
	var parent uint64
	if c := p.TraceCtx(); c != nil {
		sc := c.(*spanCtx)
		if sc.muted {
			return
		}
		if sc.root != nil {
			class = sc.root.Class
			measured = sc.root.measured
			parent = sc.root.ID
		}
	}
	// Draw the span ID before the measurement gate so RNG consumption —
	// and therefore everything downstream of it — does not depend on
	// where the warmup boundary falls.
	id := p.Rand().Uint64()
	if !measured {
		return
	}
	t.classes[class].phases.Record(int(ph), end.Sub(start))
	if t.keep > 0 {
		t.retain(Span{
			ID: id, Parent: parent, Class: class, Phase: ph,
			Node: node, Proc: p.ID(), Start: start, End: end,
		})
	}
}

// Phase records a phase span from start to now.
func (t *Tracer) Phase(p *sim.Proc, ph Phase, node int, start sim.Time) {
	if t == nil {
		return
	}
	t.Interval(p, ph, node, start, p.Now())
}

// Mark records a zero-duration marker span (e.g. a digest mismatch).
func (t *Tracer) Mark(p *sim.Proc, ph Phase, node int) {
	if t == nil {
		return
	}
	now := p.Now()
	t.Interval(p, ph, node, now, now)
}

// Mute suppresses phase recording for p and everything it spawns until
// Unmute, so a composite phase's driver can record one span for the whole
// operation instead of double-counting its internal sub-phases. Returns
// the previous context for Unmute.
func (t *Tracer) Mute(p *sim.Proc) any {
	if t == nil {
		return nil
	}
	prev := p.TraceCtx()
	var root *Span
	if sc, ok := prev.(*spanCtx); ok {
		root = sc.root
	}
	p.SetTraceCtx(&spanCtx{root: root, muted: true})
	return prev
}

// Unmute restores the context saved by Mute.
func (t *Tracer) Unmute(p *sim.Proc, prev any) {
	if t == nil {
		return
	}
	p.SetTraceCtx(prev)
}

// Detach drops p's inherited op attribution: subsequent spans recorded by
// p (and processes it spawns) bill to the background class. Long-lived
// daemons spawned from request paths call this at startup.
func (t *Tracer) Detach(p *sim.Proc) {
	if t == nil {
		return
	}
	p.SetTraceCtx(nil)
}

// retain appends a span to the retained set, bounded by KeepSpans.
func (t *Tracer) retain(s Span) {
	if t.keep <= 0 {
		return
	}
	if len(t.spans) >= t.keep {
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// Spans returns the retained spans in record order.
func (t *Tracer) Spans() []Span { return t.spans }

// Dropped returns how many spans were discarded after the retention
// buffer filled.
func (t *Tracer) Dropped() int64 { return t.dropped }

// PhaseStat summarizes one phase within one op class.
type PhaseStat struct {
	Phase string
	Count int64
	Total time.Duration
	// Share is Total as a fraction of the class's summed root latency
	// (0 for the background class, which has no roots). Phases that
	// overlap or run in parallel can push the sum of shares past 1.
	Share    float64
	P50, P99 time.Duration
}

// ClassStat summarizes one op class: root-latency stats plus the phases
// observed inside it.
type ClassStat struct {
	Class  string
	Ops    int64
	Total  time.Duration
	Mean   time.Duration
	P99    time.Duration
	Phases []PhaseStat
}

// Phase returns the named phase's stats, or nil if it recorded nothing.
func (c *ClassStat) Phase(name string) *PhaseStat {
	for i := range c.Phases {
		if c.Phases[i].Phase == name {
			return &c.Phases[i]
		}
	}
	return nil
}

// Report is the tracer's aggregate view, in fixed class order.
type Report struct {
	Classes []ClassStat
}

// Class returns the named class's stats, or nil if it recorded nothing.
func (r Report) Class(name string) *ClassStat {
	for i := range r.Classes {
		if r.Classes[i].Class == name {
			return &r.Classes[i]
		}
	}
	return nil
}

// Report snapshots the aggregates. Classes and phases with no recorded
// spans are omitted; iteration order is fixed (class, then phase index),
// so rendering a report is deterministic.
func (t *Tracer) Report() Report {
	var r Report
	for ci := range t.classes {
		agg := &t.classes[ci]
		cs := ClassStat{
			Class: OpClass(ci).String(),
			Ops:   agg.root.Count(),
			Total: agg.root.Sum(),
			Mean:  agg.root.Mean(),
			P99:   agg.root.Percentile(99),
		}
		for pi := 0; pi < agg.phases.Lanes(); pi++ {
			lane := agg.phases.Lane(pi)
			if lane.Count() == 0 {
				continue
			}
			ps := PhaseStat{
				Phase: agg.phases.Label(pi),
				Count: lane.Count(),
				Total: lane.Sum(),
				P50:   lane.Percentile(50),
				P99:   lane.Percentile(99),
			}
			if cs.Total > 0 {
				ps.Share = float64(ps.Total) / float64(cs.Total)
			}
			cs.Phases = append(cs.Phases, ps)
		}
		if cs.Ops == 0 && len(cs.Phases) == 0 {
			continue
		}
		r.Classes = append(r.Classes, cs)
	}
	return r
}
