package core

import (
	"fmt"
	"time"

	"cloudbench/internal/cassandra"
	"cloudbench/internal/cluster"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

// Megascale is the ROADMAP's "one huge deployment": a paper-scale
// Cassandra cluster — hundreds of database machines, RF 3, on the order
// of a million YCSB client processes — partitioned across member kernels
// by cluster.PlanShards rather than shardscale's synthetic equal cells.
// The deployment is laid out as one geo topology (one DC per segment on a
// WAN chain), PlanShards derives the shard map and the per-pair delivery
// floors from it, and those floors are what the adaptive window engine
// widens on: far-apart segments exchange messages rarely and cheaply, so
// their windows grow far beyond the global minimum lookahead.
//
// Clients are not long-lived threads but a churn of short sessions
// (ycsb.RunSessions): each arrives, runs a handful of operations, and
// exits, with a bounded number alive per segment. A full run spawns
// ~Sessions client processes through the kernels' pooled proc workers.

// MegaScaleOptions sizes one megascale deployment.
type MegaScaleOptions struct {
	Seed   int64
	Shards int // member kernels; one DC/segment per shard

	// Nodes is the total count of database machines, split evenly across
	// segments (each segment also gets one client machine). Must be
	// divisible by Shards.
	Nodes int

	// Sessions is the total number of client processes spawned across the
	// deployment; LiveSessions bounds how many are alive at once (split
	// evenly across segments), and each runs OpsPerSession operations.
	Sessions      int64
	LiveSessions  int
	OpsPerSession int64

	RecordsPerSegment int64
	Replication       int

	// RemoteEvery sends every RemoteEvery'th read to the next segment on
	// the chain (wrapping at the end), paying that pair's WAN floor each
	// way. 0 disables.
	RemoteEvery int

	// WANRTT is the adjacent-DC round trip of the WAN chain
	// (cluster.WANChain) the segments sit on.
	WANRTT time.Duration

	// Workers caps the group's pinned worker goroutines; 0 means one per
	// available CPU.
	Workers int

	Cluster cluster.Config
}

// DefaultMegaScaleOptions returns the full deployment: 512 database
// machines (the paper-scale "500 nodes" rounded so every power-of-two
// shard count divides it evenly), RF 3, and one million client sessions.
// Expect minutes of wall clock; tests and CI smoke use MegaSmokeOptions.
func DefaultMegaScaleOptions() MegaScaleOptions {
	ccfg := cluster.DefaultConfig()
	ccfg.CPUSlots = 8
	ccfg.CPUOpCost = 200 * time.Microsecond
	ccfg.InternalOpCost = 100 * time.Microsecond
	return MegaScaleOptions{
		Seed:              1,
		Shards:            1,
		Nodes:             512,
		Sessions:          1_000_000,
		LiveSessions:      2_048,
		OpsPerSession:     2,
		RecordsPerSegment: 2_000,
		Replication:       3,
		RemoteEvery:       20,
		WANRTT:            80 * time.Millisecond,
		Cluster:           ccfg,
	}
}

// MegaSmokeOptions returns a cell small enough for unit tests and the CI
// smoke job while keeping every megascale mechanism live: multiple
// segments, session churn, and cross-segment reads.
func MegaSmokeOptions() MegaScaleOptions {
	o := DefaultMegaScaleOptions()
	o.Nodes = 16
	o.Sessions = 2_000
	o.LiveSessions = 64
	o.RecordsPerSegment = 300
	return o
}

// MegaScaleSegment is one segment's measured slice of the run.
type MegaScaleSegment struct {
	Nodes       int
	Sessions    int64
	Ops         int64
	Throughput  float64 // simulated ops/second over the measured window
	MeanLatency time.Duration
	RemoteReads int64
	Errors      int64
	NotFound    int64
}

// MegaScaleResult aggregates a megascale run.
type MegaScaleResult struct {
	Shards   int
	Segments []MegaScaleSegment

	Sessions    int64
	TotalOps    int64
	RemoteReads int64
	Errors      int64
	// Throughput sums the segments' simulated throughputs.
	Throughput float64
	// Windows is the number of conservative barriers the group executed —
	// the number adaptive widening pushes down.
	Windows int64
}

// Table renders the per-segment breakdown plus a totals row — the CSV the
// CI scale job archives next to BENCH_scale.json.
func (r MegaScaleResult) Table() *stats.Table {
	t := stats.NewTable("Megascale — partitioned Cassandra deployment, session churn per segment (DESIGN §14)",
		"segment", "nodes", "sessions", "measured-ops", "simops/s", "mean-latency", "remote-reads", "not-found", "errors")
	for i, s := range r.Segments {
		t.AddRow(i, s.Nodes, s.Sessions, s.Ops, s.Throughput, s.MeanLatency, s.RemoteReads, s.NotFound, s.Errors)
	}
	nodes := 0
	for _, s := range r.Segments {
		nodes += s.Nodes
	}
	t.AddRow("total", nodes, r.Sessions, r.TotalOps, r.Throughput, "-", r.RemoteReads, "-", r.Errors)
	return t
}

// megaSegment is one segment under construction: its own LAN cluster and
// database on its own member kernel, per the shard plan.
type megaSegment struct {
	shard      *sim.Shard
	db         *cassandra.DB
	clientNode *cluster.Node
	w          *ycsb.Workload
	// server handles reads arriving from other segments; it lives on this
	// segment's shard and is only ever used by code delivered here.
	server kv.Client
	result ycsb.Result
	remote int64
}

// RunMegaScale builds the deployment and runs the session churn to
// completion. Every output is a pure function of the options — shard
// worker count and adaptive windows change wall clock only.
func RunMegaScale(o MegaScaleOptions) (MegaScaleResult, error) {
	s := o.Shards
	if s < 1 {
		s = 1
	}
	if o.Nodes%s != 0 {
		return MegaScaleResult{}, fmt.Errorf("megascale: %d nodes not divisible into %d segments", o.Nodes, s)
	}
	nodesPer := o.Nodes / s
	sessionsPer := o.Sessions / int64(s)
	livePer := o.LiveSessions / s
	if livePer < 1 {
		livePer = 1
	}

	// The deployment topology: one DC per segment (its servers plus its
	// client machine) on a WAN chain. PlanShards recovers the contiguous
	// DC blocks as the shard map and derives the global and per-pair
	// conservative floors from the WAN matrix.
	topo := o.Cluster
	topo.Nodes = o.Nodes + s
	if s > 1 {
		sizes := make([]int, s)
		for i := range sizes {
			sizes[i] = nodesPer + 1
		}
		topo.Geo = &cluster.GeoTopology{
			DCSizes:   sizes,
			WANOneWay: cluster.WANChain(s, o.WANRTT),
		}
	}
	plan := cluster.PlanShards(topo, s)
	g := sim.NewShardGroup(o.Seed, plan.Shards, plan.Lookahead)
	g.SetPairLookahead(plan.PairLookahead)
	g.SetWorkers(o.Workers)

	segs := make([]*megaSegment, s)
	for i := 0; i < s; i++ {
		shard := g.Shard(i)
		k := shard.Kernel()
		// Each segment is a standalone LAN cluster on its member kernel;
		// the WAN between segments lives in the group's delivery floors.
		ccfg := o.Cluster
		ccfg.Nodes = nodesPer + 1
		clus := cluster.New(k, ccfg)
		servers := clus.Nodes[:nodesPer]
		clientNode := clus.Nodes[nodesPer]

		cfg := cassandra.DefaultConfig()
		cfg.Replication = o.Replication
		cfg.Engine.CacheBytes = 4 << 20
		cfg.Engine.MemtableBytes = 256 << 10
		cfg.Engine.SyncWAL = false
		db := cassandra.New(k, cfg, servers)

		segs[i] = &megaSegment{
			shard:      shard,
			db:         db,
			clientNode: clientNode,
			w:          ycsb.NewWorkload(ycsb.ReadMostly(o.RecordsPerSegment)),
			server:     db.NewClient(clientNode),
		}
	}

	for i := 0; i < s; i++ {
		seg := segs[i]
		dst := segs[(i+1)%s]
		every := o.RemoteEvery
		if s == 1 {
			every = 0 // a lone segment has no one to read from
		}
		loadThreads := livePer
		seg.shard.Kernel().Spawn("megascale-driver", func(p *sim.Proc) {
			local := func() kv.Client { return seg.db.NewClient(seg.clientNode) }
			ycsb.Load(p, local, seg.w, loadThreads, 0, seg.w.Spec.RecordCount)
			seg.db.FlushAll()
			p.Sleep(quiesce)
			mixed := func() kv.Client {
				return &remoteMixClient{
					Client: seg.db.NewClient(seg.clientNode),
					src:    seg.shard, dst: dst.shard, server: dst.server,
					remote: &seg.remote, every: every,
				}
			}
			seg.result = ycsb.RunSessions(p, mixed, seg.w, ycsb.SessionConfig{
				Sessions:       sessionsPer,
				Live:           livePer,
				OpsPerSession:  o.OpsPerSession,
				WarmupFraction: 0.05,
			})
		})
	}
	if err := g.Run(); err != nil {
		return MegaScaleResult{}, err
	}

	res := MegaScaleResult{Shards: s, Windows: g.Windows()}
	for _, seg := range segs {
		r := seg.result
		res.Segments = append(res.Segments, MegaScaleSegment{
			Nodes:       nodesPer,
			Sessions:    sessionsPer,
			Ops:         r.MeasuredOps,
			Throughput:  r.Throughput,
			MeanLatency: r.MeanLatency(),
			RemoteReads: seg.remote,
			Errors:      r.Errors,
			NotFound:    r.NotFound,
		})
		res.Sessions += sessionsPer
		res.TotalOps += r.MeasuredOps
		res.RemoteReads += seg.remote
		res.Errors += r.Errors
		res.Throughput += r.Throughput
	}
	return res, nil
}
