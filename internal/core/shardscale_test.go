package core

import (
	"reflect"
	"testing"
)

func smokeShardScaleOptions() ShardScaleOptions {
	o := DefaultShardScaleOptions()
	o.TotalNodes = 16
	o.TotalThreads = 64
	o.TotalOps = 2_000
	o.RecordsPerSegment = 400
	return o
}

// TestShardScaleRuns checks the partitioned cell end to end at several
// shard counts: the run completes, every segment measures ops, and the
// cross-segment read traffic actually flows through the group's delivery
// API (remote reads nonzero, no errors).
func TestShardScaleRuns(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		o := smokeShardScaleOptions()
		o.Shards = shards
		res, err := RunShardScale(o)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(res.Segments) != shards {
			t.Fatalf("shards=%d: %d segments", shards, len(res.Segments))
		}
		if res.Errors != 0 {
			t.Errorf("shards=%d: %d errors", shards, res.Errors)
		}
		for i, seg := range res.Segments {
			if seg.Ops == 0 {
				t.Errorf("shards=%d segment %d measured no ops", shards, i)
			}
		}
		if shards > 1 && res.RemoteReads == 0 {
			t.Errorf("shards=%d: no cross-segment reads flowed", shards)
		}
		if shards == 1 && res.RemoteReads != 0 {
			t.Errorf("shards=1: %d remote reads from a lone segment", res.RemoteReads)
		}
	}
}

// TestShardScaleDeterministic pins determinism for a fixed shard count:
// repeated runs with the same seed must agree exactly — ops, throughput
// bits, latencies, remote-read counts — whatever the host scheduling.
func TestShardScaleDeterministic(t *testing.T) {
	o := smokeShardScaleOptions()
	o.Shards = 4
	a, err := RunShardScale(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShardScale(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed shardscale runs differ:\n  a: %+v\n  b: %+v", a, b)
	}
}
