package core

import (
	"testing"
	"time"

	"cloudbench/internal/objstore"
)

// TestSpectrumCellsCanonicalOrder pins the grid enumeration the CSV and
// the bit-identity gates depend on.
func TestSpectrumCellsCanonicalOrder(t *testing.T) {
	o := SmokeOptions()
	cells := spectrumCells(o)
	// Per workload: HBase + 3 Cassandra levels + read-quorum + RF sweep +
	// extra intervals; then one fault cell per interval.
	perWorkload := 1 + 3 + 1 + len(o.ReplicationFactors) + len(o.SpectrumReplIntervals) - 1
	want := 2*perWorkload + len(o.SpectrumReplIntervals)
	if len(cells) != want {
		t.Fatalf("spectrumCells = %d cells, want %d", len(cells), want)
	}
	if cells[0].db != "HBase" || cells[0].spec.Name != "read-latest" {
		t.Fatalf("first cell = %s/%s, want HBase/read-latest", cells[0].db, cells[0].spec.Name)
	}
	last := cells[len(cells)-1]
	if !last.fault || last.db != "ObjStore" ||
		last.interval != o.SpectrumReplIntervals[len(o.SpectrumReplIntervals)-1] {
		t.Fatalf("last cell = %+v, want the slowest-interval fault cell", last)
	}
	for _, c := range cells {
		if c.db == "ObjStore" && c.interval == 0 {
			t.Fatalf("objstore cell without interval: %+v", c)
		}
		if c.fault && (c.spec.Name != "read-update" || c.mode != objstore.ReadOne) {
			t.Fatalf("fault cell = %+v, want read-update/read-one", c)
		}
	}
}

// TestSpectrumSmoke runs the full grid at smoke scale and checks the
// qualitative findings hold end to end.
func TestSpectrumSmoke(t *testing.T) {
	o := SmokeOptions()
	results, err := RunSpectrum(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(spectrumCells(o)) {
		t.Fatalf("results = %d, want %d", len(results), len(spectrumCells(o)))
	}
	for _, m := range results {
		if m.Runtime <= 0 || m.Consistency.Reads == 0 {
			t.Errorf("cell %s/%s/%s rf%d: throughput=%.0f reads=%d — did not run",
				m.DB, m.Workload, m.Level, m.RF, m.Runtime, m.Consistency.Reads)
		}
		if m.DB == "ObjStore" && m.Consistency.WritesAcked == 0 {
			t.Errorf("objstore cell %s/%s rf%d: no writes observed", m.Workload, m.Level, m.RF)
		}
	}
	if testing.Verbose() {
		t.Log("\n" + results.Table().String())
	}
	for _, f := range CheckSpectrum(o, results) {
		t.Log(f.String())
		if !f.Pass {
			t.Errorf("finding %s failed: %s", f.ID, f.Detail)
		}
	}
}

// TestSpectrumObjstoreAsyncAccounting: the oracle attached to an
// object-store cell runs under AckAsync semantics, so backwards reads
// explained by in-flight replication surface as async regressions, never
// monotonicity violations.
func TestSpectrumObjstoreAsyncAccounting(t *testing.T) {
	o := SmokeOptions()
	res, err := runSpectrumCell(o, spectrumCell{
		db: "ObjStore", mode: objstore.ReadOne, rf: 3,
		interval: 500 * time.Millisecond, spec: auditSpecs(o)[0],
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistency.MonotonicViolations != 0 {
		t.Errorf("monotonic violations = %d under AckAsync, want 0 (async regressions = %d)",
			res.Consistency.MonotonicViolations, res.Consistency.AsyncRegressions)
	}
}
