package core

import (
	"fmt"
	"time"

	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

// AblationReadRepair isolates the cause of the paper's F4 finding (§4.1:
// Cassandra read latency rising beyond RF 3): it reruns the micro
// update+read pipeline at each replication factor with read repair on and
// off. The "off" series should flatten.
func AblationReadRepair(o Options) (*stats.Figure, error) {
	f := stats.NewFigure("Ablation A1 — Cassandra micro read latency vs RF, read repair on/off",
		"replication-factor", "mean read latency (µs)")
	for _, mode := range []struct {
		name   string
		chance float64
	}{{"read-repair-on", o.ReadRepairChance}, {"read-repair-off", 0}} {
		opts := o
		opts.ReadRepairChance = mode.chance
		s := f.AddSeries(mode.name)
		for _, rf := range o.ReplicationFactors {
			res, err := runFig1Round(opts, "Cassandra", rf)
			if err != nil {
				return nil, fmt.Errorf("ablation read-repair rf=%d: %w", rf, err)
			}
			s.Add(float64(rf), float64(res.get("Cassandra", "read", rf).Microseconds()))
		}
	}
	return f, nil
}

// AblationHBaseSyncRepl isolates the cause of F2 (§4.1: HBase write
// latency flat in RF because replication is in-memory): it reruns the
// micro update test with the paper-described in-memory replication versus
// synchronous disk replication. The sync series should climb with RF.
func AblationHBaseSyncRepl(o Options) (*stats.Figure, error) {
	f := stats.NewFigure("Ablation A2 — HBase micro update latency vs RF, in-memory vs sync replication",
		"replication-factor", "mean update latency (µs)")
	for _, mode := range []struct {
		name string
		mem  bool
	}{{"in-memory-replication", true}, {"synchronous-replication", false}} {
		opts := o
		opts.MemReplication = mode.mem
		s := f.AddSeries(mode.name)
		for _, rf := range o.ReplicationFactors {
			res, err := runFig1Round(opts, "HBase", rf)
			if err != nil {
				return nil, fmt.Errorf("ablation sync-repl rf=%d: %w", rf, err)
			}
			s.Add(float64(rf), float64(res.get("HBase", "update", rf).Microseconds()))
		}
	}
	return f, nil
}

// AblationClientThreads reproduces the §3.1 methodology warning: with a
// fixed offered load, too few client threads inflate measured latency for
// non-database reasons (requests queue in the client). It sweeps the
// thread count at a constant target throughput against HBase.
func AblationClientThreads(o Options, threadCounts []int, target float64) (*stats.Figure, error) {
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4, 8, 16, 32}
	}
	f := stats.NewFigure(
		fmt.Sprintf("Ablation A3 — intended latency vs client threads at %d ops/s offered", int(target)),
		"client-threads", "mean intended latency (µs)")
	s := f.AddSeries("HBase read-mostly")
	for _, threads := range threadCounts {
		spec := ycsb.ReadMostly(o.StressRecords)
		d := deployHBase(o, 3, spec)
		var mean time.Duration
		err := d.drive(func(p *sim.Proc) {
			w := ycsb.NewWorkload(spec)
			d.loadAndSettle(p, w, o.Threads)
			run := ycsb.NewWorkload(ycsb.ReadMostly(w.Inserted()))
			res := ycsb.Run(p, d.newClient, run, ycsb.RunConfig{
				Threads:          threads,
				Ops:              o.StressOps,
				TargetThroughput: target,
				WarmupFraction:   o.WarmupFraction,
			})
			// Intended latency (from each op's scheduled start) is what
			// exposes client-side queueing when threads are too few.
			mean = res.Intended.Mean()
		})
		if err != nil {
			return nil, fmt.Errorf("ablation threads=%d: %w", threads, err)
		}
		s.Add(float64(threads), float64(mean.Microseconds()))
	}
	return f, nil
}
