package core

import (
	"fmt"
	"time"

	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

// AblationReadRepair isolates the cause of the paper's F4 finding (§4.1:
// Cassandra read latency rising beyond RF 3): it reruns the micro
// update+read pipeline at each replication factor with read repair on and
// off. The "off" series should flatten.
func AblationReadRepair(o Options) (*stats.Figure, error) {
	modes := []struct {
		name   string
		chance float64
	}{{"read-repair-on", o.ReadRepairChance}, {"read-repair-off", 0}}
	f := stats.NewFigure("Ablation A1 — Cassandra micro read latency vs RF, read repair on/off",
		"replication-factor", "mean read latency (µs)")
	cells := abCells(len(modes), o.ReplicationFactors)
	vals, err := runCells(o.workers(), len(cells), func(i int) (float64, error) {
		c := cells[i]
		opts := o
		opts.ReadRepairChance = modes[c.mode].chance
		res, err := runFig1Round(opts, "Cassandra", c.rf)
		if err != nil {
			return 0, fmt.Errorf("ablation read-repair rf=%d: %w", c.rf, err)
		}
		return float64(res.get("Cassandra", "read", c.rf).Microseconds()), nil
	})
	if err != nil {
		return nil, err
	}
	for mi, mode := range modes {
		s := f.AddSeries(mode.name)
		for ri, rf := range o.ReplicationFactors {
			s.Add(float64(rf), vals[mi*len(o.ReplicationFactors)+ri])
		}
	}
	return f, nil
}

// abCell is one (mode, replication factor) point of an ablation sweep.
type abCell struct {
	mode int
	rf   int
}

// abCells enumerates a mode × RF ablation grid in mode-major order, which
// matches the legacy sequential nesting (outer mode loop, inner RF loop).
func abCells(modes int, rfs []int) []abCell {
	cells := make([]abCell, 0, modes*len(rfs))
	for m := 0; m < modes; m++ {
		for _, rf := range rfs {
			cells = append(cells, abCell{mode: m, rf: rf})
		}
	}
	return cells
}

// AblationHBaseSyncRepl isolates the cause of F2 (§4.1: HBase write
// latency flat in RF because replication is in-memory): it reruns the
// micro update test with the paper-described in-memory replication versus
// synchronous disk replication. The sync series should climb with RF.
func AblationHBaseSyncRepl(o Options) (*stats.Figure, error) {
	modes := []struct {
		name string
		mem  bool
	}{{"in-memory-replication", true}, {"synchronous-replication", false}}
	f := stats.NewFigure("Ablation A2 — HBase micro update latency vs RF, in-memory vs sync replication",
		"replication-factor", "mean update latency (µs)")
	cells := abCells(len(modes), o.ReplicationFactors)
	vals, err := runCells(o.workers(), len(cells), func(i int) (float64, error) {
		c := cells[i]
		opts := o
		opts.MemReplication = modes[c.mode].mem
		res, err := runFig1Round(opts, "HBase", c.rf)
		if err != nil {
			return 0, fmt.Errorf("ablation sync-repl rf=%d: %w", c.rf, err)
		}
		return float64(res.get("HBase", "update", c.rf).Microseconds()), nil
	})
	if err != nil {
		return nil, err
	}
	for mi, mode := range modes {
		s := f.AddSeries(mode.name)
		for ri, rf := range o.ReplicationFactors {
			s.Add(float64(rf), vals[mi*len(o.ReplicationFactors)+ri])
		}
	}
	return f, nil
}

// AblationClientThreads reproduces the §3.1 methodology warning: with a
// fixed offered load, too few client threads inflate measured latency for
// non-database reasons (requests queue in the client). It sweeps the
// thread count at a constant target throughput against HBase.
func AblationClientThreads(o Options, threadCounts []int, target float64) (*stats.Figure, error) {
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4, 8, 16, 32}
	}
	f := stats.NewFigure(
		fmt.Sprintf("Ablation A3 — intended latency vs client threads at %d ops/s offered", int(target)),
		"client-threads", "mean intended latency (µs)")
	s := f.AddSeries("HBase read-mostly")
	vals, err := runCells(o.workers(), len(threadCounts), func(i int) (float64, error) {
		threads := threadCounts[i]
		spec := ycsb.ReadMostly(o.StressRecords)
		d := deployHBase(o, 3, spec)
		var mean time.Duration
		err := d.drive(func(p *sim.Proc) {
			w := ycsb.NewWorkload(spec)
			d.loadAndSettle(p, w, o.Threads)
			run := ycsb.NewWorkload(ycsb.ReadMostly(w.Inserted()))
			res := ycsb.Run(p, d.newClient, run, ycsb.RunConfig{
				Threads:          threads,
				Ops:              o.StressOps,
				TargetThroughput: target,
				WarmupFraction:   o.WarmupFraction,
			})
			// Intended latency (from each op's scheduled start) is what
			// exposes client-side queueing when threads are too few.
			mean = res.Intended.Mean()
		})
		if err != nil {
			return 0, fmt.Errorf("ablation threads=%d: %w", threads, err)
		}
		return float64(mean.Microseconds()), nil
	})
	if err != nil {
		return nil, err
	}
	for i, threads := range threadCounts {
		s.Add(float64(threads), vals[i])
	}
	return f, nil
}
