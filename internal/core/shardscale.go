package core

import (
	"fmt"
	"time"

	"cloudbench/internal/cassandra"
	"cloudbench/internal/cluster"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/ycsb"
)

// Shardscale is the spatially partitioned workload that exercises the
// sharded kernel with real parallelism. The fig/audit/tracebreak
// experiments are process-carried — one client machine's threads touch
// every server directly — so they run on the group's home shard and gain
// determinism but no speedup. Shardscale instead models what the paper's
// §6 scale-out direction needs: a large cell split into token-range
// segments, each an independent Cassandra cluster simulated on its own
// member kernel, with a controlled fraction of reads crossing segments
// through the group's conservative delivery API (paying the inter-zone
// round trip, which is exactly the lookahead that makes the windows wide).

// ShardScaleOptions sizes one shardscale cell.
type ShardScaleOptions struct {
	Seed   int64
	Shards int // member kernels; segments are pinned one per shard

	// TotalNodes database machines are split evenly across segments (plus
	// one client machine per segment). TotalThreads and TotalOps are
	// likewise split evenly, so the cell's total work is independent of
	// the shard count and wall-clock differences measure engine scaling.
	TotalNodes   int
	TotalThreads int
	TotalOps     int64

	RecordsPerSegment int64
	Replication       int

	// RemoteEvery sends every RemoteEvery'th read to the next segment
	// (0 disables): cross-shard traffic under load is what keeps the
	// conservative windows honest. Remote reads pay InterZoneRTT.
	RemoteEvery  int
	InterZoneRTT time.Duration

	// Workers caps the group's pinned worker goroutines
	// (sim.ShardGroup.SetWorkers); 0 means one per available CPU.
	Workers int

	Cluster cluster.Config
}

// DefaultShardScaleOptions returns the 64-node saturating cell used by
// `make bench-shard` and the shardscale tests: enough offered load that
// every segment's CPUs queue, so host cores — not virtual-time idling —
// bound the wall clock.
func DefaultShardScaleOptions() ShardScaleOptions {
	ccfg := cluster.DefaultConfig()
	ccfg.CPUSlots = 8
	ccfg.CPUOpCost = 200 * time.Microsecond
	ccfg.InternalOpCost = 100 * time.Microsecond
	return ShardScaleOptions{
		Seed:              1,
		Shards:            1,
		TotalNodes:        64,
		TotalThreads:      512,
		TotalOps:          40_000,
		RecordsPerSegment: 2_000,
		Replication:       3,
		RemoteEvery:       20,
		InterZoneRTT:      10 * time.Millisecond,
		Cluster:           ccfg,
	}
}

// ShardScaleSegment is one segment's measured slice of the run.
type ShardScaleSegment struct {
	Ops         int64
	Throughput  float64 // simulated ops/second over the measured window
	MeanLatency time.Duration
	RemoteReads int64
	Errors      int64
}

// ShardScaleResult aggregates a shardscale run.
type ShardScaleResult struct {
	Shards      int
	Segments    []ShardScaleSegment
	TotalOps    int64
	RemoteReads int64
	Errors      int64
	// Throughput sums the segments' simulated throughputs.
	Throughput float64
}

// scaleSegment is one token-range segment: its own cluster and database on
// its own member kernel.
type scaleSegment struct {
	shard      *sim.Shard
	db         *cassandra.DB
	clientNode *cluster.Node
	w          *ycsb.Workload
	// server handles reads arriving from other segments; it lives on this
	// segment's shard and is only ever used by code delivered here.
	server kv.Client
	result ycsb.Result
	remote int64
}

// remoteMixClient wraps a segment-local client and diverts every n'th read
// to a destination segment over the shard group's delivery API — each hop
// paying the pair's delivery floor. All other verbs stay local. Both the
// shardscale and megascale workloads drive their cross-segment traffic
// through it.
type remoteMixClient struct {
	kv.Client
	src    *sim.Shard
	dst    *sim.Shard
	server kv.Client // destination segment's serving client
	remote *int64    // cross-segment read counter, owned by the source shard
	every  int
	n      int
}

type remoteResp struct {
	rec kv.Record
	err error
}

func (c *remoteMixClient) Read(p *sim.Proc, key kv.Key, fields []string) (kv.Record, error) {
	c.n++
	if c.every <= 0 || c.n%c.every != 0 {
		return c.Client.Read(p, key, fields)
	}
	*c.remote++
	src := c.src
	srcID := src.ID()
	hop := src.Group().Floor(srcID, c.dst.ID())
	back := src.Group().Floor(c.dst.ID(), srcID)
	fut := sim.NewFuture[remoteResp](src.Kernel())
	server := c.server
	src.Send(c.dst.ID(), hop, func(ds *sim.Shard) {
		// Serve the read as a fresh process on the destination segment —
		// delivery runs in event context and must not block — then ship
		// the response home, where the future completes on the source
		// shard's kernel.
		ds.Kernel().Go("shardscale-remote-read", func(rp *sim.Proc) {
			// server is the destination segment's client (scaleSegment.server
			// is only ever touched by code delivered here), so reaching its
			// kernel from this closure is the sanctioned pattern, not a
			// sending-side leak.
			//simlint:ignore shardsafe server belongs to the destination shard this closure runs on
			rec, err := server.Read(rp, key, fields)
			resp := remoteResp{rec: rec, err: err}
			// The reply future is the sanctioned cross-shard handle; the
			// engine keys generic Future cells by Origin, so fut.val merges
			// every instantiation's payload (DESIGN.md §12, soundness notes).
			//simlint:ignore shardsafe reply future; generic cells merge instantiations in the points-to engine
			ds.Send(srcID, back, func(*sim.Shard) { fut.Set(resp) })
		})
	})
	resp := fut.Await(p)
	return resp.rec, resp.err
}

// RunShardScale loads and runs the partitioned cell and returns the
// aggregate result. The run is deterministic for a fixed (Seed, Shards)
// pair at every worker count; unlike the home-shard experiments, results
// are not comparable across different shard counts — segments are
// differently sized clusters.
func RunShardScale(o ShardScaleOptions) (ShardScaleResult, error) {
	s := o.Shards
	if s < 1 {
		s = 1
	}
	if o.TotalNodes%s != 0 {
		return ShardScaleResult{}, fmt.Errorf("shardscale: %d nodes not divisible into %d segments", o.TotalNodes, s)
	}
	nodesPer := o.TotalNodes / s
	threadsPer := o.TotalThreads / s
	if threadsPer < 1 {
		threadsPer = 1
	}
	opsPer := o.TotalOps / int64(s)

	var lookahead time.Duration
	if s > 1 {
		lookahead = o.InterZoneRTT / 2
	}
	g := sim.NewShardGroup(o.Seed, s, lookahead)
	g.SetWorkers(o.Workers)

	segs := make([]*scaleSegment, s)
	for i := 0; i < s; i++ {
		shard := g.Shard(i)
		k := shard.Kernel()
		ccfg := o.Cluster
		ccfg.Nodes = nodesPer + 1 // segment servers plus one client machine
		clus := cluster.New(k, ccfg)
		servers := clus.Nodes[:nodesPer]
		clientNode := clus.Nodes[nodesPer]

		cfg := cassandra.DefaultConfig()
		cfg.Replication = o.Replication
		cfg.Engine.CacheBytes = 4 << 20
		cfg.Engine.MemtableBytes = 256 << 10
		cfg.Engine.SyncWAL = false
		db := cassandra.New(k, cfg, servers)

		segs[i] = &scaleSegment{
			shard:      shard,
			db:         db,
			clientNode: clientNode,
			w:          ycsb.NewWorkload(ycsb.ReadMostly(o.RecordsPerSegment)),
			server:     db.NewClient(clientNode),
		}
	}

	for i := 0; i < s; i++ {
		seg := segs[i]
		dst := segs[(i+1)%s]
		every := o.RemoteEvery
		if s == 1 {
			every = 0 // a lone segment has no one to read from
		}
		seg.shard.Kernel().Spawn("shardscale-driver", func(p *sim.Proc) {
			local := func() kv.Client { return seg.db.NewClient(seg.clientNode) }
			ycsb.Load(p, local, seg.w, threadsPer, 0, seg.w.Spec.RecordCount)
			seg.db.FlushAll()
			p.Sleep(quiesce)
			mixed := func() kv.Client {
				return &remoteMixClient{
					Client: seg.db.NewClient(seg.clientNode),
					src:    seg.shard, dst: dst.shard, server: dst.server,
					remote: &seg.remote, every: every,
				}
			}
			seg.result = ycsb.Run(p, mixed, seg.w, ycsb.RunConfig{
				Threads:        threadsPer,
				Ops:            opsPer,
				WarmupFraction: 0.1,
			})
		})
	}
	if err := g.Run(); err != nil {
		return ShardScaleResult{}, err
	}

	res := ShardScaleResult{Shards: s}
	for _, seg := range segs {
		r := seg.result
		res.Segments = append(res.Segments, ShardScaleSegment{
			Ops:         r.MeasuredOps,
			Throughput:  r.Throughput,
			MeanLatency: r.MeanLatency(),
			RemoteReads: seg.remote,
			Errors:      r.Errors,
		})
		res.TotalOps += r.MeasuredOps
		res.RemoteReads += seg.remote
		res.Errors += r.Errors
		res.Throughput += r.Throughput
	}
	return res, nil
}
