package core

import (
	"fmt"
	"time"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

// StressResult is one point of Fig. 2: one database, one replication
// factor, one Table 1 workload, run closed-loop at full speed.
type StressResult struct {
	DB         string
	RF         int
	Workload   string
	Throughput float64 // peak runtime throughput, ops/s
	Mean       time.Duration
	P95        time.Duration
	Errors     int64
}

// Fig2Results collects the full stress-replication sweep.
type Fig2Results []StressResult

// RunFig2 reproduces the stress benchmark for replication: six rounds per
// database, one per replication factor; each round loads the table once
// and runs the five Table 1 workloads one after another (§4.2's order:
// read latest, scan short ranges, read mostly, read-modify-write,
// read & update) with a constant number of client threads at full speed,
// detecting the peak runtime throughput and corresponding latency. Rounds
// are independent simulations and fan out across the sweep scheduler
// (Options.Parallelism).
func RunFig2(o Options) (Fig2Results, error) {
	cells := dbRFCells(o)
	rounds, err := runCells(o.workers(), len(cells), func(i int) (Fig2Results, error) {
		c := cells[i]
		res, err := runFig2Round(o, c.db, c.rf)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s rf=%d: %w", c.db, c.rf, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return flattenCells(rounds), nil
}

// RunFig2Round runs one round of the stress benchmark for replication:
// one database at one replication factor, the five Table 1 workloads in
// paper order.
func RunFig2Round(o Options, db string, rf int) (Fig2Results, error) {
	return runFig2Round(o, db, rf)
}

func runFig2Round(o Options, db string, rf int) (Fig2Results, error) {
	loadSpec := ycsb.ReadMostly(o.StressRecords)
	var d *deployment
	if db == "HBase" {
		d = deployHBase(o, rf, loadSpec)
	} else {
		d = deployCassandra(o, rf, kv.One, kv.One)
	}
	var out Fig2Results
	err := d.drive(func(p *sim.Proc) {
		w := ycsb.NewWorkload(loadSpec)
		d.loadAndSettle(p, w, o.Threads)
		records := w.Inserted()
		for _, spec := range ycsb.StressWorkloads(records) {
			spec.RecordCount = records
			wl := ycsb.NewWorkload(spec)
			res := ycsb.Run(p, d.newClient, wl, ycsb.RunConfig{
				Threads:        o.Threads,
				Ops:            o.StressOps,
				WarmupFraction: o.WarmupFraction,
			})
			records = wl.Inserted()
			out = append(out, StressResult{
				DB:         db,
				RF:         rf,
				Workload:   spec.Name,
				Throughput: res.Throughput,
				Mean:       res.MeanLatency(),
				P95:        res.Overall.Percentile(95),
				Errors:     res.Errors,
			})
			p.Sleep(quiesce / 4)
		}
	})
	return out, err
}

// ThroughputFigures renders one throughput-vs-RF panel per workload.
func (r Fig2Results) ThroughputFigures() []*stats.Figure {
	return r.figures("runtime throughput (ops/s)", func(s StressResult) float64 {
		return s.Throughput
	})
}

// LatencyFigures renders one latency-vs-RF panel per workload.
func (r Fig2Results) LatencyFigures() []*stats.Figure {
	return r.figures("mean latency (µs)", func(s StressResult) float64 {
		return float64(s.Mean.Microseconds())
	})
}

func (r Fig2Results) figures(ylabel string, y func(StressResult) float64) []*stats.Figure {
	var figs []*stats.Figure
	for _, wl := range workloadOrder() {
		f := stats.NewFigure(
			fmt.Sprintf("Fig. 2 (stress replication): %s — %s vs replication factor", wl, ylabel),
			"replication-factor", ylabel)
		for _, db := range []string{"HBase", "Cassandra"} {
			s := f.AddSeries(db)
			for _, m := range r {
				if m.DB == db && m.Workload == wl {
					s.Add(float64(m.RF), y(m))
				}
			}
		}
		figs = append(figs, f)
	}
	return figs
}

func workloadOrder() []string {
	return []string{"read-latest", "scan-short-ranges", "read-mostly", "read-modify-write", "read-update"}
}

// Table renders every Fig. 2 point as one row.
func (r Fig2Results) Table() *stats.Table {
	t := stats.NewTable("Fig. 2 — stress benchmark for replication",
		"db", "rf", "workload", "ops/sec", "mean-latency", "p95-latency", "errors")
	for _, m := range r {
		t.AddRow(m.DB, m.RF, m.Workload, m.Throughput,
			m.Mean.Round(time.Microsecond).String(),
			m.P95.Round(time.Microsecond).String(), m.Errors)
	}
	return t
}

// get returns the (throughput, latency) for a point, or (-1, -1).
func (r Fig2Results) get(db, workload string, rf int) (float64, time.Duration) {
	for _, m := range r {
		if m.DB == db && m.Workload == workload && m.RF == rf {
			return m.Throughput, m.Mean
		}
	}
	return -1, -1
}
