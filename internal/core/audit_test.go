package core

import (
	"reflect"
	"strings"
	"testing"

	"cloudbench/internal/consistency"
)

// auditSmokeOptions: the audit grid at -short scale. The full smoke grid
// (2 workloads × (2 HBase + 3×2 Cassandra cells) + 1 fault cell) runs in
// a few seconds of wall clock.
func auditSmokeOptions() Options {
	return SmokeOptions()
}

func TestConsistencyAuditSmoke(t *testing.T) {
	o := auditSmokeOptions()
	res, err := RunConsistencyAudit(o)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(auditCells(o)); len(res) != want {
		t.Fatalf("cells = %d, want %d", len(res), want)
	}
	if res.fault() == nil {
		t.Fatal("fault cell missing")
	}
	for _, f := range CheckAudit(res) {
		t.Log(f)
		if !f.Pass {
			t.Errorf("finding failed: %s", f)
		}
	}
	// Every cell actually served traffic and measured reads.
	for _, m := range res {
		if m.Runtime <= 0 || m.Consistency.Reads == 0 {
			t.Errorf("empty cell %s/%s/%s/rf%d: tput=%.0f reads=%d",
				m.DB, m.Workload, m.Level, m.RF, m.Runtime, m.Consistency.Reads)
		}
	}
	out := res.Table().String()
	for _, want := range []string{"stale-%", "tvis-q-p50", "mono-viol", "hint-applies", "HBase", "writeALL"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

// TestConsistencyAuditDeterministic: like every sweep, the audit must be
// bit-identical across runs and across scheduler parallelism — the oracle
// subscribes to simulation events only, never wall clock.
func TestConsistencyAuditDeterministic(t *testing.T) {
	o := auditSmokeOptions()
	o.StressOps = 1_500
	o.Parallelism = 1
	a, err := RunConsistencyAudit(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Parallelism = 4
	b, err := RunConsistencyAudit(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("audit not deterministic across parallelism:\n%v\nvs\n%v", a, b)
	}
}

// syntheticAudit builds a healthy-grid AuditResults with the given ONE
// stale-read counts per RF (same counts for both workloads), zero staleness
// everywhere else, and a fault cell.
func syntheticAudit(rfs []int, oneStale []int64, faultStale, faultHints int64) AuditResults {
	var res AuditResults
	mk := func(stale int64) consistency.Report {
		return consistency.Report{Reads: 10_000, StaleReads: stale}
	}
	for _, wl := range []string{"read-latest", "read-update"} {
		for _, rf := range rfs {
			res = append(res, AuditResult{DB: "HBase", Workload: wl, Level: "strong", RF: rf, Runtime: 1, Consistency: mk(0)})
		}
		for i, rf := range rfs {
			res = append(res, AuditResult{DB: "Cassandra", Workload: wl, Level: "ONE", RF: rf, Runtime: 1, Consistency: mk(oneStale[i])})
		}
		for _, lv := range []string{"QUORUM", "writeALL"} {
			for _, rf := range rfs {
				res = append(res, AuditResult{DB: "Cassandra", Workload: wl, Level: lv, RF: rf, Runtime: 1, Consistency: mk(0)})
			}
		}
	}
	res = append(res, AuditResult{
		DB: "Cassandra", Workload: "read-update", Level: "ONE", RF: rfs[len(rfs)-1], Fault: true, Runtime: 1,
		Consistency: consistency.Report{Reads: 10_000, StaleReads: faultStale, HintApplies: faultHints},
	})
	return res
}

func findingByID(fs []Finding, id string) *Finding {
	for i := range fs {
		if fs[i].ID == id {
			return &fs[i]
		}
	}
	return nil
}

// TestCheckAuditShape exercises the findings checker's monotone-shape and
// zero-staleness logic on synthetic grids, independent of the simulator.
func TestCheckAuditShape(t *testing.T) {
	rfs := []int{1, 2, 3}

	// The expected shape passes all four findings.
	good := syntheticAudit(rfs, []int64{0, 40, 90}, 120, 7)
	for _, f := range CheckAudit(good) {
		if !f.Pass {
			t.Errorf("good grid failed %s: %s", f.ID, f.Detail)
		}
	}

	// A plateau at CL=ONE breaks FA3's strict monotonicity.
	plateau := syntheticAudit(rfs, []int64{0, 40, 40}, 120, 7)
	if f := findingByID(CheckAudit(plateau), "FA3"); f == nil || f.Pass {
		t.Error("FA3 passed on a non-increasing series")
	}

	// Any QUORUM staleness breaks FA2; HBase staleness breaks FA1.
	dirty := syntheticAudit(rfs, []int64{0, 40, 90}, 120, 7)
	for i := range dirty {
		if dirty[i].DB == "Cassandra" && dirty[i].Level == "QUORUM" {
			dirty[i].Consistency.StaleReads = 1
			break
		}
	}
	if f := findingByID(CheckAudit(dirty), "FA2"); f == nil || f.Pass {
		t.Error("FA2 passed with a stale quorum read")
	}
	dirty = syntheticAudit(rfs, []int64{0, 40, 90}, 120, 7)
	dirty[0].Consistency.MonotonicViolations = 1
	if f := findingByID(CheckAudit(dirty), "FA1"); f == nil || f.Pass {
		t.Error("FA1 passed with an HBase monotonic violation")
	}

	// FA4 requires hint replays and at least healthy-level staleness.
	noHints := syntheticAudit(rfs, []int64{0, 40, 90}, 120, 0)
	if f := findingByID(CheckAudit(noHints), "FA4"); f == nil || f.Pass {
		t.Error("FA4 passed without hint replays")
	}
	cleanFault := syntheticAudit(rfs, []int64{0, 40, 90}, 10, 7)
	if f := findingByID(CheckAudit(cleanFault), "FA4"); f == nil || f.Pass {
		t.Error("FA4 passed with the fault cell less stale than healthy")
	}
}
