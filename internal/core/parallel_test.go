package core

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCellsPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := runCells(workers, 10, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunCellsBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 24
	var inFlight, peak atomic.Int64
	_, err := runCells(workers, n, func(i int) (struct{}, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak in-flight cells = %d, want ≤ %d", p, workers)
	}
}

func TestRunCellsFirstErrorCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	_, err := runCells(2, 100, func(i int) (int, error) {
		started.Add(1)
		if i == 3 {
			return 0, fmt.Errorf("cell %d: %w", i, boom)
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if s := started.Load(); s == 100 {
		t.Error("error did not cancel outstanding cells")
	}
}

func TestRunCellsReturnsLowestIndexedError(t *testing.T) {
	// With every cell failing, the reported error must be a deterministic
	// function of the cells, not of host goroutine scheduling.
	for trial := 0; trial < 10; trial++ {
		_, err := runCells(4, 8, func(i int) (int, error) {
			return 0, fmt.Errorf("cell-%d", i)
		})
		if err == nil {
			t.Fatal("want error")
		}
		// Workers claim cells in index order, so cell 0's error always
		// exists; lowest-index selection must report it.
		if got := err.Error(); got != "cell-0" {
			t.Fatalf("trial %d: err = %q, want cell-0", trial, got)
		}
	}
}

func TestRunCellsPropagatesPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "kernel invariant" {
			t.Fatalf("recovered %v, want kernel invariant", r)
		}
	}()
	_, _ = runCells(2, 4, func(i int) (int, error) {
		if i == 1 {
			panic("kernel invariant")
		}
		return i, nil
	})
	t.Fatal("expected panic")
}

func TestRunCellsSequentialStopsAtFirstError(t *testing.T) {
	var ran []int
	_, err := runCells(1, 5, func(i int) (int, error) {
		ran = append(ran, i)
		if i == 2 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil || len(ran) != 3 {
		t.Fatalf("ran = %v, err = %v; want stop after cell 2", ran, err)
	}
}

// TestParallelSweepDeterminism is the regression test for the scheduler's
// core guarantee: fanning cells out across workers must not perturb seeds,
// interleavings, or result ordering. A sequential and a 4-worker run of the
// same Fig. 2 sweep must be deep-equal, bit for bit.
func TestParallelSweepDeterminism(t *testing.T) {
	o := QuickOptions()
	o.ReplicationFactors = []int{1, 6}
	o.StressRecords = 1_500
	o.StressOps = 2_500
	if testing.Short() {
		o.ReplicationFactors = []int{3}
	}

	seq := o
	seq.Parallelism = 1
	a, err := RunFig2(seq)
	if err != nil {
		t.Fatal(err)
	}

	par := o
	par.Parallelism = 4
	b, err := RunFig2(par)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if i < len(b) && !reflect.DeepEqual(a[i], b[i]) {
				t.Errorf("first divergence at row %d:\nseq: %+v\npar: %+v", i, a[i], b[i])
				break
			}
		}
		t.Fatalf("sequential and parallel sweeps differ (%d vs %d rows)", len(a), len(b))
	}
}
