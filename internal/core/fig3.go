package core

import (
	"fmt"
	"time"

	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

// ConsistencyResult is one point of Fig. 3: one workload, one consistency
// level, one target throughput.
type ConsistencyResult struct {
	Workload string
	Level    string
	Target   float64 // offered load, ops/s (0 = unthrottled capacity probe)
	Runtime  float64 // measured runtime throughput, ops/s
	Mean     time.Duration
}

// Fig3Results collects the full stress-consistency sweep.
type Fig3Results []ConsistencyResult

// RunFig3 reproduces the stress benchmark for consistency: Cassandra at
// replication factor 3, three rounds (ONE, QUORUM, write-ALL), each
// running the five Table 1 workloads over a sweep of target throughputs
// and recording the runtime throughput (§4.3). HBase is excluded exactly
// as in the paper: it offers no request-time consistency knob.
//
// The target sweep is auto-calibrated per workload: an unthrottled run at
// CL=ONE measures the capacity, and Options.Fig3TargetFractions of that
// capacity become the shared target list for all three levels.
//
// Every (consistency level, workload) pair is a self-contained deployment,
// so the capacity probes fan out across the sweep scheduler first and the
// full level × workload grid fans out after the shared targets are known.
func RunFig3(o Options) (Fig3Results, error) {
	specs := ycsb.StressWorkloads(o.StressRecords)

	// Capacity probe per workload at ONE.
	probes, err := runCells(o.workers(), len(specs), func(i int) (Fig3Results, error) {
		return runFig3Workload(o, levels()[0], specs[i], []float64{0})
	})
	if err != nil {
		return nil, fmt.Errorf("fig3 capacity probe: %w", err)
	}
	out := Fig3Results(flattenCells(probes))

	// Build shared target lists from the probed capacities.
	capacities := make(map[string]float64)
	for _, m := range out {
		if m.Target == 0 {
			capacities[m.Workload] = m.Runtime
		}
	}
	targets := make(map[string][]float64)
	for wl, cap := range capacities {
		for _, f := range o.Fig3TargetFractions {
			targets[wl] = append(targets[wl], cap*f)
		}
	}

	// Level × workload grid, level-major so the flattened results keep the
	// paper's reporting order (ONE, QUORUM, writeALL).
	type gridCell struct {
		lv   ConsistencySetting
		spec ycsb.Spec
	}
	var cells []gridCell
	for _, lv := range levels() {
		for _, spec := range specs {
			cells = append(cells, gridCell{lv: lv, spec: spec})
		}
	}
	rounds, err := runCells(o.workers(), len(cells), func(i int) (Fig3Results, error) {
		c := cells[i]
		// Unthrottled (closed-loop) first — the paper detects the *peak*
		// runtime throughput and the closed loop is each level's natural
		// maximum — then the throttled sweep ascending, so the overloaded
		// high-target runs (which leave queue backlogs behind) come last.
		tlist := append([]float64{0}, targets[c.spec.Name]...)
		res, err := runFig3Workload(o, c.lv, c.spec, tlist)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s: %w", c.lv.Name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return append(out, flattenCells(rounds)...), nil
}

// RunFig3Level runs the five workloads once, unthrottled, at one
// consistency setting — the capacity measurement underlying one Fig. 3
// series (the Target field of each result is 0). Workloads fan out across
// the sweep scheduler.
func RunFig3Level(o Options, lv ConsistencySetting) (Fig3Results, error) {
	specs := ycsb.StressWorkloads(o.StressRecords)
	rounds, err := runCells(o.workers(), len(specs), func(i int) (Fig3Results, error) {
		return runFig3Workload(o, lv, specs[i], []float64{0})
	})
	if err != nil {
		return nil, err
	}
	return flattenCells(rounds), nil
}

// runFig3Workload runs one workload at one consistency setting through the
// given target-throughput list (0 = unthrottled closed loop) — one sweep
// cell of the Fig. 3 grid.
//
// Each cell gets a fresh deployment. The paper ran the five tests back to
// back on one cluster and §4.3 itself attributes part of its scan result to
// that ordering ("we run this test after the read latest test which has
// repaired the majority of inconsistency"); isolating the workloads keeps
// every measurement independent of its predecessors — and is what makes
// the grid embarrassingly parallel.
func runFig3Workload(o Options, lv ConsistencySetting, spec ycsb.Spec, tlist []float64) (Fig3Results, error) {
	var out Fig3Results
	d := deployCassandra(o, 3, lv.Read, lv.Write)
	err := d.drive(func(p *sim.Proc) {
		w := ycsb.NewWorkload(spec)
		d.loadAndSettle(p, w, o.Threads)
		records := w.Inserted()
		for _, target := range tlist {
			run := spec
			run.RecordCount = records
			wl := ycsb.NewWorkload(run)
			res := ycsb.Run(p, d.newClient, wl, ycsb.RunConfig{
				Threads:          o.Threads,
				Ops:              o.StressOps,
				TargetThroughput: target,
				WarmupFraction:   o.WarmupFraction,
			})
			records = wl.Inserted()
			out = append(out, ConsistencyResult{
				Workload: spec.Name,
				Level:    lv.Name,
				Target:   target,
				Runtime:  res.Throughput,
				Mean:     res.MeanLatency(),
			})
			p.Sleep(quiesce)
		}
	})
	return out, err
}

// Figures renders one runtime-vs-target panel per workload with a series
// per consistency level, mirroring the paper's Fig. 3. Capacity-probe
// points (target 0) are omitted.
func (r Fig3Results) Figures() []*stats.Figure {
	var figs []*stats.Figure
	for _, wl := range workloadOrder() {
		f := stats.NewFigure(
			fmt.Sprintf("Fig. 3 (stress consistency): %s — runtime vs target throughput", wl),
			"target (ops/s)", "runtime (ops/s)")
		for _, lv := range levels() {
			s := f.AddSeries(lv.Name)
			for _, m := range r {
				if m.Workload == wl && m.Level == lv.Name && m.Target > 0 {
					s.Add(float64(int64(m.Target)), m.Runtime)
				}
			}
		}
		figs = append(figs, f)
	}
	return figs
}

// Table renders every Fig. 3 point as one row.
func (r Fig3Results) Table() *stats.Table {
	t := stats.NewTable("Fig. 3 — stress benchmark for consistency (Cassandra, RF=3)",
		"workload", "level", "target-ops/sec", "runtime-ops/sec", "mean-latency")
	for _, m := range r {
		t.AddRow(m.Workload, m.Level, m.Target, m.Runtime,
			m.Mean.Round(time.Microsecond).String())
	}
	return t
}

// peak returns the best runtime throughput for (workload, level) across
// the level's sweep, including its unthrottled closed-loop point, or -1.
func (r Fig3Results) peak(workload, level string) float64 {
	best := -1.0
	for _, m := range r {
		if m.Workload == workload && m.Level == level && m.Runtime > best {
			best = m.Runtime
		}
	}
	return best
}
