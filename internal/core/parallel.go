package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The parallel sweep scheduler.
//
// Every figure of the paper is a sweep over independent cells — (database,
// replication factor) for Fig. 1 and Fig. 2, (consistency level, workload)
// for Fig. 3, (mode, replication factor) for the ablations. Each cell is a
// self-contained deterministic simulation: it builds its own sim.Kernel
// from Options.Seed, runs single-threaded in virtual time, and shares no
// state with any other cell. The sweep is therefore embarrassingly parallel
// across host CPUs, and parallel execution is bit-identical to sequential
// execution: the per-cell seed derivation is unchanged and results are
// reassembled in canonical sweep order regardless of completion order.
//
// runCells is the single entry point; RunFig1/RunFig2/RunFig3, the
// ablations, and RunSLASearch all submit their cells through it.

// workers resolves the effective worker-pool size: Options.Parallelism when
// set, otherwise one worker per available CPU.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runCells executes n independent cells on a bounded pool of workers and
// returns their results in cell order. Cells are claimed in index order, so
// with one worker the execution order matches the legacy sequential loops
// exactly. The first cell error stops further cells from being claimed;
// cells already claimed run to completion. Because claims are in index
// order, every cell below the first erroring one completes, so the
// lowest-indexed recorded error — the one returned — is a deterministic
// function of the cells, independent of host scheduling. A panic inside a
// cell (e.g. a simulation invariant violation) is re-raised on the calling
// goroutine, as it would be in a sequential loop.
func runCells[T any](workers, n int, run func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Sequential fast path: no goroutines, stop at the first error.
		for i := 0; i < n; i++ {
			v, err := run(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next     atomic.Int64 // next unclaimed cell index
		canceled atomic.Bool  // set on first error; unstarted cells skip
		errs     = make([]error, n)
		panicked atomic.Pointer[any]
		wg       sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if canceled.Load() {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, &r)
							canceled.Store(true)
						}
					}()
					v, err := run(i)
					if err != nil {
						errs[i] = err
						canceled.Store(true)
						return
					}
					out[i] = v
				}()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(*p)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// flattenCells concatenates per-cell result slices in cell order.
func flattenCells[S ~[]T, T any](cells []S) S {
	var total int
	for _, c := range cells {
		total += len(c)
	}
	out := make(S, 0, total)
	for _, c := range cells {
		out = append(out, c...)
	}
	return out
}

// dbRFCell is one (database, replication factor) point of a Fig. 1/2 sweep.
type dbRFCell struct {
	db string
	rf int
}

// dbRFCells enumerates the canonical Fig. 1/2 sweep order: databases in
// paper order, replication factors ascending within each.
func dbRFCells(o Options) []dbRFCell {
	cells := make([]dbRFCell, 0, 2*len(o.ReplicationFactors))
	for _, db := range []string{"HBase", "Cassandra"} {
		for _, rf := range o.ReplicationFactors {
			cells = append(cells, dbRFCell{db: db, rf: rf})
		}
	}
	return cells
}
