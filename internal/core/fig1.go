package core

import (
	"fmt"
	"time"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

// MicroResult is one point of Fig. 1: one database, one replication
// factor, one atomic operation.
type MicroResult struct {
	DB         string
	RF         int
	Op         string
	Mean       time.Duration
	P50        time.Duration
	P95        time.Duration
	Throughput float64
}

// Fig1Results collects the full micro-benchmark sweep.
type Fig1Results []MicroResult

// microOps is the paper's in-round test order: update, read, insert, scan
// (§4.1 runs "the update/read/insert/scan test one after another"). The
// order matters: reads follow updates, which is the read-after-write
// pipeline that triggers Cassandra's read repair.
var microOrder = []string{"update", "read", "insert", "scan"}

func microSpec(op string, records int64) ycsb.Spec {
	switch op {
	case "update":
		return ycsb.MicroUpdate(records)
	case "read":
		return ycsb.MicroRead(records)
	case "insert":
		return ycsb.MicroInsert(records)
	default:
		return ycsb.MicroScan(records)
	}
}

// RunFig1 reproduces the micro benchmark for replication: six rounds, one
// per replication factor, each running the four atomic tests back to back
// on an unsaturated cluster, for both databases. Rounds are independent
// simulations and fan out across the sweep scheduler (Options.Parallelism).
func RunFig1(o Options) (Fig1Results, error) {
	cells := dbRFCells(o)
	rounds, err := runCells(o.workers(), len(cells), func(i int) (Fig1Results, error) {
		c := cells[i]
		res, err := runFig1Round(o, c.db, c.rf)
		if err != nil {
			return nil, fmt.Errorf("fig1 %s rf=%d: %w", c.db, c.rf, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return flattenCells(rounds), nil
}

// RunFig1Round runs one round of the micro benchmark: one database at one
// replication factor, the four atomic tests in paper order.
func RunFig1Round(o Options, db string, rf int) (Fig1Results, error) {
	return runFig1Round(o, db, rf)
}

func runFig1Round(o Options, db string, rf int) (Fig1Results, error) {
	loadSpec := ycsb.MicroUpdate(o.MicroRecords) // shape only; used for load
	var d *deployment
	if db == "HBase" {
		d = deployHBase(o, rf, loadSpec)
	} else {
		// Micro tests use the default consistency strategy: ONE/ONE.
		d = deployCassandra(o, rf, kv.One, kv.One)
	}
	var out Fig1Results
	err := d.drive(func(p *sim.Proc) {
		w := ycsb.NewWorkload(loadSpec)
		d.loadAndSettle(p, w, o.Threads)
		records := w.Inserted()
		for _, op := range microOrder {
			spec := microSpec(op, records)
			wl := ycsb.NewWorkload(spec)
			res := ycsb.Run(p, d.newClient, wl, ycsb.RunConfig{
				Threads:          o.MicroThreads,
				Ops:              o.MicroOps,
				TargetThroughput: o.MicroThrottle,
				WarmupFraction:   o.WarmupFraction,
			})
			records = wl.Inserted()
			out = append(out, MicroResult{
				DB:         db,
				RF:         rf,
				Op:         op,
				Mean:       res.MeanLatency(),
				P50:        res.Overall.Percentile(50),
				P95:        res.Overall.Percentile(95),
				Throughput: res.Throughput,
			})
			p.Sleep(quiesce / 4)
		}
	})
	return out, err
}

// Figures renders Fig. 1 as one latency-vs-RF panel per operation, with a
// series per database — the same panels the paper plots.
func (r Fig1Results) Figures() []*stats.Figure {
	var figs []*stats.Figure
	for _, op := range microOrder {
		f := stats.NewFigure(
			fmt.Sprintf("Fig. 1 (micro replication): %s latency vs replication factor", op),
			"replication-factor", "median latency (µs)")
		for _, db := range []string{"HBase", "Cassandra"} {
			s := f.AddSeries(db)
			for _, m := range r {
				if m.DB == db && m.Op == op {
					s.Add(float64(m.RF), float64(m.P50.Microseconds()))
				}
			}
		}
		figs = append(figs, f)
	}
	return figs
}

// Table renders every Fig. 1 point as one row.
func (r Fig1Results) Table() *stats.Table {
	t := stats.NewTable("Fig. 1 — micro benchmark for replication",
		"db", "rf", "op", "median-latency", "mean-latency", "p95-latency", "ops/sec")
	for _, m := range r {
		t.AddRow(m.DB, m.RF, m.Op,
			m.P50.Round(time.Microsecond).String(),
			m.Mean.Round(time.Microsecond).String(),
			m.P95.Round(time.Microsecond).String(),
			m.Throughput)
	}
	return t
}

// get returns the median latency for a specific point, or -1. The median
// is the robust statistic for shape checks: stop-the-world pause outliers
// dominate means over short measurement windows but barely move p50.
func (r Fig1Results) get(db, op string, rf int) time.Duration {
	for _, m := range r {
		if m.DB == db && m.Op == op && m.RF == rf {
			return m.P50
		}
	}
	return -1
}

// getMean returns the mean latency for a specific point, or -1.
func (r Fig1Results) getMean(db, op string, rf int) time.Duration {
	for _, m := range r {
		if m.DB == db && m.Op == op && m.RF == rf {
			return m.Mean
		}
	}
	return -1
}
