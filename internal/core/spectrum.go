package core

import (
	"fmt"
	"time"

	"cloudbench/internal/consistency"
	"cloudbench/internal/objstore"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

// The replication-spectrum experiment.
//
// The paper's grid stops at Cassandra CL=ONE: the weakest setting it
// measures still replicates synchronously in the request path — the
// coordinator fans the mutation to every replica and waits for one ack, so
// write cost grows with RF and the unacked replicas are already in flight
// when the client resumes. Asynchronous replication, the Swift/Dynamo end
// of the spectrum, acks after a single durable local apply and replicates
// strictly after the ack. This experiment extends the paper's CL axis with
// that third point: the same two staleness-sensitive workloads as the
// consistency audit, over HBase (strong control), Cassandra at
// ONE/QUORUM/writeALL, and the object store across its replication-factor
// and anti-entropy-interval sweeps, reporting throughput, latency tails,
// client-centric staleness, and t-visibility side by side.
//
// The object-store cells attach the oracle under AckAsync semantics: a
// client that reads an older version while the newer write's replication
// is still in flight is reported as an async regression (the priced-in
// visibility cost of ack-before-replicate), not a monotonicity violation.
//
// Expected shape, asserted by CheckSpectrum:
//   - the async ack path decouples write latency from RF: the object
//     store's write tail is flat across the RF sweep while all-replica
//     visibility (TVisAll) keeps growing — replication work still scales
//     with RF, it just moves off the request path;
//   - the visibility cost is real: at the anchor cell the object store's
//     TVisAll tail exceeds Cassandra CL=ONE's, whose fan-out is already in
//     flight at ack time, and its read-one staleness exceeds CL=ONE's;
//   - under fault injection the anti-entropy interval is the convergence
//     knob: a faster replicator closes the post-recovery staleness window
//     that spilled async jobs left open;
//   - read-quorum-of-fresh buys back most read-side staleness without
//     touching the write path.

// spectrumFaultDowntime is how long the fault cells hold the victim
// server down: past the async job retry budget (~6× the default retry
// base), so replication to it spills to the updater and convergence is
// carried by the anti-entropy pass.
const spectrumFaultDowntime = time.Second

// SpectrumResult is one cell of the replication-spectrum grid.
type SpectrumResult struct {
	DB       string
	Workload string
	Level    string // consistency setting or objstore read policy
	RF       int
	// ReplInterval is the object store's anti-entropy period (zero for the
	// other backends).
	ReplInterval time.Duration
	Fault        bool

	Runtime  float64 // measured run-phase throughput, ops/s
	Mean     time.Duration
	ReadP99  time.Duration
	WriteP99 time.Duration

	Consistency consistency.Report
}

// SpectrumResults collects the full spectrum grid.
type SpectrumResults []SpectrumResult

// spectrumCell is one grid point to run.
type spectrumCell struct {
	db       string
	lv       ConsistencySetting // Cassandra cells
	mode     objstore.ReadMode  // object-store cells
	rf       int
	interval time.Duration // object-store cells
	spec     ycsb.Spec
	fault    bool
}

// spectrumAnchorRF picks the replication factor for the cross-backend
// comparison cells: the paper's recommended 3 when swept, otherwise the
// largest swept factor.
func spectrumAnchorRF(o Options) int {
	for _, f := range o.ReplicationFactors {
		if f == 3 {
			return 3
		}
	}
	return o.ReplicationFactors[len(o.ReplicationFactors)-1]
}

// spectrumCells enumerates the canonical order: workload-major; per
// workload the anchor-RF backend comparison (HBase, the three Cassandra
// levels, objstore read-quorum), then the object store's RF sweep at the
// fastest anti-entropy interval and its interval sweep at the anchor RF;
// finally one fault-injected object-store cell per interval.
func spectrumCells(o Options) []spectrumCell {
	anchor := spectrumAnchorRF(o)
	ivals := o.SpectrumReplIntervals
	fastest := ivals[0]
	var cells []spectrumCell
	for _, spec := range auditSpecs(o) {
		cells = append(cells, spectrumCell{db: "HBase", lv: ConsistencySetting{Name: "strong"}, rf: anchor, spec: spec})
		for _, lv := range levels() {
			cells = append(cells, spectrumCell{db: "Cassandra", lv: lv, rf: anchor, spec: spec})
		}
		cells = append(cells, spectrumCell{
			db: "ObjStore", mode: objstore.ReadQuorumFresh, rf: anchor, interval: fastest, spec: spec,
		})
		for _, rf := range o.ReplicationFactors {
			cells = append(cells, spectrumCell{
				db: "ObjStore", mode: objstore.ReadOne, rf: rf, interval: fastest, spec: spec,
			})
		}
		for _, iv := range ivals[1:] {
			cells = append(cells, spectrumCell{
				db: "ObjStore", mode: objstore.ReadOne, rf: anchor, interval: iv, spec: spec,
			})
		}
	}
	for _, iv := range ivals {
		cells = append(cells, spectrumCell{
			db: "ObjStore", mode: objstore.ReadOne, rf: anchor, interval: iv,
			spec: ycsb.ReadUpdate(o.StressRecords), fault: true,
		})
	}
	return cells
}

// RunSpectrum runs the replication-spectrum grid. Each cell is a
// self-contained deployment with a fresh oracle, fanned out across the
// sweep scheduler; like every experiment the report is bit-identical for
// any parallelism.
func RunSpectrum(o Options) (SpectrumResults, error) {
	cells := spectrumCells(o)
	return runCells(o.workers(), len(cells), func(i int) (SpectrumResult, error) {
		res, err := runSpectrumCell(o, cells[i])
		if err != nil {
			return res, fmt.Errorf("spectrum %s/%s/rf%d: %w", cells[i].db, cells[i].level(), cells[i].rf, err)
		}
		return res, nil
	})
}

// level names the cell's consistency setting for reports.
func (c spectrumCell) level() string {
	if c.db == "ObjStore" {
		return "async/" + c.mode.String()
	}
	return c.lv.Name
}

// tailOf returns h's p99, or zero for an absent/empty histogram.
func tailOf(h *stats.Histogram) time.Duration {
	if h == nil || h.Count() == 0 {
		return 0
	}
	return h.Percentile(99)
}

// writeHistogram picks the run's mutation histogram: updates for the
// read&update mix, inserts for read-latest.
func writeHistogram(res *ycsb.Result) *stats.Histogram {
	upd, ins := res.PerOp[ycsb.OpUpdate], res.PerOp[ycsb.OpInsert]
	if upd != nil && (ins == nil || upd.Count() >= ins.Count()) {
		return upd
	}
	return ins
}

// runSpectrumCell deploys one backend, attaches an oracle (AckAsync for
// the object store), loads, runs the workload (optionally failing and
// recovering a server mid-run), lets replication settle, and snapshots
// the report.
func runSpectrumCell(o Options, c spectrumCell) (SpectrumResult, error) {
	var d *deployment
	switch c.db {
	case "HBase":
		d = deployHBase(o, c.rf, c.spec)
	case "Cassandra":
		oc := o
		oc.MutationStageDelay = auditMutationStage
		d = deployCassandra(oc, c.rf, c.lv.Read, c.lv.Write)
	default:
		d = deployObjstore(o, c.rf, c.interval, c.mode)
	}
	oracle := consistency.New()
	switch {
	case d.hb != nil:
		d.hb.SetOracle(oracle)
	case d.ca != nil:
		d.ca.SetOracle(oracle)
	default:
		if oracle != nil {
			oracle.SetAckSemantics(consistency.AckAsync)
		}
		d.obj.SetOracle(oracle)
	}
	out := SpectrumResult{
		DB: c.db, Workload: c.spec.Name, Level: c.level(),
		RF: c.rf, ReplInterval: c.interval, Fault: c.fault,
	}
	err := d.drive(func(p *sim.Proc) {
		w := ycsb.NewWorkload(c.spec)
		d.loadAndSettle(p, w, o.Threads)
		rcfg := ycsb.RunConfig{
			Threads:        o.Threads,
			Ops:            o.StressOps,
			WarmupFraction: o.WarmupFraction,
			Oracle:         oracle,
		}
		if c.fault {
			// Fail one server a quarter into the run and hold it down for a
			// fixed wall of simulated time. Op-based recovery (the audit's
			// scheme) would shrink the outage below the async retry budget
			// at small scales, and the spillover-then-updater path — the
			// mechanism whose interval dependence FS3 measures — needs the
			// target to stay down past the retries.
			victim := d.clus.Nodes[o.ServerNodes/2]
			rcfg.Events = []ycsb.RunEvent{
				{AfterOps: o.StressOps / 4, Fn: func() {
					victim.Fail()
					d.k.Go("spectrum-recover", func(q *sim.Proc) {
						q.Sleep(spectrumFaultDowntime)
						victim.Recover()
					})
				}},
			}
		}
		run := c.spec
		run.RecordCount = w.Inserted()
		wl := ycsb.NewWorkload(run)
		res := ycsb.Run(p, d.newClient, wl, rcfg)
		out.Runtime = res.Throughput
		out.Mean = res.MeanLatency()
		out.ReadP99 = tailOf(res.PerOp[ycsb.OpRead])
		out.WriteP99 = tailOf(writeHistogram(&res))
		// Settle long enough for at least two anti-entropy passes (the
		// object store's convergence is interval-bounded) and, under
		// fault injection, for the post-recovery catch-up to finish.
		settle := quiesce
		if 2*c.interval > settle {
			settle = 2 * c.interval
		}
		if c.fault && settle < auditFaultSettle {
			settle = auditFaultSettle
		}
		p.Sleep(settle)
	})
	if oracle != nil {
		out.Consistency = oracle.Report()
	}
	return out, err
}

// get returns the healthy cell for (db, workload, level, rf, interval), or
// nil. A zero interval matches any (the non-objstore backends).
func (r SpectrumResults) get(db, workload, level string, rf int, interval time.Duration) *SpectrumResult {
	for i := range r {
		m := &r[i]
		if m.DB == db && m.Workload == workload && m.Level == level && m.RF == rf && !m.Fault &&
			(interval == 0 || m.ReplInterval == interval) {
			return m
		}
	}
	return nil
}

// faults returns the fault-injected cells in interval order.
func (r SpectrumResults) faults() []*SpectrumResult {
	var out []*SpectrumResult
	for i := range r {
		if r[i].Fault {
			out = append(out, &r[i])
		}
	}
	return out
}

// Table renders the spectrum as one row per cell.
func (r SpectrumResults) Table() *stats.Table {
	t := stats.NewTable("Replication spectrum — synchronous to asynchronous replication side by side",
		"db", "workload", "level", "rf", "repl-interval", "fault",
		"ops/sec", "mean-latency", "read-p99", "write-p99",
		"reads", "stale-%", "async-regress", "mono-viol",
		"tvis-all-p50", "tvis-all-p99")
	for _, m := range r {
		c := m.Consistency
		interval := "-"
		if m.ReplInterval > 0 {
			interval = m.ReplInterval.String()
		}
		t.AddRow(m.DB, m.Workload, m.Level, m.RF, interval, m.Fault,
			m.Runtime, m.Mean.Round(time.Microsecond).String(),
			m.ReadP99.Round(time.Microsecond).String(),
			m.WriteP99.Round(time.Microsecond).String(),
			c.Reads, fmt.Sprintf("%.3f", 100*c.StaleFraction()),
			c.AsyncRegressions, c.MonotonicViolations,
			c.TVisAllP50.Round(time.Microsecond).String(),
			c.TVisAllP99.Round(time.Microsecond).String())
	}
	return t
}

// CheckSpectrum evaluates the spectrum's qualitative claims.
func CheckSpectrum(o Options, r SpectrumResults) []Finding {
	anchor := spectrumAnchorRF(o)
	fastest := o.SpectrumReplIntervals[0]
	var fs []Finding

	// FS1: the async-vs-CL=ONE trade at the anchor cell, on the
	// update-heavy mix where read/write interleaving exposes it. Acking
	// after one durable local apply buys a write tail no worse than
	// CL=ONE's synchronous fan-out (within GC-pause noise), and the bill
	// arrives on the read side: read-one staleness far exceeds CL=ONE's —
	// ONE's replicas were already in flight at ack time and its reads pin
	// the main replica, while rotating reads here race replication that
	// only starts after the ack — including reads that regress behind
	// in-flight replication (async regressions), a signature no
	// synchronous setting produces.
	pass1, detail1 := true, ""
	{
		spec := ycsb.ReadUpdate(o.StressRecords)
		obj := r.get("ObjStore", spec.Name, "async/read-one", anchor, fastest)
		one := r.get("Cassandra", spec.Name, "ONE", anchor, 0)
		if obj == nil || one == nil {
			pass1 = false
		} else {
			if obj.Consistency.StaleFraction() <= one.Consistency.StaleFraction() ||
				obj.Consistency.AsyncRegressions == 0 ||
				obj.WriteP99 > one.WriteP99*3/2 {
				pass1 = false
			}
			detail1 = fmt.Sprintf("%s: write-p99 async=%v ONE=%v, stale async=%.3f%% ONE=%.3f%%, async-regress async=%d ONE=%d",
				spec.Name, obj.WriteP99.Round(time.Microsecond), one.WriteP99.Round(time.Microsecond),
				100*obj.Consistency.StaleFraction(), 100*one.Consistency.StaleFraction(),
				obj.Consistency.AsyncRegressions, one.Consistency.AsyncRegressions)
		}
	}
	fs = append(fs, Finding{
		ID:     "FS1",
		Claim:  "async ack matches CL=ONE's write tail and pays for it in read-side visibility: higher staleness plus async regressions on the read&update mix",
		Pass:   pass1 && detail1 != "",
		Detail: detail1,
	})

	// FS2: write latency decouples from RF while visibility does not —
	// across the object store's RF sweep the write tail stays flat
	// (within noise) while TVisAll keeps growing with the replica count.
	pass2, detail2 := true, ""
	for _, spec := range auditSpecs(o) {
		var cells []*SpectrumResult
		for _, rf := range o.ReplicationFactors {
			if m := r.get("ObjStore", spec.Name, "async/read-one", rf, fastest); m != nil {
				cells = append(cells, m)
			}
		}
		if len(cells) < 2 {
			pass2 = false
			continue
		}
		first, last := cells[0], cells[len(cells)-1]
		// Flat: the largest swept RF's write tail within 1.5× of the
		// smallest's (GC-pause noise), not the paper's monotone growth.
		if last.WriteP99 > first.WriteP99*3/2 {
			pass2 = false
		}
		if last.Consistency.TVisAllP99 <= first.Consistency.TVisAllP99 {
			pass2 = false
		}
		detail2 += fmt.Sprintf("%s: write-p99 rf%d=%v rf%d=%v, tvis-all-p99 rf%d=%v rf%d=%v  ",
			spec.Name, first.RF, first.WriteP99.Round(time.Microsecond),
			last.RF, last.WriteP99.Round(time.Microsecond),
			first.RF, first.Consistency.TVisAllP99.Round(time.Microsecond),
			last.RF, last.Consistency.TVisAllP99.Round(time.Microsecond))
	}
	fs = append(fs, Finding{
		ID:     "FS2",
		Claim:  "asynchronous replication decouples the write tail from RF while all-replica visibility keeps growing with it",
		Pass:   pass2 && detail2 != "",
		Detail: detail2,
	})

	// FS3: under fault injection the anti-entropy interval bounds
	// convergence. Jobs for the down server exhaust their retries and
	// spill to the updater, which only runs on the replicator's period —
	// so the time for the recovered replica to see the down-window writes
	// (the all-replica visibility tail) grows with the interval.
	pass3, detail3 := true, ""
	if f := r.faults(); len(f) >= 2 {
		for i := 1; i < len(f); i++ {
			if f[i].Consistency.TVisAllP99 <= f[i-1].Consistency.TVisAllP99 {
				pass3 = false
			}
		}
		for _, m := range f {
			detail3 += fmt.Sprintf("interval=%v: tvis-all-p99=%v stale=%.3f%% async-regress=%d  ",
				m.ReplInterval, m.Consistency.TVisAllP99.Round(time.Millisecond),
				100*m.Consistency.StaleFraction(), m.Consistency.AsyncRegressions)
		}
	} else {
		pass3 = false
	}
	fs = append(fs, Finding{
		ID:     "FS3",
		Claim:  "under fault injection the anti-entropy interval bounds recovery: the all-replica visibility tail grows with the replicator period",
		Pass:   pass3 && detail3 != "",
		Detail: detail3,
	})

	// FS4: read-quorum-of-fresh buys back read-side staleness without
	// touching the write path: at the anchor cell its stale fraction is
	// at most read-one's, at a higher read tail.
	pass4, detail4 := true, ""
	for _, spec := range auditSpecs(o) {
		one := r.get("ObjStore", spec.Name, "async/read-one", anchor, fastest)
		q := r.get("ObjStore", spec.Name, "async/read-quorum", anchor, fastest)
		if one == nil || q == nil {
			pass4 = false
			continue
		}
		if q.Consistency.StaleFraction() > one.Consistency.StaleFraction() {
			pass4 = false
		}
		detail4 += fmt.Sprintf("%s: stale read-one=%.3f%% read-quorum=%.3f%%, read-p99 read-one=%v read-quorum=%v  ",
			spec.Name, 100*one.Consistency.StaleFraction(), 100*q.Consistency.StaleFraction(),
			one.ReadP99.Round(time.Microsecond), q.ReadP99.Round(time.Microsecond))
	}
	fs = append(fs, Finding{
		ID:     "FS4",
		Claim:  "read-quorum-of-fresh reduces observed staleness versus read-one at the same write path",
		Pass:   pass4 && detail4 != "",
		Detail: detail4,
	})

	return fs
}
