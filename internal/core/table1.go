package core

import (
	"fmt"

	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

// Table1 renders the paper's Table 1: the five stress workloads, their
// typical usages, operation mixes, and request distributions.
func Table1() *stats.Table {
	t := stats.NewTable("Table 1 — workloads of the stress benchmarks for replication and consistency",
		"workload", "typical-usage", "operations", "records-distribution")
	for _, s := range []ycsb.Spec{
		ycsb.ReadMostly(0),
		ycsb.ReadLatest(0),
		ycsb.ReadUpdate(0),
		ycsb.ReadModifyWrite(0),
		ycsb.ScanShortRanges(0),
	} {
		t.AddRow(s.Name, s.Usage, s.Comment, string(s.RequestDistribution))
	}
	return t
}

// VerifyTable1 checks the presets against the paper's published ratios,
// returning a non-nil error naming the first mismatch. It is the
// "experiment" for Table 1: the table is definitional, so reproduction
// means byte-for-byte agreement of the mixes.
func VerifyTable1() error {
	type row struct {
		spec ycsb.Spec
		mix  map[ycsb.OpType]float64
		dist ycsb.Distribution
	}
	rows := []row{
		{ycsb.ReadMostly(0), map[ycsb.OpType]float64{ycsb.OpRead: 0.95, ycsb.OpUpdate: 0.05}, ycsb.DistZipfian},
		{ycsb.ReadLatest(0), map[ycsb.OpType]float64{ycsb.OpRead: 0.80, ycsb.OpInsert: 0.20}, ycsb.DistLatest},
		{ycsb.ReadUpdate(0), map[ycsb.OpType]float64{ycsb.OpRead: 0.50, ycsb.OpUpdate: 0.50}, ycsb.DistZipfian},
		{ycsb.ReadModifyWrite(0), map[ycsb.OpType]float64{ycsb.OpRead: 0.50, ycsb.OpReadModifyWrite: 0.50}, ycsb.DistZipfian},
		{ycsb.ScanShortRanges(0), map[ycsb.OpType]float64{ycsb.OpScan: 0.95, ycsb.OpInsert: 0.05}, ycsb.DistZipfian},
	}
	for _, r := range rows {
		got := map[ycsb.OpType]float64{
			ycsb.OpRead:            r.spec.ReadProportion,
			ycsb.OpUpdate:          r.spec.UpdateProportion,
			ycsb.OpInsert:          r.spec.InsertProportion,
			ycsb.OpScan:            r.spec.ScanProportion,
			ycsb.OpReadModifyWrite: r.spec.RMWProportion,
		}
		// Iterate operations in declaration order, not map order: which
		// mismatch gets reported (and the bits of the float sum) must not
		// depend on map iteration.
		ops := []ycsb.OpType{ycsb.OpRead, ycsb.OpUpdate, ycsb.OpInsert, ycsb.OpScan, ycsb.OpReadModifyWrite}
		for _, op := range ops {
			if want, checked := r.mix[op]; checked && got[op] != want {
				return fmt.Errorf("table1 %s: %v proportion = %v, want %v", r.spec.Name, op, got[op], want)
			}
		}
		var sum float64
		for _, op := range ops {
			sum += got[op]
		}
		if sum != 1 {
			return fmt.Errorf("table1 %s: proportions sum to %v", r.spec.Name, sum)
		}
		if r.spec.RequestDistribution != r.dist {
			return fmt.Errorf("table1 %s: distribution %q, want %q", r.spec.Name, r.spec.RequestDistribution, r.dist)
		}
	}
	return nil
}
