package core

import (
	"fmt"
	"time"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

// SLA is a service-level agreement of the form the paper's §6 proposes as
// the better way to specify stress level: "at least Percentile percent of
// requests get response within Limit". Compliance is checked against the
// intended-latency distribution, so client backlog cannot hide a miss.
type SLA struct {
	Percentile float64
	Limit      time.Duration
}

// String renders the SLA, e.g. "p95 ≤ 10ms".
func (s SLA) String() string {
	return fmt.Sprintf("p%g ≤ %v", s.Percentile, s.Limit)
}

// Met reports whether a run satisfied the SLA.
func (s SLA) Met(res ycsb.Result) bool {
	return res.Intended.Percentile(s.Percentile) <= s.Limit
}

// SLAProbe is one step of the search.
type SLAProbe struct {
	Target  float64
	Runtime float64
	Latency time.Duration // intended latency at the SLA percentile
	Pass    bool
}

// SLAResult is the outcome of RunSLASearch: the highest sustainable
// throughput that still meets the SLA, and the probe trail.
type SLAResult struct {
	DB            string
	Workload      string
	SLA           SLA
	MaxThroughput float64
	Probes        []SLAProbe
}

// Table renders the probe trail.
func (r SLAResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("SLA search — %s, %s, %s → max sustainable %.0f ops/s",
			r.DB, r.Workload, r.SLA, r.MaxThroughput),
		"target-ops/sec", "runtime-ops/sec", "latency-at-percentile", "meets-sla")
	for _, p := range r.Probes {
		t.AddRow(p.Target, p.Runtime, p.Latency.Round(time.Microsecond).String(), p.Pass)
	}
	return t
}

// RunSLASearch finds, by bisection over the target throughput, the
// maximum offered load at which the given database and workload still
// meet the SLA — the §6 extension that lets different systems be compared
// at equal user experience instead of equal offered load.
func RunSLASearch(o Options, db string, rf int, specFn func(int64) ycsb.Spec, sla SLA, probes int) (SLAResult, error) {
	if probes < 1 {
		probes = 6
	}
	out := SLAResult{DB: db, SLA: sla}
	spec := specFn(o.StressRecords)
	out.Workload = spec.Name

	var d *deployment
	if db == "HBase" {
		d = deployHBase(o, rf, spec)
	} else {
		d = deployCassandra(o, rf, kv.One, kv.One)
	}
	err := d.drive(func(p *sim.Proc) {
		w := ycsb.NewWorkload(spec)
		d.loadAndSettle(p, w, o.Threads)
		records := w.Inserted()

		probe := func(target float64) ycsb.Result {
			run := specFn(records)
			run.RecordCount = records
			wl := ycsb.NewWorkload(run)
			res := ycsb.Run(p, d.newClient, wl, ycsb.RunConfig{
				Threads:          o.Threads,
				Ops:              o.StressOps,
				TargetThroughput: target,
				WarmupFraction:   o.WarmupFraction,
			})
			records = wl.Inserted()
			p.Sleep(quiesce / 4)
			return res
		}

		// Capacity probe bounds the search.
		cap := probe(0).Throughput
		lo, hi := 0.0, cap*1.25
		for i := 0; i < probes; i++ {
			target := (lo + hi) / 2
			res := probe(target)
			pass := sla.Met(res)
			out.Probes = append(out.Probes, SLAProbe{
				Target:  target,
				Runtime: res.Throughput,
				Latency: res.Intended.Percentile(sla.Percentile),
				Pass:    pass,
			})
			if pass {
				lo = target
				if target > out.MaxThroughput {
					out.MaxThroughput = target
				}
			} else {
				hi = target
			}
		}
	})
	return out, err
}
