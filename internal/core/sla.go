package core

import (
	"fmt"
	"time"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

// SLA is a service-level agreement of the form the paper's §6 proposes as
// the better way to specify stress level: "at least Percentile percent of
// requests get response within Limit". Compliance is checked against the
// intended-latency distribution, so client backlog cannot hide a miss.
type SLA struct {
	Percentile float64
	Limit      time.Duration
}

// String renders the SLA, e.g. "p95 ≤ 10ms".
func (s SLA) String() string {
	return fmt.Sprintf("p%g ≤ %v", s.Percentile, s.Limit)
}

// Met reports whether a run satisfied the SLA.
func (s SLA) Met(res ycsb.Result) bool {
	return res.Intended.Percentile(s.Percentile) <= s.Limit
}

// SLAProbe is one step of the search.
type SLAProbe struct {
	Target  float64
	Runtime float64
	Latency time.Duration // intended latency at the SLA percentile
	Pass    bool
}

// SLAResult is the outcome of RunSLASearch: the highest sustainable
// throughput that still meets the SLA, and the probe trail.
type SLAResult struct {
	DB            string
	Workload      string
	SLA           SLA
	MaxThroughput float64
	Probes        []SLAProbe
}

// Table renders the probe trail.
func (r SLAResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("SLA search — %s, %s, %s → max sustainable %.0f ops/s",
			r.DB, r.Workload, r.SLA, r.MaxThroughput),
		"target-ops/sec", "runtime-ops/sec", "latency-at-percentile", "meets-sla")
	for _, p := range r.Probes {
		t.AddRow(p.Target, p.Runtime, p.Latency.Round(time.Microsecond).String(), p.Pass)
	}
	return t
}

// RunSLASearch finds, by bisection over the target throughput, the
// maximum offered load at which the given database and workload still
// meet the SLA — the §6 extension that lets different systems be compared
// at equal user experience instead of equal offered load.
//
// Each probe is a self-contained deployment submitted through the sweep
// scheduler: isolating probes keeps a backlogged, overloaded probe from
// polluting the one after it, and makes every probe's result a pure
// function of (Options, target) — so the search outcome is independent of
// Options.Parallelism even though bisection is inherently sequential (each
// probe's target depends on the previous verdict).
func RunSLASearch(o Options, db string, rf int, specFn func(int64) ycsb.Spec, sla SLA, probes int) (SLAResult, error) {
	if probes < 1 {
		probes = 6
	}
	out := SLAResult{DB: db, SLA: sla}
	out.Workload = specFn(o.StressRecords).Name

	probe := func(target float64) (ycsb.Result, error) {
		cells, err := runCells(o.workers(), 1, func(int) (ycsb.Result, error) {
			return runSLAProbe(o, db, rf, specFn, target)
		})
		if err != nil {
			return ycsb.Result{}, err
		}
		return cells[0], nil
	}

	// Capacity probe bounds the search.
	capRes, err := probe(0)
	if err != nil {
		return out, err
	}
	lo, hi := 0.0, capRes.Throughput*1.25
	for i := 0; i < probes; i++ {
		target := (lo + hi) / 2
		res, err := probe(target)
		if err != nil {
			return out, err
		}
		pass := sla.Met(res)
		out.Probes = append(out.Probes, SLAProbe{
			Target:  target,
			Runtime: res.Throughput,
			Latency: res.Intended.Percentile(sla.Percentile),
			Pass:    pass,
		})
		if pass {
			lo = target
			if target > out.MaxThroughput {
				out.MaxThroughput = target
			}
		} else {
			hi = target
		}
	}
	return out, nil
}

// runSLAProbe deploys the database fresh, loads the base records, and runs
// the workload once at the given offered load — one probe cell.
func runSLAProbe(o Options, db string, rf int, specFn func(int64) ycsb.Spec, target float64) (ycsb.Result, error) {
	spec := specFn(o.StressRecords)
	var d *deployment
	if db == "HBase" {
		d = deployHBase(o, rf, spec)
	} else {
		d = deployCassandra(o, rf, kv.One, kv.One)
	}
	var out ycsb.Result
	err := d.drive(func(p *sim.Proc) {
		w := ycsb.NewWorkload(spec)
		d.loadAndSettle(p, w, o.Threads)
		run := specFn(w.Inserted())
		run.RecordCount = w.Inserted()
		wl := ycsb.NewWorkload(run)
		out = ycsb.Run(p, d.newClient, wl, ycsb.RunConfig{
			Threads:          o.Threads,
			Ops:              o.StressOps,
			TargetThroughput: target,
			WarmupFraction:   o.WarmupFraction,
		})
	})
	return out, err
}
