package core

import (
	"strings"
	"testing"
	"time"

	"cloudbench/internal/trace"
)

// TestTraceBreakdownSmoke runs the trace grid end to end at -short scale
// with enough replication factors for FT2's RF ≥ 3 series to exist.
func TestTraceBreakdownSmoke(t *testing.T) {
	o := SmokeOptions()
	o.ReplicationFactors = []int{1, 3, 4}
	res, err := RunTraceBreakdown(o)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(traceCells(o)); len(res) != want {
		t.Fatalf("cells = %d, want %d", len(res), want)
	}
	for _, f := range CheckTrace(res) {
		t.Log(f)
		if !f.Pass {
			t.Errorf("finding failed: %s", f)
		}
	}
	// Every cell served traffic and decomposed both halves of the 50/50
	// workload.
	for _, m := range res {
		if m.Runtime <= 0 {
			t.Errorf("empty cell %s/%s/rf%d", m.DB, m.Level, m.RF)
		}
		for _, class := range []string{"read", "update"} {
			cs := m.Trace.Class(class)
			if cs == nil || cs.Ops == 0 || len(cs.Phases) == 0 {
				t.Errorf("cell %s/%s/rf%d: class %s undecomposed", m.DB, m.Level, m.RF, class)
			}
		}
	}
	out := res.Table().String()
	for _, want := range []string{"share-%", "phase-p50", "read-repair", "coord-queue", "HBase", "writeALL"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

// synthTrace builds a synthetic grid: HBase control cells (storage-only
// reads, WAL-paying updates) plus Cassandra CL=ONE cells whose read
// read-repair shares are given per RF.
func synthTrace(rfs []int, repairShares []float64) TraceResults {
	var res TraceResults
	for _, rf := range rfs {
		res = append(res, TraceResult{DB: "HBase", Level: "strong", RF: rf, Runtime: 1,
			Trace: trace.Report{Classes: []trace.ClassStat{
				{Class: "read", Ops: 100, Total: time.Second, Phases: []trace.PhaseStat{
					{Phase: "storage", Count: 100, Total: time.Second / 2, Share: 0.5},
				}},
				{Class: "update", Ops: 100, Total: time.Second, Phases: []trace.PhaseStat{
					{Phase: "wal", Count: 100, Total: time.Second / 4, Share: 0.25},
				}},
			}}})
	}
	for i, rf := range rfs {
		res = append(res, TraceResult{DB: "Cassandra", Level: "ONE", RF: rf, Runtime: 1,
			Trace: trace.Report{Classes: []trace.ClassStat{
				{Class: "read", Ops: 100, Total: time.Second, Phases: []trace.PhaseStat{
					{Phase: "fanout", Count: 200, Total: time.Second / 5, Share: 0.2},
					{Phase: "read-repair", Count: 100, Share: repairShares[i]},
				}},
				{Class: "update", Ops: 100, Total: time.Second, Phases: []trace.PhaseStat{
					{Phase: "storage", Count: 300, Total: time.Second / 2, Share: 0.5},
				}},
			}}})
	}
	return res
}

// TestCheckTraceShape exercises the findings checker on synthetic grids,
// independent of the simulator.
func TestCheckTraceShape(t *testing.T) {
	rfs := []int{1, 3, 4}

	good := synthTrace(rfs, []float64{0.3, 0.5, 0.6})
	for _, f := range CheckTrace(good) {
		if !f.Pass {
			t.Errorf("good grid failed %s: %s", f.ID, f.Detail)
		}
	}

	// A plateau across the RF ≥ 3 points breaks FT2.
	plateau := synthTrace(rfs, []float64{0.3, 0.5, 0.5})
	if f := findingByID(CheckTrace(plateau), "FT2"); f == nil || f.Pass {
		t.Error("FT2 passed on a non-increasing repair-share series")
	}

	// Fan-out spans on an HBase read break FT1.
	fanout := synthTrace(rfs, []float64{0.3, 0.5, 0.6})
	cs := fanout[0].Trace.Class("read")
	cs.Phases = append(cs.Phases, trace.PhaseStat{Phase: "fanout", Count: 1})
	if f := findingByID(CheckTrace(fanout), "FT1"); f == nil || f.Pass {
		t.Error("FT1 passed with HBase read fan-out spans")
	}

	// WAL spans on the Cassandra update path break FT3.
	wal := synthTrace(rfs, []float64{0.3, 0.5, 0.6})
	cs = wal[len(wal)-1].Trace.Class("update")
	cs.Phases = append(cs.Phases, trace.PhaseStat{Phase: "wal", Count: 1})
	if f := findingByID(CheckTrace(wal), "FT3"); f == nil || f.Pass {
		t.Error("FT3 passed with Cassandra WAL spans")
	}
}
