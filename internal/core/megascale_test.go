package core

import (
	"reflect"
	"testing"
)

// TestMegaScaleRuns checks the partitioned deployment end to end at
// several shard counts: every segment completes its session churn, the
// cumulative process count matches the configured sessions, and the
// cross-segment traffic flows with no errors.
func TestMegaScaleRuns(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		o := MegaSmokeOptions()
		o.Shards = shards
		res, err := RunMegaScale(o)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(res.Segments) != shards {
			t.Fatalf("shards=%d: %d segments", shards, len(res.Segments))
		}
		if res.Errors != 0 {
			t.Errorf("shards=%d: %d errors", shards, res.Errors)
		}
		if want := o.Sessions / int64(shards) * int64(shards); res.Sessions != want {
			t.Errorf("shards=%d: %d sessions, want %d", shards, res.Sessions, want)
		}
		for i, seg := range res.Segments {
			if seg.Ops == 0 {
				t.Errorf("shards=%d segment %d measured no ops", shards, i)
			}
		}
		if shards > 1 && res.RemoteReads == 0 {
			t.Errorf("shards=%d: no cross-segment reads flowed", shards)
		}
		if shards > 1 && res.Windows == 0 {
			t.Errorf("shards=%d: no conservative windows executed", shards)
		}
	}
}

// TestMegaScaleIndivisible pins the divisibility contract.
func TestMegaScaleIndivisible(t *testing.T) {
	o := MegaSmokeOptions()
	o.Shards = 3 // 16 nodes don't split into 3 segments
	if _, err := RunMegaScale(o); err == nil {
		t.Fatal("expected an error for an indivisible node count")
	}
}

// TestMegaScaleDeterministic pins determinism across worker counts and
// window modes: identical options must give bit-identical results whether
// windows run on 1 or 8 pinned workers — the megascale version of the
// sharded bit-identity contract (adaptive widening is on by default, so
// this covers it too).
func TestMegaScaleDeterministic(t *testing.T) {
	o := MegaSmokeOptions()
	o.Shards = 4
	o.Workers = 1
	a, err := RunMegaScale(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	b, err := RunMegaScale(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("megascale differs across worker counts:\n  a: %+v\n  b: %+v", a, b)
	}
}
