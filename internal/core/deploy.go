package core

import (
	"time"

	"cloudbench/internal/cassandra"
	"cloudbench/internal/cluster"
	"cloudbench/internal/hbase"
	"cloudbench/internal/kv"
	"cloudbench/internal/objstore"
	"cloudbench/internal/sim"
	"cloudbench/internal/storage"
	"cloudbench/internal/ycsb"
)

// deployment is one freshly provisioned database under test.
type deployment struct {
	k          *sim.Kernel
	group      *sim.ShardGroup // non-nil when Options.Shards > 1
	clus       *cluster.Cluster
	clientNode *cluster.Node
	newClient  ycsb.ClientFactory
	flush      func()
	gc         *cluster.GCController

	// backends, exactly one non-nil
	hb  *hbase.DB
	ca  *cassandra.DB
	obj *objstore.DB
}

// engineConfig derives the storage engine configuration for an experiment.
// Block and cache sizes are scaled down with the record counts so the
// working set exceeds the cache — avoiding the fit-in-memory problem §3.1
// warns would make read benchmarks meaningless.
func engineConfig(o Options) storage.Config {
	cfg := storage.DefaultConfig()
	cfg.CacheBytes = o.CacheBytes
	cfg.BlockBytes = 4 << 10
	// Scale the memtable to the experiment so flushes happen a handful
	// of times per run rather than never or constantly.
	cfg.MemtableBytes = 256 << 10
	return cfg
}

// newKernelAndCluster builds the 16-machine rack. With Options.Shards > 1
// it builds a sharded kernel group instead of a plain kernel and deploys
// the rack on the group's home shard: benchmark clients touch every node
// directly (SendTo/RoundTrip are process-carried), so the rack model
// cannot be split across member kernels without changing its event order.
// The home shard inherits the cell seed unchanged, which is what makes
// `-shards N` byte-identical to `-shards 1` for every experiment — the
// window engine chops the same sequential event stream into conservative
// windows without reordering it. Spatially partitioned parallelism is
// exercised by the shardscale workload, whose segments are independent
// clusters pinned one per shard.
func newKernelAndCluster(o Options) (*sim.Kernel, *cluster.Cluster, *sim.ShardGroup) {
	ccfg := o.Cluster
	ccfg.Nodes = o.ServerNodes + 1
	if o.Shards > 1 {
		g := newShardGroup(o, cluster.PlanShards(ccfg, o.Shards))
		k := g.Shard(0).Kernel()
		return k, cluster.New(k, ccfg), g
	}
	k := sim.NewKernel(o.Seed)
	return k, cluster.New(k, ccfg), nil
}

// newShardGroup builds the member-kernel group for a shard plan: the
// per-pair delivery floors feed adaptive window widening, and the pinned
// worker cap comes straight from Options.
func newShardGroup(o Options, plan cluster.ShardPlan) *sim.ShardGroup {
	g := sim.NewShardGroup(o.Seed, plan.Shards, plan.Lookahead)
	g.SetPairLookahead(plan.PairLookahead)
	g.SetWorkers(o.ShardWorkers)
	g.SetSpawnPerWindow(envSpawnWindows())
	return g
}

// deployHBase provisions HBase at the given replication factor with
// regions pre-split for the workload's key space.
func deployHBase(o Options, rf int, spec ycsb.Spec) *deployment {
	k, clus, group := newKernelAndCluster(o)
	servers := clus.Nodes[:o.ServerNodes]
	clientNode := clus.Nodes[o.ServerNodes]

	cfg := hbase.DefaultConfig()
	cfg.Replication = rf
	cfg.Engine = engineConfig(o)
	cfg.MemReplication = o.MemReplication
	cfg.RegionsPerServer = o.RegionsPerServer
	splits := spec.SplitPoints(o.ServerNodes * o.RegionsPerServer)
	db := hbase.New(k, cfg, servers, clientNode, splits)

	d := &deployment{
		k:          k,
		group:      group,
		clus:       clus,
		clientNode: clientNode,
		newClient:  func() kv.Client { return db.NewClient(clientNode) },
		flush:      db.FlushAll,
		hb:         db,
	}
	if o.EnableGC {
		d.gc = cluster.StartGC(k, o.GC, servers)
	}
	return d
}

// deployCassandra provisions Cassandra at the given replication factor and
// consistency levels.
func deployCassandra(o Options, rf int, readCL, writeCL kv.ConsistencyLevel) *deployment {
	k, clus, group := newKernelAndCluster(o)
	servers := clus.Nodes[:o.ServerNodes]
	clientNode := clus.Nodes[o.ServerNodes]

	cfg := cassandra.DefaultConfig()
	cfg.Replication = rf
	cfg.Engine = engineConfig(o)
	cfg.Engine.SyncWAL = false // commitlog_sync: periodic
	cfg.ReadCL = readCL
	cfg.WriteCL = writeCL
	cfg.ReadRepairChance = o.ReadRepairChance
	cfg.MutationStageMeanDelay = o.MutationStageDelay
	db := cassandra.New(k, cfg, servers)

	d := &deployment{
		k:          k,
		group:      group,
		clus:       clus,
		clientNode: clientNode,
		newClient:  func() kv.Client { return db.NewClient(clientNode) },
		flush:      db.FlushAll,
		ca:         db,
	}
	if o.EnableGC {
		d.gc = cluster.StartGC(k, o.GC, servers)
	}
	return d
}

// deployObjstore provisions the Swift-style object store at the given
// replication factor, anti-entropy interval, and read policy. Unlike
// Cassandra's periodic commitlog sync, the engine keeps SyncWAL: the W=1
// ack's entire promise is one durable copy.
func deployObjstore(o Options, rf int, interval time.Duration, mode objstore.ReadMode) *deployment {
	k, clus, group := newKernelAndCluster(o)
	servers := clus.Nodes[:o.ServerNodes]
	clientNode := clus.Nodes[o.ServerNodes]

	cfg := objstore.DefaultConfig()
	cfg.Replication = rf
	cfg.Engine = engineConfig(o)
	cfg.ReadMode = mode
	cfg.ReplicatorInterval = interval
	db := objstore.New(k, cfg, servers)

	d := &deployment{
		k:          k,
		group:      group,
		clus:       clus,
		clientNode: clientNode,
		newClient:  func() kv.Client { return db.NewClient(clientNode) },
		flush:      db.FlushAll,
		obj:        db,
	}
	if o.EnableGC {
		d.gc = cluster.StartGC(k, o.GC, servers)
	}
	return d
}

// drive runs fn as the benchmark driver process and executes the
// simulation to completion, stopping the GC pause processes and the
// object store's anti-entropy daemon once the driver finishes so the
// kernel can drain.
func (d *deployment) drive(fn func(p *sim.Proc)) error {
	d.k.Spawn("bench-driver", func(p *sim.Proc) {
		defer func() {
			if d.gc != nil {
				d.gc.Stop()
			}
			if d.obj != nil {
				d.obj.Stop()
			}
		}()
		fn(p)
	})
	if d.group != nil {
		return d.group.Run()
	}
	return d.k.Run()
}

// loadAndSettle loads the workload's base records and lets flushes settle.
func (d *deployment) loadAndSettle(p *sim.Proc, w *ycsb.Workload, threads int) {
	ycsb.Load(p, d.newClient, w, threads, 0, w.Spec.RecordCount)
	if d.flush != nil {
		d.flush()
	}
	p.Sleep(quiesce)
}
