// Package core implements the paper's benchmarking methodology — the
// primary contribution being reproduced. It deploys the simulated HBase
// and Cassandra clusters on the paper's testbed topology (16 machines, 15
// servers + 1 client, single rack) and drives the three benchmark
// families:
//
//   - the micro benchmark for replication (Fig. 1): atomic
//     update/read/insert/scan latency versus replication factor 1–6,
//   - the stress benchmark for replication (Fig. 2): the five Table 1
//     workloads at full speed versus replication factor 1–6, and
//   - the stress benchmark for consistency (Fig. 3): runtime versus target
//     throughput for consistency levels ONE, QUORUM, and write-ALL in
//     Cassandra at replication factor 3.
//
// Experiments are deterministic given Options.Seed.
package core

import (
	"os"
	"strconv"
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/kv"
)

// envShards reads the CLOUDBENCH_SHARDS override, used by CI to run the
// whole suite on sharded kernels (e.g. the race job) without threading a
// flag through every test. 0 means unset (sequential).
func envShards() int {
	if s := os.Getenv("CLOUDBENCH_SHARDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// envShardWorkers reads the CLOUDBENCH_SHARD_WORKERS override, the
// companion knob to CLOUDBENCH_SHARDS: how many OS-level pinned workers a
// sharded group runs windows on. 0 means unset (GOMAXPROCS). Results are
// bit-identical for every value, so CI can pin e.g. 2 workers on a large
// shard count to exercise work-stealing without changing any output.
func envShardWorkers() int {
	if s := os.Getenv("CLOUDBENCH_SHARD_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// envSpawnWindows reads CLOUDBENCH_SPAWN_WINDOWS, a differential/debug
// escape hatch that switches sharded groups back to the legacy
// goroutine-per-window executor (sim.ShardGroup.SetSpawnPerWindow). The
// determinism suite uses it to pin the pinned-worker engine's delivery
// order to the legacy engine's, byte for byte.
func envSpawnWindows() bool {
	return os.Getenv("CLOUDBENCH_SPAWN_WINDOWS") == "1"
}

// Options controls the scale and knobs of every experiment.
type Options struct {
	Seed int64

	// Parallelism bounds the sweep scheduler's worker pool: how many
	// independent sweep cells (each a self-contained single-threaded
	// simulation) run concurrently on host CPUs. 0 means one worker per
	// available CPU (runtime.GOMAXPROCS). Results are bit-identical for
	// every value — cells derive their seeds from Seed alone and are
	// reassembled in canonical sweep order.
	Parallelism int

	// Shards is the number of member kernels each experiment cell runs on
	// (sim.ShardGroup): parallelism *inside* one simulation, orthogonal to
	// Parallelism's across-cell pool. 0 or 1 is the plain sequential
	// kernel. Results are bit-identical for every value — the benchmark
	// deployments place the whole model on the home shard, whose kernel
	// inherits the cell seed unchanged, and the conservative window engine
	// never reorders events. Defaults to $CLOUDBENCH_SHARDS when set.
	Shards int

	// ShardWorkers caps the pinned worker goroutines a sharded group
	// (Shards > 1) executes windows on — sim.ShardGroup.SetWorkers. 0
	// means one per available CPU. Like Shards, it changes wall-clock
	// only, never results. Defaults to $CLOUDBENCH_SHARD_WORKERS when
	// set.
	ShardWorkers int

	// Topology: ServerNodes database machines plus one client machine
	// (which also hosts the HBase master), mirroring the paper's 15+1.
	ServerNodes int
	Cluster     cluster.Config

	// Scale. The paper uses 1 B tiny records (micro) and 100 M × 1 KB
	// records (stress); the simulation scales these down (see the
	// substitution table in DESIGN.md §2).
	MicroRecords  int64
	StressRecords int64
	MicroOps      int64
	StressOps     int64

	// Client shape (§3.1: enough threads that client-side queueing does
	// not pollute latency).
	Threads        int
	WarmupFraction float64

	// MicroThrottle keeps the micro benchmark unsaturated (§4.1 "we keep
	// the load of the testbed in unsaturated state by limiting the
	// number of concurrence requests"), expressed in ops/second; 0 means
	// closed-loop with MicroThreads only.
	MicroThrottle float64
	MicroThreads  int

	// CacheBytes is the per-node block cache. Experiments size it to
	// cover the working set after warmup, matching the paper's testbed
	// where the dataset fits the cluster's aggregate page cache; disks
	// then carry commit logs, flushes, and compactions.
	CacheBytes int64

	// ReplicationFactors is the sweep for Fig. 1 and Fig. 2.
	ReplicationFactors []int

	// Fig3TargetFractions are the target-throughput sweep points,
	// expressed as fractions of the measured CL=ONE capacity per
	// workload.
	Fig3TargetFractions []float64

	// GC models JVM stop-the-world pauses on the server nodes; EnableGC
	// turns them on (both databases are JVM-hosted in the paper's
	// testbed, and pauses are what create replica lag, staleness at
	// CL=ONE, and the slow-replica tail that ALL writes wait out).
	EnableGC bool
	GC       cluster.GCConfig

	// Ablation knobs.
	ReadRepairChance float64 // Cassandra read_repair_chance (A1: set 0)
	MemReplication   bool    // HBase in-memory replication (A2: set false)
	RegionsPerServer int

	// SpectrumReplIntervals is the object store's anti-entropy period
	// sweep for the replication-spectrum experiment, ascending. The first
	// (fastest) interval anchors the cross-backend comparison cells; the
	// rest extend the interval sweep and the fault cells.
	SpectrumReplIntervals []time.Duration

	// MutationStageDelay is Cassandra's per-mutation replica-stage
	// scheduling jitter (cassandra.Config.MutationStageMeanDelay). The
	// performance experiments leave it zero — the fan-out then delivers
	// strictly FIFO and CL=ONE reads can never overtake a pending apply —
	// and the consistency audit sets it, because that per-message
	// reordering is the real-world CL=ONE visibility window it measures.
	MutationStageDelay time.Duration
}

// QuickOptions returns a scale suitable for tests and `go test -bench`:
// every mechanism exercised, tens of seconds of wall clock.
//
// Calibration notes (regime of the paper's testbed):
//   - CPUOpCost is raised to the effective per-request CPU of a 2013 JVM
//     database (thrift/RPC serialization, stage hand-offs, GC pressure):
//     the cluster's knee is CPU, not the simulated disks.
//   - The dataset fits the block caches after warmup, as the paper's
//     100 M × 1 KB rows fit the 480 GB of aggregate page cache; disks
//     carry commit logs, flushes, and compactions.
//   - ReadRepairChance is 1.0 (the thrift-era column-family default):
//     §4.1 and §4.3 attribute first-order effects to read repair, which
//     is only possible with global repair on (nearly) every read. The A1
//     ablation sweeps this.
func QuickOptions() Options {
	ccfg := cluster.DefaultConfig()
	// Fewer, slower effective execution slots than raw hardware threads:
	// staged Java servers serialize on stage pools and locks, which keeps
	// per-node capacity the same but makes queue waits (and therefore
	// ack-count differences between consistency levels) visible.
	ccfg.CPUSlots = 8
	ccfg.CPUOpCost = 200 * time.Microsecond
	// Replica-side applies cost as much as client requests: mutation
	// verbs traverse the same staged JVM machinery (this is what makes
	// higher consistency levels wait on meaningfully slow acks).
	ccfg.InternalOpCost = 100 * time.Microsecond
	ccfg.ScanRowCost = 10 * time.Microsecond
	return Options{
		Seed:                1,
		Shards:              envShards(),
		ShardWorkers:        envShardWorkers(),
		ServerNodes:         15,
		Cluster:             ccfg,
		MicroRecords:        30_000,
		StressRecords:       6_000,
		MicroOps:            21_000,
		StressOps:           20_000,
		Threads:             256,
		WarmupFraction:      0.1,
		MicroThrottle:       0,
		MicroThreads:        110,
		CacheBytes:          4 << 20,
		ReplicationFactors:  []int{1, 2, 3, 4, 5, 6},
		Fig3TargetFractions: []float64{0.25, 0.5, 0.75, 1.0, 1.25},
		EnableGC:            true,
		GC: cluster.GCConfig{
			// Scaled relative to the default so sub-second measurement
			// windows average over many pauses while the tails remain
			// heavy enough to differentiate ack-count waits.
			MeanInterval: 500 * time.Millisecond,
			MeanPause:    25 * time.Millisecond,
			MinPause:     time.Millisecond,
		},
		ReadRepairChance: 1.0,
		MemReplication:   true,
		RegionsPerServer: 4,
		SpectrumReplIntervals: []time.Duration{
			200 * time.Millisecond, time.Second, 5 * time.Second,
		},
	}
}

// SmokeOptions returns a minimal scale for CI smoke runs and -short tests:
// every subsystem is still exercised (replication, repair, GC pauses, the
// audit fault cell) but each sweep cell finishes in well under a second of
// wall clock. Shapes at this scale are noisy; it exists to prove the
// machinery end to end, not to reproduce the paper's curves.
func SmokeOptions() Options {
	o := QuickOptions()
	o.MicroRecords = 2_000
	o.MicroOps = 2_000
	o.StressRecords = 800
	o.StressOps = 2_500
	o.Threads = 48
	o.MicroThreads = 24
	o.ReplicationFactors = []int{1, 3}
	o.Fig3TargetFractions = []float64{0.5, 1.0}
	o.SpectrumReplIntervals = []time.Duration{200 * time.Millisecond, 2 * time.Second}
	return o
}

// PaperOptions returns a larger scale closer to the paper's stress shape;
// minutes of wall clock.
func PaperOptions() Options {
	o := QuickOptions()
	o.MicroRecords = 100_000
	o.StressRecords = 30_000
	o.MicroOps = 20_000
	o.StressOps = 30_000
	o.CacheBytes = 16 << 20
	return o
}

// Levels returns the Fig. 3 consistency configurations in paper order:
// ONE, QUORUM, and "write ALL" (write ALL / read ONE, §2).
func Levels() []ConsistencySetting { return levels() }

func levels() []ConsistencySetting {
	return []ConsistencySetting{
		{Name: "ONE", Read: kv.One, Write: kv.One},
		{Name: "QUORUM", Read: kv.Quorum, Write: kv.Quorum},
		{Name: "writeALL", Read: kv.One, Write: kv.All},
	}
}

// ConsistencySetting names a (read, write) consistency pair.
type ConsistencySetting struct {
	Name  string
	Read  kv.ConsistencyLevel
	Write kv.ConsistencyLevel
}

// quiesce is the settle time between benchmark phases.
const quiesce = 2 * time.Second
