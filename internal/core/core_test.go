package core

import (
	"strings"
	"testing"
	"time"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/ycsb"
)

// reducedOptions shrinks the sweep for test budgets while keeping every
// mechanism (GC pauses, read repair, compaction) in play.
func reducedOptions() Options {
	o := QuickOptions()
	o.ReplicationFactors = []int{1, 6}
	o.MicroRecords = 12_000
	o.MicroOps = 14_000
	o.StressRecords = 6_000
	o.StressOps = 20_000
	o.Fig3TargetFractions = []float64{1.0}
	return o
}

// smokeOptions shrinks a sweep to single small cells for `go test -short`:
// every mechanism still runs end to end, but the scale only supports
// plumbing checks (row counts, rendering), not the paper's findings.
func smokeOptions() Options {
	o := QuickOptions()
	o.ReplicationFactors = []int{3}
	o.MicroRecords = 2_000
	o.MicroOps = 3_000
	o.StressRecords = 1_500
	o.StressOps = 2_500
	o.Fig3TargetFractions = []float64{1.0}
	return o
}

func TestVerifyTable1(t *testing.T) {
	if err := VerifyTable1(); err != nil {
		t.Fatal(err)
	}
	out := Table1().String()
	for _, want := range []string{"read-mostly", "Feeds reading", "95/5", "zipfian", "latest"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestDeployHBaseServesTraffic(t *testing.T) {
	o := reducedOptions()
	spec := ycsb.ReadMostly(100)
	d := deployHBase(o, 3, spec)
	err := d.drive(func(p *sim.Proc) {
		cl := d.newClient()
		if err := cl.Insert(p, spec.KeyFor(1), kv.Record{"f": kv.SizedValue(10)}); err != nil {
			t.Error(err)
		}
		if _, err := cl.Read(p, spec.KeyFor(1), nil); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.hb == nil || d.ca != nil {
		t.Fatal("wrong backend")
	}
}

func TestDeployCassandraServesTraffic(t *testing.T) {
	o := reducedOptions()
	d := deployCassandra(o, 3, kv.Quorum, kv.Quorum)
	spec := ycsb.ReadMostly(100)
	err := d.drive(func(p *sim.Proc) {
		cl := d.newClient()
		if err := cl.Insert(p, spec.KeyFor(1), kv.Record{"f": kv.SizedValue(10)}); err != nil {
			t.Error(err)
		}
		if _, err := cl.Read(p, spec.KeyFor(1), nil); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.ca == nil || d.hb != nil {
		t.Fatal("wrong backend")
	}
}

func TestGCStopsWithDriver(t *testing.T) {
	// The drive wrapper must stop GC pause processes or Run never
	// drains; a clean return proves it.
	o := reducedOptions()
	d := deployCassandra(o, 1, kv.One, kv.One)
	done := false
	if err := d.drive(func(p *sim.Proc) {
		p.Sleep(3 * time.Second) // several GC cycles
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	if !done || d.gc == nil || d.gc.Pauses == 0 {
		t.Fatalf("gc pauses=%v done=%v", d.gc, done)
	}
}

func TestFig1ReproducesMicroFindings(t *testing.T) {
	if testing.Short() {
		// 1-cell smoke: one database at one RF, plumbing only.
		res, err := RunFig1Round(smokeOptions(), "Cassandra", 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 4 {
			t.Fatalf("smoke results = %d, want 4 ops", len(res))
		}
		if len(res.Figures()) != 4 {
			t.Fatal("smoke figures malformed")
		}
		return
	}
	res, err := RunFig1(reducedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2*2*4 { // 2 DBs × 2 RFs × 4 ops
		t.Fatalf("results = %d", len(res))
	}
	for _, f := range CheckFig1(res) {
		t.Log(f)
		if !f.Pass {
			t.Errorf("finding failed: %s", f)
		}
	}
	// Rendering sanity.
	figs := res.Figures()
	if len(figs) != 4 {
		t.Fatalf("figures = %d", len(figs))
	}
	if !strings.Contains(figs[0].Table().String(), "HBase") {
		t.Error("figure table missing series")
	}
}

func TestFig2ReproducesStressFindings(t *testing.T) {
	if testing.Short() {
		// 1-cell smoke: one database at one RF, plumbing only.
		res, err := RunFig2Round(smokeOptions(), "HBase", 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 5 {
			t.Fatalf("smoke results = %d, want 5 workloads", len(res))
		}
		if len(res.ThroughputFigures()) != 5 {
			t.Fatal("smoke figures malformed")
		}
		return
	}
	res, err := RunFig2(reducedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2*2*5 {
		t.Fatalf("results = %d", len(res))
	}
	for _, f := range CheckFig2(res) {
		t.Log(f)
		if !f.Pass {
			t.Errorf("finding failed: %s", f)
		}
	}
	if len(res.ThroughputFigures()) != 5 || len(res.LatencyFigures()) != 5 {
		t.Error("figure panels missing")
	}
}

func TestFig3ReproducesConsistencyFindings(t *testing.T) {
	if testing.Short() {
		// 1-cell smoke: one workload at one consistency level.
		o := smokeOptions()
		spec := ycsb.StressWorkloads(o.StressRecords)[0]
		res, err := runFig3Workload(o, levels()[1], spec, []float64{0})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].Level != "QUORUM" || res[0].Runtime <= 0 {
			t.Fatalf("smoke results = %+v", res)
		}
		return
	}
	res, err := RunFig3(reducedOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range CheckFig3(res) {
		t.Log(f)
		// F6a is the documented deviation (see EXPERIMENTS.md); the
		// others must reproduce.
		if !f.Pass && f.ID != "F6a" {
			t.Errorf("finding failed: %s", f)
		}
	}
	if len(res.Figures()) != 5 {
		t.Error("figure panels missing")
	}
}

// ablationSmokeOptions shrinks the micro pipeline further for the -short
// ablation smokes (two 1-RF cells each).
func ablationSmokeOptions() Options {
	o := smokeOptions()
	o.MicroRecords = 1_200
	o.MicroOps = 1_500
	return o
}

func TestAblationHBaseSyncRepl(t *testing.T) {
	if testing.Short() {
		fig, err := AblationHBaseSyncRepl(ablationSmokeOptions())
		if err != nil {
			t.Fatal(err)
		}
		if m := fig.Get("in-memory-replication"); m == nil || len(m.Y) != 1 {
			t.Fatalf("smoke series malformed: %+v", fig)
		}
		return
	}
	o := reducedOptions()
	fig, err := AblationHBaseSyncRepl(o)
	if err != nil {
		t.Fatal(err)
	}
	mem := fig.Get("in-memory-replication")
	sync := fig.Get("synchronous-replication")
	if mem == nil || sync == nil || len(mem.Y) != 2 || len(sync.Y) != 2 {
		t.Fatalf("series malformed: %+v", fig)
	}
	// In-memory replication stays flat; synchronous climbs with RF.
	memGrowth := mem.Y[len(mem.Y)-1] / mem.Y[0]
	syncGrowth := sync.Y[len(sync.Y)-1] / sync.Y[0]
	if syncGrowth <= memGrowth {
		t.Errorf("sync growth %.2f should exceed mem growth %.2f", syncGrowth, memGrowth)
	}
	// At the top RF, sync replication must be slower outright.
	if sync.Y[len(sync.Y)-1] <= mem.Y[len(mem.Y)-1] {
		t.Errorf("sync latency %v not above mem latency %v at max RF",
			sync.Y[len(sync.Y)-1], mem.Y[len(mem.Y)-1])
	}
}

func TestAblationReadRepair(t *testing.T) {
	if testing.Short() {
		fig, err := AblationReadRepair(ablationSmokeOptions())
		if err != nil {
			t.Fatal(err)
		}
		if on := fig.Get("read-repair-on"); on == nil || len(on.Y) != 1 {
			t.Fatalf("smoke series malformed: %+v", fig)
		}
		return
	}
	o := reducedOptions()
	fig, err := AblationReadRepair(o)
	if err != nil {
		t.Fatal(err)
	}
	on := fig.Get("read-repair-on")
	off := fig.Get("read-repair-off")
	if on == nil || off == nil {
		t.Fatal("series missing")
	}
	onGrowth := on.Y[len(on.Y)-1] / on.Y[0]
	offGrowth := off.Y[len(off.Y)-1] / off.Y[0]
	if onGrowth <= offGrowth {
		t.Errorf("read latency growth with repair on (%.2f) should exceed off (%.2f)", onGrowth, offGrowth)
	}
}

func TestAblationClientThreads(t *testing.T) {
	if testing.Short() {
		fig, err := AblationClientThreads(smokeOptions(), []int{8}, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Series[0].Y) != 1 {
			t.Fatalf("smoke series malformed: %+v", fig)
		}
		return
	}
	o := reducedOptions()
	fig, err := AblationClientThreads(o, []int{2, 32}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.Y) != 2 {
		t.Fatalf("points = %d", len(s.Y))
	}
	// §3.1: too few threads inflate measured latency at fixed offered
	// load (requests queue inside the client).
	if s.Y[0] <= s.Y[1] {
		t.Errorf("latency with 2 threads (%v) should exceed 32 threads (%v)", s.Y[0], s.Y[1])
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{ID: "F1", Claim: "x", Pass: true, Detail: "d"}
	if !strings.Contains(f.String(), "✓") {
		t.Error("pass mark missing")
	}
	f.Pass = false
	if !strings.Contains(f.String(), "✗") {
		t.Error("fail mark missing")
	}
}
