package core

import (
	"fmt"
	"strings"
	"time"

	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/trace"
	"cloudbench/internal/ycsb"
)

// The trace breakdown experiment.
//
// The paper's figures report end-to-end latency and leave the causal story
// — WAL versus memtable, fan-out versus service, read repair's growing
// bill — to prose. This experiment instruments the same request paths with
// the deterministic tracer and decomposes latency by phase on the paper's
// own grid: HBase (strong) and Cassandra at ONE/QUORUM/writeALL, each
// swept over the replication factors, under the read&update stress
// workload (the 50/50 mixer where both the read and write paths matter).
//
// Expected shape, asserted by CheckTrace:
//   - HBase reads are served by the single region owner: no replica
//     fan-out phase at any replication factor (the mechanism behind F1 —
//     HBase read latency is flat in RF);
//   - at CL=ONE the read-repair share of Cassandra read latency grows
//     with the replication factor for RF ≥ 3: every read triggers repair
//     of RF−1 replicas while the read itself still touches one (the
//     mechanism behind F4);
//   - HBase updates pay a synchronous WAL append; Cassandra's periodic
//     commit-log sync keeps its update path free of WAL stalls (§4.2's
//     write-path asymmetry).
//
// Shares are phase time over summed root latency; phases that overlap or
// run concurrently (fan-out legs, background repair) can sum past 100%.

// TraceResult is one cell of the trace breakdown: one database, one
// consistency setting, one replication factor, with the tracer's per-class
// per-phase decomposition attached.
type TraceResult struct {
	DB    string
	Level string
	RF    int

	Runtime float64 // measured run-phase throughput, ops/s
	Mean    time.Duration
	Trace   trace.Report
}

// TraceResults collects the full grid.
type TraceResults []TraceResult

// traceCell is one grid point to run.
type traceCell struct {
	db string
	lv ConsistencySetting
	rf int
}

// traceCells enumerates the canonical order: the HBase control sweep
// first, then Cassandra level-major with RF ascending.
func traceCells(o Options) []traceCell {
	var cells []traceCell
	for _, rf := range o.ReplicationFactors {
		cells = append(cells, traceCell{db: "HBase", lv: ConsistencySetting{Name: "strong"}, rf: rf})
	}
	for _, lv := range levels() {
		for _, rf := range o.ReplicationFactors {
			cells = append(cells, traceCell{db: "Cassandra", lv: lv, rf: rf})
		}
	}
	return cells
}

// RunTraceBreakdown runs the trace grid. Each cell is a self-contained
// deployment with a fresh tracer, fanned out across the sweep scheduler;
// span IDs come from per-proc seeded RNGs, so the report — and the raw
// span stream — is bit-identical for any parallelism.
func RunTraceBreakdown(o Options) (TraceResults, error) {
	cells := traceCells(o)
	return runCells(o.workers(), len(cells), func(i int) (TraceResult, error) {
		res, _, err := runTraceCell(o, cells[i], 0)
		if err != nil {
			return res, fmt.Errorf("tracebreak %s/%s/rf%d: %w", cells[i].db, cells[i].lv.Name, cells[i].rf, err)
		}
		return res, nil
	})
}

// TraceSpanKeep bounds raw span retention for exports: enough for several
// thousand ops' full phase detail without unbounded growth.
const TraceSpanKeep = 200_000

// RunTraceSpans runs the one span-retaining cell — Cassandra at CL=ONE and
// the largest swept replication factor, the cell with the richest phase
// mix — and returns its result plus up to keep raw spans for export.
func RunTraceSpans(o Options, keep int) (TraceResult, []trace.Span, error) {
	rf := o.ReplicationFactors[len(o.ReplicationFactors)-1]
	return runTraceCell(o, traceCell{db: "Cassandra", lv: levels()[0], rf: rf}, keep)
}

// runTraceCell deploys one database with a tracer attached, loads, runs
// the stress workload with per-op root spans, lets background repair
// settle, and snapshots the tracer's report.
func runTraceCell(o Options, c traceCell, keep int) (TraceResult, []trace.Span, error) {
	// The decomposition is after the *structural* phase costs — how the
	// request paths differ by database, consistency level, and replication
	// factor. JVM pauses are additive noise on every phase and, at small
	// profile scales, whether a 30 ms pause lands on a measured op moves a
	// class's summed latency (every share's denominator) by more than the
	// effects under study. Trace cells therefore run with GC off; the
	// latency experiments keep it on (and stay bit-identical).
	o.EnableGC = false
	spec := ycsb.ReadUpdate(o.StressRecords)
	var d *deployment
	if c.db == "HBase" {
		d = deployHBase(o, c.rf, spec)
	} else {
		d = deployCassandra(o, c.rf, c.lv.Read, c.lv.Write)
	}
	tr := trace.New()
	if tr != nil && keep > 0 {
		tr.KeepSpans(keep)
	}
	if d.hb != nil {
		d.hb.SetTracer(tr)
	} else {
		d.ca.SetTracer(tr)
	}
	out := TraceResult{DB: c.db, Level: c.lv.Name, RF: c.rf}
	err := d.drive(func(p *sim.Proc) {
		w := ycsb.NewWorkload(spec)
		d.loadAndSettle(p, w, o.Threads)
		run := spec
		run.RecordCount = w.Inserted()
		wl := ycsb.NewWorkload(run)
		// The micro benchmark's unsaturated client shape (§4.1): at full
		// stress concurrency, queue waits inside composite repair spans
		// grow with cluster load, not with the replication factor, and
		// drown the structural shares the decomposition is after.
		res := ycsb.Run(p, d.newClient, wl, ycsb.RunConfig{
			Threads:        o.MicroThreads,
			Ops:            o.StressOps,
			WarmupFraction: o.WarmupFraction,
			Tracer:         tr,
		})
		out.Runtime = res.Throughput
		out.Mean = res.MeanLatency()
		// Background repair spawned by measured reads is still attributed
		// to them; let it drain before snapshotting.
		p.Sleep(quiesce)
	})
	var spans []trace.Span
	if tr != nil {
		out.Trace = tr.Report()
		spans = tr.Spans()
	}
	return out, spans, err
}

// get returns the cell for (db, level, rf), or nil.
func (r TraceResults) get(db, level string, rf int) *TraceResult {
	for i := range r {
		m := &r[i]
		if m.DB == db && m.Level == level && m.RF == rf {
			return m
		}
	}
	return nil
}

// phaseShare returns the share of the named phase within the named class
// of the cell, 0 when the phase recorded nothing.
func (m *TraceResult) phaseShare(class, phase string) float64 {
	cs := m.Trace.Class(class)
	if cs == nil {
		return 0
	}
	ps := cs.Phase(phase)
	if ps == nil {
		return 0
	}
	return ps.Share
}

// Table renders the decomposition as one row per (cell, class, phase).
func (r TraceResults) Table() *stats.Table {
	t := stats.NewTable("Per-phase latency decomposition — phase share of class latency by consistency setting and replication factor",
		"db", "level", "rf", "class", "ops", "ops/sec", "class-mean", "class-p99",
		"phase", "count", "phase-total", "share-%", "phase-p50", "phase-p99")
	for _, m := range r {
		for _, cs := range m.Trace.Classes {
			for _, ps := range cs.Phases {
				t.AddRow(m.DB, m.Level, m.RF, cs.Class, cs.Ops,
					fmt.Sprintf("%.0f", m.Runtime),
					cs.Mean.Round(time.Microsecond).String(),
					cs.P99.Round(time.Microsecond).String(),
					ps.Phase, ps.Count,
					ps.Total.Round(time.Microsecond).String(),
					fmt.Sprintf("%.2f", 100*ps.Share),
					ps.P50.Round(time.Microsecond).String(),
					ps.P99.Round(time.Microsecond).String())
			}
		}
	}
	return t
}

// CheckTrace evaluates the decomposition's qualitative claims.
func CheckTrace(r TraceResults) []Finding {
	var fs []Finding

	// FT1: HBase reads never fan out — the single region owner serves
	// them, which is why F1 finds HBase read latency flat in RF.
	hbCells, hbFanout := 0, int64(0)
	for _, m := range r {
		if m.DB != "HBase" {
			continue
		}
		hbCells++
		if cs := m.Trace.Class("read"); cs != nil {
			if ps := cs.Phase("fanout"); ps != nil {
				hbFanout += ps.Count
			}
		}
	}
	fs = append(fs, Finding{
		ID:     "FT1",
		Claim:  "HBase reads show no replica fan-out phase at any replication factor",
		Pass:   hbCells > 0 && hbFanout == 0,
		Detail: fmt.Sprintf("%d cells: read fan-out spans=%d", hbCells, hbFanout),
	})

	// FT2: at CL=ONE the read-repair share of Cassandra read latency
	// grows with RF for RF ≥ 3 — repair touches RF−1 replicas while the
	// read touches one, the mechanism behind F4.
	var shares []float64
	var rfs []int
	for _, m := range r {
		if m.DB == "Cassandra" && m.Level == "ONE" && m.RF >= 3 {
			shares = append(shares, m.phaseShare("read", "read-repair"))
			rfs = append(rfs, m.RF)
		}
	}
	pass2 := len(shares) >= 2
	detail2 := ""
	for i, v := range shares {
		if i > 0 && v <= shares[i-1] {
			pass2 = false
		}
		detail2 += fmt.Sprintf(" rf%d=%.1f%%", rfs[i], 100*v)
	}
	fs = append(fs, Finding{
		ID:     "FT2",
		Claim:  "Cassandra CL=ONE read-repair share of read latency increases with RF for RF >= 3",
		Pass:   pass2,
		Detail: strings.TrimSpace(detail2),
	})

	// FT3: the write-path asymmetry — HBase updates pay a synchronous WAL
	// append, Cassandra's periodic commit-log sync keeps its update path
	// free of WAL spans.
	hbWAL, caWAL := int64(0), int64(0)
	hbUpd, caUpd := 0, 0
	for _, m := range r {
		cs := m.Trace.Class("update")
		if cs == nil {
			continue
		}
		var c int64
		if ps := cs.Phase("wal"); ps != nil {
			c = ps.Count
		}
		if m.DB == "HBase" {
			hbUpd++
			hbWAL += c
		} else {
			caUpd++
			caWAL += c
		}
	}
	fs = append(fs, Finding{
		ID:     "FT3",
		Claim:  "HBase updates include synchronous WAL appends; Cassandra updates (periodic commit-log sync) include none",
		Pass:   hbUpd > 0 && caUpd > 0 && hbWAL > 0 && caWAL == 0,
		Detail: fmt.Sprintf("wal spans: hbase=%d (%d cells) cassandra=%d (%d cells)", hbWAL, hbUpd, caWAL, caUpd),
	})
	return fs
}
