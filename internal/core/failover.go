package core

import (
	"fmt"
	"time"

	"cloudbench/internal/cassandra"
	"cloudbench/internal/cluster"
	"cloudbench/internal/hbase"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

// FailoverOptions parameterizes the availability extension experiment
// (related work §5: Pokluda & Sun benchmark failover characteristics by
// watching throughput and latency while a node fails and recovers).
type FailoverOptions struct {
	Seed        int64
	Servers     int
	Replication int
	Records     int64
	Threads     int
	Bucket      time.Duration // timeline resolution
	FailAt      time.Duration
	RecoverAt   time.Duration
	End         time.Duration
}

// DefaultFailoverOptions fails one of six servers for four seconds.
func DefaultFailoverOptions() FailoverOptions {
	return FailoverOptions{
		Seed:        1,
		Servers:     6,
		Replication: 3,
		Records:     1_500,
		Threads:     32,
		Bucket:      500 * time.Millisecond,
		FailAt:      2 * time.Second,
		RecoverAt:   6 * time.Second,
		End:         10 * time.Second,
	}
}

// FailoverTimeline is the per-bucket availability trace of one system.
type FailoverTimeline struct {
	System  string
	Bucket  time.Duration
	OK      []int64 // successful ops per bucket
	Errors  []int64
	Hinted  int64 // hints replayed after recovery (Cassandra only)
	Replays int64
}

// FailoverResults holds all systems' traces.
type FailoverResults []FailoverTimeline

// Figure renders error counts over time, one series per system.
func (r FailoverResults) Figure() *stats.Figure {
	f := stats.NewFigure("Extension — errors per bucket through failure and recovery",
		"time (s)", "errors/bucket")
	for _, tl := range r {
		s := f.AddSeries(tl.System)
		for i, e := range tl.Errors {
			s.Add(float64(i)*tl.Bucket.Seconds(), float64(e))
		}
	}
	return f
}

// ThroughputFigure renders successful ops over time.
func (r FailoverResults) ThroughputFigure() *stats.Figure {
	f := stats.NewFigure("Extension — successful ops per bucket through failure and recovery",
		"time (s)", "ok-ops/bucket")
	for _, tl := range r {
		s := f.AddSeries(tl.System)
		for i, ok := range tl.OK {
			s.Add(float64(i)*tl.Bucket.Seconds(), float64(ok))
		}
	}
	return f
}

// RunFailover traces availability through a fail/recover cycle for
// Cassandra at ONE, QUORUM, and ALL, and for single-owner HBase.
func RunFailover(o FailoverOptions) (FailoverResults, error) {
	var out FailoverResults
	for _, lv := range []ConsistencySetting{
		{Name: "Cassandra-ONE", Read: kv.One, Write: kv.One},
		{Name: "Cassandra-QUORUM", Read: kv.Quorum, Write: kv.Quorum},
		{Name: "Cassandra-ALL", Read: kv.All, Write: kv.All},
	} {
		tl, err := runFailoverOne(o, lv.Name, func(k *sim.Kernel, servers []*cluster.Node, client *cluster.Node) (ycsb.ClientFactory, func() (int64, int64)) {
			cfg := cassandra.DefaultConfig()
			cfg.Replication = o.Replication
			cfg.ReadCL, cfg.WriteCL = lv.Read, lv.Write
			db := cassandra.New(k, cfg, servers)
			return func() kv.Client { return db.NewClient(client) },
				func() (int64, int64) { return db.HintsStored, db.HintsReplayed }
		})
		if err != nil {
			return nil, fmt.Errorf("failover %s: %w", lv.Name, err)
		}
		out = append(out, tl)
	}
	tl, err := runFailoverOne(o, "HBase", func(k *sim.Kernel, servers []*cluster.Node, client *cluster.Node) (ycsb.ClientFactory, func() (int64, int64)) {
		spec := ycsb.ReadUpdate(o.Records)
		db := hbase.New(k, hbase.DefaultConfig(), servers, client, spec.SplitPoints(2*o.Servers))
		return func() kv.Client { return db.NewClient(client) },
			func() (int64, int64) { return 0, 0 }
	})
	if err != nil {
		return nil, fmt.Errorf("failover hbase: %w", err)
	}
	out = append(out, tl)
	return out, nil
}

func runFailoverOne(o FailoverOptions, name string, build func(*sim.Kernel, []*cluster.Node, *cluster.Node) (ycsb.ClientFactory, func() (int64, int64))) (FailoverTimeline, error) {
	k := sim.NewKernel(o.Seed)
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = o.Servers + 1
	rack := cluster.New(k, ccfg)
	servers, clientNode := rack.Nodes[:o.Servers], rack.Nodes[o.Servers]
	factory, hintStats := build(k, servers, clientNode)

	buckets := int(o.End/o.Bucket) + 1
	tl := FailoverTimeline{
		System: name,
		Bucket: o.Bucket,
		OK:     make([]int64, buckets),
		Errors: make([]int64, buckets),
	}
	victim := servers[len(servers)/2]
	spec := ycsb.ReadUpdate(o.Records)

	k.Spawn("driver", func(p *sim.Proc) {
		w := ycsb.NewWorkload(spec)
		ycsb.Load(p, factory, w, 16, 0, spec.RecordCount)
		start := p.Now()
		k.After(o.FailAt, func() { victim.Fail() })
		k.After(o.RecoverAt, func() { victim.Recover() })

		workers := make([]*sim.Proc, 0, o.Threads)
		for t := 0; t < o.Threads; t++ {
			cl := factory()
			workers = append(workers, k.Spawn("worker", func(q *sim.Proc) {
				rng := q.Rand()
				for {
					elapsed := q.Now().Sub(start)
					if elapsed >= o.End {
						return
					}
					b := int(elapsed / o.Bucket)
					op := w.NextOp(rng)
					var err error
					if op.Type == ycsb.OpRead {
						_, err = cl.Read(q, op.Key, nil)
					} else {
						err = cl.Update(q, op.Key, op.Record)
					}
					if err != nil && err != kv.ErrNotFound {
						tl.Errors[b]++
					} else {
						tl.OK[b]++
					}
					q.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
				}
			}))
		}
		for _, wk := range workers {
			wk.Done().Await(p)
		}
		p.Sleep(30 * time.Second) // hint replay window
		_, tl.Replays = hintStats()
	})
	err := k.Run()
	return tl, err
}
