package core

import (
	"fmt"
	"time"

	"cloudbench/internal/cassandra"
	"cloudbench/internal/cluster"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

// GeoOptions parameterizes the geo-distributed extension experiment (§6:
// "we need to build a geo-distributed testbed to conduct such tests").
type GeoOptions struct {
	Seed           int64
	ServersPerZone int
	Replication    int
	InterZoneRTT   time.Duration
	Records        int64
	OpsPerLevel    int64
	Threads        int
}

// DefaultGeoOptions models two regions 80 ms apart.
func DefaultGeoOptions() GeoOptions {
	return GeoOptions{
		Seed:           1,
		ServersPerZone: 6,
		Replication:    4,
		InterZoneRTT:   80 * time.Millisecond,
		Records:        2_000,
		OpsPerLevel:    3_000,
		Threads:        48,
	}
}

// GeoResult is one consistency level's latency profile from a zone-0
// client against a two-zone deployment.
type GeoResult struct {
	Level     string
	ReadMean  time.Duration
	ReadP95   time.Duration
	WriteMean time.Duration
	WriteP95  time.Duration
	Errors    int64
}

// GeoResults collects the sweep.
type GeoResults []GeoResult

// Table renders the geo experiment.
func (r GeoResults) Table() *stats.Table {
	t := stats.NewTable(
		"Extension — geo-distributed read/write latency by consistency level (2 zones)",
		"level", "read-mean", "read-p95", "write-mean", "write-p95", "errors")
	for _, g := range r {
		t.AddRow(g.Level,
			g.ReadMean.Round(time.Microsecond).String(), g.ReadP95.Round(time.Microsecond).String(),
			g.WriteMean.Round(time.Microsecond).String(), g.WriteP95.Round(time.Microsecond).String(),
			g.Errors)
	}
	return t
}

// RunGeo measures read and write latency from a client in zone 0 at each
// consistency level, over a topology-aware Cassandra spanning two zones.
// LOCAL_QUORUM should track intra-zone latency; QUORUM and ALL pay the
// wide-area round trip on most or all operations.
func RunGeo(o GeoOptions) (GeoResults, error) {
	levels := []ConsistencySetting{
		{Name: "ONE", Read: kv.One, Write: kv.One},
		{Name: "LOCAL_QUORUM", Read: kv.LocalQuorum, Write: kv.LocalQuorum},
		{Name: "QUORUM", Read: kv.Quorum, Write: kv.Quorum},
		{Name: "ALL", Read: kv.All, Write: kv.All},
	}
	var out GeoResults
	for _, lv := range levels {
		res, err := runGeoLevel(o, lv)
		if err != nil {
			return nil, fmt.Errorf("geo %s: %w", lv.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func runGeoLevel(o GeoOptions, lv ConsistencySetting) (GeoResult, error) {
	k := sim.NewKernel(o.Seed)
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 2*o.ServersPerZone + 1
	ccfg.Zones = 2
	ccfg.InterZoneRTT = o.InterZoneRTT
	rack := cluster.New(k, ccfg)
	servers := rack.Nodes[:2*o.ServersPerZone]
	clientNode := rack.Nodes[2*o.ServersPerZone]

	cfg := cassandra.DefaultConfig()
	cfg.Replication = o.Replication
	cfg.TopologyAware = true
	cfg.ReadCL, cfg.WriteCL = lv.Read, lv.Write
	db := cassandra.New(k, cfg, servers)

	spec := ycsb.ReadUpdate(o.Records)
	out := GeoResult{Level: lv.Name}
	factory := func() kv.Client { return db.NewClient(clientNode) }

	k.Spawn("driver", func(p *sim.Proc) {
		w := ycsb.NewWorkload(spec)
		ycsb.Load(p, factory, w, o.Threads, 0, spec.RecordCount)
		p.Sleep(500 * time.Millisecond)
		run := ycsb.NewWorkload(ycsb.ReadUpdate(w.Inserted()))
		res := ycsb.Run(p, factory, run, ycsb.RunConfig{
			Threads: o.Threads, Ops: o.OpsPerLevel, WarmupFraction: 0.1,
		})
		out.ReadMean = res.PerOp[ycsb.OpRead].Mean()
		out.ReadP95 = res.PerOp[ycsb.OpRead].Percentile(95)
		out.WriteMean = res.PerOp[ycsb.OpUpdate].Mean()
		out.WriteP95 = res.PerOp[ycsb.OpUpdate].Percentile(95)
		out.Errors = res.Errors
	})
	err := k.Run()
	return out, err
}
