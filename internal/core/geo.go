package core

import (
	"fmt"
	"strings"
	"time"

	"cloudbench/internal/cassandra"
	"cloudbench/internal/cluster"
	"cloudbench/internal/consistency"
	"cloudbench/internal/geo"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

// The geo-replication experiment (§6: "we need to build a geo-distributed
// testbed to conduct such tests").
//
// Where the paper's figures run on one rack, this grid runs Cassandra
// across 2- and 3-datacenter topologies (cluster.GeoTopology) with
// NetworkTopologyStrategy placement (cassandra.Config.DCReplicas) and
// clients attached in every DC, and sweeps the three write levels whose
// WAN behavior differs structurally — ONE (any single ack), LOCAL_QUORUM
// (majority in the coordinator's DC, WAN traffic fully asynchronous), and
// EACH_QUORUM (majority in every DC, so the slowest WAN round trip is on
// the write path) — against WAN RTTs from regional (20 ms) to
// intercontinental (200 ms). Reads stay at LOCAL_QUORUM throughout: the
// grid isolates what the *write* level costs and leaks.
//
// Three extra cell families complete the trade-off picture:
//   - an RF-per-DC sweep at the 2-DC anchor point, varying the
//     NetworkTopologyStrategy allocation ({1,1} → {3,3}) at fixed level;
//   - two DC-partition fault cells (EACH_QUORUM and LOCAL_QUORUM) where
//     the WAN link is cut a quarter into the run and healed at the
//     midpoint, measuring availability under partition;
//   - two SLA cells comparing a fixed EACH_QUORUM client against the
//     adaptive client (package geo) defending a 40 ms write deadline over
//     an 80 ms WAN — tail latency on one side, oracle-measured staleness
//     on the other.
//
// Every cell attaches the consistency oracle with the audit's
// MutationStage jitter, so the staleness each level leaks is a measured
// column, not a story. GC pauses stay off in this experiment: the effects
// under test are multi-millisecond WAN waits and the 40 ms SLA verdict,
// and 25 ms JVM pause tails (measured by the single-rack figures) would
// smear both without adding geo-specific information.

const (
	// geoServersPerDC keeps each DC small enough that the 3-DC × 200 ms
	// cells stay cheap while every DC can still hold a 3-replica quorum.
	geoServersPerDC = 3
	// geoWANJitter spreads per-message WAN latency uniformly over
	// [base, base+jitter): enough variance to exercise the seeded
	// per-link streams without blurring the level separation.
	geoWANJitter = 2 * time.Millisecond
	// geoAnchorRTT is the RTT of the RF-sweep, fault, and SLA cells.
	geoAnchorRTT = 80 * time.Millisecond
	// geoSLADeadline is the write-latency SLA the adaptive client
	// defends: half the anchor RTT, affordable at LOCAL_QUORUM but not
	// at EACH_QUORUM.
	geoSLADeadline = 40 * time.Millisecond
)

// geoRTTs is the WAN round-trip sweep: same-region, cross-region, and
// intercontinental.
func geoRTTs() []time.Duration {
	return []time.Duration{20 * time.Millisecond, 80 * time.Millisecond, 200 * time.Millisecond}
}

// geoLevels returns the swept write levels. Reads run at LOCAL_QUORUM in
// every cell so the columns isolate the write level's cost.
func geoLevels() []ConsistencySetting {
	return []ConsistencySetting{
		{Name: "ONE", Read: kv.LocalQuorum, Write: kv.One},
		{Name: "LOCAL_QUORUM", Read: kv.LocalQuorum, Write: kv.LocalQuorum},
		{Name: "EACH_QUORUM", Read: kv.LocalQuorum, Write: kv.EachQuorum},
	}
}

// geoThreads scales the client shape down from the single-rack stress
// figures: the geo cells measure per-operation WAN waits, not saturation,
// and fewer closed-loop threads keep queueing out of the latency columns.
func geoThreads(o Options) int {
	t := o.Threads / 4
	if t > 64 {
		t = 64
	}
	if t < 1 {
		t = 1
	}
	return t
}

// geoOps is the per-cell operation count.
func geoOps(o Options) int64 { return o.StressOps / 2 }

// geoUniformRF is the default NetworkTopologyStrategy allocation: rf
// replicas in each of dcs data centers.
func geoUniformRF(dcs, rf int) []int {
	out := make([]int, dcs)
	for i := range out {
		out[i] = rf
	}
	return out
}

// rfLabel renders an RF-per-DC allocation as "2+2".
func rfLabel(perDC []int) string {
	parts := make([]string, len(perDC))
	for i, rf := range perDC {
		parts[i] = fmt.Sprintf("%d", rf)
	}
	return strings.Join(parts, "+")
}

// Geo cell modes.
const (
	geoModeGrid     = "grid"
	geoModeFault    = "fault"
	geoModeFixed    = "sla-fixed"
	geoModeAdaptive = "sla-adaptive"
)

// geoCell is one grid point of the geo sweep.
type geoCell struct {
	dcs   int
	rtt   time.Duration
	lv    ConsistencySetting
	perDC []int
	mode  string
}

// geoCells enumerates the canonical sweep order: the 2- and 3-DC RTT ×
// level grids, the RF-per-DC sweep at the anchor point, the two
// DC-partition fault cells, and the two SLA cells last.
func geoCells(o Options) []geoCell {
	var cells []geoCell
	for _, dcs := range []int{2, 3} {
		for _, rtt := range geoRTTs() {
			for _, lv := range geoLevels() {
				cells = append(cells, geoCell{dcs: dcs, rtt: rtt, lv: lv, perDC: geoUniformRF(dcs, 2), mode: geoModeGrid})
			}
		}
	}
	for _, perDC := range [][]int{{1, 1}, {3, 1}, {3, 3}} {
		cells = append(cells, geoCell{dcs: 2, rtt: geoAnchorRTT, lv: geoLevels()[1], perDC: perDC, mode: geoModeGrid})
	}
	for _, lv := range []ConsistencySetting{geoLevels()[2], geoLevels()[1]} {
		cells = append(cells, geoCell{dcs: 2, rtt: geoAnchorRTT, lv: lv, perDC: geoUniformRF(2, 2), mode: geoModeFault})
	}
	cells = append(cells,
		geoCell{dcs: 2, rtt: geoAnchorRTT, lv: geoLevels()[2], perDC: geoUniformRF(2, 2), mode: geoModeFixed},
		geoCell{dcs: 2, rtt: geoAnchorRTT, lv: ConsistencySetting{Name: "adaptive", Read: kv.LocalQuorum}, perDC: geoUniformRF(2, 2), mode: geoModeAdaptive},
	)
	return cells
}

// GeoResult is one cell of the geo experiment.
type GeoResult struct {
	DCs   int
	RTT   time.Duration
	Level string // write consistency level (or "adaptive")
	PerDC string // NetworkTopologyStrategy allocation, e.g. "2+2"
	Mode  string // grid, fault, sla-fixed, or sla-adaptive

	Throughput float64
	ReadMean   time.Duration
	ReadP99    time.Duration
	WriteMean  time.Duration
	WriteP99   time.Duration
	Errors     int64

	// Consistency is the oracle's report: what the level leaked.
	Consistency consistency.Report

	// Adaptive carries the controller's counters for the sla-adaptive
	// cell (nil elsewhere); AdaptiveStage is its final rung name.
	Adaptive      *geo.Metrics
	AdaptiveStage string
}

// GeoResults collects the full geo grid.
type GeoResults []GeoResult

// RunGeo runs the geo-replication grid. Like every experiment, each cell
// is a self-contained deterministic simulation fanned out across the
// sweep scheduler, and the report is bit-identical for any Parallelism or
// Shards value.
func RunGeo(o Options) (GeoResults, error) {
	cells := geoCells(o)
	results, err := runCells(o.workers(), len(cells), func(i int) (GeoResult, error) {
		c := cells[i]
		res, err := runGeoCell(o, c)
		if err != nil {
			return res, fmt.Errorf("geo %ddc/%v/%s/%s: %w", c.dcs, c.rtt, c.lv.Name, c.mode, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// deployGeo provisions one multi-DC Cassandra cell: dcs blocks of
// (geoServersPerDC+1) nodes — servers first, one client-attach machine
// last — over a WANChain of the cell's RTT, replicated per the cell's
// RF-per-DC allocation. Client threads round-robin across the per-DC
// attach nodes (the ycsb runner calls the factory once per thread, in
// thread order, so the assignment is deterministic). The sla-adaptive
// cell wraps every thread's client in the adaptive ladder around one
// shared controller.
func deployGeo(o Options, c geoCell) (*deployment, *geo.Controller) {
	spd := geoServersPerDC
	ccfg := o.Cluster
	ccfg.Nodes = c.dcs * (spd + 1)
	sizes := make([]int, c.dcs)
	for i := range sizes {
		sizes[i] = spd + 1
	}
	ccfg.Geo = &cluster.GeoTopology{
		DCSizes:   sizes,
		WANOneWay: cluster.WANChain(c.dcs, c.rtt),
		WANJitter: geoWANJitter,
	}

	var k *sim.Kernel
	var group *sim.ShardGroup
	if o.Shards > 1 {
		g := newShardGroup(o, cluster.PlanShards(ccfg, o.Shards))
		k = g.Shard(0).Kernel()
		group = g
	} else {
		k = sim.NewKernel(o.Seed)
	}
	clus := cluster.New(k, ccfg)

	servers := make([]*cluster.Node, 0, c.dcs*spd)
	attach := make([]*cluster.Node, 0, c.dcs)
	for dc := 0; dc < c.dcs; dc++ {
		base := dc * (spd + 1)
		servers = append(servers, clus.Nodes[base:base+spd]...)
		attach = append(attach, clus.Nodes[base+spd])
	}

	cfg := cassandra.DefaultConfig()
	cfg.DCReplicas = append([]int(nil), c.perDC...)
	cfg.Engine = engineConfig(o)
	cfg.Engine.SyncWAL = false // commitlog_sync: periodic
	cfg.ReadRepairChance = o.ReadRepairChance
	// Staleness is a reported column in every geo cell, so the replica
	// MutationStage jitter is on, as in the consistency audit.
	cfg.MutationStageMeanDelay = auditMutationStage
	if c.mode != geoModeAdaptive {
		cfg.ReadCL, cfg.WriteCL = c.lv.Read, c.lv.Write
	}
	db := cassandra.New(k, cfg, servers)

	var ctrl *geo.Controller
	var nextDC int
	var newClient ycsb.ClientFactory
	if c.mode == geoModeAdaptive {
		ctrl = geo.NewController(geo.ControllerConfig{
			Ladder:   geo.WriteLadder(kv.LocalQuorum),
			Deadline: geoSLADeadline,
			// Trust the estimate early so the step-down transient lands
			// inside the warmup window at every profile scale, and hold
			// the re-probe past the measured run so probe ops (paying
			// the strong level's WAN price) cannot pollute the p99.
			MinSamples: 10,
			Cooldown:   30 * time.Second,
		})
		newClient = func() kv.Client {
			base := db.NewClient(attach[nextDC%len(attach)])
			nextDC++
			return geo.NewClient(ctrl, func(s geo.Stage) kv.Client {
				return base.WithConsistency(s.Read, s.Write)
			})
		}
	} else {
		newClient = func() kv.Client {
			n := attach[nextDC%len(attach)]
			nextDC++
			return db.NewClient(n)
		}
	}

	d := &deployment{
		k:          k,
		group:      group,
		clus:       clus,
		clientNode: attach[0],
		newClient:  newClient,
		flush:      db.FlushAll,
		ca:         db,
	}
	return d, ctrl
}

// runGeoCell deploys one cell, loads, runs the read-update mixer
// (optionally cutting and healing the DC 0–1 WAN link mid-run), lets
// propagation settle, and snapshots the oracle and controller.
func runGeoCell(o Options, c geoCell) (GeoResult, error) {
	d, ctrl := deployGeo(o, c)
	oracle := consistency.New()
	d.ca.SetOracle(oracle)
	out := GeoResult{
		DCs: c.dcs, RTT: c.rtt, Level: c.lv.Name, PerDC: rfLabel(c.perDC), Mode: c.mode,
	}
	ops := geoOps(o)
	err := d.drive(func(p *sim.Proc) {
		spec := ycsb.ReadUpdate(o.StressRecords)
		w := ycsb.NewWorkload(spec)
		d.loadAndSettle(p, w, geoThreads(o))
		rcfg := ycsb.RunConfig{
			Threads:        geoThreads(o),
			Ops:            ops,
			WarmupFraction: o.WarmupFraction,
			Oracle:         oracle,
		}
		if c.mode == geoModeFault {
			// Cut the DC 0–1 WAN link a quarter into the run and heal it
			// at the midpoint — by operation progress, so the outage
			// lands inside the measured window at every profile scale.
			rcfg.Events = []ycsb.RunEvent{
				{AfterOps: ops / 4, Fn: func() { d.clus.PartitionZones(0, 1) }},
				{AfterOps: ops / 2, Fn: func() { d.clus.HealZones(0, 1) }},
			}
		}
		run := spec
		run.RecordCount = w.Inserted()
		res := ycsb.Run(p, d.newClient, ycsb.NewWorkload(run), rcfg)
		out.Throughput = res.Throughput
		out.ReadMean = res.PerOp[ycsb.OpRead].Mean()
		out.ReadP99 = res.PerOp[ycsb.OpRead].Percentile(99)
		out.WriteMean = res.PerOp[ycsb.OpUpdate].Mean()
		out.WriteP99 = res.PerOp[ycsb.OpUpdate].Percentile(99)
		out.Errors = res.Errors
		settle := quiesce
		if c.mode == geoModeFault {
			settle = auditFaultSettle
		}
		p.Sleep(settle)
	})
	// Snapshot after the settle sleep so WAN propagation that completed
	// post-run (async forwards, read repair) is reflected in the lag and
	// visibility columns.
	if oracle != nil {
		out.Consistency = oracle.Report()
	}
	if ctrl != nil {
		m := ctrl.Metrics()
		out.Adaptive = &m
		out.AdaptiveStage = ctrl.StageName()
	}
	return out, err
}

// find returns the first cell matching (mode, dcs, rtt, level, perDC), or
// nil.
func (r GeoResults) find(mode string, dcs int, rtt time.Duration, level, perDC string) *GeoResult {
	for i := range r {
		m := &r[i]
		if m.Mode == mode && m.DCs == dcs && m.RTT == rtt && m.Level == level && m.PerDC == perDC {
			return m
		}
	}
	return nil
}

// Table renders the geo grid as one row per cell: the latency profile,
// availability, the oracle's staleness verdict, and the adaptive
// controller's counters where they apply.
func (r GeoResults) Table() *stats.Table {
	t := stats.NewTable("Geo-replication — multi-DC latency, availability, and staleness by write consistency level",
		"dcs", "rtt", "write-cl", "rf-per-dc", "mode",
		"ops/sec", "read-mean", "read-p99", "write-mean", "write-p99",
		"errors", "reads", "stale-%",
		"final-stage", "stage-ops", "step-downs", "sla-misses")
	for _, m := range r {
		stage, stageOps, downs, misses := "-", "-", "-", "-"
		if m.Adaptive != nil {
			stage = m.AdaptiveStage
			parts := make([]string, len(m.Adaptive.OpsPerStage))
			for i, n := range m.Adaptive.OpsPerStage {
				parts[i] = fmt.Sprintf("%d", n)
			}
			stageOps = strings.Join(parts, "/")
			downs = fmt.Sprintf("%d", m.Adaptive.StepDowns)
			misses = fmt.Sprintf("%d", m.Adaptive.Misses)
		}
		t.AddRow(m.DCs, m.RTT.String(), m.Level, m.PerDC, m.Mode,
			m.Throughput,
			m.ReadMean.Round(time.Microsecond).String(),
			m.ReadP99.Round(time.Microsecond).String(),
			m.WriteMean.Round(time.Microsecond).String(),
			m.WriteP99.Round(time.Microsecond).String(),
			m.Errors, m.Consistency.Reads,
			fmt.Sprintf("%.3f", 100*m.Consistency.StaleFraction()),
			stage, stageOps, downs, misses)
	}
	return t
}

// CheckGeo evaluates the geo experiment's qualitative claims.
func CheckGeo(o Options, r GeoResults) []Finding {
	var fs []Finding
	rtts := geoRTTs()
	anchor := rfLabel(geoUniformRF(2, 2))

	// FG1: EACH_QUORUM write latency grows with the WAN RTT (the slowest
	// round trip is on the write path) while LOCAL_QUORUM stays flat (all
	// WAN traffic is asynchronous).
	var eqMeans, lqMeans []time.Duration
	for _, rtt := range rtts {
		if m := r.find(geoModeGrid, 2, rtt, "EACH_QUORUM", anchor); m != nil {
			eqMeans = append(eqMeans, m.WriteMean)
		}
		if m := r.find(geoModeGrid, 2, rtt, "LOCAL_QUORUM", anchor); m != nil {
			lqMeans = append(lqMeans, m.WriteMean)
		}
	}
	eqGrowth := 0.0
	if len(eqMeans) >= 2 {
		eqGrowth = ratio(float64(eqMeans[len(eqMeans)-1]), float64(eqMeans[0]))
	}
	lqFlat := flatness(lqMeans)
	fs = append(fs, Finding{
		ID:    "FG1",
		Claim: "EACH_QUORUM write latency grows with WAN RTT; LOCAL_QUORUM stays flat",
		Pass:  len(eqMeans) == len(rtts) && len(lqMeans) == len(rtts) && eqGrowth > 2.0 && lqFlat < 1.5,
		Detail: fmt.Sprintf("EACH_QUORUM mean %v→%v (x%.1f, threshold 2.0); LOCAL_QUORUM max/min=%.2f (threshold 1.5)",
			first(eqMeans), last(eqMeans), eqGrowth, lqFlat),
	})

	// FG2: the staleness each write level leaks orders inversely to its
	// strength — EACH_QUORUM's per-DC majorities intersect every
	// LOCAL_QUORUM read set (zero stale), LOCAL_QUORUM leaks stale reads
	// in remote DCs until the async forward lands, and ONE adds a
	// coordinator-DC window on top.
	one := r.find(geoModeGrid, 2, geoAnchorRTT, "ONE", anchor)
	lq := r.find(geoModeGrid, 2, geoAnchorRTT, "LOCAL_QUORUM", anchor)
	eq := r.find(geoModeGrid, 2, geoAnchorRTT, "EACH_QUORUM", anchor)
	if one != nil && lq != nil && eq != nil {
		oneS, lqS, eqS := one.Consistency.StaleFraction(), lq.Consistency.StaleFraction(), eq.Consistency.StaleFraction()
		fs = append(fs, Finding{
			ID:    "FG2",
			Claim: "staleness rises as the write level steps down: EACH_QUORUM=0 < LOCAL_QUORUM ≤ ONE",
			Pass:  eqS == 0 && lqS > 0 && oneS >= lqS,
			Detail: fmt.Sprintf("stale%%: EACH_QUORUM=%.3f LOCAL_QUORUM=%.3f ONE=%.3f (2dc/80ms)",
				100*eqS, 100*lqS, 100*oneS),
		})
	}

	// FG3: the adaptive client keeps write p99 under the SLA deadline
	// where fixed EACH_QUORUM misses it — at a quantified staleness cost.
	fixed := r.find(geoModeFixed, 2, geoAnchorRTT, "EACH_QUORUM", anchor)
	adaptive := r.find(geoModeAdaptive, 2, geoAnchorRTT, "adaptive", anchor)
	if fixed != nil && adaptive != nil {
		pass := fixed.WriteP99 > geoSLADeadline && adaptive.WriteP99 <= geoSLADeadline &&
			adaptive.Adaptive != nil && adaptive.Adaptive.StepDowns >= 1 && adaptive.Adaptive.OpsPerStage[0] > 0
		detail := fmt.Sprintf("write-p99: fixed=%v adaptive=%v (deadline %v); stale%%: fixed=%.3f adaptive=%.3f",
			fixed.WriteP99.Round(time.Microsecond), adaptive.WriteP99.Round(time.Microsecond), geoSLADeadline,
			100*fixed.Consistency.StaleFraction(), 100*adaptive.Consistency.StaleFraction())
		if adaptive.Adaptive != nil {
			detail += fmt.Sprintf("; step-downs=%d final=%s", adaptive.Adaptive.StepDowns, adaptive.AdaptiveStage)
		}
		fs = append(fs, Finding{
			ID:     "FG3",
			Claim:  "adaptive client meets the 40ms write SLA that fixed EACH_QUORUM misses, trading staleness",
			Pass:   pass,
			Detail: detail,
		})
	}

	// FG4: under a DC partition, LOCAL_QUORUM stays available while
	// EACH_QUORUM fails writes until the link heals.
	eqF := r.find(geoModeFault, 2, geoAnchorRTT, "EACH_QUORUM", anchor)
	lqF := r.find(geoModeFault, 2, geoAnchorRTT, "LOCAL_QUORUM", anchor)
	if eqF != nil && lqF != nil {
		fs = append(fs, Finding{
			ID:    "FG4",
			Claim: "DC partition: LOCAL_QUORUM stays available, EACH_QUORUM writes fail until heal",
			Pass:  eqF.Errors > 0 && lqF.Errors == 0,
			Detail: fmt.Sprintf("errors during partitioned run: EACH_QUORUM=%d LOCAL_QUORUM=%d (of %d ops)",
				eqF.Errors, lqF.Errors, geoOps(o)),
		})
	}
	return fs
}

// first and last guard empty latency series in finding details.
func first(v []time.Duration) time.Duration {
	if len(v) == 0 {
		return 0
	}
	return v[0]
}

func last(v []time.Duration) time.Duration {
	if len(v) == 0 {
		return 0
	}
	return v[len(v)-1]
}
