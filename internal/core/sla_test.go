package core

import (
	"strings"
	"testing"
	"time"

	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

func TestSLASearchFindsSustainableThroughput(t *testing.T) {
	if testing.Short() {
		// 2-probe smoke: capacity probe plus two bisection cells.
		o := smokeOptions()
		res, err := RunSLASearch(o, "Cassandra", 3, ycsb.ReadMostly,
			SLA{Percentile: 95, Limit: 25 * time.Millisecond}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Probes) != 2 {
			t.Fatalf("smoke probes = %d", len(res.Probes))
		}
		return
	}
	o := reducedOptions()
	o.StressOps = 6000
	sla := SLA{Percentile: 95, Limit: 25 * time.Millisecond}
	res, err := RunSLASearch(o, "Cassandra", 3, ycsb.ReadMostly, sla, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) != 5 {
		t.Fatalf("probes = %d", len(res.Probes))
	}
	if res.MaxThroughput <= 0 {
		t.Fatal("no sustainable throughput found")
	}
	// The search must have bracketed: at least one pass and, unless the
	// system is absurdly overprovisioned, one fail.
	passes, fails := 0, 0
	for _, p := range res.Probes {
		if p.Pass {
			passes++
			if p.Target > res.MaxThroughput {
				t.Errorf("MaxThroughput %v below a passing probe %v", res.MaxThroughput, p.Target)
			}
		} else {
			fails++
		}
	}
	if passes == 0 {
		t.Error("no probe met the SLA")
	}
	out := res.Table().String()
	if !strings.Contains(out, "p95") || !strings.Contains(out, "read-mostly") {
		t.Errorf("table malformed:\n%s", out)
	}
}

func histOf(durations ...time.Duration) *stats.Histogram {
	h := &stats.Histogram{}
	for _, d := range durations {
		h.Record(d)
	}
	return h
}

func TestSLAMetUsesIntendedLatency(t *testing.T) {
	res := ycsb.Result{}
	// Fabricate: hand-built result with intended latencies.
	res.Intended = histOf(5*time.Millisecond, 6*time.Millisecond, 50*time.Millisecond)
	sla := SLA{Percentile: 50, Limit: 10 * time.Millisecond}
	if !sla.Met(res) {
		t.Error("p50 of 6ms should meet a 10ms SLA")
	}
	tight := SLA{Percentile: 99, Limit: 10 * time.Millisecond}
	if tight.Met(res) {
		t.Error("p99 of ~50ms should violate a 10ms SLA")
	}
	if !strings.Contains(sla.String(), "p50") {
		t.Error("SLA string malformed")
	}
}
