package core

import (
	"strings"
	"testing"
	"time"
)

func TestRunGeoLatencyOrdering(t *testing.T) {
	o := DefaultGeoOptions()
	o.Records = 800
	o.OpsPerLevel = 1500
	res, err := RunGeo(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("levels = %d", len(res))
	}
	byLevel := map[string]GeoResult{}
	for _, g := range res {
		byLevel[g.Level] = g
		if g.Errors > 0 {
			t.Errorf("%s: %d errors", g.Level, g.Errors)
		}
	}
	wan := 40 * time.Millisecond // half the 80ms inter-zone RTT
	// ONE and LOCAL_QUORUM stay intra-zone.
	for _, lv := range []string{"ONE", "LOCAL_QUORUM"} {
		if byLevel[lv].WriteMean > wan {
			t.Errorf("%s write mean %v pays the WAN", lv, byLevel[lv].WriteMean)
		}
		if byLevel[lv].ReadMean > wan {
			t.Errorf("%s read mean %v pays the WAN", lv, byLevel[lv].ReadMean)
		}
	}
	// ALL always crosses zones (rf 4 spans both); QUORUM (3 of 4) needs a
	// remote ack too with 2 replicas per zone.
	for _, lv := range []string{"QUORUM", "ALL"} {
		if byLevel[lv].WriteMean < wan {
			t.Errorf("%s write mean %v suspiciously below the WAN floor", lv, byLevel[lv].WriteMean)
		}
	}
	if !strings.Contains(res.Table().String(), "LOCAL_QUORUM") {
		t.Error("table missing LOCAL_QUORUM row")
	}
}

func TestRunFailoverAvailabilityShapes(t *testing.T) {
	o := DefaultFailoverOptions()
	o.Threads = 16
	res, err := RunFailover(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("systems = %d", len(res))
	}
	sums := map[string]struct{ ok, errs int64 }{}
	for _, tl := range res {
		var ok, errs int64
		for i := range tl.OK {
			ok += tl.OK[i]
			errs += tl.Errors[i]
		}
		sums[tl.System] = struct{ ok, errs int64 }{ok, errs}
	}
	// ONE and QUORUM ride through the failure: at most the handful of
	// in-flight requests at the instant the node dies can error.
	for _, sys := range []string{"Cassandra-ONE", "Cassandra-QUORUM"} {
		if s := sums[sys]; s.errs > int64(o.Threads) {
			t.Errorf("%s: %d errors, want availability through failure", sys, s.errs)
		}
	}
	// ALL and single-owner HBase error throughout the outage.
	for _, sys := range []string{"Cassandra-ALL", "HBase"} {
		if s := sums[sys]; s.errs < 50 {
			t.Errorf("%s: only %d errors despite a dead node", sys, s.errs)
		}
	}
	// Errors are confined to the failure window (± one bucket for ops in
	// flight when the node dies).
	for _, tl := range res {
		failStart := int(o.FailAt/o.Bucket) - 1
		failEnd := int(o.RecoverAt/o.Bucket) + 1
		for i, e := range tl.Errors {
			if e > 0 && (i < failStart || i > failEnd) {
				t.Errorf("%s: errors in bucket %d outside the failure window", tl.System, i)
			}
		}
	}
	// Hinted handoff replayed for the weak levels.
	for _, tl := range res {
		if strings.HasPrefix(tl.System, "Cassandra-ONE") && tl.Replays == 0 {
			t.Errorf("%s: no hint replays after recovery", tl.System)
		}
	}
	if len(res.Figure().Series) != 4 || len(res.ThroughputFigure().Series) != 4 {
		t.Error("figures malformed")
	}
}
