package core

import (
	"strings"
	"testing"
	"time"
)

// geoTestOptions trims the smoke profile further so the full geo grid —
// 18 RTT × level cells, the RF sweep, the fault cells, and the SLA pair —
// stays cheap enough for the unit suite.
func geoTestOptions() Options {
	o := SmokeOptions()
	o.StressRecords = 400
	o.StressOps = 1_600
	o.Threads = 32
	return o
}

func TestRunGeoReproducesFindings(t *testing.T) {
	o := geoTestOptions()
	res, err := RunGeo(o)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(geoCells(o)); len(res) != want {
		t.Fatalf("cells = %d, want %d", len(res), want)
	}
	for _, f := range CheckGeo(o, res) {
		if !f.Pass {
			t.Errorf("finding failed: %s", f)
		}
	}
	// The WAN floor separates the write levels at the anchor point: an
	// EACH_QUORUM write waits out the 80ms round trip, LOCAL_QUORUM and
	// ONE complete inside the DC.
	anchor := rfLabel(geoUniformRF(2, 2))
	eq := res.find(geoModeGrid, 2, geoAnchorRTT, "EACH_QUORUM", anchor)
	for _, lv := range []string{"ONE", "LOCAL_QUORUM"} {
		m := res.find(geoModeGrid, 2, geoAnchorRTT, lv, anchor)
		if m == nil || eq == nil {
			t.Fatalf("missing anchor cell %s", lv)
		}
		if m.WriteMean > 40*time.Millisecond {
			t.Errorf("%s write mean %v pays the WAN", lv, m.WriteMean)
		}
		if m.Errors > 0 {
			t.Errorf("%s: %d errors on a healthy cluster", lv, m.Errors)
		}
		if eq.WriteMean < 2*m.WriteMean {
			t.Errorf("EACH_QUORUM write mean %v not clearly above %s's %v", eq.WriteMean, lv, m.WriteMean)
		}
	}
	// The RF-per-DC sweep keeps the NetworkTopologyStrategy label in the
	// rendered table.
	if s := res.Table().String(); !strings.Contains(s, "3+1") || !strings.Contains(s, "sla-adaptive") {
		t.Error("table missing RF-per-DC or SLA rows")
	}
}

func TestRunFailoverAvailabilityShapes(t *testing.T) {
	o := DefaultFailoverOptions()
	o.Threads = 16
	res, err := RunFailover(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("systems = %d", len(res))
	}
	sums := map[string]struct{ ok, errs int64 }{}
	for _, tl := range res {
		var ok, errs int64
		for i := range tl.OK {
			ok += tl.OK[i]
			errs += tl.Errors[i]
		}
		sums[tl.System] = struct{ ok, errs int64 }{ok, errs}
	}
	// ONE and QUORUM ride through the failure: at most the handful of
	// in-flight requests at the instant the node dies can error.
	for _, sys := range []string{"Cassandra-ONE", "Cassandra-QUORUM"} {
		if s := sums[sys]; s.errs > int64(o.Threads) {
			t.Errorf("%s: %d errors, want availability through failure", sys, s.errs)
		}
	}
	// ALL and single-owner HBase error throughout the outage.
	for _, sys := range []string{"Cassandra-ALL", "HBase"} {
		if s := sums[sys]; s.errs < 50 {
			t.Errorf("%s: only %d errors despite a dead node", sys, s.errs)
		}
	}
	// Errors are confined to the failure window (± one bucket for ops in
	// flight when the node dies).
	for _, tl := range res {
		failStart := int(o.FailAt/o.Bucket) - 1
		failEnd := int(o.RecoverAt/o.Bucket) + 1
		for i, e := range tl.Errors {
			if e > 0 && (i < failStart || i > failEnd) {
				t.Errorf("%s: errors in bucket %d outside the failure window", tl.System, i)
			}
		}
	}
	// Hinted handoff replayed for the weak levels.
	for _, tl := range res {
		if strings.HasPrefix(tl.System, "Cassandra-ONE") && tl.Replays == 0 {
			t.Errorf("%s: no hint replays after recovery", tl.System)
		}
	}
	if len(res.Figure().Series) != 4 || len(res.ThroughputFigure().Series) != 4 {
		t.Error("figures malformed")
	}
}
