package core

import (
	"fmt"
	"sort"
	"time"
)

// Finding is the verdict on one of the paper's qualitative claims,
// evaluated against reproduced results. Pass reports whether the
// reproduction matches the paper's claim; Detail carries the numbers.
type Finding struct {
	ID     string
	Claim  string
	Pass   bool
	Detail string
}

// String renders the finding as one report line.
func (f Finding) String() string {
	mark := "✗"
	if f.Pass {
		mark = "✓"
	}
	return fmt.Sprintf("%s %-4s %s — %s", mark, f.ID, f.Claim, f.Detail)
}

// ratio returns hi/lo as a float, guarding zero.
func ratio(hi, lo float64) float64 {
	if lo == 0 {
		return 0
	}
	return hi / lo
}

// flatness returns max/min over the series of mean latencies.
func flatness(vals []time.Duration) float64 {
	if len(vals) == 0 {
		return 0
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return ratio(float64(max), float64(min))
}

// CheckFig1 evaluates the paper's §4.1 micro-benchmark findings.
func CheckFig1(r Fig1Results) []Finding {
	rfs := rfsOf(r)
	series := func(db, op string) []time.Duration {
		var out []time.Duration
		for _, rf := range rfs {
			if v := r.get(db, op, rf); v >= 0 {
				out = append(out, v)
			}
		}
		return out
	}
	var fs []Finding

	// F1: HBase read/scan latency ~flat in RF.
	fr := flatness(series("HBase", "read"))
	fsc := flatness(series("HBase", "scan"))
	fs = append(fs, Finding{
		ID:     "F1",
		Claim:  "HBase read/scan latency flat in replication factor",
		Pass:   fr < 1.8 && fsc < 1.8,
		Detail: fmt.Sprintf("max/min read=%.2f scan=%.2f (threshold 1.8)", fr, fsc),
	})

	// F2: HBase insert/update latency ~flat in RF (in-memory replication).
	fu := flatness(series("HBase", "update"))
	fi := flatness(series("HBase", "insert"))
	fs = append(fs, Finding{
		ID:     "F2",
		Claim:  "HBase insert/update latency flat in replication factor",
		Pass:   fu < 1.8 && fi < 1.8,
		Detail: fmt.Sprintf("max/min update=%.2f insert=%.2f (threshold 1.8)", fu, fi),
	})

	// F3: Cassandra insert/update latency ~flat in RF at CL=ONE.
	cu := flatness(series("Cassandra", "update"))
	ci := flatness(series("Cassandra", "insert"))
	fs = append(fs, Finding{
		ID:     "F3",
		Claim:  "Cassandra insert/update latency flat in replication factor at ONE",
		Pass:   cu < 1.8 && ci < 1.8,
		Detail: fmt.Sprintf("max/min update=%.2f insert=%.2f (threshold 1.8)", cu, ci),
	})

	// F4: Cassandra read/scan latency rises with RF. The read-repair
	// burden is a load effect, so it shows in the mean (queue bursts and
	// saturation tails), which is also the statistic the paper plots;
	// the flatness checks above use medians only to reject pause noise.
	minRF, maxRF := rfs[0], rfs[len(rfs)-1]
	readLo, readHi := r.getMean("Cassandra", "read", minRF), r.getMean("Cassandra", "read", maxRF)
	scanLo, scanHi := r.getMean("Cassandra", "scan", minRF), r.getMean("Cassandra", "scan", maxRF)
	growth := ratio(float64(readHi), float64(readLo))
	scanGrowth := ratio(float64(scanHi), float64(scanLo))
	fs = append(fs, Finding{
		ID:     "F4",
		Claim:  "Cassandra read/scan latency rises with replication factor",
		Pass:   growth > 1.25 && scanGrowth > 1.25,
		Detail: fmt.Sprintf("mean read rf%d/rf%d=%.2f scan=%.2f (threshold 1.25)", maxRF, minRF, growth, scanGrowth),
	})
	return fs
}

func rfsOf(r Fig1Results) []int {
	seen := map[int]bool{}
	var out []int
	for _, m := range r {
		if !seen[m.RF] {
			seen[m.RF] = true
			out = append(out, m.RF)
		}
	}
	return out
}

// CheckFig2 evaluates the paper's §4.2 stress-benchmark findings.
func CheckFig2(r Fig2Results) []Finding {
	var fs []Finding
	rfs := map[int]bool{}
	for _, m := range r {
		rfs[m.RF] = true
	}
	rfList := make([]int, 0, len(rfs))
	for rf := range rfs {
		rfList = append(rfList, rf)
	}
	sort.Ints(rfList)
	var minRF, maxRF int
	if len(rfList) > 0 {
		minRF, maxRF = rfList[0], rfList[len(rfList)-1]
	}

	// F5a: runtime throughput inversely related to latency (closed loop).
	inversions := 0
	checked := 0
	for _, db := range []string{"HBase", "Cassandra"} {
		for _, wl := range workloadOrder() {
			tLo, lLo := r.get(db, wl, minRF)
			tHi, lHi := r.get(db, wl, maxRF)
			if tLo < 0 || tHi < 0 {
				continue
			}
			checked++
			// If throughput dropped, latency must have risen (and vice
			// versa), within 5% slack.
			if (tHi < tLo*0.95 && lHi <= lLo) || (tHi > tLo*1.05 && lHi >= lLo) {
				inversions++
			}
		}
	}
	fs = append(fs, Finding{
		ID:     "F5a",
		Claim:  "runtime throughput inversely related to latency",
		Pass:   checked > 0 && inversions == 0,
		Detail: fmt.Sprintf("%d/%d series consistent", checked-inversions, checked),
	})

	// F5b: HBase throughput ~flat in RF across workloads.
	worst := 0.0
	for _, wl := range workloadOrder() {
		tLo, _ := r.get("HBase", wl, minRF)
		tHi, _ := r.get("HBase", wl, maxRF)
		if tLo <= 0 || tHi <= 0 {
			continue
		}
		f := ratio(tLo, tHi)
		if f < 1 {
			f = 1 / f
		}
		if f > worst {
			worst = f
		}
	}
	fs = append(fs, Finding{
		ID:     "F5b",
		Claim:  "HBase stress performance insignificant change in replication factor",
		Pass:   worst < 2.0,
		Detail: fmt.Sprintf("worst rf%d-vs-rf%d throughput ratio=%.2f (threshold 2.0)", minRF, maxRF, worst),
	})

	// F5c: Cassandra read-heavy throughput degrades as RF grows.
	degraded := 0
	total := 0
	for _, wl := range workloadOrder() {
		tLo, _ := r.get("Cassandra", wl, minRF)
		tHi, _ := r.get("Cassandra", wl, maxRF)
		if tLo <= 0 || tHi <= 0 {
			continue
		}
		total++
		if tHi < tLo*0.9 {
			degraded++
		}
	}
	fs = append(fs, Finding{
		ID:     "F5c",
		Claim:  "Cassandra stress performance degrades significantly with replication factor",
		Pass:   total > 0 && degraded >= total-1, // read-heavy workloads dominate the suite
		Detail: fmt.Sprintf("%d/%d workloads degraded >10%% from rf%d to rf%d", degraded, total, minRF, maxRF),
	})
	return fs
}

// CheckFig3 evaluates the paper's §4.3 consistency findings against the
// reproduction. F6a (read-latest: ONE worst) is reported but is a known
// deviation — see EXPERIMENTS.md — so callers asserting reproduction
// should gate on the others.
func CheckFig3(r Fig3Results) []Finding {
	var fs []Finding

	// F6a: read latest — ONE worst, QUORUM/ALL closely better (paper).
	one := r.peak("read-latest", "ONE")
	q := r.peak("read-latest", "QUORUM")
	all := r.peak("read-latest", "writeALL")
	fs = append(fs, Finding{
		ID:     "F6a",
		Claim:  "read-latest: ONE worst, QUORUM/writeALL better (known deviation)",
		Pass:   one < q && one < all,
		Detail: fmt.Sprintf("ONE=%.0f QUORUM=%.0f writeALL=%.0f", one, q, all),
	})

	// F6b: scan short ranges — all three levels close.
	so, sq, sa := r.peak("scan-short-ranges", "ONE"), r.peak("scan-short-ranges", "QUORUM"), r.peak("scan-short-ranges", "writeALL")
	lo, hi := so, so
	for _, v := range []float64{sq, sa} {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	fs = append(fs, Finding{
		ID:     "F6b",
		Claim:  "scan-short-ranges: all consistency levels perform closely",
		Pass:   lo > 0 && hi/lo < 1.15,
		Detail: fmt.Sprintf("ONE=%.0f QUORUM=%.0f writeALL=%.0f spread=%.2f (threshold 1.15)", so, sq, sa, ratio(hi, lo)),
	})

	// F6c: write-heavy tests — the paper orders ONE best, QUORUM almost
	// worst, ALL worst. The robustly reproducible core of that claim is
	// asserted here: write-ALL is strictly the worst level, and ONE is
	// at or within noise of the top. The fine ONE-vs-QUORUM margin is
	// inside simulator variance and is discussed in EXPERIMENTS.md.
	ruOne := r.peak("read-update", "ONE")
	ruQ := r.peak("read-update", "QUORUM")
	ruAll := r.peak("read-update", "writeALL")
	best := ruOne
	if ruQ > best {
		best = ruQ
	}
	fs = append(fs, Finding{
		ID:    "F6c",
		Claim: "read-update: writeALL worst; ONE at or near the top",
		Pass: ruAll < ruOne*0.95 && ruAll < ruQ*0.95 && // ALL strictly worst
			ruOne > best*0.90, // ONE within 10% of the best level
		Detail: fmt.Sprintf("ONE=%.0f QUORUM=%.0f writeALL=%.0f", ruOne, ruQ, ruAll),
	})

	// F6d: the bigger the write proportion, the bigger the spread.
	spread := func(wl string) float64 {
		o, qq, aa := r.peak(wl, "ONE"), r.peak(wl, "QUORUM"), r.peak(wl, "writeALL")
		lo, hi := o, o
		for _, v := range []float64{qq, aa} {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo <= 0 {
			return 0
		}
		return hi/lo - 1
	}
	heavy := spread("read-update") // 50% writes
	light := spread("read-mostly") // 5% writes
	fs = append(fs, Finding{
		ID:     "F6d",
		Claim:  "bigger write proportion, more obvious consistency-level difference",
		Pass:   heavy > light,
		Detail: fmt.Sprintf("spread read-update=%.2f read-mostly=%.2f", heavy, light),
	})
	return fs
}
