package core

import (
	"fmt"
	"time"

	"cloudbench/internal/consistency"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
	"cloudbench/internal/ycsb"
)

// The consistency audit.
//
// The paper's §4.1 and §4.3 explain Cassandra's latency curves with a
// causal story about stale replicas: writes at CL=ONE ack on the fastest
// replica while the fixed "main replica" that serves subsequent reads may
// lag behind, and read repair is what closes the gap. The paper never
// measures the staleness itself. This experiment does, with the
// consistency oracle: the same CL × RF grid as the performance figures,
// over the two workloads where staleness matters most (read-latest targets
// just-written keys; read&update is the 50/50 mixer of Fig. 3), plus one
// cell under the failover experiment's fault injection, reporting
// client-centric staleness next to the usual latency and throughput.
//
// Audit cells run Cassandra with the replica MutationStage jitter enabled
// (Options.MutationStageDelay): without it the simulated fan-out delivers
// strictly FIFO per node and a read issued after a write's ack can never
// overtake the main replica's pending apply, so CL=ONE staleness would be
// structurally zero — unlike a real cluster, where per-message stage
// hand-off and JVM scheduling variance reorder the apply behind the read.
// The latency experiments leave the jitter off (it is second order for
// latency); turning it on only here keeps Fig. 1–3 bit-identical.
//
// Expected shape, asserted by CheckAudit:
//   - HBase (single-owner regions, the strong-consistency control) and
//     Cassandra at QUORUM/writeALL (R+W > N) never serve stale reads: any
//     read set intersects every acked write set, and digest mismatch
//     triggers blocking repair before the read returns;
//   - at CL=ONE the stale fraction grows strictly with RF: the ack comes
//     from the fastest of RF independently jittered replicas while the
//     read keeps hitting the fixed main replica, so more replicas mean an
//     earlier ack — and a more heavily loaded mutation stage — both
//     widening the window in which an acknowledged write is invisible;
//   - under fault injection (one server fails a quarter into the run and
//     recovers at the midpoint) the recovered server resumes serving its
//     main-replica reads while still missing the down-window writes,
//     visible as a staleness/monotonic spike relative to the healthy
//     cell, and hinted handoff is what closes the gap — visible as
//     hint-replay applies during the settle window.

const (
	// auditMutationStage is the per-mutation stage jitter mean (scaled by
	// RF inside cassandra) used by every Cassandra audit cell.
	auditMutationStage = 150 * time.Microsecond
	// auditFaultSettle keeps the simulation alive after the run so the
	// hint-replay loop (default interval 10 s) demonstrably drains.
	auditFaultSettle = 15 * time.Second
)

// AuditResult is one cell of the consistency audit: one database, one
// workload, one consistency setting, one replication factor.
type AuditResult struct {
	DB       string
	Workload string
	Level    string
	RF       int
	Fault    bool // ran under the fail/recover cycle

	// Performance, as in the paper's figures.
	Runtime float64 // measured run-phase throughput, ops/s
	Mean    time.Duration

	// Client-centric consistency over the measured window.
	Consistency consistency.Report
}

// AuditResults collects the full audit grid.
type AuditResults []AuditResult

// auditCell is one grid point to run.
type auditCell struct {
	db    string
	lv    ConsistencySetting
	rf    int
	spec  ycsb.Spec
	fault bool
}

// auditSpecs returns the audited workloads: the two stress workloads whose
// read/write interleaving makes staleness observable.
func auditSpecs(o Options) []ycsb.Spec {
	return []ycsb.Spec{
		ycsb.ReadLatest(o.StressRecords),
		ycsb.ReadUpdate(o.StressRecords),
	}
}

// auditCells enumerates the canonical audit order: workload-major, the
// HBase control sweep first, then Cassandra level-major with RF ascending,
// and the single fault-injected cell last.
func auditCells(o Options) []auditCell {
	var cells []auditCell
	for _, spec := range auditSpecs(o) {
		for _, rf := range o.ReplicationFactors {
			cells = append(cells, auditCell{db: "HBase", lv: ConsistencySetting{Name: "strong"}, rf: rf, spec: spec})
		}
		for _, lv := range levels() {
			for _, rf := range o.ReplicationFactors {
				cells = append(cells, auditCell{db: "Cassandra", lv: lv, rf: rf, spec: spec})
			}
		}
	}
	cells = append(cells, auditCell{
		db: "Cassandra", lv: levels()[0], rf: auditFaultRF(o),
		spec: ycsb.ReadUpdate(o.StressRecords), fault: true,
	})
	return cells
}

// auditFaultRF picks the fault cell's replication factor: the paper's
// recommended 3 when the sweep includes it, otherwise the largest swept
// factor (so the healthy counterpart cell always exists).
func auditFaultRF(o Options) int {
	rf := o.ReplicationFactors[len(o.ReplicationFactors)-1]
	for _, f := range o.ReplicationFactors {
		if f == 3 {
			return 3
		}
	}
	return rf
}

// RunConsistencyAudit runs the audit grid. Each cell is a self-contained
// deployment with a fresh oracle, fanned out across the sweep scheduler;
// like every experiment the report is bit-identical for any parallelism.
func RunConsistencyAudit(o Options) (AuditResults, error) {
	cells := auditCells(o)
	results, err := runCells(o.workers(), len(cells), func(i int) (AuditResult, error) {
		res, err := runAuditCell(o, cells[i])
		if err != nil {
			return res, fmt.Errorf("audit %s/%s/rf%d: %w", cells[i].db, cells[i].lv.Name, cells[i].rf, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runAuditCell deploys one database, attaches an oracle, loads, runs the
// workload (optionally failing and recovering a server mid-run), lets
// repairs and hint replay settle, and snapshots the oracle's report.
func runAuditCell(o Options, c auditCell) (AuditResult, error) {
	var d *deployment
	if c.db == "HBase" {
		d = deployHBase(o, c.rf, c.spec)
	} else {
		oc := o
		oc.MutationStageDelay = auditMutationStage
		d = deployCassandra(oc, c.rf, c.lv.Read, c.lv.Write)
	}
	oracle := consistency.New()
	if d.hb != nil {
		d.hb.SetOracle(oracle)
	} else {
		d.ca.SetOracle(oracle)
	}
	out := AuditResult{DB: c.db, Workload: c.spec.Name, Level: c.lv.Name, RF: c.rf, Fault: c.fault}
	err := d.drive(func(p *sim.Proc) {
		w := ycsb.NewWorkload(c.spec)
		d.loadAndSettle(p, w, o.Threads)
		rcfg := ycsb.RunConfig{
			Threads:        o.Threads,
			Ops:            o.StressOps,
			WarmupFraction: o.WarmupFraction,
			Oracle:         oracle,
		}
		if c.fault {
			// Fail one server a quarter into the run and recover it at
			// the midpoint, by operation progress so the cycle lands
			// inside the measured window at every profile scale.
			victim := d.clus.Nodes[o.ServerNodes/2]
			rcfg.Events = []ycsb.RunEvent{
				{AfterOps: o.StressOps / 4, Fn: victim.Fail},
				{AfterOps: o.StressOps / 2, Fn: victim.Recover},
			}
		}
		run := c.spec
		run.RecordCount = w.Inserted()
		wl := ycsb.NewWorkload(run)
		res := ycsb.Run(p, d.newClient, wl, rcfg)
		out.Runtime = res.Throughput
		out.Mean = res.MeanLatency()
		settle := quiesce
		if c.fault {
			settle = auditFaultSettle
		}
		p.Sleep(settle)
	})
	// The final report (not the runner's end-of-phase snapshot) includes
	// propagation that completed during the settle sleep — background
	// repairs and hint replay — so t-visibility and apply counts are
	// complete; the read-side staleness counters are identical, since no
	// client reads happen after the run.
	if oracle != nil {
		out.Consistency = oracle.Report()
	}
	return out, err
}

// get returns the audit cell for (db, workload, level, rf) among the
// healthy cells, or nil.
func (r AuditResults) get(db, workload, level string, rf int) *AuditResult {
	for i := range r {
		m := &r[i]
		if m.DB == db && m.Workload == workload && m.Level == level && m.RF == rf && !m.Fault {
			return m
		}
	}
	return nil
}

// fault returns the fault-injected cell, or nil.
func (r AuditResults) fault() *AuditResult {
	for i := range r {
		if r[i].Fault {
			return &r[i]
		}
	}
	return nil
}

// Table renders the audit as one paper-style row per cell: staleness and
// visibility next to latency.
func (r AuditResults) Table() *stats.Table {
	t := stats.NewTable("Consistency audit — client-centric staleness by consistency level and replication factor",
		"db", "workload", "level", "rf", "fault",
		"ops/sec", "mean-latency",
		"reads", "stale", "stale-%", "mean-lag", "max-lag",
		"tvis-q-p50", "tvis-q-p99", "tvis-all-p50", "tvis-all-p99",
		"mono-viol", "repair-applies", "hint-applies")
	for _, m := range r {
		c := m.Consistency
		t.AddRow(m.DB, m.Workload, m.Level, m.RF, m.Fault,
			m.Runtime, m.Mean.Round(time.Microsecond).String(),
			c.Reads, c.StaleReads, fmt.Sprintf("%.3f", 100*c.StaleFraction()),
			fmt.Sprintf("%.2f", c.MeanLag), c.MaxLag,
			c.TVisQuorumP50.Round(time.Microsecond).String(),
			c.TVisQuorumP99.Round(time.Microsecond).String(),
			c.TVisAllP50.Round(time.Microsecond).String(),
			c.TVisAllP99.Round(time.Microsecond).String(),
			c.MonotonicViolations, c.RepairApplies, c.HintApplies)
	}
	return t
}

// CheckAudit evaluates the audit's qualitative claims.
func CheckAudit(r AuditResults) []Finding {
	var fs []Finding

	// FA1: HBase, the strong-consistency control, is always fresh.
	hbStale, hbMono, hbCells := int64(0), int64(0), 0
	for _, m := range r {
		if m.DB == "HBase" {
			hbCells++
			hbStale += m.Consistency.StaleReads
			hbMono += m.Consistency.MonotonicViolations
		}
	}
	fs = append(fs, Finding{
		ID:     "FA1",
		Claim:  "HBase serves zero stale reads at every replication factor",
		Pass:   hbCells > 0 && hbStale == 0 && hbMono == 0,
		Detail: fmt.Sprintf("%d cells: stale=%d monotonic-violations=%d", hbCells, hbStale, hbMono),
	})

	// FA2: R+W > N (QUORUM/QUORUM and ONE-read/ALL-write) never stale on
	// a healthy cluster: any read quorum intersects every acked write set.
	var qStale, qReads int64
	qCells := 0
	for _, m := range r {
		if m.DB == "Cassandra" && !m.Fault && (m.Level == "QUORUM" || m.Level == "writeALL") {
			qCells++
			qStale += m.Consistency.StaleReads
			qReads += m.Consistency.Reads
		}
	}
	fs = append(fs, Finding{
		ID:     "FA2",
		Claim:  "Cassandra never serves stale reads when R+W > N (QUORUM, writeALL)",
		Pass:   qCells > 0 && qStale == 0,
		Detail: fmt.Sprintf("%d cells, %d reads: stale=%d", qCells, qReads, qStale),
	})

	// FA3: at CL=ONE the stale fraction grows strictly with RF — the
	// mechanism behind the paper's F4: acks come from the fastest of RF
	// replicas while reads keep hitting the fixed main replica.
	pass3 := true
	detail3 := ""
	for _, spec := range []string{"read-latest", "read-update"} {
		var series []float64
		var rfs []int
		for _, m := range r {
			if m.DB == "Cassandra" && m.Workload == spec && m.Level == "ONE" && !m.Fault {
				series = append(series, m.Consistency.StaleFraction())
				rfs = append(rfs, m.RF)
			}
		}
		if len(series) < 2 {
			continue
		}
		for i := 1; i < len(series); i++ {
			if series[i] <= series[i-1] {
				pass3 = false
			}
		}
		detail3 += fmt.Sprintf("%s:", spec)
		for i, v := range series {
			detail3 += fmt.Sprintf(" rf%d=%.3f%%", rfs[i], 100*v)
		}
		detail3 += "  "
	}
	fs = append(fs, Finding{
		ID:     "FA3",
		Claim:  "stale-read fraction at CL=ONE strictly increases with replication factor",
		Pass:   pass3 && detail3 != "",
		Detail: detail3,
	})

	// FA4: fault injection at ONE adds staleness/monotonic regressions,
	// and hinted handoff is what closes the gap after recovery.
	if f := r.fault(); f != nil {
		h := r.get(f.DB, f.Workload, f.Level, f.RF)
		pass := f.Consistency.HintApplies > 0
		detail := fmt.Sprintf("fault cell (%s %s rf%d): stale=%.3f%% mono-viol=%d hint-applies=%d",
			f.Level, f.Workload, f.RF, 100*f.Consistency.StaleFraction(),
			f.Consistency.MonotonicViolations, f.Consistency.HintApplies)
		if h != nil {
			pass = pass && f.Consistency.StaleFraction() >= h.Consistency.StaleFraction() &&
				f.Consistency.MonotonicViolations >= h.Consistency.MonotonicViolations
			detail += fmt.Sprintf(" vs healthy: stale=%.3f%% mono-viol=%d",
				100*h.Consistency.StaleFraction(), h.Consistency.MonotonicViolations)
		}
		fs = append(fs, Finding{
			ID:     "FA4",
			Claim:  "fault injection adds staleness at ONE; hinted handoff replays close the gap",
			Pass:   pass,
			Detail: detail,
		})
	}
	return fs
}
