package objstore

import (
	"time"

	"cloudbench/internal/consistency"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/trace"
)

// The async job manager, after auklet's async_job_mgr: every acked write
// enqueues one replication job per remote replica on the accepting
// server's bounded queue. A lazily spawned pool of up to AsyncWorkers
// per-server workers drains the queue in FIFO claim order (the real
// manager runs a worker pool per device — a single serial drainer would
// bottleneck replication behind one WAL-synced apply at a time), retrying
// unreachable targets with capped exponential backoff; jobs that exhaust
// their attempts — and jobs arriving while the queue is full — spill to
// the server's pending set, which the updater sweep (piggybacked on the
// anti-entropy replicator, like auklet's updater walking the
// async-pending directory) retries once the target is back.

// job is one pending replication of a single mutation to one target.
type job struct {
	key      kv.Key
	rec      kv.Record
	del      bool
	ver      kv.Version
	target   *Server
	src      consistency.ApplySource
	attempts int
}

// enqueue adds a replication job to the server's queue, spilling to the
// updater when the queue is at capacity, and grows the drain-worker pool
// up to AsyncWorkers while there is a backlog. Workers exit when the
// queue empties, so idle deployments terminate cleanly.
func (s *Server) enqueue(db *DB, j job) {
	if s.jobs.Len() >= db.cfg.AsyncQueueCap {
		db.JobsSpilled++
		j.src = consistency.ApplyHint
		s.pending = append(s.pending, j)
		return
	}
	s.jobs.Push(j)
	if s.workers < db.cfg.AsyncWorkers && s.workers < s.jobs.Len() {
		s.workers++
		if s.drain == nil {
			// Built once per server rather than per spawn: enqueue sits on
			// every acked write, and the stored closure spares a per-write
			// allocation while keeping spawn order (hence determinism)
			// identical.
			s.drain = func(p *sim.Proc) { db.jobWorker(p, s) }
		}
		db.k.Go("o*-async-jobs", s.drain)
	}
}

// jobWorker drains one server's job queue. It is spawned from whichever
// write queued a job past the live workers' reach; detach so its
// long-lived deliveries bill to the background class, not to that op.
func (db *DB) jobWorker(p *sim.Proc, s *Server) {
	defer func() { s.workers-- }()
	if db.tracer != nil {
		db.tracer.Detach(p)
	}
	for {
		j, ok := s.jobs.TryPop()
		if !ok {
			return
		}
		db.runJob(p, s, j)
	}
}

// runJob delivers one job, retrying with capped backoff while the target
// is unreachable and spilling to the updater when attempts are exhausted.
func (db *DB) runJob(p *sim.Proc, s *Server, j job) {
	for {
		if db.deliver(p, s, j) {
			db.AsyncJobsRun++
			return
		}
		j.attempts++
		if j.attempts >= db.cfg.AsyncMaxAttempts {
			db.JobsSpilled++
			j.src = consistency.ApplyHint
			s.pending = append(s.pending, j)
			return
		}
		db.JobRetries++
		p.Sleep(db.backoff(j.attempts))
	}
}

// backoff returns the capped exponential delay before attempt n+1.
func (db *DB) backoff(attempts int) time.Duration {
	d := db.cfg.AsyncRetryBase
	for i := 1; i < attempts && d < db.cfg.AsyncRetryMax; i++ {
		d *= 2
	}
	if d > db.cfg.AsyncRetryMax {
		d = db.cfg.AsyncRetryMax
	}
	return d
}

// deliver pushes one mutation to the job's target, recording the delivery
// as one composite async-job span with its network and storage legs
// muted. It returns false when the target is unreachable.
func (db *DB) deliver(p *sim.Proc, s *Server, j job) bool {
	if j.target.Node.Down() {
		return false
	}
	size := db.mutationSize(j.key, j.rec)
	var t0 sim.Time
	var prev any
	if db.tracer != nil {
		t0 = p.Now()
		prev = db.tracer.Mute(p)
	}
	ok := s.Node.SendTo(p, j.target.Node, size)
	if ok {
		j.target.applyLocal(p, db, j.key, j.rec, j.del, j.ver, j.src, true)
		// The ack leg is best-effort: the apply already happened, so a
		// source that died mid-ack does not undeliver the job.
		j.target.Node.SendTo(p, s.Node, db.cfg.RequestOverhead)
	}
	if db.tracer != nil {
		db.tracer.Unmute(p, prev)
		if ok {
			db.tracer.Interval(p, trace.PhaseAsyncJob, j.target.Node.ID, t0, p.Now())
		}
	}
	return ok
}
