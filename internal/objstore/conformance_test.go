package objstore

import (
	"testing"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

// TestClientConformance runs the shared kv.Client conformance suite at
// replication factor 1: the suite pins the data-model contract
// (partial-record merge, LWW, scan order, delete discipline), which must
// hold independent of replication. At RF>1 this backend's read-one
// rotation can legally serve a replica the async replication has not
// reached — that eventual-consistency window is by design and measured by
// the oracle experiments, not the conformance suite.
func TestClientConformance(t *testing.T) {
	k := sim.NewKernel(7)
	db, client, _ := testDB(k, 4, 1, nil)
	kv.RunConformance(t, kv.Harness{
		NewClient: func() kv.Client { return client },
		Drive: func(fn func(p *sim.Proc)) error {
			k.Spawn("conformance", func(p *sim.Proc) {
				fn(p)
				db.Stop()
			})
			return k.Run()
		},
	})
}
