// Package objstore implements a Swift-style eventually consistent object
// store on the simulated cluster: the asynchronous end of the replication
// spectrum the paper leaves unmeasured. A consistent-hash ring with
// virtual nodes maps every key to a partition and every partition to a
// fixed replica set; object servers acknowledge a write after a single
// local durable apply (W=1) and replicate to the other RF−1 replicas
// through per-node asynchronous job queues with capped-backoff retries and
// hint-style updater spillover; a periodic anti-entropy replicator walks
// partitions exchanging version digests and pushing missing versions, the
// mechanism that bounds t-visibility when async jobs are lost. The design
// follows OpenStack Swift as modeled by iqiyi/auklet (async_job_mgr,
// updater, replicator), scaled onto the shared simulation primitives.
//
// Contrast with Cassandra at CL=ONE, which this backend superficially
// resembles: CL=ONE still fans the mutation out to every replica
// synchronously in the request path and waits for one ack — the write's
// cost grows with RF, and the unacked replicas are already in flight when
// the client resumes. Here the ack path touches exactly one server
// regardless of RF; the other replicas learn about the write strictly
// after the ack, on a background process. That decouples write latency
// from the replication factor at the price of a wider, explicitly
// asynchronous visibility window — the trade the spectrum experiment
// measures.
package objstore

import (
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/consistency"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/storage"
	"cloudbench/internal/trace"
)

// ReadMode selects the client read policy.
type ReadMode int

const (
	// ReadOne reads from a single replica, rotating across the live
	// replica set per client (Swift proxies load-balance object GETs), so
	// a client can observe a replica the async replication has not
	// reached yet.
	ReadOne ReadMode = iota
	// ReadQuorumFresh reads from a majority of the replica set and
	// returns the freshest reconciled version — what Swift deployments
	// approximate with read affinity plus object versioning, and the
	// policy that lets the oracle compare ack semantics against what a
	// quorum-reading client actually observes.
	ReadQuorumFresh
)

func (m ReadMode) String() string {
	if m == ReadQuorumFresh {
		return "read-quorum"
	}
	return "read-one"
}

// Config parameterizes the object store.
type Config struct {
	// Replication is the ring's replica count per partition.
	Replication int
	// VNodes is the number of virtual-node tokens per server.
	VNodes int
	// PartPower sets the partition count to 2^PartPower (Swift's
	// part_power).
	PartPower uint
	// TopologyAware spreads each partition's replicas across zones before
	// doubling up in any one, mirroring Swift's as-unique-as-possible
	// placement. With a single zone it is a no-op.
	TopologyAware bool
	// ReadMode is the default client read policy.
	ReadMode ReadMode
	// Engine configures each server's storage. SyncWAL stays true: the
	// W=1 ack promises a durable local copy, which is the entire promise.
	Engine storage.Config
	// RequestOverhead is the fixed per-message overhead in bytes.
	RequestOverhead int
	// Timeout bounds how long a client waits for read responses.
	Timeout time.Duration
	// AsyncQueueCap bounds each server's async replication job queue;
	// jobs arriving beyond it spill to the updater's pending set (auklet
	// writes them to the async-pending directory).
	AsyncQueueCap int
	// AsyncWorkers bounds each server's concurrent job deliveries (the
	// job manager's worker pool): one WAL-synced remote apply at a time
	// cannot keep up with a saturating write load.
	AsyncWorkers int
	// AsyncRetryBase and AsyncRetryMax shape the capped exponential
	// backoff between delivery attempts to an unreachable target.
	AsyncRetryBase time.Duration
	AsyncRetryMax  time.Duration
	// AsyncMaxAttempts is how many deliveries a job tries before spilling
	// to the updater.
	AsyncMaxAttempts int
	// ReplicatorInterval is the anti-entropy pass period; 0 disables the
	// replicator (async jobs and the updater then carry all repair).
	ReplicatorInterval time.Duration
}

// DefaultConfig returns a Swift-shaped configuration at replication
// factor 3.
func DefaultConfig() Config {
	return Config{
		Replication:        3,
		VNodes:             16,
		PartPower:          6,
		ReadMode:           ReadOne,
		Engine:             storage.DefaultConfig(),
		RequestOverhead:    64,
		Timeout:            5 * time.Second,
		AsyncQueueCap:      256,
		AsyncWorkers:       8,
		AsyncRetryBase:     50 * time.Millisecond,
		AsyncRetryMax:      time.Second,
		AsyncMaxAttempts:   4,
		ReplicatorInterval: time.Second,
	}
}

// Server is one object server: a cluster node, its local storage, its
// async replication job queue, and the partition→version index the
// anti-entropy replicator exchanges digests from (Swift's hashes.pkl).
type Server struct {
	Node   *cluster.Node
	engine *storage.Engine

	jobs    *sim.Queue[job]
	workers int             // live drain workers, ≤ Config.AsyncWorkers
	pending []job           // updater spillover: jobs awaiting a recovered target
	drain   func(*sim.Proc) // jobWorker body, built once: enqueue runs per acked write

	index map[int]map[kv.Key]kv.Version // partition → key → newest local version
}

// Engine exposes the server's storage engine for inspection.
func (s *Server) Engine() *storage.Engine { return s.engine }

// DB is one object-store deployment.
type DB struct {
	k    *sim.Kernel
	cfg  Config
	cl   *cluster.Cluster
	srvs []*Server
	ring ring

	nextVersion kv.Version
	stopped     bool

	oracle *consistency.Oracle
	tracer *trace.Tracer

	// Metrics.
	Reads, Writes, ScansDone       int64
	HandoffWrites, Unavails        int64
	AsyncJobsRun, JobRetries       int64
	JobsSpilled, UpdaterReplays    int64
	AntiEntropyPasses, DigestsSent int64
	AntiEntropyPushes              int64
}

// New builds an object store over the given server nodes. The ring is
// derived from the kernel's seed stream, so placement is a pure function
// of (topology, seed). With a positive ReplicatorInterval the anti-entropy
// daemon starts immediately; call Stop when driving is done so it exits.
func New(k *sim.Kernel, cfg Config, nodes []*cluster.Node) *DB {
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.Replication > len(nodes) {
		cfg.Replication = len(nodes)
	}
	if cfg.VNodes < 1 {
		cfg.VNodes = 1
	}
	if cfg.AsyncWorkers < 1 {
		cfg.AsyncWorkers = 1
	}
	db := &DB{k: k, cfg: cfg}
	if len(nodes) > 0 {
		db.cl = nodes[0].Cluster()
	}
	for i, n := range nodes {
		s := &Server{
			Node:  n,
			jobs:  sim.NewQueue[job](k),
			index: make(map[int]map[kv.Key]kv.Version),
		}
		s.engine = storage.NewEngine(k, cfg.Engine,
			storage.LocalIO{Disk: n.Disk},
			storage.DiskLog{Disk: n.Disk},
			k.Seed()^int64(i+211))
		db.srvs = append(db.srvs, s)
	}
	rng := k.Rand()
	db.ring = buildRing(db.srvs, cfg.VNodes, cfg.PartPower, cfg.TopologyAware, rng.Uint64)
	db.ring.finish(cfg.Replication)
	if cfg.ReplicatorInterval > 0 {
		db.k.Go("o*-replicator", db.replicatorLoop)
	}
	return db
}

// Stop makes the anti-entropy replicator exit at its next wakeup so the
// kernel can drain; experiments call it when the driver finishes.
func (db *DB) Stop() { db.stopped = true }

// SetOracle attaches a consistency oracle. Pass nil (the default) to run
// unobserved; every hook call site is nil-gated. The attaching experiment
// should declare consistency.AckAsync on the oracle: this database's acks
// promise one durable copy, not a replicated one.
func (db *DB) SetOracle(o *consistency.Oracle) { db.oracle = o }

// Oracle returns the attached consistency oracle, if any.
func (db *DB) Oracle() *consistency.Oracle { return db.oracle }

// SetTracer attaches a request tracer; nil (the default) runs untraced
// with every call site nil-gated.
func (db *DB) SetTracer(t *trace.Tracer) {
	db.tracer = t
	for _, s := range db.srvs {
		node := s.Node
		if t == nil {
			s.engine.OnWALSync = nil
			continue
		}
		s.engine.OnWALSync = func(p *sim.Proc, start sim.Time) {
			t.Phase(p, trace.PhaseWAL, node.ID, start)
		}
	}
}

// Tracer returns the attached tracer, if any.
func (db *DB) Tracer() *trace.Tracer { return db.tracer }

// Servers returns the deployment's object servers.
func (db *DB) Servers() []*Server { return db.srvs }

// PartitionOf maps a key to its ring partition.
func (db *DB) PartitionOf(key kv.Key) int { return db.ring.partition(key) }

// PlacementFor returns the replica set of key's partition, primary first.
func (db *DB) PlacementFor(key kv.Key) []*Server {
	return db.ring.placement(db.ring.partition(key))
}

// HandoffFor returns the handoff order of key's partition.
func (db *DB) HandoffFor(key kv.Key) []*Server {
	return db.ring.handoff(db.ring.partition(key))
}

// writeTarget picks where a write of part lands: the first live placement
// member, else the first live handoff server (inPlacement false). A nil
// server means the partition is wholly unreachable.
func (db *DB) writeTarget(part int) (s *Server, inPlacement bool) {
	for _, cand := range db.ring.placement(part) {
		if !cand.Node.Down() {
			return cand, true
		}
	}
	for _, cand := range db.ring.handoff(part) {
		if !cand.Node.Down() {
			return cand, false
		}
	}
	return nil, false
}

// execServer charges server CPU for one client-facing request. With a
// tracer attached it splits the time into queueing (CPU-slot wait +
// stop-the-world pause) and service phases, like the other backends'
// coordinators.
func (db *DB) execServer(p *sim.Proc, n *cluster.Node, cost time.Duration) {
	if db.tracer == nil {
		n.Exec(p, cost)
		return
	}
	t0 := p.Now()
	wait := n.ExecTimed(p, cost)
	if wait > 0 {
		db.tracer.Interval(p, trace.PhaseCoordQueue, n.ID, t0, t0.Add(wait))
	}
	db.tracer.Phase(p, trace.PhaseCoord, n.ID, t0.Add(wait))
}

// version issues the next write timestamp. Versions are unique today (one
// counter), but replica reconciliation still folds in ascending node-id
// order so a tie could never become order-dependent — see reconcile.
func (db *DB) version() kv.Version {
	db.nextVersion++
	return kv.Version(db.k.Now()) + db.nextVersion
}

// mutationSize models the wire size of a mutation.
func (db *DB) mutationSize(key kv.Key, rec kv.Record) int {
	return rec.Bytes() + len(key) + db.cfg.RequestOverhead
}

// noteVersion records the newest locally held version of key for digest
// exchange. Pure bookkeeping: the real system derives this from its
// on-disk hashes as a side effect of the apply it already did.
func (s *Server) noteVersion(db *DB, key kv.Key, ver kv.Version) {
	part := db.ring.partition(key)
	m := s.index[part]
	if m == nil {
		m = make(map[kv.Key]kv.Version)
		s.index[part] = m
	}
	if ver > m[key] {
		m[key] = ver
	}
}

// localVersion returns the newest version of key this server holds, or 0.
func (s *Server) localVersion(part int, key kv.Key) kv.Version {
	return s.index[part][key]
}

// applyLocal performs the server-side work of one mutation: CPU, durable
// WAL append, memtable apply, and the version-index update. report gates
// the oracle hook: applies on placement members advance the write's
// visibility, while a handoff server's local copy is a stand-in the
// oracle must not count as a replica.
func (s *Server) applyLocal(p *sim.Proc, db *DB, key kv.Key, rec kv.Record, del bool, ver kv.Version, src consistency.ApplySource, report bool) {
	cost := db.cl.Config.InternalOpCost
	if cost <= 0 {
		cost = db.cl.Config.CPUOpCost
	}
	var t0 sim.Time
	if db.tracer != nil {
		t0 = p.Now()
	}
	s.Node.Exec(p, cost)
	if del {
		s.engine.ApplyDelete(p, key, ver)
	} else {
		s.engine.Apply(p, key, rec, ver)
	}
	s.noteVersion(db, key, ver)
	if db.tracer != nil {
		db.tracer.Phase(p, trace.PhaseStorage, s.Node.ID, t0)
	}
	if db.oracle != nil {
		if report {
			db.oracle.ReplicaApply(key, ver, s.Node.ID, src, p.Now())
		}
	}
}

// write is the W=1 server-side write path, executed by the client's
// process at the chosen server: apply durably here, ack, and leave the
// other replicas to the async job manager. When the chosen server is a
// handoff stand-in, its local copy is oracle-invisible and the queued
// jobs count as hint deliveries.
func (db *DB) write(p *sim.Proc, s *Server, inPlacement bool, key kv.Key, rec kv.Record, del bool) {
	part := db.ring.partition(key)
	placement := db.ring.placement(part)
	ver := db.version()
	if db.oracle != nil {
		db.oracle.WriteBegin(key, ver, len(placement), db.k.Now())
	}
	src := consistency.ApplyWrite
	if !inPlacement {
		src = consistency.ApplyHint
		db.HandoffWrites++
	}
	s.applyLocal(p, db, key, rec, del, ver, src, inPlacement)
	for _, peer := range placement {
		if peer == s {
			continue
		}
		s.enqueue(db, job{key: key, rec: rec, del: del, ver: ver, target: peer, src: src})
	}
	if db.oracle != nil {
		db.oracle.WriteAck(key, ver, db.k.Now())
	}
}

// FlushAll forces every server's memtable to flush (between benchmark
// phases).
func (db *DB) FlushAll() {
	for _, s := range db.srvs {
		s.engine.ForceFlush()
	}
}

// Engines returns the per-server engines for metric collection.
func (db *DB) Engines() []*storage.Engine {
	es := make([]*storage.Engine, len(db.srvs))
	for i, s := range db.srvs {
		es[i] = s.engine
	}
	return es
}

// PendingJobs reports queued plus spilled replication jobs across all
// servers (diagnostic).
func (db *DB) PendingJobs() int {
	n := 0
	for _, s := range db.srvs {
		n += s.jobs.Len() + len(s.pending)
	}
	return n
}
