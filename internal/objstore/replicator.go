package objstore

import (
	"sort"

	"cloudbench/internal/consistency"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/trace"
)

// The anti-entropy replicator, after Swift's object-replicator as modeled
// by auklet: a periodic daemon that walks every live server's partitions,
// exchanges a per-partition version digest with each peer replica, and
// pushes the versions the peer is missing. Async jobs deliver almost all
// replication in a healthy cluster; the replicator is what bounds
// t-visibility when jobs are lost, spilled, or their target was down —
// its interval is the eventual-consistency knob the spectrum experiment
// sweeps. Each pass also runs the updater sweep, retrying spilled jobs
// whose targets have recovered.

// replicatorLoop is the anti-entropy daemon. It detaches from whatever
// spawned it (deployment setup) so its work bills to the background
// class, and exits at the first wakeup after Stop.
func (db *DB) replicatorLoop(p *sim.Proc) {
	if db.tracer != nil {
		db.tracer.Detach(p)
	}
	for !db.stopped {
		p.Sleep(db.cfg.ReplicatorInterval)
		if db.stopped {
			return
		}
		db.replicatePass(p)
	}
}

// replicatePass is one full anti-entropy cycle over every live server.
func (db *DB) replicatePass(p *sim.Proc) {
	db.AntiEntropyPasses++
	for _, s := range db.srvs {
		if s.Node.Down() {
			continue
		}
		db.drainPending(p, s)
		for _, part := range s.sortedParts() {
			for _, peer := range db.ring.placement(part) {
				if peer == s || peer.Node.Down() {
					continue
				}
				db.syncPartition(p, s, peer, part)
			}
		}
	}
}

// drainPending is the updater sweep: retry every spilled job whose target
// is reachable again, keeping the rest for the next pass.
func (db *DB) drainPending(p *sim.Proc, s *Server) {
	if len(s.pending) == 0 {
		return
	}
	var keep []job
	for _, j := range s.pending {
		if db.deliver(p, s, j) {
			db.UpdaterReplays++
		} else {
			keep = append(keep, j)
		}
	}
	s.pending = keep
}

// sortedParts returns the partitions this server holds data for, in
// ascending order — map iteration must never leak into the event stream.
func (s *Server) sortedParts() []int {
	parts := make([]int, 0, len(s.index))
	for part := range s.index {
		parts = append(parts, part)
	}
	sort.Ints(parts)
	return parts
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys(m map[kv.Key]kv.Version) []kv.Key {
	keys := make([]kv.Key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// syncPartition pushes one partition from s to peer: send the version
// digest, learn which keys the peer is missing or holds stale, and push
// those versions. The whole exchange records as one composite
// anti-entropy span with its internal legs muted.
func (db *DB) syncPartition(p *sim.Proc, s, peer *Server, part int) {
	local := s.index[part]
	if len(local) == 0 {
		return
	}
	keys := sortedKeys(local)

	var t0 sim.Time
	var prev any
	if db.tracer != nil {
		t0 = p.Now()
		prev = db.tracer.Mute(p)
	}
	done := func(record bool) {
		if db.tracer != nil {
			db.tracer.Unmute(p, prev)
			if record {
				db.tracer.Interval(p, trace.PhaseAntiEntropy, peer.Node.ID, t0, p.Now())
			}
		}
	}

	// Digest request: (key, version) pairs for everything held locally.
	digestSize := db.cfg.RequestOverhead
	for _, k := range keys {
		digestSize += len(k) + 8
	}
	db.DigestsSent++
	if !s.Node.SendTo(p, peer.Node, digestSize) {
		done(false)
		return
	}
	cost := db.cl.Config.InternalOpCost
	if cost <= 0 {
		cost = db.cl.Config.CPUOpCost
	}
	peer.Node.Exec(p, cost)
	var missing []kv.Key
	respSize := db.cfg.RequestOverhead
	for _, k := range keys {
		if peer.localVersion(part, k) < local[k] {
			missing = append(missing, k)
			respSize += len(k) + 8
		}
	}
	if !peer.Node.SendTo(p, s.Node, respSize) {
		done(false)
		return
	}

	// Push every missing version: local read, network, remote apply.
	for _, k := range missing {
		row := s.engine.Get(p, k)
		if row == nil {
			continue
		}
		rec := row.Record()
		del := rec == nil
		ver := row.Version()
		if !s.Node.SendTo(p, peer.Node, db.mutationSize(k, rec)) {
			break
		}
		peer.applyLocal(p, db, k, rec, del, ver, consistency.ApplyRepair, true)
		db.AntiEntropyPushes++
	}
	done(true)
}
