package objstore

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/sim"
)

// fingerprint renders the full placement and handoff tables as node-id
// lists — the bit-identity currency for the determinism tests.
func (db *DB) fingerprint() string {
	var b strings.Builder
	for part := range db.ring.parts {
		fmt.Fprintf(&b, "%d:", part)
		for _, s := range db.ring.placement(part) {
			fmt.Fprintf(&b, " %d", s.Node.ID)
		}
		b.WriteString(" |")
		for _, s := range db.ring.handoff(part) {
			fmt.Fprintf(&b, " %d", s.Node.ID)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestRingDeterministicAcrossKernels: the ring is a pure function of
// (topology, seed) — two independent kernels with the same seed build
// bit-identical placement and handoff tables.
func TestRingDeterministicAcrossKernels(t *testing.T) {
	build := func(k *sim.Kernel) string {
		db, _, _ := testDB(k, 8, 3, nil)
		db.Stop()
		return db.fingerprint()
	}
	a := build(sim.NewKernel(21))
	b := build(sim.NewKernel(21))
	if a != b {
		t.Fatal("same seed produced different rings")
	}
	if c := build(sim.NewKernel(22)); c == a {
		t.Fatal("different seed produced the same ring (suspicious)")
	}
}

// TestRingShardBitIdentity: building the deployment on a member kernel of
// an 8-way shard group yields the same ring as a plain kernel with the
// same seed — the property the -shards sweep gates rely on.
func TestRingShardBitIdentity(t *testing.T) {
	plain := sim.NewKernel(31)
	dbPlain, _, _ := testDB(plain, 8, 3, nil)
	dbPlain.Stop()

	g := sim.NewShardGroup(31, 8, sim.Duration(100*time.Microsecond))
	dbShard, _, _ := testDB(g.Shard(0).Kernel(), 8, 3, nil)
	dbShard.Stop()

	if dbPlain.fingerprint() != dbShard.fingerprint() {
		t.Fatal("ring differs between plain kernel and shard-0 member kernel")
	}
}

// TestRingIgnoresFailures: node failures never rebuild the ring — the
// tables are identical across fail/recover, and only the write target
// moves (to the next live placement member, then the handoff order).
func TestRingIgnoresFailures(t *testing.T) {
	k := sim.NewKernel(41)
	db, _, _ := testDB(k, 6, 3, nil)
	db.Stop()
	before := db.fingerprint()

	target := key(0)
	part := db.PartitionOf(target)
	placement := db.PlacementFor(target)
	handoff := db.HandoffFor(target)

	if s, in := db.writeTarget(part); s != placement[0] || !in {
		t.Fatalf("healthy write target = node %d, want primary %d", s.Node.ID, placement[0].Node.ID)
	}
	placement[0].Node.Fail()
	if s, in := db.writeTarget(part); s != placement[1] || !in {
		t.Fatalf("write target after primary failure = node %d, want %d", s.Node.ID, placement[1].Node.ID)
	}
	for _, s := range placement {
		s.Node.Fail()
	}
	if s, in := db.writeTarget(part); s != handoff[0] || in {
		t.Fatalf("write target with placement down = node %d, want first handoff %d", s.Node.ID, handoff[0].Node.ID)
	}
	if db.fingerprint() != before {
		t.Fatal("failures rebuilt the ring")
	}
	for _, s := range placement {
		s.Node.Recover()
	}
	if db.fingerprint() != before {
		t.Fatal("recovery rebuilt the ring")
	}
}

// TestRingZoneAwarePlacement: with TopologyAware set and zones configured,
// each partition's replica set spans distinct zones (RF ≤ zone count).
func TestRingZoneAwarePlacement(t *testing.T) {
	k := sim.NewKernel(51)
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 6
	ccfg.Zones = 3
	ccfg.InterZoneRTT = 10 * time.Millisecond
	c := cluster.New(k, ccfg)
	cfg := DefaultConfig()
	cfg.Replication = 3
	cfg.TopologyAware = true
	db := New(k, cfg, c.Nodes)
	db.Stop()
	for part := range db.ring.parts {
		zones := map[int]bool{}
		for _, s := range db.ring.placement(part) {
			if zones[s.Node.Zone] {
				t.Fatalf("partition %d doubles up zone %d", part, s.Node.Zone)
			}
			zones[s.Node.Zone] = true
		}
	}
}

// TestRingEveryServerReachable: each partition's placement plus handoff
// covers every server exactly once.
func TestRingEveryServerReachable(t *testing.T) {
	k := sim.NewKernel(61)
	db, _, _ := testDB(k, 7, 3, nil)
	db.Stop()
	for part := range db.ring.parts {
		seen := map[int]bool{}
		for _, s := range db.ring.placement(part) {
			seen[s.Node.ID] = true
		}
		for _, s := range db.ring.handoff(part) {
			if seen[s.Node.ID] {
				t.Fatalf("partition %d lists node %d twice", part, s.Node.ID)
			}
			seen[s.Node.ID] = true
		}
		if len(seen) != 7 {
			t.Fatalf("partition %d covers %d of 7 servers", part, len(seen))
		}
	}
}
