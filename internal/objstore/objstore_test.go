package objstore

import (
	"fmt"
	"testing"
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/consistency"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/trace"
)

// testDB builds object servers on nodes 0..n-2 and a client on the last
// node.
func testDB(k *sim.Kernel, servers, rf int, mutate func(*Config)) (*DB, *Client, *cluster.Cluster) {
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = servers + 1
	c := cluster.New(k, ccfg)
	cfg := DefaultConfig()
	cfg.Replication = rf
	if mutate != nil {
		mutate(&cfg)
	}
	db := New(k, cfg, c.Nodes[:servers])
	return db, db.NewClient(c.Nodes[servers]), c
}

func key(i int) kv.Key { return kv.Key(fmt.Sprintf("user%08d", i)) }

func rec(s string) kv.Record { return kv.Record{"f0": kv.ByteValue([]byte(s))} }

// TestAsyncReplicationConverges: a write is acked after one durable apply
// and the remaining replicas catch up through the async job queue — after
// the kernel drains, every placement member holds the same version.
func TestAsyncReplicationConverges(t *testing.T) {
	k := sim.NewKernel(3)
	db, c, _ := testDB(k, 5, 3, nil)
	const writes = 20
	k.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			if err := c.Insert(p, key(i), rec("v")); err != nil {
				t.Errorf("insert %d: %v", i, err)
			}
		}
		// Let the async jobs deliver, then stop the replicator daemon so
		// the kernel can drain.
		p.Sleep(2 * time.Second)
		db.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writes; i++ {
		placement := db.PlacementFor(key(i))
		want := placement[0].localVersion(db.PartitionOf(key(i)), key(i))
		if want == 0 {
			t.Fatalf("key %d: primary has no version", i)
		}
		for _, s := range placement[1:] {
			if got := s.localVersion(db.PartitionOf(key(i)), key(i)); got != want {
				t.Errorf("key %d: replica node %d version %d, want %d", i, s.Node.ID, got, want)
			}
		}
	}
	if db.AsyncJobsRun != writes*2 {
		t.Errorf("AsyncJobsRun = %d, want %d (RF-1 per write)", db.AsyncJobsRun, writes*2)
	}
	if db.PendingJobs() != 0 {
		t.Errorf("PendingJobs = %d after drain, want 0", db.PendingJobs())
	}
}

// TestDrainClosureHoisted: the per-server drain closure is built exactly
// once and reused across worker spawns — enqueue sits on every acked
// write, so a fresh closure per spawn would put an allocation back on the
// write path (the regression this test pins). Replication behavior must
// be unchanged: all jobs still run.
func TestDrainClosureHoisted(t *testing.T) {
	k := sim.NewKernel(11)
	db, c, _ := testDB(k, 5, 3, func(cfg *Config) { cfg.AsyncWorkers = 2 })
	var firstDrain func(*sim.Proc)
	const writes = 50
	k.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			if err := c.Insert(p, key(i), rec("v")); err != nil {
				t.Errorf("insert %d: %v", i, err)
			}
			for _, s := range db.srvs {
				if s.drain == nil {
					continue
				}
				if firstDrain == nil {
					firstDrain = s.drain
				}
			}
		}
		p.Sleep(2 * time.Second)
		db.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if firstDrain == nil {
		t.Fatal("no drain worker was ever spawned")
	}
	spawned := 0
	for _, s := range db.srvs {
		if s.drain != nil {
			spawned++
		}
		if s.workers != 0 {
			t.Errorf("node %d: %d workers alive after drain, want 0", s.Node.ID, s.workers)
		}
	}
	if spawned == 0 {
		t.Error("expected at least one server to have built its drain closure")
	}
	if db.AsyncJobsRun != writes*2 {
		t.Errorf("AsyncJobsRun = %d, want %d (RF-1 per write)", db.AsyncJobsRun, writes*2)
	}
}

// TestHandoffWriteAndRecovery: with every placement member down, the
// write lands on a handoff stand-in; once the replica set recovers, the
// spilled jobs and the anti-entropy pass push the data home.
func TestHandoffWriteAndRecovery(t *testing.T) {
	k := sim.NewKernel(5)
	db, c, _ := testDB(k, 4, 2, nil)
	target := key(0)
	placement := db.PlacementFor(target)
	part := db.PartitionOf(target)
	k.Spawn("driver", func(p *sim.Proc) {
		for _, s := range placement {
			s.Node.Fail()
		}
		if err := c.Insert(p, target, rec("handoff")); err != nil {
			t.Errorf("handoff insert: %v", err)
		}
		// Past the async retry budget: the jobs must spill to the updater.
		p.Sleep(2 * time.Second)
		for _, s := range placement {
			s.Node.Recover()
		}
		// Across at least one replicator pass after recovery.
		p.Sleep(3 * time.Second)
		db.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if db.HandoffWrites != 1 {
		t.Errorf("HandoffWrites = %d, want 1", db.HandoffWrites)
	}
	for _, s := range placement {
		if s.localVersion(part, target) == 0 {
			t.Errorf("placement node %d never received the handoff write", s.Node.ID)
		}
	}
	if db.UpdaterReplays+db.AntiEntropyPushes == 0 {
		t.Error("neither updater nor anti-entropy carried the handoff home")
	}
}

// TestAntiEntropyDigestPush: a version present on one replica only (no
// async job ever queued for it) reaches its peers through the digest
// exchange alone.
func TestAntiEntropyDigestPush(t *testing.T) {
	k := sim.NewKernel(7)
	db, _, _ := testDB(k, 5, 3, nil)
	target := key(3)
	part := db.PartitionOf(target)
	placement := db.PlacementFor(target)
	k.Spawn("driver", func(p *sim.Proc) {
		// Apply directly at the primary, bypassing the write path: models
		// a replica whose async jobs were lost.
		placement[0].applyLocal(p, db, target, rec("lone"), false, db.version(), consistency.ApplyWrite, true)
		p.Sleep(2 * db.cfg.ReplicatorInterval)
		db.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, s := range placement[1:] {
		if s.localVersion(part, target) == 0 {
			t.Errorf("peer node %d missing the version after anti-entropy", s.Node.ID)
		}
	}
	if db.DigestsSent == 0 || db.AntiEntropyPushes < 2 {
		t.Errorf("digests=%d pushes=%d, want digest-driven pushes to both peers",
			db.DigestsSent, db.AntiEntropyPushes)
	}
}

// TestAsyncQueueSpillover: with the job queue capacity at zero every
// replication job spills straight to the updater, and the replicator pass
// still converges the replicas.
func TestAsyncQueueSpillover(t *testing.T) {
	k := sim.NewKernel(9)
	db, c, _ := testDB(k, 4, 3, func(cfg *Config) { cfg.AsyncQueueCap = 0 })
	k.Spawn("driver", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if err := c.Insert(p, key(i), rec("spill")); err != nil {
				t.Errorf("insert %d: %v", i, err)
			}
		}
		p.Sleep(2 * db.cfg.ReplicatorInterval)
		db.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if db.AsyncJobsRun != 0 {
		t.Errorf("AsyncJobsRun = %d with zero queue cap, want 0", db.AsyncJobsRun)
	}
	if db.JobsSpilled == 0 || db.UpdaterReplays == 0 {
		t.Errorf("spilled=%d replays=%d, want the updater to carry replication", db.JobsSpilled, db.UpdaterReplays)
	}
	for i := 0; i < 5; i++ {
		for _, s := range db.PlacementFor(key(i)) {
			if s.localVersion(db.PartitionOf(key(i)), key(i)) == 0 {
				t.Errorf("key %d missing on node %d", i, s.Node.ID)
			}
		}
	}
}

// TestReadModesAfterConvergence: once replicas have converged, both read
// policies return the written value; quorum reads reconcile a majority.
func TestReadModesAfterConvergence(t *testing.T) {
	k := sim.NewKernel(11)
	db, c, _ := testDB(k, 5, 3, nil)
	k.Spawn("driver", func(p *sim.Proc) {
		if err := c.Insert(p, key(0), rec("settled")); err != nil {
			t.Errorf("insert: %v", err)
		}
		p.Sleep(2 * time.Second)
		for i, cl := range []*Client{c, c.WithReadMode(ReadQuorumFresh)} {
			// Several reads so ReadOne's rotation visits every replica.
			for n := 0; n < 3; n++ {
				got, err := cl.Read(p, key(0), nil)
				if err != nil || string(got["f0"].Data) != "settled" {
					t.Errorf("mode %d read %d: got %v err=%v", i, n, got, err)
				}
			}
		}
		db.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestUnavailableWhenAllDown: with every server failed, reads and writes
// return ErrUnavailable rather than hanging.
func TestUnavailableWhenAllDown(t *testing.T) {
	k := sim.NewKernel(13)
	db, c, _ := testDB(k, 3, 3, func(cfg *Config) { cfg.ReplicatorInterval = 0 })
	k.Spawn("driver", func(p *sim.Proc) {
		for _, s := range db.Servers() {
			s.Node.Fail()
		}
		if _, err := c.Read(p, key(0), nil); err != kv.ErrUnavailable {
			t.Errorf("read with all down: err=%v, want ErrUnavailable", err)
		}
		if err := c.Insert(p, key(0), rec("x")); err != kv.ErrUnavailable {
			t.Errorf("write with all down: err=%v, want ErrUnavailable", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if db.Unavails != 2 {
		t.Errorf("Unavails = %d, want 2", db.Unavails)
	}
}

// TestDisabledHooksZeroAlloc pins the cost of the objstore hook call-site
// shapes with tracer and oracle detached (the performance-experiment
// configuration): the nil gates must not allocate or evaluate their
// arguments.
func TestDisabledHooksZeroAlloc(t *testing.T) {
	var tr *trace.Tracer
	var o *consistency.Oracle
	k := sim.NewKernel(15)
	k.Spawn("driver", func(p *sim.Proc) {
		target := kv.Key("user42")
		allocs := testing.AllocsPerRun(1000, func() {
			// applyLocal's shape: timed storage phase plus gated report.
			var t0 sim.Time
			if tr != nil {
				t0 = p.Now()
			}
			if tr != nil {
				tr.Phase(p, trace.PhaseStorage, 1, t0)
			}
			report := true
			if o != nil {
				if report {
					o.ReplicaApply(target, 1, 1, consistency.ApplyWrite, p.Now())
				}
			}
			// syncPartition's shape: composite span with muted legs.
			var prev any
			if tr != nil {
				t0 = p.Now()
				prev = tr.Mute(p)
			}
			if tr != nil {
				tr.Unmute(p, prev)
				tr.Interval(p, trace.PhaseAntiEntropy, 1, t0, p.Now())
			}
		})
		if allocs != 0 {
			t.Errorf("disabled hook path allocated %.1f allocs/op, want 0", allocs)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
