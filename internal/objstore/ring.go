package objstore

import (
	"sort"

	"cloudbench/internal/kv"
)

// Token is a position on the hash ring.
type Token uint64

// hashKey maps an object key to its token: FNV-1a over the key bytes with
// a murmur-style 64-bit finalizer for avalanche (the same family the
// other backends use; Swift's md5-of-path plays this role).
func hashKey(key kv.Key) Token {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	// fmix64
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return Token(h)
}

// ringEntry is one virtual node: a token owned by a server.
type ringEntry struct {
	token Token
	srv   *Server
}

// ring is a Swift-style consistent-hash ring: keys map to one of 2^partPower
// partitions by the top bits of their token, and each partition maps to a
// fixed replica set plus a handoff order. Both tables are precomputed at
// build time from the vnode layout alone, so placement is a pure function
// of (topology, seed): node failures never rebuild the ring — a down
// primary's writes go to the first live handoff, exactly like Swift's
// get_more_nodes.
type ring struct {
	partPower uint
	parts     [][]*Server // placement per partition, ring order, primary first
	handoffs  [][]*Server // remaining servers per partition, ring order
}

// buildRing assigns vnodes tokens to every server from the deterministic
// rng stream, sorts the ring, and precomputes per-partition placement.
// With zones configured (topologyAware), the first placement pass takes at
// most one server per zone before doubling up, mirroring Swift's
// as-unique-as-possible placement.
func buildRing(servers []*Server, vnodes int, partPower uint, topologyAware bool, randToken func() uint64) ring {
	entries := make([]ringEntry, 0, len(servers)*vnodes)
	for _, s := range servers {
		for v := 0; v < vnodes; v++ {
			entries = append(entries, ringEntry{token: Token(randToken()), srv: s})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].token < entries[j].token })

	r := ring{partPower: partPower}
	nparts := 1 << partPower
	r.parts = make([][]*Server, nparts)
	r.handoffs = make([][]*Server, nparts)
	for part := 0; part < nparts; part++ {
		base := Token(uint64(part) << (64 - partPower))
		start := sort.Search(len(entries), func(i int) bool { return entries[i].token >= base })
		order := make([]*Server, 0, len(servers))
		seen := make(map[*Server]bool, len(servers))
		if topologyAware {
			zoneTaken := make(map[int]bool)
			for i := 0; i < len(entries) && len(order) < len(servers); i++ {
				e := entries[(start+i)%len(entries)]
				if seen[e.srv] || zoneTaken[e.srv.Node.Zone] {
					continue
				}
				seen[e.srv] = true
				zoneTaken[e.srv.Node.Zone] = true
				order = append(order, e.srv)
			}
		}
		for i := 0; i < len(entries) && len(order) < len(servers); i++ {
			e := entries[(start+i)%len(entries)]
			if !seen[e.srv] {
				seen[e.srv] = true
				order = append(order, e.srv)
			}
		}
		r.parts[part] = order
		r.handoffs[part] = nil // split by replication factor in finish
	}
	return r
}

// finish splits each partition's full server order into the rf-wide
// placement set and the handoff tail.
func (r *ring) finish(rf int) {
	for part := range r.parts {
		order := r.parts[part]
		if rf > len(order) {
			rf = len(order)
		}
		r.parts[part] = order[:rf]
		r.handoffs[part] = order[rf:]
	}
}

// partition maps a key to its partition: the top partPower bits of its
// token.
func (r *ring) partition(key kv.Key) int {
	if r.partPower == 0 {
		return 0
	}
	return int(uint64(hashKey(key)) >> (64 - r.partPower))
}

// placement returns the partition's replica set, primary first.
func (r *ring) placement(part int) []*Server { return r.parts[part] }

// handoff returns the partition's handoff order: the servers that stand in,
// in ring order, when placement members are down.
func (r *ring) handoff(part int) []*Server { return r.handoffs[part] }
