package objstore

import (
	"sort"
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/storage"
	"cloudbench/internal/trace"
)

// Client is an object-store client bound to a client machine — it plays
// the proxy-server role: the ring lookup happens client-side and requests
// go straight to the object servers. Writes always target the first live
// replica (or its handoff stand-in); reads follow the configured
// ReadMode.
type Client struct {
	db   *DB
	node *cluster.Node
	mode ReadMode
	next int
	oid  int // oracle client identity for monotonic-read tracking
}

// NewClient returns a client issuing requests from node at the database's
// default read mode.
func (db *DB) NewClient(node *cluster.Node) *Client {
	oid := -1
	if db.oracle != nil {
		oid = db.oracle.RegisterClient()
	}
	return &Client{db: db, node: node, mode: db.cfg.ReadMode, oid: oid}
}

// WithReadMode returns a copy of the client using the given read policy.
func (c *Client) WithReadMode(m ReadMode) *Client {
	cc := *c
	cc.mode = m
	return &cc
}

var _ kv.Client = (*Client)(nil)

// liveReplicas filters a placement to its reachable members.
func liveReplicas(placement []*Server) []*Server {
	var live []*Server
	for _, s := range placement {
		if !s.Node.Down() {
			live = append(live, s)
		}
	}
	return live
}

// readResponse carries one server's answer to an object read.
type readResponse struct {
	srv *Server
	row *storage.Row
	ok  bool
}

// fetch reads the full row from srv on a spawned process: request leg,
// server service, response leg, like a proxy's GET to one object server.
func (c *Client) fetch(srv *Server, key kv.Key, f *sim.Future[readResponse]) {
	db := c.db
	db.k.Go("o*-read", func(q *sim.Proc) {
		resp := readResponse{srv: srv}
		reqSize := len(key) + db.cfg.RequestOverhead
		if !c.node.SendTo(q, srv.Node, reqSize) {
			f.Set(resp)
			return
		}
		db.execServer(q, srv.Node, db.cl.Config.CPUOpCost)
		var s0 sim.Time
		if db.tracer != nil {
			s0 = q.Now()
		}
		row := srv.engine.Get(q, key)
		if db.tracer != nil {
			db.tracer.Phase(q, trace.PhaseStorage, srv.Node.ID, s0)
		}
		respSize := db.cfg.RequestOverhead
		if row != nil {
			respSize += row.Bytes()
		}
		if !srv.Node.SendTo(q, c.node, respSize) {
			f.Set(resp)
			return
		}
		resp.ok = true
		resp.row = row
		f.Set(resp)
	})
}

// reconcile folds the successful responses' rows in ascending server
// node-id order. Row merging is last-write-wins with the incumbent kept
// on a version tie, so the fixed fold order pins tie resolution to the
// lowest node id regardless of arrival order (versions are unique today;
// this keeps reconciliation order-independent if they ever gain ties).
func reconcile(merged *storage.Row, resps []readResponse) {
	order := make([]int, 0, len(resps))
	for i := range resps {
		if resps[i].ok {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return resps[order[a]].srv.Node.ID < resps[order[b]].srv.Node.ID
	})
	for _, i := range order {
		merged.MergeFrom(resps[i].row)
	}
}

// Read implements kv.Client under the client's read mode.
func (c *Client) Read(p *sim.Proc, key kv.Key, fields []string) (kv.Record, error) {
	db := c.db
	placement := db.PlacementFor(key)
	live := liveReplicas(placement)
	if len(live) == 0 {
		db.Unavails++
		return nil, kv.ErrUnavailable
	}
	need := 1
	if c.mode == ReadQuorumFresh {
		need = len(placement)/2 + 1
		if len(live) < need {
			db.Unavails++
			return nil, kv.ErrUnavailable
		}
	}
	db.Reads++
	start := p.Now()
	// Rotate across the live replicas per client: object reads
	// load-balance, which is exactly what exposes a replica the async
	// replication has not reached yet.
	offset := c.next % len(live)
	c.next++
	futs := make([]*sim.Future[readResponse], need)
	for i := 0; i < need; i++ {
		futs[i] = sim.NewFuture[readResponse](db.k)
		c.fetch(live[(offset+i)%len(live)], key, futs[i])
	}
	deadline := db.cfg.Timeout
	resps := make([]readResponse, 0, need)
	for _, f := range futs {
		remaining := deadline - p.Now().Sub(start)
		r, ok := f.AwaitTimeout(p, remaining)
		if !ok {
			db.Unavails++
			return nil, kv.ErrTimeout
		}
		if !r.ok {
			db.Unavails++
			return nil, kv.ErrUnavailable
		}
		resps = append(resps, r)
	}
	var row *storage.Row
	if need == 1 {
		row = resps[0].row
	} else {
		merged := storage.NewRow()
		reconcile(merged, resps)
		if merged.Version() != 0 {
			row = merged
		}
	}
	if db.oracle != nil {
		// Report the version the client actually observes after
		// reconciliation (a tombstone's version for deleted rows, 0 for
		// never-written keys).
		var ver kv.Version
		if row != nil {
			ver = row.Version()
		}
		db.oracle.ReadObserved(c.oid, key, ver, start)
	}
	if row == nil || !row.Live() {
		return nil, kv.ErrNotFound
	}
	return row.Record().Project(fields), nil
}

// Insert implements kv.Client.
func (c *Client) Insert(p *sim.Proc, key kv.Key, rec kv.Record) error {
	return c.put(p, key, rec, false)
}

// Update implements kv.Client.
func (c *Client) Update(p *sim.Proc, key kv.Key, rec kv.Record) error {
	return c.put(p, key, rec, false)
}

// Delete implements kv.Client.
func (c *Client) Delete(p *sim.Proc, key kv.Key) error {
	return c.put(p, key, nil, true)
}

// put sends the mutation to the write target, which applies it durably,
// acks, and replicates asynchronously. One round trip, one server,
// regardless of replication factor — the structural difference from
// CL=ONE's synchronous fan-out.
func (c *Client) put(p *sim.Proc, key kv.Key, rec kv.Record, del bool) error {
	db := c.db
	part := db.PartitionOf(key)
	target, inPlacement := db.writeTarget(part)
	if target == nil {
		db.Unavails++
		return kv.ErrUnavailable
	}
	db.Writes++
	if !c.node.SendTo(p, target.Node, db.mutationSize(key, rec)) {
		return kv.ErrUnavailable
	}
	db.execServer(p, target.Node, db.cl.Config.CPUOpCost)
	db.write(p, target, inPlacement, key, rec, del)
	if !target.Node.SendTo(p, c.node, db.cfg.RequestOverhead) {
		return kv.ErrUnavailable
	}
	return nil
}

// scanPart is one server's contribution to a range scan.
type scanPart struct {
	rows []storage.ScanRow
	ok   bool
}

// Scan implements kv.Client. The ring's hash placement scatters
// consecutive keys across the cluster (object stores have no ordered
// listing of object contents), so the client asks every live server for
// its local rows ≥ start and merges, like Cassandra's get_range_slices
// shape.
func (c *Client) Scan(p *sim.Proc, start kv.Key, limit int, fields []string) ([]kv.KV, error) {
	db := c.db
	var alive []*Server
	for _, s := range db.srvs {
		if !s.Node.Down() {
			alive = append(alive, s)
		}
	}
	if len(alive) == 0 {
		db.Unavails++
		return nil, kv.ErrUnavailable
	}
	db.ScansDone++
	perHost := limit*db.cfg.Replication/len(alive) + 4
	if perHost > limit {
		perHost = limit
	}
	futs := make([]*sim.Future[scanPart], 0, len(alive))
	for _, srv := range alive {
		srv := srv
		f := sim.NewFuture[scanPart](db.k)
		futs = append(futs, f)
		db.k.Go("o*-scan", func(q *sim.Proc) {
			part := scanPart{}
			reqSize := len(start) + db.cfg.RequestOverhead
			if !c.node.SendTo(q, srv.Node, reqSize) {
				f.Set(part)
				return
			}
			db.execServer(q, srv.Node, db.cl.Config.CPUOpCost)
			var s0 sim.Time
			if db.tracer != nil {
				s0 = q.Now()
			}
			rows := srv.engine.Scan(q, start, perHost)
			if n := len(rows); n > 0 && db.cl.Config.ScanRowCost > 0 {
				srv.Node.Exec(q, time.Duration(n)*db.cl.Config.ScanRowCost)
			}
			if db.tracer != nil {
				db.tracer.Phase(q, trace.PhaseStorage, srv.Node.ID, s0)
			}
			respSize := db.cfg.RequestOverhead
			for _, r := range rows {
				respSize += r.Row.Bytes()
			}
			if !srv.Node.SendTo(q, c.node, respSize) {
				f.Set(part)
				return
			}
			part.rows = rows
			part.ok = true
			f.Set(part)
		})
	}
	merged := make(map[kv.Key]*storage.Row)
	for _, f := range futs {
		part := f.Await(p)
		if !part.ok {
			continue
		}
		for _, r := range part.rows {
			if have, ok := merged[r.Key]; ok {
				have.MergeFrom(r.Row)
			} else {
				merged[r.Key] = r.Row
			}
		}
	}
	keys := make([]kv.Key, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]kv.KV, 0, limit)
	for _, k := range keys {
		if row := merged[k]; row.Live() {
			out = append(out, kv.KV{Key: k, Record: row.Record().Project(fields)})
			if len(out) == limit {
				break
			}
		}
	}
	return out, nil
}
