package sim

// Resource is a FIFO-queued server with fixed capacity: the building block
// for modeling CPUs, disks, and NICs. A process acquires a unit of
// capacity, holds it for a service time, and releases it; contention shows
// up as queueing delay in virtual time.
type Resource struct {
	k         *Kernel
	name      string
	parkLabel string // "resource:<name>", built once; Acquire parks with it
	capacity  int
	inUse     int
	queue     ring[*Proc]

	// statistics
	created   Time
	lastT     Time
	busyInt   int64 // ∫ inUse dt, in unit·nanoseconds
	queueInt  int64 // ∫ len(queue) dt
	served    int64
	waitTotal Duration
}

// NewResource returns a resource with the given capacity (units that can be
// held concurrently). capacity must be ≥ 1.
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{k: k, name: name, parkLabel: "resource:" + name, capacity: capacity, created: k.now, lastT: k.now}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource's capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of capacity units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return r.queue.len() }

//simlint:hotpath
func (r *Resource) accumulate() {
	dt := int64(r.k.now - r.lastT)
	r.busyInt += int64(r.inUse) * dt
	r.queueInt += int64(r.queue.len()) * dt
	r.lastT = r.k.now
}

// Acquire blocks p until a capacity unit is available and takes it.
//
//simlint:hotpath
func (r *Resource) Acquire(p *Proc) {
	start := r.k.now
	r.accumulate()
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	r.queue.push(p)
	r.k.noteWaiting(p)
	// If p is killed while parked here, the capacity unit a releaser
	// transferred to it must be re-homed; see killedUnwind.
	p.unwind = r
	p.park(r.parkLabel)
	p.unwind = nil
	// The releaser transferred its unit to us; inUse is already counted.
	r.waitTotal += r.k.now.Sub(start)
}

// Release returns a capacity unit. If processes are queued, the unit is
// handed directly to the head of the queue.
//
//simlint:hotpath
func (r *Resource) Release() {
	r.accumulate()
	if r.queue.len() > 0 {
		p := r.queue.pop()
		r.k.noteRunnable(p)
		r.k.schedule(r.k.now, p.wake)
		return
	}
	if r.inUse == 0 {
		r.panicIdleRelease()
	}
	r.inUse--
}

// panicIdleRelease reports a Release without a matching Acquire. Split out
// of Release so the hot path stays free of string concatenation; the
// coldpath mark keeps the interprocedural walk out of a path that ends
// the process anyway.
//
//simlint:coldpath
func (r *Resource) panicIdleRelease() {
	panic("sim: release of idle resource " + r.name)
}

// killedUnwind returns the capacity unit that Release transferred to a
// process that was killed while parked in Acquire. Without this, the unit
// would unwind with the dead process and be leaked forever: hand it to the
// next queued waiter, or put it back as free capacity.
func (r *Resource) killedUnwind(*Proc) {
	r.accumulate()
	if r.queue.len() > 0 {
		next := r.queue.pop()
		r.k.noteRunnable(next)
		r.k.schedule(r.k.now, next.wake)
		return
	}
	r.inUse--
}

// Use acquires the resource, holds it for the service duration, and
// releases it. This is the common "queue + serve" pattern.
func (r *Resource) Use(p *Proc, service Duration) {
	r.Acquire(p)
	p.Sleep(service)
	r.Release()
	r.served++
}

// UseTimed is Use, additionally returning the time p spent queued before
// service began. The tracing layer uses it to split queueing delay from
// service time without changing scheduling behavior.
func (r *Resource) UseTimed(p *Proc, service Duration) Duration {
	start := r.k.now
	r.Acquire(p)
	waited := r.k.now.Sub(start)
	p.Sleep(service)
	r.Release()
	r.served++
	return waited
}

// Utilization returns the mean fraction of capacity in use since the
// resource was created.
func (r *Resource) Utilization() float64 {
	r.accumulate()
	elapsed := int64(r.k.now - r.created)
	if elapsed == 0 {
		return 0
	}
	return float64(r.busyInt) / float64(elapsed) / float64(r.capacity)
}

// MeanQueueLen returns the time-averaged queue length since creation.
func (r *Resource) MeanQueueLen() float64 {
	r.accumulate()
	elapsed := int64(r.k.now - r.created)
	if elapsed == 0 {
		return 0
	}
	return float64(r.queueInt) / float64(elapsed)
}

// Served returns the number of completed Use calls.
func (r *Resource) Served() int64 { return r.served }

// BusyTime returns the cumulative unit-seconds of capacity held since the
// resource was created (the integral of InUse over time).
func (r *Resource) BusyTime() Duration {
	r.accumulate()
	return Duration(r.busyInt)
}

// MeanWait returns the average time Acquire callers spent queued.
func (r *Resource) MeanWait() Duration {
	if r.served == 0 {
		return 0
	}
	return r.waitTotal / Duration(r.served)
}
