package sim

import (
	"container/heap"
	"fmt"
	"testing"
)

// --- differential scheduler test -------------------------------------------
//
// A reference scheduler (the old binary heap, ordered by (t, seq)) and the
// real kernel execute an identical randomized event script; the observed
// (id, fire-time) sequences must match exactly. The script interpreter
// derives every decision from a splitmix64 stream keyed by event id, so
// both sides make identical choices without sharing state.

type refEvent struct {
	t        Time
	seq      uint64
	id       uint64
	canceled bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)     { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// scriptDelay picks a delay for child c of event id, mixing same-instant
// wakes, near timers, cascade-boundary values, and beyond-span far timers.
func scriptDelay(id, c uint64) Duration {
	r := mix64(id*131 + c)
	switch r % 8 {
	case 0:
		return 0 // same-instant fast lane
	case 1:
		return Duration(r % 64) // level 0
	case 2:
		return Duration(64 + r%4032) // level 1
	case 3:
		return Duration((1 << (6 * (1 + r % 5))) + r%1000) // level boundaries
	case 4:
		return Duration(1<<(6*wheelLevels) - 1 - r%3) // just inside the span
	case 5:
		return Duration(1<<(6*wheelLevels) + r%1000) // overflow heap
	case 6:
		return Duration(r % (1 << 20))
	default:
		return Duration(r % (1 << 36))
	}
}

// scriptChildren returns how many children event id schedules, decaying so
// the script terminates.
func scriptChildren(id uint64, depth int) int {
	if depth > 6 {
		return 0
	}
	return int(mix64(id) % 3)
}

// TestWheelMatchesHeapReference runs the randomized script through the
// reference heap and the kernel and requires identical execution order.
func TestWheelMatchesHeapReference(t *testing.T) {
	const seeds = 5
	for seed := uint64(1); seed <= seeds; seed++ {
		ref := runReferenceScript(seed)
		got := runKernelScript(t, seed)
		n := len(ref)
		if len(got) < n {
			n = len(got)
		}
		for i := 0; i < n; i++ {
			if ref[i] != got[i] {
				t.Fatalf("seed %d: divergence at event %d: reference %v, kernel %v", seed, i, ref[i], got[i])
			}
		}
		if len(ref) != len(got) {
			t.Fatalf("seed %d: reference fired %d events, kernel fired %d", seed, len(ref), len(got))
		}
	}
}

type firing struct {
	id uint64
	t  Time
}

// runReferenceScript executes the script on the plain (t, seq) heap.
func runReferenceScript(seed uint64) []firing {
	var (
		h     refHeap
		now   Time
		seq   uint64
		next  uint64 = seed * 1_000_000
		order []firing
		depth = map[uint64]int{}
		live  = map[uint64]*refEvent{}
	)
	spawn := func(id uint64, t Time) *refEvent {
		e := &refEvent{t: t, seq: seq, id: id}
		seq++
		heap.Push(&h, e)
		live[id] = e
		return e
	}
	for i := 0; i < 40; i++ {
		id := next
		next++
		spawn(id, Time(scriptDelay(seed, uint64(i))))
	}
	for h.Len() > 0 {
		e := heap.Pop(&h).(*refEvent)
		if e.canceled {
			continue
		}
		now = e.t
		delete(live, e.id)
		order = append(order, firing{id: e.id, t: now})
		d := depth[e.id]
		for c := 0; c < scriptChildren(e.id, d); c++ {
			id := next
			next++
			depth[id] = d + 1
			spawn(id, now.Add(scriptDelay(e.id, uint64(c))))
		}
		// Sometimes cancel a pending event, chosen deterministically.
		if mix64(e.id^0xabcd)%4 == 0 {
			victim := mix64(e.id) % (next - seed*1_000_000)
			if v, ok := live[seed*1_000_000+victim]; ok {
				v.canceled = true
				delete(live, seed*1_000_000+victim)
			}
		}
	}
	return order
}

// runKernelScript executes the same script through the kernel scheduler
// (fast lane + wheel + overflow heap), using pinned timers so cancels are
// legal.
func runKernelScript(t *testing.T, seed uint64) []firing {
	k := NewKernel(int64(seed))
	var (
		next  uint64 = seed * 1_000_000
		order []firing
		depth = map[uint64]int{}
		live  = map[uint64]*event{}
	)
	var fire func(id uint64) func()
	spawn := func(id uint64, at Time) {
		live[id] = k.scheduleTimer(at, fire(id))
	}
	fire = func(id uint64) func() {
		return func() {
			delete(live, id)
			order = append(order, firing{id: id, t: k.now})
			d := depth[id]
			for c := 0; c < scriptChildren(id, d); c++ {
				cid := next
				next++
				depth[cid] = d + 1
				spawn(cid, k.now.Add(scriptDelay(id, uint64(c))))
			}
			if mix64(id^0xabcd)%4 == 0 {
				victim := mix64(id) % (next - seed*1_000_000)
				if v, ok := live[seed*1_000_000+victim]; ok {
					k.cancel(v)
					delete(live, seed*1_000_000+victim)
				}
			}
		}
	}
	for i := 0; i < 40; i++ {
		id := next
		next++
		spawn(id, Time(scriptDelay(seed, uint64(i))))
	}
	// Drive in ragged RunUntil chunks so limits land mid-slot and
	// mid-cascade, not only at event times.
	var limit Time
	step := Duration(1)
	for k.pending > 0 {
		limit = limit.Add(step)
		step *= 7
		if err := k.RunUntil(limit); err != nil {
			t.Fatalf("seed %d: RunUntil: %v", seed, err)
		}
	}
	return order
}

// --- targeted edge cases ---------------------------------------------------

// TestWheelCancelWheelResidentAndOverflow cancels one timer resident in
// the wheel and one parked in the overflow heap; neither may fire, and the
// run must still drain (pending accounting handles lazy removal).
func TestWheelCancelWheelResidentAndOverflow(t *testing.T) {
	k := NewKernel(1)
	fired := map[string]bool{}
	nearVictim := k.scheduleTimer(Time(500), func() { fired["nearVictim"] = true })
	farVictim := k.scheduleTimer(Time(wheelSpan+500), func() { fired["farVictim"] = true })
	k.After(100, func() {
		fired["early"] = true
		k.cancel(nearVictim)
		k.cancel(farVictim)
	})
	k.After(Duration(wheelSpan+1000), func() { fired["late"] = true })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired["early"] || !fired["late"] {
		t.Fatalf("live events did not fire: %v", fired)
	}
	if fired["nearVictim"] || fired["farVictim"] {
		t.Fatalf("canceled timer fired: %v", fired)
	}
	if k.now != Time(wheelSpan+1000) {
		t.Fatalf("final now = %v, want %v (canceled trailing timers must not advance time)", k.now, Time(wheelSpan+1000))
	}
}

// TestWheelCascadeBoundaries schedules events exactly on (and around)
// level-boundary deltas and checks they fire in time order at the exact
// scheduled instants.
func TestWheelCascadeBoundaries(t *testing.T) {
	k := NewKernel(1)
	var deltas []Duration
	for l := 1; l <= wheelLevels; l++ {
		b := Duration(1) << (wheelBits * l)
		deltas = append(deltas, b-1, b, b+1)
	}
	var got []Time
	for _, d := range deltas {
		d := d
		k.After(d, func() { got = append(got, k.now) })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != len(deltas) {
		t.Fatalf("fired %d of %d events", len(got), len(deltas))
	}
	for i, d := range deltas {
		if got[i] != Time(d) {
			t.Fatalf("event %d fired at %d, want %d", i, got[i], Time(d))
		}
	}
}

// TestWheelRunUntilMidSlot stops a run at a limit that falls strictly
// between scheduled events (mid-slot at several levels) and checks that
// time parks at the limit and the remaining events fire after resuming.
func TestWheelRunUntilMidSlot(t *testing.T) {
	k := NewKernel(1)
	var got []Time
	for _, d := range []Duration{10, 100, 5000, 300_000, 20_000_000} {
		d := d
		k.After(d, func() { got = append(got, k.now) })
	}
	if err := k.RunUntil(Time(150)); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if k.Now() != Time(150) {
		t.Fatalf("now = %v, want 150", k.Now())
	}
	if len(got) != 2 {
		t.Fatalf("fired %d events before limit, want 2", len(got))
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{10, 100, 5000, 300_000, 20_000_000}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestWheelAfterZeroOrdersWithWakes checks that After(0) callbacks and
// same-instant process wakes interleave in strict schedule order through
// the fast lane.
func TestWheelAfterZeroOrdersWithWakes(t *testing.T) {
	k := NewKernel(1)
	var got []string
	k.Spawn("a", func(p *Proc) {
		got = append(got, "a0")
		p.Yield()
		got = append(got, "a1")
	})
	k.After(0, func() { got = append(got, "cb0") })
	k.Spawn("b", func(p *Proc) {
		got = append(got, "b0")
		p.Yield()
		got = append(got, "b1")
	})
	k.After(0, func() { got = append(got, "cb1") })
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "[a0 cb0 b0 cb1 a1 b1]"
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}
