package sim

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel(1)
	var woke Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(5*time.Millisecond) {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
}

func TestSpawnStartsAtCurrentTime(t *testing.T) {
	k := NewKernel(1)
	var childStart Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Second)
		k.Spawn("child", func(c *Proc) {
			childStart = c.Now()
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childStart != Time(time.Second) {
		t.Fatalf("child started at %v, want 1s", childStart)
	}
}

func TestEventOrderingIsFIFOAtSameInstant(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(time.Millisecond, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestFutureAwaitBeforeSet(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	var got int
	var gotAt Time
	k.Spawn("waiter", func(p *Proc) {
		got = f.Await(p)
		gotAt = p.Now()
	})
	k.Spawn("setter", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		f.Set(42)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 || gotAt != Time(3*time.Millisecond) {
		t.Fatalf("got %d at %v, want 42 at 3ms", got, gotAt)
	}
}

func TestFutureAwaitAfterSet(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[string](k)
	f.Set("ready")
	var got string
	k.Spawn("waiter", func(p *Proc) { got = f.Await(p) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "ready" {
		t.Fatalf("got %q", got)
	}
}

func TestFutureFirstSetWins(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	f.Set(1)
	f.Set(2)
	if v, ok := f.Value(); !ok || v != 1 {
		t.Fatalf("value = %d,%v want 1,true", v, ok)
	}
}

func TestFutureTimeoutExpires(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	var ok bool
	var at Time
	k.Spawn("waiter", func(p *Proc) {
		_, ok = f.AwaitTimeout(p, 10*time.Millisecond)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok || at != Time(10*time.Millisecond) {
		t.Fatalf("ok=%v at=%v, want timeout at 10ms", ok, at)
	}
}

func TestFutureTimeoutBeatenBySet(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	var got int
	var ok bool
	k.Spawn("waiter", func(p *Proc) {
		got, ok = f.AwaitTimeout(p, 10*time.Millisecond)
	})
	k.Spawn("setter", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		f.Set(7)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || got != 7 {
		t.Fatalf("got=%d ok=%v, want 7,true", got, ok)
	}
}

func TestFutureOnDoneRunsInline(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	var seen []int
	f.OnDone(func(v int) { seen = append(seen, v) })
	f.Set(5)
	f.OnDone(func(v int) { seen = append(seen, v*2) })
	if len(seen) != 2 || seen[0] != 5 || seen[1] != 10 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestResourceSerializesAtCapacity(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, "disk", 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		k.Spawn(fmt.Sprintf("user%d", i), func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(30 * time.Millisecond)}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceParallelAtHigherCapacity(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, "cpu", 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		k.Spawn(fmt.Sprintf("user%d", i), func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Two at a time: finish at 10,10,20,20 ms.
	want := []Time{Time(10 * time.Millisecond), Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(20 * time.Millisecond)}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, "disk", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.Spawn(fmt.Sprintf("user%d", i), func(p *Proc) {
			p.Sleep(Duration(i) * time.Microsecond) // arrive in index order
			r.Use(p, time.Millisecond)
			order = append(order, i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("service order = %v, want FIFO", order)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, "disk", 1)
	k.Spawn("user", func(p *Proc) {
		r.Use(p, 30*time.Millisecond)
		p.Sleep(70 * time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if u := r.Utilization(); u < 0.29 || u > 0.31 {
		t.Fatalf("utilization = %v, want ~0.30", u)
	}
}

func TestQuorumResolvesOnNeed(t *testing.T) {
	k := NewKernel(1)
	q := NewQuorum(k, 2, 3)
	var ok bool
	var at Time
	k.Spawn("coordinator", func(p *Proc) {
		ok = q.Wait(p)
		at = p.Now()
	})
	delays := []Duration{5 * time.Millisecond, 1 * time.Millisecond, 9 * time.Millisecond}
	for _, d := range delays {
		d := d
		k.After(d, func() { q.Succeed() })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || at != Time(5*time.Millisecond) {
		t.Fatalf("ok=%v at=%v, want true at 5ms (2nd ack)", ok, at)
	}
}

func TestQuorumFailsWhenImpossible(t *testing.T) {
	k := NewKernel(1)
	q := NewQuorum(k, 3, 3)
	var ok bool
	k.Spawn("coordinator", func(p *Proc) { ok = q.Wait(p) })
	k.After(time.Millisecond, func() { q.Succeed() })
	k.After(2*time.Millisecond, func() { q.Fail() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("quorum resolved true despite an unreachable need")
	}
}

func TestQuorumZeroNeedIsImmediate(t *testing.T) {
	k := NewKernel(1)
	q := NewQuorum(k, 0, 3)
	if !q.Done().Done() {
		t.Fatal("need=0 quorum should resolve immediately")
	}
}

func TestQueueBlocksAndDelivers(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Millisecond)
			q.Push(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestQueueMultipleConsumersDrainBacklog(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	var count int
	for i := 0; i < 3; i++ {
		k.Spawn(fmt.Sprintf("consumer%d", i), func(p *Proc) {
			q.Pop(p)
			count++
		})
	}
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		// Push all three at once; each Push wakes one consumer, and
		// Pop's re-wake chain must not strand items.
		q.Push(1)
		q.Push(2)
		q.Push(3)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel(1)
	f := NewFuture[int](k)
	k.Spawn("stuck", func(p *Proc) { f.Await(p) })
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v, want 1 entry", de.Blocked)
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	k := NewKernel(1)
	ticks := 0
	k.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	if err := k.RunUntil(Time(5*time.Second + time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if k.Now() != Time(5*time.Second+time.Millisecond) {
		t.Fatalf("now = %v", k.Now())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []string {
		k := NewKernel(42)
		var log []string
		r := NewResource(k, "disk", 2)
		for i := 0; i < 8; i++ {
			i := i
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(Duration(p.Rand().Intn(1000)) * time.Microsecond)
					r.Use(p, Duration(p.Rand().Intn(500))*time.Microsecond)
					log = append(log, fmt.Sprintf("%d@%v", i, p.Now()))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestKillUnwindsProcess(t *testing.T) {
	k := NewKernel(1)
	var reached bool
	p := k.Spawn("victim", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		reached = true
	})
	k.Spawn("killer", func(q *Proc) {
		q.Sleep(time.Millisecond)
		p.Kill()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("killed process ran past its sleep")
	}
	if !p.Done().Done() {
		t.Fatal("killed process did not terminate")
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("boom", func(p *Proc) { panic("kaboom") })
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	k.Run()
	t.Fatal("expected panic")
}

func TestDoneFutureFiresOnNormalExit(t *testing.T) {
	k := NewKernel(1)
	var observed Time
	p := k.Spawn("worker", func(p *Proc) { p.Sleep(4 * time.Millisecond) })
	k.Spawn("watcher", func(w *Proc) {
		p.Done().Await(w)
		observed = w.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if observed != Time(4*time.Millisecond) {
		t.Fatalf("observed exit at %v, want 4ms", observed)
	}
}

func TestAfterRunsInKernelContext(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.After(7*time.Millisecond, func() { at = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(7*time.Millisecond) {
		t.Fatalf("at = %v", at)
	}
}

func TestProcSeedDecorrelated(t *testing.T) {
	// Neighbouring process ids must get uncorrelated RNG streams. The old
	// derivation (seed ^ id*C>>1, which shifts after multiplying) left
	// consecutive ids with correlated seeds; the splitmix64 finalizer must
	// not. Check the lag-1 Pearson correlation of each process's first
	// draw, plus a coarse uniformity bound on the mean.
	const n = 256
	k := NewKernel(7)
	draws := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			draws[i] = p.Rand().Float64()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, d := range draws {
		mean += d
	}
	mean /= n
	if mean < 0.4 || mean > 0.6 {
		t.Errorf("mean of first draws = %.3f, want ~0.5", mean)
	}
	var num, dx, dy float64
	for i := 0; i+1 < n; i++ {
		a, b := draws[i]-mean, draws[i+1]-mean
		num += a * b
		dx += a * a
		dy += b * b
	}
	if r := num / math.Sqrt(dx*dy); math.Abs(r) > 0.2 {
		t.Errorf("lag-1 correlation of neighbouring first draws = %.3f, want ~0", r)
	}
	seen := make(map[float64]bool, n)
	for _, d := range draws {
		if seen[d] {
			t.Fatalf("duplicate first draw %v across processes", d)
		}
		seen[d] = true
	}
}

func TestEventRecyclingPreservesOrderAndTimers(t *testing.T) {
	// Mix recycled sleep events with pinned timer events: ordering must
	// stay FIFO-at-instant and a canceled timer must never cancel a
	// recycled successor event.
	k := NewKernel(1)
	f := NewFuture[int](k)
	var order []string
	k.Spawn("timed", func(p *Proc) {
		if v, ok := f.AwaitTimeout(p, 5*time.Millisecond); !ok || v != 9 {
			t.Errorf("await = %v,%v want 9,true", v, ok)
		}
		order = append(order, "timed")
	})
	k.Spawn("setter", func(p *Proc) {
		p.Sleep(time.Millisecond)
		f.Set(9) // cancels the pinned timer; its struct must stay dead
		for i := 0; i < 100; i++ {
			p.Sleep(time.Microsecond) // churn through the free list
		}
		order = append(order, "setter")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "timed" || order[1] != "setter" {
		t.Fatalf("order = %v", order)
	}
}

func TestSleepHotPathDoesNotAllocate(t *testing.T) {
	// Steady-state Sleep cycles must reuse event structs and the per-proc
	// wake closure: well under one allocation per event.
	k := NewKernel(1)
	const procs, rounds = 8, 2000
	for i := 0; i < procs; i++ {
		k.Spawn(fmt.Sprintf("sleeper%d", i), func(p *Proc) {
			for j := 0; j < rounds; j++ {
				p.Sleep(time.Microsecond)
			}
		})
	}
	// Warm up goroutines, free list, and heap capacity.
	if err := k.RunUntil(Time(100 * time.Microsecond)); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	events := float64(procs * rounds)
	perEvent := float64(after.Mallocs-before.Mallocs) / events
	if perEvent > 0.1 {
		t.Errorf("allocs/event = %.3f, want ~0 (free list or wake closure regressed)", perEvent)
	}
}

func TestKilledResourceWaiterHandsUnitToNextWaiter(t *testing.T) {
	// Regression: a process killed while parked in Resource.Acquire absorbs
	// the capacity unit the releaser transferred to it. Without killedUnwind
	// the unit unwinds with the dead process and every later acquirer
	// deadlocks.
	k := NewKernel(1)
	r := NewResource(k, "disk", 1)
	var victimRan bool
	var thirdAt Time
	k.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(10 * time.Millisecond)
		r.Release()
	})
	victim := k.Spawn("victim", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p)
		victimRan = true
		r.Release()
	})
	k.Spawn("killer", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		victim.Kill()
	})
	k.Spawn("third", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		r.Acquire(p)
		thirdAt = p.Now()
		r.Release()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v (unit leaked by killed waiter?)", err)
	}
	if victimRan {
		t.Fatal("killed waiter acquired the resource")
	}
	if thirdAt != Time(10*time.Millisecond) {
		t.Fatalf("third acquired at %v, want %v", thirdAt, Time(10*time.Millisecond))
	}
}

func TestKilledResourceWaiterReturnsUnitToCapacity(t *testing.T) {
	// Same leak, no other waiter queued: the unit transferred to the killed
	// process must come back as free capacity for a later acquirer.
	k := NewKernel(1)
	r := NewResource(k, "disk", 1)
	var lateAt Time
	k.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(10 * time.Millisecond)
		r.Release()
	})
	victim := k.Spawn("victim", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p)
		r.Release()
	})
	k.Spawn("killer", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		victim.Kill()
	})
	k.Spawn("late", func(p *Proc) {
		p.Sleep(20 * time.Millisecond)
		r.Acquire(p)
		lateAt = p.Now()
		r.Release()
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v (unit leaked by killed waiter?)", err)
	}
	if lateAt != Time(20*time.Millisecond) {
		t.Fatalf("late acquired at %v, want %v (unit not returned to capacity)", lateAt, Time(20*time.Millisecond))
	}
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d after drain, want 0", r.InUse())
	}
}

func TestKilledQueueWaiterChainsWakeToNext(t *testing.T) {
	// A Push wakes exactly one waiter; if that waiter was killed while
	// parked, the wake must chain to the next waiter so the buffered item is
	// not stranded.
	k := NewKernel(1)
	q := NewQueue[int](k)
	var got []int
	victim := k.Spawn("victim", func(p *Proc) {
		got = append(got, q.Pop(p)*-1)
	})
	k.Spawn("backup", func(p *Proc) {
		got = append(got, q.Pop(p))
	})
	k.Spawn("killer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		victim.Kill()
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		q.Push(7)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v (wake stranded on killed waiter?)", err)
	}
	if fmt.Sprint(got) != "[7]" {
		t.Fatalf("got %v, want [7] delivered to the backup waiter", got)
	}
	if q.Len() != 0 {
		t.Fatalf("queue still buffers %d item(s)", q.Len())
	}
}

func TestGoRunsDetachedProcesses(t *testing.T) {
	k := NewKernel(1)
	var done int
	for i := 0; i < 50; i++ {
		k.Go("worker", func(p *Proc) {
			p.Sleep(time.Millisecond)
			done++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 50 {
		t.Fatalf("done = %d, want 50", done)
	}
	if k.Live() != 0 {
		t.Fatalf("Live = %d after drain, want 0", k.Live())
	}
}

func TestGoMatchesSpawnSemantics(t *testing.T) {
	// Go must schedule identically to Spawn modulo the returned handle:
	// same process ids, same wake times. RNG draws are compared Go-vs-Go
	// only — Go deliberately uses the reseedable small-state Source while
	// Spawn keeps the stdlib source, so the streams differ by generator
	// (both deterministic and procSeed-derived).
	type draw struct {
		id int64
		at Time
		v  int64
	}
	run := func(useGo bool) []draw {
		k := NewKernel(42)
		var out []draw
		body := func(p *Proc) {
			p.Sleep(Duration(p.ID()) * time.Microsecond)
			out = append(out, draw{p.ID(), p.Now(), p.Rand().Int63()})
		}
		for i := 0; i < 30; i++ {
			if useGo {
				k.Go("w", body)
			} else {
				k.Spawn("w", body)
			}
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	spawned, goed := run(false), run(true)
	if len(spawned) != len(goed) {
		t.Fatalf("run lengths differ: spawn %d, go %d", len(spawned), len(goed))
	}
	for i := range spawned {
		if spawned[i].id != goed[i].id || spawned[i].at != goed[i].at {
			t.Fatalf("Go scheduling diverged from Spawn at %d:\nspawn: %v\ngo:    %v",
				i, spawned[i], goed[i])
		}
	}
	if again := run(true); fmt.Sprint(goed) != fmt.Sprint(again) {
		t.Fatalf("Go runs not deterministic:\nfirst:  %v\nsecond: %v", goed, again)
	}
}

func TestGoPooledProcsDoNotLeakState(t *testing.T) {
	// Sequential waves of Go processes recycle Proc structs; each lifetime
	// must see a fresh id, name, and RNG stream, not its predecessor's.
	k := NewKernel(7)
	seen := map[int64]bool{}
	var draws []int64
	k.Spawn("driver", func(p *Proc) {
		for wave := 0; wave < 5; wave++ {
			for i := 0; i < 4; i++ {
				k.Go("wave", func(q *Proc) {
					if seen[q.ID()] {
						t.Errorf("duplicate proc id %d from pooled Proc", q.ID())
					}
					seen[q.ID()] = true
					draws = append(draws, q.Rand().Int63())
				})
			}
			p.Sleep(time.Millisecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(draws) != 20 {
		t.Fatalf("ran %d procs, want 20", len(draws))
	}
	uniq := map[int64]bool{}
	for _, d := range draws {
		uniq[d] = true
	}
	if len(uniq) < 19 {
		t.Fatalf("pooled RNGs repeated streams: %d unique draws of %d", len(uniq), len(draws))
	}
}

func TestDrainPoolsReleasesWorkerGoroutines(t *testing.T) {
	// Pooled worker goroutines must be torn down when a run drains: sweeps
	// build hundreds of kernels, and parked goroutines are never GC'd.
	before := runtime.NumGoroutine()
	k := NewKernel(1)
	for i := 0; i < 64; i++ {
		k.Go("burst", func(p *Proc) { p.Sleep(time.Microsecond) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, want <= %d (worker pool not drained)", runtime.NumGoroutine(), before+2)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
