package sim

// Future is a single-assignment cell that processes can block on. The first
// Set wins; later Sets are ignored, which makes futures convenient for
// racing a result against a timeout or a failure signal.
type Future[T any] struct {
	k         *Kernel
	done      bool
	val       T
	waiters   []futWaiter
	callbacks []func(T)
}

type futWaiter struct {
	p     *Proc
	timer *event // non-nil when the waiter also has a timeout pending
}

// NewFuture returns an unset future bound to k.
func NewFuture[T any](k *Kernel) *Future[T] {
	return &Future[T]{k: k}
}

// Done reports whether the future has been set.
func (f *Future[T]) Done() bool { return f.done }

// Value returns the future's value and whether it has been set.
func (f *Future[T]) Value() (T, bool) { return f.val, f.done }

// Set completes the future with v, waking all waiters and running all
// OnDone callbacks inline. Setting an already-set future is a no-op.
func (f *Future[T]) Set(v T) {
	if f.done {
		return
	}
	f.done = true
	f.val = v
	cbs := f.callbacks
	f.callbacks = nil
	for _, cb := range cbs {
		cb(v)
	}
	waiters := f.waiters
	f.waiters = nil
	for _, w := range waiters {
		if w.timer != nil {
			f.k.cancel(w.timer)
		}
		f.k.noteRunnable(w.p)
		f.k.schedule(f.k.now, w.p.wake)
	}
}

// OnDone registers fn to run when the future is set. If the future is
// already set, fn runs immediately. Callbacks execute in kernel context and
// must not block.
func (f *Future[T]) OnDone(fn func(T)) {
	if f.done {
		fn(f.val)
		return
	}
	f.callbacks = append(f.callbacks, fn)
}

// Await blocks p until the future is set and returns its value.
func (f *Future[T]) Await(p *Proc) T {
	if f.done {
		return f.val
	}
	f.waiters = append(f.waiters, futWaiter{p: p})
	f.k.noteWaiting(p)
	p.park("future")
	return f.val
}

// AwaitTimeout blocks p until the future is set or d elapses. The second
// result reports whether the future was set in time.
func (f *Future[T]) AwaitTimeout(p *Proc, d Duration) (T, bool) {
	if f.done {
		return f.val, true
	}
	timedOut := false
	timer := f.k.scheduleTimer(f.k.now.Add(d), func() {
		timedOut = true
		f.dropWaiter(p)
		f.k.noteRunnable(p)
		f.k.dispatch(p)
	})
	f.waiters = append(f.waiters, futWaiter{p: p, timer: timer})
	f.k.noteWaiting(p)
	p.park("future-timeout")
	if timedOut {
		var zero T
		return zero, false
	}
	return f.val, true
}

func (f *Future[T]) dropWaiter(p *Proc) {
	for i, w := range f.waiters {
		if w.p == p {
			f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
			return
		}
	}
}

// Quorum counts successes and failures of a fixed number of attempts and
// resolves as soon as the outcome is decided: success when need attempts
// succeed, failure when so many have failed that need can no longer be
// reached. It models the coordinator ack-counting at the heart of tunable
// consistency.
type Quorum struct {
	need, total  int
	succ, failed int
	result       *Future[bool]
}

// NewQuorum returns a quorum that resolves true after need of total
// attempts succeed. need must be in [0, total].
func NewQuorum(k *Kernel, need, total int) *Quorum {
	q := &Quorum{need: need, total: total, result: NewFuture[bool](k)}
	if need <= 0 {
		q.result.Set(true)
	}
	return q
}

// Succeed records one successful attempt.
func (q *Quorum) Succeed() {
	q.succ++
	if q.succ >= q.need {
		q.result.Set(true)
	}
}

// Fail records one failed attempt.
func (q *Quorum) Fail() {
	q.failed++
	if q.total-q.failed < q.need {
		q.result.Set(false)
	}
}

// Successes returns the number of successes recorded so far.
func (q *Quorum) Successes() int { return q.succ }

// Wait blocks p until the quorum outcome is decided and returns it.
func (q *Quorum) Wait(p *Proc) bool { return q.result.Await(p) }

// WaitTimeout blocks p until the quorum is decided or d elapses. ok is the
// quorum outcome; decided reports whether it resolved in time.
func (q *Quorum) WaitTimeout(p *Proc, d Duration) (ok, decided bool) {
	return q.result.AwaitTimeout(p, d)
}

// Done returns the quorum's result future.
func (q *Quorum) Done() *Future[bool] { return q.result }
