package sim

// ring is a growable FIFO ring buffer. The kernel uses it for the
// same-instant event fast lane, and Queue/Resource use it for item and
// waiter FIFOs: the previous `q = q[1:]` slice-shift FIFOs re-allocated
// their backing array on every append-after-shift cycle, which thrashes
// the allocator under sustained load. A ring reuses one power-of-two
// backing array and only grows when the population genuinely exceeds it,
// so steady-state push/pop is allocation-free.
type ring[T any] struct {
	buf  []T // power-of-two length, nil until first push
	head int // index of the front element
	n    int // number of buffered elements
}

// len returns the number of buffered elements.
//
//simlint:hotpath
func (r *ring[T]) len() int { return r.n }

// push appends v at the back.
//
//simlint:hotpath
func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// pop removes and returns the front element. It must not be called on an
// empty ring.
//
//simlint:hotpath
func (r *ring[T]) pop() T {
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // release the reference for GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// grow doubles the backing array, unwrapping the live elements to the
// front. Called only when the ring is full (or nil), so the live region is
// exactly buf[head:] followed by buf[:head].
func (r *ring[T]) grow() {
	newCap := len(r.buf) * 2
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]T, newCap)
	if r.n > 0 {
		m := copy(nb, r.buf[r.head:])
		copy(nb[m:], r.buf[:r.head])
	}
	r.buf = nb
	r.head = 0
}
