package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Sharded conservative parallel execution.
//
// A ShardGroup runs one simulation as N member kernels (shards), each with
// its own timing wheel, worker pool, and RNG streams, so independent
// regions of the model execute on separate host cores. Synchronization is
// the classic conservative time-window scheme, made null-message-free by a
// global barrier:
//
//	window     — all shards execute events in [W, W+L) concurrently, where
//	             W is the minimum next-event time across shards and L is
//	             the lookahead (the minimum cross-shard delivery latency,
//	             derived from the topology — see cluster.PlanShards).
//	barrier    — shards stop at the window end; staged cross-shard
//	             messages are merged into their destination kernels; the
//	             next window starts at the new global minimum.
//	lockstep   — with zero lookahead the window degenerates to a single
//	             instant: shards still run concurrently within the
//	             instant (messages become visible only at the barrier),
//	             but no shard may run ahead of another in virtual time.
//
// Why this is safe: a message sent from inside window [W, W+L) carries a
// delay of at least L, so it is stamped at or after W+L — strictly beyond
// the window every shard is executing. No shard can receive an event in
// its past, so no rollback machinery is needed.
//
// Why this is deterministic, at every worker count: shards share no
// mutable state during a window (cross-shard messages are staged in
// per-source outbox rings, invisible to the destination until the
// barrier), each member kernel is itself deterministic, and the barrier
// merge orders messages by (t, source shard, source sequence) into the
// destination kernel's message lane (Kernel.inbox), which the member
// event loop consumes under a fixed rule: at each instant, local events
// first, then lane messages in lane order. Because that rule never refers
// to *when* a message was merged, the run is a pure function of the seed
// and the model — bit-identical at any worker count, any window width,
// and with or without adaptive widening.
//
// Adaptive window widening: the static window end W+L-1 assumes every
// shard might send at W. But each shard's next event time is known at the
// barrier, and a shard cannot send before it next executes, so shard i
// can safely run to min over other active shards j of
// (bound_j + lookahead(j→i)) - 1 — often far past the static end when
// shards are at different virtual times. Fewer barriers, same results.
//
// Execution: persistent per-shard worker goroutines parked on an epoch
// barrier (pinnedWorkers). A window costs two atomic phases — release
// (epoch bump) and arrival (counter decrement) — instead of the
// goroutine-spawn + WaitGroup fan-out of the original engine, which is
// retained behind SetSpawnPerWindow for differential testing.
//
// Cross-shard interaction happens only through Shard.Send. The delivery
// closure runs in the destination shard's kernel context and must touch
// only destination-shard state — the shardsafe simlint analyzer enforces
// the capture rules statically.

// maxTime is the largest representable virtual time.
const maxTime = Time(1<<63 - 1)

// xmsg is one staged cross-shard message: at time t on the destination
// shard, run fn. src/seq make the barrier merge order total and
// deterministic.
type xmsg struct {
	t   Time
	src int
	seq uint64
	fn  func(*Shard)
}

// xmsgBefore is the deterministic lane order: (t, source shard, source
// sequence).
func xmsgBefore(a, b *xmsg) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// xmsgQueue implements sort.Interface over a staged-message slice with a
// pointer receiver, so the barrier merge sorts without the closure and
// interface-boxing allocations of sort.Slice.
type xmsgQueue []xmsg

func (q *xmsgQueue) Len() int           { return len(*q) }
func (q *xmsgQueue) Less(i, j int) bool { return xmsgBefore(&(*q)[i], &(*q)[j]) }
func (q *xmsgQueue) Swap(i, j int)      { (*q)[i], (*q)[j] = (*q)[j], (*q)[i] }

// ShardGroup coordinates the member kernels of one sharded simulation.
// Build the model across the shards' kernels before calling Run; like
// Kernel, a group must not be touched from other host goroutines while it
// runs.
type ShardGroup struct {
	seed      int64
	lookahead Duration
	pairLA    [][]Duration // optional per-(src,dst) delivery floors; nil = uniform lookahead
	workers   int
	adaptive  bool // per-shard window widening (on by default)
	spawnWin  bool // legacy spawn-per-window execution, for differential tests
	shards    []*Shard
	active    []*Shard // scratch: shards with pending work this window
	panics    []*any   // scratch: per-active-shard recovered panics
	pw        *pinnedWorkers
	windows   int64 // multi-shard windows executed (barrier count)

	// solo is true while a solo-mode window runs (see RunUntil): the one
	// running shard's first cross-shard Send must end the window, so Send
	// sets the kernel's windowBreak flag when solo is up.
	solo bool
}

// Shard is one member of a ShardGroup: a kernel plus the staging rings
// for its outbound cross-shard messages and the scratch buffers the
// barrier merge ping-pongs with the kernel's message lane.
type Shard struct {
	g     *ShardGroup
	id    int
	k     *Kernel
	seq   uint64       // send sequence, part of the deterministic merge key
	out   []ring[xmsg] // per-destination outbox, written only while this shard executes
	stage xmsgQueue    // messages drained from peer outboxes this barrier, reused across windows
	merge []xmsg       // merge target, swapped with the kernel's lane each barrier

	// bound and end are this shard's next-event lower bound and window end
	// for the current window. Written single-threaded at the barrier,
	// read by whichever worker runs the shard (published by the epoch
	// release).
	bound Time
	end   Time
}

// NewShardGroup returns a group of n member kernels. Shard 0 is the home
// shard and inherits the group seed unchanged, so a model built entirely
// on shard 0 is byte-identical to the same model on a plain
// NewKernel(seed); the remaining shards get splitmix-derived seeds.
//
// lookahead is the minimum cross-shard delivery latency the model
// guarantees: every Shard.Send to another shard must carry a delay of at
// least lookahead. Zero is legal and falls back to instant-by-instant
// lockstep execution.
func NewShardGroup(seed int64, n int, lookahead Duration) *ShardGroup {
	if n < 1 {
		panic("sim: ShardGroup needs at least one shard")
	}
	if lookahead < 0 {
		panic("sim: negative lookahead")
	}
	g := &ShardGroup{seed: seed, lookahead: lookahead, adaptive: true}
	for i := 0; i < n; i++ {
		shardSeed := seed
		if i > 0 {
			shardSeed = procSeed(seed, int64(i))
		}
		s := &Shard{
			g:   g,
			id:  i,
			k:   NewKernel(shardSeed),
			out: make([]ring[xmsg], n),
		}
		s.k.extShard = s
		g.shards = append(g.shards, s)
	}
	return g
}

// Shards returns the number of member kernels.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns the i'th member.
func (g *ShardGroup) Shard(i int) *Shard { return g.shards[i] }

// Lookahead returns the group's cross-shard lookahead.
func (g *ShardGroup) Lookahead() Duration { return g.lookahead }

// SetWorkers bounds how many shards execute concurrently per window;
// 0 (the default) means one worker per available CPU. Results are
// bit-identical for every value.
func (g *ShardGroup) SetWorkers(n int) { g.workers = n }

// SetAdaptive toggles per-shard adaptive window widening (on by default).
// Results are bit-identical either way — widening only moves barriers,
// and the message-lane execution rule is barrier-placement-independent —
// so turning it off is only useful for differential tests and debugging.
func (g *ShardGroup) SetAdaptive(on bool) { g.adaptive = on }

// SetSpawnPerWindow switches window execution back to the original
// spawn-a-goroutine-per-window engine. Kept for differential testing
// against the pinned-worker barrier; results are bit-identical.
func (g *ShardGroup) SetSpawnPerWindow(on bool) { g.spawnWin = on }

// SetPairLookahead installs per-(source, destination) delivery floors,
// typically cluster.PlanShards' PairLookahead matrix. Entry [i][j] is the
// minimum delay a Send from shard i to shard j must carry; every
// cross-shard entry must be at least the group lookahead (the matrix
// refines the uniform floor, it cannot relax it). Adaptive widening uses
// the per-pair floors to push window ends further than the uniform
// lookahead allows. Passing nil reverts to the uniform floor.
func (g *ShardGroup) SetPairLookahead(la [][]Duration) {
	if la == nil {
		g.pairLA = nil
		return
	}
	n := len(g.shards)
	if len(la) != n {
		panic("sim: pair-lookahead matrix must be shards x shards")
	}
	for i, row := range la {
		if len(row) != n {
			panic("sim: pair-lookahead matrix must be shards x shards")
		}
		for j, d := range row {
			if i != j && d < g.lookahead {
				panic("sim: pair lookahead below the group lookahead")
			}
		}
	}
	g.pairLA = la
}

// Floor returns the delivery floor for the directed shard pair: the
// per-pair lookahead when a matrix is installed, the group lookahead
// otherwise. Cross-shard sends must use at least this delay, so callers
// modeling "the cheapest possible hop" should send with exactly it.
func (g *ShardGroup) Floor(src, dst int) Duration { return g.floor(src, dst) }

func (g *ShardGroup) floor(src, dst int) Duration {
	if g.pairLA != nil {
		return g.pairLA[src][dst]
	}
	return g.lookahead
}

// ID returns the shard's index within its group.
func (s *Shard) ID() int { return s.id }

// Kernel returns the shard's member kernel. Use it to build the shard's
// slice of the model before Run; while the group runs, only code executing
// on this shard may touch it.
func (s *Shard) Kernel() *Kernel { return s.k }

// Group returns the group the shard belongs to.
func (s *Shard) Group() *ShardGroup { return s.g }

// Send schedules fn to run on shard dst, delay after the current virtual
// time. fn executes in the destination kernel's event context (like
// Kernel.After: it must not block, but may spawn processes on the
// destination kernel) and receives the destination shard, through which it
// can reach the destination kernel and send replies. It must touch only
// destination-shard state; in particular it must not capture the sending
// shard's *Proc, *Kernel, or *Shard (the shardsafe analyzer flags this).
//
// Sends to another shard must respect the group's delivery floor: delay
// must be at least Lookahead(), or the per-pair floor when
// SetPairLookahead installed one. Sends to the shard itself have no lower
// bound and are scheduled locally.
func (s *Shard) Send(dst int, delay Duration, fn func(*Shard)) {
	if fn == nil {
		panic("sim: Shard.Send with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	d := s.g.shards[dst] // panics on an out-of-range destination
	t := s.k.now.Add(delay)
	if d == s {
		s.k.schedule(t, func() { fn(s) })
		return
	}
	if min := s.g.floor(s.id, dst); delay < min {
		s.sendPanic(dst, delay, min)
	}
	s.seq++
	s.out[dst].push(xmsg{t: t, src: s.id, seq: s.seq, fn: fn})
	if s.g.solo {
		s.k.windowBreak = true
	}
}

// sendPanic reports a Send below the delivery floor — a model bug.
//
//simlint:coldpath formatting the violation report; the caller is already off the performance cliff
func (s *Shard) sendPanic(dst int, delay, min Duration) {
	panic(fmt.Sprintf("sim: cross-shard send %d->%d with delay %v below lookahead %v",
		s.id, dst, delay, min))
}

// Run executes the group until every shard drains. It returns a
// *DeadlockError naming the blocked processes of every shard if the whole
// group can make no further progress while processes remain live.
func (g *ShardGroup) Run() error { return g.RunUntil(maxTime) }

// RunUntil executes events with time ≤ limit across all shards. Events
// beyond the limit stay queued, and reaching the limit is not a deadlock.
// Pinned workers spawned for parallel windows are torn down before
// RunUntil returns (normally or by panic), so an abandoned group never
// pins goroutines.
func (g *ShardGroup) RunUntil(limit Time) error {
	if len(g.shards) == 1 {
		// A single-shard group has no cross-shard traffic at all (Send to
		// self schedules locally), so the member kernel runs unwindowed —
		// the run is the plain sequential kernel, byte for byte.
		return g.shards[0].k.RunUntil(limit)
	}
	defer g.stopWorkers()
	for {
		g.deliver()
		// The next window starts at the global minimum next-event time.
		// Per-shard bounds may be coarse-slot lower bounds rather than
		// exact event times; that only costs an empty window, never
		// correctness, and each window strictly advances the bound.
		w := g.computeWindow()
		if len(g.active) == 0 {
			return g.finish()
		}
		if w > limit {
			for _, s := range g.shards {
				if s.k.now < limit {
					s.k.now = limit
				}
			}
			return nil
		}
		if len(g.active) == 1 {
			// Solo fast path: deliver just drained every outbox, so with
			// all other shards idle nothing can reach the solo shard until
			// it sends first. It may therefore run unbounded — no window
			// chopping — until its first cross-shard Send, which sets the
			// kernel's windowBreak flag and ends the window before any
			// further event executes. The staged message is ≥ lookahead
			// ahead of the send, and any reply another ≥ lookahead after
			// that, so nothing lands in the solo shard's past. This is
			// what makes home-shard experiments (-shards N with the whole
			// model on shard 0) run at plain-kernel speed.
			g.solo = true
			g.active[0].k.runWindow(limit)
			g.solo = false
			continue
		}
		g.computeEnds(w, limit)
		g.windows++
		g.runWindow()
	}
}

// Windows returns the number of multi-shard windows (barriers) the group
// has executed — solo-mode and single-shard runs count zero. Adaptive
// widening exists to push this number down; the scaling benchmarks report
// it.
func (g *ShardGroup) Windows() int64 { return g.windows }

// computeWindow fills g.active with the shards that have pending work,
// records each one's next-event lower bound, and returns the global
// minimum — the start of the next window.
//
//simlint:hotpath
func (g *ShardGroup) computeWindow() Time {
	g.active = g.active[:0]
	w := maxTime
	for _, s := range g.shards {
		t, ok := s.k.nextPendingBound()
		if !ok {
			continue
		}
		s.bound = t
		g.active = append(g.active, s)
		if t < w {
			w = t
		}
	}
	return w
}

// computeEnds assigns each active shard its window end. The static end is
// W + lookahead - 1 for every shard. With adaptive widening, shard i can
// additionally run to min over other active shards j of
// (bound_j + floor(j→i)) - 1: shard j cannot execute — and so cannot
// send — before bound_j, and anything it sends to i arrives at least
// floor(j→i) later, so no message can reach i at or before that end.
// Idle shards cannot send at all until a message wakes them, which only
// happens at a barrier. The adaptive end is never below the static end
// (bounds are ≥ W), and ends are computed single-threaded at the barrier,
// so they are identical at every worker count.
//
//simlint:hotpath
func (g *ShardGroup) computeEnds(w, limit Time) {
	static := w
	if g.lookahead > 0 {
		static = w.Add(g.lookahead) - 1
	}
	if static > limit {
		static = limit
	}
	for _, s := range g.active {
		s.end = static
	}
	if !g.adaptive {
		return
	}
	for _, s := range g.active {
		end := maxTime
		for _, o := range g.active {
			if o == s {
				continue
			}
			// A negative candidate (virtual-time overflow) sorts below the
			// static end and is ignored — conservative either way.
			if cand := o.bound.Add(g.floor(o.id, s.id)) - 1; cand < end {
				end = cand
			}
		}
		if end > limit {
			end = limit
		}
		if end > s.end {
			s.end = end
		}
	}
}

// finish resolves an all-idle group: a clean drain releases every shard's
// worker pool; live processes with nothing pending anywhere are a
// group-wide deadlock.
func (g *ShardGroup) finish() error {
	live := 0
	var at Time
	var blocked []string
	for _, s := range g.shards {
		live += s.k.live
		if s.k.now > at {
			at = s.k.now
		}
		blocked = append(blocked, s.k.blockedNames()...)
	}
	if live > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Time: at, Blocked: blocked}
	}
	for _, s := range g.shards {
		s.k.drainPools()
	}
	return nil
}

// deliver merges every staged cross-shard message into its destination
// kernel's message lane. Per destination, messages from all sources are
// sorted by (t, source shard, source seq) and merged with the lane's
// undelivered remainder — both already in lane order, so the merge is
// linear. The destination's event sequence is therefore independent of
// how the previous window's shards interleaved on host CPUs and of where
// the barriers fell. The staged batch, the merge target, and the lane
// ping-pong between three reused buffers, so a steady-state barrier
// allocates nothing.
//
//simlint:hotpath
func (g *ShardGroup) deliver() {
	for _, dst := range g.shards {
		batch := dst.stage[:0]
		for _, src := range g.shards {
			if src == dst {
				continue
			}
			r := &src.out[dst.id]
			for r.len() > 0 {
				batch = append(batch, r.pop())
			}
		}
		dst.stage = batch
		if len(batch) == 0 {
			continue
		}
		sort.Sort(&dst.stage)
		k := dst.k
		left := k.inbox[k.inboxIdx:]
		merged := dst.merge[:0]
		i, j := 0, 0
		for i < len(left) && j < len(batch) {
			if xmsgBefore(&left[i], &batch[j]) {
				merged = append(merged, left[i])
				i++
			} else {
				merged = append(merged, batch[j])
				j++
			}
		}
		merged = append(merged, left[i:]...)
		merged = append(merged, batch[j:]...)
		old := k.inbox
		k.inbox = merged
		k.inboxIdx = 0
		k.pending += len(batch)
		clear(old) // drop stale fn references so delivered closures can be collected
		dst.merge = old[:0]
		dst.stage = batch[:0]
	}
}

// runWindow executes every active shard up to its window end. Shards
// share no mutable state during a window, so any interleaving yields the
// same result; a panic inside any shard (a model bug or a killed-process
// unwind escaping) is re-raised on the calling goroutine, preferring the
// lowest shard id when several shards panic at once so the report is
// deterministic.
//
// The parallel path releases the persistent pinned workers with one epoch
// bump, claims shards alongside them, and waits for every worker's
// arrival back at the barrier — two atomic phases per window.
//
//simlint:hotpath
func (g *ShardGroup) runWindow() {
	workers := g.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(g.active) {
		workers = len(g.active)
	}
	if workers <= 1 {
		for _, s := range g.active {
			s.k.runWindow(s.end)
		}
		return
	}
	if cap(g.panics) < len(g.active) {
		g.panics = make([]*any, len(g.shards))
	}
	g.panics = g.panics[:len(g.active)]
	for i := range g.panics {
		g.panics[i] = nil
	}
	if g.spawnWin {
		g.spawnWindow(workers)
	} else {
		if g.pw == nil || g.pw.n < workers-1 {
			g.startWorkers(workers - 1)
		}
		pw := g.pw
		pw.next.Store(-1)
		pw.remain.Store(int64(pw.n))
		pw.release()
		pw.work()
		<-pw.done
	}
	for _, p := range g.panics {
		if p != nil {
			panic(*p)
		}
	}
}

// pinnedWorkers is the persistent window-execution pool: n worker
// goroutines parked on an epoch barrier, plus the coordinator (the
// goroutine driving RunUntil), which claims shards alongside them.
//
// Protocol, per window:
//
//	release  — the coordinator, alone, writes the window plan (g.active,
//	           per-shard ends, g.panics, the claim counter) and then bumps
//	           epoch. Workers wait for the bump spinning first, then
//	           parked on a channel (the slept flag tells the coordinator a
//	           close is needed; the channel is swapped fresh under the
//	           same flag, so a wake can never be missed or double-fired).
//	claim    — everyone claims shard indexes from the shared counter and
//	           runs each claimed shard to its window end, recovering
//	           panics into the per-shard slot.
//	arrive   — each worker decrements remain after its claims are
//	           exhausted; the last arrival hands the coordinator the done
//	           token. Completion is arrival-based, not shard-based: when
//	           the coordinator holds the token, every worker is provably
//	           back in its wait loop, so mutating the next window's plan
//	           races with nothing. A worker that sleeps through an entire
//	           window cannot exist — epochs advance only after all n
//	           arrive — which is exactly what makes the plain claim
//	           counter safe to reset.
type pinnedWorkers struct {
	g      *ShardGroup
	epoch  atomic.Uint64
	next   atomic.Int64
	remain atomic.Int64
	done   chan struct{}
	wake   atomic.Pointer[chan struct{}]
	slept  atomic.Int32
	stop   atomic.Bool
	wg     sync.WaitGroup
	n      int // spawned worker goroutines, excluding the coordinator
}

// startWorkers grows the pinned pool to n worker goroutines.
//
//simlint:coldpath goroutine spawn is a once-per-run boundary, not window-rate work
func (g *ShardGroup) startWorkers(n int) {
	if g.pw == nil {
		pw := &pinnedWorkers{g: g, done: make(chan struct{}, 1)}
		ch := make(chan struct{})
		pw.wake.Store(&ch)
		g.pw = pw
	}
	for g.pw.n < n {
		g.pw.n++
		g.pw.wg.Add(1)
		go g.pw.loop(g.pw.epoch.Load())
	}
}

// stopWorkers tears the pinned pool down and waits for the goroutines to
// exit, so a drained (or panicked, or limit-bounded) group pins nothing.
// The next RunUntil lazily builds a fresh pool.
func (g *ShardGroup) stopWorkers() {
	pw := g.pw
	if pw == nil {
		return
	}
	g.pw = nil
	pw.stop.Store(true)
	pw.release()
	pw.wg.Wait()
}

// release publishes the current window plan by bumping the epoch and, if
// any worker parked, waking every sleeper by closing the wake channel
// (swapped fresh first, so late parkers find a live channel).
//
//simlint:hotpath
func (w *pinnedWorkers) release() {
	w.epoch.Add(1)
	if w.slept.Swap(0) != 0 {
		old := w.wake.Load()
		fresh := make(chan struct{})
		w.wake.Store(&fresh)
		close(*old)
	}
}

// loop is one pinned worker: wait for the epoch to advance, run claims,
// arrive, repeat. e is the epoch the worker considers already processed.
func (w *pinnedWorkers) loop(e uint64) {
	defer w.wg.Done()
	for {
		for spins := 0; w.epoch.Load() == e; spins++ {
			if spins < 128 {
				// Back-to-back windows release within microseconds; spin
				// briefly before paying the channel park.
				runtime.Gosched()
				continue
			}
			ch := w.wake.Load()
			w.slept.Store(1)
			if w.epoch.Load() != e {
				break
			}
			<-*ch
		}
		e = w.epoch.Load()
		if w.stop.Load() {
			return
		}
		w.work()
		if w.remain.Add(-1) == 0 {
			w.done <- struct{}{}
		}
	}
}

// work claims shard indexes until the window's counter is exhausted and
// runs each claimed shard to its end.
//
//simlint:hotpath
func (w *pinnedWorkers) work() {
	g := w.g
	for {
		i := int(w.next.Add(1))
		if i >= len(g.active) {
			return
		}
		w.runShard(g.active[i], i)
	}
}

// runShard executes one claimed shard's window, capturing a panic into
// the shard's deterministic slot for the coordinator to re-raise.
//
//simlint:coldpath the deferred recover is the window's panic boundary; an open-coded defer does not allocate
func (w *pinnedWorkers) runShard(s *Shard, i int) {
	defer func() {
		if r := recover(); r != nil {
			w.g.panics[i] = &r
		}
	}()
	s.k.runWindow(s.end)
}

// spawnWindow is the original window executor — a fresh goroutine fan-out
// with a WaitGroup barrier per window. Retained behind SetSpawnPerWindow
// so differential tests can pin the pinned-worker engine's results
// against it.
//
//simlint:coldpath legacy differential-testing path; the pinned-worker barrier is the performance path
func (g *ShardGroup) spawnWindow(workers int) {
	active := g.active
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(active) {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							g.panics[i] = &r
						}
					}()
					active[i].k.runWindow(active[i].end)
				}()
			}
		}()
	}
	wg.Wait()
}
