package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Sharded conservative parallel execution.
//
// A ShardGroup runs one simulation as N member kernels (shards), each with
// its own timing wheel, worker pool, and RNG streams, so independent
// regions of the model execute on separate host cores. Synchronization is
// the classic conservative time-window scheme, made null-message-free by a
// global barrier:
//
//	window     — all shards execute events in [W, W+L) concurrently, where
//	             W is the minimum next-event time across shards and L is
//	             the lookahead (the minimum cross-shard delivery latency,
//	             derived from the topology — see cluster.PlanShards).
//	barrier    — shards stop at the window end; staged cross-shard
//	             messages are merged into their destination kernels; the
//	             next window starts at the new global minimum.
//	lockstep   — with zero lookahead the window degenerates to a single
//	             instant: shards still run concurrently within the
//	             instant (messages become visible only at the barrier),
//	             but no shard may run ahead of another in virtual time.
//
// Why this is safe: a message sent from inside window [W, W+L) carries a
// delay of at least L, so it is stamped at or after W+L — strictly beyond
// the window every shard is executing. No shard can receive an event in
// its past, so no rollback machinery is needed.
//
// Why this is deterministic, at every worker count: shards share no
// mutable state during a window (cross-shard messages are staged in
// per-source outbox rings, invisible to the destination until the
// barrier), each member kernel is itself deterministic, and the barrier
// merge orders messages by (t, source shard, source sequence) before
// scheduling them. The whole run is therefore a pure function of the seed
// and the model, bit-identical whether windows execute on 1 worker or 16.
//
// Cross-shard interaction happens only through Shard.Send. The delivery
// closure runs in the destination shard's kernel context and must touch
// only destination-shard state — the shardsafe simlint analyzer enforces
// the capture rules statically.

// xmsg is one staged cross-shard message: at time t on the destination
// shard, run fn. src/seq make the barrier merge order total and
// deterministic.
type xmsg struct {
	t   Time
	src int
	seq uint64
	fn  func(*Shard)
}

// ShardGroup coordinates the member kernels of one sharded simulation.
// Build the model across the shards' kernels before calling Run; like
// Kernel, a group must not be touched from other host goroutines while it
// runs.
type ShardGroup struct {
	seed      int64
	lookahead Duration
	workers   int
	shards    []*Shard
	active    []*Shard // scratch: shards with pending work this window

	// solo is true while a solo-mode window runs (see RunUntil): the one
	// running shard's first cross-shard Send must end the window, so Send
	// sets the kernel's windowBreak flag when solo is up.
	solo bool
}

// Shard is one member of a ShardGroup: a kernel plus the staging rings
// for its outbound cross-shard messages.
type Shard struct {
	g   *ShardGroup
	id  int
	k   *Kernel
	seq uint64       // send sequence, part of the deterministic merge key
	out []ring[xmsg] // per-destination outbox, written only while this shard executes
	in  []xmsg       // barrier-merge scratch, reused across windows
}

// NewShardGroup returns a group of n member kernels. Shard 0 is the home
// shard and inherits the group seed unchanged, so a model built entirely
// on shard 0 is byte-identical to the same model on a plain
// NewKernel(seed); the remaining shards get splitmix-derived seeds.
//
// lookahead is the minimum cross-shard delivery latency the model
// guarantees: every Shard.Send to another shard must carry a delay of at
// least lookahead. Zero is legal and falls back to instant-by-instant
// lockstep execution.
func NewShardGroup(seed int64, n int, lookahead Duration) *ShardGroup {
	if n < 1 {
		panic("sim: ShardGroup needs at least one shard")
	}
	if lookahead < 0 {
		panic("sim: negative lookahead")
	}
	g := &ShardGroup{seed: seed, lookahead: lookahead}
	for i := 0; i < n; i++ {
		shardSeed := seed
		if i > 0 {
			shardSeed = procSeed(seed, int64(i))
		}
		g.shards = append(g.shards, &Shard{
			g:   g,
			id:  i,
			k:   NewKernel(shardSeed),
			out: make([]ring[xmsg], n),
		})
	}
	return g
}

// Shards returns the number of member kernels.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns the i'th member.
func (g *ShardGroup) Shard(i int) *Shard { return g.shards[i] }

// Lookahead returns the group's cross-shard lookahead.
func (g *ShardGroup) Lookahead() Duration { return g.lookahead }

// SetWorkers bounds how many shards execute concurrently per window;
// 0 (the default) means one worker per available CPU. Results are
// bit-identical for every value.
func (g *ShardGroup) SetWorkers(n int) { g.workers = n }

// ID returns the shard's index within its group.
func (s *Shard) ID() int { return s.id }

// Kernel returns the shard's member kernel. Use it to build the shard's
// slice of the model before Run; while the group runs, only code executing
// on this shard may touch it.
func (s *Shard) Kernel() *Kernel { return s.k }

// Group returns the group the shard belongs to.
func (s *Shard) Group() *ShardGroup { return s.g }

// Send schedules fn to run on shard dst, delay after the current virtual
// time. fn executes in the destination kernel's event context (like
// Kernel.After: it must not block, but may spawn processes on the
// destination kernel) and receives the destination shard, through which it
// can reach the destination kernel and send replies. It must touch only
// destination-shard state; in particular it must not capture the sending
// shard's *Proc, *Kernel, or *Shard (the shardsafe analyzer flags this).
//
// Sends to another shard must respect the group's lookahead: delay must be
// at least Lookahead(). Sends to the shard itself have no lower bound and
// are scheduled locally.
func (s *Shard) Send(dst int, delay Duration, fn func(*Shard)) {
	if fn == nil {
		panic("sim: Shard.Send with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	d := s.g.shards[dst] // panics on an out-of-range destination
	t := s.k.now.Add(delay)
	if d == s {
		s.k.schedule(t, func() { fn(s) })
		return
	}
	if delay < s.g.lookahead {
		panic(fmt.Sprintf("sim: cross-shard send %d->%d with delay %v below lookahead %v",
			s.id, dst, delay, s.g.lookahead))
	}
	s.seq++
	s.out[dst].push(xmsg{t: t, src: s.id, seq: s.seq, fn: fn})
	if s.g.solo {
		s.k.windowBreak = true
	}
}

// Run executes the group until every shard drains. It returns a
// *DeadlockError naming the blocked processes of every shard if the whole
// group can make no further progress while processes remain live.
func (g *ShardGroup) Run() error { return g.RunUntil(Time(1<<63 - 1)) }

// RunUntil executes events with time ≤ limit across all shards. Events
// beyond the limit stay queued, and reaching the limit is not a deadlock.
func (g *ShardGroup) RunUntil(limit Time) error {
	if len(g.shards) == 1 {
		// A single-shard group has no cross-shard traffic at all (Send to
		// self schedules locally), so the member kernel runs unwindowed —
		// the run is the plain sequential kernel, byte for byte.
		return g.shards[0].k.RunUntil(limit)
	}
	for {
		g.deliver()
		// The next window starts at the global minimum next-event time.
		// Per-shard bounds may be coarse-slot lower bounds rather than
		// exact event times; that only costs an empty window, never
		// correctness, and each window strictly advances the bound.
		w := Time(1<<63 - 1)
		nActive := 0
		var solo *Shard
		for _, s := range g.shards {
			if t, ok := s.k.nextPendingBound(); ok {
				nActive++
				solo = s
				if t < w {
					w = t
				}
			}
		}
		if nActive == 0 {
			return g.finish()
		}
		if w > limit {
			for _, s := range g.shards {
				if s.k.now < limit {
					s.k.now = limit
				}
			}
			return nil
		}
		if nActive == 1 {
			// Solo fast path: deliver just drained every outbox, so with
			// all other shards idle nothing can reach the solo shard until
			// it sends first. It may therefore run unbounded — no window
			// chopping — until its first cross-shard Send, which sets the
			// kernel's windowBreak flag and ends the window before any
			// further event executes. The staged message is ≥ lookahead
			// ahead of the send, and any reply another ≥ lookahead after
			// that, so nothing lands in the solo shard's past. This is
			// what makes home-shard experiments (-shards N with the whole
			// model on shard 0) run at plain-kernel speed.
			g.solo = true
			solo.k.runWindow(limit)
			g.solo = false
			continue
		}
		end := w
		if g.lookahead > 0 {
			end = w.Add(g.lookahead) - 1
		}
		if end > limit {
			end = limit
		}
		g.runWindow(end)
	}
}

// finish resolves an all-idle group: a clean drain releases every shard's
// worker pool; live processes with nothing pending anywhere are a
// group-wide deadlock.
func (g *ShardGroup) finish() error {
	live := 0
	var at Time
	var blocked []string
	for _, s := range g.shards {
		live += s.k.live
		if s.k.now > at {
			at = s.k.now
		}
		blocked = append(blocked, s.k.blockedNames()...)
	}
	if live > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Time: at, Blocked: blocked}
	}
	for _, s := range g.shards {
		s.k.drainPools()
	}
	return nil
}

// deliver merges every staged cross-shard message into its destination
// kernel. Per destination, messages from all sources are ordered by
// (t, source shard, source seq) before scheduling, so the destination's
// event sequence — and therefore the whole run — is independent of how
// the previous window's shards interleaved on host CPUs.
func (g *ShardGroup) deliver() {
	for _, dst := range g.shards {
		batch := dst.in[:0]
		for _, src := range g.shards {
			if src == dst {
				continue
			}
			r := &src.out[dst.id]
			for r.len() > 0 {
				batch = append(batch, r.pop())
			}
		}
		if len(batch) > 0 {
			sort.Slice(batch, func(i, j int) bool {
				a, b := batch[i], batch[j]
				if a.t != b.t {
					return a.t < b.t
				}
				if a.src != b.src {
					return a.src < b.src
				}
				return a.seq < b.seq
			})
			for _, m := range batch {
				fn := m.fn
				//simlint:ignore hookguard Send panics on nil fn at enqueue, so every staged message carries one
				dst.k.schedule(m.t, func() { fn(dst) })
			}
		}
		dst.in = batch[:0]
	}
}

// runWindow executes every shard with pending work up to the window end,
// fanning the shards out across up to g.workers host goroutines. Shards
// share no mutable state during a window, so any interleaving yields the
// same result; a panic inside any shard (a model bug or a killed-process
// unwind escaping) is re-raised on the calling goroutine, preferring the
// lowest shard id when several windows panic at once so the report is
// deterministic.
func (g *ShardGroup) runWindow(end Time) {
	active := g.active[:0]
	for _, s := range g.shards {
		if s.k.pending > 0 {
			active = append(active, s)
		}
	}
	g.active = active[:0] // retain backing array, not the stale entries
	workers := g.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(active) {
		workers = len(active)
	}
	if workers <= 1 {
		for _, s := range active {
			s.k.runWindow(end)
		}
		return
	}
	var (
		next   atomic.Int64
		panics = make([]*any, len(active))
		wg     sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(active) {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = &r
						}
					}()
					active[i].k.runWindow(end)
				}()
			}
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(*p)
		}
	}
}
