package sim

import (
	"container/heap"
	"math/bits"
)

// The scheduler is a hierarchical timing wheel with a same-instant fast
// lane and a binary-heap fallback for far-future timers:
//
//	fast lane  — FIFO ring for events at exactly k.now (process wakes,
//	             Yield, After(0)). The dominant schedule(k.now, p.wake)
//	             pattern never touches the wheel at all.
//	wheel      — wheelLevels levels of wheelSlots slots. Level l covers
//	             deltas in [2^(6l), 2^(6(l+1))) at a granularity of 2^(6l)
//	             ns, so any delta below wheelSpan lands in O(1). A uint64
//	             occupancy bitmap per level turns "next occupied slot" into
//	             a rotate + trailing-zero count.
//	overflow   — container/heap for deltas ≥ wheelSpan (≈68.7 s). Far
//	             timers migrate into the wheel as virtual time approaches.
//
// Determinism argument (why (t, seq) order is preserved exactly):
//
//  1. Events at the current instant only ever enter the fast lane
//     (schedule routes t ≤ now there), so a level-0 slot never receives an
//     event at the instant it is being drained. Wheel events at time t
//     therefore always carry a smaller seq than fast-lane events at t, and
//     draining "due slot, then fast lane" is (t, seq) order.
//  2. All events in a level-0 slot share one exact time (slots span 1 ns
//     and placements never reach a full cycle ahead), so sorting a drained
//     slot by seq — cascades interleave seqs — restores the total order.
//  3. A coarse slot is cascaded exactly when virtual time reaches its
//     lower bound, before any level-0 slot at the same bound is drained,
//     so events redistribute downward before anything at their time fires.
//  4. Heap timers migrate into the wheel the moment their delta fits,
//     which is always before time reaches them; after migration the heap
//     top is strictly beyond every wheel event.
//
// Canceled events are removed lazily (dropped when a drain, cascade, or
// migration encounters them); k.pending counts only live events so run
// loops and deadlock checks are unaffected by stale timers.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64 slots per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 6
	wheelSpan   = 1 << (wheelBits * wheelLevels) // 2^36 ns ≈ 68.7 s
)

type timerWheel struct {
	slots [wheelLevels][wheelSlots][]*event
	occ   [wheelLevels]uint64 // per-level slot-occupancy bitmaps
	count int                 // events resident in the wheel (incl. canceled)
}

// place files e into the level whose granularity matches its delta from
// now. Events at or before now must go to the fast lane instead; place is
// also used by cascade and heap migration, where e.t == now is legal and
// lands in the due level-0 slot.
//
//simlint:hotpath
func (w *timerWheel) place(e *event, now Time) {
	d := uint64(e.t - now)
	level := 0
	if d > 0 {
		level = (bits.Len64(d) - 1) / wheelBits
	}
	slot := (uint64(e.t) >> (uint(level) * wheelBits)) & wheelMask
	w.slots[level][slot] = append(w.slots[level][slot], e)
	w.occ[level] |= 1 << slot
	w.count++
}

// next returns the level and lower-bound time of the earliest occupied
// slot at or after now. Ties between levels resolve to the coarsest level:
// its slot must cascade downward before a level-0 slot at the same bound
// is drained, so that same-time events join the slot first. Must only be
// called when count > 0.
//
//simlint:hotpath
func (w *timerWheel) next(now Time) (level int, lb Time) {
	lb = Time(1<<63 - 1)
	for l := wheelLevels - 1; l >= 0; l-- {
		occ := w.occ[l]
		if occ == 0 {
			continue
		}
		shift := uint(l) * wheelBits
		base := uint64(now) >> shift
		cur := base & wheelMask
		rot := bits.RotateLeft64(occ, -int(cur))
		tz := uint(bits.TrailingZeros64(rot))
		if l > 0 && tz == 0 {
			// The slot now is inside at a coarse level holds only
			// next-cycle events: current-cycle ones were cascaded out when
			// time entered the slot, and any new placement inside the slot
			// has a delta below this level's granularity.
			rot &^= 1
			if rot == 0 {
				tz = wheelSlots
			} else {
				tz = uint(bits.TrailingZeros64(rot))
			}
		}
		cand := Time((base + uint64(tz)) << shift)
		if cand < lb {
			level, lb = l, cand
		}
	}
	return level, lb
}

// cascadeDown cascades the occupied current slot at every level from l
// down to 1. now must be the lower bound of the level-l candidate slot, so
// it is aligned to every finer level's granularity as well: a bound like
// 4096 starts a slot at level 2 AND level 1 simultaneously, and both must
// redistribute before the invariant behind next()'s current-slot handling
// ("only next-cycle events remain") holds again. Re-placed events never
// land back in an aligned current slot (their delta always reaches past
// it), so a single downward sweep suffices.
//
//simlint:hotpath
func (w *timerWheel) cascadeDown(l int, now Time) {
	for ; l >= 1; l-- {
		slot := (uint64(now) >> (uint(l) * wheelBits)) & wheelMask
		if w.occ[l]&(1<<slot) != 0 {
			w.cascade(l, now)
		}
	}
}

// cascade empties the level-`level` slot whose lower bound is now,
// re-placing current-cycle events into finer levels (an event at exactly
// now lands in the due level-0 slot). Next-cycle events sharing the slot
// stay put; canceled events are dropped.
//
//simlint:hotpath
func (w *timerWheel) cascade(level int, now Time) {
	shift := uint(level) * wheelBits
	slot := (uint64(now) >> shift) & wheelMask
	buf := w.slots[level][slot]
	cyc := uint64(now) >> shift
	w.count -= len(buf)
	keep := 0
	for _, e := range buf {
		if e.canceled {
			continue
		}
		if uint64(e.t)>>shift == cyc {
			w.place(e, now)
		} else {
			buf[keep] = e
			keep++
			w.count++
		}
	}
	for i := keep; i < len(buf); i++ {
		buf[i] = nil
	}
	w.slots[level][slot] = buf[:keep]
	if keep == 0 {
		w.occ[level] &^= 1 << slot
	}
}

// drainDue empties the level-0 slot at time t (== k.now) into k.due,
// insertion-sorted by seq. Direct placements arrive in seq order already;
// cascaded events interleave, so the sort is near-linear in practice.
//
//simlint:hotpath
func (k *Kernel) drainDue(t Time) {
	slot := uint64(t) & wheelMask
	buf := k.wheel.slots[0][slot]
	k.wheel.occ[0] &^= 1 << slot
	k.wheel.count -= len(buf)
	k.due = k.due[:0]
	k.dueIdx = 0
	for _, e := range buf {
		if e.canceled {
			continue
		}
		j := len(k.due)
		k.due = append(k.due, e)
		for j > 0 && k.due[j-1].seq > e.seq {
			k.due[j] = k.due[j-1]
			j--
		}
		k.due[j] = e
	}
	for i := range buf {
		buf[i] = nil
	}
	k.wheel.slots[0][slot] = buf[:0]
}

// advance moves virtual time forward to the next instant with due events,
// filling k.due, without exceeding limit. It returns false when there is
// nothing left to fire at or before limit (k.now is then clamped to
// limit if events remain beyond it).
//
//simlint:hotpath
func (k *Kernel) advance(limit Time) bool {
	for {
		// Migrate far-future timers whose delta now fits the wheel.
		for len(k.overflow) > 0 && k.overflow[0].t-k.now < wheelSpan {
			e := heap.Pop(&k.overflow).(*event)
			if e.canceled {
				continue
			}
			k.wheel.place(e, k.now)
		}
		if k.wheel.count == 0 {
			if len(k.overflow) == 0 {
				return false
			}
			// The nearest event is a far timer: jump to it (or the limit)
			// and re-run migration.
			t := k.overflow[0].t
			if t > limit {
				k.now = limit
				return false
			}
			k.now = t
			continue
		}
		level, lb := k.wheel.next(k.now)
		if lb > limit {
			k.now = limit
			return false
		}
		k.now = lb
		if level == 0 {
			k.drainDue(lb)
			if len(k.due) > 0 {
				return true
			}
			continue // slot held only canceled events
		}
		k.wheel.cascadeDown(level, lb)
	}
}

// pop returns the next live event in (t, seq) order at or before limit,
// or nil when the limit cuts the run short. Order: the sorted due batch
// for the current instant, then the same-instant fast lane, then advance
// time.
//
//simlint:hotpath
func (k *Kernel) pop(limit Time) *event {
	for {
		for k.dueIdx < len(k.due) {
			e := k.due[k.dueIdx]
			k.due[k.dueIdx] = nil
			k.dueIdx++
			if !e.canceled {
				return e
			}
		}
		for k.fast.len() > 0 {
			e := k.fast.pop()
			if !e.canceled {
				return e
			}
		}
		if !k.advance(limit) {
			return nil
		}
	}
}
