package sim

// Queue is an unbounded FIFO mailbox. Push never blocks and may be called
// from kernel context (e.g. an OnDone callback); Pop blocks the calling
// process until an item is available. It is the standard way to feed a
// server process.
//
// Items and waiters live in growable ring buffers: the hot Push/Pop cycle
// of a loaded server process is allocation-free at steady state.
type Queue[T any] struct {
	k       *Kernel
	items   ring[T]
	waiters ring[*Proc]
	pushed  int64
}

// NewQueue returns an empty queue bound to k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{k: k}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return q.items.len() }

// Pushed returns the total number of items ever pushed.
func (q *Queue[T]) Pushed() int64 { return q.pushed }

// Push appends v and wakes one waiting process, if any.
//
//simlint:hotpath
func (q *Queue[T]) Push(v T) {
	q.items.push(v)
	q.pushed++
	if q.waiters.len() > 0 {
		p := q.waiters.pop()
		q.k.noteRunnable(p)
		q.k.schedule(q.k.now, p.wake)
	}
}

// Pop blocks p until an item is available and removes and returns it.
//
//simlint:hotpath
func (q *Queue[T]) Pop(p *Proc) T {
	for q.items.len() == 0 {
		q.waiters.push(p)
		q.k.noteWaiting(p)
		// If p is killed while parked here, the wake that was aimed at it
		// must chain to another waiter so buffered items are not stranded;
		// see killedUnwind.
		p.unwind = q
		p.park("queue")
		p.unwind = nil
	}
	v := q.items.pop()
	// If items remain and more waiters are parked, keep the chain going:
	// a single Push wakes one waiter, but a waiter woken spuriously after
	// another consumer raced it must not strand buffered items.
	q.wakeNext()
	return v
}

// wakeNext continues the wake chain when buffered items and parked waiters
// coexist.
//
//simlint:hotpath
func (q *Queue[T]) wakeNext() {
	if q.items.len() > 0 && q.waiters.len() > 0 {
		next := q.waiters.pop()
		q.k.noteRunnable(next)
		q.k.schedule(q.k.now, next.wake)
	}
}

// killedUnwind re-homes the wake that a killed process absorbed: the dead
// process was woken to consume an item it will never take, so pass the
// baton to the next waiter if items are available.
func (q *Queue[T]) killedUnwind(*Proc) {
	q.wakeNext()
}

// TryPop removes and returns the head item without blocking. ok reports
// whether an item was available.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if q.items.len() == 0 {
		return v, false
	}
	return q.items.pop(), true
}
