package sim

// Queue is an unbounded FIFO mailbox. Push never blocks and may be called
// from kernel context (e.g. an OnDone callback); Pop blocks the calling
// process until an item is available. It is the standard way to feed a
// server process.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	waiters []*Proc
	pushed  int64
}

// NewQueue returns an empty queue bound to k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{k: k}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Pushed returns the total number of items ever pushed.
func (q *Queue[T]) Pushed() int64 { return q.pushed }

// Push appends v and wakes one waiting process, if any.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.pushed++
	if len(q.waiters) > 0 {
		p := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.k.noteRunnable(p)
		q.k.schedule(q.k.now, p.wake)
	}
}

// Pop blocks p until an item is available and removes and returns it.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		q.k.noteWaiting(p)
		p.park("queue")
	}
	v := q.items[0]
	q.items = q.items[1:]
	// If items remain and more waiters are parked, keep the chain going:
	// a single Push wakes one waiter, but a waiter woken spuriously after
	// another consumer raced it must not strand buffered items.
	if len(q.items) > 0 && len(q.waiters) > 0 {
		next := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.k.noteRunnable(next)
		q.k.schedule(q.k.now, next.wake)
	}
	return v
}

// TryPop removes and returns the head item without blocking. ok reports
// whether an item was available.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}
