package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ringModel is the differential-gate workload for the shard engine: nNodes
// logical nodes, each a process that alternates RNG-drawn sleeps with
// token sends around the ring, logging every action with its virtual
// timestamp. Node i lives on shard i%shards; sends cross shard boundaries
// with a delay of at least the lookahead. The concatenated per-node logs
// are the run's signature: two runs are equivalent iff their signatures
// are byte-identical.
type ringModel struct {
	nodes  int
	rounds int
	logs   [][]string
}

// runOnGroup builds and runs the model on a shard group and returns the
// signature. delay is the send latency (must be ≥ the group's lookahead
// for cross-shard edges).
func (m *ringModel) runOnGroup(t *testing.T, g *ShardGroup, delay Duration) string {
	t.Helper()
	m.logs = make([][]string, m.nodes)
	shardOf := func(node int) int { return node % g.Shards() }
	for i := 0; i < m.nodes; i++ {
		i := i
		s := g.Shard(shardOf(i))
		s.Kernel().Spawn(fmt.Sprintf("node%d", i), func(p *Proc) {
			for r := 0; r < m.rounds; r++ {
				p.Sleep(Duration(p.Rand().Intn(5000)) * time.Nanosecond)
				m.logs[i] = append(m.logs[i], fmt.Sprintf("n%d send r%d @%d", i, r, p.Now()))
				dst := (i + 1) % m.nodes
				r := r
				g.Shard(shardOf(i)).Send(shardOf(dst), delay, func(ds *Shard) {
					m.logs[dst] = append(m.logs[dst],
						fmt.Sprintf("n%d recv from n%d r%d @%d", dst, i, r, ds.Kernel().Now()))
				})
			}
		})
	}
	if err := g.Run(); err != nil {
		t.Fatalf("group run: %v", err)
	}
	return m.signature()
}

// runOnKernel runs the same model on a plain (pre-shard) kernel, with
// sends expressed as After callbacks — the sequential reference.
func (m *ringModel) runOnKernel(t *testing.T, k *Kernel, delay Duration) string {
	t.Helper()
	m.logs = make([][]string, m.nodes)
	for i := 0; i < m.nodes; i++ {
		i := i
		k.Spawn(fmt.Sprintf("node%d", i), func(p *Proc) {
			for r := 0; r < m.rounds; r++ {
				p.Sleep(Duration(p.Rand().Intn(5000)) * time.Nanosecond)
				m.logs[i] = append(m.logs[i], fmt.Sprintf("n%d send r%d @%d", i, r, p.Now()))
				dst := (i + 1) % m.nodes
				r := r
				k.After(delay, func() {
					m.logs[dst] = append(m.logs[dst],
						fmt.Sprintf("n%d recv from n%d r%d @%d", dst, i, r, k.Now()))
				})
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("kernel run: %v", err)
	}
	return m.signature()
}

func (m *ringModel) signature() string {
	var b strings.Builder
	for _, log := range m.logs {
		for _, line := range log {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestShardWorkersBitIdentical is the engine's differential gate: the same
// 4-shard model must produce byte-identical logs whether windows run on 1
// worker, 4 workers, or 16, and across repeated runs at the same width.
func TestShardWorkersBitIdentical(t *testing.T) {
	const lookahead = 200 * time.Nanosecond
	run := func(workers int) string {
		g := NewShardGroup(7, 4, lookahead)
		g.SetWorkers(workers)
		m := &ringModel{nodes: 8, rounds: 40}
		return m.runOnGroup(t, g, lookahead)
	}
	ref := run(1)
	if ref == "" {
		t.Fatal("empty signature")
	}
	for _, w := range []int{4, 16} {
		if got := run(w); got != ref {
			t.Errorf("workers=%d signature differs from workers=1", w)
		}
	}
	if again := run(16); again != ref {
		t.Errorf("repeated workers=16 run differs")
	}
}

// TestShardSingleMatchesPlainKernel is the pre-shard compatibility gate: a
// single-shard group must execute byte-identically to the plain sequential
// kernel — same seed, same spawn order, same event (t, seq) interleaving.
func TestShardSingleMatchesPlainKernel(t *testing.T) {
	const delay = 150 * time.Nanosecond
	mk := &ringModel{nodes: 6, rounds: 30}
	plain := mk.runOnKernel(t, NewKernel(11), delay)
	mg := &ringModel{nodes: 6, rounds: 30}
	g := NewShardGroup(11, 1, 0)
	grouped := mg.runOnGroup(t, g, delay)
	if plain != grouped {
		t.Errorf("single-shard group diverges from plain kernel:\nplain:\n%s\ngroup:\n%s", plain, grouped)
	}
}

// TestShardZeroLookaheadLockstep checks the degenerate topology: with zero
// lookahead the engine falls back to instant-by-instant lockstep, zero-delay
// cross-shard messages are processed at the instant they were sent, and the
// order is still deterministic at every worker count.
func TestShardZeroLookaheadLockstep(t *testing.T) {
	run := func(workers int) string {
		g := NewShardGroup(3, 2, 0)
		g.SetWorkers(workers)
		var log []string
		g.Shard(0).Kernel().Spawn("pinger", func(p *Proc) {
			for r := 0; r < 10; r++ {
				p.Sleep(100 * time.Nanosecond)
				sent := p.Now()
				r := r
				g.Shard(0).Send(1, 0, func(ds *Shard) {
					if ds.Kernel().Now() != sent {
						t.Errorf("zero-delay message sent @%d processed @%d", sent, ds.Kernel().Now())
					}
					log = append(log, fmt.Sprintf("r%d @%d", r, ds.Kernel().Now()))
				})
			}
		})
		if err := g.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return strings.Join(log, "\n")
	}
	ref := run(1)
	if got := run(8); got != ref {
		t.Errorf("lockstep run differs between workers=1 and workers=8:\n%s\nvs\n%s", ref, got)
	}
}

// TestShardWindowBoundaryDelivery pins the trickiest conservative-sync
// edge: a message whose delay is exactly the lookahead lands exactly on
// the next window's start boundary. It must be delivered before that
// window executes — processed at precisely send-time + lookahead — and
// never lost or deferred a window.
func TestShardWindowBoundaryDelivery(t *testing.T) {
	const lookahead = 100 * time.Nanosecond
	g := NewShardGroup(5, 2, lookahead)
	var got []Time
	g.Shard(0).Kernel().Spawn("edge", func(p *Proc) {
		for r := 0; r < 20; r++ {
			// Sleep exactly one lookahead so sends sit exactly on window
			// starts, then send with delay exactly equal to the lookahead.
			p.Sleep(lookahead)
			sent := p.Now()
			g.Shard(0).Send(1, lookahead, func(ds *Shard) {
				got = append(got, ds.Kernel().Now()-sent)
			})
		}
	})
	if err := g.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(got) != 20 {
		t.Fatalf("delivered %d of 20 boundary messages", len(got))
	}
	for i, d := range got {
		if Duration(d) != lookahead {
			t.Errorf("message %d processed %v after send; want exactly %v", i, Duration(d), lookahead)
		}
	}
}

// TestShardKillWhileAwaitingRemote kills a process that is parked on a
// future whose value arrives as a cross-shard response. The late response
// must still complete the future, wake the killed process into its unwind,
// and leave the group drainable with no leaked live processes.
func TestShardKillWhileAwaitingRemote(t *testing.T) {
	const lookahead = 100 * time.Nanosecond
	g := NewShardGroup(9, 2, lookahead)
	k0 := g.Shard(0).Kernel()
	resp := NewFuture[int](k0)
	reached := false
	requester := k0.Spawn("requester", func(p *Proc) {
		g.Shard(0).Send(1, lookahead, func(ds *Shard) {
			// Serve remotely, then reply to the requester's home shard.
			ds.Send(0, lookahead, func(home *Shard) {
				resp.Set(42)
			})
		})
		resp.Await(p)
		reached = true // must never run: the proc is killed while parked
	})
	k0.Spawn("killer", func(p *Proc) {
		p.Sleep(50 * time.Nanosecond)
		requester.Kill()
	})
	if err := g.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if reached {
		t.Error("killed requester ran past its remote await")
	}
	if v, ok := resp.Value(); !ok || v != 42 {
		t.Errorf("remote response lost: value %d, set %v", v, ok)
	}
	for i := 0; i < g.Shards(); i++ {
		if live := g.Shard(i).Kernel().Live(); live != 0 {
			t.Errorf("shard %d leaked %d live processes", i, live)
		}
	}
}

// TestShardGroupDeadlock checks group-level deadlock detection: a process
// parked forever on one shard, with every other shard idle, must surface
// as a DeadlockError naming it — but only once no cross-shard message can
// possibly save it.
func TestShardGroupDeadlock(t *testing.T) {
	g := NewShardGroup(1, 3, time.Microsecond)
	k2 := g.Shard(2).Kernel()
	k2.Spawn("stuck", func(p *Proc) {
		NewFuture[struct{}](k2).Await(p)
	})
	g.Shard(0).Kernel().Spawn("busy", func(p *Proc) {
		p.Sleep(time.Millisecond)
	})
	err := g.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 1 || !strings.Contains(de.Blocked[0], "stuck") {
		t.Errorf("deadlock report %v does not name the stuck process", de.Blocked)
	}
}

// TestShardPinnedMatchesSpawnPerWindow is the engine-swap differential
// gate: the persistent pinned-worker barrier must produce byte-identical
// logs to the original spawn-a-goroutine-per-window executor, at several
// worker counts and with adaptive widening both on and off.
func TestShardPinnedMatchesSpawnPerWindow(t *testing.T) {
	const lookahead = 200 * time.Nanosecond
	run := func(spawn, adaptive bool, workers int) string {
		g := NewShardGroup(7, 4, lookahead)
		g.SetWorkers(workers)
		g.SetSpawnPerWindow(spawn)
		g.SetAdaptive(adaptive)
		m := &ringModel{nodes: 8, rounds: 40}
		return m.runOnGroup(t, g, lookahead)
	}
	ref := run(false, true, 4)
	if ref == "" {
		t.Fatal("empty signature")
	}
	for _, spawn := range []bool{false, true} {
		for _, adaptive := range []bool{false, true} {
			for _, w := range []int{2, 4, 16} {
				if got := run(spawn, adaptive, w); got != ref {
					t.Errorf("spawn=%v adaptive=%v workers=%d signature differs", spawn, adaptive, w)
				}
			}
		}
	}
}

// TestShardAdaptiveWidensWindows checks that adaptive widening actually
// buys fewer barriers on a skewed model — one shard ticking every 100ns,
// the other only every 5µs, lookahead 200ns — while producing the same
// result. The static engine must chop the run into ~lookahead-sized
// windows; the adaptive one can run the busy shard up to the idle shard's
// horizon.
func TestShardAdaptiveWidensWindows(t *testing.T) {
	const lookahead = 200 * time.Nanosecond
	run := func(adaptive bool) (string, int64) {
		g := NewShardGroup(3, 2, lookahead)
		g.SetWorkers(2)
		g.SetAdaptive(adaptive)
		var log []string
		g.Shard(0).Kernel().Spawn("busy", func(p *Proc) {
			for r := 0; r < 500; r++ {
				p.Sleep(100 * time.Nanosecond)
			}
			log = append(log, fmt.Sprintf("busy done @%d", p.Now()))
		})
		g.Shard(1).Kernel().Spawn("sparse", func(p *Proc) {
			for r := 0; r < 10; r++ {
				p.Sleep(5 * time.Microsecond)
				sent := p.Now()
				r := r
				g.Shard(1).Send(0, lookahead, func(ds *Shard) {
					log = append(log, fmt.Sprintf("r%d @%d(sent %d)", r, ds.Kernel().Now(), sent))
				})
			}
		})
		if err := g.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return strings.Join(log, "\n"), g.Windows()
	}
	staticSig, staticWin := run(false)
	adaptSig, adaptWin := run(true)
	if staticSig != adaptSig {
		t.Errorf("adaptive widening changed results:\nstatic:\n%s\nadaptive:\n%s", staticSig, adaptSig)
	}
	if adaptWin >= staticWin {
		t.Errorf("adaptive windows did not reduce barriers: %d adaptive vs %d static", adaptWin, staticWin)
	}
}

// TestShardPairLookaheadFloors checks the per-pair delivery floors: a send
// at the pair floor (above the uniform lookahead) is accepted and
// delivered on time, a send below its pair floor panics even though it
// clears the group lookahead, and a malformed matrix is rejected.
func TestShardPairLookaheadFloors(t *testing.T) {
	const base = 100 * time.Nanosecond
	mk := func() *ShardGroup {
		g := NewShardGroup(5, 3, base)
		g.SetPairLookahead([][]Duration{
			{0, base, 4 * base},
			{base, 0, 4 * base},
			{4 * base, 4 * base, 0},
		})
		return g
	}
	g := mk()
	var deliveries []Duration
	g.Shard(0).Kernel().Spawn("sender", func(p *Proc) {
		sent := p.Now()
		g.Shard(0).Send(2, 4*base, func(ds *Shard) {
			deliveries = append(deliveries, ds.Kernel().Now().Sub(sent))
		})
		g.Shard(0).Send(1, base, func(ds *Shard) {
			deliveries = append(deliveries, ds.Kernel().Now().Sub(sent))
		})
	})
	if err := g.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(deliveries) != 2 || deliveries[0] != base || deliveries[1] != 4*base {
		t.Errorf("pair-floor deliveries %v, want [%v %v]", deliveries, base, 4*base)
	}
	g2 := mk()
	g2.Shard(0).Kernel().Spawn("cheater", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("send below the pair floor did not panic")
			}
			panic(killedErr{"cheater"})
		}()
		g2.Shard(0).Send(2, base, func(*Shard) {}) // clears base, violates the 4*base pair floor
	})
	func() {
		defer func() { recover() }()
		g2.Run()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pair floor below group lookahead was accepted")
			}
		}()
		NewShardGroup(1, 2, base).SetPairLookahead([][]Duration{{0, base / 2}, {base / 2, 0}})
	}()
}

// TestShardKillWhileParkedAtBarrier kills a process on one shard — via a
// cross-shard delivery — while the pinned workers of a multi-worker group
// are cycling through the epoch barrier. The kill must unwind cleanly, the
// group must drain, and the pinned pool must be torn down when RunUntil
// returns so nothing leaks across runs.
func TestShardKillWhileParkedAtBarrier(t *testing.T) {
	const lookahead = 100 * time.Nanosecond
	base := runtime.NumGoroutine()
	g := NewShardGroup(13, 4, lookahead)
	g.SetWorkers(4)
	k1 := g.Shard(1).Kernel()
	gate := NewFuture[struct{}](k1)
	victimRanPast := false
	victim := k1.Spawn("victim", func(p *Proc) {
		gate.Await(p) // parked until the assassin wakes it into its unwind
		victimRanPast = true
	})
	for i := 0; i < 4; i++ {
		i := i
		g.Shard(i).Kernel().Spawn(fmt.Sprintf("load%d", i), func(p *Proc) {
			for r := 0; r < 50; r++ {
				p.Sleep(Duration(p.Rand().Intn(300)) * time.Nanosecond)
				g.Shard(i).Send((i+1)%4, lookahead, func(*Shard) {})
			}
		})
	}
	g.Shard(2).Kernel().Spawn("assassin", func(p *Proc) {
		p.Sleep(2 * time.Microsecond)
		g.Shard(2).Send(1, lookahead, func(ds *Shard) {
			// The victim lives on shard 1, which this closure runs on.
			//simlint:ignore shardsafe
			victim.Kill()
			// Kill alone does not wake a parked process; set its gate so
			// the resume sees the kill flag and unwinds.
			//simlint:ignore shardsafe
			gate.Set(struct{}{})
		})
	})
	if err := g.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if victimRanPast {
		t.Error("killed victim ran past its await")
	}
	for i := 0; i < g.Shards(); i++ {
		if live := g.Shard(i).Kernel().Live(); live != 0 {
			t.Errorf("shard %d leaked %d live processes", i, live)
		}
	}
	// The pinned pool must be gone: RunUntil tears workers down on exit.
	for try := 0; try < 100; try++ {
		if runtime.NumGoroutine() <= base {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("pinned workers leaked: %d goroutines, started with %d", n, base)
	}
	// And a second run on the same group must rebuild the pool lazily.
	g.Shard(0).Kernel().Spawn("again", func(p *Proc) {
		p.Sleep(time.Microsecond)
		g.Shard(0).Send(3, lookahead, func(*Shard) {})
	})
	g.Shard(3).Kernel().Spawn("again2", func(p *Proc) { p.Sleep(time.Microsecond) })
	if err := g.Run(); err != nil {
		t.Fatalf("second run: %v", err)
	}
}

// TestShardPanicInPinnedWorkerLowestWins panics two shards inside the same
// window and checks the pinned-worker engine re-raises the lowest shard's
// panic, deterministically, at every worker count — the same contract the
// spawn-per-window engine had.
func TestShardPanicInPinnedWorkerLowestWins(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		g := NewShardGroup(1, 4, time.Microsecond)
		g.SetWorkers(workers)
		for i := 0; i < 4; i++ {
			i := i
			k := g.Shard(i).Kernel()
			// Keep every shard busy so the panic window is genuinely
			// multi-shard, then blow up shards 2 and 1 at the same instant.
			k.Spawn("load", func(p *Proc) {
				for r := 0; r < 20; r++ {
					p.Sleep(100 * time.Nanosecond)
				}
			})
			if i == 1 || i == 2 {
				k.After(500*time.Nanosecond, func() { panic(fmt.Sprintf("boom shard %d", i)) })
			}
		}
		got := func() (r any) {
			defer func() { r = recover() }()
			g.Run()
			return nil
		}()
		if s, _ := got.(string); s != "boom shard 1" {
			t.Errorf("workers=%d: recovered %v, want the lowest shard's panic", workers, got)
		}
	}
}

// TestShardSendBelowLookaheadPanics pins the conservative contract: a
// cross-shard send below the lookahead would let a message land inside a
// window another shard is already executing, so it must panic loudly
// rather than corrupt causality.
func TestShardSendBelowLookaheadPanics(t *testing.T) {
	g := NewShardGroup(1, 2, time.Microsecond)
	g.Shard(0).Kernel().Spawn("cheater", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("send below lookahead did not panic")
			}
			panic(killedErr{"cheater"}) // unwind the process cleanly
		}()
		g.Shard(0).Send(1, 0, func(*Shard) {})
	})
	func() {
		defer func() { recover() }()
		g.Run()
	}()
}
