package sim

import (
	"testing"
	"time"
)

// TestTraceCtxInheritedAcrossSpawn checks the attribution contract the
// tracing layer builds on: a spawned process inherits the spawner's trace
// context, detaching is local to the process that detaches, and processes
// spawned from host code (no current process) start with a nil context.
func TestTraceCtxInheritedAcrossSpawn(t *testing.T) {
	k := NewKernel(1)
	type ctx struct{ label string }
	root := &ctx{label: "op"}

	var childSaw, grandchildSaw, afterDetachSaw any
	parent := k.Spawn("parent", func(p *Proc) {
		p.SetTraceCtx(root)
		k.Spawn("child", func(q *Proc) {
			childSaw = q.TraceCtx()
			q.SetTraceCtx(nil) // detach: must not affect parent
			k.Spawn("grandchild-of-detached", func(r *Proc) {
				grandchildSaw = r.TraceCtx()
			})
		})
		p.Sleep(time.Millisecond)
		k.Spawn("late-child", func(q *Proc) {
			afterDetachSaw = q.TraceCtx()
		})
	})
	if parent.TraceCtx() != nil {
		t.Fatal("context visible before the process ran")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childSaw != root {
		t.Fatalf("child inherited %v, want root ctx", childSaw)
	}
	if grandchildSaw != nil {
		t.Fatalf("grandchild of detached proc inherited %v, want nil", grandchildSaw)
	}
	if afterDetachSaw != root {
		t.Fatalf("parent's context clobbered by child detach: %v", afterDetachSaw)
	}

	hostSpawned := k.Spawn("host", func(p *Proc) {})
	if hostSpawned.TraceCtx() != nil {
		t.Fatal("host-spawned process should start with nil trace context")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestResourceUseTimedReportsQueueWait checks that UseTimed returns the
// queueing delay and behaves identically to Use for scheduling purposes.
func TestResourceUseTimedReportsQueueWait(t *testing.T) {
	k := NewKernel(2)
	r := NewResource(k, "cpu", 1)
	var firstWait, secondWait Duration
	k.Spawn("first", func(p *Proc) {
		firstWait = r.UseTimed(p, 10*time.Millisecond)
	})
	k.Spawn("second", func(p *Proc) {
		secondWait = r.UseTimed(p, 5*time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if firstWait != 0 {
		t.Fatalf("uncontended wait = %v, want 0", firstWait)
	}
	if secondWait != 10*time.Millisecond {
		t.Fatalf("contended wait = %v, want 10ms", secondWait)
	}
	if r.Served() != 2 {
		t.Fatalf("served = %d", r.Served())
	}
}
