package sim

// Source is a small-state deterministic random source (xoshiro256++,
// seeded through a splitmix64 expander). It implements math/rand's
// Source64, so rand.New(NewSource(seed)) yields the usual rand.Rand API
// on 32 bytes of generator state.
//
// The default math/rand source behind rand.NewSource carries ~5 KB of
// additive-lagged-Fibonacci state and pays a ~600-round warm-up on every
// seed. The kernel creates one RNG per process, and fan-out-heavy
// workloads spawn millions of short-lived processes per sweep, so the
// per-process source must be cheap to create and cheap to reseed.
// xoshiro256++ passes BigCrush, and seeding every word through splitmix64
// guarantees well-diffused, decorrelated streams even for adjacent seeds
// (the same argument procSeed makes for the seeds themselves).
type Source struct {
	s [4]uint64
}

// NewSource returns a Source seeded with seed. The seed must itself be
// derived from the experiment seed (procSeed, Options.Seed, ...); the
// seedflow analyzer enforces this at every call site.
func NewSource(seed uint64) *Source {
	src := &Source{}
	src.Reseed(seed)
	return src
}

// Reseed resets the source to the stream identified by seed, as if it had
// just been created with NewSource(seed). The kernel's process pool uses
// it to give a recycled process a fresh, id-derived stream without
// allocating.
//
//simlint:hotpath
func (s *Source) Reseed(seed uint64) {
	// splitmix64: each output is a bijective mix of the counter, so the
	// four state words are independent and never all zero.
	for i := range s.s {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.s[i] = z ^ (z >> 31)
	}
}

// Uint64 returns the next value of the xoshiro256++ stream.
//
//simlint:hotpath
func (s *Source) Uint64() uint64 {
	x := s.s[0] + s.s[3]
	result := ((x << 23) | (x >> 41)) + s.s[0]
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = (s.s[3] << 45) | (s.s[3] >> 19)
	return result
}

// Int63 implements rand.Source.
//
//simlint:hotpath
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source by delegating to Reseed.
func (s *Source) Seed(seed int64) { s.Reseed(uint64(seed)) }
