// Package sim implements a deterministic discrete-event simulation kernel.
//
// Simulated activities run as cooperatively scheduled goroutines called
// processes. Exactly one process executes at a time; a process runs until it
// blocks on the kernel (Sleep, Future.Await, Resource.Acquire, Queue.Pop,
// ...) and the kernel then advances virtual time to the next pending event.
// Because scheduling is cooperative and all ties are broken by a monotonic
// sequence number, a simulation is bit-reproducible given its seed.
//
// The kernel is the substrate for the cluster, network, disk, and database
// models in this repository: service times and queueing delays accrue in
// virtual time, so latency and throughput measurements are exact and
// independent of host machine speed.
//
// Internally events live in a hierarchical timing wheel with a same-instant
// fast lane and a heap fallback for far-future timers (see wheel.go), and
// process goroutines are pooled across process lifetimes, so both the event
// loop and process churn are allocation-free at steady state.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration re-exports time.Duration for convenience; all kernel durations
// are virtual, not wall-clock.
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// event is a pending kernel event: at time t, run fn. A fired event has
// fn == nil; a canceled one has canceled == true. There is no position
// index: cancellation is lazy, and the scheduler drops canceled events
// when it encounters them.
type event struct {
	t        Time
	seq      uint64
	fn       func()
	canceled bool
	pinned   bool // referenced outside the kernel (timers); never recycled
}

// eventHeap is the far-future overflow heap, ordered by (t, seq). Only
// timers beyond the wheel span live here; they migrate into the wheel as
// virtual time approaches.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation kernel. Create one with NewKernel,
// spawn processes with Spawn (detached fire-and-forget work: Go), and drive
// it with Run or RunUntil.
//
// A Kernel is not safe for concurrent use from multiple host goroutines;
// all interaction must happen either before Run or from within simulation
// processes.
type Kernel struct {
	now      Time
	seq      uint64
	pending  int          // scheduled events that are neither fired nor canceled
	fast     ring[*event] // same-instant FIFO lane (events at exactly now)
	wheel    timerWheel
	overflow eventHeap // timers ≥ wheelSpan ahead
	due      []*event  // drained level-0 slot for the current instant, seq order
	dueIdx   int
	free     []*event // recycled event structs (see schedule/RunUntil)
	rng      *rand.Rand
	seed     int64
	live     int   // processes spawned and not yet terminated
	procs    int64 // total processes ever spawned (id source)
	yield    chan struct{}
	failed   any // panic value recovered from a process

	// workerFree pools parked process goroutines (and, for Go, their Proc
	// structs) across process lifetimes. RunUntil releases the pool when a
	// run drains, so idle kernels do not pin goroutines.
	workerFree []*procWorker

	// current is the process executing right now, nil when the kernel
	// itself runs (between events).
	current *Proc

	// windowBreak asks runWindow to return after the current event. Only
	// Shard.Send sets it, when a solo-mode window (see ShardGroup.RunUntil)
	// stages the first cross-shard message and the unbounded window must
	// end before any further event runs.
	windowBreak bool

	// inbox is the external message lane for sharded execution: cross-shard
	// messages merged in at barriers, sorted by (t, source shard, source
	// seq), consumed lazily by runWindow. inboxIdx is the first unfired
	// entry; extShard is the member shard handed to message fns. Keeping
	// messages in their own lane (instead of scheduling a wrapper closure
	// per message into the wheel) makes delivery allocation-free and — more
	// importantly — makes the execution order at each instant a fixed rule
	// ("local events first, then messages in lane order") that is
	// independent of where the window barriers happen to fall, which is
	// what lets the group widen windows adaptively without changing
	// results. Always empty for a kernel outside a multi-shard group.
	inbox    []xmsg
	inboxIdx int
	extShard *Shard

	// waiting tracks processes parked on non-timer conditions (futures,
	// resources, queues) so deadlock reports can name them.
	waiting waitRegistry
}

// NewKernel returns a kernel with virtual time zero and a deterministic
// random stream derived from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		free:  make([]*event, 0, 1024),
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random stream. It must only be
// used from simulation processes or before Run.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Live reports the number of processes that have been spawned and have not
// yet terminated.
func (k *Kernel) Live() int { return k.live }

// schedule enqueues fn to run at time t. Events at or before the current
// instant go to the FIFO fast lane — the dominant wake pattern
// schedule(k.now, p.wake) never touches the wheel — and later events go to
// the wheel, or to the overflow heap beyond the wheel span. The event
// struct comes from the kernel's free list when possible: Sleep-heavy
// workloads churn millions of events per run, and recycling them keeps the
// hot path allocation-free. Events handed out by schedule must not be
// retained by callers — use scheduleTimer for events that are cancelable
// later.
//
//simlint:hotpath
func (k *Kernel) schedule(t Time, fn func()) *event {
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free = k.free[:n-1]
		e.fn, e.canceled, e.pinned = fn, false, false
	} else {
		e = &event{fn: fn}
	}
	e.seq = k.seq
	k.seq++
	k.pending++
	if t <= k.now {
		e.t = k.now
		k.fast.push(e)
	} else {
		e.t = t
		if uint64(t-k.now) < wheelSpan {
			k.wheel.place(e, k.now)
		} else {
			heap.Push(&k.overflow, e)
		}
	}
	return e
}

// scheduleTimer is schedule for events whose pointer escapes the kernel
// (future timeouts). Pinned events are exempt from recycling so a stale
// cancel after the timer fired can never touch a reused struct.
//
//simlint:hotpath
func (k *Kernel) scheduleTimer(t Time, fn func()) *event {
	e := k.schedule(t, fn)
	e.pinned = true
	return e
}

// recycle returns a fired, unpinned event to the free list.
//
//simlint:hotpath
func (k *Kernel) recycle(e *event) {
	if e.pinned {
		return
	}
	e.fn = nil
	k.free = append(k.free, e)
}

// cancel marks a pending event dead. The event stays wherever it is queued
// and is dropped when the scheduler encounters it; only the pending count
// is updated eagerly, so run loops and deadlock detection see the true
// number of live events. Canceling an already-fired event is a no-op.
//
//simlint:hotpath
func (k *Kernel) cancel(e *event) {
	if e == nil || e.canceled || e.fn == nil {
		return
	}
	e.canceled = true
	k.pending--
}

// After schedules fn to run in its own short-lived context d from now.
// fn runs as kernel code (not a process): it must not block. To start
// blocking work later, spawn a process from within fn.
func (k *Kernel) After(d Duration, fn func()) { k.schedule(k.now.Add(d), fn) }

// Proc is a simulation process. Every blocking kernel operation takes the
// process as an explicit handle so that misuse (blocking from non-process
// code) is impossible to express.
type Proc struct {
	k      *Kernel
	id     int64
	name   string
	resume chan struct{} // shared with the worker goroutine running this proc
	src    *Source       // backs rng for pooled (Go) processes only; nil for Spawn
	rng    *rand.Rand
	killed bool
	done   *Future[struct{}] // nil for detached (Go) processes
	parked string            // what the process is blocked on, for deadlock reports

	// unwind is set while the process is parked inside a primitive that
	// may transfer ownership (a Resource capacity unit, a Queue wake) to
	// it. If the process is killed and unwinds out of that park, the
	// kernel calls killedUnwind so the primitive can pass the ownership
	// on instead of leaking it.
	unwind killUnwinder

	// tctx is an opaque trace context (owned by internal/trace). It is
	// inherited by processes this one spawns, so request attribution
	// follows the causal spawn tree without the kernel knowing anything
	// about tracing.
	tctx any

	// wake is the reusable "dispatch me" closure. Every park/unpark cycle
	// schedules it, so allocating it once per process instead of once per
	// event keeps Sleep and resource handoffs off the allocator.
	wake func()
}

// killUnwinder is implemented by blocking primitives (Resource, Queue)
// whose wakers transfer ownership to the process they wake. When a killed
// process unwinds out of a park inside such a primitive, the kernel gives
// the primitive a chance to re-home whatever was transferred.
type killUnwinder interface {
	killedUnwind(p *Proc)
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// ID returns the process's unique id.
func (p *Proc) ID() int64 { return p.id }

// Kernel returns the kernel the process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Rand returns a deterministic random stream private to this process.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Done returns a future that completes when the process terminates. It is
// nil for detached processes started with Kernel.Go.
func (p *Proc) Done() *Future[struct{}] { return p.done }

// TraceCtx returns the process's opaque trace context, nil when the
// process is not attributed to any traced request.
func (p *Proc) TraceCtx() any { return p.tctx }

// SetTraceCtx replaces the process's trace context. Passing nil detaches
// the process from its inherited request attribution — long-lived daemons
// spawned from a request path (flushers, compactors, hint replayers) do
// this so their work is not billed to the op that happened to start them.
func (p *Proc) SetTraceCtx(ctx any) { p.tctx = ctx }

// killedErr is the sentinel panic value used to unwind a killed process.
type killedErr struct{ name string }

func (e killedErr) Error() string { return "sim: process killed: " + e.name }

// procWorker is a pooled process goroutine. Spawning a goroutine plus its
// resume channel for every short-lived fan-out process is the dominant
// cost of process churn, so workers park between process lifetimes and are
// reused. Each worker also lazily owns one reusable Proc struct (pp) that
// Kernel.Go hands out: detached processes expose no handle, so recycling
// the struct is invisible.
type procWorker struct {
	k      *Kernel
	resume chan struct{}
	p      *Proc // process to run on next resume; nil means terminate
	fn     func(*Proc)
	pp     *Proc // reusable Proc for detached (Go) processes
}

func (w *procWorker) loop() {
	for {
		<-w.resume
		if w.p == nil {
			return // pool teardown (drainPools)
		}
		w.run()
	}
}

// run executes one process lifetime on this worker.
func (w *procWorker) run() {
	k := w.k
	p := w.p
	returned := false
	defer func() {
		r := recover()
		switch {
		case r != nil:
			if _, ok := r.(killedErr); ok {
				if p.unwind != nil {
					p.unwind.killedUnwind(p)
					p.unwind = nil
				}
			} else {
				k.failed = r
			}
		case !returned:
			// fn is exiting via runtime.Goexit — in practice t.Fatal or
			// t.Skip called from inside a process. Goexit runs this defer
			// and then kills the goroutine regardless, so the worker must
			// NOT return to the pool: a later resume (reuse or drainPools
			// teardown) would block forever on a dead goroutine.
			w.p = nil
			w.fn = nil
			k.live--
			k.current = nil
			if p.done != nil {
				p.done.Set(struct{}{})
			}
			k.yield <- struct{}{}
			return
		}
		k.live--
		k.current = nil
		if p.done != nil {
			p.done.Set(struct{}{})
		}
		w.p = nil
		w.fn = nil
		// The kernel goroutine is blocked in dispatch until the yield send
		// below, so mutating the pool from here is race-free.
		k.workerFree = append(k.workerFree, w)
		k.yield <- struct{}{}
	}()
	k.current = p
	if w.fn != nil {
		w.fn(p)
	}
	returned = true
}

// getWorker pops a pooled worker or starts a fresh one.
func (k *Kernel) getWorker() *procWorker {
	if n := len(k.workerFree); n > 0 {
		w := k.workerFree[n-1]
		k.workerFree[n-1] = nil
		k.workerFree = k.workerFree[:n-1]
		return w
	}
	w := &procWorker{k: k, resume: make(chan struct{})}
	go w.loop()
	return w
}

// drainPools terminates pooled worker goroutines. Called when a run
// drains: parked goroutines are never garbage-collected, and sweeps build
// hundreds of kernels, so an idle kernel must not pin its pool.
func (k *Kernel) drainPools() {
	for i, w := range k.workerFree {
		w.p = nil
		w.resume <- struct{}{}
		k.workerFree[i] = nil
	}
	k.workerFree = k.workerFree[:0]
}

// Spawn starts fn as a new process and returns its handle. The process
// begins executing at the current virtual time, after the caller blocks or
// returns to the kernel. The goroutine under the process is pooled; the
// Proc itself is freshly allocated because the handle (Done, Kill) may
// outlive the process. For fire-and-forget work that needs no handle, Go
// is cheaper.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	k.procs++
	w := k.getWorker()
	// Spawn keeps the stdlib ALFG source: Spawn processes are the
	// long-lived ones (client threads, server loops) whose draws shape the
	// experiment workloads, and the calibrated experiment results are pinned
	// to these exact streams. Only the pooled fire-and-forget path (Go)
	// trades it for the reseedable small-state Source — see Go.
	p := &Proc{
		k:      k,
		id:     k.procs,
		name:   name,
		resume: w.resume,
		rng:    rand.New(rand.NewSource(procSeed(k.seed, k.procs))),
	}
	if k.current != nil {
		p.tctx = k.current.tctx
	}
	p.wake = func() { k.dispatch(p) }
	p.done = NewFuture[struct{}](k)
	w.p = p
	w.fn = fn
	k.live++
	k.schedule(k.now, p.wake)
	return p
}

// Go starts fn as a detached process: identical scheduling, naming, and
// per-process seed derivation to Spawn, but no handle is returned — so the
// Proc struct, its RNG, and the goroutine underneath are all recycled from
// the kernel's pool, making a steady-state Go allocation-free. This is the
// right call for the fan-out storms the database models produce (replica
// writes, read fans, pipeline legs): millions of short-lived processes
// whose Done future nobody ever awaited.
//
// Unlike Spawn, the RNG is a reseedable small-state Source (32 bytes,
// xoshiro256++) instead of the stdlib's ~5 KB warm-up-heavy ALFG — that is
// what makes recycling allocation-free. The streams are deterministic and
// procSeed-derived either way, just different generators; Go processes in
// the database models draw from theirs only off the performance paths
// (audit-mode jitter, trace span ids).
//
// The *Proc passed to fn must not be retained after fn returns.
func (k *Kernel) Go(name string, fn func(p *Proc)) {
	k.procs++
	w := k.getWorker()
	p := w.pp
	if p == nil {
		src := NewSource(uint64(procSeed(k.seed, k.procs)))
		p = &Proc{k: k, resume: w.resume, src: src, rng: rand.New(src)}
		p.wake = func() { k.dispatch(p) }
		w.pp = p
	} else {
		p.src.Reseed(uint64(procSeed(k.seed, k.procs)))
	}
	p.id = k.procs
	p.name = name
	p.killed = false
	p.done = nil
	p.parked = ""
	p.unwind = nil
	p.tctx = nil
	if k.current != nil {
		p.tctx = k.current.tctx
	}
	w.p = p
	w.fn = fn
	k.live++
	k.schedule(k.now, p.wake)
}

// procSeed derives the RNG seed for process id from the kernel seed using a
// full splitmix64 finalizer. A plain xor of seed with id*constant (and in
// particular `id*C>>1`, which shifts after the multiply) leaves neighbouring
// process ids with correlated low bits; the finalizer's xor-shift-multiply
// rounds diffuse every input bit across the whole output word.
func procSeed(seed, id int64) int64 {
	x := uint64(seed) + (uint64(id) * 0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}

// dispatch hands control to p until it parks or terminates.
//
//simlint:hotpath
func (k *Kernel) dispatch(p *Proc) {
	k.current = p
	p.resume <- struct{}{}
	<-k.yield
	if k.failed != nil {
		panic(k.failed)
	}
}

// park blocks the calling process until something dispatches it again.
// why describes what the process is waiting on (used in deadlock reports).
// The label must be a static string — see Sleep.
//
//simlint:hotpath
func (p *Proc) park(why string) {
	p.parked = why
	p.k.current = nil
	p.k.yield <- struct{}{}
	<-p.resume
	p.parked = ""
	p.k.current = p
	if p.killed {
		panic(killedErr{p.name})
	}
}

// Sleep suspends the process for d of virtual time.
//
// The park label is the static string "sleep" rather than a formatted
// "sleep(5ms)": sleeping processes always have a pending wake event, so they
// can never appear in a deadlock report, and formatting the label on every
// park was the single largest allocation in the kernel's hot path. The
// //simlint:hotpath marker makes simlint reject defer, closures, fmt,
// string concatenation, and interface boxing here, so the 0 allocs/op of
// BenchmarkKernelSleep is enforced at build time, not just measured.
//
//simlint:hotpath
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.k.schedule(p.k.now.Add(d), p.wake)
	p.park("sleep")
}

// Yield reschedules the process at the current time, letting other pending
// events at this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Kill marks the process for termination. The next time it would resume
// from a blocking operation it unwinds and terminates instead. Killing a
// process blocked forever (e.g. on a future that is never set) does not by
// itself wake it.
func (p *Proc) Kill() {
	p.killed = true
}

// DeadlockError reports that the simulation can make no further progress
// while processes are still live.
type DeadlockError struct {
	Time Time
	// Blocked lists the live processes and what each is waiting on.
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked: %v",
		e.Time, len(e.Blocked), e.Blocked)
}

// Run executes events until the queue is empty. It returns a *DeadlockError
// if live processes remain blocked with no pending events, and nil when the
// simulation drained cleanly. A panic inside a process propagates to the
// caller of Run.
func (k *Kernel) Run() error { return k.RunUntil(Time(1<<63 - 1)) }

// RunUntil executes events with time ≤ limit. Events beyond the limit stay
// queued, and reaching the limit is not a deadlock.
//
// This is the kernel event loop: everything inside the for is the hottest
// code in the repository, and the //simlint:hotpath marker keeps it
// allocation-free by construction (no defer, closures, fmt, string
// concatenation, or interface boxing).
//
//simlint:hotpath
func (k *Kernel) RunUntil(limit Time) error {
	if k.now > limit {
		k.now = limit
		return nil
	}
	for k.pending > 0 {
		e := k.pop(limit)
		if e == nil {
			return nil
		}
		fn := e.fn
		e.fn = nil
		k.pending--
		k.recycle(e)
		// Every scheduled event carries a fn (schedule never stores nil);
		// a nil here is kernel corruption, and the panic is the best
		// possible report — a nil guard would silently drop the event.
		//simlint:ignore hookguard event fns are set by schedule; nil means kernel corruption and must panic
		fn()
	}
	if k.live > 0 {
		return &DeadlockError{Time: k.now, Blocked: k.blockedNames()}
	}
	k.drainPools()
	return nil
}

// runWindow is the shard-group member's event loop: identical event
// execution to RunUntil, but reaching the limit with live processes and no
// local events is not a deadlock (a cross-shard message may still arrive),
// the worker pool is not drained — both become group-level decisions
// (ShardGroup.finish) — and the external message lane (k.inbox) is
// interleaved with local events. k.now never moves backward.
//
// The lane rule: at each instant, local events run before lane messages,
// and messages fire in lane order; work a message schedules at its own
// instant goes to the fast lane and runs before the next message. A lane
// message at time t only ever arrives while the kernel is strictly before
// t (the conservative window guarantee), so this order is a pure function
// of the model — no matter how the group chops execution into windows.
//
//simlint:hotpath
func (k *Kernel) runWindow(limit Time) {
	if k.now > limit {
		return
	}
	k.windowBreak = false
	for k.pending > 0 {
		popTo := limit
		msgDue := false
		if k.inboxIdx < len(k.inbox) {
			if mt := k.inbox[k.inboxIdx].t; mt <= limit {
				popTo, msgDue = mt, true
			}
		}
		e := k.pop(popTo)
		if e == nil {
			if !msgDue {
				return
			}
			// No local event at or before the lane head: fire the message.
			// pop may have left now short of the message time when the
			// wheel ran dry, so clamp forward explicitly.
			if k.now < popTo {
				k.now = popTo
			}
			m := &k.inbox[k.inboxIdx]
			k.inboxIdx++
			k.pending--
			mfn := m.fn
			m.fn = nil
			//simlint:ignore hookguard Send rejects nil fns at enqueue, so every lane message carries one
			mfn(k.extShard)
			if k.windowBreak {
				k.windowBreak = false
				return
			}
			continue
		}
		fn := e.fn
		e.fn = nil
		k.pending--
		k.recycle(e)
		// See RunUntil: a nil fn is kernel corruption and must panic.
		//simlint:ignore hookguard event fns are set by schedule; nil means kernel corruption and must panic
		fn()
		if k.windowBreak {
			k.windowBreak = false
			return
		}
	}
}

// nextPendingBound returns a lower bound on the time of the earliest
// pending event, and whether any event is pending at all. The bound is
// exact for fast-lane, due-batch, and overflow events; for wheel events it
// is the occupied slot's lower bound, which is never later than the event
// itself — good enough for a conservative window start.
func (k *Kernel) nextPendingBound() (Time, bool) {
	if k.pending == 0 {
		return 0, false
	}
	if k.dueIdx < len(k.due) || k.fast.len() > 0 {
		return k.now, true
	}
	t := Time(1<<63 - 1)
	if k.wheel.count > 0 {
		if _, lb := k.wheel.next(k.now); lb < t {
			t = lb
		}
	}
	if len(k.overflow) > 0 && k.overflow[0].t < t {
		t = k.overflow[0].t
	}
	// Undelivered lane messages are pending work too, and their times are
	// exact (the lane is sorted, so the head is the earliest).
	if k.inboxIdx < len(k.inbox) && k.inbox[k.inboxIdx].t < t {
		t = k.inbox[k.inboxIdx].t
	}
	return t, true
}

// blockedNames formats the parked-process inventory for DeadlockError.
// It runs once, after the event loop has already failed — a sanctioned
// allocation boundary off RunUntil's hot path.
//
//simlint:coldpath
func (k *Kernel) blockedNames() []string {
	// The kernel does not keep a registry of all processes (they are
	// reachable from their own goroutines only), so report count-level
	// information plus the names gathered through parked labels captured
	// at park time via the wait registry.
	names := make([]string, 0, len(k.waiting))
	for p := range k.waiting {
		names = append(names, fmt.Sprintf("%s(%s)", p.name, p.parked))
	}
	sort.Strings(names)
	return names
}

// waitRegistry records processes parked on futures, resources and queues.
// Timer-based parks (Sleep) always have a pending event and never deadlock.
type waitRegistry = map[*Proc]struct{}

func (k *Kernel) noteWaiting(p *Proc) {
	if k.waiting == nil {
		k.waiting = make(waitRegistry)
	}
	k.waiting[p] = struct{}{}
}

func (k *Kernel) noteRunnable(p *Proc) {
	delete(k.waiting, p)
}
