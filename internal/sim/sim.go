// Package sim implements a deterministic discrete-event simulation kernel.
//
// Simulated activities run as cooperatively scheduled goroutines called
// processes. Exactly one process executes at a time; a process runs until it
// blocks on the kernel (Sleep, Future.Await, Resource.Acquire, Queue.Pop,
// ...) and the kernel then advances virtual time to the next pending event.
// Because scheduling is cooperative and all ties are broken by a monotonic
// sequence number, a simulation is bit-reproducible given its seed.
//
// The kernel is the substrate for the cluster, network, disk, and database
// models in this repository: service times and queueing delays accrue in
// virtual time, so latency and throughput measurements are exact and
// independent of host machine speed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration re-exports time.Duration for convenience; all kernel durations
// are virtual, not wall-clock.
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// event is a pending kernel event: at time t, run fn.
type event struct {
	t        Time
	seq      uint64
	fn       func()
	canceled bool
	pinned   bool // referenced outside the kernel (timers); never recycled
	index    int  // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation kernel. Create one with NewKernel,
// spawn processes with Spawn, and drive it with Run or RunUntil.
//
// A Kernel is not safe for concurrent use from multiple host goroutines;
// all interaction must happen either before Run or from within simulation
// processes.
type Kernel struct {
	now    Time
	seq    uint64
	queue  eventHeap
	free   []*event // recycled event structs (see schedule/RunUntil)
	rng    *rand.Rand
	seed   int64
	live   int   // processes spawned and not yet terminated
	procs  int64 // total processes ever spawned (id source)
	yield  chan struct{}
	failed any // panic value recovered from a process

	// current is the process executing right now, nil when the kernel
	// itself runs (between events).
	current *Proc

	// waiting tracks processes parked on non-timer conditions (futures,
	// resources, queues) so deadlock reports can name them.
	waiting waitRegistry
}

// NewKernel returns a kernel with virtual time zero and a deterministic
// random stream derived from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		queue: make(eventHeap, 0, 1024),
		free:  make([]*event, 0, 1024),
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random stream. It must only be
// used from simulation processes or before Run.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Live reports the number of processes that have been spawned and have not
// yet terminated.
func (k *Kernel) Live() int { return k.live }

// schedule enqueues fn to run at time t. The event struct comes from the
// kernel's free list when possible: Sleep-heavy workloads churn millions of
// events per run, and recycling them keeps the hot path allocation-free.
// Events handed out by schedule must not be retained by callers — use
// scheduleTimer for events that are cancelable later.
//
//simlint:hotpath
func (k *Kernel) schedule(t Time, fn func()) *event {
	if t < k.now {
		t = k.now
	}
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free = k.free[:n-1]
		e.t, e.seq, e.fn, e.canceled, e.pinned = t, k.seq, fn, false, false
	} else {
		e = &event{t: t, seq: k.seq, fn: fn}
	}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// scheduleTimer is schedule for events whose pointer escapes the kernel
// (future timeouts). Pinned events are exempt from recycling so a stale
// cancel after the timer fired can never touch a reused struct.
//
//simlint:hotpath
func (k *Kernel) scheduleTimer(t Time, fn func()) *event {
	e := k.schedule(t, fn)
	e.pinned = true
	return e
}

// recycle returns a fired, unpinned event to the free list.
//
//simlint:hotpath
func (k *Kernel) recycle(e *event) {
	if e.pinned {
		return
	}
	e.fn = nil
	k.free = append(k.free, e)
}

// cancel removes a pending event. Canceling an already-fired event is a
// no-op.
//
//simlint:hotpath
func (k *Kernel) cancel(e *event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&k.queue, e.index)
}

// After schedules fn to run in its own short-lived context d from now.
// fn runs as kernel code (not a process): it must not block. To start
// blocking work later, spawn a process from within fn.
func (k *Kernel) After(d Duration, fn func()) { k.schedule(k.now.Add(d), fn) }

// Proc is a simulation process. Every blocking kernel operation takes the
// process as an explicit handle so that misuse (blocking from non-process
// code) is impossible to express.
type Proc struct {
	k      *Kernel
	id     int64
	name   string
	resume chan struct{}
	rng    *rand.Rand
	killed bool
	done   *Future[struct{}]
	parked string // what the process is blocked on, for deadlock reports

	// tctx is an opaque trace context (owned by internal/trace). It is
	// inherited by processes this one spawns, so request attribution
	// follows the causal spawn tree without the kernel knowing anything
	// about tracing.
	tctx any

	// wake is the reusable "dispatch me" closure. Every park/unpark cycle
	// schedules it, so allocating it once per process instead of once per
	// event keeps Sleep and resource handoffs off the allocator.
	wake func()
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// ID returns the process's unique id.
func (p *Proc) ID() int64 { return p.id }

// Kernel returns the kernel the process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Rand returns a deterministic random stream private to this process.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Done returns a future that completes when the process terminates.
func (p *Proc) Done() *Future[struct{}] { return p.done }

// TraceCtx returns the process's opaque trace context, nil when the
// process is not attributed to any traced request.
func (p *Proc) TraceCtx() any { return p.tctx }

// SetTraceCtx replaces the process's trace context. Passing nil detaches
// the process from its inherited request attribution — long-lived daemons
// spawned from a request path (flushers, compactors, hint replayers) do
// this so their work is not billed to the op that happened to start them.
func (p *Proc) SetTraceCtx(ctx any) { p.tctx = ctx }

// killedErr is the sentinel panic value used to unwind a killed process.
type killedErr struct{ name string }

func (e killedErr) Error() string { return "sim: process killed: " + e.name }

// Spawn starts fn as a new process. The process begins executing at the
// current virtual time, after the caller blocks or returns to the kernel.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	k.procs++
	p := &Proc{
		k:      k,
		id:     k.procs,
		name:   name,
		resume: make(chan struct{}),
		rng:    rand.New(rand.NewSource(procSeed(k.seed, k.procs))),
	}
	if k.current != nil {
		p.tctx = k.current.tctx
	}
	p.wake = func() { k.dispatch(p) }
	p.done = NewFuture[struct{}](k)
	k.live++
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedErr); !ok {
					k.failed = r
				}
			}
			k.live--
			k.current = nil
			p.done.Set(struct{}{})
			k.yield <- struct{}{}
		}()
		k.current = p
		fn(p)
	}()
	k.schedule(k.now, p.wake)
	return p
}

// procSeed derives the RNG seed for process id from the kernel seed using a
// full splitmix64 finalizer. A plain xor of seed with id*constant (and in
// particular `id*C>>1`, which shifts after the multiply) leaves neighbouring
// process ids with correlated low bits; the finalizer's xor-shift-multiply
// rounds diffuse every input bit across the whole output word.
func procSeed(seed, id int64) int64 {
	x := uint64(seed) + (uint64(id) * 0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}

// dispatch hands control to p until it parks or terminates.
//
//simlint:hotpath
func (k *Kernel) dispatch(p *Proc) {
	k.current = p
	p.resume <- struct{}{}
	<-k.yield
	if k.failed != nil {
		panic(k.failed)
	}
}

// park blocks the calling process until something dispatches it again.
// why describes what the process is waiting on (used in deadlock reports).
// The label must be a static string — see Sleep.
//
//simlint:hotpath
func (p *Proc) park(why string) {
	p.parked = why
	p.k.current = nil
	p.k.yield <- struct{}{}
	<-p.resume
	p.parked = ""
	p.k.current = p
	if p.killed {
		panic(killedErr{p.name})
	}
}

// Sleep suspends the process for d of virtual time.
//
// The park label is the static string "sleep" rather than a formatted
// "sleep(5ms)": sleeping processes always have a pending wake event, so they
// can never appear in a deadlock report, and formatting the label on every
// park was the single largest allocation in the kernel's hot path. The
// //simlint:hotpath marker makes simlint reject defer, closures, fmt,
// string concatenation, and interface boxing here, so the 0 allocs/op of
// BenchmarkKernelSleep is enforced at build time, not just measured.
//
//simlint:hotpath
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.k.schedule(p.k.now.Add(d), p.wake)
	p.park("sleep")
}

// Yield reschedules the process at the current time, letting other pending
// events at this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Kill marks the process for termination. The next time it would resume
// from a blocking operation it unwinds and terminates instead. Killing a
// process blocked forever (e.g. on a future that is never set) does not by
// itself wake it.
func (p *Proc) Kill() {
	p.killed = true
}

// DeadlockError reports that the simulation can make no further progress
// while processes are still live.
type DeadlockError struct {
	Time Time
	// Blocked lists the live processes and what each is waiting on.
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked: %v",
		e.Time, len(e.Blocked), e.Blocked)
}

// Run executes events until the queue is empty. It returns a *DeadlockError
// if live processes remain blocked with no pending events, and nil when the
// simulation drained cleanly. A panic inside a process propagates to the
// caller of Run.
func (k *Kernel) Run() error { return k.RunUntil(Time(1<<63 - 1)) }

// RunUntil executes events with time ≤ limit. Events beyond the limit stay
// queued, and reaching the limit is not a deadlock.
//
// This is the kernel event loop: everything inside the for is the hottest
// code in the repository, and the //simlint:hotpath marker keeps it
// allocation-free by construction (no defer, closures, fmt, string
// concatenation, or interface boxing).
//
//simlint:hotpath
func (k *Kernel) RunUntil(limit Time) error {
	for len(k.queue) > 0 {
		e := k.queue[0]
		if e.t > limit {
			k.now = limit
			return nil
		}
		heap.Pop(&k.queue)
		if e.canceled {
			k.recycle(e)
			continue
		}
		k.now = e.t
		fn := e.fn
		k.recycle(e)
		// Every scheduled event carries a fn (schedule never stores nil);
		// a nil here is kernel corruption, and the panic is the best
		// possible report — a nil guard would silently drop the event.
		//simlint:ignore hookguard event fns are set by schedule; nil means kernel corruption and must panic
		fn()
	}
	if k.live > 0 {
		return &DeadlockError{Time: k.now, Blocked: k.blockedNames()}
	}
	return nil
}

func (k *Kernel) blockedNames() []string {
	// The kernel does not keep a registry of all processes (they are
	// reachable from their own goroutines only), so report count-level
	// information plus the names gathered through parked labels captured
	// at park time via the wait registry.
	names := make([]string, 0, len(k.waiting))
	for p := range k.waiting {
		names = append(names, fmt.Sprintf("%s(%s)", p.name, p.parked))
	}
	sort.Strings(names)
	return names
}

// waitRegistry records processes parked on futures, resources and queues.
// Timer-based parks (Sleep) always have a pending event and never deadlock.
type waitRegistry = map[*Proc]struct{}

func (k *Kernel) noteWaiting(p *Proc) {
	if k.waiting == nil {
		k.waiting = make(waitRegistry)
	}
	k.waiting[p] = struct{}{}
}

func (k *Kernel) noteRunnable(p *Proc) {
	delete(k.waiting, p)
}
