package sim_test

import (
	"testing"

	"cloudbench/internal/sim"
)

// benchScheduleWheel measures per-event dispatch cost with `depth` pending
// far-future timers as ballast. With the old binary heap every push/pop
// paid O(log depth) comparisons through interface dispatch; the timing
// wheel keeps the sleeper wake/sleep cycle O(1) regardless of how much is
// pending behind it.
func benchScheduleWheel(b *testing.B, depth int) {
	k := sim.NewKernel(1)
	// Ballast: `depth` pending timers spread far in the future so they
	// stay queued for the whole measurement.
	base := sim.Duration(1_000_000_000) // 1s
	for i := 0; i < depth; i++ {
		k.After(base+sim.Duration(i)*1000, func() {})
	}
	stop := false
	for i := 0; i < 16; i++ {
		k.Spawn("sleeper", func(p *sim.Proc) {
			for !stop {
				p.Sleep(25)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.RunUntil(sim.Time((i + 1) * 1_000)); err != nil {
			b.Fatal(err)
		}
	}
	stop = true
	b.StopTimer()
}

func BenchmarkKernelScheduleWheel1k(b *testing.B)   { benchScheduleWheel(b, 1_000) }
func BenchmarkKernelScheduleWheel100k(b *testing.B) { benchScheduleWheel(b, 100_000) }
func BenchmarkKernelScheduleWheel1M(b *testing.B)   { benchScheduleWheel(b, 1_000_000) }

// BenchmarkSpawnChurn measures a fan-out storm of short-lived detached
// processes — the replica-write/read-fan pattern of the database models.
// With pooled workers and Procs (Kernel.Go) this is allocation-free at
// steady state.
func BenchmarkSpawnChurn(b *testing.B) {
	k := sim.NewKernel(1)
	stop := false
	k.Spawn("driver", func(p *sim.Proc) {
		for !stop {
			for i := 0; i < 8; i++ {
				k.Go("w", func(q *sim.Proc) { q.Sleep(10) })
			}
			p.Sleep(10)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.RunUntil(sim.Time((i + 1) * 100)); err != nil {
			b.Fatal(err)
		}
	}
	stop = true
	b.StopTimer()
}

// BenchmarkQueueRing measures the producer/consumer hot cycle through
// Queue's ring buffers: a pusher feeding a popping server process.
func BenchmarkQueueRing(b *testing.B) {
	k := sim.NewKernel(1)
	q := sim.NewQueue[int](k)
	stop := false
	k.Spawn("producer", func(p *sim.Proc) {
		for !stop {
			for i := 0; i < 4; i++ {
				q.Push(i)
			}
			p.Sleep(5)
		}
	})
	k.Spawn("consumer", func(p *sim.Proc) {
		for !stop {
			q.Pop(p)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.RunUntil(sim.Time((i + 1) * 100)); err != nil {
			b.Fatal(err)
		}
	}
	stop = true
	b.StopTimer()
}
