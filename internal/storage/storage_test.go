package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cloudbench/internal/cluster"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

func TestSkiplistInsertAndGet(t *testing.T) {
	s := newSkiplist(rand.New(rand.NewSource(1)))
	keys := []kv.Key{"m", "a", "z", "b", "q"}
	for i, k := range keys {
		row := s.GetOrCreate(k)
		row.Apply(kv.Record{"f": kv.SizedValue(i + 1)}, kv.Version(i+1))
	}
	if s.Len() != len(keys) {
		t.Fatalf("len = %d", s.Len())
	}
	for i, k := range keys {
		row := s.Get(k)
		if row == nil || row.Cells["f"].Ver != kv.Version(i+1) {
			t.Fatalf("get %q = %+v", k, row)
		}
	}
	if s.Get("nope") != nil {
		t.Fatal("missing key should be nil")
	}
}

func TestSkiplistGetOrCreateIsIdempotent(t *testing.T) {
	s := newSkiplist(rand.New(rand.NewSource(1)))
	a := s.GetOrCreate("k")
	b := s.GetOrCreate("k")
	if a != b || s.Len() != 1 {
		t.Fatal("GetOrCreate created a duplicate")
	}
}

func TestSkiplistIterationSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		s := newSkiplist(rand.New(rand.NewSource(2)))
		seen := map[kv.Key]bool{}
		for _, r := range raw {
			k := kv.Key(fmt.Sprintf("key%05d", r))
			s.GetOrCreate(k)
			seen[k] = true
		}
		var got []kv.Key
		for it := s.First(); it.Valid(); it.Next() {
			got = append(got, it.Key())
		}
		if len(got) != len(seen) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSkiplistSeek(t *testing.T) {
	s := newSkiplist(rand.New(rand.NewSource(1)))
	for _, k := range []kv.Key{"b", "d", "f"} {
		s.GetOrCreate(k)
	}
	it := s.Seek("c")
	if !it.Valid() || it.Key() != "d" {
		t.Fatalf("seek(c) = %v", it.Key())
	}
	it = s.Seek("g")
	if it.Valid() {
		t.Fatal("seek past end should be invalid")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1000, 10)
	for i := 0; i < 1000; i++ {
		b.Add(kv.Key(fmt.Sprintf("user%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !b.MayContain(kv.Key(fmt.Sprintf("user%d", i))) {
			t.Fatalf("false negative for user%d", i)
		}
	}
}

func TestBloomFalsePositiveRateReasonable(t *testing.T) {
	b := NewBloom(10000, 10)
	for i := 0; i < 10000; i++ {
		b.Add(kv.Key(fmt.Sprintf("user%d", i)))
	}
	fp := 0
	probes := 10000
	for i := 0; i < probes; i++ {
		if b.MayContain(kv.Key(fmt.Sprintf("absent%d", i))) {
			fp++
		}
	}
	if rate := float64(fp) / float64(probes); rate > 0.05 {
		t.Fatalf("false positive rate = %.3f, want < 0.05", rate)
	}
}

func TestRowApplyLWWPerCell(t *testing.T) {
	r := NewRow()
	r.Apply(kv.Record{"a": kv.SizedValue(1), "b": kv.SizedValue(1)}, 10)
	r.Apply(kv.Record{"a": kv.SizedValue(2)}, 20)
	r.Apply(kv.Record{"b": kv.SizedValue(3)}, 5) // stale, must lose
	if r.Cells["a"].Ver != 20 || r.Cells["b"].Ver != 10 {
		t.Fatalf("cells = %+v", r.Cells)
	}
}

func TestRowTombstoneShadowsOlderCells(t *testing.T) {
	r := NewRow()
	r.Apply(kv.Record{"a": kv.SizedValue(1)}, 10)
	r.Delete(15)
	if r.Live() {
		t.Fatal("row should be dead")
	}
	if r.Record() != nil {
		t.Fatal("record of dead row should be nil")
	}
	r.Apply(kv.Record{"a": kv.SizedValue(2)}, 20)
	if !r.Live() || r.Record()["a"].Bytes() != 2 {
		t.Fatal("re-insert after delete should be visible")
	}
	if r.Version() != 20 {
		t.Fatalf("version = %d", r.Version())
	}
}

func TestRowMergeFromCommutative(t *testing.T) {
	mk := func() (*Row, *Row) {
		a, b := NewRow(), NewRow()
		a.Apply(kv.Record{"x": kv.SizedValue(1), "y": kv.SizedValue(1)}, 10)
		b.Apply(kv.Record{"x": kv.SizedValue(2)}, 20)
		b.Delete(5)
		return a, b
	}
	a1, b1 := mk()
	a1.MergeFrom(b1)
	a2, b2 := mk()
	b2.MergeFrom(a2)
	if a1.Version() != b2.Version() || a1.Cells["x"].Ver != b2.Cells["x"].Ver ||
		a1.Cells["y"].Ver != b2.Cells["y"].Ver || a1.Tomb != b2.Tomb {
		t.Fatalf("merge not commutative: %+v vs %+v", a1, b2)
	}
}

func TestBuildTableAndGet(t *testing.T) {
	var entries []TableEntry
	for i := 0; i < 500; i++ {
		r := NewRow()
		r.Apply(kv.Record{"f": kv.SizedValue(100)}, kv.Version(i+1))
		entries = append(entries, TableEntry{Key: kv.Key(fmt.Sprintf("user%06d", i)), Row: r})
	}
	tbl := BuildTable(1, entries, 4<<10, 10)
	if tbl.Len() != 500 || tbl.Blocks() < 2 {
		t.Fatalf("len=%d blocks=%d", tbl.Len(), tbl.Blocks())
	}

	k := sim.NewKernel(1)
	d := cluster.NewDisk(k, "d", cluster.DefaultDiskConfig())
	io := LocalIO{Disk: d}
	cache := NewBlockCache(1 << 20)
	k.Spawn("reader", func(p *sim.Proc) {
		for i := 0; i < 500; i += 37 {
			key := kv.Key(fmt.Sprintf("user%06d", i))
			row := tbl.Get(p, io, cache, key)
			if row == nil || row.Version() != kv.Version(i+1) {
				t.Errorf("get %s = %+v", key, row)
			}
		}
		if tbl.Get(p, io, cache, "absent") != nil {
			t.Error("absent key found")
		}
		if tbl.Get(p, io, cache, "aaa") != nil {
			t.Error("key before table found")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d.ReadOps == 0 {
		t.Fatal("no disk reads charged")
	}
}

func TestTableIterChargesPerBlock(t *testing.T) {
	var entries []TableEntry
	for i := 0; i < 200; i++ {
		r := NewRow()
		r.Apply(kv.Record{"f": kv.SizedValue(100)}, 1)
		entries = append(entries, TableEntry{Key: kv.Key(fmt.Sprintf("user%06d", i)), Row: r})
	}
	tbl := BuildTable(1, entries, 2<<10, 10) // ~16 rows per block
	k := sim.NewKernel(1)
	d := cluster.NewDisk(k, "d", cluster.DefaultDiskConfig())
	io := LocalIO{Disk: d}
	k.Spawn("scanner", func(p *sim.Proc) {
		n := 0
		for it := tbl.Iter(p, io, nil, "user000050"); it.Valid() && n < 40; it.Next() {
			n++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 40 rows over ~16-row blocks = 3-4 block reads, far fewer than 40.
	if d.ReadOps < 2 || d.ReadOps > 6 {
		t.Fatalf("read ops = %d, want 2..6", d.ReadOps)
	}
}

func TestBlockCacheLRUEviction(t *testing.T) {
	c := NewBlockCache(100)
	if c.Touch(1, 0, 60) {
		t.Fatal("first touch should miss")
	}
	if !c.Touch(1, 0, 60) {
		t.Fatal("second touch should hit")
	}
	c.Touch(1, 1, 60) // evicts block 0 (over budget)
	if c.Contains(1, 0) {
		t.Fatal("block 0 should be evicted")
	}
	if !c.Contains(1, 1) {
		t.Fatal("block 1 should remain")
	}
	if c.HitRate() <= 0 {
		t.Fatal("hit rate should be positive")
	}
}

func TestBlockCacheDisabled(t *testing.T) {
	c := NewBlockCache(0)
	c.Touch(1, 0, 10)
	if c.Touch(1, 0, 10) {
		t.Fatal("disabled cache must always miss")
	}
}

func TestWALGroupCommit(t *testing.T) {
	k := sim.NewKernel(1)
	d := cluster.NewDisk(k, "wal", cluster.DefaultDiskConfig())
	w := NewWAL(k, DiskLog{Disk: d})
	const writers = 20
	for i := 0; i < writers; i++ {
		k.Spawn("writer", func(p *sim.Proc) {
			w.Append(p, 100)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Appends != writers {
		t.Fatalf("appends = %d", w.Appends)
	}
	if w.Batches >= writers {
		t.Fatalf("batches = %d, want group commit (< %d)", w.Batches, writers)
	}
	if w.BytesLogged != writers*100 {
		t.Fatalf("bytes = %d", w.BytesLogged)
	}
}

func newTestEngine(t *testing.T, k *sim.Kernel, cfg Config) (*Engine, *cluster.Disk) {
	t.Helper()
	d := cluster.NewDisk(k, "d", cluster.DefaultDiskConfig())
	return NewEngine(k, cfg, LocalIO{Disk: d}, DiskLog{Disk: d}, 42), d
}

func TestEngineWriteReadBack(t *testing.T) {
	k := sim.NewKernel(1)
	e, _ := newTestEngine(t, k, DefaultConfig())
	k.Spawn("client", func(p *sim.Proc) {
		e.Apply(p, "user1", kv.Record{"f0": kv.SizedValue(100)}, 1)
		e.Apply(p, "user1", kv.Record{"f1": kv.SizedValue(200)}, 2)
		row := e.Get(p, "user1")
		if row == nil {
			t.Fatal("missing row")
		}
		rec := row.Record()
		if rec["f0"].Bytes() != 100 || rec["f1"].Bytes() != 200 {
			t.Fatalf("rec = %v", rec)
		}
		if e.Get(p, "ghost") != nil {
			t.Fatal("ghost key present")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineFlushAndReadFromTable(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.MemtableBytes = 10 << 10 // tiny: force flushes
	e, _ := newTestEngine(t, k, cfg)
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			e.Apply(p, kv.Key(fmt.Sprintf("user%06d", i)), kv.Record{"f": kv.SizedValue(100)}, kv.Version(i+1))
		}
		p.Sleep(2e9) // let flushes finish
		if e.Flushes == 0 {
			t.Error("expected flushes")
		}
		for i := 0; i < 500; i += 61 {
			row := e.Get(p, kv.Key(fmt.Sprintf("user%06d", i)))
			if row == nil || !row.Live() {
				t.Errorf("lost key user%06d after flush", i)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineCompactionReducesTables(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.MemtableBytes = 8 << 10
	cfg.CompactMinTables = 3
	e, _ := newTestEngine(t, k, cfg)
	k.Spawn("client", func(p *sim.Proc) {
		for round := 0; round < 6; round++ {
			for i := 0; i < 60; i++ {
				key := kv.Key(fmt.Sprintf("user%06d", i))
				e.Apply(p, key, kv.Record{"f": kv.SizedValue(200)}, kv.Version(round*1000+i))
			}
			p.Sleep(5e8)
		}
		p.Sleep(5e9)
		if e.Compactions == 0 {
			t.Error("expected compactions")
		}
		// All data still present with the newest version.
		row := e.Get(p, "user000000")
		if row == nil || row.Version() != kv.Version(5000) {
			t.Errorf("row after compaction = %+v", row)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDeleteHidesKey(t *testing.T) {
	k := sim.NewKernel(1)
	e, _ := newTestEngine(t, k, DefaultConfig())
	k.Spawn("client", func(p *sim.Proc) {
		e.Apply(p, "user1", kv.Record{"f": kv.SizedValue(10)}, 1)
		e.ApplyDelete(p, "user1", 2)
		row := e.Get(p, "user1")
		if row == nil {
			t.Fatal("tombstone must be returned for reconciliation")
		}
		if row.Live() {
			t.Fatal("deleted row is visible")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineScanMergesLevels(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.MemtableBytes = 6 << 10
	e, _ := newTestEngine(t, k, cfg)
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			e.Apply(p, kv.Key(fmt.Sprintf("user%06d", i)), kv.Record{"f": kv.SizedValue(50)}, kv.Version(i+1))
		}
		p.Sleep(2e9)
		// Overwrite a few in the new memtable.
		e.Apply(p, "user000010", kv.Record{"f": kv.SizedValue(999)}, 10_000)
		e.ApplyDelete(p, "user000011", 10_001)

		rows := e.Scan(p, "user000009", 5)
		if len(rows) != 5 {
			t.Fatalf("scan returned %d rows", len(rows))
		}
		if rows[0].Key != "user000009" || rows[1].Key != "user000010" {
			t.Fatalf("keys = %v %v", rows[0].Key, rows[1].Key)
		}
		if rows[1].Row.Record()["f"].Bytes() != 999 {
			t.Fatal("scan did not see newest version")
		}
		// user000011 deleted: next should be user000012.
		if rows[2].Key != "user000012" {
			t.Fatalf("deleted key not skipped: %v", rows[2].Key)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineScanEmptyRange(t *testing.T) {
	k := sim.NewKernel(1)
	e, _ := newTestEngine(t, k, DefaultConfig())
	k.Spawn("client", func(p *sim.Proc) {
		if rows := e.Scan(p, "z", 10); len(rows) != 0 {
			t.Errorf("scan = %v", rows)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEnginePropertyRandomOpsMatchModel(t *testing.T) {
	// Property test: random interleaving of writes/deletes across flush
	// boundaries always reads back what a flat map model predicts.
	k := sim.NewKernel(99)
	cfg := DefaultConfig()
	cfg.MemtableBytes = 4 << 10
	cfg.CompactMinTables = 3
	e, _ := newTestEngine(t, k, cfg)
	k.Spawn("client", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(7))
		model := map[kv.Key]kv.Version{} // latest live version, 0 = deleted/absent
		ver := kv.Version(0)
		for op := 0; op < 2000; op++ {
			key := kv.Key(fmt.Sprintf("user%03d", rng.Intn(100)))
			ver++
			switch rng.Intn(10) {
			case 0:
				e.ApplyDelete(p, key, ver)
				model[key] = 0
			default:
				e.Apply(p, key, kv.Record{"f": kv.SizedValue(int(ver%97) + 1)}, ver)
				model[key] = ver
			}
			if op%100 == 0 {
				p.Sleep(3e8) // let background work interleave
			}
		}
		p.Sleep(5e9)
		for key, want := range model {
			row := e.Get(p, key)
			switch {
			case want == 0:
				if row != nil && row.Live() {
					t.Errorf("%s should be deleted, got %+v", key, row)
				}
			default:
				if row == nil || !row.Live() || row.Version() != want {
					t.Errorf("%s version mismatch: want %d got %+v", key, want, row)
				}
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
