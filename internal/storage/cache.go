package storage

import "container/list"

// blockID identifies one block of one SSTable.
type blockID struct {
	table int64
	block int
}

// BlockCache is a byte-budgeted LRU cache of SSTable blocks. Only block
// identity and size are cached — the data itself is already in host
// memory — so a hit models "block present in RAM" and skips the disk.
type BlockCache struct {
	capacity int64
	used     int64
	ll       *list.List // front = most recent
	index    map[blockID]*list.Element

	Hits, Misses int64
}

type cacheEntry struct {
	id   blockID
	size int64
}

// NewBlockCache returns a cache with the given byte capacity. A zero or
// negative capacity disables caching (every lookup misses).
func NewBlockCache(capacity int64) *BlockCache {
	return &BlockCache{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[blockID]*list.Element),
	}
}

// Touch looks up a block, promoting it on hit and inserting it (with
// eviction) on miss. It returns whether the block was already cached.
func (c *BlockCache) Touch(table int64, block, size int) bool {
	if c.capacity <= 0 {
		c.Misses++
		return false
	}
	id := blockID{table, block}
	if el, ok := c.index[id]; ok {
		c.ll.MoveToFront(el)
		c.Hits++
		return true
	}
	c.Misses++
	c.used += int64(size)
	c.index[id] = c.ll.PushFront(cacheEntry{id: id, size: int64(size)})
	for c.used > c.capacity && c.ll.Len() > 1 {
		el := c.ll.Back()
		e := el.Value.(cacheEntry)
		c.ll.Remove(el)
		delete(c.index, e.id)
		c.used -= e.size
	}
	return false
}

// Contains reports whether the block is cached, without promoting it.
func (c *BlockCache) Contains(table int64, block int) bool {
	_, ok := c.index[blockID{table, block}]
	return ok
}

// Used returns the cached byte total.
func (c *BlockCache) Used() int64 { return c.used }

// HitRate returns the fraction of Touch calls that hit.
func (c *BlockCache) HitRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Hits) / float64(t)
}
