package storage

import (
	"sort"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

// TableEntry is one key's frozen row inside an SSTable.
type TableEntry struct {
	Key kv.Key
	Row *Row // immutable once in a table
}

// SSTable is an immutable sorted run of rows, organized into fixed-size
// blocks with an in-memory index of first keys and a bloom filter over all
// keys — the classic BigTable file layout.
type SSTable struct {
	ID      int64
	entries []TableEntry
	// blockStart[i] is the index of block i's first entry; blockBytes[i]
	// its modeled size.
	blockStart []int
	blockBytes []int
	firstKeys  []kv.Key
	bloom      *Bloom
	bytes      int64
}

// BuildTable constructs an SSTable from entries, which must be sorted by
// key and contain no duplicates.
func BuildTable(id int64, entries []TableEntry, blockBytes, bloomBitsPerKey int) *SSTable {
	t := &SSTable{ID: id, entries: entries, bloom: NewBloom(len(entries), bloomBitsPerKey)}
	cur := 0
	for i, e := range entries {
		t.bloom.Add(e.Key)
		if cur == 0 || cur >= blockBytes {
			t.blockStart = append(t.blockStart, i)
			t.firstKeys = append(t.firstKeys, e.Key)
			t.blockBytes = append(t.blockBytes, 0)
			cur = 0
		}
		sz := e.Row.Bytes() + len(e.Key)
		cur += sz
		t.blockBytes[len(t.blockBytes)-1] += sz
		t.bytes += int64(sz)
	}
	return t
}

// Len returns the number of rows.
func (t *SSTable) Len() int { return len(t.entries) }

// Bytes returns the table's modeled on-disk size.
func (t *SSTable) Bytes() int64 { return t.bytes }

// Blocks returns the number of blocks.
func (t *SSTable) Blocks() int { return len(t.blockStart) }

// MayContain consults the bloom filter.
func (t *SSTable) MayContain(key kv.Key) bool {
	if len(t.entries) == 0 {
		return false
	}
	return t.bloom.MayContain(key)
}

// blockFor returns the index of the block that would hold key, or -1 if
// key precedes the table.
func (t *SSTable) blockFor(key kv.Key) int {
	i := sort.Search(len(t.firstKeys), func(i int) bool { return t.firstKeys[i] > key })
	return i - 1
}

// loadBlock charges for making block b resident: a cache hit is free, a
// miss pays one random block read against io.
func (t *SSTable) loadBlock(p *sim.Proc, io TableIO, cache *BlockCache, b int) {
	if b < 0 || b >= len(t.blockStart) {
		return
	}
	if cache != nil && cache.Touch(t.ID, b, t.blockBytes[b]) {
		return
	}
	io.ReadBlock(p, t.ID, t.blockBytes[b])
}

// Get returns the row at key, charging bloom-filtered block I/O, or nil.
func (t *SSTable) Get(p *sim.Proc, io TableIO, cache *BlockCache, key kv.Key) *Row {
	if !t.MayContain(key) {
		return nil
	}
	b := t.blockFor(key)
	if b < 0 {
		return nil
	}
	t.loadBlock(p, io, cache, b)
	lo, hi := t.blockStart[b], len(t.entries)
	if b+1 < len(t.blockStart) {
		hi = t.blockStart[b+1]
	}
	i := lo + sort.Search(hi-lo, func(i int) bool { return t.entries[lo+i].Key >= key })
	if i < hi && t.entries[i].Key == key {
		return t.entries[i].Row
	}
	return nil
}

// WarmCache inserts all of the table's blocks into the cache without
// charging I/O, modeling the OS page cache retaining a freshly written
// file (write-through): flush and compaction output is memory-resident
// until evicted.
func (t *SSTable) WarmCache(cache *BlockCache) {
	if cache == nil {
		return
	}
	for b := range t.blockStart {
		cache.Touch(t.ID, b, t.blockBytes[b])
	}
}

// Iter returns an iterator positioned at the first key ≥ start. Advancing
// across block boundaries charges block loads.
func (t *SSTable) Iter(p *sim.Proc, io TableIO, cache *BlockCache, start kv.Key) *TableIter {
	i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].Key >= start })
	it := &TableIter{t: t, p: p, io: io, cache: cache, i: i, block: -1}
	it.chargeBlock()
	return it
}

// TableIter iterates an SSTable in key order, charging one block load per
// block entered.
type TableIter struct {
	t     *SSTable
	p     *sim.Proc
	io    TableIO
	cache *BlockCache
	i     int
	block int
}

func (it *TableIter) chargeBlock() {
	if it.i >= len(it.t.entries) {
		return
	}
	b := it.t.blockFor(it.t.entries[it.i].Key)
	if b != it.block {
		it.block = b
		it.t.loadBlock(it.p, it.io, it.cache, b)
	}
}

// Valid reports whether the iterator points at an entry.
func (it *TableIter) Valid() bool { return it.i < len(it.t.entries) }

// Key returns the current key.
func (it *TableIter) Key() kv.Key { return it.t.entries[it.i].Key }

// Row returns the current row.
func (it *TableIter) Row() *Row { return it.t.entries[it.i].Row }

// Next advances the iterator, charging a block load when crossing into a
// new block.
func (it *TableIter) Next() {
	it.i++
	it.chargeBlock()
}
