package storage

import (
	"testing"
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/sim"
)

func TestWALAppendAsyncDoesNotBlock(t *testing.T) {
	k := sim.NewKernel(1)
	d := cluster.NewDisk(k, "wal", cluster.DefaultDiskConfig())
	w := NewWAL(k, DiskLog{Disk: d})
	var elapsed time.Duration
	k.Spawn("writer", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 100; i++ {
			w.AppendAsync(1000)
		}
		elapsed = p.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Fatalf("async appends blocked the caller for %v", elapsed)
	}
	if w.BytesLogged != 100_000 {
		t.Fatalf("bytes logged = %d, want all flushed in background", w.BytesLogged)
	}
	if w.Batches >= 100 {
		t.Fatalf("batches = %d, want coalescing", w.Batches)
	}
}

func TestWALMixedSyncAsync(t *testing.T) {
	k := sim.NewKernel(1)
	d := cluster.NewDisk(k, "wal", cluster.DefaultDiskConfig())
	w := NewWAL(k, DiskLog{Disk: d})
	k.Spawn("writer", func(p *sim.Proc) {
		w.AppendAsync(500)
		w.Append(p, 500) // must wait for its batch, which includes the async bytes
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if w.BytesLogged != 1000 || w.Appends != 2 {
		t.Fatalf("logged=%d appends=%d", w.BytesLogged, w.Appends)
	}
}

func TestEngineAsyncWALStillChargesDisk(t *testing.T) {
	k := sim.NewKernel(1)
	d := cluster.NewDisk(k, "d", cluster.DefaultDiskConfig())
	cfg := DefaultConfig()
	cfg.SyncWAL = false
	e := NewEngine(k, cfg, LocalIO{Disk: d}, DiskLog{Disk: d}, 1)
	var writeLatency time.Duration
	k.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 50; i++ {
			e.Apply(p, "k", nil, 1)
		}
		writeLatency = p.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if writeLatency != 0 {
		t.Fatalf("async-WAL writes took %v of caller time", writeLatency)
	}
	if d.WriteOps == 0 {
		t.Fatal("commit log never reached the disk")
	}
}

func TestCacheDropTableOnDeleteEviction(t *testing.T) {
	// Warmed blocks of compacted-away tables must not crowd out live
	// blocks forever: the LRU ages them, and the live table's blocks can
	// be re-warmed without disk I/O via WarmCache.
	c := NewBlockCache(1 << 10)
	for b := 0; b < 8; b++ {
		c.Touch(1, b, 100)
	}
	for b := 0; b < 8; b++ {
		c.Touch(2, b, 100) // evicts table 1's oldest blocks
	}
	live := 0
	for b := 0; b < 8; b++ {
		if c.Contains(2, b) {
			live++
		}
	}
	if live < 6 {
		t.Fatalf("live blocks cached = %d, want most of table 2", live)
	}
}
