package storage

import (
	"math/rand"

	"cloudbench/internal/kv"
)

const maxHeight = 12

// skiplist is a deterministic skiplist keyed by kv.Key, mapping each key to
// its mutable *Row. It backs the memtable.
type skiplist struct {
	head   *slNode
	height int
	rng    *rand.Rand
	n      int
}

type slNode struct {
	key  kv.Key
	row  *Row
	next [maxHeight]*slNode
}

func newSkiplist(rng *rand.Rand) *skiplist {
	return &skiplist{head: &slNode{}, height: 1, rng: rng}
}

func (s *skiplist) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGE returns the first node with key ≥ k, recording the rightmost node
// before it on each level in prev (when prev != nil).
func (s *skiplist) findGE(k kv.Key, prev *[maxHeight]*slNode) *slNode {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && x.next[level].key < k {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Get returns the row at key, or nil.
func (s *skiplist) Get(k kv.Key) *Row {
	if n := s.findGE(k, nil); n != nil && n.key == k {
		return n.row
	}
	return nil
}

// GetOrCreate returns the row at key, inserting an empty row if absent.
func (s *skiplist) GetOrCreate(k kv.Key) *Row {
	var prev [maxHeight]*slNode
	if n := s.findGE(k, &prev); n != nil && n.key == k {
		return n.row
	}
	h := s.randomHeight()
	for s.height < h {
		prev[s.height] = s.head
		s.height++
	}
	node := &slNode{key: k, row: NewRow()}
	for level := 0; level < h; level++ {
		node.next[level] = prev[level].next[level]
		prev[level].next[level] = node
	}
	s.n++
	return node.row
}

// Len returns the number of keys.
func (s *skiplist) Len() int { return s.n }

// iterator walks the list in key order.
type slIter struct{ node *slNode }

// Seek returns an iterator positioned at the first key ≥ k.
func (s *skiplist) Seek(k kv.Key) *slIter { return &slIter{node: s.findGE(k, nil)} }

// First returns an iterator at the smallest key.
func (s *skiplist) First() *slIter { return &slIter{node: s.head.next[0]} }

// Valid reports whether the iterator points at an entry.
func (it *slIter) Valid() bool { return it.node != nil }

// Key returns the current key; only valid when Valid().
func (it *slIter) Key() kv.Key { return it.node.key }

// Row returns the current row; only valid when Valid().
func (it *slIter) Row() *Row { return it.node.row }

// Next advances the iterator.
func (it *slIter) Next() { it.node = it.node.next[0] }
