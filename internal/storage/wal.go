package storage

import (
	"cloudbench/internal/sim"
)

// WAL is a write-ahead log with group commit: while one batch is being
// written to the device, later appends accumulate and are committed
// together in the next batch, amortizing device latency under load exactly
// as HBase's HLog and Cassandra's commit log do.
type WAL struct {
	k   *sim.Kernel
	log AppendLog

	pendingBytes int
	waiters      []*sim.Future[struct{}]
	flushing     bool

	// Appends counts individual Append calls; Batches counts device
	// writes. Batches ≤ Appends, and the gap measures group commit.
	Appends, Batches int64
	BytesLogged      int64
}

// NewWAL returns a WAL writing batches to log.
func NewWAL(k *sim.Kernel, log AppendLog) *WAL {
	return &WAL{k: k, log: log}
}

// Append durably logs bytes, blocking p until the batch containing this
// append reaches the device (HBase's per-edit WAL sync).
func (w *WAL) Append(p *sim.Proc, bytes int) {
	w.Appends++
	w.pendingBytes += bytes
	f := sim.NewFuture[struct{}](w.k)
	w.waiters = append(w.waiters, f)
	w.ensureFlusher()
	f.Await(p)
}

// AppendAsync logs bytes without blocking the caller: the write is acked
// from memory and a background batch carries it to the device (Cassandra's
// commitlog_sync: periodic). The device load is still paid, just off the
// latency path.
func (w *WAL) AppendAsync(bytes int) {
	w.Appends++
	w.pendingBytes += bytes
	w.ensureFlusher()
}

func (w *WAL) ensureFlusher() {
	if !w.flushing {
		w.flushing = true
		w.k.Go("wal-flush", w.flushLoop)
	}
}

func (w *WAL) flushLoop(p *sim.Proc) {
	for w.pendingBytes > 0 || len(w.waiters) > 0 {
		bytes := w.pendingBytes
		waiters := w.waiters
		w.pendingBytes = 0
		w.waiters = nil
		w.log.Append(p, bytes)
		w.Batches++
		w.BytesLogged += int64(bytes)
		for _, f := range waiters {
			f.Set(struct{}{})
		}
	}
	w.flushing = false
}
