// Package storage implements the log-structured storage engine shared by
// both databases: a write-ahead log with group commit, a skiplist memtable,
// immutable SSTables with block indexes and bloom filters, an LRU block
// cache, and size-tiered compaction.
//
// The engine stores real data structures in memory while charging disk and
// network costs in virtual time through the cluster package, so performance
// behaviour (cache misses, compaction interference, WAL batching) is
// modeled mechanistically.
package storage

import (
	"cloudbench/internal/kv"
)

// Cell is one field value with the version that wrote it.
type Cell struct {
	Val kv.Value
	Ver kv.Version
}

// Row is the storage representation of a record: per-cell versions enable
// last-write-wins reconciliation of partial updates, and a tombstone
// version shadows older cells after a delete.
type Row struct {
	Cells map[string]Cell
	Tomb  kv.Version // delete timestamp; cells with Ver <= Tomb are dead
}

// NewRow returns an empty row.
func NewRow() *Row { return &Row{Cells: make(map[string]Cell)} }

// Apply merges a write of rec at version ver into the row, keeping the
// newest version of each cell.
func (r *Row) Apply(rec kv.Record, ver kv.Version) {
	for f, v := range rec {
		if c, ok := r.Cells[f]; !ok || ver > c.Ver {
			r.Cells[f] = Cell{Val: v, Ver: ver}
		}
	}
}

// Delete applies a tombstone at version ver.
func (r *Row) Delete(ver kv.Version) {
	if ver > r.Tomb {
		r.Tomb = ver
	}
}

// MergeFrom folds another row's cells and tombstone into r (cell-wise
// newest wins). It is the reconciliation step used when reading across
// memtable and SSTables, and between replicas.
func (r *Row) MergeFrom(o *Row) {
	if o == nil {
		return
	}
	if o.Tomb > r.Tomb {
		r.Tomb = o.Tomb
	}
	for f, c := range o.Cells {
		if mine, ok := r.Cells[f]; !ok || c.Ver > mine.Ver {
			r.Cells[f] = c
		}
	}
}

// Live reports whether the row has any cell newer than its tombstone.
func (r *Row) Live() bool {
	for _, c := range r.Cells {
		if c.Ver > r.Tomb {
			return true
		}
	}
	return false
}

// Record materializes the row's live cells as a Record, or nil if the row
// is fully dead. Two passes keep the map iteration order-insensitive: the
// first only counts (sizing the allocation exactly), the second only does
// per-key writes.
func (r *Row) Record() kv.Record {
	live := 0
	for _, c := range r.Cells {
		if c.Ver > r.Tomb {
			live++
		}
	}
	if live == 0 {
		return nil
	}
	rec := make(kv.Record, live)
	for f, c := range r.Cells {
		if c.Ver > r.Tomb {
			rec[f] = c.Val
		}
	}
	return rec
}

// Version returns the row's overall version: the maximum of its cell
// versions and tombstone. Replica digests compare this value.
func (r *Row) Version() kv.Version {
	v := r.Tomb
	for _, c := range r.Cells {
		if c.Ver > v {
			v = c.Ver
		}
	}
	return v
}

// Bytes returns the row's modeled on-disk size.
func (r *Row) Bytes() int {
	n := 16 // key/row overhead
	for f, c := range r.Cells {
		n += len(f) + 10 + c.Val.Bytes()
	}
	return n
}

// Clone returns a deep copy of the row's cell map (values are immutable by
// convention).
func (r *Row) Clone() *Row {
	c := &Row{Cells: make(map[string]Cell, len(r.Cells)), Tomb: r.Tomb}
	for f, cell := range r.Cells {
		c.Cells[f] = cell
	}
	return c
}
