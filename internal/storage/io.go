package storage

import (
	"cloudbench/internal/cluster"
	"cloudbench/internal/sim"
)

// ioChunk is the granularity at which bulk I/O holds the disk, so that
// foreground point reads can interleave with flushes and compactions
// instead of stalling behind one multi-second device hold.
const ioChunk = 4 << 20

// TableIO abstracts where SSTables physically live: on the node's local
// disk (Cassandra) or on a replicated distributed filesystem (HBase on
// HDFS). All methods charge virtual time against the backing devices.
// The table id identifies which table is touched, so distributed backends
// can track per-table file placement.
type TableIO interface {
	// WriteTable writes new table id of the given size sequentially.
	WriteTable(p *sim.Proc, id int64, bytes int64)
	// ReadTable reads table id in full, sequentially (compaction input).
	ReadTable(p *sim.Proc, id int64, bytes int64)
	// ReadBlock reads one block of table id at a random offset.
	ReadBlock(p *sim.Proc, id int64, bytes int)
	// DeleteTable drops table id's backing storage (post-compaction).
	DeleteTable(id int64)
}

// AppendLog abstracts the write-ahead-log device.
type AppendLog interface {
	// Append adds bytes to the log sequentially.
	Append(p *sim.Proc, bytes int)
}

// LocalIO stores tables on a single local disk.
type LocalIO struct{ Disk *cluster.Disk }

// WriteTable implements TableIO.
func (l LocalIO) WriteTable(p *sim.Proc, _ int64, bytes int64) {
	for bytes > 0 {
		n := int64(ioChunk)
		if n > bytes {
			n = bytes
		}
		l.Disk.Write(p, int(n), false) // sequential
		bytes -= n
	}
}

// ReadTable implements TableIO.
func (l LocalIO) ReadTable(p *sim.Proc, _ int64, bytes int64) {
	for bytes > 0 {
		n := int64(ioChunk)
		if n > bytes {
			n = bytes
		}
		l.Disk.Read(p, int(n), false)
		bytes -= n
	}
}

// ReadBlock implements TableIO.
func (l LocalIO) ReadBlock(p *sim.Proc, _ int64, bytes int) {
	l.Disk.Read(p, bytes, true)
}

// DeleteTable implements TableIO.
func (LocalIO) DeleteTable(int64) {}

// DiskLog appends the WAL to a local disk's log zone.
type DiskLog struct{ Disk *cluster.Disk }

// Append implements AppendLog.
func (d DiskLog) Append(p *sim.Proc, bytes int) { d.Disk.Append(p, bytes) }

// NopLog discards appends without cost; used to model commitlog-disabled
// configurations in ablations.
type NopLog struct{}

// Append implements AppendLog.
func (NopLog) Append(*sim.Proc, int) {}
