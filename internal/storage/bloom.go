package storage

import "cloudbench/internal/kv"

// Bloom is a standard Bloom filter over row keys, built once per SSTable.
// It uses double hashing over a 64-bit FNV-1a base hash.
type Bloom struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of probes
}

// NewBloom sizes a filter for n keys at bitsPerKey bits each; k probes are
// derived as bitsPerKey * ln2 (clamped to [1, 30]).
func NewBloom(n, bitsPerKey int) *Bloom {
	if n < 1 {
		n = 1
	}
	m := uint64(n * bitsPerKey)
	if m < 64 {
		m = 64
	}
	k := int(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

func fnv64(s kv.Key) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Add inserts a key.
func (b *Bloom) Add(key kv.Key) {
	h := fnv64(key)
	delta := h>>33 | h<<31
	for i := 0; i < b.k; i++ {
		pos := h % b.m
		b.bits[pos/64] |= 1 << (pos % 64)
		h += delta
	}
}

// MayContain reports whether key might be present (no false negatives).
func (b *Bloom) MayContain(key kv.Key) bool {
	h := fnv64(key)
	delta := h>>33 | h<<31
	for i := 0; i < b.k; i++ {
		pos := h % b.m
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// Bytes returns the filter's modeled size.
func (b *Bloom) Bytes() int { return len(b.bits) * 8 }
