package storage

import (
	"math/rand"
	"sort"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

// Config parameterizes an Engine.
type Config struct {
	MemtableBytes   int64 // flush threshold
	BlockBytes      int   // SSTable block size
	CacheBytes      int64 // block cache budget
	BloomBitsPerKey int
	// CompactMinTables is the number of similar-sized tables that
	// triggers a size-tiered compaction of that tier.
	CompactMinTables int
	// SyncWAL controls whether writes wait for the WAL batch to reach
	// the device before acknowledging.
	SyncWAL bool
}

// DefaultConfig returns engine parameters in line with HBase/Cassandra
// defaults, scaled for simulation.
func DefaultConfig() Config {
	return Config{
		MemtableBytes:    4 << 20,
		BlockBytes:       64 << 10,
		CacheBytes:       8 << 20,
		BloomBitsPerKey:  10,
		CompactMinTables: 4,
		SyncWAL:          true,
	}
}

// Engine is one node's log-structured store: WAL → memtable → SSTables,
// with a block cache and background flush and compaction processes that
// contend for the same simulated devices as foreground requests.
type Engine struct {
	k   *sim.Kernel
	cfg Config
	io  TableIO
	wal *WAL

	mem      *skiplist
	memBytes int64
	imm      []*skiplist // snapshots being flushed, newest first
	tables   []*SSTable  // newest first
	cache    *BlockCache
	rng      *rand.Rand

	nextTableID int64
	compacting  bool

	// OnWALSync, when non-nil, observes each synchronous WAL append with
	// the virtual time it began — the tracing layer's WAL-phase hook.
	// Async appends are off the ack path and are not reported.
	//
	//simlint:hook
	OnWALSync func(p *sim.Proc, start sim.Time)

	// Metrics.
	Puts, Gets, Scans    int64
	Flushes, Compactions int64
	CompactedBytes       int64
}

// NewEngine returns an engine writing tables through io and logging through
// wal. The rng seeds the memtable skiplist deterministically.
func NewEngine(k *sim.Kernel, cfg Config, io TableIO, log AppendLog, seed int64) *Engine {
	e := &Engine{
		k:     k,
		cfg:   cfg,
		io:    io,
		wal:   NewWAL(k, log),
		cache: NewBlockCache(cfg.CacheBytes),
		rng:   rand.New(rand.NewSource(seed)),
	}
	e.mem = newSkiplist(e.rng)
	return e
}

// Cache exposes the engine's block cache for reporting.
func (e *Engine) Cache() *BlockCache { return e.cache }

// WALStats exposes the engine's WAL for reporting.
func (e *Engine) WALStats() *WAL { return e.wal }

// Tables returns the current number of SSTables.
func (e *Engine) Tables() int { return len(e.tables) }

// Apply writes rec at version ver to key: WAL append (when SyncWAL), then
// memtable apply, then a flush if the memtable is full.
func (e *Engine) Apply(p *sim.Proc, key kv.Key, rec kv.Record, ver kv.Version) {
	e.Puts++
	size := rec.Bytes() + len(key) + 16
	e.walAppend(p, size)
	row := e.mem.GetOrCreate(key)
	row.Apply(rec, ver)
	e.memBytes += int64(size)
	e.maybeFlush()
}

// walAppend logs size bytes, blocking until durable when SyncWAL is set
// and reporting the sync through the OnWALSync hook.
func (e *Engine) walAppend(p *sim.Proc, size int) {
	if !e.cfg.SyncWAL {
		e.wal.AppendAsync(size)
		return
	}
	if e.OnWALSync != nil {
		start := p.Now()
		e.wal.Append(p, size)
		e.OnWALSync(p, start)
		return
	}
	e.wal.Append(p, size)
}

// ApplyDelete writes a tombstone at key.
func (e *Engine) ApplyDelete(p *sim.Proc, key kv.Key, ver kv.Version) {
	e.Puts++
	size := len(key) + 24
	e.walAppend(p, size)
	row := e.mem.GetOrCreate(key)
	row.Delete(ver)
	e.memBytes += int64(size)
	e.maybeFlush()
}

// Get returns the reconciled row at key (merged across memtable, flushing
// snapshots, and SSTables), or nil if the key has never been written. The
// caller owns the returned row. Deleted rows are returned with their
// tombstone so replica reconciliation can propagate deletes; use Live() to
// test visibility.
func (e *Engine) Get(p *sim.Proc, key kv.Key) *Row {
	e.Gets++
	var out *Row
	merge := func(r *Row) {
		if r == nil {
			return
		}
		if out == nil {
			out = NewRow()
		}
		out.MergeFrom(r)
	}
	merge(e.mem.Get(key))
	for _, m := range e.imm {
		merge(m.Get(key))
	}
	for _, t := range e.tables {
		if r := t.Get(p, e.io, e.cache, key); r != nil {
			merge(r)
		}
	}
	return out
}

// ScanRow is one result of Engine.Scan.
// rowIter is a merge cursor over one level (memtable, immutable memtable,
// or SSTable). Using the iterators' method sets directly — instead of a
// struct of captured method values — keeps Scan free of per-source closure
// allocations and of nullable function fields (simlint's hookguard would
// demand a nil check before every call through those).
type rowIter interface {
	Valid() bool
	Key() kv.Key
	Row() *Row
	Next()
}

type ScanRow struct {
	Key kv.Key
	Row *Row
}

// Scan returns up to limit live rows with key ≥ start, in key order,
// reconciled across all levels. I/O is charged per block entered.
func (e *Engine) Scan(p *sim.Proc, start kv.Key, limit int) []ScanRow {
	e.Scans++
	var srcs []rowIter
	srcs = append(srcs, e.mem.Seek(start))
	for _, m := range e.imm {
		srcs = append(srcs, m.Seek(start))
	}
	for _, t := range e.tables {
		srcs = append(srcs, t.Iter(p, e.io, e.cache, start))
	}
	var out []ScanRow
	for len(out) < limit {
		// Find the smallest current key across sources.
		var minKey kv.Key
		found := false
		for _, s := range srcs {
			if s.Valid() && (!found || s.Key() < minKey) {
				minKey = s.Key()
				found = true
			}
		}
		if !found {
			break
		}
		row := NewRow()
		for _, s := range srcs {
			if s.Valid() && s.Key() == minKey {
				row.MergeFrom(s.Row())
				s.Next()
			}
		}
		if row.Live() {
			out = append(out, ScanRow{Key: minKey, Row: row})
		}
	}
	return out
}

// maybeFlush rotates a full memtable into the flushing list and starts a
// background flush process.
func (e *Engine) maybeFlush() {
	if e.memBytes < e.cfg.MemtableBytes {
		return
	}
	e.ForceFlush()
}

// ForceFlush rotates the current memtable (if non-empty) and flushes it in
// the background.
func (e *Engine) ForceFlush() {
	if e.mem.Len() == 0 {
		return
	}
	snap := e.mem
	e.imm = append([]*skiplist{snap}, e.imm...)
	e.mem = newSkiplist(e.rng)
	e.memBytes = 0
	// Flushes are spawned from whatever request filled the memtable;
	// detach the inherited trace context so flush work (including HDFS
	// pipeline writes) bills to the background class, not to that op.
	e.k.Go("flush", func(p *sim.Proc) { p.SetTraceCtx(nil); e.flush(p, snap) })
}

func (e *Engine) flush(p *sim.Proc, snap *skiplist) {
	entries := make([]TableEntry, 0, snap.Len())
	for it := snap.First(); it.Valid(); it.Next() {
		entries = append(entries, TableEntry{Key: it.Key(), Row: it.Row()})
	}
	e.nextTableID++
	t := BuildTable(e.nextTableID, entries, e.cfg.BlockBytes, e.cfg.BloomBitsPerKey)
	e.io.WriteTable(p, t.ID, t.Bytes())
	t.WarmCache(e.cache)
	// Install: newest first, remove the snapshot from the flushing list.
	e.tables = append([]*SSTable{t}, e.tables...)
	for i, m := range e.imm {
		if m == snap {
			e.imm = append(e.imm[:i], e.imm[i+1:]...)
			break
		}
	}
	e.Flushes++
	e.maybeCompact()
}

// tier buckets table sizes by power of four starting at 1 MB, mirroring
// size-tiered compaction's "similar size" grouping.
func tier(bytes int64) int {
	t := 0
	for bytes >= 1<<20 {
		bytes >>= 2
		t++
	}
	return t
}

// maybeCompact starts a background size-tiered compaction when some tier
// has at least CompactMinTables tables. One compaction runs at a time.
func (e *Engine) maybeCompact() {
	if e.compacting {
		return
	}
	byTier := map[int][]*SSTable{}
	for _, t := range e.tables {
		tr := tier(t.Bytes())
		byTier[tr] = append(byTier[tr], t)
	}
	// Visit tiers smallest-first: which tier compacts must not depend on
	// map iteration order, or the whole downstream event schedule (and
	// with it same-seed reproducibility) drifts between runs.
	tiers := make([]int, 0, len(byTier))
	for tr := range byTier {
		tiers = append(tiers, tr)
	}
	sort.Ints(tiers)
	for _, tr := range tiers {
		group := byTier[tr]
		if len(group) >= e.cfg.CompactMinTables {
			e.compacting = true
			inputs := group
			// Same detach as flush: compaction is background work.
			e.k.Go("compact", func(p *sim.Proc) { p.SetTraceCtx(nil); e.compact(p, inputs) })
			return
		}
	}
}

// compact merges inputs (which are a subset of e.tables, newest first)
// into one table, charging sequential read of the inputs and sequential
// write of the output.
func (e *Engine) compact(p *sim.Proc, inputs []*SSTable) {
	var inBytes int64
	inSet := make(map[*SSTable]bool, len(inputs))
	for _, t := range inputs {
		inBytes += t.Bytes()
		inSet[t] = true
		e.io.ReadTable(p, t.ID, t.Bytes())
	}

	// Merge newest-first: cell-wise MergeFrom makes order irrelevant,
	// but iterating tables in order keeps allocation predictable.
	merged := make(map[kv.Key]*Row)
	var keys []kv.Key
	for _, t := range inputs {
		for _, en := range t.entries {
			if r, ok := merged[en.Key]; ok {
				r.MergeFrom(en.Row)
			} else {
				keys = append(keys, en.Key)
				merged[en.Key] = en.Row.Clone()
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	entries := make([]TableEntry, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, TableEntry{Key: k, Row: merged[k]})
	}
	e.nextTableID++
	out := BuildTable(e.nextTableID, entries, e.cfg.BlockBytes, e.cfg.BloomBitsPerKey)
	e.io.WriteTable(p, out.ID, out.Bytes())
	out.WarmCache(e.cache)

	// Replace inputs with the merged table, preserving relative order of
	// the survivors; the merged table takes the position of the oldest
	// input so newer tables still shadow it.
	var next []*SSTable
	inserted := false
	for _, t := range e.tables {
		if inSet[t] {
			if !inserted {
				// Will insert after all survivors newer than the
				// oldest input; simplest correct placement is at the
				// position of the first (newest) input since inputs
				// hold disjoint data after merging.
				next = append(next, out)
				inserted = true
			}
			continue
		}
		next = append(next, t)
	}
	if !inserted {
		next = append(next, out)
	}
	e.tables = next
	for _, t := range inputs {
		e.io.DeleteTable(t.ID)
	}
	e.Compactions++
	e.CompactedBytes += inBytes
	e.compacting = false
	e.maybeCompact()
}
