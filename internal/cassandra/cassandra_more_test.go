package cassandra

import (
	"fmt"
	"testing"
	"time"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

func TestCoordinatorRoundRobinSkipsDownNodes(t *testing.T) {
	k := sim.NewKernel(3)
	db, cl := testDB(k, 4, 3, nil)
	db.reps[0].Node.Fail()
	db.reps[2].Node.Fail()
	seen := map[*Replica]bool{}
	for i := 0; i < 8; i++ {
		c, err := cl.coordinator()
		if err != nil {
			t.Fatal(err)
		}
		if c.Node.Down() {
			t.Fatal("picked a down coordinator")
		}
		seen[c] = true
	}
	if len(seen) != 2 {
		t.Fatalf("coordinators used = %d, want the 2 live nodes", len(seen))
	}
}

func TestCoordinatorAllDownUnavailable(t *testing.T) {
	k := sim.NewKernel(3)
	db, cl := testDB(k, 3, 2, nil)
	for _, rep := range db.reps {
		rep.Node.Fail()
	}
	if _, err := cl.coordinator(); err != kv.ErrUnavailable {
		t.Fatalf("err = %v", err)
	}
}

func TestScanPerHostFetchCapped(t *testing.T) {
	k := sim.NewKernel(5)
	db, cl := testDB(k, 10, 3, nil)
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			cl.Insert(p, key(i), kv.Record{"f": kv.SizedValue(50)})
		}
		p.Sleep(100 * time.Millisecond)
		getsBefore := totalGets(db)
		rows, err := cl.Scan(p, key(0), 20, nil)
		if err != nil || len(rows) == 0 {
			t.Fatalf("scan: %v rows=%d", err, len(rows))
		}
		// Each of 10 hosts fetches ≤ limit·RF/alive + 4 = 10 rows, so the
		// total engine rows touched is far below 10 hosts × 20 rows.
		gets := totalGets(db) - getsBefore
		_ = gets // engine.Scans counts scans, not rows; sanity only
		var scans int64
		for _, rep := range db.Replicas() {
			scans += rep.engine.Scans
		}
		if scans != 10 {
			t.Fatalf("engine scans = %d, want one per live host", scans)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func totalGets(db *DB) int64 {
	var n int64
	for _, rep := range db.Replicas() {
		n += rep.engine.Gets
	}
	return n
}

func TestWriteTimeoutWhenReplicasStall(t *testing.T) {
	k := sim.NewKernel(7)
	db, base := testDB(k, 4, 3, func(c *Config) {
		c.Timeout = 50 * time.Millisecond
	})
	cl := base.WithConsistency(kv.All, kv.All)
	k.Spawn("client", func(p *sim.Proc) {
		target := key(9)
		// Steer the round-robin coordinator to the one non-replica node
		// so the coordinator path itself is not stalled.
		replicas := db.ReplicasFor(target)
		for i, rep := range db.reps {
			isReplica := false
			for _, r := range replicas {
				if r == rep {
					isReplica = true
				}
			}
			if !isReplica {
				cl.next = i
				break
			}
		}
		// Stall every replica's CPU with a long GC-style pause so no
		// apply can complete before the coordinator timeout.
		for _, rep := range replicas {
			rep.Node.PauseUntil(p.Now().Add(time.Second))
		}
		err := cl.Update(p, target, kv.Record{"v": kv.SizedValue(1)})
		if err != kv.ErrTimeout {
			t.Errorf("err = %v, want timeout", err)
		}
		if db.CoordinatorTimeouts == 0 {
			t.Error("timeout not counted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestVNodesSpreadKeyOwnership(t *testing.T) {
	// With vnodes, consecutive regions of the hash space interleave
	// owners; a node's keys should not be one contiguous range.
	k := sim.NewKernel(11)
	db, _ := testDB(k, 4, 1, func(c *Config) { c.VNodes = 32 })
	owners := make([]*Replica, 0, 256)
	for i := 0; i < 256; i++ {
		owners = append(owners, db.ReplicasFor(key(i))[0])
	}
	changes := 0
	for i := 1; i < len(owners); i++ {
		if owners[i] != owners[i-1] {
			changes++
		}
	}
	if changes < 64 {
		t.Fatalf("owner changes = %d of 255; keys too clustered", changes)
	}
}

func TestReplicationFactorClamped(t *testing.T) {
	k := sim.NewKernel(13)
	db, _ := testDB(k, 3, 9, nil)
	reps := db.ReplicasFor(key(1))
	if len(reps) != 3 {
		t.Fatalf("replicas = %d, want clamped to cluster size", len(reps))
	}
}

func TestPendingHintsDrainToZero(t *testing.T) {
	k := sim.NewKernel(17)
	db, cl := testDB(k, 4, 3, nil)
	k.Spawn("client", func(p *sim.Proc) {
		target := key(2)
		down := db.ReplicasFor(target)[1]
		down.Node.Fail()
		for i := 0; i < 5; i++ {
			if err := cl.Update(p, target, kv.Record{"v": kv.SizedValue(i + 1)}); err != nil {
				t.Fatal(err)
			}
		}
		if db.PendingHints() == 0 {
			t.Fatal("no hints pending")
		}
		down.Node.Recover()
		p.Sleep(time.Minute)
		if db.PendingHints() != 0 {
			t.Fatalf("hints remaining = %d", db.PendingHints())
		}
		// The recovered node holds the newest version.
		row := down.engine.Get(p, target)
		if row == nil || !row.Live() {
			t.Fatal("hinted data missing after replay")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHintsExpireForPermanentlyDeadNode(t *testing.T) {
	k := sim.NewKernel(19)
	db, cl := testDB(k, 4, 3, func(c *Config) {
		c.HintWindow = 30 * time.Second
	})
	k.Spawn("client", func(p *sim.Proc) {
		target := key(3)
		db.ReplicasFor(target)[1].Node.Fail() // never recovers
		if err := cl.Update(p, target, kv.Record{"v": kv.SizedValue(1)}); err != nil {
			t.Fatal(err)
		}
		p.Sleep(2 * time.Minute)
		if db.PendingHints() != 0 || db.HintsExpired == 0 {
			t.Fatalf("pending=%d expired=%d", db.PendingHints(), db.HintsExpired)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err) // deadlock would mean the replay loop never exits
	}
}

func TestManyKeysSurviveFlushAndReadBack(t *testing.T) {
	k := sim.NewKernel(23)
	db, base := testDB(k, 5, 3, nil)
	cl := base.WithConsistency(kv.Quorum, kv.Quorum)
	k.Spawn("client", func(p *sim.Proc) {
		const n = 400
		for i := 0; i < n; i++ {
			if err := cl.Insert(p, key(i), kv.Record{"v": kv.SizedValue(i%251 + 1)}); err != nil {
				t.Fatal(err)
			}
		}
		db.FlushAll()
		p.Sleep(5 * time.Second)
		for i := 0; i < n; i += 17 {
			rec, err := cl.Read(p, key(i), nil)
			if err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			if rec["v"].Bytes() != i%251+1 {
				t.Fatalf("key %d value = %d", i, rec["v"].Bytes())
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossRunsFullStack(t *testing.T) {
	run := func() string {
		k := sim.NewKernel(29)
		db, cl := testDB(k, 5, 3, nil)
		var log string
		k.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				cl.Insert(p, key(i), kv.Record{"v": kv.SizedValue(i + 1)})
			}
			for i := 0; i < 50; i += 7 {
				rec, err := cl.Read(p, key(i), nil)
				log += fmt.Sprintf("%d:%v:%d@%v;", i, err == nil, rec["v"].Bytes(), p.Now())
			}
			_ = db
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs diverge:\n%s\n%s", a, b)
	}
}
