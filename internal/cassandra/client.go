package cassandra

import (
	"cloudbench/internal/cluster"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

// Client is a Cassandra client bound to a client machine. Each request is
// sent to a coordinator chosen round-robin among live hosts (like a
// token-unaware driver), carrying the consistency levels configured on the
// client — Cassandra lets the consistency level be specified at request
// time, which is what makes the paper's Fig. 3 experiment possible.
type Client struct {
	db      *DB
	node    *cluster.Node
	readCL  kv.ConsistencyLevel
	writeCL kv.ConsistencyLevel
	next    int
	oid     int // oracle client identity for monotonic-read tracking
}

// NewClient returns a client issuing requests from node at the database's
// default consistency levels.
func (db *DB) NewClient(node *cluster.Node) *Client {
	oid := -1
	if db.oracle != nil {
		oid = db.oracle.RegisterClient()
	}
	return &Client{
		db: db, node: node,
		readCL: db.cfg.ReadCL, writeCL: db.cfg.WriteCL,
		oid: oid,
	}
}

// WithConsistency returns a copy of the client using the given read and
// write levels.
func (c *Client) WithConsistency(read, write kv.ConsistencyLevel) *Client {
	cc := *c
	cc.readCL = read
	cc.writeCL = write
	return &cc
}

var _ kv.Client = (*Client)(nil)

// coordinator picks the next live host round-robin, preferring hosts in
// the client's own zone (a DC-aware load-balancing policy): requests only
// cross the wide-area link when the replica set demands it, not on the
// first hop.
func (c *Client) coordinator() (*Replica, error) {
	reps := c.db.reps
	var fallback *Replica
	for i := 0; i < len(reps); i++ {
		rep := reps[(c.next+i)%len(reps)]
		if rep.Node.Down() {
			continue
		}
		if rep.Node.Zone == c.node.Zone {
			c.next = (c.next + i + 1) % len(reps)
			return rep, nil
		}
		if fallback == nil {
			fallback = rep
		}
	}
	if fallback != nil {
		c.next = (c.next + 1) % len(reps)
		return fallback, nil
	}
	return nil, kv.ErrUnavailable
}

// Read implements kv.Client at the client's read consistency level.
func (c *Client) Read(p *sim.Proc, key kv.Key, fields []string) (kv.Record, error) {
	coord, err := c.coordinator()
	if err != nil {
		return nil, err
	}
	c.db.Reads++
	start := p.Now()
	reqSize := len(key) + c.db.cfg.RequestOverhead
	if !c.node.SendTo(p, coord.Node, reqSize) {
		return nil, kv.ErrUnavailable
	}
	c.db.execCoord(p, coord.Node, c.db.cl.Config.CPUOpCost)
	row, err := c.db.read(p, coord, key, c.readCL)
	if err != nil {
		return nil, err
	}
	if c.db.oracle != nil {
		// The observed version is the reconciled row the coordinator is
		// about to return (a tombstone's version for deleted rows, 0 for
		// never-written keys) — exactly what this client sees.
		var ver kv.Version
		if row != nil {
			ver = row.Version()
		}
		c.db.oracle.ReadObserved(c.oid, key, ver, start)
	}
	var rec kv.Record
	if row != nil && row.Live() {
		rec = row.Record().Project(fields)
	}
	if !coord.Node.SendTo(p, c.node, rec.Bytes()+c.db.cfg.RequestOverhead) {
		return nil, kv.ErrUnavailable
	}
	if rec == nil {
		return nil, kv.ErrNotFound
	}
	return rec, nil
}

// Insert implements kv.Client.
func (c *Client) Insert(p *sim.Proc, key kv.Key, rec kv.Record) error {
	return c.put(p, key, rec, false)
}

// Update implements kv.Client.
func (c *Client) Update(p *sim.Proc, key kv.Key, rec kv.Record) error {
	return c.put(p, key, rec, false)
}

// Delete implements kv.Client.
func (c *Client) Delete(p *sim.Proc, key kv.Key) error {
	return c.put(p, key, nil, true)
}

func (c *Client) put(p *sim.Proc, key kv.Key, rec kv.Record, del bool) error {
	coord, err := c.coordinator()
	if err != nil {
		return err
	}
	c.db.Writes++
	if !c.node.SendTo(p, coord.Node, c.db.mutationSize(key, rec)) {
		return kv.ErrUnavailable
	}
	c.db.execCoord(p, coord.Node, c.db.cl.Config.CPUOpCost)
	if err := c.db.write(p, coord, key, rec, del, c.writeCL); err != nil {
		return err
	}
	if !coord.Node.SendTo(p, c.node, c.db.cfg.RequestOverhead) {
		return kv.ErrUnavailable
	}
	return nil
}

// Scan implements kv.Client. Range scans are served at the scan path's
// fixed semantics (one replica per range) and do not honor consistency
// levels, matching get_range_slices behaviour the paper relies on.
func (c *Client) Scan(p *sim.Proc, start kv.Key, limit int, fields []string) ([]kv.KV, error) {
	coord, err := c.coordinator()
	if err != nil {
		return nil, err
	}
	c.db.ScansDone++
	reqSize := len(start) + c.db.cfg.RequestOverhead
	if !c.node.SendTo(p, coord.Node, reqSize) {
		return nil, kv.ErrUnavailable
	}
	c.db.execCoord(p, coord.Node, c.db.cl.Config.CPUOpCost)
	rows := c.db.scan(p, coord, start, limit)
	respSize := c.db.cfg.RequestOverhead
	out := make([]kv.KV, 0, len(rows))
	for _, r := range rows {
		rec := r.Row.Record().Project(fields)
		out = append(out, kv.KV{Key: r.Key, Record: rec})
		respSize += rec.Bytes()
	}
	if !coord.Node.SendTo(p, c.node, respSize) {
		return nil, kv.ErrUnavailable
	}
	return out, nil
}
