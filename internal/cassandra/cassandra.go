// Package cassandra implements a Cassandra-like cloud serving database on
// the simulated cluster: a Murmur-style token ring with virtual nodes,
// SimpleStrategy replica placement, coordinators that fan mutations out to
// every replica while acknowledging at the requested consistency level,
// digest reads with blocking read repair, probabilistic background read
// repair, hinted handoff, and per-node commit log + memtable + SSTable
// storage with last-write-wins timestamps.
//
// The design follows §2 of the paper: tunable consistency (ONE, QUORUM,
// ALL, set per request), a fixed replica order in which the first "main
// replica" is always contacted, and the built-in read repair that §4.1
// identifies as the cause of rising read latency at high replication
// factors.
package cassandra

import (
	"sort"
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/consistency"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/storage"
	"cloudbench/internal/trace"
)

// Config parameterizes the database.
type Config struct {
	// Replication is the keyspace replication factor, the paper's knob.
	Replication int
	// VNodes is the number of virtual-node tokens per host.
	VNodes int
	// TopologyAware selects NetworkTopologyStrategy-style placement:
	// replicas spread across zones (data centers) before doubling up in
	// any one. With a single zone it is identical to SimpleStrategy.
	TopologyAware bool
	// DCReplicas, when non-empty, is full NetworkTopologyStrategy
	// placement with an explicit replication factor per data center
	// (DCReplicas[z] replicas in zone z), overriding Replication and
	// TopologyAware. The effective total replication factor is the sum.
	DCReplicas []int
	// ReadCL and WriteCL are the default consistency levels; clients may
	// override per request.
	ReadCL, WriteCL kv.ConsistencyLevel
	// ReadRepairChance is the probability that a point read triggers a
	// background repair across all replicas (table read_repair_chance;
	// Cassandra 2.0 defaults to 0.1 and the paper notes the feature is on
	// by default).
	ReadRepairChance float64
	// HintedHandoff stores mutations for down replicas and replays them
	// on recovery.
	HintedHandoff bool
	// Engine configures each node's storage.
	Engine storage.Config
	// RequestOverhead is the fixed per-message overhead in bytes.
	RequestOverhead int
	// Timeout bounds how long a coordinator waits for replica responses.
	Timeout time.Duration
	// HintReplayInterval is how often stored hints are retried.
	HintReplayInterval time.Duration
	// HintWindow bounds how long a hint is kept before being dropped
	// (Cassandra's max_hint_window_in_ms, default 3 h).
	HintWindow time.Duration
	// MutationStageMeanDelay models the replica-side MutationStage: each
	// mutation apply waits an exponentially distributed extra delay with
	// mean MutationStageMeanDelay × Replication before executing (SEDA
	// stage hand-off and JVM thread-scheduling variance; the stage's
	// offered load scales with the replication factor because every
	// client write fans out to RF replicas). Zero, the default, disables
	// it: deliveries then process strictly FIFO per node, under which a
	// read issued after a write's ack can never overtake the main
	// replica's pending apply, so CL=ONE staleness is structurally
	// impossible. The latency experiments leave it off (sub-millisecond
	// jitter is second order for latency); the consistency audit turns it
	// on, because this per-message reordering is exactly what opens the
	// real-world CL=ONE visibility window it measures.
	MutationStageMeanDelay time.Duration
}

// DefaultConfig returns a Cassandra configuration matching the paper's
// recommended setup at replication factor 3 and consistency ONE.
func DefaultConfig() Config {
	ecfg := storage.DefaultConfig()
	// commitlog_sync: periodic (the Cassandra default): writes are acked
	// after the memtable apply; the commit log reaches the device in
	// background batches.
	ecfg.SyncWAL = false
	return Config{
		Replication:        3,
		VNodes:             16,
		ReadCL:             kv.One,
		WriteCL:            kv.One,
		ReadRepairChance:   0.1,
		HintedHandoff:      true,
		Engine:             ecfg,
		RequestOverhead:    64,
		Timeout:            5 * time.Second,
		HintReplayInterval: 10 * time.Second,
		HintWindow:         3 * time.Hour,
	}
}

// Replica is one Cassandra host: a cluster node plus its local storage.
type Replica struct {
	Node   *cluster.Node
	engine *storage.Engine
	hints  []hint
}

// Engine exposes the replica's storage engine for inspection.
func (r *Replica) Engine() *storage.Engine { return r.engine }

// hint is a mutation stored on behalf of a down replica.
type hint struct {
	target *Replica
	key    kv.Key
	rec    kv.Record
	del    bool
	ver    kv.Version
	stored sim.Time
}

// DB is one Cassandra deployment.
type DB struct {
	k    *sim.Kernel
	cfg  Config
	cl   *cluster.Cluster
	reps []*Replica
	ring ring

	nextVersion  kv.Version
	rrSeq        uint64 // deterministic read-repair dice
	hintProcLive bool
	oracle       *consistency.Oracle
	tracer       *trace.Tracer

	// Metrics.
	Reads, Writes, ScansDone       int64
	BlockingRepairs, AsyncRepairs  int64
	RepairWrites, HintsStored      int64
	HintsReplayed, DigestMismatch  int64
	HintsExpired                   int64
	CoordinatorTimeouts, Unavails  int64
	StaleReads, ConsistentChecksOK int64
	// InterDCForwards counts mutations forwarded across a WAN link — one
	// per (write, remote DC with a live replica), never one per remote
	// replica, which is the bandwidth contract of the forwarding path.
	InterDCForwards int64
}

// New builds a database over the given server nodes.
func New(k *sim.Kernel, cfg Config, nodes []*cluster.Node) *DB {
	if len(cfg.DCReplicas) > 0 {
		// Clamp each DC's target to its actual host count and derive the
		// effective total replication factor.
		hosts := make([]int, len(cfg.DCReplicas))
		for _, n := range nodes {
			if n.Zone < len(hosts) {
				hosts[n.Zone]++
			}
		}
		perDC := append([]int(nil), cfg.DCReplicas...)
		total := 0
		for z := range perDC {
			if perDC[z] < 0 {
				perDC[z] = 0
			}
			if perDC[z] > hosts[z] {
				perDC[z] = hosts[z]
			}
			total += perDC[z]
		}
		cfg.DCReplicas = perDC
		cfg.Replication = total
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.Replication > len(nodes) {
		cfg.Replication = len(nodes)
	}
	if cfg.VNodes < 1 {
		cfg.VNodes = 1
	}
	db := &DB{k: k, cfg: cfg}
	if len(nodes) > 0 {
		db.cl = nodes[0].Cluster()
	}
	for i, n := range nodes {
		rep := &Replica{Node: n}
		rep.engine = storage.NewEngine(k, cfg.Engine,
			storage.LocalIO{Disk: n.Disk},
			storage.DiskLog{Disk: n.Disk},
			k.Seed()^int64(i+101))
		db.reps = append(db.reps, rep)
	}
	rng := k.Rand()
	db.ring = buildRing(db.reps, cfg.VNodes, rng.Uint64)
	return db
}

// SetOracle attaches a consistency oracle observing every write lifecycle
// event and read observation. Pass nil (the default) to run unobserved:
// every hook call site is gated on a nil check, so the paper's performance
// experiments pay nothing for the instrumentation.
func (db *DB) SetOracle(o *consistency.Oracle) { db.oracle = o }

// Oracle returns the attached consistency oracle, if any.
func (db *DB) Oracle() *consistency.Oracle { return db.oracle }

// SetTracer attaches a request tracer recording per-phase spans along the
// read, write, repair, and hint paths. Pass nil (the default) to run
// untraced: like the oracle, every call site is nil-gated.
func (db *DB) SetTracer(t *trace.Tracer) {
	db.tracer = t
	for _, rep := range db.reps {
		node := rep.Node
		if t == nil {
			rep.engine.OnWALSync = nil
			continue
		}
		rep.engine.OnWALSync = func(p *sim.Proc, start sim.Time) {
			t.Phase(p, trace.PhaseWAL, node.ID, start)
		}
	}
}

// Tracer returns the attached tracer, if any.
func (db *DB) Tracer() *trace.Tracer { return db.tracer }

// Replicas returns the database's hosts.
func (db *DB) Replicas() []*Replica { return db.reps }

// ReplicasFor returns the replica set for key in ring order (main replica
// first).
func (db *DB) ReplicasFor(key kv.Key) []*Replica {
	if len(db.cfg.DCReplicas) > 0 {
		return db.ring.replicasForDCs(key, db.cfg.DCReplicas)
	}
	if db.cfg.TopologyAware {
		return db.ring.replicasForTopology(key, db.cfg.Replication)
	}
	return db.ring.replicasFor(key, db.cfg.Replication)
}

// localPlan restricts a replica list to the coordinator's zone for
// LOCAL_QUORUM: it returns the live local replicas and the majority count
// among them.
func localPlan(replicas []*Replica, zone int) (local []*Replica, need int) {
	for _, r := range replicas {
		if r.Node.Zone == zone && !r.Node.Down() {
			local = append(local, r)
		}
	}
	return local, len(local)/2 + 1
}

// execCoord charges coordinator CPU for one request. With a tracer
// attached it splits the time into coordinator queueing (stop-the-world
// pause + CPU-slot wait) and coordinator service phases.
func (db *DB) execCoord(p *sim.Proc, n *cluster.Node, cost time.Duration) {
	if db.tracer == nil {
		n.Exec(p, cost)
		return
	}
	t0 := p.Now()
	wait := n.ExecTimed(p, cost)
	if wait > 0 {
		db.tracer.Interval(p, trace.PhaseCoordQueue, n.ID, t0, t0.Add(wait))
	}
	db.tracer.Phase(p, trace.PhaseCoord, n.ID, t0.Add(wait))
}

// version issues the next write timestamp.
func (db *DB) version() kv.Version {
	db.nextVersion++
	return kv.Version(db.k.Now()) + db.nextVersion
}

// rollRepair decides deterministically whether a read triggers background
// read repair, approximating an independent coin with P = ReadRepairChance.
func (db *DB) rollRepair() bool {
	if db.cfg.ReadRepairChance <= 0 {
		return false
	}
	db.rrSeq++
	period := uint64(1.0 / db.cfg.ReadRepairChance)
	if period == 0 {
		period = 1
	}
	return db.rrSeq%period == 0
}

// mutationSize models the wire size of a mutation.
func (db *DB) mutationSize(key kv.Key, rec kv.Record) int {
	return rec.Bytes() + len(key) + db.cfg.RequestOverhead
}

// applyLocal performs the replica-side work of a mutation: CPU (internal
// verb, cheaper than a client-facing request), commit log append, memtable
// apply. src tells the oracle how the version reached this replica (write
// fan-out, read repair, or hint replay).
func (rep *Replica) applyLocal(p *sim.Proc, db *DB, key kv.Key, rec kv.Record, del bool, ver kv.Version, src consistency.ApplySource) {
	if d := db.cfg.MutationStageMeanDelay; d > 0 {
		mean := float64(d) * float64(db.cfg.Replication)
		p.Sleep(time.Duration(p.Rand().ExpFloat64() * mean))
	}
	cost := db.cl.Config.InternalOpCost
	if cost <= 0 {
		cost = db.cl.Config.CPUOpCost
	}
	var t0 sim.Time
	if db.tracer != nil {
		t0 = p.Now()
	}
	rep.Node.Exec(p, cost)
	if del {
		rep.engine.ApplyDelete(p, key, ver)
	} else {
		rep.engine.Apply(p, key, rec, ver)
	}
	if db.tracer != nil {
		db.tracer.Phase(p, trace.PhaseStorage, rep.Node.ID, t0)
	}
	if db.oracle != nil {
		db.oracle.ReplicaApply(key, ver, rep.Node.ID, src, p.Now())
	}
}

// write is the coordinator write path, executed by the client's process at
// the coordinator node. It sends the mutation to every replica, stores
// hints for down ones, and returns once cl.Required replicas acked.
func (db *DB) write(p *sim.Proc, coord *Replica, key kv.Key, rec kv.Record, del bool, cl kv.ConsistencyLevel) error {
	replicas := db.ReplicasFor(key)
	if db.zones() > 1 {
		return db.writeMultiDC(p, coord, key, rec, del, cl, replicas)
	}
	need := cl.Required(len(replicas))
	// counts reports whether a replica's ack advances the quorum; for
	// LOCAL_QUORUM only acks from the coordinator's zone count, though
	// the mutation is still sent everywhere.
	counts := func(*Replica) bool { return true }
	countable := 0
	for _, r := range replicas {
		if !r.Node.Down() {
			countable++
		}
	}
	if cl == kv.LocalQuorum {
		local, localNeed := localPlan(replicas, coord.Node.Zone)
		need = localNeed
		countable = len(local)
		inLocal := make(map[*Replica]bool, len(local))
		for _, r := range local {
			inLocal[r] = true
		}
		counts = func(r *Replica) bool { return inLocal[r] }
	}
	if countable < need {
		db.Unavails++
		return kv.ErrUnavailable
	}
	ver := db.version()
	if db.oracle != nil {
		db.oracle.WriteBegin(key, ver, len(replicas), db.k.Now())
	}
	size := db.mutationSize(key, rec)
	q := sim.NewQuorum(db.k, need, countable)
	for _, rep := range replicas {
		rep := rep
		if rep.Node.Down() {
			if db.cfg.HintedHandoff {
				db.noteHint(coord, hint{target: rep, key: key, rec: rec, del: del, ver: ver, stored: db.k.Now()})
			}
			continue
		}
		if rep == coord {
			// Local apply still runs concurrently so a slow local
			// commit-log append does not serialize the fan-out.
			db.k.Go("c*-local-write", func(q2 *sim.Proc) {
				rep.applyLocal(q2, db, key, rec, del, ver, consistency.ApplyWrite)
				if counts(rep) {
					q.Succeed()
				}
			})
			continue
		}
		db.k.Go("c*-repl-write", func(q2 *sim.Proc) {
			var t0 sim.Time
			if db.tracer != nil {
				t0 = q2.Now()
			}
			if !coord.Node.SendTo(q2, rep.Node, size) {
				if counts(rep) {
					q.Fail()
				}
				return
			}
			if db.tracer != nil {
				db.tracer.Phase(q2, trace.PhaseFanout, rep.Node.ID, t0)
			}
			rep.applyLocal(q2, db, key, rec, del, ver, consistency.ApplyWrite)
			var t1 sim.Time
			if db.tracer != nil {
				t1 = q2.Now()
			}
			if !rep.Node.SendTo(q2, coord.Node, db.cfg.RequestOverhead) {
				if counts(rep) {
					q.Fail()
				}
				return
			}
			if db.tracer != nil {
				db.tracer.Phase(q2, trace.PhaseFanout, coord.Node.ID, t1)
			}
			if counts(rep) {
				q.Succeed()
			}
		})
	}
	ok, decided := q.WaitTimeout(p, db.cfg.Timeout)
	if !decided {
		db.CoordinatorTimeouts++
		return kv.ErrTimeout
	}
	if !ok {
		db.Unavails++
		return kv.ErrUnavailable
	}
	if db.oracle != nil {
		db.oracle.WriteAck(key, ver, db.k.Now())
	}
	return nil
}

// readResponse carries one replica's answer to a read.
type readResponse struct {
	rep  *Replica
	row  *storage.Row // full data for the data read, nil for pure digests
	ver  kv.Version   // row version (the digest)
	ok   bool
	data bool
}

// fetchRow reads the full row from rep on behalf of a spawned process,
// returning the response through f.
func (db *DB) fetchRow(coord, rep *Replica, key kv.Key, digestOnly bool, f *sim.Future[readResponse], repair bool) {
	db.k.Go("c*-read", func(q *sim.Proc) {
		// A background-repair refetch bills its whole leg — request,
		// replica service, response — as one read-repair span; the leg's
		// fanout and storage sub-phases are muted so they are not
		// double-counted. Per-leg billing is what makes the repair bill
		// grow with the replication factor: the legs run concurrently, so
		// a single wall-clock span over all of them would only measure
		// the slowest.
		if repair {
			if tr := db.tracer; tr != nil {
				t0 := q.Now()
				prev := tr.Mute(q)
				defer func() {
					tr.Unmute(q, prev)
					tr.Interval(q, trace.PhaseReadRepair, rep.Node.ID, t0, q.Now())
				}()
			}
		}
		resp := readResponse{rep: rep, data: !digestOnly}
		reqSize := len(key) + db.cfg.RequestOverhead
		if rep != coord {
			var t0 sim.Time
			if db.tracer != nil {
				t0 = q.Now()
			}
			if !coord.Node.SendTo(q, rep.Node, reqSize) {
				f.Set(resp)
				return
			}
			if db.tracer != nil {
				db.tracer.Phase(q, legPhase(coord.Node, rep.Node), rep.Node.ID, t0)
			}
		}
		var s0 sim.Time
		if db.tracer != nil {
			s0 = q.Now()
		}
		rep.Node.Exec(q, db.cl.Config.CPUOpCost)
		row := rep.engine.Get(q, key)
		if db.tracer != nil {
			db.tracer.Phase(q, trace.PhaseStorage, rep.Node.ID, s0)
		}
		respSize := db.cfg.RequestOverhead
		if !digestOnly && row != nil {
			respSize += row.Bytes()
		}
		if rep != coord {
			var t1 sim.Time
			if db.tracer != nil {
				t1 = q.Now()
			}
			if !rep.Node.SendTo(q, coord.Node, respSize) {
				f.Set(resp)
				return
			}
			if db.tracer != nil {
				db.tracer.Phase(q, legPhase(rep.Node, coord.Node), coord.Node.ID, t1)
			}
		}
		resp.ok = true
		if row != nil {
			resp.ver = row.Version()
			if !digestOnly {
				resp.row = row
			}
		}
		f.Set(resp)
	})
}

// read is the coordinator read path: a full data read from the main
// replica, digest reads from the next cl.Required-1 replicas, blocking
// read repair on digest mismatch, and probabilistic background repair
// across all replicas.
func (db *DB) read(p *sim.Proc, coord *Replica, key kv.Key, cl kv.ConsistencyLevel) (*storage.Row, error) {
	replicas := db.ReplicasFor(key)
	// Proximity-sort the live replicas (dynamic-snitch style): the
	// coordinator's zone first, ring order within a zone. On the paper's
	// single rack this is exactly ring order, so the "main replica" of
	// §2 is unchanged there.
	var alive []*Replica
	for _, r := range replicas {
		if !r.Node.Down() && r.Node.Zone == coord.Node.Zone {
			alive = append(alive, r)
		}
	}
	for _, r := range replicas {
		if !r.Node.Down() && r.Node.Zone != coord.Node.Zone {
			alive = append(alive, r)
		}
	}
	need := cl.Required(len(replicas))
	pool := alive
	switch {
	case cl == kv.LocalQuorum && db.zones() > 1:
		// LOCAL_QUORUM reads contact only the coordinator's DC, blocking
		// for a majority of its replication factor; a coordinator whose DC
		// holds no replicas degrades to the plain-quorum pool.
		if local, localNeed := dcLocalPlan(replicas, coord.Node.Zone); localNeed > 0 {
			pool = local
			need = localNeed
		}
	case cl == kv.LocalQuorum:
		// LOCAL_QUORUM reads contact only the coordinator's zone.
		local, localNeed := localPlan(replicas, coord.Node.Zone)
		if len(local) > 0 {
			pool = local
			need = localNeed
		}
	case cl == kv.EachQuorum && db.zones() > 1:
		// EACH_QUORUM reads block on a majority in every DC.
		eq, ok := db.eachQuorumRead(replicas, coord.Node.Zone)
		if !ok {
			db.Unavails++
			return nil, kv.ErrUnavailable
		}
		pool = eq
		need = len(eq)
	}
	if len(pool) < need {
		db.Unavails++
		return nil, kv.ErrUnavailable
	}
	contacted := pool[:need]
	futs := make([]*sim.Future[readResponse], len(contacted))
	for i, rep := range contacted {
		futs[i] = sim.NewFuture[readResponse](db.k)
		db.fetchRow(coord, rep, key, i != 0, futs[i], false)
	}
	deadline := db.cfg.Timeout
	start := p.Now()
	resps := make([]readResponse, 0, len(futs))
	for _, f := range futs {
		remaining := deadline - p.Now().Sub(start)
		r, ok := f.AwaitTimeout(p, remaining)
		if !ok {
			db.CoordinatorTimeouts++
			return nil, kv.ErrTimeout
		}
		if !r.ok {
			db.Unavails++
			return nil, kv.ErrUnavailable
		}
		resps = append(resps, r)
	}

	dataRow := resps[0].row
	dataVer := resps[0].ver

	// Digest comparison → blocking read repair among contacted replicas.
	mismatch := false
	for _, r := range resps[1:] {
		if r.ver != dataVer {
			mismatch = true
			break
		}
	}
	if mismatch {
		db.DigestMismatch++
		db.BlockingRepairs++
		// The repair is traced as one composite span: its internal
		// refetches and repair writes are muted so they are not
		// double-billed as fanout/storage work.
		var t0 sim.Time
		var prev any
		if db.tracer != nil {
			db.tracer.Mark(p, trace.PhaseDigest, coord.Node.ID)
			t0 = p.Now()
			prev = db.tracer.Mute(p)
		}
		dataRow = db.blockingRepair(p, coord, key, contacted, dataRow)
		if db.tracer != nil {
			db.tracer.Unmute(p, prev)
			db.tracer.Interval(p, trace.PhaseReadRepair, coord.Node.ID, t0, p.Now())
		}
	}

	// Background read repair across the full replica set. The replicas
	// already contacted are not re-read: their responses feed the
	// reconciliation directly (Cassandra folds the CL responses into the
	// global repair's response set).
	if len(alive) > len(contacted) && db.rollRepair() {
		db.AsyncRepairs++
		inContacted := make(map[*Replica]bool, len(contacted))
		for _, r := range contacted {
			inContacted[r] = true
		}
		rest := make([]*Replica, 0, len(alive)-len(contacted))
		for _, r := range alive {
			if !inContacted[r] {
				rest = append(rest, r)
			}
		}
		known := make([]readResponse, len(resps))
		copy(known, resps)
		// The background repair process inherits this read's trace
		// context, so its work is billed to the read class — the F4
		// mechanism made measurable. Each refetch and repair-write leg
		// records its own read-repair span (the legs are concurrent, so
		// per-leg billing — not one wall-clock span across them — is
		// what scales the recorded bill with RF−1).
		db.k.Go("c*-bg-repair", func(q *sim.Proc) {
			db.repairRest(q, coord, key, rest, known)
		})
	}
	return dataRow, nil
}

// reconcile folds the successful responses' rows into merged in ascending
// replica node-id order. Row merging is last-write-wins with the incumbent
// cell kept on a version tie, so a fixed fold order pins tie resolution to
// the lowest node id regardless of contact order, arrival order, or which
// replica happened to serve the data read. Write timestamps are unique
// today (one coordinator counter), which makes this behavior-neutral; it
// exists so reconciliation can never become order-dependent if versioning
// ever gains ties, and so oracle version-lag counts stay deterministic.
func reconcile(merged *storage.Row, resps []readResponse) {
	order := make([]int, 0, len(resps))
	for i := range resps {
		if resps[i].ok {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return resps[order[a]].rep.Node.ID < resps[order[b]].rep.Node.ID
	})
	for _, i := range order {
		merged.MergeFrom(resps[i].row)
	}
}

// blockingRepair fetches full rows from every contacted replica, merges
// them, writes the reconciled row back to stale replicas, and returns the
// merged row. The caller waits: this is Cassandra's foreground repair that
// delays the read.
func (db *DB) blockingRepair(p *sim.Proc, coord *Replica, key kv.Key, reps []*Replica, have *storage.Row) *storage.Row {
	futs := make([]*sim.Future[readResponse], len(reps))
	for i, rep := range reps {
		futs[i] = sim.NewFuture[readResponse](db.k)
		db.fetchRow(coord, rep, key, false, futs[i], false)
	}
	merged := storage.NewRow()
	resps := make([]readResponse, 0, len(futs))
	for _, f := range futs {
		if r := f.Await(p); r.ok {
			resps = append(resps, r)
		}
	}
	reconcile(merged, resps)
	// The original data read from the main replica is folded last: it can
	// only matter when the main replica's refetch was lost in flight.
	if have != nil {
		merged.MergeFrom(have)
	}
	db.writeRepairs(p, coord, key, merged, resps, true)
	if !merged.Live() && merged.Version() == 0 {
		return nil
	}
	return merged
}

// repairRest reconciles the replicas of key that the read path did not
// contact, folding in the already-known responses (the caller is a
// dedicated background repair process).
//
// A subtlety: the contacted responses carried full data only for the main
// replica; pure digests know the version but not the cells. Version
// comparison against the merged row is still exact, so stale detection and
// the repair write are correct; a digest replica whose version already
// matches is skipped without a refetch, exactly like the real resolver.
func (db *DB) repairRest(p *sim.Proc, coord *Replica, key kv.Key, rest []*Replica, known []readResponse) {
	futs := make([]*sim.Future[readResponse], len(rest))
	for i, rep := range rest {
		futs[i] = sim.NewFuture[readResponse](db.k)
		db.fetchRow(coord, rep, key, false, futs[i], true)
	}
	merged := storage.NewRow()
	resps := make([]readResponse, 0, len(futs)+len(known))
	for _, r := range known {
		if r.ok {
			resps = append(resps, r)
		}
	}
	for _, f := range futs {
		if r := f.Await(p); r.ok {
			resps = append(resps, r)
		}
	}
	reconcile(merged, resps)
	db.writeRepairs(p, coord, key, merged, resps, false)
}

// writeRepairs sends the reconciled row to every responder whose version
// lags. When wait is true the caller blocks until the repairs finish.
func (db *DB) writeRepairs(p *sim.Proc, coord *Replica, key kv.Key, merged *storage.Row, resps []readResponse, wait bool) {
	target := merged.Version()
	if target == 0 {
		return
	}
	rec := merged.Record()
	var stale []*Replica
	for _, r := range resps {
		if r.ver < target {
			stale = append(stale, r.rep)
		}
	}
	if len(stale) == 0 {
		return
	}
	q := sim.NewQuorum(db.k, len(stale), len(stale))
	for _, rep := range stale {
		rep := rep
		db.RepairWrites++
		db.k.Go("c*-repair-write", func(q2 *sim.Proc) {
			defer q.Succeed()
			// Bill the repair write as a read-repair leg. Under a
			// blocking repair the caller already muted the context and
			// holds the composite span, so the Interval below is
			// dropped there; only background repair records per leg.
			if tr := db.tracer; tr != nil {
				t0 := q2.Now()
				prev := tr.Mute(q2)
				defer func() {
					tr.Unmute(q2, prev)
					tr.Interval(q2, trace.PhaseReadRepair, rep.Node.ID, t0, q2.Now())
				}()
			}
			size := db.mutationSize(key, rec)
			if rep != coord {
				if !coord.Node.SendTo(q2, rep.Node, size) {
					return
				}
			}
			if rec == nil {
				rep.applyLocal(q2, db, key, nil, true, merged.Tomb, consistency.ApplyRepair)
			} else {
				rep.applyLocal(q2, db, key, rec, false, target, consistency.ApplyRepair)
			}
			if rep != coord {
				rep.Node.SendTo(q2, coord.Node, db.cfg.RequestOverhead)
			}
		})
	}
	if wait {
		q.Wait(p)
	}
}

// scanPart is one replica's contribution to a range scan.
type scanPart struct {
	rows []storage.ScanRow
	ok   bool
}

// scan is the coordinator range-scan path. With a hash partitioner,
// consecutive keys scatter across the cluster, so the coordinator asks
// every live host for its local rows ≥ start and merges — the cost shape
// of get_range_slices over token ranges. Scans do not trigger read repair.
func (db *DB) scan(p *sim.Proc, coord *Replica, start kv.Key, limit int) []storage.ScanRow {
	alive := 0
	for _, rep := range db.reps {
		if !rep.Node.Down() {
			alive++
		}
	}
	if alive == 0 {
		return nil
	}
	// Each host holds roughly limit·RF/alive of the next limit global
	// keys; fetch that share plus slack. (An exact range scan would need
	// per-host iteration rounds; the slack makes short ranges complete
	// in one round at realistic cost.)
	perHost := limit*db.cfg.Replication/alive + 4
	if perHost > limit {
		perHost = limit
	}
	futs := make([]*sim.Future[scanPart], 0, len(db.reps))
	for _, rep := range db.reps {
		if rep.Node.Down() {
			continue
		}
		rep := rep
		f := sim.NewFuture[scanPart](db.k)
		futs = append(futs, f)
		db.k.Go("c*-scan", func(q *sim.Proc) {
			part := scanPart{}
			reqSize := len(start) + db.cfg.RequestOverhead
			if rep != coord {
				var t0 sim.Time
				if db.tracer != nil {
					t0 = q.Now()
				}
				if !coord.Node.SendTo(q, rep.Node, reqSize) {
					f.Set(part)
					return
				}
				if db.tracer != nil {
					db.tracer.Phase(q, trace.PhaseFanout, rep.Node.ID, t0)
				}
			}
			var s0 sim.Time
			if db.tracer != nil {
				s0 = q.Now()
			}
			rep.Node.Exec(q, db.cl.Config.CPUOpCost)
			rows := rep.engine.Scan(q, start, perHost)
			if n := len(rows); n > 0 && db.cl.Config.ScanRowCost > 0 {
				rep.Node.Exec(q, time.Duration(n)*db.cl.Config.ScanRowCost)
			}
			if db.tracer != nil {
				db.tracer.Phase(q, trace.PhaseStorage, rep.Node.ID, s0)
			}
			respSize := db.cfg.RequestOverhead
			for _, r := range rows {
				respSize += r.Row.Bytes()
			}
			if rep != coord {
				var t1 sim.Time
				if db.tracer != nil {
					t1 = q.Now()
				}
				if !rep.Node.SendTo(q, coord.Node, respSize) {
					f.Set(part)
					return
				}
				if db.tracer != nil {
					db.tracer.Phase(q, trace.PhaseFanout, coord.Node.ID, t1)
				}
			}
			part.rows = rows
			part.ok = true
			f.Set(part)
		})
	}
	// Merge all parts in key order, deduplicating replicated rows.
	merged := make(map[kv.Key]*storage.Row)
	for _, f := range futs {
		part := f.Await(p)
		if !part.ok {
			continue
		}
		for _, r := range part.rows {
			if have, ok := merged[r.Key]; ok {
				have.MergeFrom(r.Row)
			} else {
				merged[r.Key] = r.Row
			}
		}
	}
	keys := make([]kv.Key, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sortKeys(keys)
	out := make([]storage.ScanRow, 0, limit)
	for _, k := range keys {
		if row := merged[k]; row.Live() {
			out = append(out, storage.ScanRow{Key: k, Row: row})
			if len(out) == limit {
				break
			}
		}
	}
	return out
}

func sortKeys(keys []kv.Key) {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
}

// noteHint records a hint and ensures the replay process is running. The
// process exits when all hints have drained, so simulations with no failed
// nodes terminate cleanly.
func (db *DB) noteHint(coord *Replica, h hint) {
	coord.hints = append(coord.hints, h)
	db.HintsStored++
	if !db.hintProcLive {
		db.hintProcLive = true
		db.k.Go("hint-replayer", db.hintReplayLoop)
	}
}

// hintReplayLoop periodically replays hints whose targets have recovered,
// exiting once none remain.
func (db *DB) hintReplayLoop(p *sim.Proc) {
	defer func() { db.hintProcLive = false }()
	// The replayer is spawned from whichever write first stored a hint;
	// detach so its long-lived work bills to the background class, not to
	// that op. Each replayed hint is one composite hint-replay span with
	// its internal apply muted.
	if db.tracer != nil {
		db.tracer.Detach(p)
	}
	for db.PendingHints() > 0 {
		p.Sleep(db.cfg.HintReplayInterval)
		for _, rep := range db.reps {
			if len(rep.hints) == 0 || rep.Node.Down() {
				continue
			}
			var keep []hint
			for _, h := range rep.hints {
				if p.Now().Sub(h.stored) > db.cfg.HintWindow {
					db.HintsExpired++
					continue
				}
				if h.target.Node.Down() {
					keep = append(keep, h)
					continue
				}
				size := db.mutationSize(h.key, h.rec)
				var t0 sim.Time
				var prev any
				if db.tracer != nil {
					t0 = p.Now()
					prev = db.tracer.Mute(p)
				}
				if !rep.Node.SendTo(p, h.target.Node, size) {
					if db.tracer != nil {
						db.tracer.Unmute(p, prev)
					}
					keep = append(keep, h)
					continue
				}
				h.target.applyLocal(p, db, h.key, h.rec, h.del, h.ver, consistency.ApplyHint)
				h.target.Node.SendTo(p, rep.Node, db.cfg.RequestOverhead)
				if db.tracer != nil {
					db.tracer.Unmute(p, prev)
					db.tracer.Interval(p, trace.PhaseHintReplay, h.target.Node.ID, t0, p.Now())
				}
				db.HintsReplayed++
			}
			rep.hints = keep
		}
	}
}

// PendingHints reports the number of stored, unreplayed hints.
func (db *DB) PendingHints() int {
	n := 0
	for _, rep := range db.reps {
		n += len(rep.hints)
	}
	return n
}

// FlushAll forces every replica's memtable to flush (between benchmark
// phases).
func (db *DB) FlushAll() {
	for _, rep := range db.reps {
		rep.engine.ForceFlush()
	}
}

// Engines returns the per-replica engines for metric collection.
func (db *DB) Engines() []*storage.Engine {
	es := make([]*storage.Engine, len(db.reps))
	for i, r := range db.reps {
		es[i] = r.engine
	}
	return es
}
