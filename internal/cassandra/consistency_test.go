package cassandra

import (
	"testing"
	"time"

	"cloudbench/internal/consistency"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/storage"
)

// TestReconcileTieBreaksByLowestNodeID: with equal versions on two
// replicas, the reconciled winner must be the lowest node id's cell,
// whatever order the responses arrived in.
func TestReconcileTieBreaksByLowestNodeID(t *testing.T) {
	k := sim.NewKernel(1)
	db, _ := testDB(k, 4, 3, nil)
	low, high := db.reps[0], db.reps[3]

	mkRow := func(val int) *storage.Row {
		r := storage.NewRow()
		r.Apply(kv.Record{"v": kv.SizedValue(val)}, 50) // same version
		return r
	}
	respLow := readResponse{rep: low, row: mkRow(1), ver: 50, ok: true}
	respHigh := readResponse{rep: high, row: mkRow(2), ver: 50, ok: true}

	for _, resps := range [][]readResponse{
		{respLow, respHigh},
		{respHigh, respLow},
	} {
		merged := storage.NewRow()
		reconcile(merged, resps)
		if got := merged.Record()["v"].Bytes(); got != 1 {
			t.Fatalf("order %v: tie winner value = %d, want node %d's value 1",
				[]int{resps[0].rep.Node.ID, resps[1].rep.Node.ID}, got, low.Node.ID)
		}
	}

	// Failed responses are excluded from the fold.
	merged := storage.NewRow()
	reconcile(merged, []readResponse{{rep: low, ok: false}, respHigh})
	if got := merged.Record()["v"].Bytes(); got != 2 {
		t.Fatalf("failed response included in reconcile: got %d", got)
	}
}

// TestMutationStageDelayOpensStaleWindowAtOne: with replica-stage jitter
// on, a CL=ONE read issued right after a write's ack can reach the main
// replica before the fan-out apply — and the oracle sees it — while RF=1
// and QUORUM stay structurally fresh.
func TestMutationStageDelayOpensStaleWindowAtOne(t *testing.T) {
	run := func(rf int, readCL, writeCL kv.ConsistencyLevel) consistency.Report {
		k := sim.NewKernel(31)
		db, _ := testDB(k, 6, rf, func(c *Config) {
			c.ReadRepairChance = 0
			c.MutationStageMeanDelay = time.Millisecond
		})
		oracle := consistency.New()
		db.SetOracle(oracle)
		oracle.BeginMeasure(0)
		cl := db.NewClient(db.reps[0].Node.Cluster().Nodes[6]).WithConsistency(readCL, writeCL)
		k.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < 150; i++ {
				if err := cl.Insert(p, key(i), kv.Record{"v": kv.SizedValue(i + 1)}); err != nil {
					t.Errorf("insert %d: %v", i, err)
					return
				}
				if _, err := cl.Read(p, key(i), nil); err != nil && err != kv.ErrNotFound {
					t.Errorf("read %d: %v", i, err)
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return oracle.Report()
	}

	one := run(3, kv.One, kv.One)
	if one.StaleReads == 0 {
		t.Fatalf("no stale reads at ONE/rf3 with stage jitter: %+v", one)
	}
	if single := run(1, kv.One, kv.One); single.StaleReads != 0 {
		t.Fatalf("rf1 stale=%d: the acking replica is the read replica", single.StaleReads)
	}
	if q := run(3, kv.Quorum, kv.Quorum); q.StaleReads != 0 {
		t.Fatalf("QUORUM stale=%d: read/write sets must intersect", q.StaleReads)
	}
}

// TestRecoveredReplicaStaleUntilHintReplay: after a fail/recover cycle
// the main replica serves its keys while still missing the down-window
// writes; the oracle counts the stale reads and the monotonic regression,
// and hint replay closes the gap.
func TestRecoveredReplicaStaleUntilHintReplay(t *testing.T) {
	k := sim.NewKernel(41)
	db, _ := testDB(k, 5, 3, func(c *Config) { c.ReadRepairChance = 0 })
	oracle := consistency.New()
	db.SetOracle(oracle)
	oracle.BeginMeasure(0)
	cl := db.NewClient(db.reps[0].Node.Cluster().Nodes[5])
	k.Spawn("client", func(p *sim.Proc) {
		target := key(7)
		main := db.ReplicasFor(target)[0]

		if err := cl.Update(p, target, kv.Record{"v": kv.SizedValue(1)}); err != nil {
			t.Fatal(err)
		}
		p.Sleep(50 * time.Millisecond) // v1 everywhere

		main.Node.Fail()
		if err := cl.Update(p, target, kv.Record{"v": kv.SizedValue(2)}); err != nil {
			t.Fatal(err) // acked by the two live replicas; hint stored for main
		}
		if rec, err := cl.Read(p, target, nil); err != nil || rec["v"].Bytes() != 2 {
			t.Fatalf("down-window read = %v %v, want v2 from a live replica", rec, err)
		}

		main.Node.Recover()
		rec, err := cl.Read(p, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rec["v"].Bytes() != 1 {
			t.Fatalf("post-recovery read = %v, want stale v1 from the recovered main", rec)
		}
		r := oracle.Report()
		if r.StaleReads != 1 || r.MonotonicViolations != 1 {
			t.Fatalf("stale=%d mono=%d, want 1/1", r.StaleReads, r.MonotonicViolations)
		}

		p.Sleep(30 * time.Second) // replay interval is 10s
		if rec, err := cl.Read(p, target, nil); err != nil || rec["v"].Bytes() != 2 {
			t.Fatalf("post-replay read = %v %v, want v2", rec, err)
		}
		r = oracle.Report()
		if r.HintApplies == 0 {
			t.Fatal("hint replay not observed by the oracle")
		}
		if r.StaleReads != 1 {
			t.Fatalf("stale=%d after replay, want still 1", r.StaleReads)
		}
		if r.FullyVisible != 2 {
			t.Fatalf("fully visible writes = %d, want both (v2 via hint)", r.FullyVisible)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestHintExpiryWindowBoundary: a hint older than HintWindow at replay
// time is dropped, a younger one for the same key survives and replays.
func TestHintExpiryWindowBoundary(t *testing.T) {
	k := sim.NewKernel(43)
	db, cl := testDB(k, 4, 3, func(c *Config) {
		c.HintWindow = 30 * time.Second
		c.HintReplayInterval = 20 * time.Second
	})
	k.Spawn("client", func(p *sim.Proc) {
		target := key(11)
		down := db.ReplicasFor(target)[1]
		down.Node.Fail()

		if err := cl.Update(p, target, kv.Record{"v": kv.SizedValue(1)}); err != nil {
			t.Fatal(err) // hint A stored at ~0s
		}
		p.Sleep(25 * time.Second) // pass at 20s keeps A (age < window)
		if db.HintsExpired != 0 {
			t.Fatalf("hint expired early at age 20s < window 30s")
		}
		if err := cl.Update(p, target, kv.Record{"v": kv.SizedValue(2)}); err != nil {
			t.Fatal(err) // hint B stored at ~25s
		}
		p.Sleep(10 * time.Second)
		down.Node.Recover() // up before the 40s pass
		p.Sleep(10 * time.Second)
		// The pass at 40s sees A at age 40s > window (expired) and B at age
		// 15s with a live target (replayed).
		if db.HintsExpired != 1 || db.HintsReplayed != 1 || db.PendingHints() != 0 {
			t.Fatalf("expired=%d replayed=%d pending=%d, want 1/1/0",
				db.HintsExpired, db.HintsReplayed, db.PendingHints())
		}
		row := down.engine.Get(p, target)
		if row == nil || row.Record()["v"].Bytes() != 2 {
			t.Fatalf("recovered replica row = %+v, want the surviving hint's v2", row)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
