package cassandra

// Multi-datacenter coordinator paths. A cluster with more than one zone
// (data center) switches writes and DC-aware reads onto the logic in this
// file: per-DC acknowledgement targets for LOCAL_QUORUM and EACH_QUORUM,
// and a forwarding write fan-out that sends ONE mutation per remote DC
// across the WAN — to a forwarder replica that relays it over local links —
// instead of one per remote replica, exactly as Cassandra's coordinator
// does. Single-zone clusters never reach this code and keep the original
// fan-out byte for byte.

import (
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/consistency"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/trace"
)

// zones returns the cluster's zone (data center) count; 1 without a
// cluster.
func (db *DB) zones() int {
	if db.cl == nil {
		return 1
	}
	return db.cl.Config.Zones
}

// legPhase picks the trace phase for one network leg: cross-DC legs bill
// to the wan phase so tracebreak can attribute wide-area latency; local
// legs stay replica fan-out.
func legPhase(a, b *cluster.Node) trace.Phase {
	if a.Zone != b.Zone {
		return trace.PhaseWAN
	}
	return trace.PhaseFanout
}

// dcLocalPlan restricts replicas to the coordinator's DC with the real
// NetworkTopologyStrategy LOCAL_QUORUM target: a majority of the DC's
// replication factor, counting down replicas — a DC that has lost half its
// replicas is unavailable at LOCAL_QUORUM even though the survivors could
// form a majority among themselves. need is 0 when the DC holds no
// replicas; the caller then degrades to a plain majority.
func dcLocalPlan(replicas []*Replica, zone int) (local []*Replica, need int) {
	rf := 0
	for _, r := range replicas {
		if r.Node.Zone != zone {
			continue
		}
		rf++
		if !r.Node.Down() {
			local = append(local, r)
		}
	}
	if rf == 0 {
		return nil, 0
	}
	return local, rf/2 + 1
}

// eachQuorumRead selects the contact set for an EACH_QUORUM read: for
// every DC holding replicas, the first majority-of-RF live replicas in
// ring order, the coordinator's DC first so a nearby replica serves the
// data read. ok is false when some DC cannot seat its majority.
func (db *DB) eachQuorumRead(replicas []*Replica, zone int) (pool []*Replica, ok bool) {
	zones := db.zones()
	rfZ := make([]int, zones)
	liveZ := make([][]*Replica, zones)
	for _, r := range replicas {
		z := r.Node.Zone
		rfZ[z]++
		if !r.Node.Down() {
			liveZ[z] = append(liveZ[z], r)
		}
	}
	for i := 0; i < zones; i++ {
		z := (zone + i) % zones
		if rfZ[z] == 0 {
			continue
		}
		n := rfZ[z]/2 + 1
		if len(liveZ[z]) < n {
			return nil, false
		}
		pool = append(pool, liveZ[z][:n]...)
	}
	return pool, true
}

// dcQuorum tracks write acknowledgements against either per-DC targets
// (LOCAL_QUORUM, EACH_QUORUM) or a single global target (the zone-agnostic
// levels), resolving a future as soon as the outcome is decided either
// way.
type dcQuorum struct {
	f    *sim.Future[bool]
	done bool
	// Per-zone mode: remaining acks required and tolerable losses per
	// zone; pending counts zones still short of their target.
	need, spare []int
	pending     int
	// Global mode: remaining acks and tolerable losses over all zones.
	global                bool
	needTotal, spareTotal int
}

// newZoneQuorum builds a per-zone tracker: need[z] acks from zone z, with
// live[z] countable replicas there.
func newZoneQuorum(k *sim.Kernel, need, live []int) *dcQuorum {
	q := &dcQuorum{f: sim.NewFuture[bool](k), need: need, spare: make([]int, len(need))}
	for z, n := range need {
		if n > 0 {
			q.pending++
			q.spare[z] = live[z] - n
		}
	}
	if q.pending == 0 {
		q.settle(true)
	}
	return q
}

// newGlobalQuorum builds a zone-agnostic tracker: need acks from countable
// live replicas anywhere.
func newGlobalQuorum(k *sim.Kernel, need, countable int) *dcQuorum {
	q := &dcQuorum{f: sim.NewFuture[bool](k), global: true, needTotal: need, spareTotal: countable - need}
	if need <= 0 {
		q.settle(true)
	}
	return q
}

func (q *dcQuorum) settle(v bool) {
	if q.done {
		return
	}
	q.done = true
	q.f.Set(v)
}

// ack records a successful replica write in zone z.
func (q *dcQuorum) ack(z int) {
	if q.done {
		return
	}
	if q.global {
		q.needTotal--
		if q.needTotal == 0 {
			q.settle(true)
		}
		return
	}
	if q.need[z] <= 0 {
		return
	}
	q.need[z]--
	if q.need[z] == 0 {
		q.pending--
		if q.pending == 0 {
			q.settle(true)
		}
	}
}

// fail records a lost replica write in zone z; once a zone (or the global
// count) can no longer reach its target the write is unavailable.
func (q *dcQuorum) fail(z int) {
	if q.done {
		return
	}
	if q.global {
		q.spareTotal--
		if q.spareTotal < 0 {
			q.settle(false)
		}
		return
	}
	if q.need[z] <= 0 {
		return
	}
	q.spare[z]--
	if q.spare[z] < 0 {
		q.settle(false)
	}
}

// waitTimeout blocks until the outcome is decided or the deadline passes.
func (q *dcQuorum) waitTimeout(p *sim.Proc, d time.Duration) (ok, decided bool) {
	return q.f.AwaitTimeout(p, d)
}

// writeMultiDC is the coordinator write path on a multi-DC cluster. The
// mutation reaches every replica, but differently per distance: replicas
// in the coordinator's own DC get a direct message each, while each remote
// DC with a live replica gets one message across the WAN to a forwarder
// that applies it and relays it to the DC's other replicas over local
// links. Every replica acks the coordinator directly; down replicas are
// hinted at the coordinator as usual.
func (db *DB) writeMultiDC(p *sim.Proc, coord *Replica, key kv.Key, rec kv.Record, del bool, cl kv.ConsistencyLevel, replicas []*Replica) error {
	zones := db.zones()
	rfZ := make([]int, zones)
	liveZ := make([]int, zones)
	byZone := make([][]*Replica, zones)
	for _, r := range replicas {
		z := r.Node.Zone
		rfZ[z]++
		if !r.Node.Down() {
			liveZ[z]++
		}
		byZone[z] = append(byZone[z], r)
	}
	countable := 0
	for _, n := range liveZ {
		countable += n
	}

	perZone := false
	need := make([]int, zones)
	needTotal := 0
	switch cl {
	case kv.EachQuorum:
		perZone = true
		for z, rf := range rfZ {
			if rf > 0 {
				need[z] = rf/2 + 1
			}
		}
	case kv.LocalQuorum:
		if cz := coord.Node.Zone; rfZ[cz] > 0 {
			perZone = true
			need[cz] = rfZ[cz]/2 + 1
		} else {
			// The coordinator's DC holds no replicas: degrade to a plain
			// majority, mirroring the read path.
			needTotal = cl.Required(len(replicas))
		}
	default:
		needTotal = cl.Required(len(replicas))
	}
	var q *dcQuorum
	if perZone {
		for z := range need {
			if liveZ[z] < need[z] {
				db.Unavails++
				return kv.ErrUnavailable
			}
		}
		q = newZoneQuorum(db.k, need, liveZ)
	} else {
		if countable < needTotal {
			db.Unavails++
			return kv.ErrUnavailable
		}
		q = newGlobalQuorum(db.k, needTotal, countable)
	}

	ver := db.version()
	if db.oracle != nil {
		db.oracle.WriteBegin(key, ver, len(replicas), db.k.Now())
	}
	size := db.mutationSize(key, rec)
	cz := coord.Node.Zone
	for z := 0; z < zones; z++ {
		group := byZone[z]
		if len(group) == 0 {
			continue
		}
		if z == cz {
			db.fanOutLocalDC(coord, group, key, rec, del, ver, size, q)
			continue
		}
		db.forwardToDC(coord, group, key, rec, del, ver, size, q)
	}
	ok, decided := q.waitTimeout(p, db.cfg.Timeout)
	if !decided {
		db.CoordinatorTimeouts++
		return kv.ErrTimeout
	}
	if !ok {
		db.Unavails++
		return kv.ErrUnavailable
	}
	if db.oracle != nil {
		db.oracle.WriteAck(key, ver, db.k.Now())
	}
	return nil
}

// fanOutLocalDC sends the mutation directly to every replica in the
// coordinator's own DC — the single-DC fan-out, scoped to one zone.
func (db *DB) fanOutLocalDC(coord *Replica, group []*Replica, key kv.Key, rec kv.Record, del bool, ver kv.Version, size int, q *dcQuorum) {
	z := coord.Node.Zone
	for _, rep := range group {
		rep := rep
		if rep.Node.Down() {
			if db.cfg.HintedHandoff {
				db.noteHint(coord, hint{target: rep, key: key, rec: rec, del: del, ver: ver, stored: db.k.Now()})
			}
			continue
		}
		if rep == coord {
			// Local apply still runs concurrently so a slow local
			// commit-log append does not serialize the fan-out.
			db.k.Go("c*-local-write", func(q2 *sim.Proc) {
				rep.applyLocal(q2, db, key, rec, del, ver, consistency.ApplyWrite)
				q.ack(z)
			})
			continue
		}
		db.k.Go("c*-repl-write", func(q2 *sim.Proc) {
			var t0 sim.Time
			if db.tracer != nil {
				t0 = q2.Now()
			}
			if !coord.Node.SendTo(q2, rep.Node, size) {
				q.fail(z)
				return
			}
			if db.tracer != nil {
				db.tracer.Phase(q2, trace.PhaseFanout, rep.Node.ID, t0)
			}
			rep.applyLocal(q2, db, key, rec, del, ver, consistency.ApplyWrite)
			db.ackCoordinator(q2, rep, coord, q)
		})
	}
}

// forwardToDC sends the mutation once across the WAN to the first live
// replica of a remote DC; that forwarder applies it and relays it over
// local links to the DC's other live replicas. A dropped forward leg loses
// the mutation for the whole DC, so it fails every live replica there.
func (db *DB) forwardToDC(coord *Replica, group []*Replica, key kv.Key, rec kv.Record, del bool, ver kv.Version, size int, q *dcQuorum) {
	live := make([]*Replica, 0, len(group))
	for _, rep := range group {
		if rep.Node.Down() {
			if db.cfg.HintedHandoff {
				db.noteHint(coord, hint{target: rep, key: key, rec: rec, del: del, ver: ver, stored: db.k.Now()})
			}
			continue
		}
		live = append(live, rep)
	}
	if len(live) == 0 {
		return
	}
	z := live[0].Node.Zone
	fwd := live[0]
	db.InterDCForwards++
	db.k.Go("c*-fwd-write", func(q2 *sim.Proc) {
		var t0 sim.Time
		if db.tracer != nil {
			t0 = q2.Now()
		}
		if !coord.Node.SendTo(q2, fwd.Node, size) {
			for range live {
				q.fail(z)
			}
			return
		}
		if db.tracer != nil {
			db.tracer.Phase(q2, trace.PhaseWAN, fwd.Node.ID, t0)
		}
		// Relay before the forwarder's own apply so a slow local commit
		// log does not serialize the intra-DC fan-out.
		for _, rep := range live[1:] {
			rep := rep
			db.k.Go("c*-relay-write", func(q3 *sim.Proc) {
				var r0 sim.Time
				if db.tracer != nil {
					r0 = q3.Now()
				}
				if !fwd.Node.SendTo(q3, rep.Node, size) {
					q.fail(z)
					return
				}
				if db.tracer != nil {
					db.tracer.Phase(q3, trace.PhaseFanout, rep.Node.ID, r0)
				}
				rep.applyLocal(q3, db, key, rec, del, ver, consistency.ApplyWrite)
				db.ackCoordinator(q3, rep, coord, q)
			})
		}
		fwd.applyLocal(q2, db, key, rec, del, ver, consistency.ApplyWrite)
		db.ackCoordinator(q2, fwd, coord, q)
	})
}

// ackCoordinator sends a replica's write ack back to the coordinator —
// billing cross-DC acks to the wan phase — and resolves it against the
// quorum.
func (db *DB) ackCoordinator(p *sim.Proc, rep, coord *Replica, q *dcQuorum) {
	z := rep.Node.Zone
	var t0 sim.Time
	if db.tracer != nil {
		t0 = p.Now()
	}
	if !rep.Node.SendTo(p, coord.Node, db.cfg.RequestOverhead) {
		q.fail(z)
		return
	}
	if db.tracer != nil {
		db.tracer.Phase(p, legPhase(rep.Node, coord.Node), coord.Node.ID, t0)
	}
	q.ack(z)
}
