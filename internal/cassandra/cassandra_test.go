package cassandra

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

// testDB builds servers on nodes 0..n-2 and a client on the last node.
func testDB(k *sim.Kernel, servers, rf int, mutate func(*Config)) (*DB, *Client) {
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = servers + 1
	c := cluster.New(k, ccfg)
	cfg := DefaultConfig()
	cfg.Replication = rf
	if mutate != nil {
		mutate(&cfg)
	}
	db := New(k, cfg, c.Nodes[:servers])
	return db, db.NewClient(c.Nodes[servers])
}

func key(i int) kv.Key { return kv.Key(fmt.Sprintf("user%08d", i)) }

func TestRingReplicasDistinctAndStable(t *testing.T) {
	k := sim.NewKernel(1)
	db, _ := testDB(k, 6, 3, nil)
	for i := 0; i < 100; i++ {
		a := db.ReplicasFor(key(i))
		b := db.ReplicasFor(key(i))
		if len(a) != 3 {
			t.Fatalf("replicas = %d", len(a))
		}
		seen := map[*Replica]bool{}
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("placement not deterministic")
			}
			if seen[a[j]] {
				t.Fatal("duplicate replica")
			}
			seen[a[j]] = true
		}
	}
}

func TestRingBalance(t *testing.T) {
	k := sim.NewKernel(2)
	db, _ := testDB(k, 8, 1, nil)
	counts := map[*Replica]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[db.ReplicasFor(key(i))[0]]++
	}
	want := keys / 8
	for rep, n := range counts {
		if n < want/4 || n > want*4 {
			t.Fatalf("replica %v owns %d of %d keys (want ~%d): imbalanced ring", rep.Node.Name, n, keys, want)
		}
	}
}

func TestHashKeyDeterministicAndSpread(t *testing.T) {
	f := func(s string) bool { return hashKey(kv.Key(s)) == hashKey(kv.Key(s)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if hashKey("a") == hashKey("b") {
		t.Fatal("suspicious collision on trivial keys")
	}
}

func TestWriteReadRoundTripAtOne(t *testing.T) {
	k := sim.NewKernel(1)
	_, cl := testDB(k, 5, 3, nil)
	k.Spawn("client", func(p *sim.Proc) {
		if err := cl.Insert(p, key(1), kv.Record{"f": kv.SizedValue(100)}); err != nil {
			t.Fatal(err)
		}
		p.Sleep(50 * time.Millisecond) // let replication settle
		rec, err := cl.Read(p, key(1), nil)
		if err != nil || rec["f"].Bytes() != 100 {
			t.Fatalf("rec=%v err=%v", rec, err)
		}
		if _, err := cl.Read(p, key(404), nil); err != kv.ErrNotFound {
			t.Fatalf("missing key err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQuorumReadYourWrites(t *testing.T) {
	// R+W > N: a QUORUM read immediately after a QUORUM write must see
	// it, for every key, despite replica lag.
	k := sim.NewKernel(13)
	_, base := testDB(k, 6, 3, nil)
	cl := base.WithConsistency(kv.Quorum, kv.Quorum)
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			rec := kv.Record{"v": kv.SizedValue(i + 1)}
			if err := cl.Update(p, key(i), rec); err != nil {
				t.Fatal(err)
			}
			got, err := cl.Read(p, key(i), nil)
			if err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			if got["v"].Bytes() != i+1 {
				t.Fatalf("quorum read %d stale: %v", i, got)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAllReadOneSeesLatest(t *testing.T) {
	k := sim.NewKernel(17)
	_, base := testDB(k, 6, 3, nil)
	cl := base.WithConsistency(kv.One, kv.All)
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 60; i++ {
			rec := kv.Record{"v": kv.SizedValue(i + 1)}
			if err := cl.Update(p, key(i), rec); err != nil {
				t.Fatal(err)
			}
			got, err := cl.Read(p, key(i), nil)
			if err != nil || got["v"].Bytes() != i+1 {
				t.Fatalf("W=ALL R=ONE stale at %d: %v %v", i, got, err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConsistencyOneAllowsStaleReadUnderReplicaLag(t *testing.T) {
	// Force replica lag by making one replica's node very slow, then
	// verify a ONE read served by the slow main replica can be stale —
	// and that the blocking repair machinery is what QUORUM uses to
	// avoid this.
	k := sim.NewKernel(23)
	db, cl := testDB(k, 4, 3, func(c *Config) { c.ReadRepairChance = 0 })
	k.Spawn("client", func(p *sim.Proc) {
		target := key(7)
		reps := db.ReplicasFor(target)
		main := reps[0]
		// Saturate the main replica's disk so its commit-log append (and
		// thus its memtable apply) lags far behind the others.
		for i := 0; i < 8; i++ {
			db.k.Spawn("hog", func(q *sim.Proc) {
				main.Node.Disk.Read(q, 64<<20, true) // ~0.5s each
			})
		}
		p.Sleep(time.Millisecond)
		if err := cl.Update(p, target, kv.Record{"v": kv.SizedValue(42)}); err != nil {
			t.Fatal(err)
		}
		// ONE read goes to the main replica, which has not applied yet.
		if _, err := cl.Read(p, target, nil); err == kv.ErrNotFound {
			db.StaleReads++ // expected: stale (key invisible on main)
		}
		if db.StaleReads == 0 {
			t.Skip("main replica applied in time; lag window not hit")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDigestMismatchTriggersBlockingRepair(t *testing.T) {
	k := sim.NewKernel(31)
	db, base := testDB(k, 4, 3, func(c *Config) { c.ReadRepairChance = 0 })
	cl := base.WithConsistency(kv.All, kv.One)
	k.Spawn("client", func(p *sim.Proc) {
		target := key(3)
		reps := db.ReplicasFor(target)
		// Write directly to only the main replica, leaving others stale.
		ver := db.version()
		reps[0].engine.Apply(p, target, kv.Record{"v": kv.SizedValue(9)}, ver)
		// An ALL read compares digests across all three replicas.
		rec, err := cl.Read(p, target, nil)
		if err != nil || rec["v"].Bytes() != 9 {
			t.Fatalf("rec=%v err=%v", rec, err)
		}
		if db.DigestMismatch == 0 || db.BlockingRepairs == 0 {
			t.Fatal("expected digest mismatch and blocking repair")
		}
		p.Sleep(time.Second)
		// All replicas converged.
		for _, rep := range reps {
			row := rep.engine.Get(p, target)
			if row == nil || row.Version() != ver {
				t.Fatalf("replica %s not repaired: %+v", rep.Node.Name, row)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundReadRepairConvergesReplicas(t *testing.T) {
	k := sim.NewKernel(37)
	db, cl := testDB(k, 4, 3, func(c *Config) { c.ReadRepairChance = 1.0 })
	k.Spawn("client", func(p *sim.Proc) {
		target := key(5)
		reps := db.ReplicasFor(target)
		ver := db.version()
		reps[0].engine.Apply(p, target, kv.Record{"v": kv.SizedValue(1)}, ver)
		// ONE read from main: digests not compared (single contact), but
		// chance=1 fires an async repair across all replicas.
		if _, err := cl.Read(p, target, nil); err != nil {
			t.Fatal(err)
		}
		p.Sleep(time.Second)
		if db.AsyncRepairs == 0 {
			t.Fatal("expected a background repair")
		}
		for _, rep := range reps {
			row := rep.engine.Get(p, target)
			if row == nil || row.Version() != ver {
				t.Fatalf("replica %s not repaired", rep.Node.Name)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHintedHandoffReplaysOnRecovery(t *testing.T) {
	k := sim.NewKernel(41)
	db, cl := testDB(k, 4, 3, nil)
	k.Spawn("client", func(p *sim.Proc) {
		target := key(11)
		reps := db.ReplicasFor(target)
		down := reps[2]
		down.Node.Fail()
		if err := cl.Insert(p, target, kv.Record{"v": kv.SizedValue(5)}); err != nil {
			t.Fatal(err) // ONE write succeeds with 2/3 alive
		}
		if db.HintsStored == 0 {
			t.Fatal("no hint stored for down replica")
		}
		p.Sleep(time.Second)
		down.Node.Recover()
		p.Sleep(30 * time.Second) // replay interval is 10s
		if db.HintsReplayed == 0 {
			t.Fatal("hint not replayed after recovery")
		}
		row := down.engine.Get(p, target)
		if row == nil || !row.Live() {
			t.Fatal("recovered replica missing hinted write")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnavailableWhenTooFewReplicas(t *testing.T) {
	k := sim.NewKernel(43)
	db, base := testDB(k, 4, 3, nil)
	cl := base.WithConsistency(kv.All, kv.All)
	k.Spawn("client", func(p *sim.Proc) {
		target := key(1)
		db.ReplicasFor(target)[1].Node.Fail()
		if err := cl.Update(p, target, kv.Record{"v": kv.SizedValue(1)}); err != kv.ErrUnavailable {
			t.Fatalf("write err = %v, want unavailable", err)
		}
		if _, err := cl.Read(p, target, nil); err != kv.ErrUnavailable {
			t.Fatalf("read err = %v, want unavailable", err)
		}
		// ONE still works.
		one := base.WithConsistency(kv.One, kv.One)
		if err := one.Update(p, target, kv.Record{"v": kv.SizedValue(1)}); err != nil {
			t.Fatalf("ONE write err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScanReturnsOrderedMergedRows(t *testing.T) {
	k := sim.NewKernel(47)
	_, cl := testDB(k, 5, 3, nil)
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			if err := cl.Insert(p, key(i), kv.Record{"v": kv.SizedValue(i + 1)}); err != nil {
				t.Fatal(err)
			}
		}
		p.Sleep(100 * time.Millisecond)
		rows, err := cl.Scan(p, key(10), 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 5 {
			t.Fatalf("rows = %d", len(rows))
		}
		for i, r := range rows {
			if r.Key != key(10+i) {
				t.Fatalf("row %d = %v", i, r.Key)
			}
			if r.Record["v"].Bytes() != 11+i {
				t.Fatalf("row %d record = %v", i, r.Record)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteVisibleThroughScanAndRead(t *testing.T) {
	k := sim.NewKernel(53)
	_, base := testDB(k, 4, 3, nil)
	cl := base.WithConsistency(kv.Quorum, kv.Quorum)
	k.Spawn("client", func(p *sim.Proc) {
		cl.Insert(p, key(1), kv.Record{"v": kv.SizedValue(1)})
		cl.Insert(p, key(2), kv.Record{"v": kv.SizedValue(2)})
		if err := cl.Delete(p, key(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Read(p, key(1), nil); err != kv.ErrNotFound {
			t.Fatalf("read deleted = %v", err)
		}
		p.Sleep(100 * time.Millisecond)
		rows, err := cl.Scan(p, key(1), 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 || rows[0].Key != key(2) {
			t.Fatalf("scan after delete = %+v", rows)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// measureWriteLatency returns mean insert latency at the given RF and CL.
func measureWriteLatency(t *testing.T, rf int, wcl kv.ConsistencyLevel) time.Duration {
	t.Helper()
	k := sim.NewKernel(61)
	_, base := testDB(k, 8, rf, func(c *Config) { c.ReadRepairChance = 0 })
	cl := base.WithConsistency(kv.One, wcl)
	var total time.Duration
	const ops = 200
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			start := p.Now()
			if err := cl.Insert(p, key(i*131%5000), kv.Record{"f": kv.SizedValue(1000)}); err != nil {
				t.Fatal(err)
			}
			total += p.Now().Sub(start)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return total / ops
}

func TestWriteLatencyFlatInRFAtOne(t *testing.T) {
	l1 := measureWriteLatency(t, 1, kv.One)
	l6 := measureWriteLatency(t, 6, kv.One)
	if l6 > 2*l1 {
		t.Fatalf("ONE write latency rf6=%v vs rf1=%v: should be nearly flat", l6, l1)
	}
}

func TestWriteLatencyGrowsWithConsistencyLevel(t *testing.T) {
	one := measureWriteLatency(t, 3, kv.One)
	all := measureWriteLatency(t, 3, kv.All)
	if all <= one {
		t.Fatalf("ALL write latency %v should exceed ONE %v", all, one)
	}
}

func TestReadRepairLoadGrowsWithRF(t *testing.T) {
	// F4 mechanism check: with read repair forced on, the repair traffic
	// per read grows with RF, so total disk work for the same op count
	// rises with the replication factor.
	work := func(rf int) int64 {
		k := sim.NewKernel(67)
		db, cl := testDB(k, 8, rf, func(c *Config) { c.ReadRepairChance = 1.0 })
		k.Spawn("client", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				cl.Insert(p, key(i), kv.Record{"f": kv.SizedValue(1000)})
				cl.Read(p, key(i), nil)
			}
			p.Sleep(2 * time.Second)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		var gets int64
		for _, e := range db.Engines() {
			gets += e.Gets
		}
		return gets
	}
	if w1, w6 := work(1), work(6); w6 <= w1 {
		t.Fatalf("repair work rf6=%d should exceed rf1=%d", w6, w1)
	}
}

func TestConcurrentClientsConvergence(t *testing.T) {
	k := sim.NewKernel(71)
	db, _ := testDB(k, 5, 3, nil)
	clientNode := db.reps[0].Node.Cluster().Nodes[5]
	for c := 0; c < 6; c++ {
		c := c
		cl := db.NewClient(clientNode).WithConsistency(kv.Quorum, kv.Quorum)
		k.Spawn(fmt.Sprintf("client%d", c), func(p *sim.Proc) {
			for i := 0; i < 40; i++ {
				kk := key(c*1000 + i)
				if err := cl.Insert(p, kk, kv.Record{"f": kv.SizedValue(100)}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if _, err := cl.Read(p, kk, nil); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if db.Writes != 240 || db.Reads != 240 {
		t.Fatalf("ops = %d/%d", db.Writes, db.Reads)
	}
}
