package cassandra

import (
	"errors"
	"testing"
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

// multiDCDB builds a GeoTopology cluster of len(perDC) data centers with
// spd servers each, replicated per DCReplicas, and a client attached in
// DC 0. Each DC block holds spd server nodes plus one client-attach node.
func multiDCDB(k *sim.Kernel, spd int, perDC []int, rtt time.Duration) (*DB, *Client, *cluster.Cluster) {
	dcs := len(perDC)
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = dcs * (spd + 1)
	sizes := make([]int, dcs)
	for i := range sizes {
		sizes[i] = spd + 1
	}
	ccfg.Geo = &cluster.GeoTopology{DCSizes: sizes, WANOneWay: cluster.WANChain(dcs, rtt)}
	c := cluster.New(k, ccfg)
	cfg := DefaultConfig()
	cfg.DCReplicas = perDC
	var servers []*cluster.Node
	for d := 0; d < dcs; d++ {
		servers = append(servers, c.Nodes[d*(spd+1):d*(spd+1)+spd]...)
	}
	db := New(k, cfg, servers)
	client := db.NewClient(c.Nodes[spd]) // last node of the DC-0 block
	return db, client, c
}

func TestDCReplicasPlacement(t *testing.T) {
	k := sim.NewKernel(11)
	db, _, _ := multiDCDB(k, 3, []int{2, 1}, 80*time.Millisecond)
	for i := 0; i < 200; i++ {
		reps := db.ReplicasFor(key(i))
		if len(reps) != 3 {
			t.Fatalf("key %d: %d replicas", i, len(reps))
		}
		perZone := [2]int{}
		for _, r := range reps {
			perZone[r.Node.Zone]++
		}
		if perZone[0] != 2 || perZone[1] != 1 {
			t.Fatalf("key %d: placement %v, want [2 1]", i, perZone)
		}
	}
}

func TestEachQuorumWritePaysWANButLocalQuorumDoesNot(t *testing.T) {
	k := sim.NewKernel(12)
	_, base, _ := multiDCDB(k, 3, []int{2, 2}, 80*time.Millisecond)
	lq := base.WithConsistency(kv.LocalQuorum, kv.LocalQuorum)
	eq := base.WithConsistency(kv.EachQuorum, kv.EachQuorum)
	var lqW, eqW, lqR, eqR time.Duration
	k.Spawn("client", func(p *sim.Proc) {
		if err := lq.Insert(p, key(1), kv.Record{"v": kv.SizedValue(10)}); err != nil {
			t.Error(err)
			return
		}
		timed := func(fn func() error) time.Duration {
			start := p.Now()
			for i := 0; i < 10; i++ {
				if err := fn(); err != nil {
					t.Error(err)
					return 0
				}
			}
			return p.Now().Sub(start) / 10
		}
		lqW = timed(func() error { return lq.Update(p, key(1), kv.Record{"v": kv.SizedValue(1)}) })
		eqW = timed(func() error { return eq.Update(p, key(1), kv.Record{"v": kv.SizedValue(2)}) })
		lqR = timed(func() error { _, err := lq.Read(p, key(1), nil); return err })
		eqR = timed(func() error { _, err := eq.Read(p, key(1), nil); return err })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// EACH_QUORUM pays the full 80ms WAN round trip (forward + ack);
	// LOCAL_QUORUM completes inside the DC.
	if eqW < 70*time.Millisecond || eqR < 70*time.Millisecond {
		t.Fatalf("EACH_QUORUM write=%v read=%v did not cross the WAN", eqW, eqR)
	}
	if lqW > 10*time.Millisecond || lqR > 10*time.Millisecond {
		t.Fatalf("LOCAL_QUORUM write=%v read=%v paid a wide-area wait", lqW, lqR)
	}
}

func TestSingleForwardPerRemoteDC(t *testing.T) {
	k := sim.NewKernel(13)
	db, base, _ := multiDCDB(k, 4, []int{2, 3}, 80*time.Millisecond)
	lq := base.WithConsistency(kv.LocalQuorum, kv.LocalQuorum)
	const writes = 10
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < writes; i++ {
			if err := lq.Insert(p, key(i), kv.Record{"v": kv.SizedValue(8)}); err != nil {
				t.Error(err)
				return
			}
		}
		p.Sleep(time.Second) // wide-area relay settles
		for i := 0; i < writes; i++ {
			for _, rep := range db.ReplicasFor(key(i)) {
				row := rep.engine.Get(p, key(i))
				if row == nil || !row.Live() {
					t.Errorf("key %d: replica %s (zone %d) missing the write",
						i, rep.Node.Name, rep.Node.Zone)
				}
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// One WAN message per write per remote DC — never one per remote
	// replica (DC 1 holds three replicas of every key).
	if db.InterDCForwards != writes {
		t.Fatalf("InterDCForwards = %d, want %d", db.InterDCForwards, writes)
	}
}

func TestPartitionFailsEachQuorumButNotLocalQuorum(t *testing.T) {
	k := sim.NewKernel(14)
	_, base, c := multiDCDB(k, 3, []int{2, 2}, 80*time.Millisecond)
	lq := base.WithConsistency(kv.LocalQuorum, kv.LocalQuorum)
	eq := base.WithConsistency(kv.EachQuorum, kv.EachQuorum)
	k.Spawn("client", func(p *sim.Proc) {
		if err := eq.Insert(p, key(5), kv.Record{"v": kv.SizedValue(4)}); err != nil {
			t.Error(err)
			return
		}
		c.PartitionZones(0, 1)
		if err := eq.Update(p, key(5), kv.Record{"v": kv.SizedValue(5)}); !errors.Is(err, kv.ErrUnavailable) {
			t.Errorf("EACH_QUORUM under partition: err = %v, want unavailable", err)
		}
		if err := lq.Update(p, key(5), kv.Record{"v": kv.SizedValue(6)}); err != nil {
			t.Errorf("LOCAL_QUORUM under partition: %v", err)
		}
		c.HealZones(0, 1)
		if err := eq.Update(p, key(5), kv.Record{"v": kv.SizedValue(7)}); err != nil {
			t.Errorf("EACH_QUORUM after heal: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
