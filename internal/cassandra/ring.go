package cassandra

import (
	"sort"

	"cloudbench/internal/kv"
)

// Token is a position on the hash ring.
type Token uint64

// hashKey maps a row key to its token: FNV-1a over the key bytes followed
// by a murmur-style 64-bit finalizer for avalanche, standing in for
// Cassandra's Murmur3Partitioner.
func hashKey(key kv.Key) Token {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	// fmix64
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return Token(h)
}

// ringEntry is one virtual node: a token owned by a replica.
type ringEntry struct {
	token Token
	rep   *Replica
}

// ring is the sorted token ring.
type ring struct {
	entries []ringEntry
}

// buildRing assigns vnodes tokens to every replica using the deterministic
// rng stream, then sorts the ring.
func buildRing(reps []*Replica, vnodes int, randToken func() uint64) ring {
	var r ring
	for _, rep := range reps {
		for v := 0; v < vnodes; v++ {
			r.entries = append(r.entries, ringEntry{token: Token(randToken()), rep: rep})
		}
	}
	sort.Slice(r.entries, func(i, j int) bool { return r.entries[i].token < r.entries[j].token })
	return r
}

// replicasFor walks clockwise from the key's token collecting the first rf
// distinct replicas (SimpleStrategy placement). The first returned replica
// is the paper's "main replica": it is contacted for every read regardless
// of consistency level.
func (r *ring) replicasFor(key kv.Key, rf int) []*Replica {
	if len(r.entries) == 0 {
		return nil
	}
	t := hashKey(key)
	start := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].token >= t })
	out := make([]*Replica, 0, rf)
	seen := make(map[*Replica]bool, rf)
	for i := 0; i < len(r.entries) && len(out) < rf; i++ {
		e := r.entries[(start+i)%len(r.entries)]
		if !seen[e.rep] {
			seen[e.rep] = true
			out = append(out, e.rep)
		}
	}
	return out
}

// replicasForDCs is NetworkTopologyStrategy placement with an explicit
// per-DC replication factor: walking clockwise from the key's token, a
// replica is taken when its zone still needs replicas, until every zone's
// target is met (or its hosts are exhausted). The first replica taken in
// walk order is the main replica.
func (r *ring) replicasForDCs(key kv.Key, perDC []int) []*Replica {
	if len(r.entries) == 0 {
		return nil
	}
	t := hashKey(key)
	start := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].token >= t })
	remaining := append([]int(nil), perDC...)
	total := 0
	for _, n := range remaining {
		total += n
	}
	out := make([]*Replica, 0, total)
	seen := make(map[*Replica]bool, total)
	for i := 0; i < len(r.entries) && len(out) < total; i++ {
		e := r.entries[(start+i)%len(r.entries)]
		z := e.rep.Node.Zone
		if seen[e.rep] || z >= len(remaining) || remaining[z] <= 0 {
			continue
		}
		seen[e.rep] = true
		remaining[z]--
		out = append(out, e.rep)
	}
	return out
}

// replicasForTopology is NetworkTopologyStrategy-style placement: walking
// clockwise, it first takes at most one replica per zone until every zone
// is represented (or exhausted), then fills the remainder in ring order.
// The result still starts with the ring-order main replica.
func (r *ring) replicasForTopology(key kv.Key, rf int) []*Replica {
	if len(r.entries) == 0 {
		return nil
	}
	t := hashKey(key)
	start := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].token >= t })
	out := make([]*Replica, 0, rf)
	seen := make(map[*Replica]bool, rf)
	zoneTaken := make(map[int]bool)
	// Pass 1: one replica per distinct zone, ring order.
	for i := 0; i < len(r.entries) && len(out) < rf; i++ {
		e := r.entries[(start+i)%len(r.entries)]
		if seen[e.rep] || zoneTaken[e.rep.Node.Zone] {
			continue
		}
		seen[e.rep] = true
		zoneTaken[e.rep.Node.Zone] = true
		out = append(out, e.rep)
	}
	// Pass 2: fill remaining slots in ring order.
	for i := 0; i < len(r.entries) && len(out) < rf; i++ {
		e := r.entries[(start+i)%len(r.entries)]
		if !seen[e.rep] {
			seen[e.rep] = true
			out = append(out, e.rep)
		}
	}
	return out
}
