package cassandra

import (
	"testing"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

// TestClientConformance runs the shared kv.Client conformance suite on a
// jitter-free Cassandra deployment: without MutationStage reordering,
// per-node FIFO delivery makes CL=ONE read-your-writes for a single
// client, so the data-model semantics are observable directly.
func TestClientConformance(t *testing.T) {
	k := sim.NewKernel(7)
	db, client := testDB(k, 6, 3, nil)
	_ = db
	kv.RunConformance(t, kv.Harness{
		NewClient: func() kv.Client { return client },
		Drive: func(fn func(p *sim.Proc)) error {
			k.Spawn("conformance", fn)
			return k.Run()
		},
	})
}
