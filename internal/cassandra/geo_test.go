package cassandra

import (
	"testing"
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

// geoDB builds a 2-zone cluster: servers split across zones, client in
// zone 0.
func geoDB(k *sim.Kernel, serversPerZone, rf int, topo bool) (*DB, *Client, *cluster.Cluster) {
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 2*serversPerZone + 1
	ccfg.Zones = 2
	ccfg.InterZoneRTT = 80 * time.Millisecond
	c := cluster.New(k, ccfg)
	cfg := DefaultConfig()
	cfg.Replication = rf
	cfg.TopologyAware = topo
	// The client node lands in zone 1 by contiguous split; relocate it
	// conceptually by using a zone-0 node as the client's attach point.
	servers := c.Nodes[:2*serversPerZone]
	db := New(k, cfg, servers)
	client := db.NewClient(c.Nodes[2*serversPerZone])
	return db, client, c
}

func TestZonesAssignedContiguously(t *testing.T) {
	k := sim.NewKernel(1)
	_, _, c := geoDB(k, 4, 3, true)
	if c.Nodes[0].Zone != 0 || c.Nodes[3].Zone != 0 {
		t.Fatalf("zones: %d %d", c.Nodes[0].Zone, c.Nodes[3].Zone)
	}
	if c.Nodes[5].Zone != 1 {
		t.Fatalf("node5 zone = %d", c.Nodes[5].Zone)
	}
	if len(c.ZoneNodes(0)) == 0 || len(c.ZoneNodes(1)) == 0 {
		t.Fatal("zone listing empty")
	}
}

func TestTopologyPlacementSpreadsZones(t *testing.T) {
	k := sim.NewKernel(2)
	db, _, _ := geoDB(k, 4, 2, true)
	for i := 0; i < 200; i++ {
		reps := db.ReplicasFor(key(i))
		if len(reps) != 2 {
			t.Fatalf("replicas = %d", len(reps))
		}
		if reps[0].Node.Zone == reps[1].Node.Zone {
			t.Fatalf("key %d: both replicas in zone %d", i, reps[0].Node.Zone)
		}
	}
}

func TestSimplePlacementIgnoresZones(t *testing.T) {
	k := sim.NewKernel(3)
	db, _, _ := geoDB(k, 4, 2, false)
	sameZone := 0
	for i := 0; i < 200; i++ {
		reps := db.ReplicasFor(key(i))
		if reps[0].Node.Zone == reps[1].Node.Zone {
			sameZone++
		}
	}
	if sameZone == 0 {
		t.Fatal("SimpleStrategy never co-located replicas; suspicious")
	}
}

func TestInterZoneTrafficPaysWideAreaRTT(t *testing.T) {
	k := sim.NewKernel(4)
	_, _, c := geoDB(k, 2, 2, true)
	var intra, inter time.Duration
	k.Spawn("probe", func(p *sim.Proc) {
		z0 := c.ZoneNodes(0)
		z1 := c.ZoneNodes(1)
		start := p.Now()
		z0[0].SendTo(p, z0[1], 100)
		intra = p.Now().Sub(start)
		start = p.Now()
		z0[0].SendTo(p, z1[0], 100)
		inter = p.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if inter < 40*time.Millisecond || intra > time.Millisecond {
		t.Fatalf("intra=%v inter=%v", intra, inter)
	}
}

func TestLocalQuorumAvoidsWideAreaWait(t *testing.T) {
	k := sim.NewKernel(5)
	db, base, _ := geoDB(k, 4, 4, true) // rf4 over 2 zones: 2 replicas per zone
	_ = db
	lq := base.WithConsistency(kv.LocalQuorum, kv.LocalQuorum)
	all := base.WithConsistency(kv.All, kv.All)
	var lqLat, allLat time.Duration
	k.Spawn("client", func(p *sim.Proc) {
		// Warm up one write so versions exist.
		if err := lq.Insert(p, key(1), kv.Record{"v": kv.SizedValue(10)}); err != nil {
			t.Error(err)
			return
		}
		start := p.Now()
		for i := 0; i < 20; i++ {
			if err := lq.Update(p, key(1), kv.Record{"v": kv.SizedValue(i + 1)}); err != nil {
				t.Error(err)
				return
			}
		}
		lqLat = p.Now().Sub(start) / 20
		start = p.Now()
		for i := 0; i < 20; i++ {
			if err := all.Update(p, key(1), kv.Record{"v": kv.SizedValue(i + 1)}); err != nil {
				t.Error(err)
				return
			}
		}
		allLat = p.Now().Sub(start) / 20
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// ALL must cross the 80ms inter-zone link; LOCAL_QUORUM must not.
	if lqLat > 20*time.Millisecond {
		t.Fatalf("LOCAL_QUORUM latency %v paid the wide-area RTT", lqLat)
	}
	if allLat < 40*time.Millisecond {
		t.Fatalf("ALL latency %v did not include the wide-area RTT", allLat)
	}
}

func TestLocalQuorumStillReplicatesRemotely(t *testing.T) {
	k := sim.NewKernel(6)
	db, base, c := geoDB(k, 4, 4, true)
	lq := base.WithConsistency(kv.LocalQuorum, kv.LocalQuorum)
	k.Spawn("client", func(p *sim.Proc) {
		if err := lq.Insert(p, key(7), kv.Record{"v": kv.SizedValue(42)}); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(time.Second) // wide-area replication settles
		for _, rep := range db.ReplicasFor(key(7)) {
			row := rep.engine.Get(p, key(7))
			if row == nil || !row.Live() {
				t.Errorf("replica %s (zone %d) missing the write", rep.Node.Name, rep.Node.Zone)
			}
		}
		_ = c
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalQuorumUnavailableWhenZoneDown(t *testing.T) {
	k := sim.NewKernel(7)
	db, base, c := geoDB(k, 2, 4, true)
	lq := base.WithConsistency(kv.LocalQuorum, kv.LocalQuorum)
	k.Spawn("client", func(p *sim.Proc) {
		target := key(3)
		// Fail every replica in the coordinator's zone. Coordinators
		// rotate, so fail zone replicas of both zones' coordinators…
		// simpler: fail all zone-0 servers; coordinators in zone 1 then
		// use zone-1 locals and succeed, so steer the client to zone 1
		// coordinators being down instead: fail zone 1.
		for _, n := range c.ZoneNodes(1) {
			if n != base.node {
				n.Fail()
			}
		}
		// Writes coordinated from zone 0 still meet LOCAL_QUORUM there.
		if err := lq.Update(p, target, kv.Record{"v": kv.SizedValue(1)}); err != nil {
			t.Errorf("zone-0 coordinated write failed: %v", err)
		}
		_ = db
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
