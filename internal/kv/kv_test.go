package kv

import (
	"testing"
	"testing/quick"
)

func TestValueBytes(t *testing.T) {
	if ByteValue([]byte("hello")).Bytes() != 5 {
		t.Fatal("ByteValue size")
	}
	if SizedValue(1000).Bytes() != 1000 {
		t.Fatal("SizedValue size")
	}
	if (Value{Data: []byte("xy"), Size: 100}).Bytes() != 100 {
		t.Fatal("explicit Size should win")
	}
}

func TestRecordBytesCountsFieldOverhead(t *testing.T) {
	r := Record{"f1": SizedValue(10)}
	if got := r.Bytes(); got != 2+2+10 {
		t.Fatalf("bytes = %d", got)
	}
}

func TestRecordProject(t *testing.T) {
	r := Record{"a": SizedValue(1), "b": SizedValue(2), "c": SizedValue(3)}
	p := r.Project([]string{"a", "c", "zz"})
	if len(p) != 2 || p["a"].Bytes() != 1 || p["c"].Bytes() != 3 {
		t.Fatalf("project = %v", p)
	}
	all := r.Project(nil)
	if len(all) != 3 {
		t.Fatalf("nil project = %v", all)
	}
	all["a"] = SizedValue(99)
	if r["a"].Bytes() == 99 {
		t.Fatal("project must copy")
	}
}

func TestRecordMergeOlderPrefersNewer(t *testing.T) {
	newer := Record{"a": SizedValue(1)}
	older := Record{"a": SizedValue(100), "b": SizedValue(2)}
	m := newer.MergeOlder(older)
	if m["a"].Bytes() != 1 || m["b"].Bytes() != 2 {
		t.Fatalf("merge = %v", m)
	}
}

func TestFieldNamesSorted(t *testing.T) {
	r := Record{"z": {}, "a": {}, "m": {}}
	names := r.FieldNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "z" {
		t.Fatalf("names = %v", names)
	}
}

func TestConsistencyRequired(t *testing.T) {
	cases := []struct {
		cl   ConsistencyLevel
		rf   int
		want int
	}{
		{One, 1, 1}, {One, 3, 1}, {One, 6, 1},
		{Two, 3, 2}, {Two, 1, 1},
		{Three, 6, 3}, {Three, 2, 2},
		{Quorum, 1, 1}, {Quorum, 2, 2}, {Quorum, 3, 2}, {Quorum, 4, 3}, {Quorum, 5, 3}, {Quorum, 6, 4},
		{All, 1, 1}, {All, 3, 3}, {All, 6, 6},
	}
	for _, c := range cases {
		if got := c.cl.Required(c.rf); got != c.want {
			t.Errorf("%v.Required(%d) = %d, want %d", c.cl, c.rf, got, c.want)
		}
	}
}

func TestQuorumIntersectsWithItself(t *testing.T) {
	// Property: for any rf ≥ 1, two quorums intersect: 2*Required > rf.
	// This is the invariant behind QUORUM read-your-writes.
	f := func(raw uint8) bool {
		rf := int(raw%16) + 1
		return 2*Quorum.Required(rf) > rf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadAllWriteOneIntersects(t *testing.T) {
	// Property: W=ALL with R=ONE also intersects: Required(All)+Required(One) > rf.
	f := func(raw uint8) bool {
		rf := int(raw%16) + 1
		return All.Required(rf)+One.Required(rf) > rf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConsistencyString(t *testing.T) {
	for cl, want := range map[ConsistencyLevel]string{
		One: "ONE", Two: "TWO", Three: "THREE", Quorum: "QUORUM", All: "ALL",
	} {
		if cl.String() != want {
			t.Errorf("%d.String() = %s", int(cl), cl.String())
		}
	}
	if ConsistencyLevel(42).String() != "ConsistencyLevel(42)" {
		t.Error("unknown level string")
	}
}
