package kv

import "cloudbench/internal/sim"

// Client is the database-facing API the workload framework drives. Both
// databases implement it; operations execute in virtual time on behalf of
// the calling simulation process (one YCSB client thread = one process).
//
// A partial Record passed to Update writes only the supplied fields; the
// merge with older fields happens at read time, newest version winning.
//
// The verbs are //simlint:coldpath: every implementation models database
// I/O — RPC futures, WAL appends, memtable copies — and allocates by
// design, so they are the sanctioned allocation boundary of the per-op
// hot path (ycsb.runner.execute). The boundary is priced in virtual time
// by the latency models, not hidden.
type Client interface {
	// Read returns the record at key, restricted to fields (nil = all).
	//simlint:coldpath
	Read(p *sim.Proc, key Key, fields []string) (Record, error)
	// Insert stores a new record at key.
	//simlint:coldpath
	Insert(p *sim.Proc, key Key, rec Record) error
	// Update overwrites the supplied fields of the record at key.
	//simlint:coldpath
	Update(p *sim.Proc, key Key, rec Record) error
	// Delete removes the record at key.
	//simlint:coldpath
	Delete(p *sim.Proc, key Key) error
	// Scan returns up to limit records starting at the first key ≥ start,
	// in key order, restricted to fields (nil = all).
	//simlint:coldpath
	Scan(p *sim.Proc, start Key, limit int, fields []string) ([]KV, error)
}
