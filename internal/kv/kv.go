// Package kv defines the data model and client interface shared by the
// HBase-like and Cassandra-like databases: records of named fields, row
// keys, versions for last-write-wins reconciliation, and the tunable
// consistency levels of the paper.
package kv

import (
	"errors"
	"fmt"
	"sort"
)

// Key is a row key. Keys order lexicographically, which is the physical
// order used for scans.
type Key string

// Version is a logical timestamp used for last-write-wins reconciliation
// between replicas. Higher wins; ties break toward the coordinator that
// assigned the version later (callers guarantee uniqueness).
type Version int64

// Value is one field value. Data optionally carries real payload bytes
// (examples use this); Size declares the serialized size in bytes used by
// the network and disk cost models, so benchmarks can model 1 KB fields
// without materializing gigabytes of payload. If Size is zero, len(Data)
// is used.
type Value struct {
	Data []byte
	Size int
}

// Bytes returns the value's modeled wire size.
func (v Value) Bytes() int {
	if v.Size > 0 {
		return v.Size
	}
	return len(v.Data)
}

// ByteValue returns a Value carrying real payload bytes.
func ByteValue(b []byte) Value { return Value{Data: b} }

// SizedValue returns a Value of the given modeled size with no payload.
func SizedValue(n int) Value { return Value{Size: n} }

// Record is a row: a set of named field values. A Record used as a write
// may be partial (only the written fields); reads merge partial writes by
// version, newest field wins.
type Record map[string]Value

// Bytes returns the modeled serialized size of the record, including a
// small per-field key overhead.
func (r Record) Bytes() int {
	n := 0
	for f, v := range r {
		n += len(f) + 2 + v.Bytes()
	}
	return n
}

// Clone returns a shallow copy of the record (values are immutable by
// convention).
func (r Record) Clone() Record {
	c := make(Record, len(r))
	for f, v := range r {
		c[f] = v
	}
	return c
}

// Project returns a copy of the record restricted to the given fields; a
// nil or empty field list selects all fields.
func (r Record) Project(fields []string) Record {
	if len(fields) == 0 {
		return r.Clone()
	}
	c := make(Record, len(fields))
	for _, f := range fields {
		if v, ok := r[f]; ok {
			c[f] = v
		}
	}
	return c
}

// FieldNames returns the record's field names in sorted order.
func (r Record) FieldNames() []string {
	names := make([]string, 0, len(r))
	for f := range r {
		names = append(names, f)
	}
	sort.Strings(names)
	return names
}

// MergeOlder fills fields missing from r with fields from older, modeling
// the newest-wins merge of partial writes. It mutates and returns r.
func (r Record) MergeOlder(older Record) Record {
	for f, v := range older {
		if _, ok := r[f]; !ok {
			r[f] = v
		}
	}
	return r
}

// ConsistencyLevel selects how many replicas must acknowledge an operation
// before the coordinator responds, exactly as in Cassandra.
type ConsistencyLevel int

// Consistency levels. One, Two and Three are absolute counts; Quorum is a
// majority of the replication factor; All is every replica. LocalQuorum
// is a majority of the replicas in the coordinator's zone (data center) —
// the level multi-datacenter deployments use to avoid wide-area waits; on
// a single-zone cluster it degenerates to Quorum. EachQuorum demands a
// majority of the replicas in *every* data center, the strongest
// cross-DC level Cassandra offers short of ALL; it too degenerates to
// Quorum on a single zone.
const (
	One ConsistencyLevel = iota + 1
	Two
	Three
	Quorum
	All
	LocalQuorum
	EachQuorum
)

// String returns the Cassandra-style name of the level.
func (c ConsistencyLevel) String() string {
	switch c {
	case One:
		return "ONE"
	case Two:
		return "TWO"
	case Three:
		return "THREE"
	case Quorum:
		return "QUORUM"
	case All:
		return "ALL"
	case LocalQuorum:
		return "LOCAL_QUORUM"
	case EachQuorum:
		return "EACH_QUORUM"
	default:
		return fmt.Sprintf("ConsistencyLevel(%d)", int(c))
	}
}

// Required returns the number of replica acknowledgements the level
// demands at replication factor rf. The result is clamped to [1, rf].
func (c ConsistencyLevel) Required(rf int) int {
	var n int
	switch c {
	case One:
		n = 1
	case Two:
		n = 2
	case Three:
		n = 3
	case Quorum, LocalQuorum, EachQuorum:
		// LocalQuorum and EachQuorum without topology context (the caller
		// applies the per-DC math against the zoned replica sets first)
		// are a plain majority.
		n = rf/2 + 1
	case All:
		n = rf
	default:
		n = 1
	}
	if n < 1 {
		n = 1
	}
	if n > rf {
		n = rf
	}
	return n
}

// Errors shared by database clients.
var (
	// ErrNotFound reports that no record exists at the requested key.
	ErrNotFound = errors.New("kv: key not found")
	// ErrUnavailable reports that too few replicas were reachable to
	// satisfy the requested consistency level.
	ErrUnavailable = errors.New("kv: not enough replicas available")
	// ErrTimeout reports that the operation did not complete within the
	// coordinator's deadline.
	ErrTimeout = errors.New("kv: operation timed out")
)

// KV pairs a key with its record, as returned by scans.
type KV struct {
	Key    Key
	Record Record
}
