package kv

import (
	"fmt"

	"cloudbench/internal/sim"
)

// T is the subset of *testing.T the conformance suite needs. Taking an
// interface keeps the testing package out of the non-test build while
// letting each backend's _test.go pass its *testing.T straight through.
type T interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Harness adapts one backend deployment to the shared conformance suite.
// Every database implementing Client — whatever its replication and
// consistency machinery — must present the same data-model semantics:
// partial-record merge, last-write-wins version ordering, lexicographic
// scans, and not-found discipline. The suite encodes those once instead
// of each backend re-implementing overlapping ad-hoc tests.
type Harness struct {
	// NewClient returns a fresh client session on the deployment.
	NewClient func() Client
	// Drive runs fn as a simulation process and executes the simulation
	// to completion (deployments wrap their kernel/group Run here).
	Drive func(fn func(p *sim.Proc)) error
}

// RunConformance exercises h's backend against the shared kv.Client
// contract. The driven workload is deterministic; any scheduling the
// backend does underneath (replication, repair, anti-entropy) must not
// change what a single client observes from its own writes.
func RunConformance(t T, h Harness) {
	t.Helper()
	if h.NewClient == nil {
		t.Fatalf("kv conformance: Harness.NewClient is required")
		return
	}
	if h.Drive == nil {
		t.Fatalf("kv conformance: Harness.Drive is required")
		return
	}
	c := h.NewClient()
	err := h.Drive(func(p *sim.Proc) {
		conformRead := func(key Key, fields []string) (Record, error) {
			return c.Read(p, key, fields)
		}

		// Not-found discipline: a never-written key is ErrNotFound.
		if _, err := conformRead("conf-missing", nil); err != ErrNotFound {
			t.Errorf("read of missing key: err=%v, want ErrNotFound", err)
		}

		// Full-record insert reads back intact, and field projection
		// restricts without dropping present fields.
		full := Record{"f0": ByteValue([]byte("a0")), "f1": ByteValue([]byte("b0")), "f2": SizedValue(64)}
		if err := c.Insert(p, "conf-a", full); err != nil {
			t.Fatalf("insert: %v", err)
		}
		got, err := conformRead("conf-a", nil)
		if err != nil {
			t.Fatalf("read after insert: %v", err)
		}
		if len(got) != 3 || string(got["f0"].Data) != "a0" || string(got["f1"].Data) != "b0" {
			t.Errorf("read after insert: got %v", got)
		}
		proj, err := conformRead("conf-a", []string{"f1"})
		if err != nil || len(proj) != 1 || string(proj["f1"].Data) != "b0" {
			t.Errorf("projected read: got %v err=%v", proj, err)
		}

		// Partial-record merge: updating one field leaves the others at
		// their newest prior values.
		if err := c.Update(p, "conf-a", Record{"f1": ByteValue([]byte("b1"))}); err != nil {
			t.Fatalf("partial update: %v", err)
		}
		got, err = conformRead("conf-a", nil)
		if err != nil {
			t.Fatalf("read after partial update: %v", err)
		}
		if string(got["f0"].Data) != "a0" || string(got["f1"].Data) != "b1" {
			t.Errorf("partial merge: got f0=%q f1=%q, want a0/b1", got["f0"].Data, got["f1"].Data)
		}

		// Version ordering: the later of two writes to the same field
		// wins (last-write-wins as the client issued them).
		if err := c.Update(p, "conf-a", Record{"f1": ByteValue([]byte("b2"))}); err != nil {
			t.Fatalf("second update: %v", err)
		}
		got, err = conformRead("conf-a", nil)
		if err != nil || string(got["f1"].Data) != "b2" {
			t.Errorf("last-write-wins: got f1=%q err=%v, want b2", got["f1"].Data, err)
		}

		// Scan ordering: lexicographic by key, limit honored, live rows
		// only.
		for i := 0; i < 5; i++ {
			key := Key(fmt.Sprintf("conf-s%02d", i))
			if err := c.Insert(p, key, Record{"f0": SizedValue(16)}); err != nil {
				t.Fatalf("scan insert %s: %v", key, err)
			}
		}
		rows, err := c.Scan(p, "conf-s", 4, nil)
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if len(rows) != 4 {
			t.Errorf("scan limit: got %d rows, want 4", len(rows))
		}
		for i, r := range rows {
			want := Key(fmt.Sprintf("conf-s%02d", i))
			if r.Key != want {
				t.Errorf("scan order: row %d key %q, want %q", i, r.Key, want)
			}
		}

		// Delete discipline: a deleted key is ErrNotFound and leaves the
		// scan range.
		if err := c.Delete(p, "conf-s00"); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if _, err := conformRead("conf-s00", nil); err != ErrNotFound {
			t.Errorf("read after delete: err=%v, want ErrNotFound", err)
		}
		rows, err = c.Scan(p, "conf-s", 5, nil)
		if err != nil || len(rows) != 4 || rows[0].Key != "conf-s01" {
			t.Errorf("scan after delete: rows=%v err=%v, want 4 rows from conf-s01", rows, err)
		}

		// Re-insert after delete resurrects the key with the new value.
		if err := c.Insert(p, "conf-s00", Record{"f0": ByteValue([]byte("back"))}); err != nil {
			t.Fatalf("re-insert: %v", err)
		}
		got, err = conformRead("conf-s00", nil)
		if err != nil || string(got["f0"].Data) != "back" {
			t.Errorf("read after re-insert: got %v err=%v", got, err)
		}
	})
	if err != nil {
		t.Fatalf("conformance drive: %v", err)
	}
}
