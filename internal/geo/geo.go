// Package geo provides the SLA-adaptive consistency client for
// multi-datacenter deployments: a kv.Client wrapper that walks a
// strongest-first ladder of consistency levels, stepping down when the
// current level's observed latency can no longer meet a per-operation
// deadline and probing its way back up after a cooldown.
//
// The controller trades consistency for latency explicitly — the paper's
// central tunable — and its decisions are a pure function of the simulated
// clock, the per-stage latency histograms, and the deciding process's
// seeded RNG stream, so adaptive runs stay byte-identical across repeats,
// worker parallelism, and execution sharding.
package geo

import (
	"time"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
	"cloudbench/internal/stats"
)

// Stage is one rung of the consistency ladder: the read and write levels
// operations issued at this rung use.
type Stage struct {
	Name  string
	Read  kv.ConsistencyLevel
	Write kv.ConsistencyLevel
}

// WriteLadder returns the canonical write ladder for geo deployments,
// strongest first: EACH_QUORUM → LOCAL_QUORUM → ONE, reading at the given
// level throughout.
func WriteLadder(read kv.ConsistencyLevel) []Stage {
	return []Stage{
		{Name: "EACH_QUORUM", Read: read, Write: kv.EachQuorum},
		{Name: "LOCAL_QUORUM", Read: read, Write: kv.LocalQuorum},
		{Name: "ONE", Read: read, Write: kv.One},
	}
}

// ControllerConfig parameterizes the adaptive controller.
type ControllerConfig struct {
	// Ladder lists the stages strongest first. Required, at least one.
	Ladder []Stage
	// Deadline is the per-operation latency SLA the controller defends.
	Deadline time.Duration
	// Percentile of the current stage's latency histogram compared
	// against Deadline when deciding a pre-issue step-down, on the 0–100
	// scale stats.Histogram uses (default 95).
	Percentile float64
	// MinSamples is how many completions a stage's histogram needs before
	// its estimate is trusted for step-down decisions (default 20).
	MinSamples int
	// Cooldown is how long after any stage shift the controller waits
	// before probing one rung up (default 10s).
	Cooldown time.Duration
	// ProbeChance is the per-operation probability, once the cooldown has
	// passed, that the op probes the next-stronger stage (default 0.05).
	ProbeChance float64
}

func (cfg ControllerConfig) withDefaults() ControllerConfig {
	if cfg.Percentile <= 0 {
		cfg.Percentile = 95
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 20
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Second
	}
	if cfg.ProbeChance <= 0 {
		cfg.ProbeChance = 0.05
	}
	return cfg
}

// Metrics is a snapshot of the controller's counters.
type Metrics struct {
	OpsPerStage []int64 // operations issued at each ladder rung
	StepDowns   int64   // shifts toward weaker consistency
	StepUps     int64   // successful probe shifts back up
	Probes      int64   // probe operations issued
	Misses      int64   // completions over Deadline (or errored)
	Stage       int     // current rung at snapshot time
}

// Controller holds the ladder state shared by every client of one
// deployment. It is not safe for host-level concurrency; all callers run
// on the same simulation kernel, which serializes them.
type Controller struct {
	cfg   ControllerConfig
	stage int // current ladder rung
	hist  []stats.Histogram
	// lastShift is when the controller last changed stage (or probed and
	// failed); the cooldown runs from here.
	lastShift sim.Time

	ops       []int64
	stepDowns int64
	stepUps   int64
	probes    int64
	misses    int64
}

// NewController builds a controller starting at the strongest rung.
func NewController(cfg ControllerConfig) *Controller {
	if len(cfg.Ladder) == 0 {
		panic("geo: ControllerConfig.Ladder is empty")
	}
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:  cfg,
		hist: make([]stats.Histogram, len(cfg.Ladder)),
		ops:  make([]int64, len(cfg.Ladder)),
	}
}

// Stage returns the current ladder rung.
func (c *Controller) Stage() int { return c.stage }

// StageName returns the name of the current rung.
func (c *Controller) StageName() string { return c.cfg.Ladder[c.stage].Name }

// Metrics returns a snapshot of the controller's counters.
func (c *Controller) Metrics() Metrics {
	return Metrics{
		OpsPerStage: append([]int64(nil), c.ops...),
		StepDowns:   c.stepDowns,
		StepUps:     c.stepUps,
		Probes:      c.probes,
		Misses:      c.misses,
		Stage:       c.stage,
	}
}

// stageFor picks the rung for the next operation. It first applies any
// estimate-driven step-down: when the current rung's trusted latency
// estimate already exceeds the deadline budget at issue time, the stronger
// level cannot be afforded and the controller shifts down before paying
// for it. It then decides whether this op probes one rung stronger: after
// the cooldown a small fraction of ops pay the stronger level's price to
// re-measure it, drawing the dice from the calling process's seeded
// stream.
func (c *Controller) stageFor(p *sim.Proc) (stage int, probe bool) {
	for c.stage < len(c.cfg.Ladder)-1 {
		h := &c.hist[c.stage]
		if h.Count() < int64(c.cfg.MinSamples) || h.Percentile(c.cfg.Percentile) <= c.cfg.Deadline {
			break
		}
		c.shiftTo(p, c.stage+1)
		c.stepDowns++
	}
	if c.stage > 0 && p.Now().Sub(c.lastShift) >= c.cfg.Cooldown &&
		p.Rand().Float64() < c.cfg.ProbeChance {
		c.probes++
		return c.stage - 1, true
	}
	return c.stage, false
}

// observe feeds one completion back: latency accounting, deadline misses,
// immediate step-down when the current rung errors (unavailability needs
// no estimate), and probe resolution — a probe that met the deadline
// commits the step-up; one that did not restarts the cooldown. A single
// slow-but-successful completion never shifts the ladder by itself; only
// the histogram estimate in stageFor does, so one outlier cannot trade
// consistency away.
func (c *Controller) observe(p *sim.Proc, stage int, probe bool, d time.Duration, err error) {
	c.ops[stage]++
	if err == nil {
		c.hist[stage].Record(d)
	}
	missed := err != nil || d > c.cfg.Deadline
	if missed {
		c.misses++
	}
	if probe {
		if !missed {
			c.shiftTo(p, stage)
			c.stepUps++
		} else {
			c.lastShift = p.Now() // failed probe: restart the cooldown
		}
		return
	}
	if err != nil && stage == c.stage && c.stage < len(c.cfg.Ladder)-1 {
		c.shiftTo(p, c.stage+1)
		c.stepDowns++
	}
}

// shiftTo moves the ladder to rung s. Entering a stronger rung resets its
// histogram: the samples that drove the earlier step-down describe the old
// network conditions, and keeping them would re-trigger the step-down
// before MinSamples fresh completions could disagree.
func (c *Controller) shiftTo(p *sim.Proc, s int) {
	if s < c.stage {
		c.hist[s].Reset()
	}
	c.stage = s
	c.lastShift = p.Now()
}

// Client is a kv.Client issuing every operation at the controller's
// current rung. Build one per benchmark thread over a shared controller;
// the factory is called once per ladder stage to produce the stage-bound
// underlying client (e.g. cassandra.Client.WithConsistency).
type Client struct {
	ctrl   *Controller
	stages []kv.Client
}

// NewClient wraps the per-stage clients produced by factory.
func NewClient(ctrl *Controller, factory func(Stage) kv.Client) *Client {
	stages := make([]kv.Client, len(ctrl.cfg.Ladder))
	for i, s := range ctrl.cfg.Ladder {
		stages[i] = factory(s)
	}
	return &Client{ctrl: ctrl, stages: stages}
}

var _ kv.Client = (*Client)(nil)

// Read implements kv.Client at the adaptive consistency level.
func (c *Client) Read(p *sim.Proc, key kv.Key, fields []string) (kv.Record, error) {
	s, probe := c.ctrl.stageFor(p)
	start := p.Now()
	rec, err := c.stages[s].Read(p, key, fields)
	// A missing key is an answer, not an SLA event.
	lat := p.Now().Sub(start)
	if err == kv.ErrNotFound {
		c.ctrl.observe(p, s, probe, lat, nil)
	} else {
		c.ctrl.observe(p, s, probe, lat, err)
	}
	return rec, err
}

// Insert implements kv.Client.
func (c *Client) Insert(p *sim.Proc, key kv.Key, rec kv.Record) error {
	s, probe := c.ctrl.stageFor(p)
	start := p.Now()
	err := c.stages[s].Insert(p, key, rec)
	c.ctrl.observe(p, s, probe, p.Now().Sub(start), err)
	return err
}

// Update implements kv.Client.
func (c *Client) Update(p *sim.Proc, key kv.Key, rec kv.Record) error {
	s, probe := c.ctrl.stageFor(p)
	start := p.Now()
	err := c.stages[s].Update(p, key, rec)
	c.ctrl.observe(p, s, probe, p.Now().Sub(start), err)
	return err
}

// Delete implements kv.Client.
func (c *Client) Delete(p *sim.Proc, key kv.Key) error {
	s, probe := c.ctrl.stageFor(p)
	start := p.Now()
	err := c.stages[s].Delete(p, key)
	c.ctrl.observe(p, s, probe, p.Now().Sub(start), err)
	return err
}

// Scan implements kv.Client. Scans bypass the ladder (the scan path does
// not honor consistency levels) and are served by the strongest stage's
// client without feeding the controller.
func (c *Client) Scan(p *sim.Proc, start kv.Key, limit int, fields []string) ([]kv.KV, error) {
	return c.stages[0].Scan(p, start, limit, fields)
}
