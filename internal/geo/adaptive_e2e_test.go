package geo

import (
	"testing"
	"time"

	"cloudbench/internal/cassandra"
	"cloudbench/internal/cluster"
	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

// TestAdaptiveClientStepsDownUnderWAN drives the adaptive client against a
// real 2-DC Cassandra deployment whose 80ms WAN RTT makes EACH_QUORUM
// writes unaffordable under a 40ms deadline: the controller must step down
// and the post-transient write latency must fall under the deadline, while
// the earliest writes paid the strong level's price.
func TestAdaptiveClientStepsDownUnderWAN(t *testing.T) {
	k := sim.NewKernel(21)
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 8
	ccfg.Geo = &cluster.GeoTopology{
		DCSizes:   []int{4, 4},
		WANOneWay: cluster.WANChain(2, 80*time.Millisecond),
	}
	c := cluster.New(k, ccfg)
	dcfg := cassandra.DefaultConfig()
	dcfg.DCReplicas = []int{2, 2}
	db := cassandra.New(k, dcfg, c.Nodes[:7])
	base := db.NewClient(c.Nodes[7]) // attach in DC 1; coordinators stay local

	ctrl := NewController(ControllerConfig{
		Ladder:     WriteLadder(kv.LocalQuorum),
		Deadline:   40 * time.Millisecond,
		MinSamples: 10,
	})
	ad := NewClient(ctrl, func(s Stage) kv.Client {
		return base.WithConsistency(s.Read, s.Write)
	})

	const ops = 100
	var tail time.Duration
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < ops; i++ {
			start := p.Now()
			if err := ad.Insert(p, kv.Key("user"+string(rune('a'+i%26)))+kv.Key(rune('0'+i/26)), kv.Record{"v": kv.SizedValue(64)}); err != nil {
				t.Errorf("op %d: %v", i, err)
				return
			}
			if i >= ops/2 {
				tail += p.Now().Sub(start)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	m := ctrl.Metrics()
	if m.Stage == 0 {
		t.Fatalf("controller never stepped down: %+v", m)
	}
	if m.OpsPerStage[0] == 0 {
		t.Fatal("no operations ran at the strong rung before the step-down")
	}
	mean := tail / (ops / 2)
	if mean > 40*time.Millisecond {
		t.Fatalf("post-transient mean write latency %v exceeds the 40ms deadline", mean)
	}
}
