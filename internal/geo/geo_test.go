package geo

import (
	"testing"
	"time"

	"cloudbench/internal/kv"
	"cloudbench/internal/sim"
)

func testController(probeChance float64) *Controller {
	return NewController(ControllerConfig{
		Ladder:      WriteLadder(kv.LocalQuorum),
		Deadline:    10 * time.Millisecond,
		MinSamples:  20,
		Cooldown:    time.Second,
		ProbeChance: probeChance,
	})
}

// drive runs fn inside a spawned process and the kernel to completion.
func drive(t *testing.T, seed int64, fn func(p *sim.Proc)) {
	t.Helper()
	k := sim.NewKernel(seed)
	k.Spawn("test", fn)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateDrivenStepDown(t *testing.T) {
	c := testController(0.01)
	drive(t, 1, func(p *sim.Proc) {
		// Sustained over-deadline completions at the strongest rung: no
		// single miss shifts the ladder, but once MinSamples trusted
		// completions put the estimate over the deadline, the next issue
		// steps down before paying for the strong level again.
		for i := 0; i < 19; i++ {
			s, probe := c.stageFor(p)
			if s != 0 || probe {
				t.Fatalf("op %d: stage=%d probe=%v before estimate trusted", i, s, probe)
			}
			c.observe(p, s, probe, 80*time.Millisecond, nil)
		}
		if c.Stage() != 0 {
			t.Fatalf("stepped down on %d samples, below MinSamples", 19)
		}
		c.observe(p, 0, false, 80*time.Millisecond, nil)
		s, _ := c.stageFor(p)
		if s != 1 || c.Stage() != 1 {
			t.Fatalf("stage = %d after trusted over-deadline estimate, want 1", s)
		}
	})
	m := c.Metrics()
	if m.StepDowns != 1 || m.Misses != 20 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestErrorStepsDownImmediately(t *testing.T) {
	c := testController(0.01)
	drive(t, 2, func(p *sim.Proc) {
		s, probe := c.stageFor(p)
		c.observe(p, s, probe, time.Millisecond, kv.ErrUnavailable)
		if c.Stage() != 1 {
			t.Fatalf("stage = %d after unavailable, want 1", c.Stage())
		}
		// Stale completions from the old rung must not double-shift.
		c.observe(p, 0, false, time.Millisecond, kv.ErrUnavailable)
		if c.Stage() != 1 {
			t.Fatalf("stage = %d after stale-rung error, want 1", c.Stage())
		}
	})
}

func TestProbeStepsBackUpAfterCooldown(t *testing.T) {
	c := testController(1.0) // every eligible op probes
	drive(t, 3, func(p *sim.Proc) {
		s, _ := c.stageFor(p)
		c.observe(p, s, false, time.Millisecond, kv.ErrUnavailable) // down to 1
		if s, probe := c.stageFor(p); s != 1 || probe {
			t.Fatalf("probed at stage=%d probe=%v inside cooldown", s, probe)
		}
		p.Sleep(2 * time.Second)
		s, probe := c.stageFor(p)
		if s != 0 || !probe {
			t.Fatalf("stage=%d probe=%v after cooldown, want probe of rung 0", s, probe)
		}
		// Failed probe: stay down, cooldown restarts.
		c.observe(p, s, probe, 80*time.Millisecond, nil)
		if c.Stage() != 1 {
			t.Fatalf("failed probe moved the ladder to %d", c.Stage())
		}
		if s, probe := c.stageFor(p); s != 1 || probe {
			t.Fatalf("probe fired again at stage=%d probe=%v before the restarted cooldown", s, probe)
		}
		// Successful probe commits the step-up and resets the rung's
		// history so the stale estimate cannot re-trigger the step-down.
		p.Sleep(2 * time.Second)
		s, probe = c.stageFor(p)
		if s != 0 || !probe {
			t.Fatalf("stage=%d probe=%v after restarted cooldown", s, probe)
		}
		c.observe(p, s, probe, time.Millisecond, nil)
		if c.Stage() != 0 {
			t.Fatalf("successful probe left the ladder at %d", c.Stage())
		}
	})
	m := c.Metrics()
	if m.StepUps != 1 || m.Probes != 2 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestDecisionsAreSeedDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		c := testController(0.3)
		var stages []int
		drive(t, seed, func(p *sim.Proc) {
			s, probe := c.stageFor(p)
			c.observe(p, s, probe, time.Millisecond, kv.ErrUnavailable)
			for i := 0; i < 50; i++ {
				p.Sleep(100 * time.Millisecond)
				s, probe := c.stageFor(p)
				stages = append(stages, s)
				c.observe(p, s, probe, 80*time.Millisecond, nil)
			}
		})
		return stages
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across equal seeds: %d vs %d", i, a[i], b[i])
		}
	}
}
