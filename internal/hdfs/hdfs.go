// Package hdfs simulates the Hadoop Distributed File System as HBase uses
// it: a NameNode tracking files and block placements, DataNodes storing
// replicated blocks on their local disks, pipelined block writes whose
// depth is the replication factor, and locality-aware reads (the first
// replica of every block is placed on the writing node, so a region server
// reads its own store files from its local disk).
//
// This is where HBase's replication-factor knob lives: a higher factor
// deepens the write pipeline and consumes disk and network on more nodes
// during flushes and compactions, but — exactly as the paper observes — it
// sits off the foreground write path, which is WAL plus memstore.
package hdfs

import (
	"errors"
	"sort"
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/sim"
	"cloudbench/internal/trace"
)

// Config parameterizes the filesystem.
type Config struct {
	// BlockBytes is the HDFS block size (dfs.blocksize).
	BlockBytes int64
	// Replication is the default replication factor (dfs.replication).
	Replication int
	// PipelineHop is the per-hop forwarding latency inside a write
	// pipeline (packet store-and-forward cost per extra replica).
	PipelineHop time.Duration
}

// DefaultConfig returns HDFS parameters scaled for simulation: 8 MB blocks
// (64 MB in production would make every simulated table one block, hiding
// block-level behaviour) and replication 3.
func DefaultConfig() Config {
	return Config{
		BlockBytes:  8 << 20,
		Replication: 3,
		PipelineHop: 500 * time.Microsecond,
	}
}

// FS is the filesystem: a NameNode plus the set of DataNodes.
type FS struct {
	k     *sim.Kernel
	cfg   Config
	nodes []*cluster.Node // DataNodes

	files   map[string]*File
	nextBlk int64

	// tracer, when non-nil, records one hdfs-phase span per pipeline hop.
	//
	//simlint:hook
	tracer *trace.Tracer

	// Metrics.
	BlocksWritten int64
	BlocksRead    int64
	RemoteReads   int64
}

// File is a named sequence of replicated blocks.
type File struct {
	Name   string
	Bytes  int64
	Blocks []*Block
}

// Block is one replicated extent of a file.
type Block struct {
	ID       int64
	Bytes    int64
	Replicas []*cluster.Node // Replicas[0] is the writer-local copy
}

// ErrNotFound reports a missing file.
var ErrNotFound = errors.New("hdfs: file not found")

// New creates a filesystem over the given DataNodes.
func New(k *sim.Kernel, cfg Config, nodes []*cluster.Node) *FS {
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.Replication > len(nodes) {
		cfg.Replication = len(nodes)
	}
	return &FS{k: k, cfg: cfg, nodes: nodes, files: make(map[string]*File)}
}

// Replication returns the effective replication factor.
func (fs *FS) Replication() int { return fs.cfg.Replication }

// SetTracer installs (or, with nil, removes) the tracer observing pipeline
// hops.
func (fs *FS) SetTracer(t *trace.Tracer) { fs.tracer = t }

// placeReplicas chooses replica nodes for one block: the writer first (if
// it is a DataNode), then distinct random others — HDFS's default policy
// restricted to one rack.
func (fs *FS) placeReplicas(writer *cluster.Node) []*cluster.Node {
	replicas := make([]*cluster.Node, 0, fs.cfg.Replication)
	used := make(map[int]bool)
	for _, n := range fs.nodes {
		if n == writer {
			replicas = append(replicas, n)
			used[n.ID] = true
			break
		}
	}
	rng := fs.k.Rand()
	for len(replicas) < fs.cfg.Replication {
		n := fs.nodes[rng.Intn(len(fs.nodes))]
		if used[n.ID] || n.Down() {
			// Retry; bail out if nearly everyone is down.
			alive := 0
			for _, m := range fs.nodes {
				if !m.Down() && !used[m.ID] {
					alive++
				}
			}
			if alive == 0 {
				break
			}
			continue
		}
		used[n.ID] = true
		replicas = append(replicas, n)
	}
	return replicas
}

// Create writes a new file of the given size from writer, blocking p until
// every block's full pipeline has acknowledged (HDFS semantics). It
// overwrites any existing file of the same name.
func (fs *FS) Create(p *sim.Proc, name string, bytes int64, writer *cluster.Node) *File {
	f := &File{Name: name, Bytes: bytes}
	remaining := bytes
	for remaining > 0 {
		n := fs.cfg.BlockBytes
		if n > remaining {
			n = remaining
		}
		fs.nextBlk++
		b := &Block{ID: fs.nextBlk, Bytes: n, Replicas: fs.placeReplicas(writer)}
		fs.writeBlockPipeline(p, writer, b)
		f.Blocks = append(f.Blocks, b)
		fs.BlocksWritten++
		remaining -= n
	}
	fs.files[name] = f
	return f
}

// writeBlockPipeline models the chained write: the client streams the
// block to replica 0, which forwards to replica 1, and so on. Each link
// carries the full block (NIC serialization on the sender) and each
// replica writes the block to its disk; links and disks run concurrently
// (pipelining), offset by the per-hop forwarding latency. The writer
// blocks until the last replica acks.
func (fs *FS) writeBlockPipeline(p *sim.Proc, writer *cluster.Node, b *Block) {
	done := make([]*sim.Future[struct{}], len(b.Replicas))
	prev := writer
	for i, dn := range b.Replicas {
		i, dn, prev := i, dn, prev
		done[i] = sim.NewFuture[struct{}](fs.k)
		fs.k.Go("hdfs-pipe", func(q *sim.Proc) {
			defer done[i].Set(struct{}{})
			if tr := fs.tracer; tr != nil {
				t0 := q.Now()
				defer func() { tr.Interval(q, trace.PhaseHDFS, dn.ID, t0, q.Now()) }()
			}
			// Pipeline fill: hop i starts after i store-and-forward hops.
			q.Sleep(time.Duration(i) * fs.cfg.PipelineHop)
			// Network leg prev→dn (skipped for the writer-local copy).
			if dn != prev {
				if !prev.SendTo(q, dn, int(b.Bytes)) {
					return
				}
			}
			// Persist on the replica's disk, chunked so foreground I/O
			// interleaves.
			rem := b.Bytes
			for rem > 0 {
				n := int64(4 << 20)
				if n > rem {
					n = rem
				}
				dn.Disk.Write(q, int(n), false)
				rem -= n
			}
		})
		prev = dn
	}
	for _, d := range done {
		d.Await(p)
	}
}

// Open returns the named file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, ErrNotFound
	}
	return f, nil
}

// Delete removes the named file. Deleting a missing file is a no-op.
func (fs *FS) Delete(name string) { delete(fs.files, name) }

// ReadAt charges a read of length bytes at a random position within the
// file, on behalf of reader. The closest live replica is used: the reader
// itself when it holds one (short-circuit local read), otherwise another
// replica over the network.
func (fs *FS) ReadAt(p *sim.Proc, f *File, bytes int, reader *cluster.Node) error {
	if len(f.Blocks) == 0 {
		return nil
	}
	// The specific block does not matter for cost; use the first block's
	// placement, which is representative (all blocks of a table flushed
	// by one region server share the writer-local first replica).
	return fs.readFromReplica(p, f.Blocks[0], bytes, reader, true)
}

// ReadSequential charges a full sequential read of the file (compaction
// input) from the closest replicas.
func (fs *FS) ReadSequential(p *sim.Proc, f *File, reader *cluster.Node) error {
	for _, b := range f.Blocks {
		rem := b.Bytes
		for rem > 0 {
			n := int64(4 << 20)
			if n > rem {
				n = rem
			}
			if err := fs.readFromReplica(p, b, int(n), reader, false); err != nil {
				return err
			}
			rem -= n
		}
	}
	return nil
}

func (fs *FS) readFromReplica(p *sim.Proc, b *Block, bytes int, reader *cluster.Node, random bool) error {
	fs.BlocksRead++
	// Prefer the local replica.
	for _, dn := range b.Replicas {
		if dn == reader && !dn.Down() {
			dn.Disk.Read(p, bytes, random)
			return nil
		}
	}
	// Remote read: pick the first live replica, pay disk + network.
	for _, dn := range b.Replicas {
		if dn.Down() {
			continue
		}
		fs.RemoteReads++
		dn.Disk.Read(p, bytes, random)
		if !dn.SendTo(p, reader, bytes) {
			return errors.New("hdfs: transfer failed")
		}
		return nil
	}
	return errors.New("hdfs: all replicas down")
}

// UnderReplicated returns blocks that currently have fewer than the target
// number of live replicas — input for re-replication. Files are scanned in
// sorted name order so the re-replication schedule (and therefore the whole
// event sequence) is independent of map iteration order.
func (fs *FS) UnderReplicated() []*Block {
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []*Block
	for _, name := range names {
		f := fs.files[name]
		for _, b := range f.Blocks {
			live := 0
			for _, dn := range b.Replicas {
				if !dn.Down() {
					live++
				}
			}
			if live < fs.cfg.Replication && live > 0 {
				out = append(out, b)
			}
		}
	}
	return out
}

// ReReplicate copies an under-replicated block from a live replica to a
// fresh node, blocking p for the transfer and write.
func (fs *FS) ReReplicate(p *sim.Proc, b *Block) error {
	var src *cluster.Node
	used := map[int]bool{}
	for _, dn := range b.Replicas {
		used[dn.ID] = true
		if src == nil && !dn.Down() {
			src = dn
		}
	}
	if src == nil {
		return errors.New("hdfs: no live replica to copy from")
	}
	var dst *cluster.Node
	for _, n := range fs.nodes {
		if !used[n.ID] && !n.Down() {
			dst = n
			break
		}
	}
	if dst == nil {
		return errors.New("hdfs: no target for re-replication")
	}
	src.Disk.Read(p, int(b.Bytes), false)
	if !src.SendTo(p, dst, int(b.Bytes)) {
		return errors.New("hdfs: transfer failed")
	}
	dst.Disk.Write(p, int(b.Bytes), false)
	b.Replicas = append(b.Replicas, dst)
	return nil
}
