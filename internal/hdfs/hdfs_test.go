package hdfs

import (
	"testing"
	"time"

	"cloudbench/internal/cluster"
	"cloudbench/internal/sim"
)

func testFS(t *testing.T, nodes, rf int) (*sim.Kernel, *cluster.Cluster, *FS) {
	t.Helper()
	k := sim.NewKernel(7)
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = nodes
	c := cluster.New(k, ccfg)
	fcfg := DefaultConfig()
	fcfg.Replication = rf
	return k, c, New(k, fcfg, c.Nodes)
}

func TestCreatePlacesFirstReplicaLocal(t *testing.T) {
	k, c, fs := testFS(t, 5, 3)
	writer := c.Nodes[2]
	k.Spawn("writer", func(p *sim.Proc) {
		f := fs.Create(p, "/table/1", 1<<20, writer)
		if len(f.Blocks) != 1 {
			t.Errorf("blocks = %d", len(f.Blocks))
		}
		b := f.Blocks[0]
		if len(b.Replicas) != 3 {
			t.Errorf("replicas = %d", len(b.Replicas))
		}
		if b.Replicas[0] != writer {
			t.Error("first replica not writer-local")
		}
		seen := map[int]bool{}
		for _, r := range b.Replicas {
			if seen[r.ID] {
				t.Error("duplicate replica")
			}
			seen[r.ID] = true
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateSplitsIntoBlocks(t *testing.T) {
	k, c, fs := testFS(t, 4, 2)
	k.Spawn("writer", func(p *sim.Proc) {
		f := fs.Create(p, "/big", 20<<20, c.Nodes[0]) // 20MB / 8MB blocks
		if len(f.Blocks) != 3 {
			t.Errorf("blocks = %d, want 3", len(f.Blocks))
		}
		var total int64
		for _, b := range f.Blocks {
			total += b.Bytes
		}
		if total != 20<<20 {
			t.Errorf("total = %d", total)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineDepthCostsGrowWithRF(t *testing.T) {
	elapsed := func(rf int) time.Duration {
		k, c, fs := testFS(t, 8, rf)
		var d time.Duration
		k.Spawn("writer", func(p *sim.Proc) {
			start := p.Now()
			fs.Create(p, "/t", 8<<20, c.Nodes[0])
			d = p.Now().Sub(start)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	t1, t3, t6 := elapsed(1), elapsed(3), elapsed(6)
	if !(t1 < t3 && t3 < t6) {
		t.Fatalf("pipeline cost not monotone: rf1=%v rf3=%v rf6=%v", t1, t3, t6)
	}
	// Pipelining: rf=6 should cost far less than 6× rf=1.
	if t6 > 3*t1 {
		t.Fatalf("pipeline not overlapping: rf6=%v vs rf1=%v", t6, t1)
	}
}

func TestLocalReadSkipsNetwork(t *testing.T) {
	k, c, fs := testFS(t, 4, 2)
	writer := c.Nodes[1]
	k.Spawn("writer", func(p *sim.Proc) {
		f := fs.Create(p, "/t", 1<<20, writer)
		sentBefore := writer.BytesReceived
		if err := fs.ReadAt(p, f, 64<<10, writer); err != nil {
			t.Error(err)
		}
		if fs.RemoteReads != 0 {
			t.Error("local read went remote")
		}
		if writer.BytesReceived != sentBefore {
			t.Error("local read used the network")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteReadWhenNoLocalReplica(t *testing.T) {
	k, c, fs := testFS(t, 4, 1)
	k.Spawn("writer", func(p *sim.Proc) {
		f := fs.Create(p, "/t", 1<<20, c.Nodes[0])
		if err := fs.ReadAt(p, f, 64<<10, c.Nodes[3]); err != nil {
			// Node 3 may hold the single replica only if it is node 0;
			// it is not, so the read must be remote and succeed.
			t.Error(err)
		}
		if fs.RemoteReads != 1 {
			t.Errorf("remote reads = %d", fs.RemoteReads)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenAndDelete(t *testing.T) {
	k, c, fs := testFS(t, 3, 2)
	k.Spawn("writer", func(p *sim.Proc) {
		fs.Create(p, "/t", 100, c.Nodes[0])
		if _, err := fs.Open("/t"); err != nil {
			t.Error(err)
		}
		fs.Delete("/t")
		if _, err := fs.Open("/t"); err != ErrNotFound {
			t.Errorf("err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadFailsWhenAllReplicasDown(t *testing.T) {
	k, c, fs := testFS(t, 4, 2)
	k.Spawn("writer", func(p *sim.Proc) {
		f := fs.Create(p, "/t", 100, c.Nodes[0])
		for _, dn := range f.Blocks[0].Replicas {
			dn.Fail()
		}
		reader := c.Nodes[3]
		if reader.Down() {
			reader = c.Nodes[2]
		}
		if err := fs.ReadAt(p, f, 100, reader); err == nil {
			t.Error("read succeeded with all replicas down")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnderReplicatedAndReReplicate(t *testing.T) {
	k, c, fs := testFS(t, 5, 3)
	k.Spawn("writer", func(p *sim.Proc) {
		f := fs.Create(p, "/t", 1<<20, c.Nodes[0])
		if len(fs.UnderReplicated()) != 0 {
			t.Error("fresh file reported under-replicated")
		}
		f.Blocks[0].Replicas[1].Fail()
		ur := fs.UnderReplicated()
		if len(ur) != 1 {
			t.Fatalf("under-replicated = %d", len(ur))
		}
		if err := fs.ReReplicate(p, ur[0]); err != nil {
			t.Fatal(err)
		}
		live := 0
		for _, dn := range f.Blocks[0].Replicas {
			if !dn.Down() {
				live++
			}
		}
		if live < 3 {
			t.Errorf("live replicas after re-replication = %d", live)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialReadChargesAllBlocks(t *testing.T) {
	k, c, fs := testFS(t, 4, 2)
	k.Spawn("writer", func(p *sim.Proc) {
		f := fs.Create(p, "/t", 16<<20, c.Nodes[0])
		before := c.Nodes[0].Disk.BytesRead
		if err := fs.ReadSequential(p, f, c.Nodes[0]); err != nil {
			t.Fatal(err)
		}
		if got := c.Nodes[0].Disk.BytesRead - before; got != 16<<20 {
			t.Errorf("bytes read = %d, want 16MB", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationClampedToClusterSize(t *testing.T) {
	k, c, fs := testFS(t, 2, 6)
	if fs.Replication() != 2 {
		t.Fatalf("replication = %d, want clamped 2", fs.Replication())
	}
	k.Spawn("writer", func(p *sim.Proc) {
		f := fs.Create(p, "/t", 100, c.Nodes[0])
		if len(f.Blocks[0].Replicas) != 2 {
			t.Errorf("replicas = %d", len(f.Blocks[0].Replicas))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
