// Command benchjson converts `go test -bench` text output into a stable
// JSON artifact so CI can archive kernel performance per commit:
//
//	go test -bench='Kernel|Spawn|Queue' -benchmem ./internal/sim | \
//	    go run ./cmd/benchjson -o BENCH_kernel.json
//
// The output records the host environment — without GOMAXPROCS and the
// CPU count a scaling artifact is uninterpretable (a 1-core runner's
// "shards=8 is slower" reads as a regression when it is the expected
// serialization) — and maps each benchmark name to its metrics, keeping
// the -N GOMAXPROCS suffix as a field rather than in the key so artifacts
// compare across machines:
//
//	{
//	  "env": {"gomaxprocs": 8, "num_cpu": 8, "git_sha": "58cdaf2..."},
//	  "benchmarks": {
//	    "BenchmarkKernelScheduleWheel100k": {
//	      "iterations": 120, "ns_op": 412345.0, "b_op": 0, "allocs_op": 0,
//	      "gomaxprocs": 8
//	    },
//	    ...
//	  }
//	}
//
// b_op and allocs_op are -1 when the run did not use -benchmem; a missing
// -N suffix (go test omits it at GOMAXPROCS=1) records gomaxprocs 1. Lines
// that are not benchmark results (test output, PASS, ok) are ignored, so
// the raw `go test` stream can be piped in unfiltered. A benchmark that
// appears more than once (e.g. -count>1) keeps the last result.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result holds the parsed metrics for one benchmark.
type Result struct {
	Iterations int64   `json:"iterations"`
	NsOp       float64 `json:"ns_op"`
	BOp        int64   `json:"b_op"`
	AllocsOp   int64   `json:"allocs_op"`
	// GoMaxProcs is the -N suffix go test appended to the benchmark name:
	// the GOMAXPROCS the benchmark actually ran at.
	GoMaxProcs int `json:"gomaxprocs"`
}

// Env describes the host the benchmarks ran on.
type Env struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GitSHA     string `json:"git_sha"`
}

// Artifact is the full archived document.
type Artifact struct {
	Env        Env               `json:"env"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// Parse reads `go test -bench` output and returns name → result. The
// GOMAXPROCS suffix (Benchmark...-8) moves off the key into the result's
// gomaxprocs field so artifacts compare across machines with different
// core counts.
func Parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		procs := 1 // go test appends no suffix at GOMAXPROCS=1
		if i := strings.LastIndex(name, "-"); i > 0 {
			if n, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
				procs = n
			}
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %v", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %v", sc.Text(), err)
		}
		res := Result{Iterations: iters, NsOp: ns, BOp: -1, AllocsOp: -1, GoMaxProcs: procs}
		// -benchmem appends "N B/op  M allocs/op": values precede units.
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i++ {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				res.BOp = v
			case "allocs/op":
				res.AllocsOp = v
			}
		}
		out[name] = res
	}
	return out, sc.Err()
}

// gitSHA resolves the commit the artifact describes: $BENCHJSON_GIT_SHA
// when set (CI passes the exact checkout), otherwise `git rev-parse HEAD`,
// otherwise "unknown" (e.g. running from an exported tarball).
func gitSHA() string {
	if sha := os.Getenv("BENCHJSON_GIT_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func run(in io.Reader, out io.Writer, env Env) error {
	results, err := Parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark results found in input")
	}
	// encoding/json sorts map keys, so the artifact diffs cleanly run to
	// run; the trailing newline keeps it POSIX-text.
	b, err := json.MarshalIndent(Artifact{Env: env, Benchmarks: results}, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", b)
	return err
}

func main() {
	outPath := flag.String("o", "", "write JSON to this file instead of stdout")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	env := Env{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), GitSHA: gitSHA()}
	if err := run(os.Stdin, w, env); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
