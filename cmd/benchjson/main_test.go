package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: cloudbench/internal/sim
cpu: AMD EPYC 7B13
BenchmarkKernelSleep-8             	    2742	    439881 ns/op	       0 B/op	       0 allocs/op
BenchmarkKernelScheduleWheel100k-8 	     100	    412345.5 ns/op	       3 B/op	       0 allocs/op
BenchmarkSpawnChurn-8              	    5000	    222746 ns/op	       1 B/op	       0 allocs/op
BenchmarkNoMem-8                   	  100000	      1234 ns/op
some test chatter that should be ignored
PASS
ok  	cloudbench/internal/sim	12.3s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Result{
		"BenchmarkKernelSleep":             {Iterations: 2742, NsOp: 439881, BOp: 0, AllocsOp: 0, GoMaxProcs: 8},
		"BenchmarkKernelScheduleWheel100k": {Iterations: 100, NsOp: 412345.5, BOp: 3, AllocsOp: 0, GoMaxProcs: 8},
		"BenchmarkSpawnChurn":              {Iterations: 5000, NsOp: 222746, BOp: 1, AllocsOp: 0, GoMaxProcs: 8},
		"BenchmarkNoMem":                   {Iterations: 100000, NsOp: 1234, BOp: -1, AllocsOp: -1, GoMaxProcs: 8},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %v", len(got), len(want), got)
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %+v, want %+v", name, got[name], w)
		}
	}
}

func TestParseStripsGOMAXPROCSSuffixOnly(t *testing.T) {
	in := "BenchmarkKernelScheduleWheel1k-16 	 100 	 500 ns/op\n"
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got["BenchmarkKernelScheduleWheel1k"]
	if !ok {
		t.Fatalf("suffix not stripped: %v", got)
	}
	if r.GoMaxProcs != 16 {
		t.Fatalf("gomaxprocs = %d, want 16", r.GoMaxProcs)
	}
}

func TestParseNoSuffixMeansOneProc(t *testing.T) {
	// go test appends no -N suffix at GOMAXPROCS=1 (how a 1-core CI runner
	// emits results); the entry must still record the proc count.
	in := "BenchmarkMegaScale/shards=8 	 1 	 2000000000 ns/op\n"
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got["BenchmarkMegaScale/shards=8"]
	if !ok {
		t.Fatalf("missing entry (sub-benchmark value mistaken for a suffix?): %v", got)
	}
	if r.GoMaxProcs != 1 {
		t.Fatalf("gomaxprocs = %d, want 1", r.GoMaxProcs)
	}
}

func TestParseSubBenchmarkNames(t *testing.T) {
	// Sub-benchmark names can contain slashes and their own dashes; only a
	// trailing numeric -N is the GOMAXPROCS suffix.
	in := "BenchmarkX/depth=100k-8 	 10 	 99.5 ns/op 	 0 B/op 	 0 allocs/op\n"
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got["BenchmarkX/depth=100k"]
	if !ok {
		t.Fatalf("missing sub-benchmark key: %v", got)
	}
	if r.NsOp != 99.5 || r.AllocsOp != 0 || r.GoMaxProcs != 8 {
		t.Fatalf("r = %+v", r)
	}
}

func TestRunEmitsSortedJSON(t *testing.T) {
	var out bytes.Buffer
	env := Env{GoMaxProcs: 8, NumCPU: 8, GitSHA: "abc123"}
	if err := run(strings.NewReader(sample), &out, env); err != nil {
		t.Fatal(err)
	}
	var decoded Artifact
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if decoded.Env != env {
		t.Fatalf("env round-trip: %+v, want %+v", decoded.Env, env)
	}
	if len(decoded.Benchmarks) != 4 {
		t.Fatalf("decoded %d entries, want 4", len(decoded.Benchmarks))
	}
	if !strings.HasSuffix(out.String(), "\n") {
		t.Fatal("artifact must end with a newline")
	}
	// Keys must appear in sorted order for clean diffs.
	i1 := strings.Index(out.String(), "BenchmarkKernelScheduleWheel100k")
	i2 := strings.Index(out.String(), "BenchmarkKernelSleep")
	i3 := strings.Index(out.String(), "BenchmarkSpawnChurn")
	if !(i1 < i2 && i2 < i3) {
		t.Fatalf("keys not sorted: %s", out.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok x 1s\n"), &out, Env{}); err == nil {
		t.Fatal("expected error on input with no benchmark lines")
	}
}
