// Command simlint statically enforces the simulator's determinism,
// hot-path, isolation, and hook invariants over this repository:
//
//	go run ./cmd/simlint ./...
//
// It exits non-zero if any analyzer reports a non-suppressed diagnostic.
// Genuine exceptions are annotated in place:
//
//	//simlint:ignore <analyzer> <reason>
//
// and audited: a directive whose analyzer no longer fires on its line is
// itself a finding (ignoreaudit), and `-ignores` prints the full directive
// inventory for CI logs. Run with -list to see the analyzers and what each
// enforces; -analyzers selects a comma-separated subset; -json emits
// machine-readable findings; -budget fails the run if analysis exceeds a
// wall-clock allowance (the CI job pins the SSA+points-to engine under
// 60s). The suite is built on an API mirroring golang.org/x/tools/go/analysis
// (see internal/lint); when that dependency is available the analyzers can
// be rehosted verbatim and driven by `go vet -vettool`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cloudbench/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	names := fs.String("analyzers", "", "comma-separated analyzer subset to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings (and -ignores inventory) as JSON")
	ignores := fs.Bool("ignores", false, "print the //simlint:ignore inventory with staleness")
	budget := fs.Duration("budget", 0, "fail if analysis wall-clock exceeds this duration (0: no limit)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.All()
	if *names != "" {
		var err error
		analyzers, err = lint.Select(strings.Split(*names, ","))
		if err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	prog, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	loaded := time.Now()
	diags, report, err := lint.AnalyzeReport(prog, analyzers, lint.AnalyzeOptions{})
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	elapsed := time.Since(start)

	if *asJSON {
		out := jsonReport{Diagnostics: diags, ElapsedMS: elapsed.Milliseconds()}
		if *ignores {
			out.Ignores = report.Entries
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "simlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if *ignores {
			printIgnores(stdout, report)
		}
	}

	// Timing always goes to stderr so CI job logs record the budget headroom
	// without disturbing parseable stdout.
	fmt.Fprintf(stderr, "simlint: %d analyzer(s), load %v, analyze %v, total %v\n",
		len(analyzers), loaded.Sub(start).Round(time.Millisecond),
		elapsed.Round(time.Millisecond)-loaded.Sub(start).Round(time.Millisecond),
		elapsed.Round(time.Millisecond))
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(stderr, "simlint: analysis took %v, over the %v budget\n", elapsed.Round(time.Millisecond), *budget)
		return 1
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonReport is the -json output shape: stable field names, findings in
// reporting order, ignore inventory only when -ignores is set.
type jsonReport struct {
	Diagnostics []lint.Diagnostic  `json:"diagnostics"`
	Ignores     []lint.IgnoreEntry `json:"ignores,omitempty"`
	ElapsedMS   int64              `json:"elapsed_ms"`
}

func printIgnores(w io.Writer, report *lint.IgnoreReport) {
	if len(report.Entries) == 0 {
		fmt.Fprintln(w, "no //simlint:ignore directives")
		return
	}
	for _, e := range report.Entries {
		status := "unchecked (analyzer not in this run)"
		switch {
		case e.Checked && e.Stale:
			status = "STALE"
		case e.Checked:
			status = "live"
		}
		fmt.Fprintf(w, "%s: ignore %s [%s]: %s\n", e.Pos, e.Analyzer, status, e.Reason)
	}
}
