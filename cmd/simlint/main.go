// Command simlint statically enforces the simulator's determinism,
// hot-path, and hook invariants over this repository:
//
//	go run ./cmd/simlint ./...
//
// It exits non-zero if any analyzer reports a non-suppressed diagnostic.
// Genuine exceptions are annotated in place:
//
//	//simlint:ignore <analyzer> <reason>
//
// Run with -list to see the analyzers and what each enforces. The suite is
// built on an API mirroring golang.org/x/tools/go/analysis (see
// internal/lint); when that dependency is available the analyzers can be
// rehosted verbatim and driven by `go vet -vettool`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cloudbench/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	diags, err := lint.Analyze(prog, lint.All(), lint.AnalyzeOptions{})
	if err != nil {
		fmt.Fprintln(stderr, "simlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
