package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRepoLintsClean is the tier-1 gate for the static invariants: the
// whole module must produce zero non-suppressed diagnostics. A failure
// here means either a genuine invariant violation or a new finding that
// needs an in-place //simlint:ignore with a reason.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		// Loading and type-checking the full dependency closure takes a
		// few seconds; the golden tests in internal/lint cover -short.
		t.Skip("full-module lint run skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"cloudbench/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("simlint exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("expected no diagnostics, got:\n%s", stdout.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("simlint -list exited %d: %s", code, stderr.String())
	}
	for _, name := range []string{"detwalk", "hookguard", "hotpath", "seedflow", "shardsafe", "blockfree", "ignoreaudit"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

// TestAnalyzersFlag: unknown names must fail loudly (exit 2), never
// silently skip enforcement.
func TestAnalyzersFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("simlint -analyzers nosuch exited %d, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("expected unknown-analyzer error, got: %s", stderr.String())
	}
}

// TestJSONReport: -json -ignores over a clean subset yields a parseable
// document with the ignore inventory and timing.
func TestJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-ignores", "-analyzers", "shardsafe", "cloudbench/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("simlint -json exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	var rep struct {
		Diagnostics []json.RawMessage `json:"diagnostics"`
		Ignores     []struct {
			Analyzer string
			Checked  bool
			Stale    bool
		} `json:"ignores"`
		ElapsedMS int64 `json:"elapsed_ms"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("unparseable -json output: %v\n%s", err, stdout.String())
	}
	if len(rep.Diagnostics) != 0 {
		t.Errorf("expected a clean run, got %d diagnostics", len(rep.Diagnostics))
	}
	sawChecked := false
	for _, ig := range rep.Ignores {
		if ig.Analyzer == "shardsafe" && ig.Checked {
			sawChecked = true
			if ig.Stale {
				t.Errorf("shardsafe ignore reported stale on a clean tree")
			}
		}
	}
	if !sawChecked {
		t.Error("expected the shardscale shardsafe ignores in the inventory")
	}
}
