package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRepoLintsClean is the tier-1 gate for the static invariants: the
// whole module must produce zero non-suppressed diagnostics. A failure
// here means either a genuine invariant violation or a new finding that
// needs an in-place //simlint:ignore with a reason.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		// Loading and type-checking the full dependency closure takes a
		// few seconds; the golden tests in internal/lint cover -short.
		t.Skip("full-module lint run skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"cloudbench/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("simlint exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("expected no diagnostics, got:\n%s", stdout.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("simlint -list exited %d: %s", code, stderr.String())
	}
	for _, name := range []string{"detwalk", "hookguard", "hotpath", "seedflow"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}
